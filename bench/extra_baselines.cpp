// Extension bench (not a paper table): the homogeneous random-walk methods
// the paper discusses in related work §2.2 but does not evaluate —
// DeepWalk [22] and node2vec [23] — compared with metapath2vec and ACTOR
// on the UTGEO2011-like dataset. Substantiates the paper's claim that
// homogeneous walk embeddings are a poor fit for the typed activity graph.
//
// Run:  ./extra_baselines [--scale=0.25]

#include <cstdio>

#include "baselines/metapath2vec.h"
#include "baselines/node2vec.h"
#include "bench_common.h"
#include "core/actor.h"
#include "eval/cross_modal_model.h"
#include "util/stopwatch.h"

namespace {

void Evaluate(const char* name, const actor::EmbeddingMatrix& center,
              const actor::PreparedDataset& data, double seconds) {
  actor::EmbeddingCrossModalModel model(name, data.Snapshot(center));
  actor::EvalOptions eval;
  eval.max_queries = 2000;
  auto scores = actor::EvaluateCrossModal(model, data.test, eval);
  scores.status().CheckOK();
  actor::bench::PrintMrrRow(name, *scores);
  std::fprintf(stderr, "  [%s trained in %.1fs]\n", name, seconds);
}

}  // namespace

int main(int argc, char** argv) {
  actor::Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.25);

  std::printf("Extra baselines: homogeneous walk methods vs ACTOR "
              "(UTGEO2011-like, scale=%.2f)\n",
              scale);
  auto data = actor::PrepareDataset(actor::UTGeoPipeline(scale), "UTGEO2011");
  data.status().CheckOK();
  actor::bench::PrintMrrHeader("UTGEO2011");

  {
    actor::Stopwatch timer;
    actor::Node2vecOptions options;
    options.dim = 32;
    options.walk.walks_per_vertex = 3;
    options.walk.walk_length = 15;
    options.skipgram.epochs = 1;
    auto model = actor::TrainDeepWalk(data->graphs->activity, options);
    model.status().CheckOK();
    Evaluate("DeepWalk", model->center, *data, timer.ElapsedSeconds());
  }
  {
    actor::Stopwatch timer;
    actor::Node2vecOptions options;
    options.dim = 32;
    options.walk.p = 0.5;
    options.walk.q = 2.0;  // BFS-ish: stay near the start community
    options.walk.walks_per_vertex = 3;
    options.walk.walk_length = 15;
    options.skipgram.epochs = 1;
    auto model = actor::TrainNode2vec(data->graphs->activity, options);
    model.status().CheckOK();
    Evaluate("node2vec", model->center, *data, timer.ElapsedSeconds());
  }
  {
    actor::Stopwatch timer;
    actor::Metapath2vecOptions options;
    options.dim = 32;
    options.walk.walks_per_start = 10;
    options.walk.walk_length = 40;
    options.skipgram.epochs = 2;
    auto model = actor::TrainMetapath2vec(data->graphs->activity, options);
    model.status().CheckOK();
    Evaluate("metapath2vec", model->center, *data, timer.ElapsedSeconds());
  }
  {
    actor::Stopwatch timer;
    actor::ActorOptions options;
    options.dim = 32;
    options.epochs = 8;
    options.samples_per_edge = 10;
    options.negatives = 5;
    auto model = actor::TrainActor(*data->graphs, options);
    model.status().CheckOK();
    Evaluate("ACTOR", model->center, *data, timer.ElapsedSeconds());
  }
  return 0;
}
