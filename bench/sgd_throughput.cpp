// SGD training-throughput harness: measures negative-sampling SGD
// steps/sec through EdgeSamplingTrainer (the §5.2.3 inner loop behind
// every trainer in the repo) across kernel backends (scalar vs runtime
// SIMD) and thread counts (1/2/4/8 on the persistent pool), plus the raw
// kernel bandwidth of Dot/Axpy/FusedGradStep. Emits BENCH_sgd.json so the
// perf trajectory is tracked across PRs.
//
// Usage: sgd_throughput [--dim=64] [--negatives=5] [--samples=300000]
//                       [--out=BENCH_sgd.json]

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "embedding/negative_sampler.h"
#include "embedding/sgd.h"
#include "eval/pipeline.h"
#include "graph/graph_builder.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/vec_math.h"

namespace actor {
namespace {

struct ThroughputRow {
  std::string backend;
  int threads = 1;
  double steps_per_sec = 0.0;
};

struct KernelRow {
  std::string kernel;
  std::string backend;
  int dim = 0;
  double gflops = 0.0;
};

/// Densest edge type of the activity graph — the representative workload.
EdgeType DensestEdgeType(const Heterograph& g) {
  EdgeType best = EdgeType::kLW;
  std::size_t best_edges = 0;
  for (int e = 0; e < kNumEdgeTypes; ++e) {
    const std::size_t n = g.edges(static_cast<EdgeType>(e)).size();
    if (n > best_edges) {
      best_edges = n;
      best = static_cast<EdgeType>(e);
    }
  }
  return best;
}

double MeasureStepsPerSec(const BuiltGraphs& graphs, EdgeType edge_type,
                          int32_t dim, int negatives, int threads,
                          int64_t samples) {
  const Heterograph& g = graphs.activity;
  EmbeddingMatrix center(g.num_vertices(), dim);
  EmbeddingMatrix context(g.num_vertices(), dim);
  Rng rng(13);
  center.InitUniform(rng);
  context.InitZero();
  auto noise = TypedNegativeSampler::Create(g);
  if (!noise.ok()) {
    std::fprintf(stderr, "sampler: %s\n", noise.status().ToString().c_str());
    return 0.0;
  }
  TrainOptions opts;
  opts.dim = dim;
  opts.negatives = negatives;
  opts.num_threads = threads;
  opts.seed = 7;
  EdgeSamplingTrainer trainer(&g, &center, &context, &noise.ValueOrDie(),
                              opts);
  if (auto st = trainer.Prepare(); !st.ok()) {
    std::fprintf(stderr, "prepare: %s\n", st.ToString().c_str());
    return 0.0;
  }
  // Warm caches + page in the matrices.
  (void)trainer.TrainEdgeType(edge_type, samples / 10, 0.02f);
  Stopwatch timer;
  (void)trainer.TrainEdgeType(edge_type, samples, 0.02f);
  const double secs = timer.ElapsedSeconds();
  return secs > 0.0 ? static_cast<double>(samples) / secs : 0.0;
}

double MeasureKernelGflops(const char* kernel, int dim) {
  const std::size_t n = static_cast<std::size_t>(dim);
  std::vector<float> x(n, 0.5f), y(n, 0.25f), z(n, 0.125f);
  const int64_t reps = 2'000'000;
  Stopwatch timer;
  // Plain accumulator + one volatile store at the end: compound assignment
  // to a volatile is deprecated in C++20, and a single opaque store is
  // enough to keep the loops from being optimized out.
  float acc = 0.0f;
  if (std::string(kernel) == "dot") {
    for (int64_t r = 0; r < reps; ++r) acc += Dot(x.data(), y.data(), n);
  } else if (std::string(kernel) == "axpy") {
    for (int64_t r = 0; r < reps; ++r) Axpy(1e-9f, x.data(), y.data(), n);
    acc += y[0];
  } else {  // fused_grad_step
    for (int64_t r = 0; r < reps; ++r) {
      FusedGradStep(1e-9f, x.data(), y.data(), z.data(), n);
    }
    acc += z[0];
  }
  volatile float sink = acc;
  (void)sink;
  const double secs = timer.ElapsedSeconds();
  // dot: 2n flops; axpy: 2n; fused: 4n.
  const double flops_per_rep =
      std::string(kernel) == "fused_grad_step" ? 4.0 * dim : 2.0 * dim;
  return secs > 0.0 ? flops_per_rep * reps / secs / 1e9 : 0.0;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int32_t dim = static_cast<int32_t>(flags.GetInt("dim", 64));
  const int negatives = static_cast<int>(flags.GetInt("negatives", 5));
  const int64_t samples = flags.GetInt("samples", 300000);
  const std::string out_path = flags.GetString("out", "BENCH_sgd.json");
  if (dim < 1 || negatives < 0 || samples < 1) {
    std::fprintf(stderr,
                 "invalid flags: --dim=%d --negatives=%d --samples=%lld "
                 "(need dim >= 1, negatives >= 0, samples >= 1)\n",
                 dim, negatives, static_cast<long long>(samples));
    return 1;
  }

  std::printf("building synthetic workload...\n");
  PipelineOptions pipeline = UTGeoPipeline(0.25);
  auto prepared = PrepareDataset(pipeline, "sgd-throughput");
  if (!prepared.ok()) {
    std::fprintf(stderr, "%s\n", prepared.status().ToString().c_str());
    return 1;
  }
  const BuiltGraphs& graphs = *prepared->graphs;
  const EdgeType edge_type = DensestEdgeType(graphs.activity);

  const bool simd = Avx2Available();
  std::vector<VecBackend> backends = {VecBackend::kScalar};
  if (simd) backends.push_back(VecBackend::kAvx2);
  const std::vector<int> thread_counts = {1, 2, 4, 8};

  std::vector<ThroughputRow> rows;
  std::vector<KernelRow> kernel_rows;
  for (VecBackend backend : backends) {
    SetVecBackend(backend);
    const char* name = VecBackendName(ActiveVecBackend());
    for (const char* kernel : {"dot", "axpy", "fused_grad_step"}) {
      for (int kdim : {32, 64, 128, 300}) {
        kernel_rows.push_back(
            {kernel, name, kdim, MeasureKernelGflops(kernel, kdim)});
      }
    }
    for (int threads : thread_counts) {
      ThroughputRow row;
      row.backend = name;
      row.threads = threads;
      row.steps_per_sec = MeasureStepsPerSec(graphs, edge_type, dim,
                                             negatives, threads, samples);
      std::printf("backend=%-6s threads=%d  %.0f steps/s\n",
                  row.backend.c_str(), row.threads, row.steps_per_sec);
      rows.push_back(row);
    }
  }
  SetVecBackend(VecBackend::kAvx2);  // restore the default dispatch

  auto find = [&rows](const std::string& backend, int threads) {
    for (const auto& r : rows) {
      if (r.backend == backend && r.threads == threads) {
        return r.steps_per_sec;
      }
    }
    return 0.0;
  };
  const std::string fast = simd ? "avx2" : "scalar";
  const double scalar1 = find("scalar", 1);
  const double fast1 = find(fast, 1);
  const double fast8 = find(fast, 8);
  const double simd_speedup = scalar1 > 0.0 ? fast1 / scalar1 : 0.0;
  const double thread_speedup = fast1 > 0.0 ? fast8 / fast1 : 0.0;

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << "{\n";
  out << "  \"bench\": \"sgd_throughput\",\n";
  out << "  \"dim\": " << dim << ",\n";
  out << "  \"negatives\": " << negatives << ",\n";
  out << "  \"samples\": " << samples << ",\n";
  out << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n";
  out << "  \"simd_available\": " << (simd ? "true" : "false") << ",\n";
  char buf[128];
  out << "  \"throughput\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "    {\"backend\": \"%s\", \"threads\": %d, "
                  "\"steps_per_sec\": %.1f}%s\n",
                  rows[i].backend.c_str(), rows[i].threads,
                  rows[i].steps_per_sec, i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n";
  out << "  \"kernels\": [\n";
  for (std::size_t i = 0; i < kernel_rows.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "    {\"kernel\": \"%s\", \"backend\": \"%s\", \"dim\": "
                  "%d, \"gflops\": %.3f}%s\n",
                  kernel_rows[i].kernel.c_str(),
                  kernel_rows[i].backend.c_str(), kernel_rows[i].dim,
                  kernel_rows[i].gflops,
                  i + 1 < kernel_rows.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n";
  std::snprintf(buf, sizeof(buf), "  \"simd_speedup_1t\": %.3f,\n",
                simd_speedup);
  out << buf;
  std::snprintf(buf, sizeof(buf), "  \"thread_speedup_8t_vs_1t\": %.3f\n",
                thread_speedup);
  out << buf;
  out << "}\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "write to %s failed\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s (simd x%.2f at 1 thread, x%.2f at 8 threads vs 1)\n",
              out_path.c_str(), simd_speedup, thread_speedup);
  return 0;
}

}  // namespace
}  // namespace actor

int main(int argc, char** argv) { return actor::Main(argc, argv); }
