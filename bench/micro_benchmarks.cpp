// Google-benchmark microbenchmarks for the performance-critical
// substrates: alias sampling (claimed O(1), §5.2.3), the SGD inner step
// (claimed O(d(K+1))), vector kernels, KDE, mean shift, tokenization, and
// graph construction. Not tied to a paper table; used to validate the
// complexity claims of §5.4.

#include <benchmark/benchmark.h>

#include "data/synthetic.h"
#include "data/tokenizer.h"
#include "embedding/negative_sampler.h"
#include "embedding/sgd.h"
#include "graph/alias_table.h"
#include "graph/graph_builder.h"
#include "hotspot/grid_index.h"
#include "hotspot/kde.h"
#include "hotspot/mean_shift.h"
#include "util/rng.h"
#include "util/vec_math.h"

namespace actor {
namespace {

void BM_AliasTableSample(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<double> weights(n);
  for (auto& w : weights) w = rng.UniformDouble() + 0.01;
  auto table = AliasTable::Create(weights);
  Rng sample_rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table->Sample(sample_rng));
  }
}
BENCHMARK(BM_AliasTableSample)->Arg(16)->Arg(1024)->Arg(1 << 16)->Arg(1 << 20);

void BM_AliasTableBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<double> weights(n);
  for (auto& w : weights) w = rng.UniformDouble() + 0.01;
  for (auto _ : state) {
    auto table = AliasTable::Create(weights);
    benchmark::DoNotOptimize(table);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_AliasTableBuild)->Range(1 << 8, 1 << 18)->Complexity();

void BM_Dot(benchmark::State& state) {
  const std::size_t dim = static_cast<std::size_t>(state.range(0));
  std::vector<float> x(dim, 0.5f), y(dim, 0.25f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dot(x.data(), y.data(), dim));
  }
}
BENCHMARK(BM_Dot)->Arg(32)->Arg(64)->Arg(128)->Arg(300);

/// Temporarily pins the dispatched kernels to one backend; restores the
/// default (best available) when the benchmark ends.
class BackendGuard {
 public:
  explicit BackendGuard(VecBackend b) : applied_(SetVecBackend(b)) {}
  ~BackendGuard() { SetVecBackend(VecBackend::kAvx2); }
  VecBackend applied() const { return applied_; }

 private:
  VecBackend applied_;
};

void BM_DotBackend(benchmark::State& state) {
  const auto backend = static_cast<VecBackend>(state.range(1));
  BackendGuard guard(backend);
  if (guard.applied() != backend) {
    state.SkipWithError("backend unavailable");
    return;
  }
  const std::size_t dim = static_cast<std::size_t>(state.range(0));
  std::vector<float> x(dim, 0.5f), y(dim, 0.25f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dot(x.data(), y.data(), dim));
  }
  state.SetLabel(VecBackendName(backend));
}
BENCHMARK(BM_DotBackend)
    ->Args({64, static_cast<int>(VecBackend::kScalar)})
    ->Args({64, static_cast<int>(VecBackend::kAvx2)})
    ->Args({300, static_cast<int>(VecBackend::kScalar)})
    ->Args({300, static_cast<int>(VecBackend::kAvx2)});

void BM_FusedGradStepBackend(benchmark::State& state) {
  const auto backend = static_cast<VecBackend>(state.range(1));
  BackendGuard guard(backend);
  if (guard.applied() != backend) {
    state.SkipWithError("backend unavailable");
    return;
  }
  const std::size_t dim = static_cast<std::size_t>(state.range(0));
  std::vector<float> center(dim, 0.5f), ctx(dim, 0.25f), grad(dim);
  for (auto _ : state) {
    FusedGradStep(1e-9f, center.data(), ctx.data(), grad.data(), dim);
    benchmark::DoNotOptimize(ctx.data());
    benchmark::DoNotOptimize(grad.data());
  }
  state.SetLabel(VecBackendName(backend));
}
BENCHMARK(BM_FusedGradStepBackend)
    ->Args({64, static_cast<int>(VecBackend::kScalar)})
    ->Args({64, static_cast<int>(VecBackend::kAvx2)})
    ->Args({300, static_cast<int>(VecBackend::kScalar)})
    ->Args({300, static_cast<int>(VecBackend::kAvx2)});

/// The fused kernel against the two-pass Axpy pair it replaced.
void BM_TwoPassGradStep(benchmark::State& state) {
  const std::size_t dim = static_cast<std::size_t>(state.range(0));
  std::vector<float> center(dim, 0.5f), ctx(dim, 0.25f), grad(dim);
  for (auto _ : state) {
    Axpy(1e-9f, ctx.data(), grad.data(), dim);
    Axpy(1e-9f, center.data(), ctx.data(), dim);
    benchmark::DoNotOptimize(ctx.data());
    benchmark::DoNotOptimize(grad.data());
  }
}
BENCHMARK(BM_TwoPassGradStep)->Arg(64)->Arg(300);

void BM_SigmoidTable(benchmark::State& state) {
  static const SigmoidTable table;
  float x = -6.0f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table(x));
    x += 0.001f;
    if (x > 6.0f) x = -6.0f;
  }
}
BENCHMARK(BM_SigmoidTable);

void BM_SigmoidExact(benchmark::State& state) {
  float x = -6.0f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sigmoid(x));
    x += 0.001f;
    if (x > 6.0f) x = -6.0f;
  }
}
BENCHMARK(BM_SigmoidExact);

/// One negative-sampling SGD step on a dim-sized pair with K negatives —
/// the O(d(K+1)) inner loop of §5.4.
void BM_SgdStep(benchmark::State& state) {
  const int32_t dim = static_cast<int32_t>(state.range(0));
  const int negatives = static_cast<int>(state.range(1));
  EmbeddingMatrix context(64, dim);
  Rng init(1);
  context.InitUniform(init);
  std::vector<float> center(dim, 0.01f), grad(dim);
  const SigmoidTable sigmoid;
  Rng rng(2);
  for (auto _ : state) {
    Zero(grad.data(), dim);
    NegativeSamplingUpdate(
        center.data(), 0, negatives, 0.02f, &context, sigmoid, rng,
        [](Rng& r) { return static_cast<VertexId>(r.Uniform(64)); },
        grad.data());
    Add(grad.data(), center.data(), dim);
  }
}
BENCHMARK(BM_SgdStep)->Args({32, 1})->Args({32, 5})->Args({300, 1})
    ->Args({300, 5});

/// Full TrainEdgeType batches through the persistent pool: measures
/// spawn-free sharding and HOGWILD thread scaling on the trainer itself.
void BM_TrainEdgeTypeThreads(benchmark::State& state) {
  static SyntheticConfig config = [] {
    SyntheticConfig c;
    c.num_records = 4000;
    c.num_users = 200;
    return c;
  }();
  static auto ds = GenerateSynthetic(config);
  static auto corpus = [] {
    CorpusBuildOptions build;
    return TokenizedCorpus::Build(ds->corpus, build);
  }();
  static auto hotspots = DetectHotspots(*corpus);
  static auto graphs = BuildGraphs(*corpus, *hotspots);
  static auto sampler = TypedNegativeSampler::Create(graphs->activity);

  const int threads = static_cast<int>(state.range(0));
  EmbeddingMatrix center(graphs->activity.num_vertices(), 64);
  EmbeddingMatrix context(graphs->activity.num_vertices(), 64);
  Rng init(1);
  center.InitUniform(init);
  context.InitZero();
  TrainOptions opts;
  opts.dim = 64;
  opts.negatives = 5;
  opts.num_threads = threads;
  EdgeSamplingTrainer trainer(&graphs->activity, &center, &context,
                              &sampler.ValueOrDie(), opts);
  if (auto st = trainer.Prepare(); !st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  constexpr int64_t kBatch = 20000;
  for (auto _ : state) {
    (void)trainer.TrainEdgeType(EdgeType::kLW, kBatch, 0.02f);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_TrainEdgeTypeThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_Kde2dDensity(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  std::vector<GeoPoint> points(n);
  for (auto& p : points) {
    p = {rng.UniformRange(0, 40), rng.UniformRange(0, 40)};
  }
  auto kde = Kde2d::Create(points, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kde->Density({20, 20}));
  }
}
BENCHMARK(BM_Kde2dDensity)->Arg(1000)->Arg(10000);

void BM_MeanShift2d(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  std::vector<GeoPoint> points(n);
  for (auto& p : points) {
    // 10 clusters.
    const int c = static_cast<int>(rng.Uniform(10));
    p = {rng.Gaussian(4.0 * c, 0.3), rng.Gaussian(4.0 * (c % 3), 0.3)};
  }
  MeanShiftOptions options;
  options.bandwidth = 1.0;
  for (auto _ : state) {
    auto modes = MeanShiftModes2d(points, options);
    benchmark::DoNotOptimize(modes);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_MeanShift2d)->Range(1000, 32000)->Complexity();

void BM_GridIndexNearest(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  std::vector<GeoPoint> points(n);
  for (auto& p : points) {
    p = {rng.UniformRange(0, 40), rng.UniformRange(0, 40)};
  }
  Grid2dIndex index(points);
  Rng query_rng(8);
  for (auto _ : state) {
    const GeoPoint q{query_rng.UniformRange(0, 40),
                     query_rng.UniformRange(0, 40)};
    benchmark::DoNotOptimize(index.Nearest(q));
  }
}
BENCHMARK(BM_GridIndexNearest)->Arg(100)->Arg(1000)->Arg(10000);

void BM_BruteForceNearest(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  std::vector<GeoPoint> points(n);
  for (auto& p : points) {
    p = {rng.UniformRange(0, 40), rng.UniformRange(0, 40)};
  }
  Rng query_rng(8);
  for (auto _ : state) {
    const GeoPoint q{query_rng.UniformRange(0, 40),
                     query_rng.UniformRange(0, 40)};
    int best = -1;
    double best_dist = 1e18;
    for (int i = 0; i < n; ++i) {
      const double d = Distance(q, points[i]);
      if (d < best_dist) {
        best_dist = d;
        best = i;
      }
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_BruteForceNearest)->Arg(100)->Arg(1000)->Arg(10000);

void BM_Tokenize(benchmark::State& state) {
  Tokenizer tokenizer;
  const std::string text =
      "Just watched a screening of The Judge for SAG voters and what a "
      "treat at the end #Hollywood @someone";
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.Tokenize(text));
  }
}
BENCHMARK(BM_Tokenize);

void BM_GraphBuild(benchmark::State& state) {
  SyntheticConfig config;
  config.num_records = static_cast<int>(state.range(0));
  config.num_users = config.num_records / 20;
  config.num_venues = 100;
  config.num_topics = 12;
  config.num_communities = 8;
  auto ds = GenerateSynthetic(config);
  CorpusBuildOptions build;
  auto corpus = TokenizedCorpus::Build(ds->corpus, build);
  auto hotspots = DetectHotspots(*corpus);
  for (auto _ : state) {
    auto graphs = BuildGraphs(*corpus, *hotspots);
    benchmark::DoNotOptimize(graphs);
  }
}
BENCHMARK(BM_GraphBuild)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_TypedNegativeSample(benchmark::State& state) {
  SyntheticConfig config;
  config.num_records = 4000;
  config.num_users = 200;
  auto ds = GenerateSynthetic(config);
  CorpusBuildOptions build;
  auto corpus = TokenizedCorpus::Build(ds->corpus, build);
  auto hotspots = DetectHotspots(*corpus);
  auto graphs = BuildGraphs(*corpus, *hotspots);
  auto sampler = TypedNegativeSampler::Create(graphs->activity);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sampler->Sample(EdgeType::kLW, VertexType::kWord, rng));
  }
}
BENCHMARK(BM_TypedNegativeSample);

}  // namespace
}  // namespace actor

BENCHMARK_MAIN();
