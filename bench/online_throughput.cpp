// Streaming ingest-throughput harness: times the full OnlineActor
// Ingest() cycle (decay -> resolve -> accumulate -> sampler refresh ->
// re-embed) on a synthetic activity stream and emits BENCH_online.json so
// the streaming path's perf trajectory is tracked across PRs, alongside
// BENCH_sgd.json for the batch trainer.
//
// Rows: full-rebuild mode at 1 thread (the pre-port behavior, via
// incremental_sampler=false) plus the incremental-sampler path at
// 1/2/4/8 threads on the persistent pool, plus the sparse-stream
// pure-decay column (empty Ingest() ticks, where the version-stamped
// sampler cache short-circuits every rebuild). A "sharding" section
// repeats the steady-state ingest with the ownership-partitioned trainer
// at 1/2/4 shards (one worker per shard). See EXPERIMENTS.md for the
// machine-drift caveat and docs/sharding.md for the 1-core caveat on the
// shard rows before comparing against committed numbers.
//
// Usage: online_throughput [--records=12000] [--batches=12] [--dim=32]
//                          [--pure_decay_ticks=6] [--out=BENCH_online.json]

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/online_actor.h"
#include "data/corpus.h"
#include "data/synthetic.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"
#include "util/vec_math.h"

namespace actor {
namespace {

struct OnlineRow {
  std::string sampler;  // "full_rebuild", "incremental", or "pure_decay"
  int threads = 1;
  double batches_per_sec = 0.0;
  double records_per_sec = 0.0;
};

struct Workload {
  std::vector<std::vector<TokenizedRecord>> stream;
};

/// One timed run over the shared stream. Warm-up ingests bootstrap the
/// unit catalogue and edge store so the timed section measures the
/// steady-state decay -> refresh -> re-embed cycle, not cold growth.
OnlineRow MeasureIngest(const Workload& work, int32_t dim, bool incremental,
                        int threads) {
  OnlineRow row;
  row.sampler = incremental ? "incremental" : "full_rebuild";
  row.threads = threads;

  OnlineActorOptions options;
  options.dim = dim;
  options.decay_per_batch = 0.7;
  options.samples_per_edge_per_batch = 3.0;
  options.incremental_sampler = incremental;
  options.num_threads = threads;
  auto model = OnlineActor::Create(options);
  if (!model.ok()) {
    std::fprintf(stderr, "create: %s\n", model.status().ToString().c_str());
    return row;
  }
  const int batches = static_cast<int>(work.stream.size());
  const int warm = batches / 3;
  std::size_t timed_records = 0;
  for (int i = 0; i < warm; ++i) {
    if (auto st = model->Ingest(work.stream[i]); !st.ok()) {
      std::fprintf(stderr, "ingest: %s\n", st.ToString().c_str());
      return row;
    }
  }
  Stopwatch timer;
  for (int i = warm; i < batches; ++i) {
    if (auto st = model->Ingest(work.stream[i]); !st.ok()) {
      std::fprintf(stderr, "ingest: %s\n", st.ToString().c_str());
      return row;
    }
    timed_records += work.stream[i].size();
  }
  const double secs = timer.ElapsedSeconds();
  if (secs > 0.0) {
    row.batches_per_sec = static_cast<double>(batches - warm) / secs;
    row.records_per_sec = static_cast<double>(timed_records) / secs;
  }
  return row;
}

/// Times `ticks` empty Ingest() calls — sparse-stream mode, where a time
/// slice passes with no observations. The full stream is ingested first so
/// the decay ticks run against a realistic edge population. Uniform decay
/// keeps the cached samplers exact, so each tick is decay + training only
/// (no alias rebuild); the contrast with the incremental rows is the cost
/// of the accumulate + refresh phases. records_per_sec stays 0 — a decay
/// tick carries no records.
OnlineRow MeasurePureDecay(const Workload& work, int32_t dim, int threads,
                           int ticks) {
  OnlineRow row;
  row.sampler = "pure_decay";
  row.threads = threads;

  OnlineActorOptions options;
  options.dim = dim;
  options.decay_per_batch = 0.7;
  options.samples_per_edge_per_batch = 3.0;
  options.incremental_sampler = true;
  options.num_threads = threads;
  auto model = OnlineActor::Create(options);
  if (!model.ok()) {
    std::fprintf(stderr, "create: %s\n", model.status().ToString().c_str());
    return row;
  }
  for (const auto& batch : work.stream) {
    if (auto st = model->Ingest(batch); !st.ok()) {
      std::fprintf(stderr, "ingest: %s\n", st.ToString().c_str());
      return row;
    }
  }
  Stopwatch timer;
  for (int i = 0; i < ticks; ++i) {
    if (auto st = model->Ingest({}); !st.ok()) {
      std::fprintf(stderr, "decay tick: %s\n", st.ToString().c_str());
      return row;
    }
  }
  const double secs = timer.ElapsedSeconds();
  if (secs > 0.0) {
    row.batches_per_sec = static_cast<double>(ticks) / secs;
  }
  return row;
}

struct ShardRow {
  int shards = 1;
  double batches_per_sec = 0.0;
  double records_per_sec = 0.0;
};

/// The sharding section's ingest side: the ownership-partitioned trainer
/// at S shards, one worker per shard on a persistent pool. On a 1-core
/// container the parallel shard epochs serialize, so shards > 1 mostly
/// measures partitioning + remote-tile-refresh overhead rather than
/// speedup — docs/sharding.md spells out the caveat; compare the column
/// across commits, not across shard counts, unless the machine has the
/// cores.
ShardRow MeasureShardedIngest(const Workload& work, int32_t dim,
                              int shards) {
  ShardRow row;
  row.shards = shards;

  ThreadPool pool(shards);
  OnlineActorOptions options;
  options.dim = dim;
  options.decay_per_batch = 0.7;
  options.samples_per_edge_per_batch = 3.0;
  options.num_shards = shards;
  options.num_threads = shards;
  options.pool = shards > 1 ? &pool : nullptr;
  auto model = OnlineActor::Create(options);
  if (!model.ok()) {
    std::fprintf(stderr, "create: %s\n", model.status().ToString().c_str());
    return row;
  }
  const int batches = static_cast<int>(work.stream.size());
  const int warm = batches / 3;
  std::size_t timed_records = 0;
  for (int i = 0; i < warm; ++i) {
    if (auto st = model->Ingest(work.stream[i]); !st.ok()) {
      std::fprintf(stderr, "ingest: %s\n", st.ToString().c_str());
      return row;
    }
  }
  Stopwatch timer;
  for (int i = warm; i < batches; ++i) {
    if (auto st = model->Ingest(work.stream[i]); !st.ok()) {
      std::fprintf(stderr, "ingest: %s\n", st.ToString().c_str());
      return row;
    }
    timed_records += work.stream[i].size();
  }
  const double secs = timer.ElapsedSeconds();
  if (secs > 0.0) {
    row.batches_per_sec = static_cast<double>(batches - warm) / secs;
    row.records_per_sec = static_cast<double>(timed_records) / secs;
  }
  return row;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int records = static_cast<int>(flags.GetInt("records", 12000));
  const int batches = static_cast<int>(flags.GetInt("batches", 12));
  const int32_t dim = static_cast<int32_t>(flags.GetInt("dim", 32));
  // Number of timed empty-Ingest ticks for the pure-decay column; 0
  // disables the column. Kept modest by default: with decay 0.7/batch the
  // edge set thins as ticks accumulate, and the column should measure the
  // well-populated regime.
  const int decay_ticks =
      static_cast<int>(flags.GetInt("pure_decay_ticks", 6));
  const std::string out_path = flags.GetString("out", "BENCH_online.json");
  if (records < batches || batches < 3 || dim < 1 || decay_ticks < 0) {
    std::fprintf(stderr,
                 "invalid flags: --records=%d --batches=%d --dim=%d "
                 "--pure_decay_ticks=%d (need records >= batches >= 3, "
                 "dim >= 1, ticks >= 0)\n",
                 records, batches, dim, decay_ticks);
    return 1;
  }

  std::printf("building synthetic stream...\n");
  SyntheticConfig config;
  config.seed = 300;
  config.num_records = records;
  config.num_users = 400;
  config.num_topics = 12;
  config.num_venues = 80;
  config.num_communities = 8;
  auto ds = GenerateSynthetic(config, "online-throughput");
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  CorpusBuildOptions build;
  auto corpus = TokenizedCorpus::Build(ds->corpus, build);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }
  Workload work;
  work.stream.resize(static_cast<std::size_t>(batches));
  for (std::size_t i = 0; i < corpus->size(); ++i) {
    work.stream[i * static_cast<std::size_t>(batches) / corpus->size()]
        .push_back(corpus->record(i));
  }

  std::vector<OnlineRow> rows;
  rows.push_back(MeasureIngest(work, dim, /*incremental=*/false, 1));
  for (int threads : {1, 2, 4, 8}) {
    rows.push_back(MeasureIngest(work, dim, /*incremental=*/true, threads));
  }
  if (decay_ticks > 0) {
    rows.push_back(MeasurePureDecay(work, dim, /*threads=*/1, decay_ticks));
  }
  for (const auto& row : rows) {
    std::printf("sampler=%-12s threads=%d  %.3f batches/s  %.1f records/s\n",
                row.sampler.c_str(), row.threads, row.batches_per_sec,
                row.records_per_sec);
  }

  std::vector<ShardRow> shard_rows;
  for (int shards : {1, 2, 4}) {
    shard_rows.push_back(MeasureShardedIngest(work, dim, shards));
    const ShardRow& row = shard_rows.back();
    std::printf("sharded ingest shards=%d  %.3f batches/s  %.1f records/s\n",
                row.shards, row.batches_per_sec, row.records_per_sec);
  }

  auto find = [&rows](const std::string& sampler, int threads) {
    for (const auto& r : rows) {
      if (r.sampler == sampler && r.threads == threads) {
        return r.batches_per_sec;
      }
    }
    return 0.0;
  };
  const double full1 = find("full_rebuild", 1);
  const double inc1 = find("incremental", 1);
  const double inc8 = find("incremental", 8);
  const double decay1 = find("pure_decay", 1);
  const double incremental_speedup = full1 > 0.0 ? inc1 / full1 : 0.0;
  const double thread_speedup = inc1 > 0.0 ? inc8 / inc1 : 0.0;
  const double pure_decay_speedup = inc1 > 0.0 ? decay1 / inc1 : 0.0;

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << "{\n";
  out << "  \"bench\": \"online_throughput\",\n";
  out << "  \"records\": " << records << ",\n";
  out << "  \"batches\": " << batches << ",\n";
  out << "  \"dim\": " << dim << ",\n";
  out << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n";
  out << "  \"simd_available\": " << (Avx2Available() ? "true" : "false")
      << ",\n";
  char buf[160];
  out << "  \"throughput\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "    {\"sampler\": \"%s\", \"threads\": %d, "
                  "\"batches_per_sec\": %.3f, \"records_per_sec\": %.1f}%s\n",
                  rows[i].sampler.c_str(), rows[i].threads,
                  rows[i].batches_per_sec, rows[i].records_per_sec,
                  i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n";
  out << "  \"sharding\": [\n";
  for (std::size_t i = 0; i < shard_rows.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "    {\"shards\": %d, \"batches_per_sec\": %.3f, "
                  "\"records_per_sec\": %.1f}%s\n",
                  shard_rows[i].shards, shard_rows[i].batches_per_sec,
                  shard_rows[i].records_per_sec,
                  i + 1 < shard_rows.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n";
  std::snprintf(buf, sizeof(buf),
                "  \"incremental_sampler_speedup_1t\": %.3f,\n",
                incremental_speedup);
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "  \"thread_speedup_8t_vs_1t\": %.3f,\n", thread_speedup);
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "  \"pure_decay_speedup_vs_ingest_1t\": %.3f\n",
                pure_decay_speedup);
  out << buf;
  out << "}\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "write to %s failed\n", out_path.c_str());
    return 1;
  }
  std::printf(
      "wrote %s (incremental x%.2f at 1 thread, threads x%.2f at 8 vs 1)\n",
      out_path.c_str(), incremental_speedup, thread_speedup);
  return 0;
}

}  // namespace
}  // namespace actor

int main(int argc, char** argv) { return actor::Main(argc, argv); }
