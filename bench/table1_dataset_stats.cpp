// Reproduces Table 1: statistics of the three datasets — record counts,
// train/valid/test sizes, activity-graph |V| and |E|, spatial/temporal
// hotspot counts, vocabulary and user counts. The corpora are the
// synthetic substitutes described in DESIGN.md §2, so absolute counts are
// smaller than the paper's; the *relationships* (three datasets, mention
// availability, vocabulary ratios) mirror Table 1.
//
// Run:  ./table1_dataset_stats [--scale=0.25]

#include <cstdio>

#include "bench_common.h"
#include "core/meta_graph.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  actor::Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.25);

  std::printf(
      "Table 1: Statistics of Datasets (synthetic substitutes, scale=%.2f)\n",
      scale);
  std::printf(
      "%-10s %8s %8s %7s %7s %8s %10s %9s %10s %7s %7s %9s\n", "DATA",
      "#Records", "#Train", "#Valid", "#Test", "|V|", "|E|", "#Spatial",
      "#Temporal", "#Word", "#User", "%Mention");

  for (const auto& [name, options] : actor::bench::DatasetConfigs(scale)) {
    actor::Stopwatch timer;
    auto data = actor::PrepareDataset(options, name);
    data.status().CheckOK();
    const auto& g = data->graphs->activity;
    std::printf(
        "%-10s %8zu %8zu %7zu %7zu %8d %10lld %9zu %10zu %7d %7zu %8.1f%%\n",
        name.c_str(), data->full.size(), data->split.train.size(),
        data->split.valid.size(), data->split.test.size(), g.num_vertices(),
        static_cast<long long>(g.num_directed_edges()),
        data->hotspots->spatial.size(), data->hotspots->temporal.size(),
        data->full.vocab().size(),
        data->graphs->activity_users.size(),
        100.0 * data->dataset.corpus.MentionFraction());

    // Supplementary: inter-record meta-graph instance counts (the
    // high-order paths the hierarchy exploits; paper §1 reports 16.8% of
    // UTGEO2011 records carry mentions).
    std::printf("  meta-graph instances:");
    for (const auto& meta : actor::InterRecordMetaGraphs()) {
      std::printf(" %s=%lld", meta.name.c_str(),
                  static_cast<long long>(
                      actor::CountInterRecordInstances(*data->graphs, meta)));
    }
    std::printf("   (prepared in %.1fs)\n", timer.ElapsedSeconds());
  }
  return 0;
}
