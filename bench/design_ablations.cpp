// Ablations over *this implementation's* design choices (DESIGN.md §2 and
// §5) rather than the paper's components (those are Table 4 /
// table4_ablation). Each sweep trains ACTOR on the UTGEO2011-like dataset
// and reports the three-task MRR:
//
//   1. bag-of-words composite: mean (ours) vs literal sum (footnote 4)
//   2. user-guided initialization: on vs off (inter edge types kept)
//   3. negative samples K: 1 (paper) vs 3 vs 5 (harness default)
//   4. embedding dimension d: 16 / 32 / 64
//
// Run:  ./design_ablations [--scale=0.25] [--epochs=8] [--spe=10]

#include <cstdio>

#include "bench_common.h"
#include "core/actor.h"
#include "eval/cross_modal_model.h"

namespace {

actor::MrrScores RunActor(const actor::PreparedDataset& data,
                          const actor::ActorOptions& options) {
  auto model = actor::TrainActor(*data.graphs, options);
  model.status().CheckOK();
  actor::EmbeddingCrossModalModel scorer("ACTOR",
                                         data.Snapshot(model->center));
  actor::EvalOptions eval;
  eval.max_queries = 2000;
  auto scores = actor::EvaluateCrossModal(scorer, data.test, eval);
  scores.status().CheckOK();
  return *scores;
}

void PrintRow(const char* label, const actor::MrrScores& s) {
  std::printf("  %-28s %8.4f %8.4f %8.4f   (mean %.4f)\n", label, s.text,
              s.location, s.time, (s.text + s.location + s.time) / 3.0);
}

}  // namespace

int main(int argc, char** argv) {
  actor::Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.25);

  actor::ActorOptions base;
  base.dim = 32;
  base.epochs = static_cast<int>(flags.GetInt("epochs", 8));
  base.samples_per_edge = static_cast<int>(flags.GetInt("spe", 10));
  base.negatives = 5;

  auto data = actor::PrepareDataset(actor::UTGeoPipeline(scale), "UTGEO2011");
  data.status().CheckOK();
  std::printf("Design-choice ablations (UTGEO2011-like, scale=%.2f)\n",
              scale);
  std::printf("  %-28s %8s %8s %8s\n", "variant", "Text", "Location", "Time");

  // 1. Composite: mean vs sum.
  {
    actor::ActorOptions sum = base;
    sum.bow_sum_composite = true;
    PrintRow("bow composite = mean (ours)", RunActor(*data, base));
    PrintRow("bow composite = sum (paper)", RunActor(*data, sum));
  }

  // 2. User-guided init.
  {
    actor::ActorOptions no_init = base;
    no_init.init_from_users = false;
    PrintRow("user init = on (ours)", RunActor(*data, base));
    PrintRow("user init = off", RunActor(*data, no_init));
  }

  // 3. K sweep.
  for (int k : {1, 3, 5}) {
    actor::ActorOptions o = base;
    o.negatives = k;
    char label[32];
    std::snprintf(label, sizeof(label), "negatives K = %d%s", k,
                  k == 1 ? " (paper)" : "");
    PrintRow(label, RunActor(*data, o));
  }

  // 4. Dimension sweep.
  for (int dim : {16, 32, 64}) {
    actor::ActorOptions o = base;
    o.dim = dim;
    char label[32];
    std::snprintf(label, sizeof(label), "dimension d = %d", dim);
    PrintRow(label, RunActor(*data, o));
  }

  // 5. Hotspot bandwidth sensitivity: coarser/finer spatial units change
  //    the whole downstream graph, so this sweep re-runs the pipeline.
  std::printf("  %-28s %8s %8s %8s   (hotspot sweep)\n", "variant", "Text",
              "Location", "Time");
  for (double bandwidth : {0.5, 1.0, 2.0, 4.0}) {
    actor::PipelineOptions pipeline = actor::UTGeoPipeline(scale);
    pipeline.hotspots.spatial.bandwidth = bandwidth;
    pipeline.hotspots.spatial.merge_radius = bandwidth / 2.0;
    auto swept = actor::PrepareDataset(pipeline, "UTGEO2011");
    swept.status().CheckOK();
    char label[48];
    std::snprintf(label, sizeof(label),
                  "spatial bandwidth %.1f km (%zu hs)", bandwidth,
                  swept->hotspots->spatial.size());
    PrintRow(label, RunActor(*swept, base));
  }
  return 0;
}
