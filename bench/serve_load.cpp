// Open-loop serving harness: Poisson arrivals at a target QPS against a
// live SnapshotStore while an OnlineActor ingests and publishes at a fixed
// cadence. Emits BENCH_serve.json so tail latency — the number production
// serving is actually judged on, unlike the closed-loop throughput of
// BENCH_query.json — is tracked across PRs.
//
// Open-loop semantics (docs/benchmarking.md): each worker draws
// exponential inter-arrival gaps (superposition splits the target QPS
// across workers), and every request's latency is measured from its
// *scheduled* arrival to completion. A slow server does not slow the
// arrival schedule down, so queueing delay lands in the tail instead of
// being silently absorbed — the coordinated-omission mistake closed-loop
// harnesses make.
//
// Two sections:
//   "latency"  p50/p95/p99/p999 at the fixed --qps for request-batch sizes
//              B in {1, 8, 32}. B == 1 serves each request through the
//              sequential QueryBy*() calls (one snapshot acquire per
//              request); B > 1 drains up to B due requests per cycle
//              through QueryEngine::QueryBatch (one acquire per batch,
//              blocked scoring kernel). Identical results bit for bit —
//              batching is purely a latency/throughput lever.
//   "max_qps"  highest target QPS whose p99 still meets --slo_p99_ms,
//              found by ramping the offered load by --ramp per level.
//
// The request mix rotates location / hour / keyword / vector queries
// (--mix, default "lhkv"). Keyword requests are issued as vector queries
// on a word unit's embedding row: streaming snapshots resolve word ids,
// not strings (ModelSnapshot::LookupWord), and that is exactly the scoring
// work QueryByKeyword does after resolution.
//
// --smoke runs a seconds-scale configuration, self-checks the recorded
// stats (finite, monotone percentiles, nonzero service counts), and is
// wired into CI so the harness itself cannot rot; thresholds are only
// applied by scripts/bench_compare.py against the committed baseline.
//
// Usage: serve_load [--records=12000] [--batches=12] [--dim=32] [--k=10]
//                   [--threads=2] [--qps=2000] [--duration_s=1.5]
//                   [--ingest_period_ms=500] [--slo_p99_ms=20]
//                   [--ramp=1.6] [--max_levels=8] [--mix=lhkv] [--smoke]
//                   [--out=BENCH_serve.json]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/online_actor.h"
#include "data/corpus.h"
#include "data/synthetic.h"
#include "serve/model_snapshot.h"
#include "serve/query_engine.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"
#include "util/vec_math.h"

namespace actor {
namespace {

struct LoadConfig {
  int k = 10;
  int threads = 2;
  double duration_s = 1.5;
  double ingest_period_ms = 500.0;
  std::string mix = "lhkv";
  uint64_t seed = 4242;
};

struct WindowStats {
  int batch = 1;
  double target_qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double achieved_qps = 0.0;
  int64_t served = 0;
  int64_t failures = 0;
};

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(pos));
  if (idx > 0) --idx;
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

/// Pre-resolved request material shared by every worker: probe points for
/// location queries and unit ids whose embedding rows seed keyword/vector
/// queries. Ids are stable across publishes (the online unit space only
/// grows), so rows fetched from any later-acquired snapshot stay in range.
struct RequestPool {
  std::vector<GeoPoint> probes;
  std::vector<VertexId> word_units;
  int32_t num_units = 0;
};

/// Appends worker `worker`'s request number `seq` to `out`, rotating
/// through the configured kind mix against the rows of the engine's own
/// snapshot (so every pointer handed to QueryBatch stays alive for the
/// service call).
void MakeRequest(const QueryEngine& engine, const RequestPool& pool,
                 const std::string& mix, int worker, uint64_t seq, int k,
                 std::vector<BatchQuery>* out) {
  const ChunkedMatrix& center = engine.snapshot().center();
  const uint64_t key = seq + static_cast<uint64_t>(worker) * 7919u;
  switch (mix[key % mix.size()]) {
    case 'l':
      out->push_back(BatchQuery::Location(
          pool.probes[key % pool.probes.size()], VertexType::kWord, k));
      break;
    case 'h':
      out->push_back(BatchQuery::Hour(static_cast<double>(key % 24),
                                      VertexType::kLocation, k));
      break;
    case 'k': {
      const VertexId w = pool.word_units[key % pool.word_units.size()];
      out->push_back(
          BatchQuery::Vector(center.row(w), VertexType::kLocation, k, w));
      break;
    }
    default: {
      const VertexId q = static_cast<VertexId>(
          (key * 31u) % static_cast<uint64_t>(pool.num_units));
      out->push_back(BatchQuery::Vector(center.row(q), VertexType::kWord, k, q));
      break;
    }
  }
}

/// Serves one due-request batch: B == 1 goes through the sequential entry
/// points (the unbatched baseline), B > 1 through QueryBatch. Returns the
/// number of failed requests.
int64_t Serve(const QueryEngine& engine, const std::vector<BatchQuery>& batch,
              bool use_batched) {
  int64_t failures = 0;
  if (use_batched) {
    const auto results = engine.QueryBatch(batch);
    for (const auto& r : results) {
      if (!r.ok()) ++failures;
    }
    return failures;
  }
  for (const BatchQuery& q : batch) {
    bool ok = false;
    switch (q.kind) {
      case BatchQuery::Kind::kLocation:
        ok = engine.QueryByLocation(q.location, q.result_type, q.k).ok();
        break;
      case BatchQuery::Kind::kHour:
        ok = engine.QueryByHour(q.hour, q.result_type, q.k).ok();
        break;
      case BatchQuery::Kind::kKeyword:
        ok = engine.QueryByKeyword(q.keyword, q.result_type, q.k).ok();
        break;
      case BatchQuery::Kind::kVector:
        ok = engine.QueryByVector(q.vector, q.result_type, q.k, q.exclude)
                 .ok();
        break;
    }
    if (!ok) ++failures;
  }
  return failures;
}

struct WorkerResult {
  std::vector<double> latencies_ms;
  int64_t failures = 0;
};

/// One open-loop worker: a thinned Poisson process at `rate_qps`. Sleeps
/// until the next scheduled arrival, then drains every due request (up to
/// `batch`) against one freshly acquired snapshot. When the server falls
/// behind, arrivals keep accruing on schedule and their queueing delay is
/// charged to their latency — no coordinated omission.
void RunWorker(OnlineActor* model, const RequestPool& pool,
               const LoadConfig& cfg, double rate_qps, int batch, int worker,
               WorkerResult* out) {
  Rng rng(cfg.seed + static_cast<uint64_t>(worker) * 0x9e37u);
  out->latencies_ms.reserve(
      static_cast<std::size_t>(rate_qps * cfg.duration_s * 1.2) + 16);
  std::vector<double> due;
  std::vector<BatchQuery> request;
  uint64_t seq = 0;
  Stopwatch clock;
  double next_arrival = rng.Exponential() / rate_qps;
  while (next_arrival < cfg.duration_s) {
    double now = clock.ElapsedSeconds();
    while (now < next_arrival) {
      const double wait_s = next_arrival - now;
      std::this_thread::sleep_for(std::chrono::microseconds(
          std::min<int64_t>(static_cast<int64_t>(wait_s * 1e6), 200)));
      now = clock.ElapsedSeconds();
    }
    due.clear();
    request.clear();
    auto snap = model->CurrentSnapshot();
    if (snap == nullptr) {
      ++out->failures;
      next_arrival += rng.Exponential() / rate_qps;
      continue;
    }
    QueryEngine engine(std::move(snap));
    while (due.size() < static_cast<std::size_t>(batch) &&
           next_arrival <= now && next_arrival < cfg.duration_s) {
      due.push_back(next_arrival);
      MakeRequest(engine, pool, cfg.mix, worker, seq++, cfg.k, &request);
      next_arrival += rng.Exponential() / rate_qps;
    }
    out->failures += Serve(engine, request, batch > 1);
    const double done = clock.ElapsedSeconds();
    for (double arrival : due) {
      out->latencies_ms.push_back((done - arrival) * 1e3);
    }
  }
}

/// One measurement window: `threads` open-loop workers splitting
/// `target_qps` plus the live writer re-ingesting the tail batches and
/// publishing every --ingest_period_ms.
WindowStats MeasureWindow(OnlineActor* model,
                          const std::vector<std::vector<TokenizedRecord>>& tail,
                          const RequestPool& pool, const LoadConfig& cfg,
                          double target_qps, int batch) {
  WindowStats stats;
  stats.batch = batch;
  stats.target_qps = target_qps;

  std::vector<WorkerResult> results(static_cast<std::size_t>(cfg.threads));
  std::atomic<int> active{cfg.threads};
  ThreadPool pool_threads(cfg.threads + 1);
  // Live writer: fixed publish cadence until every worker's schedule is
  // drained. Re-ingesting the same tail batches keeps the model hot (decay
  // keeps weights bounded) without needing an unbounded stream.
  pool_threads.Submit([&] {
    Stopwatch clock;
    std::size_t b = 0;
    double next_tick = 0.0;
    while (active.load(std::memory_order_acquire) > 0) {
      if (clock.ElapsedSeconds() < next_tick) {
        std::this_thread::sleep_for(std::chrono::microseconds(500));
        continue;
      }
      next_tick = clock.ElapsedSeconds() + cfg.ingest_period_ms * 1e-3;
      if (!model->Ingest(tail[b % tail.size()]).ok()) break;
      model->PublishSnapshot();
      ++b;
    }
  });
  const double per_worker_qps = target_qps / cfg.threads;
  for (int t = 0; t < cfg.threads; ++t) {
    pool_threads.Submit([&, t] {
      RunWorker(model, pool, cfg, per_worker_qps, batch, t,
                &results[static_cast<std::size_t>(t)]);
      active.fetch_sub(1, std::memory_order_release);
    });
  }
  pool_threads.Wait();

  std::vector<double> all;
  for (const auto& r : results) {
    all.insert(all.end(), r.latencies_ms.begin(), r.latencies_ms.end());
    stats.failures += r.failures;
  }
  std::sort(all.begin(), all.end());
  stats.served = static_cast<int64_t>(all.size());
  stats.p50_ms = Percentile(all, 0.50);
  stats.p95_ms = Percentile(all, 0.95);
  stats.p99_ms = Percentile(all, 0.99);
  stats.p999_ms = Percentile(all, 0.999);
  stats.achieved_qps = static_cast<double>(stats.served) / cfg.duration_s;
  return stats;
}

struct MaxQpsRow {
  int batch = 1;
  double max_sustainable_qps = 0.0;
};

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  const int records =
      static_cast<int>(flags.GetInt("records", smoke ? 2500 : 12000));
  const int batches =
      static_cast<int>(flags.GetInt("batches", smoke ? 6 : 12));
  const int32_t dim = static_cast<int32_t>(flags.GetInt("dim", 32));
  LoadConfig cfg;
  cfg.k = static_cast<int>(flags.GetInt("k", 10));
  cfg.threads = static_cast<int>(flags.GetInt("threads", 2));
  cfg.duration_s = flags.GetDouble("duration_s", smoke ? 0.4 : 1.5);
  cfg.ingest_period_ms = flags.GetDouble("ingest_period_ms", 500.0);
  cfg.mix = flags.GetString("mix", "lhkv");
  const double base_qps = flags.GetDouble("qps", smoke ? 300.0 : 2000.0);
  const double slo_p99_ms = flags.GetDouble("slo_p99_ms", 20.0);
  const double ramp = flags.GetDouble("ramp", 1.6);
  const int max_levels =
      static_cast<int>(flags.GetInt("max_levels", smoke ? 2 : 8));
  const std::string out_path = flags.GetString("out", "BENCH_serve.json");
  const std::vector<int> batch_sizes =
      smoke ? std::vector<int>{1, 8} : std::vector<int>{1, 8, 32};
  if (records < batches || batches < 4 || dim < 1 || cfg.k < 1 ||
      cfg.threads < 1 || cfg.duration_s <= 0.0 || base_qps < 1.0 ||
      ramp <= 1.0 || cfg.mix.empty()) {
    std::fprintf(stderr,
                 "invalid flags (need records >= batches >= 4, dim >= 1, "
                 "k >= 1, threads >= 1, duration_s > 0, qps >= 1, ramp > 1, "
                 "non-empty mix)\n");
    return 1;
  }

  std::printf("building synthetic stream...\n");
  SyntheticConfig config;
  config.seed = 300;
  config.num_records = records;
  config.num_users = 400;
  config.num_topics = 12;
  config.num_venues = 80;
  config.num_communities = 8;
  auto ds = GenerateSynthetic(config, "serve-load");
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  CorpusBuildOptions build;
  auto corpus = TokenizedCorpus::Build(ds->corpus, build);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }
  std::vector<std::vector<TokenizedRecord>> stream(
      static_cast<std::size_t>(batches));
  for (std::size_t i = 0; i < corpus->size(); ++i) {
    stream[i * static_cast<std::size_t>(batches) / corpus->size()].push_back(
        corpus->record(i));
  }

  OnlineActorOptions options;
  options.dim = dim;
  options.decay_per_batch = 0.7;
  options.samples_per_edge_per_batch = 3.0;
  auto model = OnlineActor::Create(options);
  if (!model.ok()) {
    std::fprintf(stderr, "create: %s\n", model.status().ToString().c_str());
    return 1;
  }
  const std::size_t head = stream.size() / 2;
  for (std::size_t i = 0; i < head; ++i) {
    if (auto st = model->Ingest(stream[i]); !st.ok()) {
      std::fprintf(stderr, "ingest: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  auto first = model->PublishSnapshot();
  if (first == nullptr) {
    std::fprintf(stderr, "no snapshot after warm-up ingest\n");
    return 1;
  }
  std::vector<std::vector<TokenizedRecord>> tail(stream.begin() + head,
                                                 stream.end());

  RequestPool pool;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (!stream[i].empty()) pool.probes.push_back(stream[i].front().location);
  }
  pool.word_units = first->VerticesOfType(VertexType::kWord);
  pool.num_units = first->num_units();
  if (pool.probes.empty() || pool.word_units.empty() || pool.num_units <= 0) {
    std::fprintf(stderr, "warm-up snapshot has no probes/words/units\n");
    return 1;
  }

  // Latency rows: fixed offered load, one row per request-batch size.
  std::vector<WindowStats> latency_rows;
  for (int batch : batch_sizes) {
    WindowStats stats =
        MeasureWindow(&*model, tail, pool, cfg, base_qps, batch);
    std::printf(
        "latency  B=%-3d qps=%-7.0f p50=%.3fms p95=%.3fms p99=%.3fms "
        "p999=%.3fms served=%lld failures=%lld\n",
        stats.batch, stats.target_qps, stats.p50_ms, stats.p95_ms,
        stats.p99_ms, stats.p999_ms, static_cast<long long>(stats.served),
        static_cast<long long>(stats.failures));
    latency_rows.push_back(std::move(stats));
  }

  // Max sustainable QPS: ramp the offered load until p99 violates the SLO.
  std::vector<MaxQpsRow> max_rows;
  for (int batch : batch_sizes) {
    MaxQpsRow row;
    row.batch = batch;
    double qps = base_qps;
    for (int level = 0; level < max_levels; ++level) {
      WindowStats stats = MeasureWindow(&*model, tail, pool, cfg, qps, batch);
      const bool pass = stats.served > 0 && stats.failures == 0 &&
                        stats.p99_ms <= slo_p99_ms;
      std::printf("ramp     B=%-3d qps=%-7.0f p99=%.3fms -> %s\n", batch, qps,
                  stats.p99_ms, pass ? "pass" : "violates SLO");
      if (!pass) break;
      row.max_sustainable_qps = qps;
      qps *= ramp;
    }
    max_rows.push_back(row);
  }

  // Smoke self-check: the emitted stats must be structurally sane — every
  // window served requests, percentiles finite and monotone. No
  // performance thresholds; those live in bench_compare.py against the
  // committed baseline.
  if (smoke) {
    for (const WindowStats& s : latency_rows) {
      const bool monotone = s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms &&
                            s.p99_ms <= s.p999_ms;
      if (s.served <= 0 || s.failures != 0 || !monotone ||
          !std::isfinite(s.p999_ms) || s.p50_ms < 0.0) {
        std::fprintf(stderr, "smoke check failed: batch=%d served=%lld "
                             "failures=%lld p50=%.3f p999=%.3f\n",
                     s.batch, static_cast<long long>(s.served),
                     static_cast<long long>(s.failures), s.p50_ms, s.p999_ms);
        return 1;
      }
    }
  }

  double p99_b1 = 0.0, p99_bmax = 0.0;
  for (const WindowStats& s : latency_rows) {
    if (s.batch == 1) p99_b1 = s.p99_ms;
    if (s.batch == batch_sizes.back()) p99_bmax = s.p99_ms;
  }
  const double p99_ratio = p99_b1 > 0.0 ? p99_bmax / p99_b1 : 0.0;

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << "{\n";
  out << "  \"bench\": \"serve_load\",\n";
  out << "  \"records\": " << records << ",\n";
  out << "  \"batches\": " << batches << ",\n";
  out << "  \"dim\": " << dim << ",\n";
  out << "  \"k\": " << cfg.k << ",\n";
  out << "  \"threads\": " << cfg.threads << ",\n";
  out << "  \"ingest_period_ms\": " << cfg.ingest_period_ms << ",\n";
  out << "  \"slo_p99_ms\": " << slo_p99_ms << ",\n";
  out << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n";
  out << "  \"simd_available\": " << (Avx2Available() ? "true" : "false")
      << ",\n";
  char buf[224];
  out << "  \"latency\": [\n";
  for (std::size_t i = 0; i < latency_rows.size(); ++i) {
    const WindowStats& s = latency_rows[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"mode\": \"concurrent_ingest\", \"batch\": %d, "
                  "\"target_qps\": %.0f, \"p50_ms\": %.3f, \"p95_ms\": %.3f, "
                  "\"p99_ms\": %.3f, \"p999_ms\": %.3f, "
                  "\"achieved_qps\": %.1f}%s\n",
                  s.batch, s.target_qps, s.p50_ms, s.p95_ms, s.p99_ms,
                  s.p999_ms, s.achieved_qps,
                  i + 1 < latency_rows.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n";
  out << "  \"max_qps\": [\n";
  for (std::size_t i = 0; i < max_rows.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "    {\"mode\": \"concurrent_ingest\", \"batch\": %d, "
                  "\"max_sustainable_qps\": %.0f}%s\n",
                  max_rows[i].batch, max_rows[i].max_sustainable_qps,
                  i + 1 < max_rows.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n";
  std::snprintf(buf, sizeof(buf),
                "  \"batched_p99_latency_ratio\": %.3f\n", p99_ratio);
  out << buf;
  out << "}\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "write to %s failed\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s (p99 B=1 %.3fms, batched p99 ratio %.2f)%s\n",
              out_path.c_str(), p99_b1, p99_ratio, smoke ? " [smoke ok]" : "");
  return 0;
}

}  // namespace
}  // namespace actor

int main(int argc, char** argv) { return actor::Main(argc, argv); }
