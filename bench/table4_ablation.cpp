// Reproduces Table 4: the ablation test — ACTOR w/o inter (no hierarchical
// user-layer structure), ACTOR w/o intra (no bag-of-words model), and
// ACTOR-complete, on all three datasets.
//
// Expected shape: both ablations score below the complete model; on the
// mention-rich dataset (UTGEO2011-like) the inter-record structure
// contributes more (paper §6.3).
//
// Run:  ./table4_ablation [--scale=0.25] [--dim=32] [--epochs=8] [--spe=10]

#include <cstdio>

#include "bench_common.h"
#include "core/actor.h"
#include "eval/cross_modal_model.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  actor::Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.25);
  const int32_t dim = static_cast<int32_t>(flags.GetInt("dim", 32));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 8));
  const int spe = static_cast<int>(flags.GetInt("spe", 10));

  std::printf("Table 4: Mean Reciprocal Rank for Ablation Test (scale=%.2f)\n",
              scale);
  for (const auto& [name, pipeline] : actor::bench::DatasetConfigs(scale)) {
    auto data = actor::PrepareDataset(pipeline, name);
    data.status().CheckOK();
    actor::bench::PrintMrrHeader(name.c_str());

    struct Variant {
      const char* label;
      bool use_inter;
      bool use_bow;
    };
    const Variant variants[] = {
        {"w/o inter", false, true},
        {"w/o intra", true, false},
        {"complete", true, true},
    };
    for (const auto& v : variants) {
      actor::Stopwatch timer;
      actor::ActorOptions options;
      options.dim = dim;
      options.epochs = epochs;
      options.samples_per_edge = spe;
      options.negatives = 5;  // see Table 2 note on K at reduced dimension
      options.use_inter = v.use_inter;
      options.use_bag_of_words = v.use_bow;
      auto model = actor::TrainActor(*data->graphs, options);
      model.status().CheckOK();
      actor::EmbeddingCrossModalModel scorer(
          v.label, data->Snapshot(model->center));
      actor::EvalOptions eval;
      eval.max_queries = 2000;
      auto scores = actor::EvaluateCrossModal(scorer, data->test, eval);
      scores.status().CheckOK();
      actor::bench::PrintMrrRow(std::string("ACTOR ") + v.label, *scores);
      std::fprintf(stderr, "  [ACTOR %s trained in %.1fs]\n", v.label,
                   timer.ElapsedSeconds());
    }
  }
  return 0;
}
