// Serving-layer query-throughput harness: times QueryEngine's top-k
// cross-modal queries against published ModelSnapshots and emits
// BENCH_query.json so the read path's perf trajectory is tracked across
// PRs, alongside BENCH_sgd.json (batch trainer) and BENCH_online.json
// (streaming ingest).
//
// Rows: single-thread steady-state queries/s against a fixed snapshot
// (mode "single_thread"), multi-thread scaling on the same frozen
// snapshot at 2/4/8 query threads (mode "parallel"), and the serving
// contract's headline number — query threads running concurrently with a
// live Ingest()+PublishSnapshot() writer (mode "concurrent_ingest"),
// which exercises the SnapshotStore atomic slot under real contention.
// A second section, "publish_cost", times the write side of the store:
// microseconds per publish for the full-copy (delta_publish=false) path
// vs the chunk-COW delta path at controlled dirty-row fractions.
// A third section, "sharding", times single-thread scatter-gather
// queries/s through ShardedQueryEngine at 1/2/4 shards against composite
// snapshots of the same trained model (docs/sharding.md has the 1-core
// caveat: per-shard scans run sequentially here, so the column tracks
// scatter-gather overhead across commits, not shard speedup).
// See EXPERIMENTS.md for the machine-drift caveat before comparing
// against committed numbers.
//
// `--shard-smoke` skips the timed sections entirely and instead trains a
// 2-shard model, publishes both the flat (gathered) and the composite
// snapshot, and self-checks scatter-gather results against the flat
// engine's — exiting nonzero on any mismatch. CI runs this in the default
// build-test job as the sharded serving smoke.
//
// Usage: query_throughput [--records=12000] [--batches=12] [--dim=32]
//                         [--k=10] [--queries=4000]
//                         [--out=BENCH_query.json] [--shard-smoke]

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/online_actor.h"
#include "data/corpus.h"
#include "data/synthetic.h"
#include "embedding/dirty_rows.h"
#include "serve/model_snapshot.h"
#include "serve/query_engine.h"
#include "shard/sharded_query_engine.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"
#include "util/vec_math.h"

namespace actor {
namespace {

struct QueryRow {
  std::string mode;  // "single_thread", "parallel", or "concurrent_ingest"
  int threads = 1;
  double queries_per_sec = 0.0;
};

/// Round-robins the probe queries of one worker: alternating location /
/// hour / vector lookups so the measured mix touches the hotspot snap,
/// the hour snap, and the raw matrix scan. Returns the number of
/// successful queries (any failure short-circuits to 0 so a broken run
/// cannot masquerade as a fast one).
int64_t RunQueries(const QueryEngine& engine, const GeoPoint& probe,
                   int64_t count, int k, int worker) {
  int64_t ok = 0;
  const ChunkedMatrix& center = engine.snapshot().center();
  for (int64_t i = 0; i < count; ++i) {
    switch ((i + worker) % 3) {
      case 0: {
        auto r = engine.QueryByLocation(probe, VertexType::kWord, k);
        if (!r.ok()) return 0;
        break;
      }
      case 1: {
        auto r = engine.QueryByHour(static_cast<double>((i + worker) % 24),
                                    VertexType::kLocation, k);
        if (!r.ok()) return 0;
        break;
      }
      default: {
        const VertexId q =
            static_cast<VertexId>((i * 7 + worker) % center.rows());
        auto r = engine.QueryByVector(center.row(q), VertexType::kWord, k, q);
        if (!r.ok()) return 0;
        break;
      }
    }
    ++ok;
  }
  return ok;
}

/// Queries/s with `threads` workers hammering one frozen snapshot (no
/// writer). threads == 1 is the single-thread baseline row.
QueryRow MeasureParallel(const OnlineActor& model, const GeoPoint& probe,
                         int64_t queries, int k, int threads) {
  QueryRow row;
  row.mode = threads == 1 ? "single_thread" : "parallel";
  row.threads = threads;
  auto snapshot = model.CurrentSnapshot();
  if (snapshot == nullptr) return row;
  QueryEngine engine(std::move(snapshot));

  const int64_t per_worker = queries / threads;
  std::vector<int64_t> done(static_cast<std::size_t>(threads), 0);
  Stopwatch timer;
  if (threads == 1) {
    done[0] = RunQueries(engine, probe, per_worker, k, 0);
  } else {
    ThreadPool pool(threads);
    for (int t = 0; t < threads; ++t) {
      pool.Submit([&, t] {
        done[static_cast<std::size_t>(t)] =
            RunQueries(engine, probe, per_worker, k, t);
      });
    }
    pool.Wait();
  }
  const double secs = timer.ElapsedSeconds();
  int64_t total = 0;
  for (int64_t d : done) {
    if (d == 0) {
      std::fprintf(stderr, "query worker failed (mode=%s threads=%d)\n",
                   row.mode.c_str(), threads);
      return row;
    }
    total += d;
  }
  if (secs > 0.0) {
    row.queries_per_sec = static_cast<double>(total) / secs;
  }
  return row;
}

/// The serving contract under load: `threads` query workers re-acquire
/// the latest snapshot every iteration while the ingest thread keeps
/// training and publishing new versions. Measures queries/s over the
/// window in which the writer is live, so the row captures snapshot
/// acquisition + publication churn, not just scoring.
QueryRow MeasureConcurrentWithIngest(
    OnlineActor* model, const std::vector<std::vector<TokenizedRecord>>& tail,
    const GeoPoint& probe, int k, int threads) {
  QueryRow row;
  row.mode = "concurrent_ingest";
  row.threads = threads;

  std::atomic<bool> ingest_done{false};
  std::atomic<int64_t> total{0};
  std::atomic<bool> failed{false};
  ThreadPool pool(threads);
  for (int t = 0; t < threads; ++t) {
    pool.Submit([&, t] {
      int64_t mine = 0;
      while (!ingest_done.load(std::memory_order_acquire)) {
        auto snap = model->CurrentSnapshot();
        if (snap == nullptr) continue;
        QueryEngine engine(std::move(snap));
        if (RunQueries(engine, probe, 16, k, t) == 0) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        mine += 16;
      }
      total.fetch_add(mine, std::memory_order_relaxed);
    });
  }

  Stopwatch timer;
  for (const auto& batch : tail) {
    if (auto st = model->Ingest(batch); !st.ok()) {
      std::fprintf(stderr, "ingest: %s\n", st.ToString().c_str());
      failed.store(true, std::memory_order_relaxed);
      break;
    }
    model->PublishSnapshot();
  }
  ingest_done.store(true, std::memory_order_release);
  pool.Wait();
  const double secs = timer.ElapsedSeconds();
  if (failed.load() || secs <= 0.0) return row;
  row.queries_per_sec = static_cast<double>(total.load()) / secs;
  return row;
}

struct PublishRow {
  int dirty_pct = 0;
  double full_us = 0.0;   // us/publish, full-copy (delta_publish=false) path
  double delta_us = 0.0;  // us/publish, chunk-COW delta path
  double speedup = 0.0;   // full_us / delta_us
};

/// Rebuilds the actor's resolver state from the public catalogue
/// accessors, mirroring what a full (delta_publish=false) publish copies
/// per call: the O(units) type/name vectors plus the word-unit map. The
/// handful of hotspot-center doubles the real path also copies is noise
/// next to those, so omitting them only *understates* the full-copy cost.
ModelSnapshot::OnlineCatalog MakeCatalog(const OnlineActor& model) {
  ModelSnapshot::OnlineCatalog catalog;
  const int32_t n = model.num_units();
  catalog.types.reserve(static_cast<std::size_t>(n));
  catalog.names.reserve(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) {
    catalog.types.push_back(model.unit_type(v));
    catalog.names.push_back(model.unit_name(v));
    if (model.unit_type(v) == VertexType::kWord) {
      catalog.word_units.emplace(
          static_cast<int32_t>(catalog.word_units.size()), v);
    }
  }
  return catalog;
}

/// Mean microseconds per call of one publish flavor: repeats `publish`
/// until ~50ms of wall clock has passed (one untimed warm-up first).
template <typename Fn>
double TimePublish(Fn&& publish) {
  publish();
  Stopwatch timer;
  int iters = 0;
  double secs = 0.0;
  do {
    publish();
    ++iters;
    secs = timer.ElapsedSeconds();
  } while (secs < 0.05);
  return secs * 1e6 / iters;
}

/// The publish_cost section: us/publish for full-copy vs delta at dirty
/// fractions of 1/5/10/25/100% of the model's rows. Dirty rows form one
/// contiguous block at the tail of the id space — the clustered pattern a
/// streaming batch produces (recently added and re-trained units share
/// high ids). A uniform-random 10% of rows would land in nearly every
/// 64-row chunk and degenerate the delta to a full matrix copy; the
/// clustering is what the chunk-COW layout monetizes. The delta loop
/// chains each snapshot as the next publish's predecessor, matching the
/// steady-state PublishSnapshot() cycle.
std::vector<PublishRow> MeasurePublishCost(const OnlineActor& model) {
  std::vector<PublishRow> rows;
  const auto base = model.CurrentSnapshot();
  if (base == nullptr) return rows;
  const EmbeddingMatrix& center = model.center();
  const int32_t n = center.rows();
  if (n <= 0 || base->num_units() != n) return rows;

  uint64_t version = base->version();
  for (int pct : {1, 5, 10, 25, 100}) {
    PublishRow row;
    row.dirty_pct = pct;
    const int32_t span = std::max<int32_t>(1, n * pct / 100);
    DirtyRowSet dirty;
    dirty.Resize(n);
    for (int32_t r = n - span; r < n; ++r) dirty.Mark(r);

    row.full_us = TimePublish([&] {
      auto snap =
          ModelSnapshot::FromOnline(center, MakeCatalog(model), ++version);
      (void)snap;
    });
    auto prev = base;
    row.delta_us = TimePublish([&] {
      prev = ModelSnapshot::FromOnlineDelta(center, ++version, prev, dirty);
    });
    row.speedup = row.delta_us > 0.0 ? row.full_us / row.delta_us : 0.0;
    rows.push_back(row);
  }
  return rows;
}

struct ShardQueryRow {
  int shards = 1;
  double queries_per_sec = 0.0;
};

/// Single-thread scatter-gather queries/s against a composite snapshot:
/// the same location / hour / vector probe mix as RunQueries, scored
/// through ShardedQueryEngine. The per-shard scans run sequentially on
/// this thread, so on a 1-core box the column tracks scatter-gather
/// overhead (seed resolution, per-shard heads, merge) across commits, not
/// shard speedup.
ShardQueryRow MeasureShardedQueries(
    const std::vector<std::vector<TokenizedRecord>>& head, int32_t dim,
    int shards, const GeoPoint& probe, int64_t queries, int k) {
  ShardQueryRow row;
  row.shards = shards;

  OnlineActorOptions options;
  options.dim = dim;
  options.decay_per_batch = 0.7;
  options.samples_per_edge_per_batch = 3.0;
  options.num_shards = shards;
  auto model = OnlineActor::Create(options);
  if (!model.ok()) {
    std::fprintf(stderr, "create: %s\n", model.status().ToString().c_str());
    return row;
  }
  for (const auto& batch : head) {
    if (auto st = model->Ingest(batch); !st.ok()) {
      std::fprintf(stderr, "ingest: %s\n", st.ToString().c_str());
      return row;
    }
  }
  auto snapshot = model->PublishShardedSnapshot();
  if (snapshot == nullptr) return row;
  ShardedQueryEngine engine(std::move(snapshot));
  const ChunkedMatrix& shard0 = engine.snapshot().shard(0)->center();
  if (shard0.rows() <= 0) return row;

  int64_t done = 0;
  Stopwatch timer;
  for (int64_t i = 0; i < queries; ++i) {
    switch (i % 3) {
      case 0: {
        auto r = engine.QueryByLocation(probe, VertexType::kWord, k);
        if (!r.ok()) return row;
        break;
      }
      case 1: {
        auto r = engine.QueryByHour(static_cast<double>(i % 24),
                                    VertexType::kLocation, k);
        if (!r.ok()) return row;
        break;
      }
      default: {
        const int32_t q = static_cast<int32_t>((i * 7) % shard0.rows());
        auto r = engine.QueryByVector(shard0.row(q), VertexType::kWord, k);
        if (!r.ok()) return row;
        break;
      }
    }
    ++done;
  }
  const double secs = timer.ElapsedSeconds();
  if (secs > 0.0) {
    row.queries_per_sec = static_cast<double>(done) / secs;
  }
  return row;
}

/// The --shard-smoke mode: trains a small 2-shard model, publishes both
/// serving views of the same state, and checks the scatter-gather engine
/// against the flat engine on the gathered snapshot across the probe mix.
/// Any mismatch (unit, similarity bits, order, or error status) is a
/// failure. Returns the process exit code.
int RunShardSmoke() {
  std::printf("shard smoke: training 2-shard model...\n");
  SyntheticConfig config;
  config.seed = 301;
  config.num_records = 2400;
  config.num_users = 120;
  config.num_topics = 8;
  config.num_venues = 24;
  config.num_communities = 4;
  auto ds = GenerateSynthetic(config, "shard-smoke");
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  CorpusBuildOptions build;
  auto corpus = TokenizedCorpus::Build(ds->corpus, build);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }
  std::vector<std::vector<TokenizedRecord>> stream(3);
  for (std::size_t i = 0; i < corpus->size(); ++i) {
    stream[i * stream.size() / corpus->size()].push_back(corpus->record(i));
  }

  OnlineActorOptions options;
  options.dim = 16;
  options.samples_per_edge_per_batch = 2.0;
  options.num_shards = 2;
  auto model = OnlineActor::Create(options);
  if (!model.ok()) {
    std::fprintf(stderr, "create: %s\n", model.status().ToString().c_str());
    return 1;
  }
  for (const auto& batch : stream) {
    if (auto st = model->Ingest(batch); !st.ok()) {
      std::fprintf(stderr, "ingest: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  const auto flat_snap = model->PublishSnapshot();
  const auto sharded_snap = model->PublishShardedSnapshot();
  if (flat_snap == nullptr || sharded_snap == nullptr) {
    std::fprintf(stderr, "shard smoke: publish failed\n");
    return 1;
  }
  if (flat_snap->version() != sharded_snap->version() ||
      flat_snap->num_units() != sharded_snap->num_units()) {
    std::fprintf(stderr, "shard smoke: snapshot version/unit mismatch\n");
    return 1;
  }
  QueryEngine flat(flat_snap);
  ShardedQueryEngine scatter(sharded_snap);

  const GeoPoint probe = stream[0].front().location;
  int checked = 0;
  for (const VertexType type :
       {VertexType::kWord, VertexType::kLocation, VertexType::kTime,
        VertexType::kUser}) {
    for (const int k : {1, 5, 50}) {
      const auto a = flat.QueryByLocation(probe, type, k);
      const auto b = scatter.QueryByLocation(probe, type, k);
      const auto c = flat.QueryByHour(12.5, type, k);
      const auto d = scatter.QueryByHour(12.5, type, k);
      const Result<std::vector<Neighbor>>* pairs[][2] = {{&a, &b},
                                                         {&c, &d}};
      for (const auto& pair : pairs) {
        const auto& want = *pair[0];
        const auto& got = *pair[1];
        if (want.ok() != got.ok()) {
          std::fprintf(stderr, "shard smoke: status mismatch\n");
          return 1;
        }
        if (!want.ok()) continue;
        if (want->size() != got->size()) {
          std::fprintf(stderr, "shard smoke: result size mismatch\n");
          return 1;
        }
        for (std::size_t i = 0; i < want->size(); ++i) {
          if ((*want)[i].vertex != (*got)[i].vertex ||
              (*want)[i].similarity != (*got)[i].similarity) {
            std::fprintf(stderr,
                         "shard smoke: rank %zu mismatch (type=%d k=%d)\n",
                         i, static_cast<int>(type), k);
            return 1;
          }
        }
        ++checked;
      }
    }
  }
  std::printf("shard smoke: OK (%d query results bit-identical at 2 "
              "shards)\n",
              checked);
  return 0;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.GetBool("shard-smoke", false)) return RunShardSmoke();
  const int records = static_cast<int>(flags.GetInt("records", 12000));
  const int batches = static_cast<int>(flags.GetInt("batches", 12));
  const int32_t dim = static_cast<int32_t>(flags.GetInt("dim", 32));
  const int k = static_cast<int>(flags.GetInt("k", 10));
  const int64_t queries = flags.GetInt("queries", 4000);
  const std::string out_path = flags.GetString("out", "BENCH_query.json");
  if (records < batches || batches < 4 || dim < 1 || k < 1 || queries < 8) {
    std::fprintf(stderr,
                 "invalid flags: --records=%d --batches=%d --dim=%d --k=%d "
                 "--queries=%lld (need records >= batches >= 4, dim >= 1, "
                 "k >= 1, queries >= 8)\n",
                 records, batches, dim, k,
                 static_cast<long long>(queries));
    return 1;
  }

  std::printf("building synthetic stream...\n");
  SyntheticConfig config;
  config.seed = 300;
  config.num_records = records;
  config.num_users = 400;
  config.num_topics = 12;
  config.num_venues = 80;
  config.num_communities = 8;
  auto ds = GenerateSynthetic(config, "query-throughput");
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  CorpusBuildOptions build;
  auto corpus = TokenizedCorpus::Build(ds->corpus, build);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }
  std::vector<std::vector<TokenizedRecord>> stream(
      static_cast<std::size_t>(batches));
  for (std::size_t i = 0; i < corpus->size(); ++i) {
    stream[i * static_cast<std::size_t>(batches) / corpus->size()].push_back(
        corpus->record(i));
  }

  // Ingest the first half of the stream to populate the model, publish,
  // and keep the back half for the concurrent-ingest rows.
  OnlineActorOptions options;
  options.dim = dim;
  options.decay_per_batch = 0.7;
  options.samples_per_edge_per_batch = 3.0;
  auto model = OnlineActor::Create(options);
  if (!model.ok()) {
    std::fprintf(stderr, "create: %s\n", model.status().ToString().c_str());
    return 1;
  }
  const std::size_t head = stream.size() / 2;
  for (std::size_t i = 0; i < head; ++i) {
    if (auto st = model->Ingest(stream[i]); !st.ok()) {
      std::fprintf(stderr, "ingest: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  model->PublishSnapshot();
  const GeoPoint probe = stream[0].front().location;

  std::vector<QueryRow> rows;
  for (int threads : {1, 2, 4, 8}) {
    rows.push_back(MeasureParallel(*model, probe, queries, k, threads));
  }
  std::vector<std::vector<TokenizedRecord>> tail(stream.begin() + head,
                                                 stream.end());
  rows.push_back(MeasureConcurrentWithIngest(&*model, tail, probe, k, 4));
  for (const auto& row : rows) {
    std::printf("mode=%-17s threads=%d  %.1f queries/s\n", row.mode.c_str(),
                row.threads, row.queries_per_sec);
  }

  const std::vector<PublishRow> publish = MeasurePublishCost(*model);
  double speedup_10pct = 0.0;
  for (const auto& row : publish) {
    std::printf("publish dirty=%3d%%  full=%.1fus  delta=%.1fus  (x%.1f)\n",
                row.dirty_pct, row.full_us, row.delta_us, row.speedup);
    if (row.dirty_pct == 10) speedup_10pct = row.speedup;
  }

  // Sharded scatter-gather rows: each shard count trains its own small
  // model over the same stream head, so the column is self-contained.
  std::vector<std::vector<TokenizedRecord>> head_batches(
      stream.begin(), stream.begin() + head);
  std::vector<ShardQueryRow> shard_rows;
  for (int shards : {1, 2, 4}) {
    shard_rows.push_back(MeasureShardedQueries(head_batches, dim, shards,
                                               probe, queries / 4, k));
    const ShardQueryRow& row = shard_rows.back();
    std::printf("sharded queries shards=%d  %.1f queries/s\n", row.shards,
                row.queries_per_sec);
  }

  auto find = [&rows](const std::string& mode, int threads) {
    for (const auto& r : rows) {
      if (r.mode == mode && r.threads == threads) return r.queries_per_sec;
    }
    return 0.0;
  };
  const double single = find("single_thread", 1);
  const double par8 = find("parallel", 8);
  const double live4 = find("concurrent_ingest", 4);
  const double thread_speedup = single > 0.0 ? par8 / single : 0.0;
  // Queries/s retained at 4 threads once a live writer shares the store —
  // the cost of publication churn relative to the frozen-snapshot run.
  const double par4 = find("parallel", 4);
  const double live_retention = par4 > 0.0 ? live4 / par4 : 0.0;

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << "{\n";
  out << "  \"bench\": \"query_throughput\",\n";
  out << "  \"records\": " << records << ",\n";
  out << "  \"batches\": " << batches << ",\n";
  out << "  \"dim\": " << dim << ",\n";
  out << "  \"k\": " << k << ",\n";
  out << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n";
  out << "  \"simd_available\": " << (Avx2Available() ? "true" : "false")
      << ",\n";
  char buf[160];
  out << "  \"throughput\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "    {\"mode\": \"%s\", \"threads\": %d, "
                  "\"queries_per_sec\": %.1f}%s\n",
                  rows[i].mode.c_str(), rows[i].threads,
                  rows[i].queries_per_sec, i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n";
  out << "  \"publish_cost\": [\n";
  for (std::size_t i = 0; i < publish.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "    {\"dirty_pct\": %d, \"full_us_per_publish\": %.2f, "
                  "\"delta_us_per_publish\": %.2f, \"speedup\": %.2f}%s\n",
                  publish[i].dirty_pct, publish[i].full_us,
                  publish[i].delta_us, publish[i].speedup,
                  i + 1 < publish.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n";
  out << "  \"sharding\": [\n";
  for (std::size_t i = 0; i < shard_rows.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "    {\"shards\": %d, \"queries_per_sec\": %.1f}%s\n",
                  shard_rows[i].shards, shard_rows[i].queries_per_sec,
                  i + 1 < shard_rows.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n";
  std::snprintf(buf, sizeof(buf),
                "  \"thread_speedup_8t_vs_1t\": %.3f,\n", thread_speedup);
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "  \"concurrent_ingest_retention_4t\": %.3f,\n",
                live_retention);
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "  \"delta_publish_speedup_10pct\": %.3f\n", speedup_10pct);
  out << buf;
  out << "}\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "write to %s failed\n", out_path.c_str());
    return 1;
  }
  std::printf(
      "wrote %s (threads x%.2f at 8 vs 1, live-ingest retention %.2f at 4t, "
      "delta publish x%.1f at 10%% dirty)\n",
      out_path.c_str(), thread_speedup, live_retention, speedup_10pct);
  return 0;
}

}  // namespace
}  // namespace actor

int main(int argc, char** argv) { return actor::Main(argc, argv); }
