// Reproduces Table 2: Mean Reciprocal Rank for cross-modal retrieval —
// all eight methods (LGTA, MGTM, metapath2vec, LINE, LINE(U), CrossMap,
// CrossMap(U), ACTOR) on the three datasets, three tasks each.
//
// Expected shape (paper §6.2.3): ACTOR best overall; CrossMap(U)/CrossMap
// the strongest baselines; LINE(U) > LINE; topic models (LGTA > MGTM)
// trail the embedding methods and report "/" for the time task.
//
// Run:  ./table2_cross_modal_mrr [--scale=0.25] [--dim=32] [--epochs=8]
//       [--spe=10] [--threads=1] [--quick] (quick = one dataset)

#include <cstdio>
#include <memory>

#include "baselines/crossmap.h"
#include "baselines/geo_topic_model.h"
#include "baselines/metapath2vec.h"
#include "bench_common.h"
#include "core/actor.h"
#include "core/meta_graph.h"
#include "embedding/line.h"
#include "eval/cross_modal_model.h"
#include "util/stopwatch.h"

namespace {

using actor::bench::PrintMrrHeader;
using actor::bench::PrintMrrRow;

struct BenchConfig {
  int32_t dim = 32;
  int epochs = 8;
  int spe = 10;  // samples per edge over the whole run
  // Negative samples for the per-edge-type methods. The paper uses K=1 at
  // d=300; at this harness's reduced dimension K=5 (matching the LINE
  // baseline) is needed for well-spread embeddings (EXPERIMENTS.md).
  int negatives = 5;
  int threads = 1;
  std::size_t max_queries = 2000;
};

void EvaluateEmbedding(const char* name, const actor::EmbeddingMatrix& center,
                       const actor::PreparedDataset& data,
                       const BenchConfig& config, double train_seconds) {
  actor::EmbeddingCrossModalModel model(name, data.Snapshot(center));
  actor::EvalOptions eval;
  eval.max_queries = config.max_queries;
  auto scores = actor::EvaluateCrossModal(model, data.test, eval);
  scores.status().CheckOK();
  PrintMrrRow(name, *scores);
  std::fprintf(stderr, "  [%s trained in %.1fs]\n", name, train_seconds);
}

void RunDataset(const std::string& name,
                const actor::PipelineOptions& pipeline,
                const BenchConfig& config) {
  actor::Stopwatch prep_timer;
  auto data_result = actor::PrepareDataset(pipeline, name);
  data_result.status().CheckOK();
  const actor::PreparedDataset& data = *data_result;
  std::fprintf(stderr, "[%s prepared in %.1fs: %zu records, |E|=%lld]\n",
               name.c_str(), prep_timer.ElapsedSeconds(), data.full.size(),
               static_cast<long long>(
                   data.graphs->activity.num_directed_edges()));
  PrintMrrHeader(name.c_str());
  actor::EvalOptions eval;
  eval.max_queries = config.max_queries;

  // --- LGTA / MGTM ------------------------------------------------------
  for (const bool mgtm : {false, true}) {
    actor::Stopwatch timer;
    actor::GeoTopicOptions options =
        mgtm ? actor::MgtmOptions() : actor::LgtaOptions();
    options.num_regions = 40;
    options.num_topics = 20;
    options.em_iterations = 12;
    auto model = actor::GeoTopicModel::Train(data.train, options);
    model.status().CheckOK();
    actor::GeoTopicCrossModalModel scorer(mgtm ? "MGTM" : "LGTA", &*model);
    auto scores = actor::EvaluateCrossModal(scorer, data.test, eval);
    scores.status().CheckOK();
    PrintMrrRow(scorer.name(), *scores);
    std::fprintf(stderr, "  [%s trained in %.1fs]\n", scorer.name().c_str(),
                 timer.ElapsedSeconds());
  }

  // --- metapath2vec -----------------------------------------------------
  {
    actor::Stopwatch timer;
    actor::Metapath2vecOptions options;
    options.dim = config.dim;
    options.walk.walks_per_start = 10;
    options.walk.walk_length = 40;
    options.skipgram.window = 3;
    options.skipgram.negatives = 5;
    options.skipgram.epochs = 2;
    auto model = actor::TrainMetapath2vec(data.graphs->activity, options);
    model.status().CheckOK();
    EvaluateEmbedding("metapath2vec", model->center, data, config,
                      timer.ElapsedSeconds());
  }

  // --- LINE / LINE(U) ----------------------------------------------------
  for (const bool with_users : {false, true}) {
    actor::Stopwatch timer;
    actor::LineOptions options;
    options.dim = config.dim;
    options.samples_per_edge = config.spe;
    options.num_threads = config.threads;
    options.edge_types = actor::IntraEdgeTypes();
    if (with_users) {
      for (actor::EdgeType e : actor::InterEdgeTypes()) {
        options.edge_types.push_back(e);
      }
    }
    auto model = actor::TrainLine(data.graphs->activity, options);
    model.status().CheckOK();
    EvaluateEmbedding(with_users ? "LINE(U)" : "LINE", model->center, data,
                      config, timer.ElapsedSeconds());
  }

  // --- CrossMap / CrossMap(U) ---------------------------------------------
  for (const bool with_users : {false, true}) {
    actor::Stopwatch timer;
    actor::CrossMapOptions options;
    options.dim = config.dim;
    options.epochs = config.epochs;
    options.samples_per_edge = config.spe;
    options.negatives = config.negatives;
    options.num_threads = config.threads;
    options.include_user_edges = with_users;
    auto model = actor::TrainCrossMap(*data.graphs, options);
    model.status().CheckOK();
    EvaluateEmbedding(with_users ? "CrossMap(U)" : "CrossMap", model->center,
                      data, config, timer.ElapsedSeconds());
  }

  // --- ACTOR ---------------------------------------------------------------
  {
    actor::Stopwatch timer;
    actor::ActorOptions options;
    options.dim = config.dim;
    options.epochs = config.epochs;
    options.samples_per_edge = config.spe;
    options.negatives = config.negatives;
    options.num_threads = config.threads;
    auto model = actor::TrainActor(*data.graphs, options);
    model.status().CheckOK();
    EvaluateEmbedding("ACTOR", model->center, data, config,
                      timer.ElapsedSeconds());
  }
}

}  // namespace

int main(int argc, char** argv) {
  actor::Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.25);
  BenchConfig config;
  config.dim = static_cast<int32_t>(flags.GetInt("dim", 32));
  config.epochs = static_cast<int>(flags.GetInt("epochs", 8));
  config.spe = static_cast<int>(flags.GetInt("spe", 10));
  config.negatives = static_cast<int>(flags.GetInt("negatives", 5));
  config.threads = static_cast<int>(flags.GetInt("threads", 1));
  config.max_queries =
      static_cast<std::size_t>(flags.GetInt("max_queries", 2000));

  std::printf(
      "Table 2: Mean Reciprocal Rank for Cross-Modal Retrieval\n"
      "(synthetic datasets at scale=%.2f, d=%d; see EXPERIMENTS.md)\n",
      scale, config.dim);
  auto datasets = actor::bench::DatasetConfigs(scale);
  if (flags.GetBool("quick", false)) datasets.resize(1);
  for (const auto& [name, pipeline] : datasets) {
    RunDataset(name, pipeline, config);
  }
  return 0;
}
