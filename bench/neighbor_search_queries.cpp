// Reproduces the neighbor-search comparisons of §6.4 — Fig. 9 (spatial
// query), Fig. 10 (temporal query), Fig. 11 (textual query): top-k
// cross-modal neighbors under ACTOR vs CrossMap on the TWEET-like
// dataset.
//
// Expected shape: ACTOR surfaces venue-/topic-specific units (venue name
// keywords, the venue's own topic words) where CrossMap mixes in generic
// high-frequency words (paper Figs. 9-11).
//
// Run:  ./neighbor_search_queries [--scale=0.25] [--k=10]

#include <algorithm>
#include <cstdio>

#include "baselines/crossmap.h"
#include "bench_common.h"
#include "core/actor.h"
#include "eval/neighbor_search.h"
#include "util/stopwatch.h"

namespace {

void PrintSideBySide(const char* title,
                     const std::vector<actor::Neighbor>& actor_results,
                     const std::vector<actor::Neighbor>& crossmap_results) {
  std::printf("\n--- %s ---\n", title);
  std::printf("  %-30s %6s | %-30s %6s\n", "ACTOR", "cos", "CrossMap", "cos");
  const std::size_t rows =
      std::max(actor_results.size(), crossmap_results.size());
  for (std::size_t i = 0; i < rows; ++i) {
    const std::string a =
        i < actor_results.size() ? actor_results[i].name : "";
    const double a_sim =
        i < actor_results.size() ? actor_results[i].similarity : 0.0;
    const std::string c =
        i < crossmap_results.size() ? crossmap_results[i].name : "";
    const double c_sim =
        i < crossmap_results.size() ? crossmap_results[i].similarity : 0.0;
    std::printf("  %-30s %6.3f | %-30s %6.3f\n", a.c_str(), a_sim, c.c_str(),
                c_sim);
  }
}

}  // namespace

int main(int argc, char** argv) {
  actor::Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.25);
  const int k = static_cast<int>(flags.GetInt("k", 10));

  std::printf("Neighbor search queries (Figs. 9-11): ACTOR vs CrossMap\n");
  // §6.4 uses the TWEET dataset.
  auto data = actor::PrepareDataset(actor::TweetPipeline(scale), "TWEET");
  data.status().CheckOK();

  actor::ActorOptions actor_options;
  actor_options.dim = 32;
  actor_options.epochs = 8;
  actor_options.samples_per_edge = 10;
  actor_options.negatives = 5;  // see Table 2 note on K at reduced dimension
  auto actor_model = actor::TrainActor(*data->graphs, actor_options);
  actor_model.status().CheckOK();

  actor::CrossMapOptions crossmap_options;
  crossmap_options.dim = 32;
  crossmap_options.epochs = 8;
  crossmap_options.samples_per_edge = 10;
  crossmap_options.negatives = 5;
  auto crossmap_model =
      actor::TrainCrossMap(*data->graphs, crossmap_options);
  crossmap_model.status().CheckOK();

  actor::NeighborSearcher actor_search(data->Snapshot(actor_model->center));
  actor::NeighborSearcher crossmap_search(
      data->Snapshot(crossmap_model->center));

  // Fig. 9: spatial query at the busiest venue ("port of Los Angeles" in
  // the paper).
  std::vector<int> venue_counts(data->dataset.truth.venue_locations.size(),
                                0);
  for (int v : data->dataset.truth.record_venues) ++venue_counts[v];
  const int busiest = static_cast<int>(
      std::max_element(venue_counts.begin(), venue_counts.end()) -
      venue_counts.begin());
  const actor::GeoPoint venue =
      data->dataset.truth.venue_locations[busiest];
  {
    auto a = actor_search.QueryByLocation(venue, actor::VertexType::kWord, k);
    auto c =
        crossmap_search.QueryByLocation(venue, actor::VertexType::kWord, k);
    a.status().CheckOK();
    c.status().CheckOK();
    char title[160];
    std::snprintf(title, sizeof(title),
                  "Fig. 9: spatial query at venue %d (%.2f, %.2f), truth "
                  "keyword '%s'",
                  busiest, venue.x, venue.y,
                  data->dataset.truth.venue_keywords[busiest].c_str());
    PrintSideBySide(title, *a, *c);
  }

  // Fig. 10: temporal query of 10:00 pm — nearby times and words.
  {
    auto a_words =
        actor_search.QueryByHour(22.0, actor::VertexType::kWord, k);
    auto c_words =
        crossmap_search.QueryByHour(22.0, actor::VertexType::kWord, k);
    a_words.status().CheckOK();
    c_words.status().CheckOK();
    PrintSideBySide("Fig. 10: temporal query of 22:00 -> words", *a_words,
                    *c_words);
    auto a_times =
        actor_search.QueryByHour(22.0, actor::VertexType::kTime, 5);
    auto c_times =
        crossmap_search.QueryByHour(22.0, actor::VertexType::kTime, 5);
    a_times.status().CheckOK();
    c_times.status().CheckOK();
    PrintSideBySide("Fig. 10: temporal query of 22:00 -> temporal hotspots",
                    *a_times, *c_times);
  }

  // Fig. 11: textual query of a venue keyword ("patrick_molloy_sport_pub"
  // in the paper) -> words, locations, and times.
  {
    const std::string keyword =
        data->dataset.truth.venue_keywords[busiest];
    auto a_words =
        actor_search.QueryByKeyword(keyword, actor::VertexType::kWord, k);
    auto c_words =
        crossmap_search.QueryByKeyword(keyword, actor::VertexType::kWord, k);
    if (a_words.ok() && c_words.ok()) {
      PrintSideBySide(("Fig. 11: textual query '" + keyword + "' -> words")
                          .c_str(),
                      *a_words, *c_words);
      auto a_locs = actor_search.QueryByKeyword(
          keyword, actor::VertexType::kLocation, 5);
      auto c_locs = crossmap_search.QueryByKeyword(
          keyword, actor::VertexType::kLocation, 5);
      a_locs.status().CheckOK();
      c_locs.status().CheckOK();
      PrintSideBySide(
          ("Fig. 11: textual query '" + keyword + "' -> locations").c_str(),
          *a_locs, *c_locs);
    } else {
      std::printf("\n(venue keyword '%s' pruned from vocabulary; skipping "
                  "Fig. 11)\n",
                  keyword.c_str());
    }
  }
  return 0;
}
