// Reproduces Fig. 12: scalability of ACTOR on the TWEET-like dataset.
//   (a) edge scaling  — total time vs sampled-edge multiple 1x..4x
//   (b) strong scaling — fixed edges, threads 1..4
//   (c) weak scaling  — edges and threads grown together
//
// Expected shape: (a) linear in the number of sampled edges; (b) time
// drops with threads (HOGWILD); (c) near-constant. NOTE: this container
// exposes a single CPU core, so (b)/(c) cannot show real speedup here —
// the harness still runs the sweeps and reports per-thread sample
// accounting (see EXPERIMENTS.md).
//
// Run:  ./fig12_scalability [--scale=0.25] [--base_samples=2000000]

#include <cstdio>
#include <map>
#include <memory>
#include <thread>

#include "bench_common.h"
#include "core/actor.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace {

struct RunResult {
  double seconds = 0.0;
  int64_t steps = 0;  // actual SGD steps executed (edge + record)
};

/// Trains ACTOR with an explicit total sample budget expressed through
/// samples_per_edge, and returns the wall-clock time plus the actual step
/// count (the integer samples_per_edge quantizes the requested budget).
/// `pool` is the sweep-owned persistent worker pool (null for the
/// single-threaded runs), so the thread sweep measures HOGWILD training on
/// long-lived workers rather than per-run thread spawn/join.
RunResult TimeActor(const actor::BuiltGraphs& graphs, int64_t total_samples,
                    int threads, actor::ThreadPool* pool) {
  const int64_t edges = graphs.activity.num_directed_edges();
  actor::ActorOptions options;
  options.dim = 32;
  options.epochs = 4;
  options.samples_per_edge =
      std::max<int>(1, static_cast<int>(total_samples / std::max<int64_t>(
                                                            1, edges)));
  options.num_threads = threads;
  options.pool = pool;
  actor::Stopwatch timer;
  auto model = actor::TrainActor(graphs, options);
  model.status().CheckOK();
  return {timer.ElapsedSeconds(),
          model->stats.edge_steps + model->stats.record_steps};
}

/// Pools for the thread sweeps, created once per thread count and reused
/// by every run at that width (ROADMAP: the Fig. 12 sweep must exercise
/// the persistent pool through ActorOptions/TrainOptions::pool).
class PoolCache {
 public:
  actor::ThreadPool* ForThreads(int threads) {
    if (threads <= 1) return nullptr;
    auto& slot = pools_[threads];
    if (slot == nullptr) {
      slot = std::make_unique<actor::ThreadPool>(
          static_cast<std::size_t>(threads));
    }
    return slot.get();
  }

 private:
  std::map<int, std::unique_ptr<actor::ThreadPool>> pools_;
};

}  // namespace

int main(int argc, char** argv) {
  actor::Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.25);
  const int64_t base_samples = flags.GetInt("base_samples", 2000000);

  std::printf("Fig. 12: Scalability of ACTOR (TWEET-like dataset, "
              "scale=%.2f; base sampling edges = %lld)\n",
              scale, static_cast<long long>(base_samples));
  std::printf("hardware threads available: %u\n",
              std::thread::hardware_concurrency());

  auto data = actor::PrepareDataset(actor::TweetPipeline(scale), "TWEET");
  data.status().CheckOK();
  std::printf("|E| = %lld directed edges\n\n",
              static_cast<long long>(
                  data->graphs->activity.num_directed_edges()));

  PoolCache pools;

  // (a) Edge scaling: 1x..4x sampled edges, 1 thread.
  std::printf("Fig. 12a — edge scaling (1 thread)\n");
  std::printf("%10s %12s %14s %14s\n", "multiple", "seconds", "steps",
              "us/step");
  double base_time = 0.0;
  for (int multiple = 1; multiple <= 4; ++multiple) {
    const int64_t samples = base_samples * multiple;
    const RunResult run = TimeActor(*data->graphs, samples, 1, nullptr);
    if (multiple == 1) base_time = run.seconds;
    std::printf("%9dx %12.2f %14lld %14.3f\n", multiple, run.seconds,
                static_cast<long long>(run.steps),
                1e6 * run.seconds / static_cast<double>(run.steps));
  }

  // (b) Strong scaling: fixed edges, threads 1..4.
  std::printf("\nFig. 12b — thread scaling (fixed %lld requested samples)\n",
              static_cast<long long>(base_samples));
  std::printf("%10s %12s %12s\n", "threads", "seconds", "speedup");
  for (int threads = 1; threads <= 4; ++threads) {
    const RunResult run = TimeActor(*data->graphs, base_samples, threads,
                                    pools.ForThreads(threads));
    std::printf("%10d %12.2f %11.2fx\n", threads, run.seconds,
                base_time / run.seconds);
  }

  // (c) Weak scaling: threads and edges grown together.
  std::printf("\nFig. 12c — weak scaling (samples and threads x1..x4)\n");
  std::printf("%10s %12s %14s %16s\n", "factor", "seconds", "us/step",
              "time vs 1x");
  double weak_base = 0.0;
  for (int factor = 1; factor <= 4; ++factor) {
    const RunResult run = TimeActor(*data->graphs, base_samples * factor,
                                    factor, pools.ForThreads(factor));
    if (factor == 1) weak_base = run.seconds;
    std::printf("%10d %12.2f %14.3f %16.2f\n", factor, run.seconds,
                1e6 * run.seconds / static_cast<double>(run.steps),
                run.seconds / weak_base);
  }
  return 0;
}
