// Reproduces the case studies of §6.2.4 — Fig. 5 (activity prediction
// ranking), Table 3 (time prediction ranking) and Fig. 8 (location
// prediction ranking): for held-out query records, both ACTOR and
// CrossMap rank the same 11 candidates (1 truth + 10 noise) side by side.
//
// Expected shape: ACTOR places the ground truth at or near rank 1 more
// often than CrossMap.
//
// Run:  ./case_study [--scale=0.25] [--queries=5]

#include <cstdio>

#include "baselines/crossmap.h"
#include "bench_common.h"
#include "core/actor.h"
#include "eval/cross_modal_model.h"
#include "util/stopwatch.h"

namespace {

void RunTask(const char* title, actor::PredictionTask task,
             const actor::CrossModalModel& actor_model,
             const actor::CrossModalModel& crossmap_model,
             const actor::TokenizedCorpus& test, int queries) {
  std::printf("\n--- %s prediction (1 truth + 10 noise per query) ---\n",
              title);
  double actor_rank_sum = 0.0, crossmap_rank_sum = 0.0;
  for (int q = 0; q < queries; ++q) {
    auto actor_ranking = actor::CaseStudyRanking(actor_model, test, q, task);
    auto crossmap_ranking =
        actor::CaseStudyRanking(crossmap_model, test, q, task);
    actor_ranking.status().CheckOK();
    crossmap_ranking.status().CheckOK();

    // Map candidate label -> rank for CrossMap, to print side by side.
    auto rank_of = [&](const std::string& label) {
      for (const auto& c : *crossmap_ranking) {
        if (c.label == label) return c.rank;
      }
      return -1;
    };
    std::printf("query %d:\n", q);
    std::printf("  %-58s %5s %5s\n", "candidate", "ACT", "CM");
    for (const auto& c : *actor_ranking) {
      std::string label = c.label.substr(0, 54);
      if (c.is_truth) label = "* " + label;
      std::printf("  %-58s %5d %5d\n", label.c_str(), c.rank,
                  rank_of(c.label));
      if (c.is_truth) {
        actor_rank_sum += c.rank;
        crossmap_rank_sum += rank_of(c.label);
      }
    }
  }
  std::printf("mean truth rank over %d queries: ACTOR=%.2f CrossMap=%.2f\n",
              queries, actor_rank_sum / queries, crossmap_rank_sum / queries);
}

}  // namespace

int main(int argc, char** argv) {
  actor::Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.25);
  const int queries = static_cast<int>(flags.GetInt("queries", 3));

  std::printf("Case studies (Fig. 5 / Table 3 / Fig. 8): ACTOR vs CrossMap "
              "candidate rankings\n");
  auto data = actor::PrepareDataset(actor::bench::DatasetConfigs(scale)[0]
                                        .second,
                                    "UTGEO2011");
  data.status().CheckOK();

  actor::ActorOptions actor_options;
  actor_options.dim = 32;
  actor_options.epochs = 8;
  actor_options.samples_per_edge = 10;
  actor_options.negatives = 5;  // see Table 2 note on K at reduced dimension
  auto actor_model = actor::TrainActor(*data->graphs, actor_options);
  actor_model.status().CheckOK();
  actor::EmbeddingCrossModalModel actor_scorer(
      "ACTOR", data->Snapshot(actor_model->center));

  actor::CrossMapOptions crossmap_options;
  crossmap_options.dim = 32;
  crossmap_options.epochs = 8;
  crossmap_options.samples_per_edge = 10;
  crossmap_options.negatives = 5;
  auto crossmap_model =
      actor::TrainCrossMap(*data->graphs, crossmap_options);
  crossmap_model.status().CheckOK();
  actor::EmbeddingCrossModalModel crossmap_scorer(
      "CrossMap", data->Snapshot(crossmap_model->center));

  RunTask("Activity (Fig. 5)", actor::PredictionTask::kText, actor_scorer,
          crossmap_scorer, data->test, queries);
  RunTask("Time (Table 3)", actor::PredictionTask::kTime, actor_scorer,
          crossmap_scorer, data->test, queries);
  RunTask("Location (Fig. 8)", actor::PredictionTask::kLocation,
          actor_scorer, crossmap_scorer, data->test, queries);
  return 0;
}
