#ifndef ACTOR_BENCH_BENCH_COMMON_H_
#define ACTOR_BENCH_BENCH_COMMON_H_

// Shared helpers for the table/figure reproduction harnesses. Each bench
// binary prints the same rows/series as the corresponding paper element
// (see DESIGN.md §4 for the experiment index).

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "eval/pipeline.h"
#include "eval/prediction.h"
#include "util/flags.h"

namespace actor {
namespace bench {

/// The three paper-like datasets at the requested scale.
inline std::vector<std::pair<std::string, PipelineOptions>> DatasetConfigs(
    double scale) {
  return {
      {"UTGEO2011", UTGeoPipeline(scale)},
      {"TWEET", TweetPipeline(scale)},
      {"4SQ", FourSqPipeline(scale)},
  };
}

/// Renders an MRR cell; NaN prints as "/" (LGTA/MGTM time column).
inline std::string MrrCell(double v) {
  if (std::isnan(v)) return "     /";
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

inline void PrintMrrHeader(const char* dataset) {
  std::printf("\n=== %s ===\n", dataset);
  std::printf("%-14s %8s %10s %8s\n", "Method", "Text", "Location", "Time");
}

inline void PrintMrrRow(const std::string& name, const MrrScores& scores) {
  std::printf("%-14s %8s %10s %8s\n", name.c_str(),
              MrrCell(scores.text).c_str(), MrrCell(scores.location).c_str(),
              MrrCell(scores.time).c_str());
}

}  // namespace bench
}  // namespace actor

#endif  // ACTOR_BENCH_BENCH_COMMON_H_
