// Extension experiment (not a paper table): streaming / recency-aware
// ACTOR, the online direction the paper cites as ReAct [8]. A city's
// activity regime shifts mid-stream (the same keywords move to different
// venues and hours); we compare, prequentially (train on batches <= i,
// test location-MRR on batch i+1):
//
//   online(decay)    — OnlineActor with recency decay
//   online(no-decay) — OnlineActor that never forgets
//   frozen           — bootstrapped on the first batch only
//
// Expected shape: comparable in the stationary regime; after the shift the
// decaying model recovers fastest, the frozen model stays degraded.
//
// Run:  ./streaming_activity [--records=8000] [--batches=8]

#include <cstdio>
#include <vector>

#include "core/online_actor.h"
#include "data/synthetic.h"
#include "eval/mrr.h"
#include "util/flags.h"
#include "util/rng.h"

namespace {

using actor::TokenizedRecord;

/// Location-prediction MRR of `model` on `test` (1 truth + 10 noise).
double PrequentialLocationMrr(const actor::OnlineActor& model,
                              const std::vector<TokenizedRecord>& test,
                              uint64_t seed) {
  actor::Rng rng(seed);
  std::vector<int> ranks;
  for (std::size_t q = 0; q < std::min<std::size_t>(test.size(), 400); ++q) {
    const actor::VertexId truth_unit = model.SpatialUnit(test[q].location);
    if (truth_unit == actor::kInvalidVertex) continue;
    const double truth = model.ScoreRecordAgainstUnit(test[q], truth_unit);
    std::vector<double> noise;
    for (int n = 0; n < 10; ++n) {
      const auto& other = test[rng.Uniform(test.size())];
      noise.push_back(model.ScoreRecordAgainstUnit(
          test[q], model.SpatialUnit(other.location)));
    }
    ranks.push_back(actor::RankOfTruth(truth, noise));
  }
  return actor::MeanReciprocalRank(ranks);
}

}  // namespace

int main(int argc, char** argv) {
  actor::Flags flags(argc, argv);
  const int records = static_cast<int>(flags.GetInt("records", 8000));
  const int batches = static_cast<int>(flags.GetInt("batches", 8));

  // Two regimes with identical vocabulary namespaces but different latent
  // structure (venue placement, topic hours): the same tokens change
  // meaning at the regime boundary.
  actor::SyntheticConfig regime_a;
  regime_a.seed = 100;
  regime_a.num_records = records / 2;
  regime_a.num_users = 400;
  regime_a.num_topics = 12;
  regime_a.num_venues = 80;
  regime_a.num_communities = 8;
  actor::SyntheticConfig regime_b = regime_a;
  regime_b.seed = 200;

  auto a = actor::GenerateSynthetic(regime_a, "regimeA");
  a.status().CheckOK();
  auto b = actor::GenerateSynthetic(regime_b, "regimeB");
  b.status().CheckOK();
  actor::Corpus combined = a->corpus;
  for (actor::RawRecord rec : b->corpus.records()) {
    rec.id += records;  // keep ids unique
    combined.Add(std::move(rec));
  }
  actor::CorpusBuildOptions build;
  auto corpus = actor::TokenizedCorpus::Build(combined, build);
  corpus.status().CheckOK();

  // Batches in stream order: first half regime A, second half regime B.
  std::vector<std::vector<TokenizedRecord>> stream(batches);
  for (std::size_t i = 0; i < corpus->size(); ++i) {
    stream[i * batches / corpus->size()].push_back(corpus->record(i));
  }

  actor::OnlineActorOptions decay_options;
  decay_options.dim = 32;
  decay_options.decay_per_batch = 0.6;
  actor::OnlineActorOptions keep_options = decay_options;
  keep_options.decay_per_batch = 1.0;

  auto online_decay = actor::OnlineActor::Create(decay_options);
  auto online_keep = actor::OnlineActor::Create(keep_options);
  auto frozen = actor::OnlineActor::Create(keep_options);
  online_decay.status().CheckOK();
  online_keep.status().CheckOK();
  frozen.status().CheckOK();

  std::printf("Streaming extension: prequential location MRR per batch\n");
  std::printf("(regime shift after batch %d; 11-candidate ranking)\n\n",
              batches / 2 - 1);
  std::printf("%6s %6s %14s %18s %10s\n", "batch", "regime", "online(decay)",
              "online(no-decay)", "frozen");
  for (int i = 0; i + 1 < batches; ++i) {
    online_decay->Ingest(stream[i]).CheckOK();
    online_keep->Ingest(stream[i]).CheckOK();
    if (i == 0) frozen->Ingest(stream[i]).CheckOK();
    const auto& next = stream[i + 1];
    std::printf("%6d %6s %14.4f %18.4f %10.4f\n", i,
                i < batches / 2 ? "A" : "B",
                PrequentialLocationMrr(*online_decay, next, 7 + i),
                PrequentialLocationMrr(*online_keep, next, 7 + i),
                PrequentialLocationMrr(*frozen, next, 7 + i));
  }
  std::printf("\nunits: decay=%d keep=%d frozen=%d; live edges: decay=%zu "
              "keep=%zu\n",
              online_decay->num_units(), online_keep->num_units(),
              frozen->num_units(), online_decay->num_live_edges(),
              online_keep->num_live_edges());
  return 0;
}
