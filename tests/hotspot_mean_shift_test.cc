#include "hotspot/mean_shift.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace actor {
namespace {

std::vector<GeoPoint> TwoClusters(int per_cluster, double spread,
                                  uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<GeoPoint> points;
  for (int i = 0; i < per_cluster; ++i) {
    points.push_back({rng.Gaussian(2.0, spread), rng.Gaussian(2.0, spread)});
    points.push_back({rng.Gaussian(10.0, spread), rng.Gaussian(10.0, spread)});
  }
  return points;
}

TEST(MeanShift2dTest, RecoversTwoClusters) {
  MeanShiftOptions options;
  options.bandwidth = 1.5;
  options.merge_radius = 1.0;
  auto modes = MeanShiftModes2d(TwoClusters(200, 0.3), options);
  ASSERT_TRUE(modes.ok()) << modes.status().ToString();
  ASSERT_EQ(modes->size(), 2u);
  // One mode near each cluster center, in any order.
  const double d0 = std::min(Distance((*modes)[0], {2, 2}),
                             Distance((*modes)[0], {10, 10}));
  const double d1 = std::min(Distance((*modes)[1], {2, 2}),
                             Distance((*modes)[1], {10, 10}));
  EXPECT_LT(d0, 0.3);
  EXPECT_LT(d1, 0.3);
  EXPECT_GT(Distance((*modes)[0], (*modes)[1]), 5.0);
}

TEST(MeanShift2dTest, SinglePoint) {
  MeanShiftOptions options;
  options.bandwidth = 1.0;
  auto modes = MeanShiftModes2d({{3.0, 4.0}}, options);
  ASSERT_TRUE(modes.ok());
  ASSERT_EQ(modes->size(), 1u);
  EXPECT_NEAR((*modes)[0].x, 3.0, 1e-6);
  EXPECT_NEAR((*modes)[0].y, 4.0, 1e-6);
}

TEST(MeanShift2dTest, ModesSortedBySupport) {
  Rng rng(2);
  std::vector<GeoPoint> points;
  for (int i = 0; i < 300; ++i) {
    points.push_back({rng.Gaussian(2.0, 0.2), rng.Gaussian(2.0, 0.2)});
  }
  for (int i = 0; i < 30; ++i) {
    points.push_back({rng.Gaussian(12.0, 0.2), rng.Gaussian(12.0, 0.2)});
  }
  MeanShiftOptions options;
  options.bandwidth = 1.0;
  auto modes = MeanShiftModes2d(points, options);
  ASSERT_TRUE(modes.ok());
  ASSERT_GE(modes->size(), 2u);
  // First mode is the big cluster.
  EXPECT_LT(Distance((*modes)[0], {2, 2}), 0.5);
}

TEST(MeanShift2dTest, LargeMergeRadiusCollapsesModes) {
  MeanShiftOptions options;
  options.bandwidth = 1.5;
  options.merge_radius = 50.0;  // merge everything
  auto modes = MeanShiftModes2d(TwoClusters(50, 0.3), options);
  ASSERT_TRUE(modes.ok());
  EXPECT_EQ(modes->size(), 1u);
}

TEST(MeanShift2dTest, EmptyInputError) {
  MeanShiftOptions options;
  EXPECT_TRUE(MeanShiftModes2d({}, options).status().IsInvalidArgument());
}

TEST(MeanShift2dTest, BadOptionsError) {
  MeanShiftOptions options;
  options.bandwidth = 0.0;
  EXPECT_TRUE(
      MeanShiftModes2d({{0, 0}}, options).status().IsInvalidArgument());
  options.bandwidth = 1.0;
  options.max_iterations = 0;
  EXPECT_TRUE(
      MeanShiftModes2d({{0, 0}}, options).status().IsInvalidArgument());
  options.max_iterations = 10;
  options.merge_radius = -1.0;
  EXPECT_TRUE(
      MeanShiftModes2d({{0, 0}}, options).status().IsInvalidArgument());
}

TEST(MeanShift2dTest, DeterministicAcrossRuns) {
  const auto points = TwoClusters(100, 0.4);
  MeanShiftOptions options;
  options.bandwidth = 1.0;
  auto a = MeanShiftModes2d(points, options);
  auto b = MeanShiftModes2d(points, options);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_DOUBLE_EQ((*a)[i].x, (*b)[i].x);
  }
}

TEST(MeanShift1dTest, RecoversCircadianPeaks) {
  Rng rng(3);
  std::vector<double> hours;
  for (int i = 0; i < 300; ++i) {
    hours.push_back(std::fmod(rng.Gaussian(9.0, 0.5) + 24.0, 24.0));
    hours.push_back(std::fmod(rng.Gaussian(20.0, 0.5) + 24.0, 24.0));
  }
  MeanShiftOptions options;
  options.bandwidth = 1.5;
  options.merge_radius = 1.0;
  auto modes = MeanShiftModes1dCircular(hours, 24.0, options);
  ASSERT_TRUE(modes.ok());
  ASSERT_EQ(modes->size(), 2u);
  std::vector<double> sorted = *modes;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_NEAR(sorted[0], 9.0, 0.4);
  EXPECT_NEAR(sorted[1], 20.0, 0.4);
}

TEST(MeanShift1dTest, MidnightSeamCluster) {
  // One cluster straddling midnight: 23.5h..0.5h. A linear-domain method
  // would report two modes; the circular one must report exactly one.
  Rng rng(4);
  std::vector<double> hours;
  for (int i = 0; i < 400; ++i) {
    hours.push_back(std::fmod(rng.Gaussian(24.0, 0.3) + 24.0, 24.0));
  }
  MeanShiftOptions options;
  options.bandwidth = 1.0;
  options.merge_radius = 0.8;
  auto modes = MeanShiftModes1dCircular(hours, 24.0, options);
  ASSERT_TRUE(modes.ok());
  ASSERT_EQ(modes->size(), 1u);
  const double d = std::min((*modes)[0], 24.0 - (*modes)[0]);
  EXPECT_LT(d, 0.3);  // mode near midnight
}

TEST(MeanShift1dTest, ModesWithinPeriod) {
  Rng rng(5);
  std::vector<double> hours;
  for (int i = 0; i < 100; ++i) hours.push_back(rng.UniformRange(0.0, 24.0));
  MeanShiftOptions options;
  options.bandwidth = 2.0;
  auto modes = MeanShiftModes1dCircular(hours, 24.0, options);
  ASSERT_TRUE(modes.ok());
  for (double m : *modes) {
    EXPECT_GE(m, 0.0);
    EXPECT_LT(m, 24.0);
  }
}

TEST(MeanShift1dTest, BadPeriodError) {
  MeanShiftOptions options;
  options.bandwidth = 1.0;
  EXPECT_TRUE(MeanShiftModes1dCircular({1.0}, 0.0, options)
                  .status()
                  .IsInvalidArgument());
}

TEST(MeanShift1dTest, EmptyInputError) {
  MeanShiftOptions options;
  EXPECT_TRUE(MeanShiftModes1dCircular({}, 24.0, options)
                  .status()
                  .IsInvalidArgument());
}

TEST(MeanShift2dTest, ThreadCountDoesNotChangeResult) {
  const auto points = TwoClusters(300, 0.5, 17);
  MeanShiftOptions serial;
  serial.bandwidth = 1.0;
  MeanShiftOptions parallel = serial;
  parallel.num_threads = 4;
  auto a = MeanShiftModes2d(points, serial);
  auto b = MeanShiftModes2d(points, parallel);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_DOUBLE_EQ((*a)[i].x, (*b)[i].x);
    EXPECT_DOUBLE_EQ((*a)[i].y, (*b)[i].y);
  }
}

class BandwidthSweep : public ::testing::TestWithParam<double> {};

TEST_P(BandwidthSweep, WiderBandwidthFindsFewerOrEqualModes) {
  const auto points = TwoClusters(150, 0.6, 7);
  MeanShiftOptions narrow;
  narrow.bandwidth = GetParam();
  narrow.merge_radius = narrow.bandwidth / 2.0;
  MeanShiftOptions wide = narrow;
  wide.bandwidth = GetParam() * 4.0;
  wide.merge_radius = wide.bandwidth / 2.0;
  auto narrow_modes = MeanShiftModes2d(points, narrow);
  auto wide_modes = MeanShiftModes2d(points, wide);
  ASSERT_TRUE(narrow_modes.ok() && wide_modes.ok());
  EXPECT_LE(wide_modes->size(), narrow_modes->size());
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, BandwidthSweep,
                         ::testing::Values(0.3, 0.5, 1.0, 2.0));

}  // namespace
}  // namespace actor
