#include "embedding/line.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/vec_math.h"

namespace actor {
namespace {

/// Two 4-cliques of words joined by a single weak bridge.
Heterograph TwoCliqueGraph() {
  Heterograph g;
  for (int i = 0; i < 8; ++i) {
    g.AddVertex(VertexType::kWord, "w" + std::to_string(i));
  }
  auto clique = [&](int base) {
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) {
        EXPECT_TRUE(g.AccumulateEdge(base + i, base + j, 10.0).ok());
      }
    }
  };
  clique(0);
  clique(4);
  EXPECT_TRUE(g.AccumulateEdge(0, 4, 0.1).ok());  // weak bridge
  EXPECT_TRUE(g.Finalize().ok());
  return g;
}

LineOptions FastOptions() {
  LineOptions o;
  o.dim = 16;
  o.total_samples = 200000;
  o.negatives = 3;
  o.seed = 5;
  return o;
}

TEST(LineTest, RequiresFinalizedGraph) {
  Heterograph g;
  EXPECT_TRUE(TrainLine(g, FastOptions()).status().IsFailedPrecondition());
}

TEST(LineTest, RejectsBadOptions) {
  Heterograph g = TwoCliqueGraph();
  LineOptions o = FastOptions();
  o.dim = 0;
  EXPECT_TRUE(TrainLine(g, o).status().IsInvalidArgument());
  o = FastOptions();
  o.order = 3;
  EXPECT_TRUE(TrainLine(g, o).status().IsInvalidArgument());
}

TEST(LineTest, RejectsEmptyEdgeSelection) {
  Heterograph g = TwoCliqueGraph();
  LineOptions o = FastOptions();
  o.edge_types = {EdgeType::kUU};  // no such edges
  EXPECT_TRUE(TrainLine(g, o).status().IsInvalidArgument());
}

TEST(LineTest, OutputShapes) {
  Heterograph g = TwoCliqueGraph();
  auto result = TrainLine(g, FastOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->center.rows(), 8);
  EXPECT_EQ(result->center.dim(), 16);
  EXPECT_EQ(result->context.rows(), 8);
}

TEST(LineTest, SecondOrderSeparatesCliques) {
  Heterograph g = TwoCliqueGraph();
  auto result = TrainLine(g, FastOptions());
  ASSERT_TRUE(result.ok());
  // Average intra-clique cosine must exceed average inter-clique cosine.
  double intra = 0.0, inter = 0.0;
  int n_intra = 0, n_inter = 0;
  for (int i = 0; i < 8; ++i) {
    for (int j = i + 1; j < 8; ++j) {
      const double c =
          Cosine(result->center.row(i), result->center.row(j), 16);
      if ((i < 4) == (j < 4)) {
        intra += c;
        ++n_intra;
      } else {
        inter += c;
        ++n_inter;
      }
    }
  }
  EXPECT_GT(intra / n_intra, inter / n_inter + 0.2);
}

TEST(LineTest, FirstOrderSeparatesCliques) {
  Heterograph g = TwoCliqueGraph();
  LineOptions o = FastOptions();
  o.order = 1;
  auto result = TrainLine(g, o);
  ASSERT_TRUE(result.ok());
  const double intra =
      Cosine(result->center.row(1), result->center.row(2), 16);
  const double inter =
      Cosine(result->center.row(1), result->center.row(5), 16);
  EXPECT_GT(intra, inter);
  // First order: context is a copy of center.
  for (int d = 0; d < 16; ++d) {
    EXPECT_FLOAT_EQ(result->context.row(3)[d], result->center.row(3)[d]);
  }
}

TEST(LineTest, EmbeddingsFinite) {
  Heterograph g = TwoCliqueGraph();
  auto result = TrainLine(g, FastOptions());
  ASSERT_TRUE(result.ok());
  for (int r = 0; r < 8; ++r) {
    for (int d = 0; d < 16; ++d) {
      EXPECT_TRUE(std::isfinite(result->center.row(r)[d]));
    }
  }
}

TEST(LineTest, DeterministicSingleThread) {
  Heterograph g = TwoCliqueGraph();
  LineOptions o = FastOptions();
  o.total_samples = 20000;
  auto a = TrainLine(g, o);
  auto b = TrainLine(g, o);
  ASSERT_TRUE(a.ok() && b.ok());
  for (int r = 0; r < 8; ++r) {
    for (int d = 0; d < 16; ++d) {
      EXPECT_FLOAT_EQ(a->center.row(r)[d], b->center.row(r)[d]);
    }
  }
}

TEST(LineTest, MultiThreadedRuns) {
  Heterograph g = TwoCliqueGraph();
  LineOptions o = FastOptions();
  o.num_threads = 3;
  auto result = TrainLine(g, o);
  ASSERT_TRUE(result.ok());
  const double intra =
      Cosine(result->center.row(0), result->center.row(1), 16);
  const double inter =
      Cosine(result->center.row(0), result->center.row(6), 16);
  EXPECT_GT(intra, inter);
}

TEST(LineTest, DerivesSampleBudgetFromEdges) {
  Heterograph g = TwoCliqueGraph();
  LineOptions o = FastOptions();
  o.total_samples = 0;
  o.samples_per_edge = 5;
  auto result = TrainLine(g, o);  // must not hang or crash
  ASSERT_TRUE(result.ok());
}

}  // namespace
}  // namespace actor
