#include "baselines/metapath2vec.h"

#include <gtest/gtest.h>

#include <cmath>

#include "eval/pipeline.h"
#include "util/vec_math.h"

namespace actor {
namespace {

class Metapath2vecTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PipelineOptions pipeline = UTGeoPipeline(0.1);
    pipeline.synthetic.num_records = 1500;
    pipeline.synthetic.seed = 55;
    auto prepared = PrepareDataset(pipeline, "m2v-test");
    ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
    data_ = new PreparedDataset(prepared.MoveValueOrDie());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  static Metapath2vecOptions FastOptions() {
    Metapath2vecOptions o;
    o.dim = 16;
    o.walk.walks_per_start = 2;
    o.walk.walk_length = 10;
    o.skipgram.epochs = 1;
    return o;
  }

  static PreparedDataset* data_;
};

PreparedDataset* Metapath2vecTest::data_ = nullptr;

TEST_F(Metapath2vecTest, TrainsWithCorrectShapes) {
  auto model = TrainMetapath2vec(data_->graphs->activity, FastOptions());
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_EQ(model->center.rows(), data_->graphs->activity.num_vertices());
  EXPECT_EQ(model->center.dim(), 16);
}

TEST_F(Metapath2vecTest, EmbeddingsFinite) {
  auto model = TrainMetapath2vec(data_->graphs->activity, FastOptions());
  ASSERT_TRUE(model.ok());
  for (int r = 0; r < model->center.rows(); ++r) {
    for (int d = 0; d < 16; ++d) {
      ASSERT_TRUE(std::isfinite(model->center.row(r)[d]));
    }
  }
}

TEST_F(Metapath2vecTest, AlternateMetaPath) {
  Metapath2vecOptions o = FastOptions();
  // T-L-W-W, the second path used for 4SQ in the paper.
  o.meta_path = {VertexType::kTime, VertexType::kLocation, VertexType::kWord,
                 VertexType::kWord};
  auto model = TrainMetapath2vec(data_->graphs->activity, o);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
}

TEST_F(Metapath2vecTest, InvalidMetaPathRejected) {
  Metapath2vecOptions o = FastOptions();
  o.meta_path = {VertexType::kTime, VertexType::kTime};
  EXPECT_FALSE(TrainMetapath2vec(data_->graphs->activity, o).ok());
}

TEST_F(Metapath2vecTest, RequiresFinalizedGraph) {
  Heterograph g;
  EXPECT_TRUE(TrainMetapath2vec(g, FastOptions())
                  .status()
                  .IsFailedPrecondition());
}

}  // namespace
}  // namespace actor
