#include "eval/neighbor_search.h"

#include <gtest/gtest.h>

#include "core/actor.h"
#include "eval/pipeline.h"

namespace actor {
namespace {

class NeighborSearchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PipelineOptions pipeline = UTGeoPipeline(0.1);
    pipeline.synthetic.num_records = 2000;
    pipeline.synthetic.seed = 42;
    auto prepared = PrepareDataset(pipeline, "ns-test");
    ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
    data_ = new PreparedDataset(prepared.MoveValueOrDie());
    ActorOptions options;
    options.dim = 16;
    options.epochs = 4;
    options.samples_per_edge = 6;
    auto model = TrainActor(*data_->graphs, options);
    ASSERT_TRUE(model.ok());
    model_ = new ActorModel(model.MoveValueOrDie());
  }
  static void TearDownTestSuite() {
    delete model_;
    delete data_;
    model_ = nullptr;
    data_ = nullptr;
  }

  NeighborSearcher MakeSearcher() {
    return NeighborSearcher(data_->Snapshot(model_->center));
  }

  static PreparedDataset* data_;
  static ActorModel* model_;
};

PreparedDataset* NeighborSearchTest::data_ = nullptr;
ActorModel* NeighborSearchTest::model_ = nullptr;

TEST_F(NeighborSearchTest, LocationQueryReturnsWords) {
  NeighborSearcher searcher = MakeSearcher();
  auto result = searcher.QueryByLocation({20, 20}, VertexType::kWord, 5);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 5u);
  for (const auto& n : *result) {
    EXPECT_EQ(n.type, VertexType::kWord);
    EXPECT_FALSE(n.name.empty());
  }
}

TEST_F(NeighborSearchTest, ResultsSortedDescending) {
  NeighborSearcher searcher = MakeSearcher();
  auto result = searcher.QueryByLocation({10, 10}, VertexType::kWord, 10);
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 1; i < result->size(); ++i) {
    EXPECT_GE((*result)[i - 1].similarity, (*result)[i].similarity);
  }
}

TEST_F(NeighborSearchTest, HourQueryReturnsRequestedType) {
  NeighborSearcher searcher = MakeSearcher();
  auto words = searcher.QueryByHour(21.0, VertexType::kWord, 6);
  ASSERT_TRUE(words.ok());
  EXPECT_EQ(words->size(), 6u);
  auto locations = searcher.QueryByHour(21.0, VertexType::kLocation, 4);
  ASSERT_TRUE(locations.ok());
  for (const auto& n : *locations) {
    EXPECT_EQ(n.type, VertexType::kLocation);
  }
}

TEST_F(NeighborSearchTest, KeywordQueryExcludesSelf) {
  NeighborSearcher searcher = MakeSearcher();
  // Pick a word known to be in the vocabulary.
  const std::string keyword = data_->full.vocab().word(0);
  auto result = searcher.QueryByKeyword(keyword, VertexType::kWord, 10);
  ASSERT_TRUE(result.ok());
  for (const auto& n : *result) {
    EXPECT_NE(n.name, keyword);
  }
}

TEST_F(NeighborSearchTest, UnknownKeywordIsNotFound) {
  NeighborSearcher searcher = MakeSearcher();
  EXPECT_TRUE(searcher
                  .QueryByKeyword("definitely_not_a_word", VertexType::kWord,
                                  5)
                  .status()
                  .IsNotFound());
}

TEST_F(NeighborSearchTest, BadKRejected) {
  NeighborSearcher searcher = MakeSearcher();
  EXPECT_TRUE(searcher.QueryByLocation({0, 0}, VertexType::kWord, 0)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(NeighborSearchTest, KLargerThanTypeCount) {
  NeighborSearcher searcher = MakeSearcher();
  const std::size_t n_time =
      data_->graphs->activity.VerticesOfType(VertexType::kTime).size();
  auto result =
      searcher.QueryByLocation({5, 5}, VertexType::kTime, 1000);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), n_time);
}

TEST_F(NeighborSearchTest, SimilaritiesWithinBounds) {
  NeighborSearcher searcher = MakeSearcher();
  auto result = searcher.QueryByHour(9.0, VertexType::kWord, 20);
  ASSERT_TRUE(result.ok());
  for (const auto& n : *result) {
    EXPECT_GE(n.similarity, -1.0 - 1e-6);
    EXPECT_LE(n.similarity, 1.0 + 1e-6);
  }
}

TEST_F(NeighborSearchTest, VenueKeywordNearItsVenueLocation) {
  // The generator plants venue name keywords; querying a busy venue's
  // location should surface venue/topic words with positive similarity.
  NeighborSearcher searcher = MakeSearcher();
  // Most frequent venue among records.
  std::vector<int> counts(data_->dataset.truth.venue_locations.size(), 0);
  for (int v : data_->dataset.truth.record_venues) ++counts[v];
  const int busiest = static_cast<int>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
  const GeoPoint venue = data_->dataset.truth.venue_locations[busiest];
  auto result = searcher.QueryByLocation(venue, VertexType::kWord, 10);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->empty());
  EXPECT_GT((*result)[0].similarity, 0.3);
}

TEST_F(NeighborSearchTest, QueryByVectorMatchesVertexQuery) {
  NeighborSearcher searcher = MakeSearcher();
  // Query by a word's own vector: top hit should be similar to keyword
  // query results for that word.
  const std::string keyword = data_->full.vocab().word(1);
  const int32_t w = data_->full.vocab().Lookup(keyword);
  const VertexId v = data_->graphs->word_vertices[w];
  ASSERT_NE(v, kInvalidVertex);
  auto by_vec = searcher.QueryByVector(model_->center.row(v),
                                       VertexType::kWord, 5, v);
  auto by_kw = searcher.QueryByKeyword(keyword, VertexType::kWord, 5);
  ASSERT_TRUE(by_vec.ok() && by_kw.ok());
  ASSERT_EQ(by_vec->size(), by_kw->size());
  for (std::size_t i = 0; i < by_vec->size(); ++i) {
    EXPECT_EQ((*by_vec)[i].vertex, (*by_kw)[i].vertex);
  }
}

}  // namespace
}  // namespace actor
