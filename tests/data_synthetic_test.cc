#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace actor {
namespace {

SyntheticConfig TinyConfig() {
  SyntheticConfig c;
  c.seed = 7;
  c.num_records = 500;
  c.num_users = 60;
  c.num_communities = 4;
  c.num_topics = 6;
  c.num_venues = 20;
  c.keywords_per_topic = 15;
  c.background_vocab = 30;
  return c;
}

TEST(SyntheticTest, GeneratesRequestedRecords) {
  auto ds = GenerateSynthetic(TinyConfig(), "tiny");
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->corpus.size(), 500u);
  EXPECT_EQ(ds->name, "tiny");
}

TEST(SyntheticTest, DeterministicForSeed) {
  auto a = GenerateSynthetic(TinyConfig());
  auto b = GenerateSynthetic(TinyConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  for (std::size_t i = 0; i < a->corpus.size(); ++i) {
    EXPECT_EQ(a->corpus.record(i).text, b->corpus.record(i).text);
    EXPECT_EQ(a->corpus.record(i).user_id, b->corpus.record(i).user_id);
    EXPECT_DOUBLE_EQ(a->corpus.record(i).timestamp,
                     b->corpus.record(i).timestamp);
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticConfig c2 = TinyConfig();
  c2.seed = 8;
  auto a = GenerateSynthetic(TinyConfig());
  auto b = GenerateSynthetic(c2);
  ASSERT_TRUE(a.ok() && b.ok());
  int differing = 0;
  for (std::size_t i = 0; i < a->corpus.size(); ++i) {
    if (a->corpus.record(i).text != b->corpus.record(i).text) ++differing;
  }
  EXPECT_GT(differing, 100);
}

TEST(SyntheticTest, MentionFractionNearConfig) {
  SyntheticConfig c = TinyConfig();
  c.num_records = 5000;
  c.mention_prob = 0.168;
  auto ds = GenerateSynthetic(c);
  ASSERT_TRUE(ds.ok());
  EXPECT_NEAR(ds->corpus.MentionFraction(), 0.168, 0.03);
}

TEST(SyntheticTest, EmitMentionsFalseStripsMentions) {
  SyntheticConfig c = TinyConfig();
  c.emit_mentions = false;
  c.mention_prob = 0.3;
  auto ds = GenerateSynthetic(c);
  ASSERT_TRUE(ds.ok());
  EXPECT_DOUBLE_EQ(ds->corpus.MentionFraction(), 0.0);
}

TEST(SyntheticTest, LocationsInsideCity) {
  SyntheticConfig c = TinyConfig();
  auto ds = GenerateSynthetic(c);
  ASSERT_TRUE(ds.ok());
  for (const auto& r : ds->corpus.records()) {
    EXPECT_GE(r.location.x, 0.0);
    EXPECT_LE(r.location.x, c.city_size_km);
    EXPECT_GE(r.location.y, 0.0);
    EXPECT_LE(r.location.y, c.city_size_km);
  }
}

TEST(SyntheticTest, TimestampsWithinSpan) {
  SyntheticConfig c = TinyConfig();
  auto ds = GenerateSynthetic(c);
  ASSERT_TRUE(ds.ok());
  for (const auto& r : ds->corpus.records()) {
    EXPECT_GE(r.timestamp, 0.0);
    EXPECT_LT(r.timestamp, (c.days + 1) * kSecondsPerDay);
  }
}

TEST(SyntheticTest, GroundTruthShapes) {
  SyntheticConfig c = TinyConfig();
  auto ds = GenerateSynthetic(c);
  ASSERT_TRUE(ds.ok());
  const auto& t = ds->truth;
  EXPECT_EQ(t.venue_locations.size(), static_cast<std::size_t>(c.num_venues));
  EXPECT_EQ(t.venue_topics.size(), static_cast<std::size_t>(c.num_venues));
  EXPECT_EQ(t.topic_peak_hours.size(), static_cast<std::size_t>(c.num_topics));
  EXPECT_EQ(t.user_communities.size(), static_cast<std::size_t>(c.num_users));
  EXPECT_EQ(t.record_venues.size(), ds->corpus.size());
  EXPECT_EQ(t.record_topics.size(), ds->corpus.size());
}

TEST(SyntheticTest, RecordTopicMatchesVenueTopic) {
  auto ds = GenerateSynthetic(TinyConfig());
  ASSERT_TRUE(ds.ok());
  for (std::size_t i = 0; i < ds->corpus.size(); ++i) {
    const int venue = ds->truth.record_venues[i];
    EXPECT_EQ(ds->truth.record_topics[i], ds->truth.venue_topics[venue]);
  }
}

TEST(SyntheticTest, RecordsNearTheirVenue) {
  SyntheticConfig c = TinyConfig();
  auto ds = GenerateSynthetic(c);
  ASSERT_TRUE(ds.ok());
  for (std::size_t i = 0; i < ds->corpus.size(); ++i) {
    const auto& venue = ds->truth.venue_locations[ds->truth.record_venues[i]];
    // GPS noise is 0.15 km; clamping at city borders can stretch this.
    EXPECT_LE(Distance(ds->corpus.record(i).location, venue), 2.0);
  }
}

TEST(SyntheticTest, HoursClusterAroundTopicPeak) {
  SyntheticConfig c = TinyConfig();
  c.num_records = 3000;
  c.time_noise_hours = 0.5;
  auto ds = GenerateSynthetic(c);
  ASSERT_TRUE(ds.ok());
  int close = 0;
  for (std::size_t i = 0; i < ds->corpus.size(); ++i) {
    const double peak = ds->truth.topic_peak_hours[ds->truth.record_topics[i]];
    const double h = HourOfDay(ds->corpus.record(i).timestamp);
    if (CircularHourDistance(h, peak) < 1.5) ++close;
  }
  // ~3 sigma of a 0.5h Gaussian.
  EXPECT_GT(close, static_cast<int>(0.9 * ds->corpus.size()));
}

TEST(SyntheticTest, MentionsStayInCommunity) {
  SyntheticConfig c = TinyConfig();
  c.mention_prob = 0.5;
  auto ds = GenerateSynthetic(c);
  ASSERT_TRUE(ds.ok());
  for (const auto& r : ds->corpus.records()) {
    for (int64_t m : r.mentioned_user_ids) {
      EXPECT_EQ(ds->truth.user_communities[r.user_id],
                ds->truth.user_communities[m]);
      EXPECT_NE(m, r.user_id);
    }
  }
}

TEST(SyntheticTest, TextsNonEmpty) {
  auto ds = GenerateSynthetic(TinyConfig());
  ASSERT_TRUE(ds.ok());
  for (const auto& r : ds->corpus.records()) {
    EXPECT_FALSE(r.text.empty());
  }
}

TEST(SyntheticTest, VenueKeywordAppearsInSomeTexts) {
  SyntheticConfig c = TinyConfig();
  c.venue_keyword_prob = 1.0;
  auto ds = GenerateSynthetic(c);
  ASSERT_TRUE(ds.ok());
  for (std::size_t i = 0; i < 50; ++i) {
    const auto& kw = ds->truth.venue_keywords[ds->truth.record_venues[i]];
    EXPECT_NE(ds->corpus.record(i).text.find(kw), std::string::npos);
  }
}

TEST(SyntheticValidationTest, RejectsNonPositiveSizes) {
  SyntheticConfig c = TinyConfig();
  c.num_records = 0;
  EXPECT_TRUE(GenerateSynthetic(c).status().IsInvalidArgument());
  c = TinyConfig();
  c.num_topics = -1;
  EXPECT_TRUE(GenerateSynthetic(c).status().IsInvalidArgument());
}

TEST(SyntheticValidationTest, RejectsBadProbabilities) {
  SyntheticConfig c = TinyConfig();
  c.mention_prob = 1.5;
  EXPECT_TRUE(GenerateSynthetic(c).status().IsInvalidArgument());
  c = TinyConfig();
  c.background_word_prob = -0.1;
  EXPECT_TRUE(GenerateSynthetic(c).status().IsInvalidArgument());
}

TEST(SyntheticPresetTest, UTGeoHasMentions) {
  SyntheticConfig c = UTGeoLikeConfig(0.05);
  EXPECT_TRUE(c.emit_mentions);
  EXPECT_NEAR(c.mention_prob, 0.168, 1e-9);
  EXPECT_GT(c.num_records, 0);
}

TEST(SyntheticPresetTest, TweetAndFourSqHideMentions) {
  EXPECT_FALSE(TweetLikeConfig(0.1).emit_mentions);
  EXPECT_FALSE(FourSqLikeConfig(0.1).emit_mentions);
}

TEST(SyntheticPresetTest, ScaleMultipliesSizes) {
  SyntheticConfig half = UTGeoLikeConfig(0.5);
  SyntheticConfig full = UTGeoLikeConfig(1.0);
  EXPECT_EQ(half.num_records * 2, full.num_records);
}

TEST(SyntheticPresetTest, FourSqHasShortTexts) {
  SyntheticConfig c = FourSqLikeConfig(1.0);
  EXPECT_LT(c.mean_extra_words, UTGeoLikeConfig(1.0).mean_extra_words);
  EXPECT_GT(c.venue_keyword_prob, 0.8);
}

}  // namespace
}  // namespace actor
