// Multi-threaded HOGWILD smoke tests, labeled `tsan` in tests/CMakeLists.
// Under the `tsan` preset (ACTOR_ENABLE_TSAN=ON) the shared-row kernels run
// through relaxed std::atomic_ref accessors and ThreadSanitizer verifies
// there are no *unintentional* races across TrainActor, LINE, and the
// skip-gram walk trainer; `ctest --preset tsan` must pass with zero
// reports. In regular builds these double as plain concurrency smoke tests.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/actor.h"
#include "core/online_actor.h"
#include "data/synthetic.h"
#include "embedding/line.h"
#include "embedding/skipgram.h"
#include "eval/pipeline.h"
#include "serve/query_engine.h"
#include "shard/sharded_query_engine.h"
#include "util/thread_pool.h"
#include "util/vec_math.h"

namespace actor {
namespace {

constexpr int kThreads = 4;

// Template: covers both the trainers' flat EmbeddingMatrix and the
// snapshots' chunk-COW ChunkedMatrix (same row(i)/rows()/dim() surface).
template <typename Matrix>
bool AllFinite(const Matrix& m) {
  for (int32_t r = 0; r < m.rows(); ++r) {
    for (int32_t d = 0; d < m.dim(); ++d) {
      if (!std::isfinite(m.row(r)[d])) return false;
    }
  }
  return true;
}

/// Dense-ish L-W graph: every location connects to every word, words form
/// a clique. Small enough for TSan's slowdown, dense enough that shards
/// collide on rows constantly (the interesting case for race detection).
Heterograph DenseGraph(int locations, int words) {
  Heterograph g;
  std::vector<VertexId> locs, ws;
  for (int i = 0; i < locations; ++i) {
    locs.push_back(g.AddVertex(VertexType::kLocation, "L" + std::to_string(i)));
  }
  for (int i = 0; i < words; ++i) {
    ws.push_back(g.AddVertex(VertexType::kWord, "w" + std::to_string(i)));
  }
  for (VertexId l : locs) {
    for (VertexId w : ws) EXPECT_TRUE(g.AccumulateEdge(l, w, 2.0).ok());
  }
  for (std::size_t i = 0; i < ws.size(); ++i) {
    for (std::size_t j = i + 1; j < ws.size(); ++j) {
      EXPECT_TRUE(g.AccumulateEdge(ws[i], ws[j], 1.0).ok());
    }
  }
  EXPECT_TRUE(g.Finalize().ok());
  return g;
}

TEST(ConcurrencyTsanTest, TrainActorMultiThreadOnSharedPool) {
  PipelineOptions pipeline = UTGeoPipeline(0.1);
  pipeline.synthetic.num_records = 1200;
  pipeline.synthetic.seed = 99;
  auto prepared = PrepareDataset(pipeline, "tsan-actor");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  ThreadPool pool(kThreads);
  ActorOptions options;
  options.dim = 16;
  options.epochs = 2;
  options.samples_per_edge = 2;
  options.num_threads = kThreads;
  options.pool = &pool;
  auto model = TrainActor(*prepared->graphs, options);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_GT(model->stats.edge_steps, 0);
  EXPECT_TRUE(AllFinite(model->center));
  EXPECT_TRUE(AllFinite(model->context));
}

TEST(ConcurrencyTsanTest, TrainLineMultiThread) {
  Heterograph g = DenseGraph(4, 24);
  LineOptions options;
  options.dim = 16;
  options.order = 2;
  options.samples_per_edge = 40;
  options.num_threads = kThreads;
  auto embedding = TrainLine(g, options);
  ASSERT_TRUE(embedding.ok()) << embedding.status().ToString();
  EXPECT_TRUE(AllFinite(embedding->center));
  EXPECT_TRUE(AllFinite(embedding->context));
}

TEST(ConcurrencyTsanTest, TrainSkipGramMultiThread) {
  Heterograph g = DenseGraph(4, 24);
  // Synthetic walks cycling through every vertex so all shards touch all
  // rows of the shared matrices.
  std::vector<std::vector<VertexId>> walks;
  const int32_t n = g.num_vertices();
  for (int w = 0; w < 24; ++w) {
    std::vector<VertexId> walk;
    for (int i = 0; i < 20; ++i) {
      walk.push_back(static_cast<VertexId>((w * 7 + i * 3) % n));
    }
    walks.push_back(std::move(walk));
  }
  SkipGramOptions options;
  options.dim = 16;
  options.epochs = 2;
  options.num_threads = kThreads;
  auto embedding = TrainSkipGramOnWalks(g, walks, options);
  ASSERT_TRUE(embedding.ok()) << embedding.status().ToString();
  EXPECT_TRUE(AllFinite(embedding->center));
  EXPECT_TRUE(AllFinite(embedding->context));
}

TEST(ConcurrencyTsanTest, OnlineActorIngestMultiThread) {
  // Streaming path: the sharded re-embed phase writes shared center/context
  // rows lock-free through the dispatched kernels, so the relaxed backend
  // must cover it — this is the TSan witness for the OnlineActor port.
  // Exercises decay, drops, and incremental sampler rebuilds across
  // batches while shards collide on the hottest rows.
  SyntheticConfig config;
  config.seed = 11;
  config.num_records = 900;
  config.num_users = 30;
  config.num_communities = 3;
  config.num_topics = 4;
  config.num_venues = 8;
  config.keywords_per_topic = 12;
  config.background_vocab = 30;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  CorpusBuildOptions build;
  build.min_word_count = 1;
  auto corpus = TokenizedCorpus::Build(ds->corpus, build);
  ASSERT_TRUE(corpus.ok());
  std::vector<std::vector<TokenizedRecord>> batches(3);
  for (std::size_t i = 0; i < corpus->size(); ++i) {
    batches[i * batches.size() / corpus->size()].push_back(
        corpus->record(i));
  }

  ThreadPool pool(kThreads);
  OnlineActorOptions options;
  options.dim = 16;
  options.samples_per_edge_per_batch = 2.0;
  options.num_threads = kThreads;
  options.pool = &pool;  // caller-owned persistent pool, PR 1 substrate
  auto model = OnlineActor::Create(options);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  for (const auto& batch : batches) {
    ASSERT_TRUE(model->Ingest(batch).ok());
  }
  EXPECT_GT(model->num_live_edges(), 0u);
  EXPECT_TRUE(AllFinite(model->center()));
}

TEST(ConcurrencyTsanTest, QueryDuringIngest) {
  // The serving contract (docs/serving.md): query threads acquire the
  // latest published snapshot and run top-k queries while the ingest
  // thread keeps training and publishing. The only shared mutable cell is
  // the SnapshotStore's atomic shared_ptr slot — TSan must see no races,
  // and every query must score against one consistent frozen model.
  SyntheticConfig config;
  config.seed = 29;
  config.num_records = 900;
  config.num_users = 30;
  config.num_communities = 3;
  config.num_topics = 4;
  config.num_venues = 8;
  config.keywords_per_topic = 12;
  config.background_vocab = 30;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  CorpusBuildOptions build;
  build.min_word_count = 1;
  auto corpus = TokenizedCorpus::Build(ds->corpus, build);
  ASSERT_TRUE(corpus.ok());
  std::vector<std::vector<TokenizedRecord>> batches(6);
  for (std::size_t i = 0; i < corpus->size(); ++i) {
    batches[i * batches.size() / corpus->size()].push_back(
        corpus->record(i));
  }

  OnlineActorOptions options;
  options.dim = 16;
  options.samples_per_edge_per_batch = 2.0;
  auto model = OnlineActor::Create(options);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  ASSERT_TRUE(model->Ingest(batches[0]).ok());
  model->PublishSnapshot();
  const GeoPoint probe = batches[0].front().location;

  ThreadPool pool(kThreads);
  std::atomic<int> query_failures{0};
  std::atomic<int64_t> queries_done{0};
  std::atomic<bool> ingest_done{false};
  for (int t = 0; t < kThreads; ++t) {
    pool.Submit([&, t] {
      uint64_t spins = 0;
      while (!ingest_done.load(std::memory_order_acquire) ||
             spins < 50) {
        ++spins;
        auto snap = model->CurrentSnapshot();
        if (snap == nullptr) continue;
        QueryEngine engine(std::move(snap));
        auto words = engine.QueryByLocation(probe, VertexType::kWord,
                                            3 + (t % 3));
        auto hours = engine.QueryByHour(9.0 + t, VertexType::kTime, 2);
        if (!words.ok() || !hours.ok()) {
          query_failures.fetch_add(1, std::memory_order_relaxed);
        }
        queries_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Ingest thread: keep training and publishing while queries run.
  for (std::size_t b = 1; b < batches.size(); ++b) {
    ASSERT_TRUE(model->Ingest(batches[b]).ok());
    model->PublishSnapshot();
  }
  ingest_done.store(true, std::memory_order_release);
  pool.Wait();

  EXPECT_EQ(query_failures.load(), 0);
  EXPECT_GT(queries_done.load(), 0);
  EXPECT_TRUE(AllFinite(model->CurrentSnapshot()->center()));
}

TEST(ConcurrencyTsanTest, BatchedQueryDuringIngest) {
  // bench/serve_load's service pattern: each worker acquires the latest
  // snapshot once per request batch and scores the whole mixed-kind batch
  // through QueryEngine::QueryBatch while the ingest thread keeps training
  // and publishing. Same isolation contract as QueryDuringIngest — the
  // batched path adds no shared mutable state beyond the store's atomic
  // slot, and TSan must agree.
  SyntheticConfig config;
  config.seed = 61;
  config.num_records = 900;
  config.num_users = 30;
  config.num_communities = 3;
  config.num_topics = 4;
  config.num_venues = 8;
  config.keywords_per_topic = 12;
  config.background_vocab = 30;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  CorpusBuildOptions build;
  build.min_word_count = 1;
  auto corpus = TokenizedCorpus::Build(ds->corpus, build);
  ASSERT_TRUE(corpus.ok());
  std::vector<std::vector<TokenizedRecord>> batches(6);
  for (std::size_t i = 0; i < corpus->size(); ++i) {
    batches[i * batches.size() / corpus->size()].push_back(
        corpus->record(i));
  }

  OnlineActorOptions options;
  options.dim = 16;
  options.samples_per_edge_per_batch = 2.0;
  auto model = OnlineActor::Create(options);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  ASSERT_TRUE(model->Ingest(batches[0]).ok());
  model->PublishSnapshot();
  const GeoPoint probe = batches[0].front().location;

  ThreadPool pool(kThreads);
  std::atomic<int> query_failures{0};
  std::atomic<int64_t> batches_served{0};
  std::atomic<bool> ingest_done{false};
  for (int t = 0; t < kThreads; ++t) {
    pool.Submit([&, t] {
      std::vector<BatchQuery> request;
      request.push_back(
          BatchQuery::Location(probe, VertexType::kWord, 3 + (t % 3)));
      request.push_back(BatchQuery::Hour(9.0 + t, VertexType::kTime, 2));
      request.push_back(
          BatchQuery::Location(probe, VertexType::kLocation, 4));
      request.push_back(BatchQuery::Hour(2.0 * t, VertexType::kWord, 5));
      uint64_t spins = 0;
      while (!ingest_done.load(std::memory_order_acquire) || spins < 50) {
        ++spins;
        auto snap = model->CurrentSnapshot();
        if (snap == nullptr) continue;
        QueryEngine engine(std::move(snap));
        const auto results = engine.QueryBatch(request);
        for (const auto& r : results) {
          if (!r.ok()) {
            query_failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
        batches_served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::size_t b = 1; b < batches.size(); ++b) {
    ASSERT_TRUE(model->Ingest(batches[b]).ok());
    model->PublishSnapshot();
  }
  ingest_done.store(true, std::memory_order_release);
  pool.Wait();

  EXPECT_EQ(query_failures.load(), 0);
  EXPECT_GT(batches_served.load(), 0);
  EXPECT_TRUE(AllFinite(model->CurrentSnapshot()->center()));
}

TEST(ConcurrencyTsanTest, DeltaPublishQueryDuringIngest) {
  // Delta-publish flavor of QueryDuringIngest, with the re-embed phase
  // sharded over a pool: shards mark shard-local dirty sets inside the
  // hogwild region, the ingest thread merges them at the batch barrier
  // and chunk-COW publishes against the previous snapshot, all while
  // query threads keep acquiring and scoring. TSan must see no races in
  // the dirty bookkeeping or the chunk sharing, and a snapshot held from
  // before the writer started must stay byte-frozen throughout.
  SyntheticConfig config;
  config.seed = 43;
  config.num_records = 900;
  config.num_users = 30;
  config.num_communities = 3;
  config.num_topics = 4;
  config.num_venues = 8;
  config.keywords_per_topic = 12;
  config.background_vocab = 30;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  CorpusBuildOptions build;
  build.min_word_count = 1;
  auto corpus = TokenizedCorpus::Build(ds->corpus, build);
  ASSERT_TRUE(corpus.ok());
  std::vector<std::vector<TokenizedRecord>> batches(6);
  for (std::size_t i = 0; i < corpus->size(); ++i) {
    batches[i * batches.size() / corpus->size()].push_back(
        corpus->record(i));
  }

  ThreadPool train_pool(kThreads);
  OnlineActorOptions options;
  options.dim = 16;
  options.samples_per_edge_per_batch = 2.0;
  options.num_threads = kThreads;
  options.pool = &train_pool;
  options.delta_publish = true;  // explicit: this is the delta smoke
  auto model = OnlineActor::Create(options);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  ASSERT_TRUE(model->Ingest(batches[0]).ok());
  auto held = model->PublishSnapshot();
  ASSERT_NE(held, nullptr);
  const float held_probe = held->center().row(0)[0];
  const GeoPoint probe = batches[0].front().location;

  ThreadPool query_pool(kThreads);
  std::atomic<int> query_failures{0};
  std::atomic<bool> ingest_done{false};
  for (int t = 0; t < kThreads; ++t) {
    query_pool.Submit([&, t] {
      uint64_t spins = 0;
      uint64_t last_version = 0;
      while (!ingest_done.load(std::memory_order_acquire) || spins < 50) {
        ++spins;
        auto snap = model->CurrentSnapshot();
        if (snap == nullptr) continue;
        if (snap->version() < last_version) {
          query_failures.fetch_add(1, std::memory_order_relaxed);
        }
        last_version = snap->version();
        QueryEngine engine(std::move(snap));
        auto words = engine.QueryByLocation(probe, VertexType::kWord,
                                            3 + (t % 3));
        if (!words.ok()) {
          query_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::size_t b = 1; b < batches.size(); ++b) {
    ASSERT_TRUE(model->Ingest(batches[b]).ok());
    model->PublishSnapshot();
  }
  ingest_done.store(true, std::memory_order_release);
  query_pool.Wait();

  EXPECT_EQ(query_failures.load(), 0);
  EXPECT_EQ(held->center().row(0)[0], held_probe);  // frozen under deltas
  auto last = model->CurrentSnapshot();
  ASSERT_NE(last, nullptr);
  EXPECT_GT(last->version(), held->version());
  EXPECT_TRUE(AllFinite(last->center()));
}

TEST(ConcurrencyTsanTest, ShardedQueryDuringIngest) {
  // The sharded serving contract: the ingest thread trains per-shard
  // epochs on its own pool and publishes composite snapshots through
  // ShardedSnapshotStore's atomic slot, while query workers acquire the
  // composite and scatter-gather across the per-shard engines. The
  // composite swap is a single pointer store, so a worker can never see a
  // torn mix of shard versions — and TSan must see no races between the
  // per-shard trainers (owned rows + private tile copies only) and the
  // readers.
  SyntheticConfig config;
  config.seed = 83;
  config.num_records = 900;
  config.num_users = 30;
  config.num_communities = 3;
  config.num_topics = 4;
  config.num_venues = 8;
  config.keywords_per_topic = 12;
  config.background_vocab = 30;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  CorpusBuildOptions build;
  build.min_word_count = 1;
  auto corpus = TokenizedCorpus::Build(ds->corpus, build);
  ASSERT_TRUE(corpus.ok());
  std::vector<std::vector<TokenizedRecord>> batches(6);
  for (std::size_t i = 0; i < corpus->size(); ++i) {
    batches[i * batches.size() / corpus->size()].push_back(
        corpus->record(i));
  }

  ThreadPool train_pool(kThreads);
  OnlineActorOptions options;
  options.dim = 16;
  options.samples_per_edge_per_batch = 2.0;
  options.num_shards = 2;
  options.num_threads = kThreads;
  options.pool = &train_pool;
  options.delta_publish = true;  // per-shard chunk-COW under concurrency
  auto model = OnlineActor::Create(options);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  ASSERT_TRUE(model->Ingest(batches[0]).ok());
  ASSERT_NE(model->PublishShardedSnapshot(), nullptr);
  const GeoPoint probe = batches[0].front().location;

  ThreadPool query_pool(kThreads);
  std::atomic<int> query_failures{0};
  std::atomic<int64_t> queries_done{0};
  std::atomic<bool> ingest_done{false};
  for (int t = 0; t < kThreads; ++t) {
    query_pool.Submit([&, t] {
      uint64_t spins = 0;
      uint64_t last_version = 0;
      while (!ingest_done.load(std::memory_order_acquire) || spins < 50) {
        ++spins;
        auto snap = model->CurrentShardedSnapshot();
        if (snap == nullptr) continue;
        // Versions move forward only: a stale composite would mean the
        // pointer swap tore or the store lost release ordering.
        if (snap->version() < last_version) {
          query_failures.fetch_add(1, std::memory_order_relaxed);
        }
        last_version = snap->version();
        ShardedQueryEngine engine(std::move(snap));
        auto words = engine.QueryByLocation(probe, VertexType::kWord,
                                            3 + (t % 3));
        auto hours = engine.QueryByHour(9.0 + t, VertexType::kTime, 2);
        if (!words.ok() || !hours.ok()) {
          query_failures.fetch_add(1, std::memory_order_relaxed);
        }
        queries_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::size_t b = 1; b < batches.size(); ++b) {
    ASSERT_TRUE(model->Ingest(batches[b]).ok());
    model->PublishShardedSnapshot();
  }
  ingest_done.store(true, std::memory_order_release);
  query_pool.Wait();

  EXPECT_EQ(query_failures.load(), 0);
  EXPECT_GT(queries_done.load(), 0);
  auto last = model->CurrentShardedSnapshot();
  ASSERT_NE(last, nullptr);
  for (int s = 0; s < last->num_shards(); ++s) {
    EXPECT_TRUE(AllFinite(last->shard(s)->center()));
  }
}

TEST(ConcurrencyTsanTest, TsanBuildInstallsRelaxedBackend) {
#if defined(ACTOR_TSAN)
  EXPECT_EQ(ActiveVecBackend(), VecBackend::kRelaxed);
  EXPECT_EQ(SetVecBackend(VecBackend::kAvx2), VecBackend::kRelaxed);
#else
  // Release/sanitize builds keep the fast dispatch: requesting AVX2 must
  // never silently land on the relaxed scalar path.
  const VecBackend restored = SetVecBackend(VecBackend::kAvx2);
  EXPECT_EQ(restored, Avx2Available() ? VecBackend::kAvx2
                                      : VecBackend::kScalar);
#endif
}

}  // namespace
}  // namespace actor
