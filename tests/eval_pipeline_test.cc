#include "eval/pipeline.h"

#include <gtest/gtest.h>

namespace actor {
namespace {

TEST(PipelineTest, PreparesAllStages) {
  PipelineOptions options = UTGeoPipeline(0.05);
  options.synthetic.num_records = 1200;
  auto data = PrepareDataset(options, "pipeline-test");
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data->name, "pipeline-test");
  EXPECT_GT(data->full.size(), 0u);
  EXPECT_GT(data->train.size(), 0u);
  EXPECT_GT(data->test.size(), 0u);
  EXPECT_EQ(data->train.size() + data->test.size() + data->split.valid.size(),
            data->full.size());
  EXPECT_GT(data->hotspots->spatial.size(), 0u);
  EXPECT_GT(data->hotspots->temporal.size(), 0u);
  EXPECT_TRUE(data->graphs->activity.finalized());
  EXPECT_TRUE(data->graphs->user_graph.finalized());
  EXPECT_GT(data->graphs->activity.num_directed_edges(), 0);
}

TEST(PipelineTest, SplitFractionsRespected) {
  PipelineOptions options = UTGeoPipeline(0.05);
  options.synthetic.num_records = 2000;
  options.valid_fraction = 0.1;
  options.test_fraction = 0.2;
  auto data = PrepareDataset(options, "fractions");
  ASSERT_TRUE(data.ok());
  const double test_frac =
      static_cast<double>(data->test.size()) / data->full.size();
  EXPECT_NEAR(test_frac, 0.2, 0.01);
}

TEST(PipelineTest, GraphsBuiltFromTrainOnly) {
  PipelineOptions options = UTGeoPipeline(0.05);
  options.synthetic.num_records = 1500;
  auto data = PrepareDataset(options, "train-only");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->graphs->record_units.size(), data->train.size());
}

TEST(PipelineTest, DeterministicForSeeds) {
  PipelineOptions options = UTGeoPipeline(0.05);
  options.synthetic.num_records = 1000;
  auto a = PrepareDataset(options, "a");
  auto b = PrepareDataset(options, "b");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->train.size(), b->train.size());
  EXPECT_EQ(a->graphs->activity.num_directed_edges(),
            b->graphs->activity.num_directed_edges());
}

TEST(PipelineTest, PresetsProduceDistinctDatasets) {
  auto utgeo = PrepareDataset(UTGeoPipeline(0.05), "utgeo");
  auto foursq = PrepareDataset(FourSqPipeline(0.05), "4sq");
  ASSERT_TRUE(utgeo.ok() && foursq.ok());
  // UTGeo keeps mentions; 4SQ does not.
  EXPECT_GT(utgeo->dataset.corpus.MentionFraction(), 0.1);
  EXPECT_DOUBLE_EQ(foursq->dataset.corpus.MentionFraction(), 0.0);
  // 4SQ user graph therefore has no UU edges.
  EXPECT_EQ(foursq->graphs->user_graph.edges(EdgeType::kUU).size(), 0u);
  EXPECT_GT(utgeo->graphs->user_graph.edges(EdgeType::kUU).size(), 0u);
}

TEST(PipelineTest, InvalidSyntheticConfigPropagates) {
  PipelineOptions options = UTGeoPipeline(0.05);
  options.synthetic.num_records = -1;
  EXPECT_TRUE(
      PrepareDataset(options, "bad").status().IsInvalidArgument());
}

}  // namespace
}  // namespace actor
