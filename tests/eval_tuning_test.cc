#include "eval/tuning.h"

#include <gtest/gtest.h>

namespace actor {
namespace {

class TuningTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PipelineOptions pipeline = UTGeoPipeline(0.1);
    pipeline.synthetic.num_records = 2000;
    auto prepared = PrepareDataset(pipeline, "tuning-test");
    ASSERT_TRUE(prepared.ok());
    data_ = new PreparedDataset(prepared.MoveValueOrDie());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  static ActorOptions Fast(int epochs) {
    ActorOptions o;
    o.dim = 16;
    o.epochs = epochs;
    o.samples_per_edge = 4;
    o.negatives = 3;
    return o;
  }

  static PreparedDataset* data_;
};

PreparedDataset* TuningTest::data_ = nullptr;

TEST_F(TuningTest, EmptyGridRejected) {
  EXPECT_TRUE(GridSearchActor(*data_, {}).status().IsInvalidArgument());
}

TEST_F(TuningTest, ReturnsSortedCandidates) {
  std::vector<ActorOptions> grid = {Fast(1), Fast(4)};
  auto results = GridSearchActor(*data_, grid);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 2u);
  // Best first.
  EXPECT_GE((*results)[0].mean_mrr, (*results)[1].mean_mrr);
  for (const auto& c : *results) {
    EXPECT_GE(c.mean_mrr, 0.0);
    EXPECT_LE(c.mean_mrr, 1.0);
  }
}

TEST_F(TuningTest, MoreTrainingUsuallyWins) {
  // 1 epoch at 1 sample/edge vs a properly trained model: the latter must
  // score higher on validation.
  ActorOptions tiny = Fast(1);
  tiny.samples_per_edge = 1;
  ActorOptions full = Fast(6);
  full.samples_per_edge = 8;
  auto results = GridSearchActor(*data_, {tiny, full});
  ASSERT_TRUE(results.ok());
  EXPECT_EQ((*results)[0].options.epochs, 6);
}

TEST_F(TuningTest, ScoresComeFromValidationSplit) {
  auto results = GridSearchActor(*data_, {Fast(2)});
  ASSERT_TRUE(results.ok());
  // The validation split is non-trivial and the score reflects a real
  // evaluation (not 0, not NaN).
  EXPECT_GT((*results)[0].validation_scores.text, 0.0);
  EXPECT_GT((*results)[0].validation_scores.location, 0.0);
}

}  // namespace
}  // namespace actor
