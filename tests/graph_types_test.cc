#include "graph/types.h"

#include <gtest/gtest.h>

namespace actor {
namespace {

TEST(VertexTypeTest, Names) {
  EXPECT_STREQ(VertexTypeName(VertexType::kTime), "T");
  EXPECT_STREQ(VertexTypeName(VertexType::kLocation), "L");
  EXPECT_STREQ(VertexTypeName(VertexType::kWord), "W");
  EXPECT_STREQ(VertexTypeName(VertexType::kUser), "U");
}

TEST(EdgeTypeTest, Names) {
  EXPECT_STREQ(EdgeTypeName(EdgeType::kTL), "TL");
  EXPECT_STREQ(EdgeTypeName(EdgeType::kWW), "WW");
  EXPECT_STREQ(EdgeTypeName(EdgeType::kUU), "UU");
}

struct EdgePairCase {
  VertexType a;
  VertexType b;
  EdgeType expected;
};

class EdgeTypeSweep : public ::testing::TestWithParam<EdgePairCase> {};

TEST_P(EdgeTypeSweep, ResolvesBothOrders) {
  const auto& c = GetParam();
  auto forward = EdgeTypeBetween(c.a, c.b);
  auto backward = EdgeTypeBetween(c.b, c.a);
  ASSERT_TRUE(forward.ok());
  ASSERT_TRUE(backward.ok());
  EXPECT_EQ(*forward, c.expected);
  EXPECT_EQ(*backward, c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, EdgeTypeSweep,
    ::testing::Values(
        EdgePairCase{VertexType::kTime, VertexType::kLocation, EdgeType::kTL},
        EdgePairCase{VertexType::kLocation, VertexType::kWord, EdgeType::kLW},
        EdgePairCase{VertexType::kWord, VertexType::kTime, EdgeType::kWT},
        EdgePairCase{VertexType::kWord, VertexType::kWord, EdgeType::kWW},
        EdgePairCase{VertexType::kUser, VertexType::kTime, EdgeType::kUT},
        EdgePairCase{VertexType::kUser, VertexType::kWord, EdgeType::kUW},
        EdgePairCase{VertexType::kUser, VertexType::kLocation, EdgeType::kUL},
        EdgePairCase{VertexType::kUser, VertexType::kUser, EdgeType::kUU}));

TEST(EdgeTypeTest, UnsupportedPairsRejected) {
  EXPECT_TRUE(EdgeTypeBetween(VertexType::kTime, VertexType::kTime)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(EdgeTypeBetween(VertexType::kLocation, VertexType::kLocation)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace actor
