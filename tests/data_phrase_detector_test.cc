#include "data/phrase_detector.h"

#include <gtest/gtest.h>

#include "data/corpus.h"

namespace actor {
namespace {

/// Corpus where the venue name is a rigid 4-gram (30 occurrences) while
/// "red" pairs with five different words, each pairing rare. With
/// discount 3, every red-X bigram scores 0 while the venue bigrams score
/// (30-3) * 180 / 900 = 5.4.
std::vector<std::vector<std::string>> PhraseCorpus() {
  std::vector<std::vector<std::string>> docs;
  for (int i = 0; i < 30; ++i) {
    docs.push_back({"patrick", "molloy", "sport", "pub", "tonight"});
  }
  for (const char* x : {"car", "house", "wine", "door", "sky"}) {
    for (int i = 0; i < 3; ++i) docs.push_back({"red", x});
  }
  return docs;
}

PhraseOptions SmallCorpusOptions() {
  PhraseOptions options;
  options.threshold = 3.0;  // the word2phrase score scales with corpus size
  options.min_count = 3;
  return options;
}

TEST(PhraseDetectorTest, LearnsCohesiveBigrams) {
  auto detector =
      PhraseDetector::Learn(PhraseCorpus(), SmallCorpusOptions());
  ASSERT_TRUE(detector.ok()) << detector.status().ToString();
  EXPECT_GT(detector->num_phrases(), 0u);
  EXPECT_TRUE(detector->IsPhrase("patrick", "molloy"));
  EXPECT_TRUE(detector->IsPhrase("sport", "pub"));
}

TEST(PhraseDetectorTest, DoesNotMergePromiscuousPairs) {
  auto detector =
      PhraseDetector::Learn(PhraseCorpus(), SmallCorpusOptions());
  ASSERT_TRUE(detector.ok());
  // "red" pairs with five different words; the discount nulls each rare
  // pairing's score.
  EXPECT_FALSE(detector->IsPhrase("red", "car"));
}

TEST(PhraseDetectorTest, MultiPassBuildsLongUnits) {
  PhraseOptions options;
  options.passes = 2;
  options.min_count = 3;
  options.threshold = 2.0;  // pass-2 merged-token score is 2.7 here
  auto detector = PhraseDetector::Learn(PhraseCorpus(), options);
  ASSERT_TRUE(detector.ok());
  const auto merged =
      detector->Apply({"patrick", "molloy", "sport", "pub", "tonight"});
  // Two passes: (patrick_molloy)(sport_pub) then possibly the 4-gram.
  ASSERT_GE(merged.size(), 2u);
  ASSERT_LE(merged.size(), 3u);
  bool has_long_unit = false;
  for (const auto& tok : merged) {
    if (tok == "patrick_molloy_sport_pub") has_long_unit = true;
  }
  EXPECT_TRUE(has_long_unit) << "merged: " << merged.size();
}

TEST(PhraseDetectorTest, ApplyLeavesUnknownTokensAlone) {
  auto detector =
      PhraseDetector::Learn(PhraseCorpus(), SmallCorpusOptions());
  ASSERT_TRUE(detector.ok());
  const auto out = detector->Apply({"totally", "unrelated", "tokens"});
  EXPECT_EQ(out, (std::vector<std::string>{"totally", "unrelated",
                                           "tokens"}));
}

TEST(PhraseDetectorTest, EmptyDocumentOk) {
  auto detector =
      PhraseDetector::Learn(PhraseCorpus(), SmallCorpusOptions());
  ASSERT_TRUE(detector.ok());
  EXPECT_TRUE(detector->Apply({}).empty());
  EXPECT_EQ(detector->Apply({"solo"}).size(), 1u);
}

TEST(PhraseDetectorTest, EmptyCorpusRejected) {
  EXPECT_TRUE(PhraseDetector::Learn({}).status().IsInvalidArgument());
}

TEST(PhraseDetectorTest, BadOptionsRejected) {
  PhraseOptions options;
  options.threshold = 0.0;
  EXPECT_TRUE(
      PhraseDetector::Learn(PhraseCorpus(), options).status()
          .IsInvalidArgument());
  options = PhraseOptions();
  options.passes = 0;
  EXPECT_TRUE(
      PhraseDetector::Learn(PhraseCorpus(), options).status()
          .IsInvalidArgument());
}

TEST(PhraseDetectorTest, RareBigramsNeverMerge) {
  PhraseOptions options;
  options.min_count = 50;  // nothing reaches this
  auto detector = PhraseDetector::Learn(PhraseCorpus(), options);
  ASSERT_TRUE(detector.ok());
  EXPECT_EQ(detector->num_phrases(), 0u);
}

TEST(PhraseDetectorTest, IntegratesWithCorpusBuild) {
  Corpus corpus;
  for (int i = 0; i < 20; ++i) {
    RawRecord r;
    r.id = i;
    r.user_id = i % 5;
    r.timestamp = i * 1000.0;
    r.location = {1.0, 1.0};
    r.text = "great evening at hermosa beach tonight";
    corpus.Add(std::move(r));
  }
  CorpusBuildOptions build;
  build.min_word_count = 1;
  build.detect_phrases = true;
  build.phrase.threshold = 2.0;
  build.phrase.min_count = 3;
  auto tokenized = TokenizedCorpus::Build(corpus, build);
  ASSERT_TRUE(tokenized.ok()) << tokenized.status().ToString();
  // "hermosa beach" is perfectly cohesive -> becomes one unit.
  EXPECT_GE(tokenized->vocab().Lookup("hermosa_beach"), -1);
  bool found_merged = false;
  for (int32_t w = 0; w < tokenized->vocab().size(); ++w) {
    if (tokenized->vocab().word(w).find('_') != std::string::npos) {
      found_merged = true;
    }
  }
  EXPECT_TRUE(found_merged);
}

}  // namespace
}  // namespace actor
