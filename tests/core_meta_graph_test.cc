#include "core/meta_graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/corpus.h"
#include "hotspot/hotspot_detector.h"

namespace actor {
namespace {

TEST(MetaGraphTest, IntraRecordStructure) {
  const MetaGraph m0 = IntraRecordMetaGraph();
  EXPECT_EQ(m0.name, "M0");
  EXPECT_FALSE(m0.inter_record);
  EXPECT_EQ(m0.CountType(VertexType::kTime), 1);
  EXPECT_EQ(m0.CountType(VertexType::kLocation), 1);
  EXPECT_EQ(m0.CountType(VertexType::kWord), 2);
  EXPECT_EQ(m0.CountType(VertexType::kUser), 0);
}

TEST(MetaGraphTest, IntraCoversAllIntraEdgeTypes) {
  const MetaGraph m0 = IntraRecordMetaGraph();
  const auto covered = m0.CoveredEdgeTypes();
  for (EdgeType e : IntraEdgeTypes()) {
    EXPECT_NE(std::find(covered.begin(), covered.end(), e), covered.end())
        << EdgeTypeName(e);
  }
}

TEST(MetaGraphTest, SixInterRecordSchemes) {
  const auto metas = InterRecordMetaGraphs();
  ASSERT_EQ(metas.size(), 6u);
  for (const auto& m : metas) {
    EXPECT_TRUE(m.inter_record);
    EXPECT_EQ(m.CountType(VertexType::kUser), 2);
    // Every scheme contains the U-U edge.
    const auto covered = m.CoveredEdgeTypes();
    EXPECT_NE(std::find(covered.begin(), covered.end(), EdgeType::kUU),
              covered.end());
  }
  EXPECT_EQ(metas[0].name, "M1");
  EXPECT_EQ(metas[5].name, "M6");
}

TEST(MetaGraphTest, InterSchemesCoverExpectedUnitTypes) {
  const auto metas = InterRecordMetaGraphs();
  // M1 {T}, M2 {L}, M3 {W}, M4 {T,W}, M5 {L,W}, M6 {T,L}.
  EXPECT_EQ(metas[0].CountType(VertexType::kTime), 1);
  EXPECT_EQ(metas[1].CountType(VertexType::kLocation), 1);
  EXPECT_EQ(metas[2].CountType(VertexType::kWord), 1);
  EXPECT_EQ(metas[3].CountType(VertexType::kTime), 1);
  EXPECT_EQ(metas[3].CountType(VertexType::kWord), 1);
  EXPECT_EQ(metas[4].CountType(VertexType::kLocation), 1);
  EXPECT_EQ(metas[4].CountType(VertexType::kWord), 1);
  EXPECT_EQ(metas[5].CountType(VertexType::kTime), 1);
  EXPECT_EQ(metas[5].CountType(VertexType::kLocation), 1);
}

TEST(MetaGraphTest, InterSchemesAreHighOrder) {
  // Every inter-record scheme has >= 2 edges, i.e., instances contain more
  // than two pass-through hops in the combined graph (paper §5.4).
  for (const auto& m : InterRecordMetaGraphs()) {
    EXPECT_GE(m.edges.size(), 2u) << m.name;
  }
}

TEST(MetaGraphTest, EdgeTypeSets) {
  const auto& intra = IntraEdgeTypes();
  ASSERT_EQ(intra.size(), 4u);
  const auto& inter = InterEdgeTypes();
  ASSERT_EQ(inter.size(), 3u);
  EXPECT_EQ(inter[0], EdgeType::kUT);
  EXPECT_EQ(inter[1], EdgeType::kUW);
  EXPECT_EQ(inter[2], EdgeType::kUL);
}

class InstanceCountFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Corpus c;
    RawRecord a;
    a.id = 0;
    a.user_id = 1;
    a.timestamp = 9 * 3600.0;
    a.location = {1, 1};
    a.text = "coffee breakfast";
    c.Add(a);
    RawRecord b;
    b.id = 1;
    b.user_id = 2;
    b.timestamp = 21 * 3600.0;
    b.location = {30, 30};
    b.text = "cinema night";
    b.mentioned_user_ids = {1};
    c.Add(b);
    CorpusBuildOptions build;
    build.min_word_count = 1;
    auto corpus = TokenizedCorpus::Build(c, build);
    ASSERT_TRUE(corpus.ok());
    auto hotspots = DetectHotspots(*corpus);
    ASSERT_TRUE(hotspots.ok());
    auto graphs = BuildGraphs(*corpus, *hotspots);
    ASSERT_TRUE(graphs.ok());
    graphs_ = graphs.MoveValueOrDie();
  }

  BuiltGraphs graphs_;
};

TEST_F(InstanceCountFixture, CountsMentionInstances) {
  // One mention; user 1 carries UT/UW/UL degree from their own record, so
  // every scheme M1..M6 has exactly one instance.
  for (const auto& m : InterRecordMetaGraphs()) {
    EXPECT_EQ(CountInterRecordInstances(graphs_, m), 1) << m.name;
  }
}

TEST_F(InstanceCountFixture, NoMentionsMeansNoInstances) {
  // Rebuild with the mention-free record only.
  Corpus c;
  RawRecord a;
  a.id = 0;
  a.user_id = 1;
  a.timestamp = 9 * 3600.0;
  a.location = {1, 1};
  a.text = "coffee breakfast";
  c.Add(a);
  CorpusBuildOptions build;
  build.min_word_count = 1;
  auto corpus = TokenizedCorpus::Build(c, build);
  ASSERT_TRUE(corpus.ok());
  auto hotspots = DetectHotspots(*corpus);
  ASSERT_TRUE(hotspots.ok());
  auto graphs = BuildGraphs(*corpus, *hotspots);
  ASSERT_TRUE(graphs.ok());
  for (const auto& m : InterRecordMetaGraphs()) {
    EXPECT_EQ(CountInterRecordInstances(*graphs, m), 0);
  }
}

}  // namespace
}  // namespace actor
