// Cross-preset property sweep: the pipeline invariants every dataset
// preset must satisfy, whatever its scale or mention policy.

#include <gtest/gtest.h>

#include "core/meta_graph.h"
#include "eval/pipeline.h"

namespace actor {
namespace {

struct PresetCase {
  const char* name;
  PipelineOptions (*make)(double);
  bool has_mentions;
};

class PresetSweep : public ::testing::TestWithParam<PresetCase> {
 protected:
  static PreparedDataset Prepare(const PresetCase& c) {
    PipelineOptions options = c.make(0.08);
    auto data = PrepareDataset(options, c.name);
    EXPECT_TRUE(data.ok()) << data.status().ToString();
    return data.MoveValueOrDie();
  }
};

TEST_P(PresetSweep, SplitPartitionsCorpus) {
  const PreparedDataset data = Prepare(GetParam());
  EXPECT_EQ(data.split.train.size() + data.split.valid.size() +
                data.split.test.size(),
            data.full.size());
  EXPECT_GT(data.train.size(), data.test.size());
}

TEST_P(PresetSweep, EveryRecordResolvesToUnits) {
  const PreparedDataset data = Prepare(GetParam());
  for (const auto& rec : data.test.records()) {
    EXPECT_GE(data.hotspots->spatial.Assign(rec.location), 0);
    EXPECT_GE(data.hotspots->temporal.Assign(rec.timestamp), 0);
    for (int32_t w : rec.word_ids) {
      ASSERT_GE(w, 0);
      ASSERT_LT(w, data.full.vocab().size());
    }
  }
}

TEST_P(PresetSweep, GraphDegreesMatchEdgeWeights) {
  const PreparedDataset data = Prepare(GetParam());
  const Heterograph& g = data.graphs->activity;
  for (int e = 0; e < kNumEdgeTypes; ++e) {
    const EdgeType et = static_cast<EdgeType>(e);
    double degree_sum = 0.0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      degree_sum += g.Degree(et, v);
    }
    double edge_sum = 0.0;
    for (double w : g.edges(et).weight) edge_sum += w;
    EXPECT_NEAR(degree_sum, edge_sum, 1e-6) << EdgeTypeName(et);
  }
}

TEST_P(PresetSweep, MentionPolicyGovernsUserGraph) {
  const PresetCase& c = GetParam();
  const PreparedDataset data = Prepare(c);
  const std::size_t uu_edges =
      data.graphs->user_graph.edges(EdgeType::kUU).size();
  if (c.has_mentions) {
    EXPECT_GT(uu_edges, 0u);
    for (const auto& meta : InterRecordMetaGraphs()) {
      EXPECT_GT(CountInterRecordInstances(*data.graphs, meta), 0) << meta.name;
    }
  } else {
    EXPECT_EQ(uu_edges, 0u);
  }
}

TEST_P(PresetSweep, IntraEdgeTypesAllPopulated) {
  const PreparedDataset data = Prepare(GetParam());
  for (EdgeType e : IntraEdgeTypes()) {
    EXPECT_GT(data.graphs->activity.edges(e).size(), 0u) << EdgeTypeName(e);
  }
  // Author edges always exist regardless of mention policy.
  for (EdgeType e : InterEdgeTypes()) {
    EXPECT_GT(data.graphs->activity.edges(e).size(), 0u) << EdgeTypeName(e);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Presets, PresetSweep,
    ::testing::Values(PresetCase{"utgeo", &UTGeoPipeline, true},
                      PresetCase{"tweet", &TweetPipeline, false},
                      PresetCase{"4sq", &FourSqPipeline, false}));

}  // namespace
}  // namespace actor
