#include "data/record.h"

#include <gtest/gtest.h>

#include <cmath>

namespace actor {
namespace {

TEST(GeoPointTest, DistanceBasic) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
}

TEST(GeoPointTest, DistanceZero) {
  EXPECT_DOUBLE_EQ(Distance({1.5, -2.5}, {1.5, -2.5}), 0.0);
}

TEST(GeoPointTest, DistanceSymmetric) {
  const GeoPoint a{1, 2}, b{-4, 7};
  EXPECT_DOUBLE_EQ(Distance(a, b), Distance(b, a));
}

TEST(HourOfDayTest, Midnight) { EXPECT_DOUBLE_EQ(HourOfDay(0.0), 0.0); }

TEST(HourOfDayTest, Noon) {
  EXPECT_DOUBLE_EQ(HourOfDay(12 * 3600.0), 12.0);
}

TEST(HourOfDayTest, WrapsAcrossDays) {
  EXPECT_DOUBLE_EQ(HourOfDay(kSecondsPerDay + 3 * 3600.0), 3.0);
  EXPECT_DOUBLE_EQ(HourOfDay(10 * kSecondsPerDay + 23 * 3600.0), 23.0);
}

TEST(HourOfDayTest, NegativeTimestamps) {
  // -1 hour == 23:00 the previous day.
  EXPECT_DOUBLE_EQ(HourOfDay(-3600.0), 23.0);
}

TEST(HourOfDayTest, FractionalHours) {
  EXPECT_NEAR(HourOfDay(3600.0 * 14.5), 14.5, 1e-9);
}

struct CircularCase {
  double h1, h2, expected;
};

class CircularHourSweep : public ::testing::TestWithParam<CircularCase> {};

TEST_P(CircularHourSweep, Distance) {
  const auto& c = GetParam();
  EXPECT_NEAR(CircularHourDistance(c.h1, c.h2), c.expected, 1e-9);
  EXPECT_NEAR(CircularHourDistance(c.h2, c.h1), c.expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CircularHourSweep,
    ::testing::Values(CircularCase{0.0, 0.0, 0.0},
                      CircularCase{1.0, 2.0, 1.0},
                      CircularCase{23.0, 1.0, 2.0},   // across midnight
                      CircularCase{0.5, 23.5, 1.0},
                      CircularCase{12.0, 0.0, 12.0},  // farthest apart
                      CircularCase{18.0, 6.0, 12.0},
                      CircularCase{22.0, 4.0, 6.0},
                      CircularCase{6.25, 6.75, 0.5}));

TEST(CircularHourTest, NeverExceedsTwelve) {
  for (double h1 = 0.0; h1 < 24.0; h1 += 0.7) {
    for (double h2 = 0.0; h2 < 24.0; h2 += 0.9) {
      EXPECT_LE(CircularHourDistance(h1, h2), 12.0);
      EXPECT_GE(CircularHourDistance(h1, h2), 0.0);
    }
  }
}

}  // namespace
}  // namespace actor
