// QueryEngine::QueryBatch regression tests: every entry of a batched call
// must be identical — neighbor order, similarity bits, and error statuses —
// to calling the matching sequential QueryBy*() method, on every kernel
// backend. This is the determinism contract behind the batched serving
// path (docs/serving.md): batching is a pure amortization of snapshot
// acquires and memory traffic, never a numerics change.

#include "serve/query_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/actor.h"
#include "eval/pipeline.h"
#include "util/vec_math.h"

namespace actor {
namespace {

class QueryBatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PipelineOptions pipeline = UTGeoPipeline(0.1);
    pipeline.synthetic.num_records = 1500;
    pipeline.synthetic.seed = 23;
    auto prepared = PrepareDataset(pipeline, "qb-test");
    ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
    data_ = new PreparedDataset(prepared.MoveValueOrDie());
    ActorOptions options;
    options.dim = 16;
    options.epochs = 3;
    options.samples_per_edge = 4;
    auto model = TrainActor(*data_->graphs, options);
    ASSERT_TRUE(model.ok());
    model_ = new ActorModel(model.MoveValueOrDie());
    snapshot_ = data_->Snapshot(model_->center);
  }
  static void TearDownTestSuite() {
    snapshot_.reset();
    delete model_;
    delete data_;
    model_ = nullptr;
    data_ = nullptr;
  }
  void TearDown() override { SetVecBackend(VecBackend::kAvx2); }

  /// Backends to sweep: scalar + relaxed everywhere, AVX2 when the CPU has
  /// it. (Under ACTOR_TSAN every request lands on kRelaxed — the
  /// batch-vs-sequential comparison still runs on one backend.)
  static std::vector<VecBackend> Backends() {
    std::vector<VecBackend> out = {VecBackend::kScalar, VecBackend::kRelaxed};
    if (Avx2Available()) out.push_back(VecBackend::kAvx2);
    return out;
  }

  /// The sequential entry point a BatchQuery mirrors.
  static Result<std::vector<Neighbor>> Sequential(const QueryEngine& engine,
                                                  const BatchQuery& q) {
    switch (q.kind) {
      case BatchQuery::Kind::kLocation:
        return engine.QueryByLocation(q.location, q.result_type, q.k);
      case BatchQuery::Kind::kHour:
        return engine.QueryByHour(q.hour, q.result_type, q.k);
      case BatchQuery::Kind::kKeyword:
        return engine.QueryByKeyword(q.keyword, q.result_type, q.k);
      case BatchQuery::Kind::kVector:
        return engine.QueryByVector(q.vector, q.result_type, q.k, q.exclude);
    }
    return Status::Internal("unreachable");
  }

  static void ExpectSameResult(const Result<std::vector<Neighbor>>& got,
                               const Result<std::vector<Neighbor>>& want,
                               const std::string& what) {
    ASSERT_EQ(got.ok(), want.ok())
        << what << ": " << got.status().ToString() << " vs "
        << want.status().ToString();
    if (!want.ok()) {
      EXPECT_EQ(got.status().ToString(), want.status().ToString()) << what;
      return;
    }
    ASSERT_EQ(got->size(), want->size()) << what;
    for (std::size_t i = 0; i < want->size(); ++i) {
      ASSERT_EQ((*got)[i].vertex, (*want)[i].vertex) << what << " i=" << i;
      // Bit-identical scores: DotAndNorm2Batch preserves each query's
      // per-backend reduction order.
      ASSERT_EQ((*got)[i].similarity, (*want)[i].similarity)
          << what << " i=" << i;
      EXPECT_EQ((*got)[i].name, (*want)[i].name) << what << " i=" << i;
      EXPECT_EQ((*got)[i].type, (*want)[i].type) << what << " i=" << i;
    }
  }

  static void ExpectBatchMatchesSequential(
      const QueryEngine& engine, const std::vector<BatchQuery>& batch) {
    for (VecBackend backend : Backends()) {
      SetVecBackend(backend);
      const auto got = engine.QueryBatch(batch);
      ASSERT_EQ(got.size(), batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        ExpectSameResult(got[i], Sequential(engine, batch[i]),
                         std::string(VecBackendName(backend)) +
                             " query=" + std::to_string(i));
      }
    }
  }

  /// A word that is guaranteed resolvable: word-unit vertices are named
  /// after their vocabulary word.
  static std::string KnownKeyword() {
    const auto& words = snapshot_->VerticesOfType(VertexType::kWord);
    return words.empty() ? std::string() : snapshot_->vertex_name(words[0]);
  }

  static PreparedDataset* data_;
  static ActorModel* model_;
  static std::shared_ptr<const ModelSnapshot> snapshot_;
};

PreparedDataset* QueryBatchTest::data_ = nullptr;
ActorModel* QueryBatchTest::model_ = nullptr;
std::shared_ptr<const ModelSnapshot> QueryBatchTest::snapshot_;

TEST_F(QueryBatchTest, MixedKindBatchMatchesSequentialOnEveryBackend) {
  QueryEngine engine(snapshot_);
  const std::string word = KnownKeyword();
  ASSERT_FALSE(word.empty());
  std::vector<BatchQuery> batch;
  batch.push_back(BatchQuery::Location({20, 20}, VertexType::kWord, 6));
  batch.push_back(BatchQuery::Hour(21.0, VertexType::kWord, 4));
  batch.push_back(BatchQuery::Keyword(word, VertexType::kLocation, 5));
  batch.push_back(BatchQuery::Vector(model_->center.row(3),
                                     VertexType::kWord, 7, VertexId{3}));
  batch.push_back(BatchQuery::Vector(model_->center.row(0),
                                     VertexType::kUser, 3, VertexId{0}));
  batch.push_back(BatchQuery::Hour(3.5, VertexType::kTime, 2));
  ExpectBatchMatchesSequential(engine, batch);
}

TEST_F(QueryBatchTest, ManyQueriesOneTypeExerciseKernelBlocking) {
  // 9 same-type queries: the blocked kernel runs full register blocks plus
  // a remainder lane on every candidate row.
  QueryEngine engine(snapshot_);
  std::vector<BatchQuery> batch;
  for (VertexId q = 0; q < 9; ++q) {
    ASSERT_LT(q, model_->center.rows());
    batch.push_back(
        BatchQuery::Vector(model_->center.row(q), VertexType::kWord, 5, q));
  }
  ExpectBatchMatchesSequential(engine, batch);
}

TEST_F(QueryBatchTest, EmptyBatchReturnsEmpty) {
  QueryEngine engine(snapshot_);
  EXPECT_TRUE(engine.QueryBatch({}).empty());
}

TEST_F(QueryBatchTest, KLargerThanUnitCountReturnsWholeType) {
  QueryEngine engine(snapshot_);
  std::vector<BatchQuery> batch;
  batch.push_back(BatchQuery::Vector(model_->center.row(3),
                                     VertexType::kTime, 100000, VertexId{3}));
  batch.push_back(BatchQuery::Hour(12.0, VertexType::kWord, 100000));
  ExpectBatchMatchesSequential(engine, batch);
  const auto got = engine.QueryBatch(batch);
  ASSERT_TRUE(got[0].ok());
  const auto& times = snapshot_->VerticesOfType(VertexType::kTime);
  const bool excluded =
      std::find(times.begin(), times.end(), VertexId{3}) != times.end();
  EXPECT_EQ(got[0]->size(), times.size() - (excluded ? 1 : 0));
}

TEST_F(QueryBatchTest, PerQueryErrorsMatchSequentialAndDontDisturbOthers) {
  QueryEngine engine(snapshot_);
  std::vector<BatchQuery> batch;
  batch.push_back(
      BatchQuery::Keyword("definitely_not_a_word", VertexType::kWord, 3));
  batch.push_back(BatchQuery::Vector(model_->center.row(3),
                                     VertexType::kWord, 0, VertexId{3}));
  batch.push_back(BatchQuery::Location({20, 20}, VertexType::kWord, 0));
  batch.push_back(BatchQuery::Hour(21.0, VertexType::kWord, 4));  // healthy
  ExpectBatchMatchesSequential(engine, batch);
  const auto got = engine.QueryBatch(batch);
  EXPECT_TRUE(got[0].status().IsNotFound());
  EXPECT_TRUE(got[1].status().IsInvalidArgument());
  EXPECT_TRUE(got[2].status().IsInvalidArgument());
  EXPECT_TRUE(got[3].ok());
}

TEST_F(QueryBatchTest, MixedResultTypesShareOneTraversal) {
  QueryEngine engine(snapshot_);
  std::vector<BatchQuery> batch;
  for (VertexType type : {VertexType::kWord, VertexType::kLocation,
                          VertexType::kTime, VertexType::kUser}) {
    batch.push_back(
        BatchQuery::Vector(model_->center.row(17), type, 5, VertexId{17}));
  }
  ExpectBatchMatchesSequential(engine, batch);
}

}  // namespace
}  // namespace actor
