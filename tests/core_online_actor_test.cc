#include "core/online_actor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "eval/mrr.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace actor {
namespace {

/// Tokenizes a synthetic dataset into batches of equal size.
std::vector<std::vector<TokenizedRecord>> MakeBatches(int records,
                                                      int batches,
                                                      uint64_t seed = 5) {
  SyntheticConfig config;
  config.seed = seed;
  config.num_records = records;
  config.num_users = 80;
  config.num_communities = 4;
  config.num_topics = 6;
  config.num_venues = 16;
  config.keywords_per_topic = 20;
  config.background_vocab = 40;
  auto ds = GenerateSynthetic(config);
  EXPECT_TRUE(ds.ok());
  CorpusBuildOptions build;
  build.min_word_count = 1;
  auto corpus = TokenizedCorpus::Build(ds->corpus, build);
  EXPECT_TRUE(corpus.ok());
  std::vector<std::vector<TokenizedRecord>> out(batches);
  for (std::size_t i = 0; i < corpus->size(); ++i) {
    out[i * batches / corpus->size()].push_back(corpus->record(i));
  }
  return out;
}

OnlineActorOptions FastOptions() {
  OnlineActorOptions o;
  o.dim = 16;
  o.samples_per_edge_per_batch = 2.0;
  return o;
}

TEST(OnlineActorTest, CreateValidatesOptions) {
  OnlineActorOptions o = FastOptions();
  o.dim = 0;
  EXPECT_TRUE(OnlineActor::Create(o).status().IsInvalidArgument());
  o = FastOptions();
  o.decay_per_batch = 0.0;
  EXPECT_TRUE(OnlineActor::Create(o).status().IsInvalidArgument());
  o = FastOptions();
  o.decay_per_batch = 1.5;
  EXPECT_TRUE(OnlineActor::Create(o).status().IsInvalidArgument());
  o = FastOptions();
  o.samples_per_edge_per_batch = 0.0;
  EXPECT_TRUE(OnlineActor::Create(o).status().IsInvalidArgument());
}

TEST(OnlineActorTest, EmptyBatchIsAPureDecayTick) {
  // Sparse-stream mode: an empty batch means a time slice passed with no
  // observations. It must succeed, count as a batch, decay the live
  // edges, and leave the model ready for the next real batch.
  auto model = OnlineActor::Create(FastOptions());
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->Ingest({}).ok());  // decay tick on an empty model
  EXPECT_EQ(model->batches_ingested(), 1);

  const auto batches = MakeBatches(600, 3);
  ASSERT_TRUE(model->Ingest(batches[0]).ok());
  const std::size_t live_before = model->num_live_edges();
  ASSERT_GT(live_before, 0u);
  // Enough consecutive decay ticks push every weight below the drop
  // threshold; the edge set must shrink, proving DecayEdges really ran.
  for (int i = 0; i < 64 && model->num_live_edges() > 0; ++i) {
    ASSERT_TRUE(model->Ingest({}).ok());
  }
  EXPECT_LT(model->num_live_edges(), live_before);
  EXPECT_GE(model->batches_ingested(), 3);

  // The stream recovers: a real batch after the quiet period trains fine.
  ASSERT_TRUE(model->Ingest(batches[1]).ok());
  EXPECT_GT(model->num_live_edges(), 0u);
}

TEST(OnlineActorTest, UnitsGrowWithData) {
  auto model = OnlineActor::Create(FastOptions());
  ASSERT_TRUE(model.ok());
  const auto batches = MakeBatches(1200, 3);
  ASSERT_TRUE(model->Ingest(batches[0]).ok());
  const int32_t units_after_one = model->num_units();
  EXPECT_GT(units_after_one, 0);
  EXPECT_GT(model->num_spatial_hotspots(), 0u);
  EXPECT_GT(model->num_temporal_hotspots(), 0u);
  EXPECT_GT(model->num_live_edges(), 0u);
  ASSERT_TRUE(model->Ingest(batches[1]).ok());
  EXPECT_GE(model->num_units(), units_after_one);
  EXPECT_EQ(model->batches_ingested(), 2);
}

TEST(OnlineActorTest, SpatialHotspotSpawnRespectsThreshold) {
  OnlineActorOptions o = FastOptions();
  o.new_spatial_hotspot_km = 5.0;
  auto model = OnlineActor::Create(o);
  ASSERT_TRUE(model.ok());
  TokenizedRecord near_a;
  near_a.timestamp = 9 * 3600.0;
  near_a.location = {10, 10};
  near_a.word_ids = {0};
  TokenizedRecord near_b = near_a;
  near_b.location = {11, 11};  // within 5 km of the first
  TokenizedRecord far = near_a;
  far.location = {30, 30};
  ASSERT_TRUE(model->Ingest({near_a, near_b, far}).ok());
  EXPECT_EQ(model->num_spatial_hotspots(), 2u);
  EXPECT_EQ(model->SpatialUnit({10.5, 10.5}),
            model->SpatialUnit({10.0, 10.0}));
  EXPECT_NE(model->SpatialUnit({30, 30}), model->SpatialUnit({10, 10}));
}

TEST(OnlineActorTest, TemporalHotspotWrapsMidnight) {
  OnlineActorOptions o = FastOptions();
  o.new_temporal_hotspot_hours = 1.0;
  auto model = OnlineActor::Create(o);
  ASSERT_TRUE(model.ok());
  TokenizedRecord late;
  late.timestamp = 23.8 * 3600.0;
  late.location = {1, 1};
  late.word_ids = {0};
  TokenizedRecord early = late;
  early.timestamp = 24.2 * 3600.0;  // 00:12 next day, circularly close
  ASSERT_TRUE(model->Ingest({late, early}).ok());
  EXPECT_EQ(model->num_temporal_hotspots(), 1u);
}

TEST(OnlineActorTest, WordsAndUsersDeduplicated) {
  auto model = OnlineActor::Create(FastOptions());
  ASSERT_TRUE(model.ok());
  TokenizedRecord r1;
  r1.user_id = 7;
  r1.timestamp = 3600.0;
  r1.location = {1, 1};
  r1.word_ids = {3, 4};
  TokenizedRecord r2 = r1;  // same user, same words
  ASSERT_TRUE(model->Ingest({r1, r2}).ok());
  // 1 time + 1 location + 2 words + 1 user.
  EXPECT_EQ(model->num_units(), 5);
  EXPECT_NE(model->WordUnit(3), kInvalidVertex);
  EXPECT_EQ(model->WordUnit(99), kInvalidVertex);
}

TEST(OnlineActorTest, DecayDropsStaleEdges) {
  OnlineActorOptions o = FastOptions();
  o.decay_per_batch = 0.3;
  o.min_edge_weight = 0.2;
  auto model = OnlineActor::Create(o);
  ASSERT_TRUE(model.ok());
  TokenizedRecord stale;
  stale.user_id = 1;
  stale.timestamp = 3600.0;
  stale.location = {1, 1};
  stale.word_ids = {0, 1};
  ASSERT_TRUE(model->Ingest({stale}).ok());
  const std::size_t live_before = model->num_live_edges();
  ASSERT_GT(live_before, 0u);
  // Ingest unrelated batches; the original co-occurrences decay away.
  TokenizedRecord fresh;
  fresh.user_id = 2;
  fresh.timestamp = 12 * 3600.0;
  fresh.location = {30, 30};
  fresh.word_ids = {5, 6};
  ASSERT_TRUE(model->Ingest({fresh}).ok());
  ASSERT_TRUE(model->Ingest({fresh}).ok());
  ASSERT_TRUE(model->Ingest({fresh}).ok());
  // Stale pair 0-1 must be gone: only the fresh record's edges survive.
  EXPECT_LT(model->num_live_edges(), live_before + 14);
  // Units are never removed.
  EXPECT_NE(model->WordUnit(0), kInvalidVertex);
}

TEST(OnlineActorTest, NoDecayKeepsEdges) {
  OnlineActorOptions o = FastOptions();
  o.decay_per_batch = 1.0;
  auto model = OnlineActor::Create(o);
  ASSERT_TRUE(model.ok());
  const auto batches = MakeBatches(600, 2, 9);
  ASSERT_TRUE(model->Ingest(batches[0]).ok());
  const std::size_t live = model->num_live_edges();
  ASSERT_TRUE(model->Ingest(batches[1]).ok());
  EXPECT_GE(model->num_live_edges(), live);
}

TEST(OnlineActorTest, LearnsCrossModalStructure) {
  OnlineActorOptions options = FastOptions();
  options.samples_per_edge_per_batch = 6.0;
  auto model = OnlineActor::Create(options);
  ASSERT_TRUE(model.ok());
  const auto batches = MakeBatches(3000, 3, 13);
  ASSERT_TRUE(model->Ingest(batches[0]).ok());
  ASSERT_TRUE(model->Ingest(batches[1]).ok());

  // Prequential check on the held-out third batch: rank the true
  // location unit against 10 *distinct* noise locations (the test world
  // has few venues, so noise records sharing the truth's hotspot are
  // skipped — a tie against oneself is not an error signal).
  Rng rng(3);
  std::vector<int> ranks;
  const auto& test = batches[2];
  for (std::size_t q = 0; q < std::min<std::size_t>(test.size(), 300); ++q) {
    const VertexId truth_unit = model->SpatialUnit(test[q].location);
    if (truth_unit == kInvalidVertex) continue;
    const double truth = model->ScoreRecordAgainstUnit(test[q], truth_unit);
    std::vector<double> noise;
    int attempts = 0;
    while (static_cast<int>(noise.size()) < 10 && attempts++ < 200) {
      const auto& other = test[rng.Uniform(test.size())];
      const VertexId unit = model->SpatialUnit(other.location);
      if (unit == truth_unit || unit == kInvalidVertex) continue;
      noise.push_back(model->ScoreRecordAgainstUnit(test[q], unit));
    }
    if (noise.size() < 10) continue;
    ranks.push_back(RankOfTruth(truth, noise));
  }
  ASSERT_GT(ranks.size(), 100u);
  // Random guessing gives ~0.27; the online model must do much better.
  EXPECT_GT(MeanReciprocalRank(ranks), 0.45);
}

TEST(OnlineActorTest, DeterministicForSeed) {
  const auto batches = MakeBatches(800, 1, 21);
  auto a = OnlineActor::Create(FastOptions());
  auto b = OnlineActor::Create(FastOptions());
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(a->Ingest(batches[0]).ok());
  ASSERT_TRUE(b->Ingest(batches[0]).ok());
  ASSERT_EQ(a->num_units(), b->num_units());
  for (VertexId v = 0; v < a->num_units(); ++v) {
    for (int d = 0; d < 16; ++d) {
      ASSERT_FLOAT_EQ(a->center().row(v)[d], b->center().row(v)[d]);
    }
  }
}

TEST(OnlineActorTest, SingleThreadWithExternalPoolBitIdenticalToNoPool) {
  // The PR 2 contract, extended to the streaming path: num_threads <= 1
  // must ignore any provided pool entirely and stay on the sequential,
  // bit-deterministic code path.
  const auto batches = MakeBatches(800, 2, 21);
  ThreadPool pool(4);
  OnlineActorOptions with_pool = FastOptions();
  with_pool.num_threads = 1;
  with_pool.pool = &pool;
  auto a = OnlineActor::Create(with_pool);
  auto b = OnlineActor::Create(FastOptions());
  ASSERT_TRUE(a.ok() && b.ok());
  for (const auto& batch : batches) {
    ASSERT_TRUE(a->Ingest(batch).ok());
    ASSERT_TRUE(b->Ingest(batch).ok());
  }
  ASSERT_EQ(a->num_units(), b->num_units());
  for (VertexId v = 0; v < a->num_units(); ++v) {
    for (int d = 0; d < 16; ++d) {
      ASSERT_FLOAT_EQ(a->center().row(v)[d], b->center().row(v)[d]);
    }
  }
}

TEST(OnlineActorTest, IncrementalSamplerMatchesFullRebuildDeterministically) {
  // On the sequential path the cached in-place sampler rebuild must be an
  // exact optimization: same draws, same updates, same embeddings as
  // reconstructing every sampler from scratch each batch.
  const auto batches = MakeBatches(800, 3, 21);
  OnlineActorOptions incremental = FastOptions();
  incremental.incremental_sampler = true;
  OnlineActorOptions full = FastOptions();
  full.incremental_sampler = false;
  auto a = OnlineActor::Create(incremental);
  auto b = OnlineActor::Create(full);
  ASSERT_TRUE(a.ok() && b.ok());
  for (const auto& batch : batches) {
    ASSERT_TRUE(a->Ingest(batch).ok());
    ASSERT_TRUE(b->Ingest(batch).ok());
  }
  ASSERT_EQ(a->num_units(), b->num_units());
  for (VertexId v = 0; v < a->num_units(); ++v) {
    for (int d = 0; d < 16; ++d) {
      ASSERT_FLOAT_EQ(a->center().row(v)[d], b->center().row(v)[d]);
    }
  }
}

TEST(OnlineActorTest, MultiThreadIngestLearnsStructure) {
  // HOGWILD re-embed: not bit-deterministic, but it must still converge to
  // a usable space and keep every vector finite.
  const auto batches = MakeBatches(2000, 4, 9);
  OnlineActorOptions options = FastOptions();
  options.num_threads = 4;
  options.samples_per_edge_per_batch = 4.0;
  auto model = OnlineActor::Create(options);
  ASSERT_TRUE(model.ok());
  for (const auto& batch : batches) {
    ASSERT_TRUE(model->Ingest(batch).ok());
  }
  for (VertexId v = 0; v < model->num_units(); ++v) {
    for (int d = 0; d < 16; ++d) {
      ASSERT_TRUE(std::isfinite(model->center().row(v)[d]));
    }
  }
  // Same prequential ranking as LearnsCrossModalStructure, looser bar:
  // HOGWILD noise costs a little quality but the space must stay usable.
  Rng rng(3);
  std::vector<int> ranks;
  const auto& test = batches.back();
  for (std::size_t q = 0; q < std::min<std::size_t>(test.size(), 300); ++q) {
    const VertexId truth_unit = model->SpatialUnit(test[q].location);
    if (truth_unit == kInvalidVertex) continue;
    const double truth = model->ScoreRecordAgainstUnit(test[q], truth_unit);
    std::vector<double> noise;
    int attempts = 0;
    while (static_cast<int>(noise.size()) < 10 && attempts++ < 200) {
      const auto& other = test[rng.Uniform(test.size())];
      const VertexId unit = model->SpatialUnit(other.location);
      if (unit == truth_unit || unit == kInvalidVertex) continue;
      noise.push_back(model->ScoreRecordAgainstUnit(test[q], unit));
    }
    if (noise.size() < 10) continue;
    ranks.push_back(RankOfTruth(truth, noise));
  }
  ASSERT_GT(ranks.size(), 50u);
  EXPECT_GT(MeanReciprocalRank(ranks), 0.35)
      << "multi-thread streaming space degenerated";
}

}  // namespace
}  // namespace actor
