// OnlineEdgeStore: the decaying flat-array co-occurrence store behind
// OnlineActor's streaming pipeline (docs/streaming.md). Positive tests
// cover accumulate/decay/drop/version semantics; death tests prove the
// ACTOR_DCHECK contracts fire in debug builds (sanitize preset).

#include "core/online_edge_store.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/logging.h"

namespace actor {
namespace {

#define SKIP_WITHOUT_DCHECKS()                                        \
  if (!kDebugChecksEnabled) {                                         \
    GTEST_SKIP() << "ACTOR_DCHECK compiled out (release build); run " \
                    "under the sanitize preset";                      \
  }

TEST(OnlineEdgeStoreTest, AccumulateMergesDuplicatesEitherOrientation) {
  OnlineEdgeStore store;
  store.Accumulate(3, 7, 1.0);
  store.Accumulate(7, 3, 2.0);  // same undirected edge, flipped
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store.src()[0], 3);  // canonical orientation src < dst
  EXPECT_EQ(store.dst()[0], 7);
  EXPECT_DOUBLE_EQ(store.EdgeWeight(3, 7), 3.0);
  EXPECT_DOUBLE_EQ(store.EdgeWeight(7, 3), 3.0);
  EXPECT_DOUBLE_EQ(store.total_weight(), 3.0);
  EXPECT_TRUE(store.DebugCheckConsistent());
}

TEST(OnlineEdgeStoreTest, DecayScalesWeightsLazily) {
  OnlineEdgeStore store;
  store.set_min_weight(0.01);
  store.Accumulate(0, 1, 1.0);
  store.Accumulate(1, 2, 4.0);
  store.Decay(0.5);
  EXPECT_DOUBLE_EQ(store.EdgeWeight(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(store.EdgeWeight(1, 2), 2.0);
  // Lazy trick: raw weights are untouched, only the scale moved, so the
  // relative distribution (what the alias table samples) is unchanged.
  EXPECT_DOUBLE_EQ(store.raw_weights()[0], 1.0);
  EXPECT_DOUBLE_EQ(store.raw_weights()[1], 4.0);
  EXPECT_DOUBLE_EQ(store.weight_scale(), 0.5);
  EXPECT_TRUE(store.DebugCheckConsistent(/*after_decay=*/true));
}

TEST(OnlineEdgeStoreTest, PureDecayKeepsVersionStable) {
  OnlineEdgeStore store;
  store.set_min_weight(0.01);
  store.Accumulate(0, 1, 1.0);
  const uint64_t v = store.version();
  store.Decay(0.9);  // nothing drops: samplers stay valid, version holds
  EXPECT_EQ(store.version(), v);
  store.Accumulate(0, 2, 1.0);  // new edge: distribution changed
  EXPECT_GT(store.version(), v);
}

TEST(OnlineEdgeStoreTest, DecayDropsEdgesBelowMinWeightAndFixesDegrees) {
  OnlineEdgeStore store;
  store.set_min_weight(0.5);
  store.Accumulate(0, 1, 1.0);   // dies after one 0.4x decay
  store.Accumulate(1, 2, 10.0);  // survives
  const uint64_t v = store.version();
  store.Decay(0.4);
  EXPECT_GT(store.version(), v);  // drop invalidates cached samplers
  ASSERT_EQ(store.size(), 1u);
  EXPECT_DOUBLE_EQ(store.EdgeWeight(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(store.EdgeWeight(1, 2), 4.0);
  // Vertex 0 lost its only edge: its degree entry must be gone, and vertex
  // 1's degree must only count the survivor.
  EXPECT_EQ(store.raw_degrees().count(0), 0u);
  const double deg1 = store.raw_degrees().at(1) * store.weight_scale();
  EXPECT_NEAR(deg1, 4.0, 1e-12);
  EXPECT_TRUE(store.DebugCheckConsistent(/*after_decay=*/true));
}

TEST(OnlineEdgeStoreTest, SwapRemoveKeepsIndexConsistent) {
  OnlineEdgeStore store;
  store.set_min_weight(0.5);
  store.Accumulate(0, 1, 0.6);  // slot 0: drops
  store.Accumulate(2, 3, 9.0);  // slot 1: survives, moves into slot 0
  store.Accumulate(4, 5, 0.6);  // slot 2: drops
  store.Accumulate(6, 7, 9.0);  // slot 3: survives
  store.Decay(0.5);
  ASSERT_EQ(store.size(), 2u);
  EXPECT_DOUBLE_EQ(store.EdgeWeight(2, 3), 4.5);
  EXPECT_DOUBLE_EQ(store.EdgeWeight(6, 7), 4.5);
  // Accumulating into a moved edge must hit its new slot, not a stale one.
  store.Accumulate(2, 3, 1.0);
  EXPECT_DOUBLE_EQ(store.EdgeWeight(2, 3), 5.5);
  EXPECT_TRUE(store.DebugCheckConsistent());
}

TEST(OnlineEdgeStoreTest, FullDrainLeavesCleanEmptyStore) {
  OnlineEdgeStore store;
  store.set_min_weight(0.5);
  store.Accumulate(0, 1, 1.0);
  store.Accumulate(2, 3, 1.0);
  store.Decay(0.1);
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.raw_degrees().size(), 0u);
  EXPECT_DOUBLE_EQ(store.total_weight(), 0.0);
  // The drained store must accept a fresh stream.
  store.Accumulate(5, 6, 2.0);
  EXPECT_DOUBLE_EQ(store.EdgeWeight(5, 6), 2.0);
  EXPECT_TRUE(store.DebugCheckConsistent());
}

TEST(OnlineEdgeStoreTest, LongDecayStreamRenormalizesWithoutDrift) {
  OnlineEdgeStore store;
  store.set_min_weight(1e-6);
  store.Accumulate(0, 1, 1.0);
  // 0.9^400 ~ 5e-19 would underflow the lazy scale past the renorm
  // threshold several times over; refresh the edge so it never drops.
  for (int i = 0; i < 400; ++i) {
    store.Decay(0.9);
    store.Accumulate(0, 1, 1.0);
  }
  // Fixed point of w' = 0.9 w + 1 is 10; after 400 rounds we are there.
  EXPECT_NEAR(store.EdgeWeight(0, 1), 10.0, 1e-6);
  EXPECT_GE(store.weight_scale(), 1e-9);
  EXPECT_TRUE(store.DebugCheckConsistent());
}

TEST(OnlineEdgeStoreTest, DecayFactorOneIsNoOp) {
  OnlineEdgeStore store;
  store.Accumulate(0, 1, 1.0);
  const uint64_t v = store.version();
  store.Decay(1.0);
  EXPECT_EQ(store.version(), v);
  EXPECT_DOUBLE_EQ(store.EdgeWeight(0, 1), 1.0);
}

// ---------------------------------------------------------------------------
// Death tests: the DCHECK contracts guarding the streaming invariants.
// ---------------------------------------------------------------------------

TEST(OnlineEdgeStoreDeathTest, SelfLoopAccumulateDies) {
  SKIP_WITHOUT_DCHECKS();
  OnlineEdgeStore store;
  EXPECT_DEATH(store.Accumulate(4, 4, 1.0), "self-loop");
}

TEST(OnlineEdgeStoreDeathTest, NonPositiveWeightDies) {
  SKIP_WITHOUT_DCHECKS();
  OnlineEdgeStore store;
  EXPECT_DEATH(store.Accumulate(0, 1, 0.0), "non-positive edge weight");
}

TEST(OnlineEdgeStoreDeathTest, DecayFactorOutOfRangeDies) {
  SKIP_WITHOUT_DCHECKS();
  OnlineEdgeStore store;
  store.Accumulate(0, 1, 1.0);
  EXPECT_DEATH(store.Decay(0.0), "decay factor");
  EXPECT_DEATH(store.Decay(1.5), "decay factor");
}

TEST(OnlineEdgeStoreDeathTest, NonPositiveMinWeightDies) {
  SKIP_WITHOUT_DCHECKS();
  OnlineEdgeStore store;
  EXPECT_DEATH(store.set_min_weight(0.0), "min_weight");
}

}  // namespace
}  // namespace actor
