#include "embedding/skipgram.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/vec_math.h"

namespace actor {
namespace {

Heterograph PathGraph() {
  Heterograph g;
  for (int i = 0; i < 6; ++i) {
    g.AddVertex(VertexType::kWord, "w" + std::to_string(i));
  }
  for (int i = 0; i + 1 < 6; ++i) {
    EXPECT_TRUE(g.AccumulateEdge(i, i + 1).ok());
  }
  EXPECT_TRUE(g.Finalize().ok());
  return g;
}

/// Walks that alternate within {0,1,2} or within {3,4,5}.
std::vector<std::vector<VertexId>> ClusteredWalks(int n) {
  std::vector<std::vector<VertexId>> walks;
  for (int i = 0; i < n; ++i) {
    walks.push_back({0, 1, 2, 1, 0, 2});
    walks.push_back({3, 4, 5, 4, 3, 5});
  }
  return walks;
}

SkipGramOptions FastOptions() {
  SkipGramOptions o;
  o.dim = 16;
  o.window = 2;
  o.negatives = 3;
  o.epochs = 20;
  o.seed = 3;
  return o;
}

TEST(SkipGramTest, RequiresFinalizedGraph) {
  Heterograph g;
  EXPECT_TRUE(TrainSkipGramOnWalks(g, ClusteredWalks(1), FastOptions())
                  .status()
                  .IsFailedPrecondition());
}

TEST(SkipGramTest, RejectsEmptyWalks) {
  Heterograph g = PathGraph();
  EXPECT_TRUE(TrainSkipGramOnWalks(g, {}, FastOptions())
                  .status()
                  .IsInvalidArgument());
}

TEST(SkipGramTest, RejectsBadOptions) {
  Heterograph g = PathGraph();
  SkipGramOptions o = FastOptions();
  o.window = 0;
  EXPECT_TRUE(TrainSkipGramOnWalks(g, ClusteredWalks(1), o)
                  .status()
                  .IsInvalidArgument());
  o = FastOptions();
  o.epochs = 0;
  EXPECT_TRUE(TrainSkipGramOnWalks(g, ClusteredWalks(1), o)
                  .status()
                  .IsInvalidArgument());
}

TEST(SkipGramTest, OutputShapes) {
  Heterograph g = PathGraph();
  auto result = TrainSkipGramOnWalks(g, ClusteredWalks(10), FastOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->center.rows(), 6);
  EXPECT_EQ(result->center.dim(), 16);
}

TEST(SkipGramTest, CoWalkedVerticesCluster) {
  Heterograph g = PathGraph();
  auto result = TrainSkipGramOnWalks(g, ClusteredWalks(60), FastOptions());
  ASSERT_TRUE(result.ok());
  const double same =
      Cosine(result->center.row(0), result->center.row(1), 16);
  const double cross =
      Cosine(result->center.row(0), result->center.row(4), 16);
  EXPECT_GT(same, cross + 0.2);
}

TEST(SkipGramTest, PooledNegativesAlsoWork) {
  Heterograph g = PathGraph();
  SkipGramOptions o = FastOptions();
  o.typed_negatives = false;
  auto result = TrainSkipGramOnWalks(g, ClusteredWalks(60), o);
  ASSERT_TRUE(result.ok());
  const double same =
      Cosine(result->center.row(3), result->center.row(4), 16);
  const double cross =
      Cosine(result->center.row(3), result->center.row(1), 16);
  EXPECT_GT(same, cross);
}

TEST(SkipGramTest, EmbeddingsFinite) {
  Heterograph g = PathGraph();
  auto result = TrainSkipGramOnWalks(g, ClusteredWalks(20), FastOptions());
  ASSERT_TRUE(result.ok());
  for (int r = 0; r < 6; ++r) {
    for (int d = 0; d < 16; ++d) {
      EXPECT_TRUE(std::isfinite(result->center.row(r)[d]));
    }
  }
}

TEST(SkipGramTest, DeterministicForSeed) {
  Heterograph g = PathGraph();
  auto a = TrainSkipGramOnWalks(g, ClusteredWalks(5), FastOptions());
  auto b = TrainSkipGramOnWalks(g, ClusteredWalks(5), FastOptions());
  ASSERT_TRUE(a.ok() && b.ok());
  for (int r = 0; r < 6; ++r) {
    for (int d = 0; d < 16; ++d) {
      EXPECT_FLOAT_EQ(a->center.row(r)[d], b->center.row(r)[d]);
    }
  }
}

}  // namespace
}  // namespace actor
