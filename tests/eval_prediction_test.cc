#include "eval/prediction.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace actor {
namespace {

/// A corpus where record i has word {i}, timestamp i hours, location
/// (i, i) — each modality uniquely identifies the record.
TokenizedCorpus DiagonalCorpus(int n) {
  Vocabulary vocab;
  for (int i = 0; i < n; ++i) vocab.AddOccurrence("w" + std::to_string(i));
  std::vector<TokenizedRecord> records;
  for (int i = 0; i < n; ++i) {
    TokenizedRecord r;
    r.id = i;
    r.user_id = i;
    r.timestamp = i * 3600.0;
    r.location = {static_cast<double>(i), static_cast<double>(i)};
    r.word_ids = {i};
    records.push_back(std::move(r));
  }
  return TokenizedCorpus(std::move(vocab), std::move(records));
}

/// Oracle scorer: each modality value encodes its record index, so the
/// candidate matching the query's index scores highest.
class OracleModel : public CrossModalModel {
 public:
  explicit OracleModel(double sign = 1.0) : sign_(sign) {}
  std::string name() const override { return "oracle"; }
  double ScoreText(double ts, const GeoPoint&,
                   const std::vector<int32_t>& words) const override {
    return sign_ * -std::fabs(words[0] * 3600.0 - ts);
  }
  double ScoreLocation(double ts, const std::vector<int32_t>&,
                       const GeoPoint& cand) const override {
    return sign_ * -std::fabs(cand.x * 3600.0 - ts);
  }
  double ScoreTime(const GeoPoint& loc, const std::vector<int32_t>&,
                   double cand_ts) const override {
    return sign_ * -std::fabs(loc.x * 3600.0 - cand_ts);
  }

 private:
  double sign_;
};

/// Scores every candidate identically.
class ConstantModel : public CrossModalModel {
 public:
  std::string name() const override { return "constant"; }
  double ScoreText(double, const GeoPoint&,
                   const std::vector<int32_t>&) const override {
    return 0.5;
  }
  double ScoreLocation(double, const std::vector<int32_t>&,
                       const GeoPoint&) const override {
    return 0.5;
  }
  double ScoreTime(const GeoPoint&, const std::vector<int32_t>&,
                   double) const override {
    return 0.5;
  }
};

class NoTimeModel : public ConstantModel {
 public:
  bool supports_time() const override { return false; }
};

TEST(EvaluateTaskTest, OracleGetsPerfectMrr) {
  const TokenizedCorpus corpus = DiagonalCorpus(30);
  OracleModel model;
  for (PredictionTask task : {PredictionTask::kText, PredictionTask::kLocation,
                              PredictionTask::kTime}) {
    auto mrr = EvaluateTask(model, corpus, task);
    ASSERT_TRUE(mrr.ok());
    EXPECT_DOUBLE_EQ(*mrr, 1.0) << PredictionTaskName(task);
  }
}

TEST(EvaluateTaskTest, InvertedOracleRanksLast) {
  const TokenizedCorpus corpus = DiagonalCorpus(30);
  OracleModel model(-1.0);
  auto mrr = EvaluateTask(model, corpus, PredictionTask::kText);
  ASSERT_TRUE(mrr.ok());
  EXPECT_DOUBLE_EQ(*mrr, 1.0 / 11.0);
}

TEST(EvaluateTaskTest, ConstantModelRanksLastDueToTies) {
  const TokenizedCorpus corpus = DiagonalCorpus(30);
  ConstantModel model;
  auto mrr = EvaluateTask(model, corpus, PredictionTask::kLocation);
  ASSERT_TRUE(mrr.ok());
  EXPECT_DOUBLE_EQ(*mrr, 1.0 / 11.0);
}

TEST(EvaluateTaskTest, UnsupportedTimeIsNaN) {
  const TokenizedCorpus corpus = DiagonalCorpus(30);
  NoTimeModel model;
  auto mrr = EvaluateTask(model, corpus, PredictionTask::kTime);
  ASSERT_TRUE(mrr.ok());
  EXPECT_TRUE(std::isnan(*mrr));
}

TEST(EvaluateTaskTest, TooSmallCorpusIsError) {
  const TokenizedCorpus corpus = DiagonalCorpus(5);
  OracleModel model;
  EvalOptions options;  // needs 11 candidates
  EXPECT_TRUE(EvaluateTask(model, corpus, PredictionTask::kText, options)
                  .status()
                  .IsInvalidArgument());
}

TEST(EvaluateTaskTest, MaxQueriesLimitsWork) {
  const TokenizedCorpus corpus = DiagonalCorpus(30);
  OracleModel model;
  EvalOptions options;
  options.max_queries = 3;
  auto mrr = EvaluateTask(model, corpus, PredictionTask::kText, options);
  ASSERT_TRUE(mrr.ok());
  EXPECT_DOUBLE_EQ(*mrr, 1.0);
}

TEST(EvaluateTaskTest, FewerNoiseCandidates) {
  const TokenizedCorpus corpus = DiagonalCorpus(10);
  OracleModel model(-1.0);
  EvalOptions options;
  options.num_noise = 4;
  auto mrr = EvaluateTask(model, corpus, PredictionTask::kText, options);
  ASSERT_TRUE(mrr.ok());
  EXPECT_DOUBLE_EQ(*mrr, 1.0 / 5.0);
}

TEST(EvaluateCrossModalTest, RunsAllThreeTasks) {
  const TokenizedCorpus corpus = DiagonalCorpus(30);
  OracleModel model;
  auto scores = EvaluateCrossModal(model, corpus);
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ(scores->text, 1.0);
  EXPECT_DOUBLE_EQ(scores->location, 1.0);
  EXPECT_DOUBLE_EQ(scores->time, 1.0);
}

TEST(EvaluateCrossModalTest, NoTimeModelGetsNaNTime) {
  const TokenizedCorpus corpus = DiagonalCorpus(30);
  NoTimeModel model;
  auto scores = EvaluateCrossModal(model, corpus);
  ASSERT_TRUE(scores.ok());
  EXPECT_TRUE(std::isnan(scores->time));
  EXPECT_FALSE(std::isnan(scores->text));
}

TEST(CaseStudyTest, TruthAppearsExactlyOnce) {
  const TokenizedCorpus corpus = DiagonalCorpus(30);
  OracleModel model;
  auto ranking = CaseStudyRanking(model, corpus, 4, PredictionTask::kText);
  ASSERT_TRUE(ranking.ok());
  EXPECT_EQ(ranking->size(), 11u);
  int truth_count = 0;
  for (const auto& c : *ranking) truth_count += c.is_truth ? 1 : 0;
  EXPECT_EQ(truth_count, 1);
}

TEST(CaseStudyTest, OracleRanksTruthFirst) {
  const TokenizedCorpus corpus = DiagonalCorpus(30);
  OracleModel model;
  auto ranking = CaseStudyRanking(model, corpus, 7, PredictionTask::kTime);
  ASSERT_TRUE(ranking.ok());
  EXPECT_TRUE((*ranking)[0].is_truth);
  EXPECT_EQ((*ranking)[0].rank, 1);
}

TEST(CaseStudyTest, RanksAreContiguous) {
  const TokenizedCorpus corpus = DiagonalCorpus(30);
  ConstantModel model;
  auto ranking =
      CaseStudyRanking(model, corpus, 2, PredictionTask::kLocation);
  ASSERT_TRUE(ranking.ok());
  for (std::size_t i = 0; i < ranking->size(); ++i) {
    EXPECT_EQ((*ranking)[i].rank, static_cast<int>(i) + 1);
  }
}

TEST(CaseStudyTest, SameCandidatesAcrossModels) {
  const TokenizedCorpus corpus = DiagonalCorpus(30);
  OracleModel oracle;
  ConstantModel constant;
  auto a = CaseStudyRanking(oracle, corpus, 9, PredictionTask::kText);
  auto b = CaseStudyRanking(constant, corpus, 9, PredictionTask::kText);
  ASSERT_TRUE(a.ok() && b.ok());
  std::multiset<std::string> labels_a, labels_b;
  for (const auto& c : *a) labels_a.insert(c.label);
  for (const auto& c : *b) labels_b.insert(c.label);
  EXPECT_EQ(labels_a, labels_b);
}

TEST(CaseStudyTest, OutOfRangeQueryRejected) {
  const TokenizedCorpus corpus = DiagonalCorpus(30);
  OracleModel model;
  EXPECT_TRUE(CaseStudyRanking(model, corpus, 99, PredictionTask::kText)
                  .status()
                  .IsOutOfRange());
}

TEST(CaseStudyTest, LabelsRenderModality) {
  const TokenizedCorpus corpus = DiagonalCorpus(30);
  OracleModel model;
  auto text = CaseStudyRanking(model, corpus, 3, PredictionTask::kText);
  ASSERT_TRUE(text.ok());
  // Truth label for record 3 is its word.
  for (const auto& c : *text) {
    if (c.is_truth) {
      EXPECT_EQ(c.label, "w3");
    }
  }
  auto time = CaseStudyRanking(model, corpus, 3, PredictionTask::kTime);
  ASSERT_TRUE(time.ok());
  for (const auto& c : *time) {
    if (c.is_truth) {
      EXPECT_EQ(c.label, "day 0, 03:00");
    }
  }
}

TEST(PredictionTaskTest, Names) {
  EXPECT_STREQ(PredictionTaskName(PredictionTask::kText), "Text");
  EXPECT_STREQ(PredictionTaskName(PredictionTask::kLocation), "Location");
  EXPECT_STREQ(PredictionTaskName(PredictionTask::kTime), "Time");
}

}  // namespace
}  // namespace actor
