#include "hotspot/hotspot_detector.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "util/rng.h"

namespace actor {
namespace {

TEST(SpatialHotspotsTest, AssignNearest) {
  SpatialHotspots hotspots({{0, 0}, {10, 10}, {20, 0}});
  EXPECT_EQ(hotspots.Assign({1, 1}), 0);
  EXPECT_EQ(hotspots.Assign({9, 11}), 1);
  EXPECT_EQ(hotspots.Assign({19, -1}), 2);
  EXPECT_EQ(hotspots.size(), 3u);
}

TEST(SpatialHotspotsTest, AssignEmptyIsMinusOne) {
  SpatialHotspots hotspots({});
  EXPECT_EQ(hotspots.Assign({0, 0}), -1);
}

TEST(TemporalHotspotsTest, AssignCircularNearest) {
  TemporalHotspots hotspots({1.0, 12.0, 23.0});
  EXPECT_EQ(hotspots.AssignHour(0.5), 0);
  EXPECT_EQ(hotspots.AssignHour(11.0), 1);
  // 23.9 is circularly nearer to 23.0 than to 1.0.
  EXPECT_EQ(hotspots.AssignHour(23.9), 2);
  // 0.1 is 0.9 from 1.0 and 1.1 from 23.0 -> hotspot 0.
  EXPECT_EQ(hotspots.AssignHour(0.1), 0);
}

TEST(TemporalHotspotsTest, AssignFromTimestamp) {
  TemporalHotspots hotspots({6.0, 18.0});
  // Day 3 at 05:30.
  EXPECT_EQ(hotspots.Assign(3 * kSecondsPerDay + 5.5 * 3600.0), 0);
  EXPECT_EQ(hotspots.Assign(19.0 * 3600.0), 1);
}

TEST(TemporalHotspotsTest, AssignEmptyIsMinusOne) {
  TemporalHotspots hotspots({});
  EXPECT_EQ(hotspots.Assign(0.0), -1);
}

TEST(DetectHotspotsTest, FindsVenueAndTimeStructure) {
  SyntheticConfig config;
  config.seed = 99;
  config.num_records = 3000;
  config.num_users = 100;
  config.num_communities = 4;
  config.num_topics = 4;
  config.num_venues = 8;
  config.community_spread_km = 3.0;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  CorpusBuildOptions build;
  build.min_word_count = 1;
  auto corpus = TokenizedCorpus::Build(ds->corpus, build);
  ASSERT_TRUE(corpus.ok());

  auto hotspots = DetectHotspots(*corpus);
  ASSERT_TRUE(hotspots.ok()) << hotspots.status().ToString();
  // Spatial hotspots should be on the order of the venue count (some
  // venues merge when close together).
  EXPECT_GE(hotspots->spatial.size(), 2u);
  EXPECT_LE(hotspots->spatial.size(), 40u);
  // Temporal hotspots on the order of the topic count.
  EXPECT_GE(hotspots->temporal.size(), 1u);
  EXPECT_LE(hotspots->temporal.size(), 24u);

  // Every record must be assignable.
  for (const auto& rec : corpus->records()) {
    EXPECT_GE(hotspots->spatial.Assign(rec.location), 0);
    EXPECT_GE(hotspots->temporal.Assign(rec.timestamp), 0);
  }
}

TEST(DetectHotspotsTest, HotspotNearEachBusyVenue) {
  SyntheticConfig config;
  config.seed = 7;
  config.num_records = 4000;
  config.num_users = 50;
  config.num_communities = 3;
  config.num_topics = 3;
  config.num_venues = 5;
  config.community_spread_km = 8.0;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  CorpusBuildOptions build;
  build.min_word_count = 1;
  auto corpus = TokenizedCorpus::Build(ds->corpus, build);
  ASSERT_TRUE(corpus.ok());
  auto hotspots = DetectHotspots(*corpus);
  ASSERT_TRUE(hotspots.ok());

  // Count records per venue; every venue with >5% of the records should
  // have a hotspot within ~1 km.
  std::vector<int> venue_counts(config.num_venues, 0);
  for (int v : ds->truth.record_venues) ++venue_counts[v];
  for (int v = 0; v < config.num_venues; ++v) {
    if (venue_counts[v] < static_cast<int>(0.05 * ds->corpus.size())) continue;
    const GeoPoint& loc = ds->truth.venue_locations[v];
    double best = 1e9;
    for (const auto& c : hotspots->spatial.centers()) {
      best = std::min(best, Distance(c, loc));
    }
    EXPECT_LT(best, 1.5) << "venue " << v;
  }
}

TEST(DetectHotspotsTest, DeterministicAcrossRuns) {
  SyntheticConfig config;
  config.num_records = 800;
  config.num_users = 40;
  config.num_venues = 6;
  config.num_topics = 3;
  config.num_communities = 3;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  CorpusBuildOptions build;
  build.min_word_count = 1;
  auto corpus = TokenizedCorpus::Build(ds->corpus, build);
  ASSERT_TRUE(corpus.ok());
  auto a = DetectHotspots(*corpus);
  auto b = DetectHotspots(*corpus);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->spatial.size(), b->spatial.size());
  ASSERT_EQ(a->temporal.size(), b->temporal.size());
  for (std::size_t i = 0; i < a->spatial.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->spatial.center(i).x, b->spatial.center(i).x);
  }
}

}  // namespace
}  // namespace actor
