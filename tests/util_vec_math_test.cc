#include "util/vec_math.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace actor {
namespace {

/// Distance in representable floats between a and b (0 = bit-identical).
int64_t UlpDiff(float a, float b) {
  if (a == b) return 0;
  if (std::isnan(a) || std::isnan(b)) return INT64_MAX;
  auto to_ordered = [](float f) -> int64_t {
    const int32_t bits = std::bit_cast<int32_t>(f);
    return bits >= 0 ? bits : INT32_MIN - static_cast<int64_t>(bits);
  };
  const int64_t d = to_ordered(a) - to_ordered(b);
  return d >= 0 ? d : -d;
}

TEST(VecMathTest, DotBasic) {
  const float x[] = {1.0f, 2.0f, 3.0f};
  const float y[] = {4.0f, -5.0f, 6.0f};
  EXPECT_FLOAT_EQ(Dot(x, y, 3), 4.0f - 10.0f + 18.0f);
}

TEST(VecMathTest, DotEmpty) {
  EXPECT_FLOAT_EQ(Dot(nullptr, nullptr, 0), 0.0f);
}

TEST(VecMathTest, AxpyAccumulates) {
  const float x[] = {1.0f, 2.0f};
  float y[] = {10.0f, 20.0f};
  Axpy(2.0f, x, y, 2);
  EXPECT_FLOAT_EQ(y[0], 12.0f);
  EXPECT_FLOAT_EQ(y[1], 24.0f);
}

TEST(VecMathTest, ScaleMultiplies) {
  float x[] = {2.0f, -4.0f};
  Scale(0.5f, x, 2);
  EXPECT_FLOAT_EQ(x[0], 1.0f);
  EXPECT_FLOAT_EQ(x[1], -2.0f);
}

TEST(VecMathTest, CopyAndAddAndZero) {
  const float x[] = {1.0f, 2.0f, 3.0f};
  float out[3];
  Copy(x, out, 3);
  EXPECT_FLOAT_EQ(out[1], 2.0f);
  Add(x, out, 3);
  EXPECT_FLOAT_EQ(out[2], 6.0f);
  Zero(out, 3);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
}

TEST(VecMathTest, Norm2) {
  const float x[] = {3.0f, 4.0f};
  EXPECT_FLOAT_EQ(Norm2(x, 2), 5.0f);
}

TEST(VecMathTest, NormalizeMakesUnit) {
  float x[] = {3.0f, 4.0f};
  NormalizeInPlace(x, 2);
  EXPECT_NEAR(Norm2(x, 2), 1.0f, 1e-6f);
  EXPECT_NEAR(x[0], 0.6f, 1e-6f);
}

TEST(VecMathTest, NormalizeZeroVectorUnchanged) {
  float x[] = {0.0f, 0.0f};
  NormalizeInPlace(x, 2);
  EXPECT_FLOAT_EQ(x[0], 0.0f);
}

TEST(VecMathTest, CosineParallel) {
  const float x[] = {1.0f, 1.0f};
  const float y[] = {2.0f, 2.0f};
  EXPECT_NEAR(Cosine(x, y, 2), 1.0f, 1e-6f);
}

TEST(VecMathTest, CosineOrthogonal) {
  const float x[] = {1.0f, 0.0f};
  const float y[] = {0.0f, 1.0f};
  EXPECT_NEAR(Cosine(x, y, 2), 0.0f, 1e-6f);
}

TEST(VecMathTest, CosineOpposite) {
  const float x[] = {1.0f, 0.0f};
  const float y[] = {-3.0f, 0.0f};
  EXPECT_NEAR(Cosine(x, y, 2), -1.0f, 1e-6f);
}

TEST(VecMathTest, CosineZeroVectorIsZero) {
  const float x[] = {0.0f, 0.0f};
  const float y[] = {1.0f, 2.0f};
  EXPECT_FLOAT_EQ(Cosine(x, y, 2), 0.0f);
}

TEST(VecMathTest, SigmoidKnownValues) {
  EXPECT_NEAR(Sigmoid(0.0f), 0.5f, 1e-6f);
  EXPECT_NEAR(Sigmoid(100.0f), 1.0f, 1e-6f);
  EXPECT_NEAR(Sigmoid(-100.0f), 0.0f, 1e-6f);
  EXPECT_NEAR(Sigmoid(1.0f), 0.7310586f, 1e-5f);
}

TEST(VecMathTest, SigmoidSymmetry) {
  for (float x = -5.0f; x <= 5.0f; x += 0.37f) {
    EXPECT_NEAR(Sigmoid(x) + Sigmoid(-x), 1.0f, 1e-5f);
  }
}

class SigmoidTableSweep : public ::testing::TestWithParam<float> {};

TEST_P(SigmoidTableSweep, MatchesExactSigmoid) {
  static const SigmoidTable table;
  const float x = GetParam();
  // The table clamps outside [-8, 8], so allow the clamp error sigma(8)~1.
  EXPECT_NEAR(table(x), Sigmoid(x), 4e-4f) << "x=" << x;
}

INSTANTIATE_TEST_SUITE_P(Points, SigmoidTableSweep,
                         ::testing::Values(-10.0f, -8.0f, -7.99f, -4.2f,
                                           -1.0f, -0.01f, 0.0f, 0.01f, 0.5f,
                                           1.0f, 2.7f, 6.3f, 7.99f, 8.0f,
                                           10.0f));

TEST(SigmoidTableTest, SaturatesOutsideBound) {
  SigmoidTable table;
  EXPECT_FLOAT_EQ(table(100.0f), 1.0f);
  EXPECT_FLOAT_EQ(table(-100.0f), 0.0f);
}

TEST(SigmoidTableTest, MonotoneNonDecreasing) {
  SigmoidTable table;
  float prev = table(-9.0f);
  for (float x = -9.0f; x <= 9.0f; x += 0.05f) {
    const float cur = table(x);
    EXPECT_GE(cur, prev - 1e-6f);
    prev = cur;
  }
}

class VecSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VecSizeSweep, DotMatchesReference) {
  const std::size_t n = GetParam();
  Rng rng(n + 1);
  std::vector<float> x(n), y(n);
  double ref = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.UniformFloat() - 0.5f;
    y[i] = rng.UniformFloat() - 0.5f;
    ref += static_cast<double>(x[i]) * y[i];
  }
  EXPECT_NEAR(Dot(x.data(), y.data(), n), static_cast<float>(ref),
              1e-4f * (n + 1));
}

TEST_P(VecSizeSweep, CosineBounded) {
  const std::size_t n = GetParam();
  if (n == 0) return;
  Rng rng(n + 7);
  std::vector<float> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.UniformFloat() - 0.5f;
    y[i] = rng.UniformFloat() - 0.5f;
  }
  const float c = Cosine(x.data(), y.data(), n);
  EXPECT_GE(c, -1.0f - 1e-5f);
  EXPECT_LE(c, 1.0f + 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(Sizes, VecSizeSweep,
                         ::testing::Values(0u, 1u, 2u, 3u, 7u, 16u, 31u, 64u,
                                           128u, 300u));

TEST(VecBackendTest, SetBackendRoundTrip) {
  const VecBackend original = ActiveVecBackend();
  EXPECT_EQ(SetVecBackend(VecBackend::kScalar), VecBackend::kScalar);
  EXPECT_EQ(ActiveVecBackend(), VecBackend::kScalar);
  const VecBackend applied = SetVecBackend(VecBackend::kAvx2);
  if (Avx2Available()) {
    EXPECT_EQ(applied, VecBackend::kAvx2);
  } else {
    EXPECT_EQ(applied, VecBackend::kScalar);
  }
  SetVecBackend(original);
}

TEST(VecBackendTest, DefaultIsBestAvailable) {
  // The static initializer installs AVX2 kernels when the CPU has them.
  if (Avx2Available()) {
    EXPECT_EQ(ActiveVecBackend(), VecBackend::kAvx2);
  } else {
    EXPECT_EQ(ActiveVecBackend(), VecBackend::kScalar);
  }
}

TEST(VecBackendTest, BackendNames) {
  EXPECT_STREQ(VecBackendName(VecBackend::kScalar), "scalar");
  EXPECT_STREQ(VecBackendName(VecBackend::kAvx2), "avx2");
}

TEST(ScalarKernelTest, FusedGradStepMatchesTwoAxpys) {
  // The fused kernel is defined as Axpy(g, ctx, grad) then
  // Axpy(g, center, ctx); the scalar version must match bit-for-bit...
  // up to FMA contraction the compiler may apply to either loop, so
  // compare within 1 ulp.
  const std::size_t n = 37;
  Rng rng(99);
  std::vector<float> center(n), ctx(n), ctx2(n), grad(n), grad2(n);
  for (std::size_t i = 0; i < n; ++i) {
    center[i] = rng.UniformFloat() - 0.5f;
    ctx[i] = ctx2[i] = rng.UniformFloat() - 0.5f;
    grad[i] = grad2[i] = rng.UniformFloat() - 0.5f;
  }
  const float g = 0.37f;
  scalar::FusedGradStep(g, center.data(), ctx.data(), grad.data(), n);
  scalar::Axpy(g, ctx2.data(), grad2.data(), n);
  scalar::Axpy(g, center.data(), ctx2.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LE(UlpDiff(ctx[i], ctx2[i]), 1) << "i=" << i;
    EXPECT_LE(UlpDiff(grad[i], grad2[i]), 1) << "i=" << i;
  }
}

/// SIMD/scalar kernel parity across every dim in 1..257, covering all
/// vector-width tail cases (non-multiple-of-8/16 lengths). Elementwise
/// kernels must agree within 1 ulp (FMA rounds differently from
/// mul-then-add); reductions (Dot/Norm2) reassociate, so both backends are
/// compared against a double-precision reference instead.
class KernelParity : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!Avx2Available()) {
      GTEST_SKIP() << "no AVX2 on this machine; nothing to compare";
    }
  }
  void TearDown() override { SetVecBackend(VecBackend::kAvx2); }

  static std::vector<float> RandomVec(std::size_t n, uint64_t seed) {
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto& x : v) x = rng.UniformFloat() - 0.5f;
    return v;
  }
};

TEST_F(KernelParity, DotMatchesDoubleReference) {
  for (std::size_t n = 1; n <= 257; ++n) {
    const auto x = RandomVec(n, 2 * n);
    const auto y = RandomVec(n, 2 * n + 1);
    double ref = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      ref += static_cast<double>(x[i]) * y[i];
    }
    const float tol = 1e-5f + 1e-6f * static_cast<float>(n);
    SetVecBackend(VecBackend::kAvx2);
    EXPECT_NEAR(Dot(x.data(), y.data(), n), ref, tol) << "n=" << n;
    SetVecBackend(VecBackend::kScalar);
    EXPECT_NEAR(Dot(x.data(), y.data(), n), ref, tol) << "n=" << n;
  }
}

TEST_F(KernelParity, DotAndNorm2MatchesSeparateDotsBitExactly) {
  // The serving contract (docs/serving.md): each fused chain runs the
  // exact reduction order of the corresponding separate Dot() call on the
  // same backend, so cosine scores computed through DotAndNorm2 are
  // bit-identical to the pre-fusion Cosine() path.
  for (std::size_t n = 1; n <= 257; ++n) {
    const auto x = RandomVec(n, 7 * n);
    const auto y = RandomVec(n, 7 * n + 1);
    for (VecBackend backend : {VecBackend::kAvx2, VecBackend::kScalar}) {
      SetVecBackend(backend);
      float dot = -1.0f, norm2 = -1.0f;
      DotAndNorm2(x.data(), y.data(), n, &dot, &norm2);
      ASSERT_EQ(dot, Dot(x.data(), y.data(), n))
          << VecBackendName(backend) << " n=" << n;
      ASSERT_EQ(norm2, Dot(y.data(), y.data(), n))
          << VecBackendName(backend) << " n=" << n;
    }
  }
}

TEST_F(KernelParity, DotAndNorm2BatchMatchesSequentialBitExactly) {
  // QueryBatch's determinism contract: every per-query chain of the
  // blocked kernel runs the stand-alone Dot()'s reduction order on the
  // same backend, and the shared y_norm2 chain matches DotAndNorm2's.
  // Batch widths cover the register-block boundaries of both backends
  // (pairs in AVX2, quads in scalar) plus their remainders.
  for (std::size_t n : {1u, 2u, 7u, 8u, 15u, 16u, 17u, 31u, 33u, 64u, 100u,
                        257u}) {
    for (std::size_t b : {0u, 1u, 2u, 3u, 4u, 5u, 8u, 17u}) {
      std::vector<std::vector<float>> qs(b);
      std::vector<const float*> qptrs(b);
      for (std::size_t j = 0; j < b; ++j) {
        qs[j] = RandomVec(n, 1000 * n + j);
        qptrs[j] = qs[j].data();
      }
      const auto y = RandomVec(n, 999 * n + 123);
      for (VecBackend backend : {VecBackend::kAvx2, VecBackend::kScalar}) {
        SetVecBackend(backend);
        std::vector<float> dots(b, -1.0f);
        float norm2 = -1.0f;
        DotAndNorm2Batch(qptrs.data(), b, y.data(), n, dots.data(), &norm2);
        ASSERT_EQ(norm2, Dot(y.data(), y.data(), n))
            << VecBackendName(backend) << " n=" << n << " b=" << b;
        for (std::size_t j = 0; j < b; ++j) {
          float sdot = -2.0f;
          float snorm2 = -2.0f;
          DotAndNorm2(qptrs[j], y.data(), n, &sdot, &snorm2);
          ASSERT_EQ(dots[j], sdot)
              << VecBackendName(backend) << " n=" << n << " b=" << b
              << " j=" << j;
          ASSERT_EQ(dots[j], Dot(qptrs[j], y.data(), n))
              << VecBackendName(backend) << " n=" << n << " b=" << b
              << " j=" << j;
        }
      }
    }
  }
}

TEST_F(KernelParity, DotAndNorm2MatchesDoubleReference) {
  for (std::size_t n = 1; n <= 257; ++n) {
    const auto x = RandomVec(n, 11 * n);
    const auto y = RandomVec(n, 11 * n + 1);
    double ref_dot = 0.0, ref_norm2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      ref_dot += static_cast<double>(x[i]) * y[i];
      ref_norm2 += static_cast<double>(y[i]) * y[i];
    }
    const float tol = 1e-5f + 1e-6f * static_cast<float>(n);
    for (VecBackend backend : {VecBackend::kAvx2, VecBackend::kScalar}) {
      SetVecBackend(backend);
      float dot = 0.0f, norm2 = 0.0f;
      DotAndNorm2(x.data(), y.data(), n, &dot, &norm2);
      EXPECT_NEAR(dot, ref_dot, tol) << "n=" << n;
      EXPECT_NEAR(norm2, ref_norm2, tol) << "n=" << n;
    }
  }
}

TEST_F(KernelParity, AxpyWithin1Ulp) {
  for (std::size_t n = 1; n <= 257; ++n) {
    const auto x = RandomVec(n, 3 * n);
    auto y_simd = RandomVec(n, 3 * n + 1);
    auto y_ref = y_simd;
    SetVecBackend(VecBackend::kAvx2);
    Axpy(0.25f, x.data(), y_simd.data(), n);
    scalar::Axpy(0.25f, x.data(), y_ref.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_LE(UlpDiff(y_simd[i], y_ref[i]), 1) << "n=" << n << " i=" << i;
    }
  }
}

TEST_F(KernelParity, AddExact) {
  for (std::size_t n = 1; n <= 257; ++n) {
    const auto x = RandomVec(n, 5 * n);
    auto out_simd = RandomVec(n, 5 * n + 1);
    auto out_ref = out_simd;
    SetVecBackend(VecBackend::kAvx2);
    Add(x.data(), out_simd.data(), n);
    scalar::Add(x.data(), out_ref.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out_simd[i], out_ref[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST_F(KernelParity, ScaleExact) {
  for (std::size_t n = 1; n <= 257; ++n) {
    auto x_simd = RandomVec(n, 7 * n);
    auto x_ref = x_simd;
    SetVecBackend(VecBackend::kAvx2);
    Scale(0.815f, x_simd.data(), n);
    scalar::Scale(0.815f, x_ref.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(x_simd[i], x_ref[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST_F(KernelParity, Norm2Close) {
  for (std::size_t n = 1; n <= 257; ++n) {
    const auto x = RandomVec(n, 11 * n);
    SetVecBackend(VecBackend::kAvx2);
    const float simd = Norm2(x.data(), n);
    const float ref = scalar::Norm2(x.data(), n);
    EXPECT_NEAR(simd, ref, 1e-5f + 1e-6f * static_cast<float>(n))
        << "n=" << n;
  }
}

/// The relaxed (TSan-annotated) kernels mirror the scalar loops statement
/// for statement, so outside FMA-contraction wiggle they must agree with
/// scalar:: within 1 ulp — this is the guarantee that the TSan build
/// trains the same model the release build does.
TEST(RelaxedKernelParity, ElementwiseMatchesScalarWithin1Ulp) {
  Rng seed_rng(41);
  for (std::size_t n = 1; n <= 257; n += 3) {
    Rng rng(seed_rng.Next());
    std::vector<float> x(n), base(n), grad(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = rng.UniformFloat() - 0.5f;
      base[i] = rng.UniformFloat() - 0.5f;
      grad[i] = rng.UniformFloat() - 0.5f;
    }
    auto y_rel = base, y_ref = base;
    relaxed::Axpy(0.25f, x.data(), y_rel.data(), n);
    scalar::Axpy(0.25f, x.data(), y_ref.data(), n);
    auto add_rel = base, add_ref = base;
    relaxed::Add(x.data(), add_rel.data(), n);
    scalar::Add(x.data(), add_ref.data(), n);
    auto s_rel = base, s_ref = base;
    relaxed::Scale(0.815f, s_rel.data(), n);
    scalar::Scale(0.815f, s_ref.data(), n);
    auto ctx_rel = base, ctx_ref = base;
    auto grad_rel = grad, grad_ref = grad;
    relaxed::FusedGradStep(-0.125f, x.data(), ctx_rel.data(),
                           grad_rel.data(), n);
    scalar::FusedGradStep(-0.125f, x.data(), ctx_ref.data(),
                          grad_ref.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_LE(UlpDiff(y_rel[i], y_ref[i]), 1) << "axpy n=" << n;
      ASSERT_EQ(add_rel[i], add_ref[i]) << "add n=" << n;
      ASSERT_EQ(s_rel[i], s_ref[i]) << "scale n=" << n;
      ASSERT_LE(UlpDiff(ctx_rel[i], ctx_ref[i]), 1) << "fused ctx n=" << n;
      ASSERT_LE(UlpDiff(grad_rel[i], grad_ref[i]), 1) << "fused grad n=" << n;
    }
  }
}

TEST(RelaxedKernelParity, DotMatchesDoubleReference) {
  for (std::size_t n = 1; n <= 257; n += 3) {
    Rng rng(17 * n);
    std::vector<float> x(n), y(n);
    double ref = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = rng.UniformFloat() - 0.5f;
      y[i] = rng.UniformFloat() - 0.5f;
      ref += static_cast<double>(x[i]) * y[i];
    }
    const float tol = 1e-5f + 1e-6f * static_cast<float>(n);
    EXPECT_NEAR(relaxed::Dot(x.data(), y.data(), n), ref, tol) << "n=" << n;
    EXPECT_NEAR(relaxed::Norm2(x.data(), n),
                std::sqrt(relaxed::Dot(x.data(), x.data(), n)), 0.0f);
  }
}

TEST(RelaxedKernelParity, DotAndNorm2BatchMatchesSequentialBitExactly) {
  for (std::size_t n = 1; n <= 257; n += 13) {
    for (std::size_t b : {1u, 3u, 4u, 9u}) {
      Rng rng(23 * n + b);
      std::vector<std::vector<float>> qs(b);
      std::vector<const float*> qptrs(b);
      for (std::size_t j = 0; j < b; ++j) {
        qs[j].resize(n);
        for (auto& v : qs[j]) v = rng.UniformFloat() - 0.5f;
        qptrs[j] = qs[j].data();
      }
      std::vector<float> y(n);
      for (auto& v : y) v = rng.UniformFloat() - 0.5f;
      std::vector<float> dots(b, -1.0f);
      float norm2 = -1.0f;
      relaxed::DotAndNorm2Batch(qptrs.data(), b, y.data(), n, dots.data(),
                                &norm2);
      ASSERT_EQ(norm2, relaxed::Dot(y.data(), y.data(), n))
          << "n=" << n << " b=" << b;
      for (std::size_t j = 0; j < b; ++j) {
        float sdot = -2.0f;
        float snorm2 = -2.0f;
        relaxed::DotAndNorm2(qptrs[j], y.data(), n, &sdot, &snorm2);
        ASSERT_EQ(dots[j], sdot) << "n=" << n << " b=" << b << " j=" << j;
      }
    }
  }
}

#if !defined(ACTOR_TSAN)
/// Release-build guarantee behind the "zero throughput regression" claim:
/// the relaxed accessors only change dispatch in ACTOR_TSAN builds, so a
/// normal build must still install the AVX2 kernels by default.
TEST(RelaxedKernelParity, ReleaseDispatchStillPrefersSimd) {
  const VecBackend active = ActiveVecBackend();
  EXPECT_EQ(active, Avx2Available() ? VecBackend::kAvx2
                                    : VecBackend::kScalar);
  EXPECT_EQ(SetVecBackend(VecBackend::kRelaxed), VecBackend::kRelaxed);
  const float x[] = {1.0f, 2.0f, 3.0f};
  const float y[] = {4.0f, -5.0f, 6.0f};
  EXPECT_FLOAT_EQ(Dot(x, y, 3), 12.0f);  // dispatches through relaxed::Dot
  SetVecBackend(VecBackend::kAvx2);  // restore the default for other tests
}
#endif

TEST_F(KernelParity, FusedGradStepWithin1Ulp) {
  for (std::size_t n = 1; n <= 257; ++n) {
    const auto center = RandomVec(n, 13 * n);
    auto ctx_simd = RandomVec(n, 13 * n + 1);
    auto ctx_ref = ctx_simd;
    auto grad_simd = RandomVec(n, 13 * n + 2);
    auto grad_ref = grad_simd;
    SetVecBackend(VecBackend::kAvx2);
    FusedGradStep(-0.125f, center.data(), ctx_simd.data(), grad_simd.data(),
                  n);
    scalar::FusedGradStep(-0.125f, center.data(), ctx_ref.data(),
                          grad_ref.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_LE(UlpDiff(ctx_simd[i], ctx_ref[i]), 1)
          << "n=" << n << " i=" << i;
      ASSERT_LE(UlpDiff(grad_simd[i], grad_ref[i]), 1)
          << "n=" << n << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace actor
