#include "util/vec_math.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace actor {
namespace {

TEST(VecMathTest, DotBasic) {
  const float x[] = {1.0f, 2.0f, 3.0f};
  const float y[] = {4.0f, -5.0f, 6.0f};
  EXPECT_FLOAT_EQ(Dot(x, y, 3), 4.0f - 10.0f + 18.0f);
}

TEST(VecMathTest, DotEmpty) {
  EXPECT_FLOAT_EQ(Dot(nullptr, nullptr, 0), 0.0f);
}

TEST(VecMathTest, AxpyAccumulates) {
  const float x[] = {1.0f, 2.0f};
  float y[] = {10.0f, 20.0f};
  Axpy(2.0f, x, y, 2);
  EXPECT_FLOAT_EQ(y[0], 12.0f);
  EXPECT_FLOAT_EQ(y[1], 24.0f);
}

TEST(VecMathTest, ScaleMultiplies) {
  float x[] = {2.0f, -4.0f};
  Scale(0.5f, x, 2);
  EXPECT_FLOAT_EQ(x[0], 1.0f);
  EXPECT_FLOAT_EQ(x[1], -2.0f);
}

TEST(VecMathTest, CopyAndAddAndZero) {
  const float x[] = {1.0f, 2.0f, 3.0f};
  float out[3];
  Copy(x, out, 3);
  EXPECT_FLOAT_EQ(out[1], 2.0f);
  Add(x, out, 3);
  EXPECT_FLOAT_EQ(out[2], 6.0f);
  Zero(out, 3);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
}

TEST(VecMathTest, Norm2) {
  const float x[] = {3.0f, 4.0f};
  EXPECT_FLOAT_EQ(Norm2(x, 2), 5.0f);
}

TEST(VecMathTest, NormalizeMakesUnit) {
  float x[] = {3.0f, 4.0f};
  NormalizeInPlace(x, 2);
  EXPECT_NEAR(Norm2(x, 2), 1.0f, 1e-6f);
  EXPECT_NEAR(x[0], 0.6f, 1e-6f);
}

TEST(VecMathTest, NormalizeZeroVectorUnchanged) {
  float x[] = {0.0f, 0.0f};
  NormalizeInPlace(x, 2);
  EXPECT_FLOAT_EQ(x[0], 0.0f);
}

TEST(VecMathTest, CosineParallel) {
  const float x[] = {1.0f, 1.0f};
  const float y[] = {2.0f, 2.0f};
  EXPECT_NEAR(Cosine(x, y, 2), 1.0f, 1e-6f);
}

TEST(VecMathTest, CosineOrthogonal) {
  const float x[] = {1.0f, 0.0f};
  const float y[] = {0.0f, 1.0f};
  EXPECT_NEAR(Cosine(x, y, 2), 0.0f, 1e-6f);
}

TEST(VecMathTest, CosineOpposite) {
  const float x[] = {1.0f, 0.0f};
  const float y[] = {-3.0f, 0.0f};
  EXPECT_NEAR(Cosine(x, y, 2), -1.0f, 1e-6f);
}

TEST(VecMathTest, CosineZeroVectorIsZero) {
  const float x[] = {0.0f, 0.0f};
  const float y[] = {1.0f, 2.0f};
  EXPECT_FLOAT_EQ(Cosine(x, y, 2), 0.0f);
}

TEST(VecMathTest, SigmoidKnownValues) {
  EXPECT_NEAR(Sigmoid(0.0f), 0.5f, 1e-6f);
  EXPECT_NEAR(Sigmoid(100.0f), 1.0f, 1e-6f);
  EXPECT_NEAR(Sigmoid(-100.0f), 0.0f, 1e-6f);
  EXPECT_NEAR(Sigmoid(1.0f), 0.7310586f, 1e-5f);
}

TEST(VecMathTest, SigmoidSymmetry) {
  for (float x = -5.0f; x <= 5.0f; x += 0.37f) {
    EXPECT_NEAR(Sigmoid(x) + Sigmoid(-x), 1.0f, 1e-5f);
  }
}

class SigmoidTableSweep : public ::testing::TestWithParam<float> {};

TEST_P(SigmoidTableSweep, MatchesExactSigmoid) {
  static const SigmoidTable table;
  const float x = GetParam();
  // The table clamps outside [-8, 8], so allow the clamp error sigma(8)~1.
  EXPECT_NEAR(table(x), Sigmoid(x), 4e-4f) << "x=" << x;
}

INSTANTIATE_TEST_SUITE_P(Points, SigmoidTableSweep,
                         ::testing::Values(-10.0f, -8.0f, -7.99f, -4.2f,
                                           -1.0f, -0.01f, 0.0f, 0.01f, 0.5f,
                                           1.0f, 2.7f, 6.3f, 7.99f, 8.0f,
                                           10.0f));

TEST(SigmoidTableTest, SaturatesOutsideBound) {
  SigmoidTable table;
  EXPECT_FLOAT_EQ(table(100.0f), 1.0f);
  EXPECT_FLOAT_EQ(table(-100.0f), 0.0f);
}

TEST(SigmoidTableTest, MonotoneNonDecreasing) {
  SigmoidTable table;
  float prev = table(-9.0f);
  for (float x = -9.0f; x <= 9.0f; x += 0.05f) {
    const float cur = table(x);
    EXPECT_GE(cur, prev - 1e-6f);
    prev = cur;
  }
}

class VecSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VecSizeSweep, DotMatchesReference) {
  const std::size_t n = GetParam();
  Rng rng(n + 1);
  std::vector<float> x(n), y(n);
  double ref = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.UniformFloat() - 0.5f;
    y[i] = rng.UniformFloat() - 0.5f;
    ref += static_cast<double>(x[i]) * y[i];
  }
  EXPECT_NEAR(Dot(x.data(), y.data(), n), static_cast<float>(ref),
              1e-4f * (n + 1));
}

TEST_P(VecSizeSweep, CosineBounded) {
  const std::size_t n = GetParam();
  if (n == 0) return;
  Rng rng(n + 7);
  std::vector<float> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.UniformFloat() - 0.5f;
    y[i] = rng.UniformFloat() - 0.5f;
  }
  const float c = Cosine(x.data(), y.data(), n);
  EXPECT_GE(c, -1.0f - 1e-5f);
  EXPECT_LE(c, 1.0f + 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(Sizes, VecSizeSweep,
                         ::testing::Values(0u, 1u, 2u, 3u, 7u, 16u, 31u, 64u,
                                           128u, 300u));

}  // namespace
}  // namespace actor
