#include "shard/sharded_query_engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/online_actor.h"
#include "data/synthetic.h"
#include "serve/query_engine.h"

namespace actor {
namespace {

std::vector<std::vector<TokenizedRecord>> MakeBatches(int records,
                                                      int batches,
                                                      uint64_t seed = 5) {
  SyntheticConfig config;
  config.seed = seed;
  config.num_records = records;
  config.num_users = 80;
  config.num_communities = 4;
  config.num_topics = 6;
  config.num_venues = 16;
  config.keywords_per_topic = 20;
  config.background_vocab = 40;
  auto ds = GenerateSynthetic(config);
  EXPECT_TRUE(ds.ok());
  CorpusBuildOptions build;
  build.min_word_count = 1;
  auto corpus = TokenizedCorpus::Build(ds->corpus, build);
  EXPECT_TRUE(corpus.ok());
  std::vector<std::vector<TokenizedRecord>> out(batches);
  for (std::size_t i = 0; i < corpus->size(); ++i) {
    out[i * batches / corpus->size()].push_back(corpus->record(i));
  }
  return out;
}

/// A trained 2-shard actor plus both serving views of the same model
/// state: the flat engine on the gathered snapshot and the scatter-gather
/// engine on the composite.
struct Harness {
  Result<OnlineActor> model;
  std::shared_ptr<const ModelSnapshot> flat_snap;
  std::shared_ptr<const ShardedModelSnapshot> sharded_snap;
};

Harness MakeHarness(int num_shards, int records = 900) {
  OnlineActorOptions opts;
  opts.dim = 16;
  opts.samples_per_edge_per_batch = 2.0;
  opts.num_shards = num_shards;
  Harness h{OnlineActor::Create(opts), nullptr, nullptr};
  EXPECT_TRUE(h.model.ok());
  const auto batches = MakeBatches(records, 3);
  for (const auto& batch : batches) {
    EXPECT_TRUE(h.model->Ingest(batch).ok());
  }
  h.flat_snap = h.model->PublishSnapshot();
  h.sharded_snap = h.model->PublishShardedSnapshot();
  EXPECT_NE(h.flat_snap, nullptr);
  EXPECT_NE(h.sharded_snap, nullptr);
  return h;
}

void ExpectSameNeighbors(const Result<std::vector<Neighbor>>& a,
                         const Result<std::vector<Neighbor>>& b) {
  ASSERT_EQ(a.ok(), b.ok()) << a.status().message() << " vs "
                            << b.status().message();
  if (!a.ok()) {
    EXPECT_EQ(a.status().message(), b.status().message());
    return;
  }
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].vertex, (*b)[i].vertex) << "rank " << i;
    EXPECT_EQ((*a)[i].similarity, (*b)[i].similarity) << "rank " << i;
    EXPECT_EQ((*a)[i].name, (*b)[i].name) << "rank " << i;
    EXPECT_EQ((*a)[i].type, (*b)[i].type) << "rank " << i;
  }
}

// The scatter-gather acceptance bar: at shards>1, the same (score, unit)
// list — same order, same similarity bits — as the flat engine on the
// gathered snapshot of the same model state, across query modalities and
// result types.
TEST(ShardedQueryEngineTest, ScatterGatherMatchesFlatEngineAtTwoShards) {
  Harness h = MakeHarness(2);
  QueryEngine flat(h.flat_snap);
  ShardedQueryEngine scatter(h.sharded_snap);
  EXPECT_EQ(h.sharded_snap->num_shards(), 2);

  const GeoPoint somewhere{3.0, 4.0};
  for (const VertexType type :
       {VertexType::kWord, VertexType::kLocation, VertexType::kTime,
        VertexType::kUser}) {
    for (const int k : {1, 5, 16}) {
      ExpectSameNeighbors(flat.QueryByLocation(somewhere, type, k),
                          scatter.QueryByLocation(somewhere, type, k));
      ExpectSameNeighbors(flat.QueryByHour(8.5, type, k),
                          scatter.QueryByHour(8.5, type, k));
    }
  }
  // Raw-vector queries with a global exclude id resolve identically too.
  std::vector<float> q(16, 0.25f);
  ExpectSameNeighbors(
      flat.QueryByVector(q.data(), VertexType::kWord, 9, 3),
      scatter.QueryByVector(q.data(), VertexType::kWord, 9, 3));
}

TEST(ShardedQueryEngineTest, MergeHandlesKLargerThanPerShardUnits) {
  Harness h = MakeHarness(4, 400);
  QueryEngine flat(h.flat_snap);
  ShardedQueryEngine scatter(h.sharded_snap);
  // k beyond the total unit count: every shard returns its whole type
  // block and the merge must still reproduce the flat ranking exactly,
  // without duplicates or truncation artifacts.
  const int huge_k = h.flat_snap->num_units() + 50;
  auto a = flat.QueryByHour(12.0, VertexType::kWord, huge_k);
  auto b = scatter.QueryByHour(12.0, VertexType::kWord, huge_k);
  ExpectSameNeighbors(a, b);
  ASSERT_TRUE(b.ok());
  ASSERT_FALSE(b->empty());
  // Sanity: results really span several shards (k covered all units).
  const ShardMapSnapshot& map = h.sharded_snap->map();
  bool multi_shard = false;
  const int first_owner =
      map.owner[static_cast<std::size_t>((*b)[0].vertex)];
  for (const Neighbor& n : *b) {
    if (map.owner[static_cast<std::size_t>(n.vertex)] != first_owner) {
      multi_shard = true;
      break;
    }
  }
  EXPECT_TRUE(multi_shard);
}

TEST(ShardedQueryEngineTest, BatchMatchesSequentialOnShardedEngine) {
  Harness h = MakeHarness(2);
  ShardedQueryEngine scatter(h.sharded_snap);

  std::vector<float> q(16, -0.5f);
  std::vector<BatchQuery> queries;
  queries.push_back(
      BatchQuery::Location({3.0, 4.0}, VertexType::kWord, 5));
  queries.push_back(BatchQuery::Hour(8.5, VertexType::kLocation, 3));
  queries.push_back(BatchQuery::Keyword("coffee", VertexType::kWord, 4));
  queries.push_back(BatchQuery::Vector(q.data(), VertexType::kUser, 6));
  queries.push_back(BatchQuery::Hour(23.9, VertexType::kTime, 0));  // bad k
  queries.push_back(BatchQuery::Vector(q.data(), VertexType::kWord, 2, 1));

  const auto batch = scatter.QueryBatch(queries);
  ASSERT_EQ(batch.size(), queries.size());
  ExpectSameNeighbors(
      scatter.QueryByLocation({3.0, 4.0}, VertexType::kWord, 5), batch[0]);
  ExpectSameNeighbors(scatter.QueryByHour(8.5, VertexType::kLocation, 3),
                      batch[1]);
  // Keyword on a streaming snapshot: NotFound, same text both paths.
  EXPECT_TRUE(batch[2].status().IsNotFound());
  ExpectSameNeighbors(
      scatter.QueryByKeyword("coffee", VertexType::kWord, 4), batch[2]);
  ExpectSameNeighbors(
      scatter.QueryByVector(q.data(), VertexType::kUser, 6), batch[3]);
  EXPECT_TRUE(batch[4].status().IsInvalidArgument());
  ExpectSameNeighbors(
      scatter.QueryByVector(q.data(), VertexType::kWord, 2, 1), batch[5]);
}

TEST(ShardedQueryEngineTest, BatchMatchesFlatEngineBatch) {
  Harness h = MakeHarness(2);
  QueryEngine flat(h.flat_snap);
  ShardedQueryEngine scatter(h.sharded_snap);

  std::vector<float> q(16, 0.1f);
  std::vector<BatchQuery> queries;
  queries.push_back(BatchQuery::Hour(7.25, VertexType::kWord, 8));
  queries.push_back(
      BatchQuery::Location({-2.0, 1.0}, VertexType::kUser, 4));
  queries.push_back(BatchQuery::Vector(q.data(), VertexType::kTime, 3));
  queries.push_back(BatchQuery::Keyword("tea", VertexType::kWord, 2));

  const auto a = flat.QueryBatch(queries);
  const auto b = scatter.QueryBatch(queries);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ExpectSameNeighbors(a[i], b[i]);
  }
}

TEST(ShardedQueryEngineTest, ErrorsMirrorFlatEngine) {
  Harness h = MakeHarness(2);
  QueryEngine flat(h.flat_snap);
  ShardedQueryEngine scatter(h.sharded_snap);
  std::vector<float> q(16, 0.0f);
  // k validation precedence matches the flat engine's exactly.
  EXPECT_TRUE(scatter.QueryByVector(q.data(), VertexType::kWord, 0)
                  .status()
                  .IsInvalidArgument());
  ExpectSameNeighbors(flat.QueryByVector(q.data(), VertexType::kWord, -1),
                      scatter.QueryByVector(q.data(), VertexType::kWord, -1));
  ExpectSameNeighbors(flat.QueryByKeyword("x", VertexType::kWord, 5),
                      scatter.QueryByKeyword("x", VertexType::kWord, 5));
}

}  // namespace
}  // namespace actor
