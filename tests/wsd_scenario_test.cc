// The word-sense disambiguation scenario of paper §1: the keyword "ape"
// means "imitate" alone but "gorilla" next to "planet" — i.e., an
// ambiguous keyword is resolved by the rest of the record. This test
// builds a handcrafted corpus with a polysemous keyword used at two
// venues in two senses and verifies that the full record context
// disambiguates predictions even though the ambiguous word has a single
// vector.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/actor.h"
#include "eval/cross_modal_model.h"
#include "eval/pipeline.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/vec_math.h"

namespace actor {
namespace {

/// Corpus: venue RIVER at (5, 5) mornings, text {bank, river|fishing|
/// water}; venue CITY at (30, 30) evenings, text {bank, money|loan|
/// credit}. "bank" appears in both senses equally often.
Corpus PolysemyCorpus(int per_venue) {
  Rng rng(7);
  Corpus corpus;
  const char* river_words[] = {"river", "fishing", "water", "shore"};
  const char* city_words[] = {"money", "loan", "credit", "teller"};
  int64_t id = 0;
  for (int i = 0; i < per_venue; ++i) {
    RawRecord river;
    river.id = id++;
    river.user_id = rng.Uniform(40);
    river.timestamp =
        rng.Uniform(30) * kSecondsPerDay + rng.Gaussian(9.0, 0.5) * 3600.0;
    river.location = {rng.Gaussian(5.0, 0.2), rng.Gaussian(5.0, 0.2)};
    river.text = StrPrintf("bank %s %s", river_words[rng.Uniform(4)],
                           river_words[rng.Uniform(4)]);
    corpus.Add(std::move(river));

    RawRecord city;
    city.id = id++;
    city.user_id = 40 + rng.Uniform(40);
    city.timestamp =
        rng.Uniform(30) * kSecondsPerDay + rng.Gaussian(19.0, 0.5) * 3600.0;
    city.location = {rng.Gaussian(30.0, 0.2), rng.Gaussian(30.0, 0.2)};
    city.text = StrPrintf("bank %s %s", city_words[rng.Uniform(4)],
                          city_words[rng.Uniform(4)]);
    corpus.Add(std::move(city));
  }
  return corpus;
}

class WsdScenarioTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CorpusBuildOptions build;
    build.min_word_count = 1;
    auto corpus = TokenizedCorpus::Build(PolysemyCorpus(400), build);
    ASSERT_TRUE(corpus.ok());
    corpus_ = new TokenizedCorpus(corpus.MoveValueOrDie());
    auto hotspots = DetectHotspots(*corpus_);
    ASSERT_TRUE(hotspots.ok());
    hotspots_ = std::make_shared<const Hotspots>(hotspots.MoveValueOrDie());
    auto graphs = BuildGraphs(*corpus_, *hotspots_);
    ASSERT_TRUE(graphs.ok());
    graphs_ = std::make_shared<const BuiltGraphs>(graphs.MoveValueOrDie());
    ActorOptions options;
    options.dim = 16;
    options.epochs = 6;
    options.samples_per_edge = 20;
    options.negatives = 5;
    auto model = TrainActor(*graphs_, options);
    ASSERT_TRUE(model.ok());
    model_ = new ActorModel(model.MoveValueOrDie());
    snapshot_ = PublishActorModel(*model_, graphs_, hotspots_);
  }
  static void TearDownTestSuite() {
    snapshot_.reset();
    delete model_;
    graphs_.reset();
    hotspots_.reset();
    delete corpus_;
    model_ = nullptr;
    corpus_ = nullptr;
  }

  static std::vector<int32_t> Words(
      const std::vector<std::string>& words) {
    std::vector<int32_t> ids;
    for (const auto& w : words) {
      const int32_t id = corpus_->vocab().Lookup(w);
      EXPECT_GE(id, 0) << w;
      ids.push_back(id);
    }
    return ids;
  }

  static TokenizedCorpus* corpus_;
  static std::shared_ptr<const Hotspots> hotspots_;
  static std::shared_ptr<const BuiltGraphs> graphs_;
  static ActorModel* model_;
  static std::shared_ptr<const ModelSnapshot> snapshot_;
};

TokenizedCorpus* WsdScenarioTest::corpus_ = nullptr;
std::shared_ptr<const Hotspots> WsdScenarioTest::hotspots_;
std::shared_ptr<const BuiltGraphs> WsdScenarioTest::graphs_;
ActorModel* WsdScenarioTest::model_ = nullptr;
std::shared_ptr<const ModelSnapshot> WsdScenarioTest::snapshot_;

TEST_F(WsdScenarioTest, BothVenuesDetected) {
  EXPECT_GE(hotspots_->spatial.size(), 2u);
  EXPECT_GE(hotspots_->temporal.size(), 2u);
}

TEST_F(WsdScenarioTest, ContextDisambiguatesLocation) {
  EmbeddingCrossModalModel scorer("ACTOR", snapshot_);
  const GeoPoint river_venue{5, 5};
  const GeoPoint city_venue{30, 30};
  const double morning = 9.0 * 3600.0;
  const double evening = 19.0 * 3600.0;
  // "bank fishing" belongs at the river; "bank loan" downtown — although
  // "bank" itself appears at both venues.
  const auto fishing = Words({"bank", "fishing"});
  const auto loan = Words({"bank", "loan"});
  EXPECT_GT(scorer.ScoreLocation(morning, fishing, river_venue),
            scorer.ScoreLocation(morning, fishing, city_venue));
  EXPECT_GT(scorer.ScoreLocation(evening, loan, city_venue),
            scorer.ScoreLocation(evening, loan, river_venue));
}

TEST_F(WsdScenarioTest, ContextDisambiguatesText) {
  EmbeddingCrossModalModel scorer("ACTOR", snapshot_);
  const GeoPoint river_venue{5, 5};
  const auto fishing = Words({"bank", "fishing"});
  const auto loan = Words({"bank", "loan"});
  // At the river in the morning, the fishing sense must outscore the loan
  // sense even though both candidates contain "bank".
  const double morning = 9.0 * 3600.0;
  EXPECT_GT(scorer.ScoreText(morning, river_venue, fishing),
            scorer.ScoreText(morning, river_venue, loan));
}

TEST_F(WsdScenarioTest, AmbiguousWordSitsBetweenSenses) {
  // The single "bank" vector must be meaningfully related to *both*
  // venues (it co-occurs with each), unlike the sense-specific words.
  EmbeddingCrossModalModel scorer("ACTOR", snapshot_);
  std::vector<float> bank_vec, river_loc, city_loc;
  ASSERT_TRUE(scorer.TextVector(Words({"bank"}), &bank_vec));
  ASSERT_TRUE(scorer.LocationVector({5, 5}, &river_loc));
  ASSERT_TRUE(scorer.LocationVector({30, 30}, &city_loc));
  const std::size_t dim = bank_vec.size();
  const float to_river = Cosine(bank_vec.data(), river_loc.data(), dim);
  const float to_city = Cosine(bank_vec.data(), city_loc.data(), dim);
  EXPECT_GT(to_river, 0.0f);
  EXPECT_GT(to_city, 0.0f);

  // A sense-exclusive word is clearly one-sided.
  std::vector<float> fishing_vec;
  ASSERT_TRUE(scorer.TextVector(Words({"fishing"}), &fishing_vec));
  const float fishing_river =
      Cosine(fishing_vec.data(), river_loc.data(), dim);
  const float fishing_city = Cosine(fishing_vec.data(), city_loc.data(), dim);
  EXPECT_GT(fishing_river, fishing_city);
  // "bank" is less one-sided than "fishing".
  EXPECT_LT(std::fabs(to_river - to_city),
            std::fabs(fishing_river - fishing_city));
}

}  // namespace
}  // namespace actor
