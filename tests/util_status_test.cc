#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace actor {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, InvalidArgumentCarriesMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad dim");
}

TEST(StatusTest, NotFound) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
}

TEST(StatusTest, IOError) { EXPECT_TRUE(Status::IOError("x").IsIOError()); }

TEST(StatusTest, OutOfRange) {
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
}

TEST(StatusTest, FailedPrecondition) {
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
}

TEST(StatusTest, CopyPreservesContents) {
  Status s = Status::Internal("boom");
  Status copy = s;
  EXPECT_EQ(copy.code(), StatusCode::kInternal);
  EXPECT_EQ(copy.message(), "boom");
  // Original unchanged.
  EXPECT_EQ(s.message(), "boom");
}

TEST(StatusTest, CopyAssignOverOk) {
  Status ok;
  Status err = Status::NotFound("gone");
  ok = err;
  EXPECT_TRUE(ok.IsNotFound());
}

TEST(StatusTest, CopyAssignOkOverError) {
  Status err = Status::NotFound("gone");
  err = Status::OK();
  EXPECT_TRUE(err.ok());
}

TEST(StatusTest, MoveTransfersContents) {
  Status s = Status::IOError("disk");
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsIOError());
  EXPECT_EQ(moved.message(), "disk");
}

TEST(StatusTest, SelfAssignSafe) {
  Status s = Status::Internal("x");
  Status& alias = s;
  s = alias;
  EXPECT_EQ(s.message(), "x");
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotImplemented),
               "Not implemented");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAlreadyExists),
               "Already exists");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status { return Status::OutOfRange("n"); };
  auto wrapper = [&]() -> Status {
    ACTOR_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsOutOfRange());
}

TEST(StatusTest, ReturnNotOkMacroPassesOk) {
  auto succeeds = []() -> Status { return Status::OK(); };
  auto wrapper = [&]() -> Status {
    ACTOR_RETURN_NOT_OK(succeeds());
    return Status::AlreadyExists("reached end");
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kAlreadyExists);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, FromOkStatusBecomesInternalError) {
  Result<int> r(Status::OK());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveValueOrDie) {
  Result<std::string> r(std::string("hello"));
  std::string v = r.MoveValueOrDie();
  EXPECT_EQ(v, "hello");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto produce = []() -> Result<int> { return 7; };
  auto consume = [&]() -> Result<int> {
    ACTOR_ASSIGN_OR_RETURN(int v, produce());
    return v + 1;
  };
  EXPECT_EQ(*consume(), 8);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto produce = []() -> Result<int> { return Status::IOError("eof"); };
  auto consume = [&]() -> Result<int> {
    ACTOR_ASSIGN_OR_RETURN(int v, produce());
    return v + 1;
  };
  EXPECT_TRUE(consume().status().IsIOError());
}

TEST(ResultTest, MoveOnlyType) {
  auto produce = []() -> Result<std::unique_ptr<int>> {
    return std::make_unique<int>(5);
  };
  auto r = produce();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, 5);
}

}  // namespace
}  // namespace actor
