#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/synthetic.h"
#include "graph/graph_builder.h"
#include "hotspot/hotspot_detector.h"

namespace actor {
namespace {

class GraphIoTest : public ::testing::Test {
 protected:
  void SetUp() override { path_ = ::testing::TempDir() + "/graph_io.tsv"; }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

Heterograph SmallGraph() {
  Heterograph g;
  const VertexId t = g.AddVertex(VertexType::kTime, "T0");
  const VertexId l = g.AddVertex(VertexType::kLocation, "L0");
  const VertexId w = g.AddVertex(VertexType::kWord, "coffee with spaces");
  EXPECT_TRUE(g.AccumulateEdge(t, l, 2.5).ok());
  EXPECT_TRUE(g.AccumulateEdge(l, w, 1.0).ok());
  EXPECT_TRUE(g.Finalize().ok());
  return g;
}

TEST_F(GraphIoTest, RoundTripPreservesStructure) {
  Heterograph g = SmallGraph();
  ASSERT_TRUE(SaveHeterograph(g, path_).ok());
  auto loaded = LoadHeterograph(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_vertices(), 3);
  EXPECT_EQ(loaded->vertex_type(0), VertexType::kTime);
  EXPECT_EQ(loaded->vertex_name(2), "coffee with spaces");
  EXPECT_DOUBLE_EQ(loaded->EdgeWeight(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(loaded->EdgeWeight(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(loaded->EdgeWeight(0, 2), 0.0);
  EXPECT_EQ(loaded->num_directed_edges(), g.num_directed_edges());
}

TEST_F(GraphIoTest, RoundTripOnBuiltActivityGraph) {
  SyntheticConfig config;
  config.num_records = 500;
  config.num_users = 40;
  config.num_venues = 8;
  config.num_topics = 4;
  config.num_communities = 3;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  auto corpus = TokenizedCorpus::Build(ds->corpus);
  ASSERT_TRUE(corpus.ok());
  auto hotspots = DetectHotspots(*corpus);
  ASSERT_TRUE(hotspots.ok());
  auto graphs = BuildGraphs(*corpus, *hotspots);
  ASSERT_TRUE(graphs.ok());

  ASSERT_TRUE(SaveHeterograph(graphs->activity, path_).ok());
  auto loaded = LoadHeterograph(path_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_vertices(), graphs->activity.num_vertices());
  EXPECT_EQ(loaded->num_directed_edges(),
            graphs->activity.num_directed_edges());
  for (int e = 0; e < kNumEdgeTypes; ++e) {
    const EdgeType et = static_cast<EdgeType>(e);
    EXPECT_EQ(loaded->edges(et).size(), graphs->activity.edges(et).size())
        << EdgeTypeName(et);
    for (VertexId v = 0; v < loaded->num_vertices(); ++v) {
      ASSERT_DOUBLE_EQ(loaded->Degree(et, v), graphs->activity.Degree(et, v));
    }
  }
}

TEST_F(GraphIoTest, UnfinalizedGraphRejected) {
  Heterograph g;
  EXPECT_TRUE(SaveHeterograph(g, path_).IsFailedPrecondition());
}

TEST_F(GraphIoTest, MissingFileIsIOError) {
  EXPECT_TRUE(LoadHeterograph("/no/such/graph.tsv").status().IsIOError());
}

TEST_F(GraphIoTest, MalformedRowsRejected) {
  std::ofstream out(path_);
  out << "X\t0\tT\tname\n";
  out.close();
  EXPECT_TRUE(LoadHeterograph(path_).status().IsInvalidArgument());
}

TEST_F(GraphIoTest, OutOfOrderVerticesRejected) {
  std::ofstream out(path_);
  out << "V\t1\tT\tname\n";
  out.close();
  EXPECT_TRUE(LoadHeterograph(path_).status().IsInvalidArgument());
}

TEST_F(GraphIoTest, UnknownTypeRejected) {
  std::ofstream out(path_);
  out << "V\t0\tZ\tname\n";
  out.close();
  EXPECT_TRUE(LoadHeterograph(path_).status().IsInvalidArgument());
}

TEST_F(GraphIoTest, BadEdgeEndpointRejected) {
  std::ofstream out(path_);
  out << "V\t0\tT\ta\nV\t1\tL\tb\nE\t0\t9\t1.0\n";
  out.close();
  EXPECT_TRUE(LoadHeterograph(path_).status().IsInvalidArgument());
}

}  // namespace
}  // namespace actor
