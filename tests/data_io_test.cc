#include "data/dataset_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/synthetic.h"

namespace actor {
namespace {

class DataIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/corpus_test.tsv";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(DataIoTest, RoundTripPreservesRecords) {
  Corpus corpus;
  RawRecord r;
  r.id = 3;
  r.user_id = 42;
  r.timestamp = 12345.5;
  r.location = {1.25, -2.5};
  r.text = "coffee at the pier";
  r.mentioned_user_ids = {7, 9};
  corpus.Add(r);
  RawRecord r2;
  r2.id = 4;
  r2.user_id = 43;
  r2.timestamp = 0.0;
  r2.text = "no mentions here";
  corpus.Add(r2);

  ASSERT_TRUE(SaveCorpusTsv(corpus, path_).ok());
  auto loaded = LoadCorpusTsv(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 2u);
  const RawRecord& a = loaded->record(0);
  EXPECT_EQ(a.id, 3);
  EXPECT_EQ(a.user_id, 42);
  EXPECT_DOUBLE_EQ(a.timestamp, 12345.5);
  EXPECT_DOUBLE_EQ(a.location.x, 1.25);
  EXPECT_DOUBLE_EQ(a.location.y, -2.5);
  EXPECT_EQ(a.text, "coffee at the pier");
  EXPECT_EQ(a.mentioned_user_ids, (std::vector<int64_t>{7, 9}));
  EXPECT_TRUE(loaded->record(1).mentioned_user_ids.empty());
}

TEST_F(DataIoTest, TabsInTextSanitized) {
  Corpus corpus;
  RawRecord r;
  r.id = 0;
  r.text = "tab\there\nnewline";
  corpus.Add(r);
  ASSERT_TRUE(SaveCorpusTsv(corpus, path_).ok());
  auto loaded = LoadCorpusTsv(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->record(0).text, "tab here newline");
}

TEST_F(DataIoTest, SyntheticRoundTrip) {
  SyntheticConfig config;
  config.num_records = 200;
  config.num_users = 30;
  config.num_venues = 10;
  config.num_topics = 4;
  config.num_communities = 3;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  ASSERT_TRUE(SaveCorpusTsv(ds->corpus, path_).ok());
  auto loaded = LoadCorpusTsv(path_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), ds->corpus.size());
  for (std::size_t i = 0; i < loaded->size(); ++i) {
    EXPECT_EQ(loaded->record(i).text, ds->corpus.record(i).text);
    EXPECT_EQ(loaded->record(i).user_id, ds->corpus.record(i).user_id);
  }
}

TEST_F(DataIoTest, MissingFileIsIOError) {
  auto loaded = LoadCorpusTsv("/nonexistent/path/file.tsv");
  EXPECT_TRUE(loaded.status().IsIOError());
}

TEST_F(DataIoTest, MalformedColumnCountIsError) {
  std::ofstream out(path_);
  out << "1\t2\t3\n";
  out.close();
  auto loaded = LoadCorpusTsv(path_);
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
}

TEST_F(DataIoTest, MalformedNumberIsError) {
  std::ofstream out(path_);
  out << "abc\t2\t3.0\t1.0\t1.0\t\ttext\n";
  out.close();
  auto loaded = LoadCorpusTsv(path_);
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
}

TEST_F(DataIoTest, MalformedMentionIsError) {
  std::ofstream out(path_);
  out << "1\t2\t3.0\t1.0\t1.0\t7,x\ttext\n";
  out.close();
  auto loaded = LoadCorpusTsv(path_);
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
}

TEST_F(DataIoTest, EmptyLinesSkipped) {
  std::ofstream out(path_);
  out << "1\t2\t3.0\t1.0\t1.0\t\ttext\n\n";
  out.close();
  auto loaded = LoadCorpusTsv(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 1u);
}

TEST_F(DataIoTest, UnwritablePathIsIOError) {
  Corpus corpus;
  corpus.Add(RawRecord{});
  EXPECT_TRUE(SaveCorpusTsv(corpus, "/nonexistent/dir/out.tsv").IsIOError());
}

}  // namespace
}  // namespace actor
