#include "graph/heterograph.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace actor {
namespace {

/// T0, L0, W0, W1, U0 with a few edges.
Heterograph SmallGraph() {
  Heterograph g;
  const VertexId t = g.AddVertex(VertexType::kTime, "T0");
  const VertexId l = g.AddVertex(VertexType::kLocation, "L0");
  const VertexId w0 = g.AddVertex(VertexType::kWord, "w0");
  const VertexId w1 = g.AddVertex(VertexType::kWord, "w1");
  const VertexId u = g.AddVertex(VertexType::kUser, "u0");
  EXPECT_TRUE(g.AccumulateEdge(t, l, 2.0).ok());
  EXPECT_TRUE(g.AccumulateEdge(l, w0).ok());
  EXPECT_TRUE(g.AccumulateEdge(l, w0).ok());  // accumulates to 2
  EXPECT_TRUE(g.AccumulateEdge(w0, w1, 3.0).ok());
  EXPECT_TRUE(g.AccumulateEdge(u, t, 1.5).ok());
  EXPECT_TRUE(g.Finalize().ok());
  return g;
}

TEST(HeterographTest, AddVertexAssignsDenseIds) {
  Heterograph g;
  EXPECT_EQ(g.AddVertex(VertexType::kTime, "a"), 0);
  EXPECT_EQ(g.AddVertex(VertexType::kWord, "b"), 1);
  EXPECT_EQ(g.num_vertices(), 2);
  EXPECT_EQ(g.vertex_type(0), VertexType::kTime);
  EXPECT_EQ(g.vertex_name(1), "b");
}

TEST(HeterographTest, VerticesOfType) {
  Heterograph g = SmallGraph();
  EXPECT_EQ(g.VerticesOfType(VertexType::kWord).size(), 2u);
  EXPECT_EQ(g.VerticesOfType(VertexType::kTime).size(), 1u);
  EXPECT_EQ(g.VerticesOfType(VertexType::kUser).size(), 1u);
}

TEST(HeterographTest, EdgeWeightsAccumulate) {
  Heterograph g = SmallGraph();
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 2), 2.0);  // L0-w0 accumulated twice
  EXPECT_DOUBLE_EQ(g.EdgeWeight(2, 1), 2.0);  // symmetric
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 2.0);  // T0-L0 weight 2
  EXPECT_DOUBLE_EQ(g.EdgeWeight(2, 3), 3.0);  // w0-w1
}

TEST(HeterographTest, MissingEdgeWeightZero) {
  Heterograph g = SmallGraph();
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 2), 0.0);  // T0-w0 absent
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 0), 0.0);  // self
}

TEST(HeterographTest, DirectedEdgesBothOrientations) {
  Heterograph g = SmallGraph();
  const auto& tl = g.edges(EdgeType::kTL);
  ASSERT_EQ(tl.size(), 2u);  // one undirected edge -> two directed
  // Both orientations present.
  const bool has_forward =
      (tl.src[0] == 0 && tl.dst[0] == 1) || (tl.src[1] == 0 && tl.dst[1] == 1);
  const bool has_backward =
      (tl.src[0] == 1 && tl.dst[0] == 0) || (tl.src[1] == 1 && tl.dst[1] == 0);
  EXPECT_TRUE(has_forward);
  EXPECT_TRUE(has_backward);
  EXPECT_DOUBLE_EQ(tl.weight[0], 2.0);
}

TEST(HeterographTest, EdgesRoutedToCorrectType) {
  Heterograph g = SmallGraph();
  EXPECT_EQ(g.edges(EdgeType::kLW).size(), 2u);
  EXPECT_EQ(g.edges(EdgeType::kWW).size(), 2u);
  EXPECT_EQ(g.edges(EdgeType::kUT).size(), 2u);
  EXPECT_EQ(g.edges(EdgeType::kWT).size(), 0u);
  EXPECT_EQ(g.edges(EdgeType::kUU).size(), 0u);
}

TEST(HeterographTest, NeighborsAndWeights) {
  Heterograph g = SmallGraph();
  const auto neighbors = g.Neighbors(EdgeType::kLW, 1);
  ASSERT_EQ(neighbors.size(), 1u);
  EXPECT_EQ(neighbors[0], 2);
  const auto weights = g.NeighborWeights(EdgeType::kLW, 1);
  ASSERT_EQ(weights.size(), 1u);
  EXPECT_DOUBLE_EQ(weights[0], 2.0);
  // w0's LW neighbors: L0.
  EXPECT_EQ(g.Neighbors(EdgeType::kLW, 2).size(), 1u);
  // T0 has no LW neighbors.
  EXPECT_TRUE(g.Neighbors(EdgeType::kLW, 0).empty());
}

TEST(HeterographTest, DegreeSumsWeights) {
  Heterograph g = SmallGraph();
  EXPECT_DOUBLE_EQ(g.Degree(EdgeType::kTL, 0), 2.0);
  EXPECT_DOUBLE_EQ(g.Degree(EdgeType::kLW, 1), 2.0);
  EXPECT_DOUBLE_EQ(g.Degree(EdgeType::kWW, 2), 3.0);
  EXPECT_DOUBLE_EQ(g.Degree(EdgeType::kUT, 0), 1.5);  // T side of UT
  EXPECT_DOUBLE_EQ(g.Degree(EdgeType::kWW, 0), 0.0);
}

TEST(HeterographTest, NumDirectedEdges) {
  Heterograph g = SmallGraph();
  // 4 undirected edges (TL, LW, WW, UT) -> 8 directed.
  EXPECT_EQ(g.num_directed_edges(), 8);
}

TEST(HeterographTest, SelfLoopRejected) {
  Heterograph g;
  const VertexId w = g.AddVertex(VertexType::kWord, "w");
  EXPECT_TRUE(g.AccumulateEdge(w, w).IsInvalidArgument());
}

TEST(HeterographTest, OutOfRangeVertexRejected) {
  Heterograph g;
  g.AddVertex(VertexType::kWord, "w");
  EXPECT_TRUE(g.AccumulateEdge(0, 5).IsInvalidArgument());
  EXPECT_TRUE(g.AccumulateEdge(-1, 0).IsInvalidArgument());
}

TEST(HeterographTest, NonPositiveWeightRejected) {
  Heterograph g;
  g.AddVertex(VertexType::kWord, "a");
  g.AddVertex(VertexType::kWord, "b");
  EXPECT_TRUE(g.AccumulateEdge(0, 1, 0.0).IsInvalidArgument());
  EXPECT_TRUE(g.AccumulateEdge(0, 1, -1.0).IsInvalidArgument());
}

TEST(HeterographTest, UnsupportedTypePairRejected) {
  Heterograph g;
  const VertexId t0 = g.AddVertex(VertexType::kTime, "t0");
  const VertexId t1 = g.AddVertex(VertexType::kTime, "t1");
  EXPECT_TRUE(g.AccumulateEdge(t0, t1).IsInvalidArgument());
}

TEST(HeterographTest, AccumulateAfterFinalizeRejected) {
  Heterograph g;
  g.AddVertex(VertexType::kWord, "a");
  g.AddVertex(VertexType::kWord, "b");
  ASSERT_TRUE(g.AccumulateEdge(0, 1).ok());
  ASSERT_TRUE(g.Finalize().ok());
  EXPECT_TRUE(g.AccumulateEdge(0, 1).IsFailedPrecondition());
}

TEST(HeterographTest, DoubleFinalizeRejected) {
  Heterograph g;
  ASSERT_TRUE(g.Finalize().ok());
  EXPECT_TRUE(g.Finalize().IsFailedPrecondition());
}

TEST(HeterographTest, EmptyGraphFinalizes) {
  Heterograph g;
  ASSERT_TRUE(g.Finalize().ok());
  EXPECT_EQ(g.num_directed_edges(), 0);
}

TEST(HeterographTest, CsrConsistentWithEdgeList) {
  Heterograph g = SmallGraph();
  // Sum of adjacency weights over all vertices == sum of directed edge
  // weights, per type.
  for (int e = 0; e < kNumEdgeTypes; ++e) {
    const EdgeType et = static_cast<EdgeType>(e);
    double edge_sum = 0.0;
    for (double w : g.edges(et).weight) edge_sum += w;
    double adj_sum = 0.0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      for (double w : g.NeighborWeights(et, v)) adj_sum += w;
    }
    EXPECT_DOUBLE_EQ(edge_sum, adj_sum) << EdgeTypeName(et);
  }
}

}  // namespace
}  // namespace actor
