#include "graph/random_walk.h"

#include <gtest/gtest.h>

namespace actor {
namespace {

/// L0-W0-T0-W1 chain plus L1 attached to W1.
Heterograph ChainGraph() {
  Heterograph g;
  const VertexId l0 = g.AddVertex(VertexType::kLocation, "L0");
  const VertexId w0 = g.AddVertex(VertexType::kWord, "w0");
  const VertexId t0 = g.AddVertex(VertexType::kTime, "T0");
  const VertexId w1 = g.AddVertex(VertexType::kWord, "w1");
  const VertexId l1 = g.AddVertex(VertexType::kLocation, "L1");
  EXPECT_TRUE(g.AccumulateEdge(l0, w0).ok());
  EXPECT_TRUE(g.AccumulateEdge(w0, t0).ok());
  EXPECT_TRUE(g.AccumulateEdge(t0, w1).ok());
  EXPECT_TRUE(g.AccumulateEdge(w1, l1).ok());
  EXPECT_TRUE(g.AccumulateEdge(w0, w1).ok());
  EXPECT_TRUE(g.Finalize().ok());
  return g;
}

std::vector<VertexType> LwtwPath() {
  return {VertexType::kLocation, VertexType::kWord, VertexType::kTime,
          VertexType::kWord};
}

TEST(MetaPathWalkerTest, WalksFollowTypePattern) {
  Heterograph g = ChainGraph();
  MetaPathWalker walker(&g, LwtwPath());
  MetaPathWalkOptions options;
  options.walks_per_start = 3;
  options.walk_length = 12;
  auto walks = walker.GenerateWalks(options);
  ASSERT_TRUE(walks.ok()) << walks.status().ToString();
  ASSERT_FALSE(walks->empty());
  const std::vector<VertexType> pattern = LwtwPath();
  for (const auto& walk : *walks) {
    for (std::size_t i = 0; i < walk.size(); ++i) {
      EXPECT_EQ(g.vertex_type(walk[i]), pattern[i % pattern.size()])
          << "position " << i;
    }
  }
}

TEST(MetaPathWalkerTest, WalksStartAtFirstTypeVertices) {
  Heterograph g = ChainGraph();
  MetaPathWalker walker(&g, LwtwPath());
  MetaPathWalkOptions options;
  options.walks_per_start = 2;
  auto walks = walker.GenerateWalks(options);
  ASSERT_TRUE(walks.ok());
  for (const auto& walk : *walks) {
    EXPECT_EQ(g.vertex_type(walk.front()), VertexType::kLocation);
  }
}

TEST(MetaPathWalkerTest, ConsecutiveVerticesAreNeighbors) {
  Heterograph g = ChainGraph();
  MetaPathWalker walker(&g, LwtwPath());
  MetaPathWalkOptions options;
  auto walks = walker.GenerateWalks(options);
  ASSERT_TRUE(walks.ok());
  for (const auto& walk : *walks) {
    for (std::size_t i = 0; i + 1 < walk.size(); ++i) {
      EXPECT_GT(g.EdgeWeight(walk[i], walk[i + 1]), 0.0);
    }
  }
}

TEST(MetaPathWalkerTest, DeterministicForSeed) {
  Heterograph g = ChainGraph();
  MetaPathWalkOptions options;
  options.seed = 5;
  MetaPathWalker wa(&g, LwtwPath());
  MetaPathWalker wb(&g, LwtwPath());
  auto a = wa.GenerateWalks(options);
  auto b = wb.GenerateWalks(options);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) EXPECT_EQ((*a)[i], (*b)[i]);
}

TEST(MetaPathWalkerTest, ShortMetaPathRejected) {
  Heterograph g = ChainGraph();
  MetaPathWalker walker(&g, {VertexType::kWord});
  EXPECT_TRUE(
      walker.GenerateWalks({}).status().IsInvalidArgument());
}

TEST(MetaPathWalkerTest, InvalidTransitionRejected) {
  Heterograph g = ChainGraph();
  MetaPathWalker walker(&g, {VertexType::kTime, VertexType::kTime});
  EXPECT_TRUE(walker.GenerateWalks({}).status().IsInvalidArgument());
}

TEST(MetaPathWalkerTest, BadWalkOptionsRejected) {
  Heterograph g = ChainGraph();
  MetaPathWalker walker(&g, LwtwPath());
  MetaPathWalkOptions options;
  options.walk_length = 1;
  EXPECT_TRUE(walker.GenerateWalks(options).status().IsInvalidArgument());
  options.walk_length = 10;
  options.walks_per_start = 0;
  EXPECT_TRUE(walker.GenerateWalks(options).status().IsInvalidArgument());
}

TEST(MetaPathWalkerTest, DeadEndTruncatesWalk) {
  // A lone L vertex with one W neighbor that has no T edge: walks stop
  // after 2 vertices.
  Heterograph g;
  const VertexId l = g.AddVertex(VertexType::kLocation, "L");
  const VertexId w = g.AddVertex(VertexType::kWord, "w");
  ASSERT_TRUE(g.AccumulateEdge(l, w).ok());
  ASSERT_TRUE(g.Finalize().ok());
  MetaPathWalker walker(&g, LwtwPath());
  MetaPathWalkOptions options;
  options.walk_length = 10;
  auto walks = walker.GenerateWalks(options);
  ASSERT_TRUE(walks.ok());
  for (const auto& walk : *walks) {
    EXPECT_EQ(walk.size(), 2u);
  }
}

TEST(MetaPathWalkerTest, WalkLengthRespected) {
  Heterograph g = ChainGraph();
  MetaPathWalker walker(&g, LwtwPath());
  MetaPathWalkOptions options;
  options.walk_length = 7;
  auto walks = walker.GenerateWalks(options);
  ASSERT_TRUE(walks.ok());
  for (const auto& walk : *walks) {
    EXPECT_LE(walk.size(), 7u);
  }
}

}  // namespace
}  // namespace actor
