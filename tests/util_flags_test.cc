#include "util/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace actor {
namespace {

Flags MakeFlags(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  static std::vector<char*> argv;
  argv.clear();
  for (auto& s : storage) argv.push_back(s.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, ParsesKeyValue) {
  Flags f = MakeFlags({"--dim=64", "--name=actor"});
  EXPECT_EQ(f.GetInt("dim", 0), 64);
  EXPECT_EQ(f.GetString("name", ""), "actor");
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  Flags f = MakeFlags({});
  EXPECT_EQ(f.GetInt("dim", 32), 32);
  EXPECT_EQ(f.GetString("name", "x"), "x");
  EXPECT_DOUBLE_EQ(f.GetDouble("scale", 1.5), 1.5);
  EXPECT_TRUE(f.GetBool("flag", true));
  EXPECT_FALSE(f.Has("dim"));
}

TEST(FlagsTest, BareFlagIsTrue) {
  Flags f = MakeFlags({"--verbose"});
  EXPECT_TRUE(f.GetBool("verbose", false));
  EXPECT_TRUE(f.Has("verbose"));
}

TEST(FlagsTest, BooleanValues) {
  Flags f = MakeFlags({"--a=true", "--b=1", "--c=yes", "--d=false",
                       "--e=0"});
  EXPECT_TRUE(f.GetBool("a", false));
  EXPECT_TRUE(f.GetBool("b", false));
  EXPECT_TRUE(f.GetBool("c", false));
  EXPECT_FALSE(f.GetBool("d", true));
  EXPECT_FALSE(f.GetBool("e", true));
}

TEST(FlagsTest, DoubleParsing) {
  Flags f = MakeFlags({"--scale=0.25"});
  EXPECT_DOUBLE_EQ(f.GetDouble("scale", 1.0), 0.25);
}

TEST(FlagsTest, NegativeNumbers) {
  Flags f = MakeFlags({"--offset=-3"});
  EXPECT_EQ(f.GetInt("offset", 0), -3);
}

TEST(FlagsTest, NonFlagArgumentsIgnored) {
  Flags f = MakeFlags({"positional", "-x=1", "--ok=2"});
  EXPECT_FALSE(f.Has("positional"));
  EXPECT_FALSE(f.Has("x"));
  EXPECT_EQ(f.GetInt("ok", 0), 2);
}

TEST(FlagsTest, ValueWithEquals) {
  Flags f = MakeFlags({"--expr=a=b"});
  EXPECT_EQ(f.GetString("expr", ""), "a=b");
}

TEST(FlagsTest, LastDuplicateWins) {
  Flags f = MakeFlags({"--k=1", "--k=2"});
  EXPECT_EQ(f.GetInt("k", 0), 2);
}

}  // namespace
}  // namespace actor
