#include "shard/vertex_partitioner.h"

#include <gtest/gtest.h>

#include <vector>

#include "shard/sharded_edge_store.h"
#include "shard/sharded_matrix.h"
#include "util/rng.h"

namespace actor {
namespace {

TEST(VertexPartitionerTest, SingleShardAssignsEverythingToZero) {
  PartitionSpec spec;
  spec.num_shards = 1;
  VertexPartitioner p(spec);
  for (VertexId v = 0; v < 100; ++v) {
    EXPECT_EQ(p.Assign(v, VertexType::kWord), 0);
  }
}

TEST(VertexPartitionerTest, HashIsStableAndInRange) {
  PartitionSpec spec;
  spec.num_shards = 4;
  VertexPartitioner p(spec);
  std::vector<int> counts(4, 0);
  for (VertexId v = 0; v < 4000; ++v) {
    const int s = p.Assign(v, VertexType::kLocation);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    // Stateless: the same id always maps to the same shard.
    EXPECT_EQ(p.Assign(v, VertexType::kLocation), s);
    ++counts[static_cast<std::size_t>(s)];
  }
  // SplitMix64 spreads dense ids near-uniformly; no shard may be starved.
  for (int c : counts) EXPECT_GT(c, 4000 / 8);
}

TEST(VertexPartitionerTest, RangeKeepsBlocksTogether) {
  PartitionSpec spec;
  spec.num_shards = 3;
  spec.strategy = ShardStrategy::kRange;
  spec.range_block = 10;
  VertexPartitioner p(spec);
  // Ids 0..9 share a block, 10..19 the next, round-robined across shards.
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(p.Assign(v, VertexType::kTime), 0);
  for (VertexId v = 10; v < 20; ++v) {
    EXPECT_EQ(p.Assign(v, VertexType::kTime), 1);
  }
  for (VertexId v = 30; v < 40; ++v) {
    EXPECT_EQ(p.Assign(v, VertexType::kTime), 0);
  }
}

TEST(VertexPartitionerTest, PerTypeOverrideSelectsStrategyByType) {
  PartitionSpec spec;
  spec.num_shards = 2;
  spec.strategy = ShardStrategy::kHash;
  spec.use_per_type = true;
  spec.per_type[static_cast<int>(VertexType::kTime)] = ShardStrategy::kRange;
  spec.per_type[static_cast<int>(VertexType::kWord)] = ShardStrategy::kHash;
  spec.range_block = 4;
  VertexPartitioner p(spec);
  // Temporal ids follow the range layout...
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(p.Assign(v, VertexType::kTime), 0);
  for (VertexId v = 4; v < 8; ++v) EXPECT_EQ(p.Assign(v, VertexType::kTime), 1);
  // ...while word ids hash (match the hash partitioner's answer).
  PartitionSpec hash_spec;
  hash_spec.num_shards = 2;
  VertexPartitioner hash(hash_spec);
  for (VertexId v = 0; v < 64; ++v) {
    EXPECT_EQ(p.Assign(v, VertexType::kWord),
              hash.Assign(v, VertexType::kWord));
  }
}

TEST(ShardMapTest, LocalIdsAreDenseAndOrderPreserving) {
  ShardMap map(3);
  PartitionSpec spec;
  spec.num_shards = 3;
  VertexPartitioner p(spec);
  for (VertexId v = 0; v < 300; ++v) {
    const int owner = p.Assign(v, VertexType::kUser);
    const int32_t local = map.AddVertex(v, owner);
    EXPECT_EQ(map.owner(v), owner);
    EXPECT_EQ(map.local_row(v), local);
    EXPECT_EQ(map.global_id(owner, local), v);
  }
  EXPECT_EQ(map.num_vertices(), 300);
  int32_t total = 0;
  for (int s = 0; s < 3; ++s) {
    total += map.shard_size(s);
    // The order-preserving invariant scatter-gather merging relies on:
    // each shard's global ids are strictly increasing in local-row order.
    const std::vector<VertexId>& globals = map.globals(s);
    for (std::size_t i = 1; i < globals.size(); ++i) {
      EXPECT_LT(globals[i - 1], globals[i]);
    }
  }
  EXPECT_EQ(total, 300);
}

TEST(ShardedMatrixTest, GatherReassemblesGlobalOrder) {
  const int32_t dim = 8;
  ShardMap map(2);
  PartitionSpec spec;
  spec.num_shards = 2;
  VertexPartitioner p(spec);
  ShardedEmbeddingMatrix m(2, dim);
  Rng rng(7);
  for (VertexId v = 0; v < 50; ++v) {
    const int owner = p.Assign(v, VertexType::kWord);
    map.AddVertex(v, owner);
    const int32_t local = m.AppendRow(owner, nullptr);
    // Stamp each row with its global id so gather order is checkable.
    for (int32_t d = 0; d < dim; ++d) {
      m.shard(owner).row(local)[d] = static_cast<float>(v * dim + d);
    }
  }
  EXPECT_EQ(m.total_rows(), 50);
  const EmbeddingMatrix flat = m.Gather(map);
  ASSERT_EQ(flat.rows(), 50);
  for (VertexId v = 0; v < 50; ++v) {
    for (int32_t d = 0; d < dim; ++d) {
      EXPECT_EQ(flat.row(v)[d], static_cast<float>(v * dim + d));
    }
  }
}

/// Builds a 2-shard map where even ids land on shard 0, odd on shard 1.
ShardMap ParityMap(int n) {
  ShardMap map(2);
  for (VertexId v = 0; v < n; ++v) map.AddVertex(v, v % 2);
  return map;
}

TEST(ShardedEdgeStoreTest, CrossShardEdgesReplicateToBothOwners) {
  ShardMap map = ParityMap(10);
  ShardedEdgeStore store;
  store.Reset(2, 0.01);
  store.Accumulate(0, 2, map);  // within shard 0
  store.Accumulate(1, 3, map);  // within shard 1
  store.Accumulate(0, 1, map);  // cross-shard: replicated to both
  EXPECT_EQ(store.shard(0).size(), 2u);  // {0,2} and {0,1}
  EXPECT_EQ(store.shard(1).size(), 2u);  // {1,3} and {0,1}
  // Replicas counted once: 3 distinct undirected edges.
  EXPECT_EQ(store.SizeUnique(map), 3u);
}

TEST(ShardedEdgeStoreTest, ReplicasDecayAndDropInLockstep) {
  ShardMap map = ParityMap(4);
  ShardedEdgeStore store;
  store.Reset(2, 0.5);
  store.Accumulate(0, 1, map, 1.0);  // cross-shard, weight 1.0
  EXPECT_FALSE(store.empty());
  // One decay tick to 0.6: both replicas still alive.
  store.Decay(0.6);
  EXPECT_EQ(store.shard(0).size(), 1u);
  EXPECT_EQ(store.shard(1).size(), 1u);
  // Next tick pushes 0.6 -> 0.36 below min_weight on both replicas at
  // once — the identical-history property that keeps them consistent.
  store.Decay(0.6);
  EXPECT_EQ(store.shard(0).size(), 0u);
  EXPECT_EQ(store.shard(1).size(), 0u);
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.SizeUnique(map), 0u);
}

TEST(ShardedEdgeStoreTest, VersionSumsReplicas) {
  ShardMap map = ParityMap(4);
  ShardedEdgeStore store;
  store.Reset(2, 0.01);
  const uint64_t v0 = store.version();
  store.Accumulate(0, 2, map);  // bumps shard 0 only
  const uint64_t v1 = store.version();
  EXPECT_GT(v1, v0);
  store.Accumulate(0, 1, map);  // bumps both replicas
  EXPECT_GT(store.version(), v1);
}

}  // namespace
}  // namespace actor
