#include "data/corpus.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace actor {
namespace {

RawRecord MakeRecord(int64_t id, int64_t user, const std::string& text,
                     std::vector<int64_t> mentions = {}) {
  RawRecord r;
  r.id = id;
  r.user_id = user;
  r.timestamp = 1000.0 * id;
  r.location = {static_cast<double>(id), 1.0};
  r.text = text;
  r.mentioned_user_ids = std::move(mentions);
  return r;
}

Corpus SmallCorpus() {
  Corpus c;
  c.Add(MakeRecord(0, 1, "coffee museum morning", {2}));
  c.Add(MakeRecord(1, 2, "museum gallery painting"));
  c.Add(MakeRecord(2, 3, "coffee espresso latte"));
  c.Add(MakeRecord(3, 1, "painting gallery coffee"));
  return c;
}

TEST(CorpusTest, SizeAndAccess) {
  Corpus c = SmallCorpus();
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.record(1).user_id, 2);
  EXPECT_FALSE(c.empty());
}

TEST(CorpusTest, DistinctUsersIncludesMentions) {
  Corpus c;
  c.Add(MakeRecord(0, 1, "x", {5}));
  c.Add(MakeRecord(1, 1, "y"));
  EXPECT_EQ(c.CountDistinctUsers(), 2u);
}

TEST(CorpusTest, MentionFraction) {
  Corpus c = SmallCorpus();
  EXPECT_DOUBLE_EQ(c.MentionFraction(), 0.25);
}

TEST(CorpusTest, MentionFractionEmptyCorpus) {
  Corpus c;
  EXPECT_DOUBLE_EQ(c.MentionFraction(), 0.0);
}

TEST(TokenizedCorpusTest, BuildMapsWords) {
  CorpusBuildOptions options;
  options.min_word_count = 1;
  auto result = TokenizedCorpus::Build(SmallCorpus(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const TokenizedCorpus& tc = *result;
  EXPECT_EQ(tc.size(), 4u);
  EXPECT_GE(tc.vocab().Lookup("coffee"), 0);
  // Each record's word ids resolve back to its words.
  const auto& rec = tc.record(0);
  ASSERT_EQ(rec.word_ids.size(), 3u);
  EXPECT_EQ(tc.vocab().word(rec.word_ids[0]), "coffee");
}

TEST(TokenizedCorpusTest, PreservesMetadata) {
  CorpusBuildOptions options;
  options.min_word_count = 1;
  auto result = TokenizedCorpus::Build(SmallCorpus(), options);
  ASSERT_TRUE(result.ok());
  const auto& rec = result->record(0);
  EXPECT_EQ(rec.id, 0);
  EXPECT_EQ(rec.user_id, 1);
  EXPECT_DOUBLE_EQ(rec.timestamp, 0.0);
  ASSERT_EQ(rec.mentioned_user_ids.size(), 1u);
  EXPECT_EQ(rec.mentioned_user_ids[0], 2);
}

TEST(TokenizedCorpusTest, MinWordCountPrunes) {
  Corpus c;
  c.Add(MakeRecord(0, 1, "frequent frequent unique"));
  c.Add(MakeRecord(1, 1, "frequent other"));
  CorpusBuildOptions options;
  options.min_word_count = 2;
  auto result = TokenizedCorpus::Build(c, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->vocab().Lookup("frequent"), 0);
  EXPECT_EQ(result->vocab().Lookup("unique"), -1);
}

TEST(TokenizedCorpusTest, DropsEmptyRecords) {
  Corpus c;
  c.Add(MakeRecord(0, 1, "museum park"));
  c.Add(MakeRecord(1, 2, "the of and"));  // all stopwords
  CorpusBuildOptions options;
  options.min_word_count = 1;
  auto result = TokenizedCorpus::Build(c, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
}

TEST(TokenizedCorpusTest, KeepEmptyRecordsWhenConfigured) {
  Corpus c;
  c.Add(MakeRecord(0, 1, "museum park"));
  c.Add(MakeRecord(1, 2, "the of and"));
  CorpusBuildOptions options;
  options.min_word_count = 1;
  options.drop_empty_records = false;
  auto result = TokenizedCorpus::Build(c, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
  EXPECT_TRUE(result->record(1).word_ids.empty());
}

TEST(TokenizedCorpusTest, VocabularyCapRespected) {
  Corpus c;
  c.Add(MakeRecord(0, 1, "aa bb cc dd ee ff gg hh"));
  CorpusBuildOptions options;
  options.min_word_count = 1;
  options.max_vocab_size = 3;
  auto result = TokenizedCorpus::Build(c, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->vocab().size(), 3);
}

TEST(TokenizedCorpusTest, EmptyCorpusIsError) {
  Corpus c;
  auto result = TokenizedCorpus::Build(c);
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(TokenizedCorpusTest, AllStopwordsIsError) {
  Corpus c;
  c.Add(MakeRecord(0, 1, "the of"));
  auto result = TokenizedCorpus::Build(c);
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(TokenizedCorpusTest, InvalidVocabSizeIsError) {
  CorpusBuildOptions options;
  options.max_vocab_size = 0;
  auto result = TokenizedCorpus::Build(SmallCorpus(), options);
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(RandomSplitTest, SizesCorrect) {
  auto split = RandomSplit(100, 10, 20, 7);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.size(), 70u);
  EXPECT_EQ(split->valid.size(), 10u);
  EXPECT_EQ(split->test.size(), 20u);
}

TEST(RandomSplitTest, PartitionIsDisjointAndComplete) {
  auto split = RandomSplit(50, 5, 10, 3);
  ASSERT_TRUE(split.ok());
  std::set<std::size_t> all;
  for (auto i : split->train) all.insert(i);
  for (auto i : split->valid) all.insert(i);
  for (auto i : split->test) all.insert(i);
  EXPECT_EQ(all.size(), 50u);
  EXPECT_EQ(*all.begin(), 0u);
  EXPECT_EQ(*all.rbegin(), 49u);
}

TEST(RandomSplitTest, DeterministicForSeed) {
  auto a = RandomSplit(30, 3, 6, 11);
  auto b = RandomSplit(30, 3, 6, 11);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->test, b->test);
  EXPECT_EQ(a->train, b->train);
}

TEST(RandomSplitTest, DifferentSeedsShuffleDifferently) {
  auto a = RandomSplit(100, 10, 10, 1);
  auto b = RandomSplit(100, 10, 10, 2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->test, b->test);
}

TEST(RandomSplitTest, OversizedSplitIsError) {
  auto split = RandomSplit(10, 6, 6, 1);
  EXPECT_TRUE(split.status().IsInvalidArgument());
}

TEST(RandomSplitTest, ZeroSizesAllowed) {
  auto split = RandomSplit(10, 0, 0, 1);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.size(), 10u);
}

TEST(SubsetTest, SelectsRequestedRecords) {
  CorpusBuildOptions options;
  options.min_word_count = 1;
  auto tc = TokenizedCorpus::Build(SmallCorpus(), options);
  ASSERT_TRUE(tc.ok());
  TokenizedCorpus sub = Subset(*tc, {2, 0});
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.record(0).id, 2);
  EXPECT_EQ(sub.record(1).id, 0);
  // Vocabulary is shared, ids still resolve.
  EXPECT_EQ(sub.vocab().size(), tc->vocab().size());
}

}  // namespace
}  // namespace actor
