#include "graph/node2vec_walk.h"

#include <gtest/gtest.h>

#include "baselines/node2vec.h"
#include "util/vec_math.h"

namespace actor {
namespace {

/// Two word cliques bridged by one edge (community structure node2vec
/// should capture).
Heterograph TwoCommunityGraph() {
  Heterograph g;
  for (int i = 0; i < 8; ++i) {
    g.AddVertex(VertexType::kWord, "w" + std::to_string(i));
  }
  auto clique = [&](int base) {
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) {
        EXPECT_TRUE(g.AccumulateEdge(base + i, base + j, 5.0).ok());
      }
    }
  };
  clique(0);
  clique(4);
  EXPECT_TRUE(g.AccumulateEdge(3, 4, 0.2).ok());
  EXPECT_TRUE(g.Finalize().ok());
  return g;
}

TEST(Node2vecWalkTest, RequiresFinalizedGraph) {
  Heterograph g;
  EXPECT_TRUE(GenerateNode2vecWalks(g, {}).status().IsFailedPrecondition());
}

TEST(Node2vecWalkTest, RejectsBadParameters) {
  Heterograph g = TwoCommunityGraph();
  Node2vecWalkOptions options;
  options.p = 0.0;
  EXPECT_TRUE(GenerateNode2vecWalks(g, options).status().IsInvalidArgument());
  options = Node2vecWalkOptions();
  options.q = -1.0;
  EXPECT_TRUE(GenerateNode2vecWalks(g, options).status().IsInvalidArgument());
  options = Node2vecWalkOptions();
  options.walk_length = 1;
  EXPECT_TRUE(GenerateNode2vecWalks(g, options).status().IsInvalidArgument());
}

TEST(Node2vecWalkTest, EdgelessGraphRejected) {
  Heterograph g;
  g.AddVertex(VertexType::kWord, "lonely");
  ASSERT_TRUE(g.Finalize().ok());
  EXPECT_TRUE(GenerateNode2vecWalks(g, {}).status().IsInvalidArgument());
}

TEST(Node2vecWalkTest, WalksFollowEdges) {
  Heterograph g = TwoCommunityGraph();
  auto walks = GenerateNode2vecWalks(g, {});
  ASSERT_TRUE(walks.ok());
  ASSERT_FALSE(walks->empty());
  for (const auto& walk : *walks) {
    for (std::size_t i = 0; i + 1 < walk.size(); ++i) {
      EXPECT_GT(g.EdgeWeight(walk[i], walk[i + 1]), 0.0);
    }
  }
}

TEST(Node2vecWalkTest, WalksStartEverywhere) {
  Heterograph g = TwoCommunityGraph();
  Node2vecWalkOptions options;
  options.walks_per_vertex = 2;
  auto walks = GenerateNode2vecWalks(g, options);
  ASSERT_TRUE(walks.ok());
  EXPECT_EQ(walks->size(), 8u * 2u);
}

TEST(Node2vecWalkTest, DeterministicForSeed) {
  Heterograph g = TwoCommunityGraph();
  auto a = GenerateNode2vecWalks(g, {});
  auto b = GenerateNode2vecWalks(g, {});
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) EXPECT_EQ((*a)[i], (*b)[i]);
}

TEST(Node2vecWalkTest, LowQExploresAcrossBridge) {
  // DFS-ish walks (low q) should cross the bridge more often than BFS-ish
  // walks (high q).
  Heterograph g = TwoCommunityGraph();
  auto crossings = [&](double q) {
    Node2vecWalkOptions options;
    options.p = 1.0;
    options.q = q;
    options.walks_per_vertex = 20;
    options.walk_length = 12;
    options.seed = 4;
    auto walks = GenerateNode2vecWalks(g, options);
    EXPECT_TRUE(walks.ok());
    int count = 0;
    for (const auto& walk : *walks) {
      for (std::size_t i = 0; i + 1 < walk.size(); ++i) {
        const bool left = walk[i] < 4;
        const bool next_left = walk[i + 1] < 4;
        if (left != next_left) ++count;
      }
    }
    return count;
  };
  EXPECT_GT(crossings(0.25), crossings(4.0));
}

TEST(Node2vecBaselineTest, SeparatesCommunities) {
  Heterograph g = TwoCommunityGraph();
  Node2vecOptions options;
  options.dim = 16;
  options.walk.walks_per_vertex = 10;
  options.walk.walk_length = 15;
  options.skipgram.epochs = 6;
  auto model = TrainNode2vec(g, options);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const double intra = Cosine(model->center.row(0), model->center.row(1), 16);
  const double inter = Cosine(model->center.row(0), model->center.row(6), 16);
  EXPECT_GT(intra, inter);
}

TEST(Node2vecBaselineTest, DeepWalkRuns) {
  Heterograph g = TwoCommunityGraph();
  Node2vecOptions options;
  options.dim = 16;
  options.walk.p = 9.0;  // overwritten by TrainDeepWalk
  options.skipgram.epochs = 2;
  auto model = TrainDeepWalk(g, options);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->center.rows(), 8);
  for (int r = 0; r < 8; ++r) {
    for (int d = 0; d < 16; ++d) {
      EXPECT_TRUE(std::isfinite(model->center.row(r)[d]));
    }
  }
}

}  // namespace
}  // namespace actor
