#include "util/string_util.h"

#include <gtest/gtest.h>

namespace actor {
namespace {

TEST(SplitTest, Basic) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(SplitTest, EmptyString) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(SplitTest, TrailingDelimiter) {
  const auto parts = Split("a,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "");
}

TEST(SplitWhitespaceTest, DropsEmptyTokens) {
  const auto parts = SplitWhitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[2], "baz");
}

TEST(SplitWhitespaceTest, AllWhitespace) {
  EXPECT_TRUE(SplitWhitespace(" \t\n ").empty());
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(JoinTest, SingleElement) { EXPECT_EQ(Join({"x"}, ","), "x"); }

TEST(JoinTest, Empty) { EXPECT_EQ(Join({}, ","), ""); }

TEST(JoinSplitTest, RoundTrip) {
  const std::vector<std::string> original = {"one", "two", "three"};
  EXPECT_EQ(Split(Join(original, "|"), '|'), original);
}

TEST(ToLowerTest, MixedCase) { EXPECT_EQ(ToLower("HeLLo123"), "hello123"); }

TEST(ToLowerTest, PunctuationUnchanged) {
  EXPECT_EQ(ToLower("ABC-_xyz"), "abc-_xyz");
}

TEST(TrimTest, BothEnds) { EXPECT_EQ(Trim("  hi \t"), "hi"); }

TEST(TrimTest, NoWhitespace) { EXPECT_EQ(Trim("hi"), "hi"); }

TEST(TrimTest, AllWhitespace) { EXPECT_EQ(Trim("   "), ""); }

TEST(TrimTest, Empty) { EXPECT_EQ(Trim(""), ""); }

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(StartsWith("foo", ""));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(StrPrintfTest, FormatsNumbers) {
  EXPECT_EQ(StrPrintf("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
}

TEST(StrPrintfTest, EmptyFormat) { EXPECT_EQ(StrPrintf("%s", ""), ""); }

TEST(StrPrintfTest, LongOutput) {
  const std::string s = StrPrintf("%0512d", 7);
  EXPECT_EQ(s.size(), 512u);
  EXPECT_EQ(s.back(), '7');
}

}  // namespace
}  // namespace actor
