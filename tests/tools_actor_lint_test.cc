// Fixture tests for tools/actor_lint: every rule must fire on a known-bad
// snippet, every allowed form must pass, and the suppression machinery
// (NOLINT / NOLINTNEXTLINE / staleness) must behave exactly as documented
// in docs/static-analysis.md. The suite drives LintRepo() on virtual file
// sets, so no filesystem or build tree is needed (except the one header
// self-containedness test, which shells out to the real compiler).

#include "tools/actor_lint/rules.h"

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tools/actor_lint/cfg.h"
#include "tools/actor_lint/lexer.h"

namespace actor_lint {
namespace {

std::vector<Finding> Lint(const std::vector<FileEntry>& files) {
  LintConfig config;
  config.compile_headers = false;
  return LintRepo(files, config);
}

int CountRule(const std::vector<Finding>& findings, const char* rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [rule](const Finding& f) { return f.rule == rule; }));
}

// --- Lexer -----------------------------------------------------------------

TEST(Lexer, BlanksCommentsAndStringsButKeepsOffsets) {
  const std::string src =
      "int a; // std::thread in a comment\n"
      "const char* s = \"std::thread in a string\";\n"
      "int b;\n";
  const LexedFile f = Lex("src/x.cc", src);
  EXPECT_EQ(f.code.size(), src.size());
  EXPECT_EQ(f.code.find("thread"), std::string::npos);
  EXPECT_NE(f.code.find("int b;"), std::string::npos);
  ASSERT_EQ(f.comments.size(), 1u);
  EXPECT_EQ(f.comments[0].line, 1);
  EXPECT_NE(f.comments[0].text.find("std::thread"), std::string::npos);
  EXPECT_EQ(f.LineAt(f.code.find("int b;")), 3);
}

TEST(Lexer, RawStringsAndDigitSeparators) {
  const std::string src =
      "auto r = R\"x(std::thread rand( time( )x\";\n"
      "int n = 1'000'000;  // separator, not a char literal\n"
      "char c = 'r';\n"
      "int rand_count;\n";
  const LexedFile f = Lex("src/x.cc", src);
  EXPECT_EQ(f.code.find("thread"), std::string::npos);
  EXPECT_NE(f.code.find("1'000'000"), std::string::npos);
  EXPECT_NE(f.code.find("rand_count"), std::string::npos);
}

TEST(Lexer, DisabledRegionsAreBlankedAndDefineBodiesKept) {
  const std::string src =
      "#if 0\n"
      "std::thread dead;\n"
      "#endif\n"
      "#define BAD() srand(42)\n"
      "#include \"util/rng.h\"\n"
      "#include <vector>\n";
  const LexedFile f = Lex("src/x.cc", src);
  EXPECT_EQ(f.code.find("thread"), std::string::npos);
  EXPECT_NE(f.code.find("srand(42)"), std::string::npos)
      << "macro bodies must stay visible so they cannot hide banned calls";
  ASSERT_EQ(f.includes.size(), 2u);
  EXPECT_EQ(f.includes[0].path, "util/rng.h");
  EXPECT_FALSE(f.includes[0].angled);
  EXPECT_EQ(f.includes[1].path, "vector");
  EXPECT_TRUE(f.includes[1].angled);
}

// --- R1: actor-thread ------------------------------------------------------

TEST(RuleThread, FiresOnRawStdThread) {
  const auto findings = Lint({{"src/x.cc",
                              "#include <thread>\n"
                              "std::thread t;\n"
                              "auto f = std::async([] {});\n"}});
  EXPECT_EQ(CountRule(findings, kRuleThread), 2);
  EXPECT_EQ(findings[0].line, 2);
}

TEST(RuleThread, AllowsHardwareConcurrencyAndThreadPool) {
  const auto findings =
      Lint({{"src/x.cc",
            "unsigned n = std::thread::hardware_concurrency();\n"},
           {"src/util/thread_pool.cc", "std::thread worker([] {});\n"},
           {"src/y.cc", "// std::thread only in a comment\n"
                        "const char* s = \"std::async\";\n"}});
  EXPECT_EQ(CountRule(findings, kRuleThread), 0);
}

// --- R2: actor-rng ---------------------------------------------------------

TEST(RuleRng, FiresOnEveryBannedForm) {
  const auto findings = Lint({{"src/x.cc",
                              "int a = rand();\n"
                              "void f() { srand(7); }\n"
                              "long t = time(nullptr);\n"
                              "long u = std::time(nullptr);\n"
                              "std::random_device rd;\n"
                              "auto n = std::chrono::system_clock::now();\n"}});
  EXPECT_EQ(CountRule(findings, kRuleRng), 6);
}

TEST(RuleRng, AllowsMemberCallsQualifiedCallsAndBlessedFiles) {
  const auto findings =
      Lint({{"src/x.cc",
            "double v = stopwatch.time();\n"   // member call
            "double w = clock->time();\n"      // member via pointer
            "int z = Scheduler::time(3);\n"},  // non-std qualifier
           {"src/util/rng.h", "std::random_device rd;\n"},
           {"src/util/stopwatch.h",
            "auto t = std::chrono::system_clock::now();\n"}});
  EXPECT_EQ(CountRule(findings, kRuleRng), 0);
}

// --- R3: actor-simd-aligned ------------------------------------------------

TEST(RuleSimdAligned, FiresOnAlignedLoadStoreStream) {
  const auto findings = Lint({{"src/util/k.cc",
                              "__m256 v = _mm256_load_ps(p);\n"
                              "_mm_store_pd(q, w);\n"
                              "_mm512_stream_ps(r, x);\n"}});
  EXPECT_EQ(CountRule(findings, kRuleSimdAligned), 3);
}

TEST(RuleSimdAligned, AllowsUnalignedFormsAndNonSrcFiles) {
  const auto findings =
      Lint({{"src/util/k.cc",
            "__m256 v = _mm256_loadu_ps(p);\n"
            "_mm256_storeu_pd(q, w);\n"
            "__m128 s = _mm_load_ss(p);\n"},  // scalar load, no alignment
           {"bench/k.cc", "__m256 v = _mm256_load_ps(p);\n"}});
  EXPECT_EQ(CountRule(findings, kRuleSimdAligned), 0);
}

// --- R4: actor-hogwild -----------------------------------------------------

TEST(RuleHogwild, FiresOnDirectRowSubscriptInDispatchedLambda) {
  const auto findings = Lint({{"src/embedding/x.cc",
                              "void f() {\n"
                              "  pool->ShardedRange(0, n, [&](int s) {\n"
                              "    m.row(u)[0] += 1.0f;\n"
                              "  });\n"
                              "}\n"}});
  ASSERT_EQ(CountRule(findings, kRuleHogwild), 1);
  EXPECT_EQ(findings[0].line, 3);
}

TEST(RuleHogwild, FiresInsideAnnotatedRegion) {
  const auto findings = Lint({{"src/other/x.cc",  // outside auto-detect dirs
                              "// actor-lint: hogwild-region\n"
                              "void Shard() {\n"
                              "  float v = ctx->row(u)[k];\n"
                              "}\n"}});
  ASSERT_EQ(CountRule(findings, kRuleHogwild), 1);
  EXPECT_EQ(findings[0].line, 3);
}

TEST(RuleHogwild, AllowsRelaxedAccessorsKernelCallsAndOutsideCode) {
  const auto findings =
      Lint({{"src/embedding/x.cc",
            "void f() {\n"
            "  pool->ShardedRange(0, n, [&](int s) {\n"
            "    float v = RelaxedLoad(&m.row(u)[k]);\n"
            "    RelaxedStore(&m.row(u)[k], v);\n"
            "    Add(grad.data(), m.row(u), dim);\n"
            "  });\n"
            "  m.row(u)[0] = 1.0f;  // sequential code outside the region\n"
            "}\n"}});
  EXPECT_EQ(CountRule(findings, kRuleHogwild), 0);
}

TEST(RuleHogwild, FiresOnMemberDirtySetWriteInDispatchedLambda) {
  // DirtyRowSet has no atomics: marking a member set shared across shards
  // from inside a hogwild region is a data race (the delta-publish
  // contract routes marks through shard-local sets, merged at barriers).
  const auto findings = Lint({{"src/core/x.cc",
                              "void f() {\n"
                              "  pool->ShardedRange(0, n, [&](int s) {\n"
                              "    dirty_.Mark(u);\n"
                              "  });\n"
                              "}\n"}});
  ASSERT_EQ(CountRule(findings, kRuleHogwild), 1);
  EXPECT_EQ(findings[0].line, 3);
}

TEST(RuleHogwild, FiresOnMemberDirtySetWriteInAnnotatedRegion) {
  const auto findings = Lint({{"src/other/x.cc",  // outside auto-detect dirs
                              "// actor-lint: hogwild-region\n"
                              "void Shard() {\n"
                              "  dirty_.MarkAll();\n"
                              "  this->dirty_.Clear();\n"
                              "}\n"}});
  EXPECT_EQ(CountRule(findings, kRuleHogwild), 2);
}

TEST(RuleHogwild, AllowsShardLocalDirtySetWrites) {
  const auto findings =
      Lint({{"src/core/x.cc",
            "// actor-lint: hogwild-region\n"
            "void Shard(DirtyRowSet* dirty) {\n"
            "  dirty->Mark(u);\n"                // threaded shard parameter
            "  DirtyRowSet local;\n"
            "  local.Mark(v);\n"                 // shard-local value
            "  shard_dirty_[s].Mark(w);\n"       // subscripted per-shard slot
            "}\n"
            "void Merge() {\n"
            "  dirty_.Mark(u);\n"  // sequential code outside any region
            "  dirty_.Clear();\n"
            "}\n"}});
  EXPECT_EQ(CountRule(findings, kRuleHogwild), 0);
}

// --- R8: actor-serve-readonly ----------------------------------------------

TEST(RuleServeReadOnly, FiresOnMutatorCallsInEvalAndServe) {
  const auto findings =
      Lint({{"src/serve/x.cc",
            "void f(EmbeddingMatrix& m) {\n"
            "  m.InitUniform(16, rng);\n"
            "  m.SetRow(0, v.data());\n"
            "}\n"},
           {"src/eval/y.cc",
            "void g(EmbeddingMatrix* m) {\n"
            "  m->InitZero(8);\n"
            "  m->AppendRows(4);\n"
            "}\n"}});
  EXPECT_EQ(CountRule(findings, kRuleServeReadOnly), 4);
}

TEST(RuleServeReadOnly, FiresOnRowElementWrites) {
  const auto findings = Lint({{"src/eval/x.cc",
                              "void f() {\n"
                              "  m.row(u)[0] = 1.0f;\n"
                              "  m.row(u)[1] += 2.0f;\n"
                              "  snap->center().row(v)[k] *= 0.5f;\n"
                              "}\n"}});
  ASSERT_EQ(CountRule(findings, kRuleServeReadOnly), 3);
  EXPECT_EQ(findings[0].line, 2);
}

TEST(RuleServeReadOnly, FiresOnRowInMutatedKernelArg) {
  const auto findings =
      Lint({{"src/serve/x.cc",
            "void f() {\n"
            "  Axpy(0.1f, g.data(), m.row(u), dim);\n"
            "  Scale(0.5f, m.row(u), dim);\n"
            "  Zero(m.row(u), dim);\n"
            "  FusedGradStep(g, c.row(a), x.row(b), grad.data(), dim);\n"
            "  RelaxedStore(&m.row(u)[k], v);\n"
            "}\n"}});
  EXPECT_EQ(CountRule(findings, kRuleServeReadOnly), 5);
}

TEST(RuleServeReadOnly, AllowsReadsAndOtherDirectories) {
  const auto findings =
      Lint({{"src/eval/x.cc",
            "void f() {\n"
            "  const float* r = m.row(u);\n"
            "  float v = m.row(u)[0];\n"
            "  bool eq = m.row(u)[0] == 1.0f;\n"
            "  float d = Dot(q, m.row(u), dim);\n"
            "  Add(center.row(v), out->data(), dim);\n"
            "  DotAndNorm2(q, m.row(u), dim, &dot, &n2);\n"
            "}\n"},
           {"src/embedding/y.cc",  // mutation fine outside eval/serve
            "void g() {\n"
            "  m.row(u)[0] = 1.0f;\n"
            "  m.InitUniform(16, rng);\n"
            "}\n"}});
  EXPECT_EQ(CountRule(findings, kRuleServeReadOnly), 0);
}

TEST(RuleServeReadOnly, SuppressibleWithNolint) {
  const auto findings =
      Lint({{"src/serve/x.cc",
            "void f() {\n"
            "  m.row(u)[0] = 1.0f;  // NOLINT(actor-serve-readonly)\n"
            "}\n"}});
  EXPECT_EQ(CountRule(findings, kRuleServeReadOnly), 0);
  EXPECT_EQ(CountRule(findings, kRuleStaleNolint), 0);
}

// --- R5b: actor-include-cycle ----------------------------------------------

TEST(RuleIncludeCycle, FiresOnceOnACycle) {
  const auto findings = Lint({{"src/a.h", "#include \"b.h\"\n"},
                             {"src/b.h", "#include \"util/c.h\"\n"},
                             {"src/util/c.h", "#include \"a.h\"\n"}});
  ASSERT_EQ(CountRule(findings, kRuleIncludeCycle), 1);
  EXPECT_NE(findings[0].message.find("src/a.h"), std::string::npos);
  EXPECT_NE(findings[0].message.find("src/util/c.h"), std::string::npos);
}

TEST(RuleIncludeCycle, AcyclicGraphIsClean) {
  const auto findings = Lint({{"src/a.h", "#include \"b.h\"\n"},
                             {"src/b.h", "#include <vector>\n"},
                             {"src/c.cc", "#include \"a.h\"\n"
                                          "#include \"b.h\"\n"}});
  EXPECT_EQ(CountRule(findings, kRuleIncludeCycle), 0);
}

// --- R5a: actor-header-self ------------------------------------------------

TEST(RuleHeaderSelf, CompileCheckAttributesTheBrokenHeader) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::temp_directory_path() / "actor_lint_hdr_test";
  fs::create_directories(root / "src");
  const auto write = [&root](const char* rel, const char* text) {
    std::ofstream(root / rel) << text;
  };
  write("src/good.h", "#include <vector>\ninline int G() { return 1; }\n");
  write("src/bad.h", "inline int B() { return UndeclaredThing(); }\n");

  std::vector<FileEntry> files = {
      {"src/good.h", "#include <vector>\ninline int G() { return 1; }\n"},
      {"src/bad.h", "inline int B() { return UndeclaredThing(); }\n"}};
  LintConfig config;
  config.root = root.string();
  config.compile_headers = true;
  config.compile_flags = {"-std=c++20"};
  const auto findings = LintRepo(files, config);
  ASSERT_EQ(CountRule(findings, kRuleHeaderSelf), 1);
  EXPECT_EQ(findings[0].file, "src/bad.h");
  fs::remove_all(root);
}

// --- R6: actor-test-reg ----------------------------------------------------

TEST(RuleTestReg, FiresInBothDirections) {
  const auto findings =
      Lint({{"tests/orphan_test.cc", "int main() {}\n"},
           {"tests/CMakeLists.txt",
            "# actor_test(commented_out_test) must be ignored\n"
            "actor_test(ghost_test LABELS tsan)\n"}});
  ASSERT_EQ(CountRule(findings, kRuleTestReg), 2);
  EXPECT_EQ(findings[0].file, "tests/CMakeLists.txt");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("ghost_test"), std::string::npos);
  EXPECT_EQ(findings[1].file, "tests/orphan_test.cc");
}

TEST(RuleTestReg, MatchedRegistrationsAreClean) {
  const auto findings =
      Lint({{"tests/foo_test.cc", "int main() {}\n"},
           {"tests/CMakeLists.txt", "actor_test(foo_test)\n"}});
  EXPECT_EQ(CountRule(findings, kRuleTestReg), 0);
}

// --- Suppressions ----------------------------------------------------------

TEST(Suppression, NolintOnSameLineSuppresses) {
  const auto findings =
      Lint({{"src/x.cc", "int a = rand();  // NOLINT(actor-rng) fixture\n"}});
  EXPECT_EQ(CountRule(findings, kRuleRng), 0);
  EXPECT_EQ(CountRule(findings, kRuleStaleNolint), 0);
}

TEST(Suppression, NolintNextLineAndWildcard) {
  const auto findings = Lint({{"src/x.cc",
                              "// NOLINTNEXTLINE(actor-rng)\n"
                              "int a = rand();\n"
                              "std::thread t;  // NOLINT(actor-*)\n"}});
  EXPECT_EQ(CountRule(findings, kRuleRng), 0);
  EXPECT_EQ(CountRule(findings, kRuleThread), 0);
  EXPECT_EQ(CountRule(findings, kRuleStaleNolint), 0);
}

TEST(Suppression, StaleNolintBecomesAFinding) {
  // An actor-rule NOLINT that no longer suppresses anything must fail
  // the lint, so silenced findings cannot rot in place. (Writing the
  // paren syntax out here would register a real suppression — the
  // analyzer scans this file too.)
  const auto findings =
      Lint({{"src/x.cc", "int clean = 0;  // NOLINT(actor-thread)\n"}});
  ASSERT_EQ(CountRule(findings, kRuleStaleNolint), 1);
  EXPECT_EQ(findings[0].line, 1);
}

TEST(Suppression, PartiallyStaleListReportsOnlyTheDeadEntry) {
  const auto findings = Lint(
      {{"src/x.cc",
        "int a = rand();  // NOLINT(actor-rng,actor-thread) half stale\n"}});
  EXPECT_EQ(CountRule(findings, kRuleRng), 0);
  ASSERT_EQ(CountRule(findings, kRuleStaleNolint), 1);
  EXPECT_NE(findings[0].message.find("actor-thread"), std::string::npos);
}

TEST(Suppression, NonActorNolintsAreIgnored) {
  // clang-tidy style suppressions for other tools are not ours to police —
  // and they do not suppress actor findings either.
  const auto findings = Lint(
      {{"src/x.cc",
        "int a = rand();  // NOLINT(cppcoreguidelines-avoid-magic-numbers)\n"}});
  EXPECT_EQ(CountRule(findings, kRuleRng), 1);
  EXPECT_EQ(CountRule(findings, kRuleStaleNolint), 0);
}

// --- Interprocedural R4: call-graph HOGWILD propagation --------------------

TEST(CallGraphHogwild, PropagatesIntoHelperWithZeroAnnotations) {
  const auto findings = Lint({{"src/embedding/x.cc",
                              "void Helper(M& m) {\n"
                              "  m.row(u)[0] += 1.0f;\n"
                              "}\n"
                              "void f(M& m) {\n"
                              "  pool->ShardedRange(0, n, [&](int s) {\n"
                              "    Helper(m);\n"
                              "  });\n"
                              "}\n"}});
  ASSERT_EQ(CountRule(findings, kRuleHogwild), 1);
  EXPECT_EQ(findings[0].line, 2);
}

TEST(CallGraphHogwild, PropagatesTwoHopsAcrossFiles) {
  const auto findings = Lint(
      {{"src/embedding/a.cc",
        "void f(M& m) {\n"
        "  pool->ParallelFor(0, n, [&](int i) { StepOne(m); });\n"
        "}\n"},
       {"src/core/b.cc",
        "void StepOne(M& m) {\n"
        "  StepTwo(m);\n"
        "}\n"
        "void StepTwo(M& m) {\n"
        "  m.row(u)[0] += 1.0f;\n"
        "}\n"}});
  ASSERT_EQ(CountRule(findings, kRuleHogwild), 1);
  EXPECT_EQ(findings[0].file, "src/core/b.cc");
  EXPECT_EQ(findings[0].line, 5);
}

TEST(CallGraphHogwild, LambdaVariableDispatchedByName) {
  // `pool->ShardedRange(0, n, shard)` seeds the named lambda's body even
  // though no lambda literal appears at the dispatch site.
  const auto findings = Lint({{"src/embedding/x.cc",
                              "void f(M& m) {\n"
                              "  auto shard = [&](int t, std::size_t lo,\n"
                              "                   std::size_t hi) {\n"
                              "    m.row(u)[0] += 1.0f;\n"
                              "  };\n"
                              "  pool->ShardedRange(0, n, shard);\n"
                              "}\n"}});
  ASSERT_EQ(CountRule(findings, kRuleHogwild), 1);
  EXPECT_EQ(findings[0].line, 4);
}

TEST(CallGraphHogwild, LambdaVariableCalledFromDispatchLambda) {
  const auto findings = Lint({{"src/embedding/x.cc",
                              "void f(M& m) {\n"
                              "  auto shard = [&](int t) {\n"
                              "    m.row(u)[0] += 1.0f;\n"
                              "  };\n"
                              "  pool->ShardedRange(0, n, [&](int a) {\n"
                              "    shard(a);\n"
                              "  });\n"
                              "}\n"}});
  ASSERT_EQ(CountRule(findings, kRuleHogwild), 1);
  EXPECT_EQ(findings[0].line, 3);
}

TEST(CallGraphHogwild, OverloadsAreDiscriminatedByArity) {
  // The 2-arg Step is dispatched; the 1-arg overload's row write must not
  // fire — the conservative resolver still prunes by argument count.
  const auto findings = Lint({{"src/embedding/x.cc",
                              "void Step(M& m, int k) {\n"
                              "  m.row(u)[0] += 1.0f;\n"
                              "}\n"
                              "void Step(M& m) {\n"
                              "  m.row(u)[1] += 2.0f;\n"
                              "}\n"
                              "void f(M& m) {\n"
                              "  pool->ShardedRange(0, n, [&](int s) {\n"
                              "    Step(m, s);\n"
                              "  });\n"
                              "}\n"}});
  ASSERT_EQ(CountRule(findings, kRuleHogwild), 1);
  EXPECT_EQ(findings[0].line, 2);
}

TEST(CallGraphHogwild, MemberCallReachesOnlyTheMethod) {
  // `agg.Score(m)` is a member call: it resolves to Agg::Score, not the
  // free function of the same name.
  const auto findings = Lint({{"src/embedding/x.cc",
                              "struct Agg {\n"
                              "  void Score(M& m) {\n"
                              "    m.row(u)[0] += 1.0f;\n"
                              "  }\n"
                              "};\n"
                              "void Score(M& m) {\n"
                              "  m.row(u)[1] += 2.0f;\n"
                              "}\n"
                              "void f(Agg& agg, M& m) {\n"
                              "  pool->ParallelFor(0, n, [&](int i) {\n"
                              "    agg.Score(m);\n"
                              "  });\n"
                              "}\n"}});
  ASSERT_EQ(CountRule(findings, kRuleHogwild), 1);
  EXPECT_EQ(findings[0].line, 3);
}

TEST(CallGraphHogwild, RecursionTerminates) {
  const auto findings = Lint({{"src/embedding/x.cc",
                              "void Walk(M& m, int d) {\n"
                              "  if (d > 0) Walk(m, d - 1);\n"
                              "  m.row(u)[0] += 1.0f;\n"
                              "}\n"
                              "void f(M& m) {\n"
                              "  pool->ShardedRange(0, n, [&](int s) {\n"
                              "    Walk(m, s);\n"
                              "  });\n"
                              "}\n"}});
  ASSERT_EQ(CountRule(findings, kRuleHogwild), 1);
  EXPECT_EQ(findings[0].line, 3);
}

TEST(CallGraphHogwild, DerivedAnnotationIsReportedRedundant) {
  // The helper is reachable from the dispatch, so the manual annotation
  // adds nothing: the lint asks for its removal at the comment line.
  const auto findings = Lint({{"src/embedding/x.cc",
                              "void f(M& m) {\n"
                              "  pool->ShardedRange(0, n, [&](int s) {\n"
                              "    Helper(m);\n"
                              "  });\n"
                              "}\n"
                              "// actor-lint: hogwild-region\n"
                              "void Helper(M& m) {\n"
                              "  RelaxedStore(&m.row(u)[0], 1.0f);\n"
                              "}\n"}});
  ASSERT_EQ(CountRule(findings, kRuleHogwild), 1);
  EXPECT_EQ(findings[0].line, 6);
  EXPECT_NE(findings[0].message.find("redundant"), std::string::npos);
}

// --- R9: actor-snapshot-lifetime -------------------------------------------

TEST(RuleSnapshotLifetime, FiresOnGetFromTheTemporary) {
  const auto findings =
      Lint({{"src/serve/x.cc",
            "void f(SnapshotStore& store) {\n"
            "  const ModelSnapshot* s = store.Acquire().get();\n"
            "  Use(s);\n"
            "}\n"}});
  ASSERT_EQ(CountRule(findings, kRuleSnapshotLifetime), 1);
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("temporary"), std::string::npos);
}

TEST(RuleSnapshotLifetime, FiresOnMemberAndStaticStores) {
  const auto findings =
      Lint({{"src/serve/x.cc",
            "void f(const OnlineActor& actor) {\n"
            "  auto snap = actor.CurrentSnapshot();\n"
            "  snap_ = snap.get();\n"
            "  static const ModelSnapshot* cached = snap.get();\n"
            "}\n"}});
  ASSERT_EQ(CountRule(findings, kRuleSnapshotLifetime), 2);
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_NE(findings[0].message.find("member"), std::string::npos);
  EXPECT_EQ(findings[1].line, 4);
  EXPECT_NE(findings[1].message.find("static"), std::string::npos);
}

TEST(RuleSnapshotLifetime, FiresWhenRawPointerCrossesDispatch) {
  const auto findings =
      Lint({{"src/serve/x.cc",
            "void f(SnapshotStore& store, ThreadPool* pool) {\n"
            "  auto snap = store.Acquire();\n"
            "  pool->Submit([p = snap.get()] { Use(p); });\n"
            "}\n"}});
  ASSERT_EQ(CountRule(findings, kRuleSnapshotLifetime), 1);
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_NE(findings[0].message.find("dispatch"), std::string::npos);
}

TEST(RuleSnapshotLifetime, AllowsSharedPtrStoresAndPlainLocals) {
  const auto findings =
      Lint({{"src/serve/x.cc",
            "void f(SnapshotStore& store) {\n"
            "  auto snap = store.Acquire();\n"
            "  snapshot_ = snap;\n"                // shared_ptr member: fine
            "  const auto& c = snap->center();\n"  // deref, not .get()
            "  const ModelSnapshot* local = snap.get();\n"  // plain local
            "  Use(local);\n"
            "}\n"},
           // The rule polices src/ only — tooling may hold raw pointers.
           {"tools/x.cc",
            "void g(SnapshotStore& store) {\n"
            "  auto p = store.Acquire().get();\n"
            "}\n"}});
  EXPECT_EQ(CountRule(findings, kRuleSnapshotLifetime), 0);
}

// --- R10: actor-hot-path-blocking ------------------------------------------

TEST(RuleHotPath, BansMutexIoAndAllocInReachableHelpers) {
  const auto findings = Lint({{"src/embedding/x.cc",
                              "void Helper() {\n"
                              "  std::lock_guard<std::mutex> g(mu);\n"
                              "  printf(\"x\");\n"
                              "  std::vector<float> tmp(8);\n"
                              "}\n"
                              "void f() {\n"
                              "  pool->ShardedRange(0, n, [&](int s) {\n"
                              "    Helper();\n"
                              "  });\n"
                              "}\n"}});
  ASSERT_EQ(CountRule(findings, kRuleHotPath), 3);
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[1].line, 3);
  EXPECT_EQ(findings[2].line, 4);
  EXPECT_NE(findings[0].message.find("reachable from a HOGWILD region"),
            std::string::npos);
}

TEST(RuleHotPath, QueryRootMayAllocateButNotLock) {
  // The scoring entry point itself may build its result vector (scratch
  // at the boundary); taking a lock there still blocks the read path.
  const auto findings = Lint({{"src/serve/x.cc",
                              "struct QueryEngine {\n"
                              "  int QueryByVector(int k) const {\n"
                              "    std::vector<int> out(k);\n"
                              "    std::lock_guard<std::mutex> g(mu_);\n"
                              "    return out[0];\n"
                              "  }\n"
                              "};\n"}});
  ASSERT_EQ(CountRule(findings, kRuleHotPath), 1);
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_NE(findings[0].message.find("QueryEngine scoring path"),
            std::string::npos);
}

TEST(RuleHotPath, FollowsTheNeighborSearcherAlias) {
  // Methods defined through the `using NeighborSearcher = QueryEngine`
  // alias are canonicalized, so their callees join the scoring path.
  const auto findings = Lint({{"src/serve/x.cc",
                              "using NeighborSearcher = QueryEngine;\n"
                              "int NeighborSearcher::QueryNearest(int k)"
                              " const {\n"
                              "  return Score(k);\n"
                              "}\n"
                              "int Score(int k) {\n"
                              "  std::vector<int> tmp(k);\n"
                              "  return tmp[0];\n"
                              "}\n"}});
  ASSERT_EQ(CountRule(findings, kRuleHotPath), 1);
  EXPECT_EQ(findings[0].line, 6);
}

TEST(RuleHotPath, AllocationOffTheHotPathIsClean) {
  const auto findings = Lint({{"src/embedding/x.cc",
                              "void Cold() {\n"
                              "  std::vector<float> tmp(8);\n"
                              "  std::lock_guard<std::mutex> g(mu);\n"
                              "}\n"}});
  EXPECT_EQ(CountRule(findings, kRuleHotPath), 0);
}

// --- CFG construction ------------------------------------------------------

int BlockContaining(const Cfg& cfg, std::size_t offset) {
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    for (const CfgStmt& st : cfg.blocks[b].stmts) {
      if (st.begin <= offset && offset < st.end) return static_cast<int>(b);
    }
  }
  return -1;
}

// True when a non-empty path of CFG edges leads from `from` to `to`
// (from == to detects a cycle through a back edge).
bool Reaches(const Cfg& cfg, int from, int to) {
  std::set<int> seen;
  std::vector<int> work{from};
  while (!work.empty()) {
    const int b = work.back();
    work.pop_back();
    for (const int s : cfg.blocks[static_cast<std::size_t>(b)].succs) {
      if (s == to) return true;
      if (seen.insert(s).second) work.push_back(s);
    }
  }
  return false;
}

Cfg BuildBodyCfg(const std::string& code) {
  return BuildCfg(code, code.find('{'), code.rfind('}'));
}

TEST(Cfg, StraightLineBodyIsOneBlock) {
  const std::string code = "void f() { int a = 1; int b = 2; }";
  const Cfg cfg = BuildBodyCfg(code);
  const int ba = BlockContaining(cfg, code.find("int a"));
  const int bb = BlockContaining(cfg, code.find("int b"));
  ASSERT_NE(ba, -1);
  EXPECT_EQ(ba, bb);
  EXPECT_TRUE(Reaches(cfg, ba, cfg.exit_block));
}

TEST(Cfg, IfElseDiamondSplitsAndJoins) {
  const std::string code =
      "void f(bool c) {\n"
      "  int pre = 0;\n"
      "  if (c) { int t = 1; } else { int e = 2; }\n"
      "  int post = 3;\n"
      "}";
  const Cfg cfg = BuildBodyCfg(code);
  const int bt = BlockContaining(cfg, code.find("int t"));
  const int be = BlockContaining(cfg, code.find("int e"));
  const int bp = BlockContaining(cfg, code.find("int post"));
  ASSERT_NE(bt, -1);
  ASSERT_NE(be, -1);
  ASSERT_NE(bp, -1);
  EXPECT_NE(bt, be);
  EXPECT_FALSE(Reaches(cfg, bt, be));  // branches are exclusive...
  EXPECT_FALSE(Reaches(cfg, be, bt));
  EXPECT_TRUE(Reaches(cfg, bt, bp));  // ...and rejoin before `post`
  EXPECT_TRUE(Reaches(cfg, be, bp));
}

TEST(Cfg, WhileLoopHasABackEdge) {
  const std::string code =
      "void f(int n) {\n"
      "  int i = 0;\n"
      "  while (i < n) { i += 1; }\n"
      "  int post = 1;\n"
      "}";
  const Cfg cfg = BuildBodyCfg(code);
  const int body = BlockContaining(cfg, code.find("i += 1"));
  const int post = BlockContaining(cfg, code.find("int post"));
  ASSERT_NE(body, -1);
  ASSERT_NE(post, -1);
  EXPECT_TRUE(Reaches(cfg, body, body)) << "loop body must reach itself";
  EXPECT_TRUE(Reaches(cfg, body, post));
}

TEST(Cfg, EarlyReturnEdgesToExitOnly) {
  const std::string code =
      "void f(bool c) {\n"
      "  if (c) { return; }\n"
      "  int post = 0;\n"
      "}";
  const Cfg cfg = BuildBodyCfg(code);
  const int ret = BlockContaining(cfg, code.find("return"));
  const int post = BlockContaining(cfg, code.find("int post"));
  ASSERT_NE(ret, -1);
  ASSERT_NE(post, -1);
  EXPECT_FALSE(Reaches(cfg, ret, post));
  EXPECT_TRUE(Reaches(cfg, ret, cfg.exit_block));
  EXPECT_TRUE(Reaches(cfg, cfg.entry, post));
}

TEST(Cfg, ScopeEndTracksRaiiScopes) {
  const std::string code =
      "void f() {\n"
      "  {\n"
      "    std::lock_guard<std::mutex> g(mu_);\n"
      "    Use();\n"
      "  }\n"
      "  Post();\n"
      "}";
  const std::size_t body_end = code.rfind('}');
  const Cfg cfg = BuildCfg(code, code.find('{'), body_end);
  // The guard dies at the inner '}'; `Post()` lives to the body's '}'.
  EXPECT_EQ(ScopeEndAt(cfg, code.find("lock_guard"), body_end),
            code.find('}'));
  EXPECT_EQ(ScopeEndAt(cfg, code.find("Post"), body_end), body_end);
}

TEST(Cfg, ForwardDataflowUnionsFactsAtJoins) {
  const std::string code =
      "void f(bool c) {\n"
      "  if (c) { int t = 1; } else { int e = 2; }\n"
      "  int post = 3;\n"
      "}";
  const Cfg cfg = BuildBodyCfg(code);
  const int bt = BlockContaining(cfg, code.find("int t"));
  const int be = BlockContaining(cfg, code.find("int e"));
  const int bp = BlockContaining(cfg, code.find("int post"));
  const auto ins =
      ForwardDataflow(cfg, [&](int b, const std::set<int>& in) {
        std::set<int> out = in;
        if (b == bt) out.insert(1);
        if (b == be) out.insert(2);
        return out;
      });
  // A may-analysis joins both branches' facts before `post`.
  EXPECT_EQ(ins[static_cast<std::size_t>(bp)].count(1), 1u);
  EXPECT_EQ(ins[static_cast<std::size_t>(bp)].count(2), 1u);
  // Neither branch sees the other's fact on entry.
  EXPECT_EQ(ins[static_cast<std::size_t>(bt)].count(2), 0u);
  EXPECT_EQ(ins[static_cast<std::size_t>(be)].count(1), 0u);
}

TEST(Cfg, SerializationRoundTrips) {
  const std::string code =
      "void f(bool c) {\n"
      "  if (c) { return; }\n"
      "  while (c) { int i = 0; }\n"
      "}";
  const std::vector<Cfg> cfgs = {BuildBodyCfg(code)};
  std::string wire;
  SerializeCfgs(cfgs, &wire);
  std::vector<Cfg> parsed;
  std::size_t pos = 0;
  ASSERT_TRUE(ParseCfgs(wire, &pos, &parsed));
  EXPECT_EQ(pos, wire.size());
  ASSERT_EQ(parsed.size(), 1u);
  ASSERT_EQ(parsed[0].blocks.size(), cfgs[0].blocks.size());
  for (std::size_t b = 0; b < cfgs[0].blocks.size(); ++b) {
    EXPECT_EQ(parsed[0].blocks[b].succs, cfgs[0].blocks[b].succs);
    ASSERT_EQ(parsed[0].blocks[b].stmts.size(),
              cfgs[0].blocks[b].stmts.size());
    for (std::size_t s = 0; s < cfgs[0].blocks[b].stmts.size(); ++s) {
      EXPECT_EQ(parsed[0].blocks[b].stmts[s].begin,
                cfgs[0].blocks[b].stmts[s].begin);
      EXPECT_EQ(parsed[0].blocks[b].stmts[s].end,
                cfgs[0].blocks[b].stmts[s].end);
      EXPECT_EQ(parsed[0].blocks[b].stmts[s].scope_end,
                cfgs[0].blocks[b].stmts[s].scope_end);
    }
  }
}

// --- R11: actor-lock-order -------------------------------------------------

TEST(RuleLockOrder, FiresOnAnInconsistentAcquireOrder) {
  const auto findings =
      Lint({{"src/train/x.cc",
            "void TakeAB() {\n"
            "  std::lock_guard<std::mutex> a(mu_a_);\n"
            "  std::lock_guard<std::mutex> b(mu_b_);\n"
            "}\n"
            "void TakeBA() {\n"
            "  std::lock_guard<std::mutex> b(mu_b_);\n"
            "  std::lock_guard<std::mutex> a(mu_a_);\n"
            "}\n"}});
  ASSERT_EQ(CountRule(findings, kRuleLockOrder), 1);
  EXPECT_NE(findings[0].message.find("lock-order cycle"), std::string::npos);
  EXPECT_NE(findings[0].message.find("mu_a_"), std::string::npos);
  EXPECT_NE(findings[0].message.find("mu_b_"), std::string::npos);
}

TEST(RuleLockOrder, FindsATwoHopInterproceduralCycle) {
  // Neither function sees both locks lexically: the cycle only exists
  // once held-sets propagate across the call graph via summaries.
  const auto findings =
      Lint({{"src/train/a.cc",
            "void LockB() { std::lock_guard<std::mutex> g(mu_b_); }\n"
            "void TakeAThenB() {\n"
            "  std::lock_guard<std::mutex> g(mu_a_);\n"
            "  LockB();\n"
            "}\n"},
           {"src/train/b.cc",
            "void LockA() { std::lock_guard<std::mutex> g(mu_a_); }\n"
            "void TakeBThenA() {\n"
            "  std::lock_guard<std::mutex> g(mu_b_);\n"
            "  LockA();\n"
            "}\n"}});
  ASSERT_EQ(CountRule(findings, kRuleLockOrder), 1);
  EXPECT_NE(findings[0].message.find("lock-order cycle"), std::string::npos);
}

TEST(RuleLockOrder, FiresWhenALockIsHeldAcrossAPublish) {
  const auto findings =
      Lint({{"src/train/x.cc",
            "void f(SnapshotStore& store, Snap s) {\n"
            "  std::lock_guard<std::mutex> g(mu_);\n"
            "  store.Publish(std::move(s));\n"
            "}\n"}});
  ASSERT_EQ(CountRule(findings, kRuleLockOrder), 1);
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_NE(findings[0].message.find("held across Publish"),
            std::string::npos);
}

TEST(RuleLockOrder, FiresWhenACalleeReachesADispatch) {
  const auto findings =
      Lint({{"src/train/x.cc",
            "void Kick(ThreadPool* pool) { pool->Submit([] {}); }\n"
            "void f(ThreadPool* pool) {\n"
            "  std::lock_guard<std::mutex> g(mu_);\n"
            "  Kick(pool);\n"
            "}\n"}});
  ASSERT_EQ(CountRule(findings, kRuleLockOrder), 1);
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_NE(findings[0].message.find("reaches a pool dispatch"),
            std::string::npos);
}

TEST(RuleLockOrder, ConsistentOrderAndScopedReleaseAreClean) {
  const auto findings =
      Lint({{"src/train/x.cc",
            // Same global order in both functions: edge a->b only.
            "void A1() {\n"
            "  std::lock_guard<std::mutex> a(mu_a_);\n"
            "  std::lock_guard<std::mutex> b(mu_b_);\n"
            "}\n"
            // scoped_lock acquires its whole set atomically: no
            // intra-event edges, deadlock-free by construction.
            "void A2() { std::scoped_lock l(mu_b_, mu_a_); }\n"
            // Brace-scoped guard released before the dispatch.
            "void f(ThreadPool* pool) {\n"
            "  {\n"
            "    std::lock_guard<std::mutex> g(mu_);\n"
            "    counter_ += 1;\n"
            "  }\n"
            "  pool->Submit([] {});\n"
            "}\n"}});
  EXPECT_EQ(CountRule(findings, kRuleLockOrder), 0);
}

TEST(RuleLockOrder, SuppressibleWithNolint) {
  const auto findings =
      Lint({{"src/train/x.cc",
            "void f(SnapshotStore& store, Snap s) {\n"
            "  std::lock_guard<std::mutex> g(mu_);\n"
            "  store.Publish(std::move(s));  // NOLINT(actor-lock-order)\n"
            "}\n"}});
  EXPECT_EQ(CountRule(findings, kRuleLockOrder), 0);
  EXPECT_EQ(CountRule(findings, kRuleStaleNolint), 0);
}

// --- R12: actor-memory-order -----------------------------------------------

TEST(RuleMemoryOrder, FiresOnNonRelaxedInsideAHogwildRegion) {
  const auto findings =
      Lint({{"src/embedding/x.cc",
            "void f(ThreadPool* pool) {\n"
            "  pool->ShardedRange(0, n, [&](int s) {\n"
            "    hits_.fetch_add(1);\n"
            "  });\n"
            "}\n"}});
  ASSERT_EQ(CountRule(findings, kRuleMemoryOrder), 1);
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_NE(findings[0].message.find("inside a HOGWILD region"),
            std::string::npos);
  EXPECT_NE(findings[0].message.find("relaxed-only"), std::string::npos);
}

TEST(RuleMemoryOrder, AllowsRelaxedInsideAHogwildRegion) {
  const auto findings =
      Lint({{"src/embedding/x.cc",
            "void f(ThreadPool* pool) {\n"
            "  pool->ShardedRange(0, n, [&](int s) {\n"
            "    hits_.fetch_add(1, std::memory_order_relaxed);\n"
            "  });\n"
            "}\n"}});
  EXPECT_EQ(CountRule(findings, kRuleMemoryOrder), 0);
}

TEST(RuleMemoryOrder, FiresOnDefaultedPublicationStore) {
  const auto findings =
      Lint({{"src/serve/x.cc",
            "std::atomic<std::shared_ptr<const ModelSnapshot>> slot_;\n"
            "void Install(std::shared_ptr<const ModelSnapshot> s) {\n"
            "  slot_.store(std::move(s));\n"
            "}\n"}});
  ASSERT_EQ(CountRule(findings, kRuleMemoryOrder), 1);
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_NE(findings[0].message.find("snapshot publication slot"),
            std::string::npos);
  EXPECT_NE(findings[0].message.find("release-store"), std::string::npos);
}

TEST(RuleMemoryOrder, AllowsTheReleaseAcquirePublicationPair) {
  const auto findings =
      Lint({{"src/serve/x.cc",
            "std::atomic<std::shared_ptr<const ModelSnapshot>> slot_;\n"
            "void Install(std::shared_ptr<const ModelSnapshot> s) {\n"
            "  slot_.store(std::move(s), std::memory_order_release);\n"
            "}\n"
            "std::shared_ptr<const ModelSnapshot> Current() {\n"
            "  return slot_.load(std::memory_order_acquire);\n"
            "}\n"}});
  EXPECT_EQ(CountRule(findings, kRuleMemoryOrder), 0);
}

TEST(RuleMemoryOrder, FiresOnDefaultedSeqCstOnTheQueryPath) {
  const auto findings =
      Lint({{"src/serve/x.cc",
            "std::atomic<int> epoch_;\n"
            "struct QueryEngine {\n"
            "  int QueryByVector(int k) const {\n"
            "    return epoch_.load() + k;\n"
            "  }\n"
            "};\n"}});
  ASSERT_EQ(CountRule(findings, kRuleMemoryOrder), 1);
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_NE(findings[0].message.find("on a hot path"), std::string::npos);
}

TEST(RuleMemoryOrder, DefaultedOrderOffTheHotPathIsClean) {
  const auto findings =
      Lint({{"src/serve/x.cc",
            // Defaulted seq_cst in cold code is the readable choice.
            "std::atomic<int> epoch_;\n"
            "void Cold() { epoch_.store(1); }\n"
            // load() on a non-atomic receiver is not an atomic op at all.
            "void Config(Store& s) { s.load(path_); }\n"}});
  EXPECT_EQ(CountRule(findings, kRuleMemoryOrder), 0);
}

TEST(RuleMemoryOrder, SuppressibleWithNolint) {
  const auto findings = Lint(
      {{"src/embedding/x.cc",
        "void f(ThreadPool* pool) {\n"
        "  pool->ShardedRange(0, n, [&](int s) {\n"
        "    hits_.fetch_add(1);  // NOLINT(actor-memory-order)\n"
        "  });\n"
        "}\n"}});
  EXPECT_EQ(CountRule(findings, kRuleMemoryOrder), 0);
  EXPECT_EQ(CountRule(findings, kRuleStaleNolint), 0);
}

// --- R13: actor-snapshot-escape --------------------------------------------

TEST(RuleSnapshotEscape, FiresOnMemberEscapeThroughAnIntermediateLocal) {
  // R9 allows the plain-local `.get()`; only the flow-sensitive pass sees
  // the local then reach a member.
  const auto findings =
      Lint({{"src/serve/x.cc",
            "void f(SnapshotStore& store) {\n"
            "  auto snap = store.Acquire();\n"
            "  const ModelSnapshot* p = snap.get();\n"
            "  snap_ = p;\n"
            "}\n"}});
  ASSERT_EQ(CountRule(findings, kRuleSnapshotEscape), 1);
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_NE(findings[0].message.find("escapes into a member"),
            std::string::npos);
  EXPECT_EQ(CountRule(findings, kRuleSnapshotLifetime), 0)
      << "R9 and R13 must not double-report the same flow";
}

TEST(RuleSnapshotEscape, FiresOnReturningTheRawPointer) {
  const auto findings =
      Lint({{"src/serve/x.cc",
            "const ModelSnapshot* Direct(SnapshotStore& store) {\n"
            "  auto snap = store.Acquire();\n"
            "  return snap.get();\n"
            "}\n"
            "const ModelSnapshot* ViaLocal(SnapshotStore& store) {\n"
            "  auto snap = store.Acquire();\n"
            "  const ModelSnapshot* p = snap.get();\n"
            "  return p;\n"
            "}\n"}});
  ASSERT_EQ(CountRule(findings, kRuleSnapshotEscape), 2);
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_NE(findings[0].message.find("returning snap.get()"),
            std::string::npos);
  EXPECT_EQ(findings[1].line, 8);
  EXPECT_NE(findings[1].message.find("returned to the caller"),
            std::string::npos);
}

TEST(RuleSnapshotEscape, FiresOnInsertIntoAMemberContainer) {
  const auto findings =
      Lint({{"src/serve/x.cc",
            "void f(SnapshotStore& store) {\n"
            "  auto snap = store.Acquire();\n"
            "  const ModelSnapshot* p = snap.get();\n"
            "  cache_.push_back(p);\n"
            "}\n"}});
  ASSERT_EQ(CountRule(findings, kRuleSnapshotEscape), 1);
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_NE(findings[0].message.find("long-lived container"),
            std::string::npos);
}

TEST(RuleSnapshotEscape, FiresOnEscapesAcrossTheDispatchBoundary) {
  const auto findings =
      Lint({{"src/serve/x.cc",
            // A raw local crossing into a task: no `.get()` inside the
            // span, so R9 is blind to it.
            "void Raw(SnapshotStore& store, ThreadPool* pool) {\n"
            "  auto snap = store.Acquire();\n"
            "  const ModelSnapshot* p = snap.get();\n"
            "  pool->Submit([p] { Score(*p); });\n"
            "}\n"
            // A by-ref capture of the shared_ptr into an async task: the
            // task can outlive the frame that owns `snap`.
            "void Ref(SnapshotStore& store, ThreadPool* pool) {\n"
            "  auto snap = store.Acquire();\n"
            "  pool->Submit([&] { Score(*snap); });\n"
            "}\n"}});
  ASSERT_EQ(CountRule(findings, kRuleSnapshotEscape), 2);
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_NE(findings[0].message.find("crosses a pool-dispatch boundary"),
            std::string::npos);
  EXPECT_EQ(findings[1].line, 8);
  EXPECT_NE(findings[1].message.find("captured by reference"),
            std::string::npos);
  EXPECT_EQ(CountRule(findings, kRuleSnapshotLifetime), 0);
}

TEST(RuleSnapshotEscape, AllowsSanctionedFlows) {
  const auto findings =
      Lint({{"src/serve/x.cc",
            "void f(SnapshotStore& store, ThreadPool* pool) {\n"
            "  auto snap = store.Acquire();\n"
            "  snapshot_ = snap;\n"  // member pin keeps the shared_ptr
            "  pool->ShardedRange(0, n, [&](int s) {\n"
            "    Score(*snap);\n"  // synchronous: workers join before return
            "  });\n"
            "  const ModelSnapshot* p = snap.get();\n"
            "  std::vector<const ModelSnapshot*> tmp;\n"
            "  tmp.push_back(p);\n"  // local container dies with the frame
            "}\n"}});
  EXPECT_EQ(CountRule(findings, kRuleSnapshotEscape), 0);
  EXPECT_EQ(CountRule(findings, kRuleSnapshotLifetime), 0);
}

TEST(RuleSnapshotEscape, AssignmentKillsTheRawFact) {
  // Strong update: after `p` is overwritten it no longer aliases the
  // snapshot, so the member store is fine.
  const auto findings =
      Lint({{"src/serve/x.cc",
            "void f(SnapshotStore& store) {\n"
            "  auto snap = store.Acquire();\n"
            "  const ModelSnapshot* p = snap.get();\n"
            "  p = nullptr;\n"
            "  snap_ = p;\n"
            "}\n"}});
  EXPECT_EQ(CountRule(findings, kRuleSnapshotEscape), 0);
}

TEST(RuleSnapshotEscape, SuppressibleWithNolint) {
  const auto findings =
      Lint({{"src/serve/x.cc",
            "void f(SnapshotStore& store) {\n"
            "  auto snap = store.Acquire();\n"
            "  const ModelSnapshot* p = snap.get();\n"
            "  snap_ = p;  // NOLINT(actor-snapshot-escape)\n"
            "}\n"}});
  EXPECT_EQ(CountRule(findings, kRuleSnapshotEscape), 0);
  EXPECT_EQ(CountRule(findings, kRuleStaleNolint), 0);
}

// --- Sharded subsystem (src/shard/) coverage --------------------------------

TEST(ShardLint, HogwildPropagatesThroughPerShardDispatch) {
  // src/shard/ is a HOGWILD auto-detect dir: the per-shard trainer
  // dispatch seeds the region with zero annotations, and the raw row
  // write inside the helper fires one hop away.
  const auto findings = Lint({{"src/shard/x.cc",
                              "void TrainShardEpoch(M& m, int s) {\n"
                              "  m.row(u)[0] += 1.0f;\n"
                              "}\n"
                              "void TrainBatchSharded(M& m) {\n"
                              "  pool_->ParallelFor(0, shards_,"
                              " [&](std::size_t s) {\n"
                              "    TrainShardEpoch(m,"
                              " static_cast<int>(s));\n"
                              "  });\n"
                              "}\n"}});
  ASSERT_EQ(CountRule(findings, kRuleHogwild), 1);
  EXPECT_EQ(findings[0].file, "src/shard/x.cc");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(ShardLint, OwnedShardStateWritesAreClean) {
  // The sharded trainer's write discipline needs no manual annotations:
  // per-shard subscripted dirty slots, the threaded dirty parameter, and
  // shard-local scratch are all recognized as single-writer shapes.
  const auto findings = Lint({{"src/shard/x.cc",
                              "void Epoch(DirtyRowSet* dirty) {\n"
                              "  dirty->Mark(u);\n"
                              "}\n"
                              "void Train() {\n"
                              "  pool_->ParallelFor(0, shards_,"
                              " [&](std::size_t s) {\n"
                              "    owned_dirty_[s].Mark(u);\n"
                              "    Epoch(&owned_dirty_[s]);\n"
                              "  });\n"
                              "}\n"}});
  EXPECT_EQ(CountRule(findings, kRuleHogwild), 0);
}

TEST(ShardLint, ShardedQueryRootsMayAllocateButNotLock) {
  // ShardedQueryEngine's Query* methods are scoring-path roots exactly
  // like the flat engine's: scratch allocation at the boundary is fine,
  // taking a lock there still blocks the read path.
  const auto findings = Lint({{"src/shard/q.cc",
                              "struct ShardedQueryEngine {\n"
                              "  int QueryScatter(int k) const {\n"
                              "    std::vector<int> merged(k);\n"
                              "    std::lock_guard<std::mutex> g(mu_);\n"
                              "    return merged[0];\n"
                              "  }\n"
                              "};\n"}});
  ASSERT_EQ(CountRule(findings, kRuleHotPath), 1);
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_NE(findings[0].message.find("QueryEngine scoring path"),
            std::string::npos);
}

TEST(ShardLint, HelpersReachableFromShardedRootsStayAllocFree) {
  // Non-root helpers called from a sharded root join the hot path and may
  // not allocate — only the Query* boundary itself gets that license.
  const auto findings = Lint({{"src/shard/q.cc",
                              "struct ShardedQueryEngine {\n"
                              "  int QueryByVector(int k) const {\n"
                              "    return MergeHeads(k);\n"
                              "  }\n"
                              "};\n"
                              "int MergeHeads(int k) {\n"
                              "  std::vector<int> tmp(k);\n"
                              "  return tmp[0];\n"
                              "}\n"}});
  ASSERT_EQ(CountRule(findings, kRuleHotPath), 1);
  EXPECT_EQ(findings[0].line, 7);
}

TEST(ShardLint, CompositeAcquireLifetimeRulesApply) {
  // R9 in a src/shard path, composite-store shape: `.get()` on the
  // Acquire() temporary dies with the expression.
  const auto findings =
      Lint({{"src/shard/x.cc",
            "void f(ShardedSnapshotStore& store) {\n"
            "  const ShardedModelSnapshot* p = store.Acquire().get();\n"
            "  Use(p);\n"
            "}\n"}});
  ASSERT_EQ(CountRule(findings, kRuleSnapshotLifetime), 1);
  EXPECT_EQ(findings[0].line, 2);
}

TEST(ShardLint, CompositeAccessorEscapesAreCaught) {
  // R13 tracks the composite accessor too: a raw pointer derived from
  // CurrentShardedSnapshot() escaping into a member outlives nothing.
  const auto findings =
      Lint({{"src/shard/x.cc",
            "void f(const OnlineActor& actor) {\n"
            "  auto snap = actor.CurrentShardedSnapshot();\n"
            "  const ShardedModelSnapshot* p = snap.get();\n"
            "  snap_ = p;\n"
            "}\n"}});
  ASSERT_EQ(CountRule(findings, kRuleSnapshotEscape), 1);
  EXPECT_EQ(findings[0].line, 4);
}

TEST(ShardLint, LockHeldAcrossCompositePublishFires) {
  // The composite publish is the same single-pointer-swap boundary as the
  // flat one: holding a lock across it serializes readers behind the
  // writer, so R11's publish check applies unchanged in src/shard paths.
  const auto findings =
      Lint({{"src/shard/x.cc",
            "void f(ShardedSnapshotStore& store, Composite c) {\n"
            "  std::lock_guard<std::mutex> g(mu_);\n"
            "  store.Publish(std::move(c));\n"
            "}\n"}});
  ASSERT_EQ(CountRule(findings, kRuleLockOrder), 1);
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_NE(findings[0].message.find("held across Publish"),
            std::string::npos);
}

// --- Cache stamping ---------------------------------------------------------

TEST(CacheStamp, MismatchInvalidatesTheChangedOnlyBaseline) {
  namespace fs = std::filesystem;
  const fs::path cache = fs::temp_directory_path() / "actor_lint_stamp_test";
  fs::remove(cache);
  LintConfig config;
  config.compile_headers = false;
  config.symbol_cache_path = cache.string();
  config.cache_stamp = "r3-aaaa";
  const FileEntry dirty{"src/b.cc", "int b = rand();\n"};
  auto findings = LintRepo({dirty}, config);
  EXPECT_EQ(CountRule(findings, kRuleRng), 1);

  // Simulate an older analyzer that did not know the rule: flip the
  // file's cached clean flag by hand (stamp still matches).
  std::string cached;
  {
    std::ifstream in(cache);
    std::ostringstream buf;
    buf << in.rdbuf();
    cached = buf.str();
  }
  const std::size_t flag = cached.find(" 0 src/b.cc");
  ASSERT_NE(flag, std::string::npos);
  cached[flag + 1] = '1';
  std::ofstream(cache, std::ios::trunc) << cached;

  // Same stamp: --changed-only trusts the (doctored) baseline — the
  // unchanged, "clean" file is skipped and the finding is masked.
  config.changed_only = true;
  findings = LintRepo({dirty}, config);
  EXPECT_EQ(CountRule(findings, kRuleRng), 0);

  // A stamp change (rule-set bump or analyzer rebuild) misses the whole
  // cache, so the masked finding resurfaces.
  config.cache_stamp = "r4-bbbb";
  findings = LintRepo({dirty}, config);
  EXPECT_EQ(CountRule(findings, kRuleRng), 1);
  fs::remove(cache);
}

// --- Mechanical fixes (--fix) ----------------------------------------------

TEST(Fixes, StaleNolintEntryCarriesAMinimalRewrite) {
  const std::string src =
      "int a = rand();  // NOLINT(actor-rng,actor-thread)\n";
  const auto findings = Lint({{"src/x.cc", src}});
  ASSERT_EQ(CountRule(findings, kRuleStaleNolint), 1);
  ASSERT_TRUE(findings[0].has_fix);
  // The live entry survives; only the dead one is dropped.
  EXPECT_EQ(ApplyFixes("src/x.cc", src, findings),
            "int a = rand();  // NOLINT(actor-rng)\n");
  // Fixes never leak into other files.
  EXPECT_EQ(ApplyFixes("src/other.cc", src, findings), src);
}

TEST(Fixes, FullyStaleNolintCommentIsDeletedWholesale) {
  const std::string src = "int clean = 0;  // NOLINT(actor-thread)\n";
  const auto findings = Lint({{"src/x.cc", src}});
  ASSERT_EQ(CountRule(findings, kRuleStaleNolint), 1);
  ASSERT_TRUE(findings[0].has_fix);
  EXPECT_EQ(ApplyFixes("src/x.cc", src, findings), "int clean = 0;\n");
}

TEST(Fixes, RedundantAnnotationFixDeletesTheCommentLine) {
  const std::string src =
      "void f(M& m) {\n"
      "  pool->ShardedRange(0, n, [&](int s) {\n"
      "    Helper(m);\n"
      "  });\n"
      "}\n"
      "// actor-lint: hogwild-region\n"
      "void Helper(M& m) {\n"
      "  RelaxedStore(&m.row(u)[0], 1.0f);\n"
      "}\n";
  const auto findings = Lint({{"src/embedding/x.cc", src}});
  ASSERT_EQ(CountRule(findings, kRuleHogwild), 1);
  ASSERT_TRUE(findings[0].has_fix);
  const std::string fixed = ApplyFixes("src/embedding/x.cc", src, findings);
  EXPECT_EQ(fixed.find("hogwild-region"), std::string::npos);
  EXPECT_NE(fixed.find("void Helper"), std::string::npos);
}

// --- Symbol cache + --changed-only -----------------------------------------

TEST(ChangedOnly, SkipsCleanFilesAndNeverMasksViolations) {
  namespace fs = std::filesystem;
  const fs::path cache = fs::temp_directory_path() / "actor_lint_sym_test";
  fs::remove(cache);
  LintConfig config;
  config.compile_headers = false;
  config.symbol_cache_path = cache.string();
  const FileEntry clean{"src/a.cc", "int A() { return 1; }\n"};
  const FileEntry dirty{"src/b.cc", "int b = rand();\n"};
  // Baseline run records per-file hashes and clean flags.
  auto findings = LintRepo({clean, dirty}, config);
  EXPECT_EQ(CountRule(findings, kRuleRng), 1);
  // Changed-only rerun: nothing changed, but b was not clean — still
  // reported (a finding can never hide behind an unchanged hash).
  config.changed_only = true;
  findings = LintRepo({clean, dirty}, config);
  EXPECT_EQ(CountRule(findings, kRuleRng), 1);
  // Fixing b re-lints the changed file; the tree goes clean.
  const FileEntry fixed{"src/b.cc", "int B() { return 2; }\n"};
  findings = LintRepo({clean, fixed}, config);
  EXPECT_EQ(findings.size(), 0u);
  // Fully warm rerun: everything is skipped and the tree stays clean.
  findings = LintRepo({clean, fixed}, config);
  EXPECT_EQ(findings.size(), 0u);
  // A fresh violation in a previously clean file is caught via its hash.
  const FileEntry regressed{"src/a.cc", "int A() { return rand(); }\n"};
  findings = LintRepo({regressed, fixed}, config);
  EXPECT_EQ(CountRule(findings, kRuleRng), 1);
  fs::remove(cache);
}

// --- Parallel R5a cold start ------------------------------------------------

TEST(RuleHeaderSelf, ParallelCompileAttributesEveryBrokenHeader) {
  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() / "actor_lint_par_test";
  fs::create_directories(root / "src");
  const auto write = [&root](const char* rel, const char* text) {
    std::ofstream(root / rel) << text;
  };
  write("src/good1.h", "#include <vector>\ninline int G1() { return 1; }\n");
  write("src/good2.h", "#include <string>\ninline int G2() { return 2; }\n");
  write("src/bad1.h", "inline int B1() { return MissingOne(); }\n");
  write("src/bad2.h", "inline int B2() { return MissingTwo(); }\n");

  std::vector<FileEntry> files = {
      {"src/good1.h", "#include <vector>\ninline int G1() { return 1; }\n"},
      {"src/good2.h", "#include <string>\ninline int G2() { return 2; }\n"},
      {"src/bad1.h", "inline int B1() { return MissingOne(); }\n"},
      {"src/bad2.h", "inline int B2() { return MissingTwo(); }\n"}};
  LintConfig config;
  config.root = root.string();
  config.compile_headers = true;
  config.compile_flags = {"-std=c++20"};
  config.compile_jobs = 2;
  const auto findings = LintRepo(files, config);
  // Both broken headers attributed, in deterministic sorted order, with
  // the batched probe re-run per header inside the owning worker.
  ASSERT_EQ(CountRule(findings, kRuleHeaderSelf), 2);
  EXPECT_EQ(findings[0].file, "src/bad1.h");
  EXPECT_EQ(findings[1].file, "src/bad2.h");
  fs::remove_all(root);
}

// --- Call-graph dump --------------------------------------------------------

TEST(CallGraphDump, EmitsDotWithHogwildColoring) {
  const std::string dot =
      DumpCallGraph({{"src/embedding/x.cc",
                      "void Helper(M& m) {\n"
                      "  RelaxedStore(&m.row(u)[0], 1.0f);\n"
                      "}\n"
                      "void f(M& m) {\n"
                      "  pool->ShardedRange(0, n, [&](int s) {\n"
                      "    Helper(m);\n"
                      "  });\n"
                      "}\n"}});
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("Helper"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);      // f -> Helper edge
  EXPECT_NE(dot.find("salmon"), std::string::npos);  // hogwild fill color
}

// --- Output formats --------------------------------------------------------

TEST(Output, TextAndJsonFormats) {
  const std::vector<Finding> findings = {
      {"src/x.cc", 3, kRuleRng, "message with \"quotes\""}};
  EXPECT_EQ(FormatFindingsText(findings),
            "src/x.cc:3: [actor-rng] message with \"quotes\"\n");
  const std::string json = FormatFindingsJson(findings);
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
  EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);
  EXPECT_EQ(FormatFindingsJson({}), "[\n]\n");
}

TEST(Output, SarifFormatDeclaresRulesAndLocations) {
  const std::vector<Finding> findings = {
      {"src/x.cc", 3, kRuleRng, "message with \"quotes\""},
      {"src/y.cc", 0, kRuleThread, "whole-file finding"}};
  const std::string sarif = FormatFindingsSarif(findings);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"actor-lint\""), std::string::npos);
  // Every rule is declared in the driver, even without findings.
  EXPECT_NE(sarif.find("{\"id\": \"actor-lock-order\"}"), std::string::npos);
  EXPECT_NE(sarif.find("{\"id\": \"actor-memory-order\"}"),
            std::string::npos);
  EXPECT_NE(sarif.find("{\"id\": \"actor-snapshot-escape\"}"),
            std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"actor-rng\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/x.cc\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 3"), std::string::npos);
  // Line 0 findings are clamped to 1 (SARIF lines are 1-based).
  EXPECT_NE(sarif.find("\"startLine\": 1"), std::string::npos);
  EXPECT_NE(sarif.find("\\\"quotes\\\""), std::string::npos);
  // An empty log is still a valid single-run document.
  EXPECT_NE(FormatFindingsSarif({}).find("\"results\": ["),
            std::string::npos);
}

TEST(Output, FindingsAreSortedAndDeterministic) {
  const auto findings = Lint({{"src/b.cc", "int a = rand();\n"},
                             {"src/a.cc", "std::thread t;\nint b = rand();\n"}});
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(findings[0].file, "src/a.cc");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_EQ(findings[1].file, "src/a.cc");
  EXPECT_EQ(findings[1].line, 2);
  EXPECT_EQ(findings[2].file, "src/b.cc");
}

}  // namespace
}  // namespace actor_lint
