#include "embedding/embedding_matrix.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>

namespace actor {
namespace {

TEST(EmbeddingMatrixTest, Dimensions) {
  EmbeddingMatrix m(10, 4);
  EXPECT_EQ(m.rows(), 10);
  EXPECT_EQ(m.dim(), 4);
  EXPECT_FALSE(m.empty());
}

TEST(EmbeddingMatrixTest, DefaultIsEmpty) {
  EmbeddingMatrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0);
}

TEST(EmbeddingMatrixTest, StartsZeroed) {
  EmbeddingMatrix m(3, 3);
  for (int r = 0; r < 3; ++r) {
    for (int d = 0; d < 3; ++d) EXPECT_FLOAT_EQ(m.row(r)[d], 0.0f);
  }
}

TEST(EmbeddingMatrixTest, InitUniformBounded) {
  EmbeddingMatrix m(50, 16);
  Rng rng(3);
  m.InitUniform(rng);
  const float bound = 0.5f / 16.0f;
  bool any_nonzero = false;
  for (int r = 0; r < m.rows(); ++r) {
    for (int d = 0; d < m.dim(); ++d) {
      EXPECT_LE(std::abs(m.row(r)[d]), bound);
      if (m.row(r)[d] != 0.0f) any_nonzero = true;
    }
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(EmbeddingMatrixTest, InitZeroClears) {
  EmbeddingMatrix m(5, 4);
  Rng rng(1);
  m.InitUniform(rng);
  m.InitZero();
  for (int r = 0; r < 5; ++r) {
    for (int d = 0; d < 4; ++d) EXPECT_FLOAT_EQ(m.row(r)[d], 0.0f);
  }
}

TEST(EmbeddingMatrixTest, SetRowCopies) {
  EmbeddingMatrix m(2, 3);
  const float src[] = {1.0f, 2.0f, 3.0f};
  m.SetRow(1, src);
  EXPECT_FLOAT_EQ(m.row(1)[0], 1.0f);
  EXPECT_FLOAT_EQ(m.row(1)[2], 3.0f);
  EXPECT_FLOAT_EQ(m.row(0)[0], 0.0f);
}

TEST(EmbeddingMatrixTest, RowsAreIndependent) {
  EmbeddingMatrix m(2, 2);
  m.row(0)[0] = 5.0f;
  EXPECT_FLOAT_EQ(m.row(1)[0], 0.0f);
}

TEST(EmbeddingMatrixTest, CloneIsDeep) {
  EmbeddingMatrix m(2, 2);
  m.row(0)[0] = 1.0f;
  EmbeddingMatrix copy = m.Clone();
  copy.row(0)[0] = 9.0f;
  EXPECT_FLOAT_EQ(m.row(0)[0], 1.0f);
  EXPECT_FLOAT_EQ(copy.row(0)[0], 9.0f);
}

TEST(EmbeddingMatrixTest, RowsAreAligned) {
  // Every row must start on a 32-byte boundary so AVX2 kernels can use
  // aligned loads regardless of dim.
  for (int dim : {1, 3, 5, 8, 17, 64, 300}) {
    EmbeddingMatrix m(4, dim);
    for (int r = 0; r < m.rows(); ++r) {
      const auto addr = reinterpret_cast<std::uintptr_t>(m.row(r));
      EXPECT_EQ(addr % EmbeddingMatrix::kRowAlignment, 0u)
          << "dim=" << dim << " row=" << r;
    }
  }
}

TEST(EmbeddingMatrixTest, StrideIsDimRoundedUpToEightFloats) {
  for (int dim : {1, 7, 8, 9, 16, 17, 300}) {
    EmbeddingMatrix m(2, dim);
    const std::size_t expected = ((dim + 7) / 8) * 8;
    EXPECT_EQ(m.stride(), expected) << "dim=" << dim;
    EXPECT_EQ(m.row(1) - m.row(0), static_cast<std::ptrdiff_t>(m.stride()));
  }
}

TEST(EmbeddingMatrixTest, AppendRowsPreservesAlignmentAndData) {
  EmbeddingMatrix m(2, 5);
  Rng rng(7);
  m.InitUniform(rng);
  const float keep = m.row(1)[4];
  m.AppendRows(3, &rng);
  EXPECT_EQ(m.rows(), 5);
  EXPECT_FLOAT_EQ(m.row(1)[4], keep);
  for (int r = 0; r < m.rows(); ++r) {
    const auto addr = reinterpret_cast<std::uintptr_t>(m.row(r));
    EXPECT_EQ(addr % EmbeddingMatrix::kRowAlignment, 0u);
  }
}

TEST(EmbeddingMatrixTest, SaveLoadRoundTripPaddedDim) {
  // dim=5 pads each row to stride 8; padding must not leak into the file
  // or the reloaded matrix.
  const std::string path = ::testing::TempDir() + "/emb_padded.txt";
  EmbeddingMatrix m(3, 5);
  Rng rng(21);
  m.InitUniform(rng);
  ASSERT_TRUE(m.Save(path).ok());
  auto loaded = EmbeddingMatrix::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->rows(), 3);
  EXPECT_EQ(loaded->dim(), 5);
  for (int r = 0; r < 3; ++r) {
    for (int d = 0; d < 5; ++d) {
      EXPECT_NEAR(loaded->row(r)[d], m.row(r)[d], 1e-6f);
    }
  }
  std::remove(path.c_str());
}

TEST(EmbeddingMatrixTest, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/emb_test.txt";
  EmbeddingMatrix m(4, 3);
  Rng rng(9);
  m.InitUniform(rng);
  m.row(2)[1] = -0.125f;
  ASSERT_TRUE(m.Save(path).ok());
  auto loaded = EmbeddingMatrix::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->rows(), 4);
  EXPECT_EQ(loaded->dim(), 3);
  for (int r = 0; r < 4; ++r) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_NEAR(loaded->row(r)[d], m.row(r)[d], 1e-6f);
    }
  }
  std::remove(path.c_str());
}

TEST(EmbeddingMatrixTest, LoadMissingFileIsIOError) {
  EXPECT_TRUE(
      EmbeddingMatrix::Load("/no/such/file.txt").status().IsIOError());
}

TEST(EmbeddingMatrixTest, LoadMalformedHeaderIsError) {
  const std::string path = ::testing::TempDir() + "/emb_bad.txt";
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("not numbers\n", f);
  std::fclose(f);
  EXPECT_FALSE(EmbeddingMatrix::Load(path).ok());
  std::remove(path.c_str());
}

TEST(EmbeddingMatrixTest, LoadTruncatedIsError) {
  const std::string path = ::testing::TempDir() + "/emb_trunc.txt";
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("2 3\n1 2 3\n", f);  // second row missing
  std::fclose(f);
  EXPECT_FALSE(EmbeddingMatrix::Load(path).ok());
  std::remove(path.c_str());
}

TEST(EmbeddingMatrixTest, SaveUnwritableIsIOError) {
  EmbeddingMatrix m(1, 1);
  EXPECT_TRUE(m.Save("/no/such/dir/emb.txt").IsIOError());
}

}  // namespace
}  // namespace actor
