#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <utility>
#include <vector>

namespace actor {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, ReportsThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(0, 100, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.ParallelFor(5, 5, [&counter](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 0);
}

TEST(ThreadPoolTest, ParallelForSingleElement) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.ParallelFor(3, 4, [&counter](std::size_t i) {
    counter.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, ParallelForMoreChunksThanThreads) {
  ThreadPool pool(2);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(0, 1000,
                   [&sum](std::size_t i) { sum.fetch_add(static_cast<int64_t>(i)); });
  EXPECT_EQ(sum.load(), 999 * 1000 / 2);
}

TEST(ThreadPoolTest, SequentialWaves) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (wave + 1) * 20);
  }
}

TEST(ThreadPoolTest, ParallelForRangeSmallerThanPool) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(0, 3, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ShardedRangeCoversAllIndicesOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(101);
  pool.ShardedRange(0, 101, [&hits](int, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ShardedRangeEmptyRangeRunsNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ShardedRange(7, 7, [&calls](int, std::size_t, std::size_t) {
    calls.fetch_add(1);
  });
  pool.ShardedRange(9, 3, [&calls](int, std::size_t, std::size_t) {
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ShardedRangeFewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  std::vector<int> shards;
  pool.ShardedRange(10, 13, [&](int shard, std::size_t lo, std::size_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    ranges.emplace_back(lo, hi);
    shards.push_back(shard);
  });
  // 3 items across 8 workers: exactly 3 non-empty single-item shards with
  // dense shard ids.
  ASSERT_EQ(ranges.size(), 3u);
  std::sort(ranges.begin(), ranges.end());
  std::sort(shards.begin(), shards.end());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ranges[i].first, 10 + i);
    EXPECT_EQ(ranges[i].second, 11 + i);
    EXPECT_EQ(shards[i], static_cast<int>(i));
  }
}

TEST(ThreadPoolTest, ShardedRangeShardIdsAreDenseAndDistinct) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<int> shards;
  pool.ShardedRange(0, 1000, [&](int shard, std::size_t, std::size_t) {
    std::lock_guard<std::mutex> lock(mu);
    shards.push_back(shard);
  });
  std::sort(shards.begin(), shards.end());
  ASSERT_EQ(shards.size(), 4u);
  for (int s = 0; s < 4; ++s) EXPECT_EQ(shards[s], s);
}

TEST(ThreadPoolTest, ManySmallTasksDrainCompletely) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10000; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 10000);
}

TEST(ThreadPoolTest, ReusableAcrossManyShardedRanges) {
  // The persistent-pool contract: one pool serves hundreds of batch calls
  // (epochs x edge types) without respawning workers.
  ThreadPool pool(3);
  std::atomic<int64_t> sum{0};
  for (int round = 0; round < 200; ++round) {
    pool.ShardedRange(0, 50, [&sum](int, std::size_t lo, std::size_t hi) {
      sum.fetch_add(static_cast<int64_t>(hi - lo));
    });
  }
  EXPECT_EQ(sum.load(), 200 * 50);
}

TEST(ThreadPoolTest, DestructionWithPendingWorkCompletes) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace actor
