#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace actor {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, ReportsThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(0, 100, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.ParallelFor(5, 5, [&counter](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 0);
}

TEST(ThreadPoolTest, ParallelForSingleElement) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.ParallelFor(3, 4, [&counter](std::size_t i) {
    counter.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, ParallelForMoreChunksThanThreads) {
  ThreadPool pool(2);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(0, 1000,
                   [&sum](std::size_t i) { sum.fetch_add(static_cast<int64_t>(i)); });
  EXPECT_EQ(sum.load(), 999 * 1000 / 2);
}

TEST(ThreadPoolTest, SequentialWaves) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (wave + 1) * 20);
  }
}

TEST(ThreadPoolTest, DestructionWithPendingWorkCompletes) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace actor
