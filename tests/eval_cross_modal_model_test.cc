// Direct unit tests for EmbeddingCrossModalModel: unit resolution, query
// composition, and unresolvable-candidate behaviour, on a handcrafted
// 2-record world where the expected geometry is known exactly.

#include "eval/cross_modal_model.h"

#include <gtest/gtest.h>

#include <memory>

#include "data/corpus.h"
#include "serve/model_snapshot.h"
#include "util/vec_math.h"

namespace actor {
namespace {

class CrossModalModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Corpus raw;
    RawRecord a;
    a.id = 0;
    a.user_id = 1;
    a.timestamp = 9 * 3600.0;
    a.location = {2, 2};
    a.text = "coffee breakfast";
    raw.Add(a);
    RawRecord b;
    b.id = 1;
    b.user_id = 2;
    b.timestamp = 21 * 3600.0;
    b.location = {30, 30};
    b.text = "cinema night";
    raw.Add(b);
    CorpusBuildOptions build;
    build.min_word_count = 1;
    auto corpus = TokenizedCorpus::Build(raw, build);
    ASSERT_TRUE(corpus.ok());
    corpus_ = new TokenizedCorpus(corpus.MoveValueOrDie());
    auto hotspots = DetectHotspots(*corpus_);
    ASSERT_TRUE(hotspots.ok());
    hotspots_ = std::make_shared<const Hotspots>(hotspots.MoveValueOrDie());
    auto graphs = BuildGraphs(*corpus_, *hotspots_);
    ASSERT_TRUE(graphs.ok());
    graphs_ = std::make_shared<const BuiltGraphs>(graphs.MoveValueOrDie());

    // Hand-crafted embedding: record-0 units along +x, record-1 units
    // along +y, so cross-record cosine is exactly 0.
    center_ = new EmbeddingMatrix(graphs_->activity.num_vertices(), 2);
    const auto& units0 = graphs_->record_units[0];
    const auto& units1 = graphs_->record_units[1];
    auto set_unit = [&](VertexId v, float x, float y) {
      center_->row(v)[0] = x;
      center_->row(v)[1] = y;
    };
    set_unit(units0.time_unit, 1.0f, 0.0f);
    set_unit(units0.location_unit, 1.0f, 0.0f);
    for (VertexId w : units0.word_units) set_unit(w, 1.0f, 0.0f);
    set_unit(units1.time_unit, 0.0f, 1.0f);
    set_unit(units1.location_unit, 0.0f, 1.0f);
    for (VertexId w : units1.word_units) set_unit(w, 0.0f, 1.0f);
    // Publish after the handcrafted vectors are in place: the snapshot
    // deep-copies the matrix at this point.
    snapshot_ = ModelSnapshot::FromBatch(*center_, /*context=*/nullptr,
                                         graphs_, hotspots_,
                                         /*vocab=*/nullptr, /*version=*/1);
  }
  static void TearDownTestSuite() {
    snapshot_.reset();
    delete center_;
    graphs_.reset();
    hotspots_.reset();
    delete corpus_;
    center_ = nullptr;
    corpus_ = nullptr;
  }

  EmbeddingCrossModalModel Model() const {
    return EmbeddingCrossModalModel("test", snapshot_);
  }

  static int32_t WordId(const std::string& w) {
    return corpus_->vocab().Lookup(w);
  }

  static TokenizedCorpus* corpus_;
  static std::shared_ptr<const Hotspots> hotspots_;
  static std::shared_ptr<const BuiltGraphs> graphs_;
  static EmbeddingMatrix* center_;
  static std::shared_ptr<const ModelSnapshot> snapshot_;
};

TokenizedCorpus* CrossModalModelTest::corpus_ = nullptr;
std::shared_ptr<const Hotspots> CrossModalModelTest::hotspots_;
std::shared_ptr<const BuiltGraphs> CrossModalModelTest::graphs_;
EmbeddingMatrix* CrossModalModelTest::center_ = nullptr;
std::shared_ptr<const ModelSnapshot> CrossModalModelTest::snapshot_;

TEST_F(CrossModalModelTest, MatchingRecordScoresOne) {
  auto model = Model();
  // Record 0's own modalities: all unit vectors identical -> cosine 1.
  EXPECT_NEAR(model.ScoreText(9 * 3600.0, {2, 2}, {WordId("coffee")}), 1.0,
              1e-6);
  EXPECT_NEAR(
      model.ScoreLocation(9 * 3600.0, {WordId("breakfast")}, {2, 2}), 1.0,
      1e-6);
  EXPECT_NEAR(model.ScoreTime({2, 2}, {WordId("coffee")}, 9 * 3600.0), 1.0,
              1e-6);
}

TEST_F(CrossModalModelTest, MismatchedRecordScoresZero) {
  auto model = Model();
  // Record 0's context vs record 1's candidates: orthogonal -> 0.
  EXPECT_NEAR(model.ScoreText(9 * 3600.0, {2, 2}, {WordId("cinema")}), 0.0,
              1e-6);
  EXPECT_NEAR(model.ScoreLocation(9 * 3600.0, {WordId("coffee")}, {30, 30}),
              0.0, 1e-6);
  EXPECT_NEAR(model.ScoreTime({2, 2}, {WordId("coffee")}, 21 * 3600.0), 0.0,
              1e-6);
}

TEST_F(CrossModalModelTest, UnknownCandidateWordsRankLast) {
  auto model = Model();
  // A candidate made only of unknown words must get the sentinel floor.
  const double score = model.ScoreText(9 * 3600.0, {2, 2}, {-1, 99999});
  EXPECT_LT(score, -1e8);
}

TEST_F(CrossModalModelTest, UnknownQueryWordsAreSkipped) {
  auto model = Model();
  // The query's unknown words are dropped; the known one still works.
  const double with_noise = model.ScoreLocation(
      9 * 3600.0, {WordId("coffee"), -1, 99999}, {2, 2});
  const double clean =
      model.ScoreLocation(9 * 3600.0, {WordId("coffee")}, {2, 2});
  EXPECT_NEAR(with_noise, clean, 1e-9);
}

TEST_F(CrossModalModelTest, TextVectorAveragesWords) {
  auto model = Model();
  std::vector<float> vec;
  ASSERT_TRUE(
      model.TextVector({WordId("coffee"), WordId("cinema")}, &vec));
  // Mean of (1,0) and (0,1).
  EXPECT_NEAR(vec[0], 0.5f, 1e-6f);
  EXPECT_NEAR(vec[1], 0.5f, 1e-6f);
}

TEST_F(CrossModalModelTest, TextVectorFalseWhenNothingKnown) {
  auto model = Model();
  std::vector<float> vec;
  EXPECT_FALSE(model.TextVector({-1, 424242}, &vec));
  EXPECT_FALSE(model.TextVector({}, &vec));
}

TEST_F(CrossModalModelTest, LocationSnapsToNearestHotspot) {
  auto model = Model();
  std::vector<float> near_a, at_a;
  ASSERT_TRUE(model.LocationVector({3, 3}, &near_a));   // closer to (2,2)
  ASSERT_TRUE(model.LocationVector({2, 2}, &at_a));
  EXPECT_EQ(near_a, at_a);
}

TEST_F(CrossModalModelTest, TimeSnapsCircularly) {
  auto model = Model();
  std::vector<float> late, record1;
  // 22:30 is circularly nearest to the 21:00 hotspot.
  ASSERT_TRUE(model.TimeVector(22.5 * 3600.0, &late));
  ASSERT_TRUE(model.TimeVector(21 * 3600.0, &record1));
  EXPECT_EQ(late, record1);
}

TEST_F(CrossModalModelTest, NameIsReported) {
  EXPECT_EQ(Model().name(), "test");
  EXPECT_TRUE(Model().supports_time());
}

}  // namespace
}  // namespace actor
