#include "graph/alias_table.h"

#include <gtest/gtest.h>

#include <vector>

namespace actor {
namespace {

TEST(AliasTableTest, EmptyWeightsError) {
  EXPECT_TRUE(AliasTable::Create({}).status().IsInvalidArgument());
}

TEST(AliasTableTest, NegativeWeightError) {
  EXPECT_TRUE(AliasTable::Create({1.0, -0.5}).status().IsInvalidArgument());
}

TEST(AliasTableTest, AllZeroWeightsError) {
  EXPECT_TRUE(AliasTable::Create({0.0, 0.0}).status().IsInvalidArgument());
}

TEST(AliasTableTest, SingleWeightAlwaysSampled) {
  auto table = AliasTable::Create({5.0});
  ASSERT_TRUE(table.ok());
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table->Sample(rng), 0u);
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  auto table = AliasTable::Create({1.0, 0.0, 1.0});
  ASSERT_TRUE(table.ok());
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(table->Sample(rng), 1u);
}

TEST(AliasTableTest, ProbabilityAccessor) {
  auto table = AliasTable::Create({1.0, 3.0});
  ASSERT_TRUE(table.ok());
  EXPECT_DOUBLE_EQ(table->Probability(0), 0.25);
  EXPECT_DOUBLE_EQ(table->Probability(1), 0.75);
}

TEST(AliasTableTest, SizeMatches) {
  auto table = AliasTable::Create({1, 2, 3, 4});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->size(), 4u);
}

class AliasDistributionSweep
    : public ::testing::TestWithParam<std::vector<double>> {};

TEST_P(AliasDistributionSweep, EmpiricalMatchesWeights) {
  const std::vector<double>& weights = GetParam();
  auto table = AliasTable::Create(weights);
  ASSERT_TRUE(table.ok());
  double total = 0.0;
  for (double w : weights) total += w;

  Rng rng(42);
  const int n = 200000;
  std::vector<int> counts(weights.size(), 0);
  for (int i = 0; i < n; ++i) ++counts[table->Sample(rng)];
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double expected = weights[i] / total;
    const double observed = static_cast<double>(counts[i]) / n;
    EXPECT_NEAR(observed, expected, 0.01) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, AliasDistributionSweep,
    ::testing::Values(std::vector<double>{1.0, 1.0},
                      std::vector<double>{1.0, 2.0, 3.0, 4.0},
                      std::vector<double>{10.0, 0.1},
                      std::vector<double>{0.25, 0.25, 0.25, 0.25},
                      std::vector<double>{5.0, 0.0, 5.0},
                      std::vector<double>{1e-6, 1e6},
                      std::vector<double>(100, 1.0)));

TEST(AliasTableTest, ProbabilitiesSumToOne) {
  auto table = AliasTable::Create({0.3, 2.7, 9.1, 0.01, 4.5});
  ASSERT_TRUE(table.ok());
  double sum = 0.0;
  for (std::size_t i = 0; i < table->size(); ++i) sum += table->Probability(i);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(AliasTableTest, DeterministicGivenRngSeed) {
  auto table = AliasTable::Create({1.0, 2.0, 3.0});
  ASSERT_TRUE(table.ok());
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table->Sample(a), table->Sample(b));
}

}  // namespace
}  // namespace actor
