#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "core/online_actor.h"
#include "data/synthetic.h"
#include "shard/sharded_query_engine.h"
#include "util/thread_pool.h"

namespace actor {
namespace {

std::vector<std::vector<TokenizedRecord>> MakeBatches(int records,
                                                      int batches,
                                                      uint64_t seed = 5) {
  SyntheticConfig config;
  config.seed = seed;
  config.num_records = records;
  config.num_users = 80;
  config.num_communities = 4;
  config.num_topics = 6;
  config.num_venues = 16;
  config.keywords_per_topic = 20;
  config.background_vocab = 40;
  auto ds = GenerateSynthetic(config);
  EXPECT_TRUE(ds.ok());
  CorpusBuildOptions build;
  build.min_word_count = 1;
  auto corpus = TokenizedCorpus::Build(ds->corpus, build);
  EXPECT_TRUE(corpus.ok());
  std::vector<std::vector<TokenizedRecord>> out(batches);
  for (std::size_t i = 0; i < corpus->size(); ++i) {
    out[i * batches / corpus->size()].push_back(corpus->record(i));
  }
  return out;
}

OnlineActorOptions FastOptions() {
  OnlineActorOptions o;
  o.dim = 16;
  o.samples_per_edge_per_batch = 2.0;
  return o;
}

void ExpectBitIdentical(const EmbeddingMatrix& a, const EmbeddingMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.dim(), b.dim());
  for (int32_t r = 0; r < a.rows(); ++r) {
    ASSERT_EQ(std::memcmp(a.row(r), b.row(r),
                          sizeof(float) * static_cast<std::size_t>(a.dim())),
              0)
        << "row " << r << " differs";
  }
}

// The tentpole identity: the sharded pipeline at one shard IS the legacy
// pipeline — same unit set, same edges, bit-identical center matrix after
// every batch, identical published snapshots and query results. This is
// what licenses every other sharded test to treat the legacy path as its
// reference.
TEST(ShardOnlineActorTest, ShardedOneBitIdenticalToLegacy) {
  OnlineActorOptions legacy_opts = FastOptions();
  OnlineActorOptions sharded_opts = FastOptions();
  sharded_opts.num_shards = 1;
  auto legacy = OnlineActor::Create(legacy_opts);
  auto sharded = OnlineActor::Create(sharded_opts);
  ASSERT_TRUE(legacy.ok());
  ASSERT_TRUE(sharded.ok());
  EXPECT_FALSE(legacy->sharded());
  EXPECT_TRUE(sharded->sharded());
  EXPECT_EQ(sharded->num_shards(), 1);

  const auto batches = MakeBatches(900, 3);
  for (const auto& batch : batches) {
    ASSERT_TRUE(legacy->Ingest(batch).ok());
    ASSERT_TRUE(sharded->Ingest(batch).ok());
    ASSERT_EQ(legacy->num_units(), sharded->num_units());
    ASSERT_EQ(legacy->num_live_edges(), sharded->num_live_edges());
    ExpectBitIdentical(legacy->center(), sharded->center());
  }

  // Flat publishes agree bit-for-bit: same version, same rows.
  auto legacy_snap = legacy->PublishSnapshot();
  auto sharded_snap = sharded->PublishSnapshot();
  ASSERT_NE(legacy_snap, nullptr);
  ASSERT_NE(sharded_snap, nullptr);
  EXPECT_EQ(legacy_snap->version(), sharded_snap->version());
  ASSERT_EQ(legacy_snap->num_units(), sharded_snap->num_units());

  // And the two serving paths return identical results on them.
  QueryEngine flat(legacy_snap);
  ShardedQueryEngine scatter(sharded->PublishShardedSnapshot());
  auto expect_same = [&](VertexType type) {
    auto a = flat.QueryByHour(20.0, type, 7);
    auto b = scatter.QueryByHour(20.0, type, 7);
    ASSERT_EQ(a.ok(), b.ok());
    if (!a.ok()) return;
    ASSERT_EQ(a->size(), b->size());
    for (std::size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].vertex, (*b)[i].vertex);
      EXPECT_EQ((*a)[i].similarity, (*b)[i].similarity);
      EXPECT_EQ((*a)[i].name, (*b)[i].name);
      EXPECT_EQ((*a)[i].type, (*b)[i].type);
    }
  };
  expect_same(VertexType::kWord);
  expect_same(VertexType::kLocation);
  expect_same(VertexType::kUser);
}

// Sharded training writes only shard-owned state (remote context rows go
// to private tile copies), so unlike legacy HOGWILD the result cannot
// depend on scheduling: one worker or many, same bits.
TEST(ShardOnlineActorTest, ShardedDeterministicAcrossThreadCounts) {
  OnlineActorOptions seq_opts = FastOptions();
  seq_opts.num_shards = 4;
  OnlineActorOptions par_opts = seq_opts;
  par_opts.num_threads = 4;
  auto seq = OnlineActor::Create(seq_opts);
  auto par = OnlineActor::Create(par_opts);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());

  const auto batches = MakeBatches(900, 3);
  for (const auto& batch : batches) {
    ASSERT_TRUE(seq->Ingest(batch).ok());
    ASSERT_TRUE(par->Ingest(batch).ok());
  }
  ExpectBitIdentical(seq->GatherCenter(), par->GatherCenter());
}

TEST(ShardOnlineActorTest, CrossShardEdgesResolveThroughRemoteTileCache) {
  OnlineActorOptions opts = FastOptions();
  opts.num_shards = 2;
  auto model = OnlineActor::Create(opts);
  ASSERT_TRUE(model.ok());
  const auto batches = MakeBatches(600, 2);
  for (const auto& batch : batches) ASSERT_TRUE(model->Ingest(batch).ok());

  // Hash partitioning over a connected co-occurrence graph guarantees
  // cross-shard edges, and every one of them must have pulled its remote
  // endpoint's context row into the owner's tile cache at the barrier.
  ASSERT_EQ(model->num_shards(), 2);
  std::size_t tile_rows = 0;
  for (int s = 0; s < model->num_shards(); ++s) {
    tile_rows += model->remote_tile_rows(s);
  }
  EXPECT_GT(tile_rows, 0u);
  // The training outcome stays finite and valid across both shards.
  for (int s = 0; s < model->num_shards(); ++s) {
    EXPECT_TRUE(model->center_shard(s).DebugValidate());
  }
}

// Per-shard delta publishes must produce exactly the state full publishes
// do — the chunk-COW sharing is an optimization, never a semantic change
// (the sharded analogue of serve_delta_publish_test).
TEST(ShardOnlineActorTest, ShardedPublishDeltaMatchesFull) {
  OnlineActorOptions delta_opts = FastOptions();
  delta_opts.num_shards = 2;
  delta_opts.delta_publish = true;
  OnlineActorOptions full_opts = delta_opts;
  full_opts.delta_publish = false;
  auto delta_model = OnlineActor::Create(delta_opts);
  auto full_model = OnlineActor::Create(full_opts);
  ASSERT_TRUE(delta_model.ok());
  ASSERT_TRUE(full_model.ok());

  const auto batches = MakeBatches(900, 3);
  std::shared_ptr<const ShardedModelSnapshot> delta_snap, full_snap;
  for (const auto& batch : batches) {
    ASSERT_TRUE(delta_model->Ingest(batch).ok());
    ASSERT_TRUE(full_model->Ingest(batch).ok());
    // Publishing every batch exercises the delta path against a fresh
    // previous snapshot (grown unit set and steady-state both covered).
    delta_snap = delta_model->PublishShardedSnapshot();
    full_snap = full_model->PublishShardedSnapshot();
    ASSERT_NE(delta_snap, nullptr);
    ASSERT_NE(full_snap, nullptr);
    ASSERT_EQ(delta_snap->version(), full_snap->version());
    ASSERT_EQ(delta_snap->num_units(), full_snap->num_units());
    for (int s = 0; s < delta_snap->num_shards(); ++s) {
      const auto& a = delta_snap->shard(s)->center();
      const auto& b = full_snap->shard(s)->center();
      ASSERT_EQ(a.rows(), b.rows());
      for (int32_t r = 0; r < a.rows(); ++r) {
        ASSERT_EQ(std::memcmp(a.row(r), b.row(r),
                              sizeof(float) *
                                  static_cast<std::size_t>(a.dim())),
                  0)
            << "shard " << s << " row " << r << " differs";
      }
    }
  }
  // Unchanged model => publish is a no-op returning the same composite.
  EXPECT_EQ(delta_model->PublishShardedSnapshot(), delta_snap);
}

// A composite publish is one pointer swap; mixing the flat and sharded
// publish paths must not corrupt either one's dirty bookkeeping.
TEST(ShardOnlineActorTest, FlatAndShardedPublishesCoexist) {
  OnlineActorOptions opts = FastOptions();
  opts.num_shards = 2;
  auto model = OnlineActor::Create(opts);
  ASSERT_TRUE(model.ok());
  const auto batches = MakeBatches(600, 2);
  for (const auto& batch : batches) {
    ASSERT_TRUE(model->Ingest(batch).ok());
    auto flat = model->PublishSnapshot();
    auto sharded = model->PublishShardedSnapshot();
    ASSERT_NE(flat, nullptr);
    ASSERT_NE(sharded, nullptr);
    EXPECT_EQ(flat->version(), sharded->version());
    EXPECT_EQ(flat->num_units(), sharded->num_units());
    // The flat snapshot is the gathered composite: every global row equals
    // its owner shard's local row.
    const ShardMapSnapshot& map = sharded->map();
    for (VertexId v = 0; v < map.num_vertices(); ++v) {
      const int s = map.owner[static_cast<std::size_t>(v)];
      const float* shard_row = sharded->shard(s)->center().row(
          map.local[static_cast<std::size_t>(v)]);
      ASSERT_EQ(std::memcmp(flat->center().row(v), shard_row,
                            sizeof(float) * static_cast<std::size_t>(
                                                flat->center().dim())),
                0)
          << "vertex " << v;
    }
  }
}

}  // namespace
}  // namespace actor
