#include "baselines/geo_topic_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"

namespace actor {
namespace {

class GeoTopicTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticConfig config;
    config.seed = 13;
    config.num_records = 2500;
    config.num_users = 80;
    config.num_communities = 4;
    config.num_topics = 4;
    config.num_venues = 10;
    config.keywords_per_topic = 20;
    config.background_vocab = 30;
    config.community_spread_km = 4.0;
    auto ds = GenerateSynthetic(config);
    ASSERT_TRUE(ds.ok());
    CorpusBuildOptions build;
    build.min_word_count = 1;
    auto corpus = TokenizedCorpus::Build(ds->corpus, build);
    ASSERT_TRUE(corpus.ok());
    dataset_ = new SyntheticDataset(ds.MoveValueOrDie());
    corpus_ = new TokenizedCorpus(corpus.MoveValueOrDie());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete corpus_;
    dataset_ = nullptr;
    corpus_ = nullptr;
  }

  static GeoTopicOptions FastOptions() {
    GeoTopicOptions o;
    o.num_regions = 12;
    o.num_topics = 6;
    o.em_iterations = 8;
    return o;
  }

  static SyntheticDataset* dataset_;
  static TokenizedCorpus* corpus_;
};

SyntheticDataset* GeoTopicTest::dataset_ = nullptr;
TokenizedCorpus* GeoTopicTest::corpus_ = nullptr;

TEST_F(GeoTopicTest, TrainsWithRequestedSizes) {
  auto model = GeoTopicModel::Train(*corpus_, FastOptions());
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_EQ(model->num_regions(), 12);
  EXPECT_EQ(model->num_topics(), 6);
}

TEST_F(GeoTopicTest, LogLikelihoodNonDecreasing) {
  GeoTopicOptions o = FastOptions();
  o.neighbor_smoothing = false;  // pure EM is monotone
  auto model = GeoTopicModel::Train(*corpus_, o);
  ASSERT_TRUE(model.ok());
  const auto& trace = model->log_likelihood_trace();
  ASSERT_EQ(trace.size(), static_cast<std::size_t>(o.em_iterations));
  for (std::size_t i = 1; i < trace.size(); ++i) {
    // Allow a tiny numerical slack from the smoothed M-step.
    EXPECT_GE(trace[i], trace[i - 1] - std::fabs(trace[i - 1]) * 1e-3)
        << "iteration " << i;
  }
  // Overall it must improve substantially over the random init.
  EXPECT_GT(trace.back(), trace.front());
}

TEST_F(GeoTopicTest, ThetaRowsAreDistributions) {
  auto model = GeoTopicModel::Train(*corpus_, FastOptions());
  ASSERT_TRUE(model.ok());
  for (int r = 0; r < model->num_regions(); ++r) {
    double sum = 0.0;
    for (int z = 0; z < model->num_topics(); ++z) {
      const double p = model->region_topic(r, z);
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST_F(GeoTopicTest, PhiRowsAreDistributions) {
  auto model = GeoTopicModel::Train(*corpus_, FastOptions());
  ASSERT_TRUE(model.ok());
  for (int z = 0; z < model->num_topics(); ++z) {
    double sum = 0.0;
    for (int32_t w = 0; w < corpus_->vocab().size(); ++w) {
      sum += model->topic_word(z, w);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST_F(GeoTopicTest, RegionVariancesPositive) {
  auto model = GeoTopicModel::Train(*corpus_, FastOptions());
  ASSERT_TRUE(model.ok());
  for (int r = 0; r < model->num_regions(); ++r) {
    EXPECT_GT(model->region_sigma2(r), 0.0);
  }
}

TEST_F(GeoTopicTest, ScoreJointPrefersTrueLocation) {
  auto model = GeoTopicModel::Train(*corpus_, FastOptions());
  ASSERT_TRUE(model.ok());
  // For a batch of records, the true location should usually outscore a
  // far-away location given the record's text.
  int wins = 0, total = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    const auto& rec = corpus_->record(i);
    const GeoPoint far{rec.location.x > 20 ? 2.0 : 38.0,
                       rec.location.y > 20 ? 2.0 : 38.0};
    const double true_score = model->ScoreJoint(rec.location, rec.word_ids);
    const double far_score = model->ScoreJoint(far, rec.word_ids);
    if (true_score > far_score) ++wins;
    ++total;
  }
  EXPECT_GT(wins, total * 7 / 10);
}

TEST_F(GeoTopicTest, UnknownWordsIgnoredInScoring) {
  auto model = GeoTopicModel::Train(*corpus_, FastOptions());
  ASSERT_TRUE(model.ok());
  const GeoPoint p{10, 10};
  const double base = model->ScoreJoint(p, {0, 1});
  const double with_unknown = model->ScoreJoint(p, {0, 1, -5, 99999});
  EXPECT_DOUBLE_EQ(base, with_unknown);
}

TEST_F(GeoTopicTest, MgtmSmoothingCouplesNeighbors) {
  GeoTopicOptions lgta = FastOptions();
  GeoTopicOptions mgtm = FastOptions();
  mgtm.neighbor_smoothing = true;
  mgtm.smoothing_lambda = 0.8;
  auto a = GeoTopicModel::Train(*corpus_, lgta);
  auto b = GeoTopicModel::Train(*corpus_, mgtm);
  ASSERT_TRUE(a.ok() && b.ok());
  // Smoothing flattens region-topic distributions: average max θ entry
  // decreases.
  auto avg_max_theta = [](const GeoTopicModel& m) {
    double acc = 0.0;
    for (int r = 0; r < m.num_regions(); ++r) {
      double mx = 0.0;
      for (int z = 0; z < m.num_topics(); ++z) {
        mx = std::max(mx, m.region_topic(r, z));
      }
      acc += mx;
    }
    return acc / m.num_regions();
  };
  EXPECT_LT(avg_max_theta(*b), avg_max_theta(*a));
}

TEST_F(GeoTopicTest, PresetsDifferOnlyInSmoothing) {
  EXPECT_FALSE(LgtaOptions().neighbor_smoothing);
  EXPECT_TRUE(MgtmOptions().neighbor_smoothing);
  EXPECT_EQ(LgtaOptions().num_regions, MgtmOptions().num_regions);
}

TEST(GeoTopicValidationTest, RejectsBadInput) {
  TokenizedCorpus empty;
  EXPECT_TRUE(GeoTopicModel::Train(empty, GeoTopicOptions())
                  .status()
                  .IsInvalidArgument());
}

TEST_F(GeoTopicTest, RejectsBadOptions) {
  GeoTopicOptions o = FastOptions();
  o.num_regions = 0;
  EXPECT_TRUE(GeoTopicModel::Train(*corpus_, o).status().IsInvalidArgument());
  o = FastOptions();
  o.alpha = 0.0;
  EXPECT_TRUE(GeoTopicModel::Train(*corpus_, o).status().IsInvalidArgument());
  o = FastOptions();
  o.em_iterations = -1;
  EXPECT_TRUE(GeoTopicModel::Train(*corpus_, o).status().IsInvalidArgument());
}

}  // namespace
}  // namespace actor
