#include "data/tokenizer.h"

#include <gtest/gtest.h>

namespace actor {
namespace {

TEST(TokenizerTest, SplitsAndLowercases) {
  Tokenizer t;
  const auto tokens = t.Tokenize("Dawn of the Planet!");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "dawn");
  EXPECT_EQ(tokens[1], "planet");
}

TEST(TokenizerTest, RemovesStopwords) {
  Tokenizer t;
  const auto tokens = t.Tokenize("the movie was a treat");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "movie");
  EXPECT_EQ(tokens[1], "treat");
}

TEST(TokenizerTest, KeepsStopwordsWhenDisabled) {
  TokenizerOptions options;
  options.remove_stopwords = false;
  Tokenizer t(options);
  const auto tokens = t.Tokenize("the movie");
  EXPECT_EQ(tokens.size(), 2u);
}

TEST(TokenizerTest, StripsMentionsByDefault) {
  Tokenizer t;
  const auto tokens = t.Tokenize("hello @someone world");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "hello");
  EXPECT_EQ(tokens[1], "world");
}

TEST(TokenizerTest, KeepsMentionsWhenAsked) {
  TokenizerOptions options;
  options.keep_mentions = true;
  Tokenizer t(options);
  const auto tokens = t.Tokenize("hi @bob");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[1], "@bob");
}

TEST(TokenizerTest, HashtagPrefixStripped) {
  Tokenizer t;
  const auto tokens = t.Tokenize("#Lakers win");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "lakers");
}

TEST(TokenizerTest, UnderscoreUnitsKeptWhole) {
  Tokenizer t;
  const auto tokens = t.Tokenize("at patrick_molloy_sport_pub tonight");
  ASSERT_GE(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "patrick_molloy_sport_pub");
}

TEST(TokenizerTest, DropsPureNumbers) {
  Tokenizer t;
  const auto tokens = t.Tokenize("room 90038 open 24");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "room");
  EXPECT_EQ(tokens[1], "open");
}

TEST(TokenizerTest, DropsShortTokens) {
  Tokenizer t;  // min length 2
  const auto tokens = t.Tokenize("x yz");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "yz");
}

TEST(TokenizerTest, MinLengthConfigurable) {
  TokenizerOptions options;
  options.min_token_length = 5;
  Tokenizer t(options);
  const auto tokens = t.Tokenize("tiny enormous");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "enormous");
}

TEST(TokenizerTest, ApostrophesRemoved) {
  Tokenizer t;
  const auto tokens = t.Tokenize("molloy's pub");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "molloys");
}

TEST(TokenizerTest, EmptyText) {
  Tokenizer t;
  EXPECT_TRUE(t.Tokenize("").empty());
  EXPECT_TRUE(t.Tokenize("   !!! ...").empty());
}

TEST(TokenizerTest, MixedAlnumKept) {
  Tokenizer t;
  const auto tokens = t.Tokenize("visit la90038 now");
  // "now" is a stopword; la90038 has letters so survives.
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "visit");
  EXPECT_EQ(tokens[1], "la90038");
}

TEST(TokenizerTest, IsStopword) {
  Tokenizer t;
  EXPECT_TRUE(t.IsStopword("the"));
  EXPECT_FALSE(t.IsStopword("museum"));
}

TEST(TokenizerTest, PunctuationSeparators) {
  Tokenizer t;
  const auto tokens = t.Tokenize("coffee,tea;juice|water");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[3], "water");
}

}  // namespace
}  // namespace actor
