#include "eval/mrr.h"

#include <gtest/gtest.h>

namespace actor {
namespace {

TEST(MrrTest, PerfectRanksGiveOne) {
  EXPECT_DOUBLE_EQ(MeanReciprocalRank({1, 1, 1}), 1.0);
}

TEST(MrrTest, KnownMixture) {
  // 1/1, 1/2, 1/4 -> mean 7/12.
  EXPECT_DOUBLE_EQ(MeanReciprocalRank({1, 2, 4}), 7.0 / 12.0);
}

TEST(MrrTest, EmptyIsZero) { EXPECT_DOUBLE_EQ(MeanReciprocalRank({}), 0.0); }

TEST(MrrTest, IgnoresNonPositiveRanks) {
  EXPECT_DOUBLE_EQ(MeanReciprocalRank({1, 0, -3, 2}), 0.75);
}

TEST(MrrTest, AllInvalidIsZero) {
  EXPECT_DOUBLE_EQ(MeanReciprocalRank({0, -1}), 0.0);
}

TEST(MrrTest, SingleQuery) {
  EXPECT_DOUBLE_EQ(MeanReciprocalRank({5}), 0.2);
}

TEST(RankOfTruthTest, TruthBest) {
  EXPECT_EQ(RankOfTruth(10.0, {1.0, 2.0, 3.0}), 1);
}

TEST(RankOfTruthTest, TruthWorst) {
  EXPECT_EQ(RankOfTruth(0.0, {1.0, 2.0, 3.0}), 4);
}

TEST(RankOfTruthTest, Middle) {
  EXPECT_EQ(RankOfTruth(2.5, {1.0, 2.0, 3.0}), 2);
}

TEST(RankOfTruthTest, TiesCountAgainstTruth) {
  EXPECT_EQ(RankOfTruth(2.0, {2.0, 2.0, 1.0}), 3);
}

TEST(RankOfTruthTest, EmptyNoiseIsRankOne) {
  EXPECT_EQ(RankOfTruth(0.0, {}), 1);
}

TEST(RankOfTruthTest, DegenerateAllEqualRanksLast) {
  // A model scoring everything identically must not look perfect.
  EXPECT_EQ(RankOfTruth(1.0, std::vector<double>(10, 1.0)), 11);
}

TEST(HitsAtKTest, Basic) {
  EXPECT_DOUBLE_EQ(HitsAtK({1, 2, 3, 4}, 2), 0.5);
  EXPECT_DOUBLE_EQ(HitsAtK({1, 1, 1}, 1), 1.0);
  EXPECT_DOUBLE_EQ(HitsAtK({5, 6}, 3), 0.0);
}

TEST(HitsAtKTest, IgnoresInvalidRanks) {
  EXPECT_DOUBLE_EQ(HitsAtK({1, 0, -2, 4}, 3), 0.5);
}

TEST(HitsAtKTest, EmptyIsZero) { EXPECT_DOUBLE_EQ(HitsAtK({}, 3), 0.0); }

TEST(MeanRankTest, Basic) {
  EXPECT_DOUBLE_EQ(MeanRank({1, 3, 5}), 3.0);
}

TEST(MeanRankTest, IgnoresInvalid) {
  EXPECT_DOUBLE_EQ(MeanRank({2, 0, 4}), 3.0);
}

TEST(MeanRankTest, EmptyIsZero) { EXPECT_DOUBLE_EQ(MeanRank({}), 0.0); }

}  // namespace
}  // namespace actor
