#include "baselines/crossmap.h"

#include <gtest/gtest.h>

#include <cmath>

#include "eval/pipeline.h"
#include "util/vec_math.h"

namespace actor {
namespace {

class CrossMapTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PipelineOptions pipeline = UTGeoPipeline(0.1);
    pipeline.synthetic.num_records = 2000;
    pipeline.synthetic.seed = 77;
    auto prepared = PrepareDataset(pipeline, "crossmap-test");
    ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
    data_ = new PreparedDataset(prepared.MoveValueOrDie());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  static CrossMapOptions FastOptions() {
    CrossMapOptions o;
    o.dim = 16;
    o.epochs = 3;
    o.samples_per_edge = 4;
    return o;
  }

  static PreparedDataset* data_;
};

PreparedDataset* CrossMapTest::data_ = nullptr;

TEST_F(CrossMapTest, TrainsWithCorrectShapes) {
  auto model = TrainCrossMap(*data_->graphs, FastOptions());
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_EQ(model->center.rows(), data_->graphs->activity.num_vertices());
  EXPECT_EQ(model->center.dim(), 16);
}

TEST_F(CrossMapTest, EmbeddingsFinite) {
  auto model = TrainCrossMap(*data_->graphs, FastOptions());
  ASSERT_TRUE(model.ok());
  for (int r = 0; r < model->center.rows(); ++r) {
    for (int d = 0; d < 16; ++d) {
      ASSERT_TRUE(std::isfinite(model->center.row(r)[d]));
    }
  }
}

TEST_F(CrossMapTest, DeterministicForSeed) {
  auto a = TrainCrossMap(*data_->graphs, FastOptions());
  auto b = TrainCrossMap(*data_->graphs, FastOptions());
  ASSERT_TRUE(a.ok() && b.ok());
  for (int r = 0; r < a->center.rows(); ++r) {
    for (int d = 0; d < 16; ++d) {
      ASSERT_FLOAT_EQ(a->center.row(r)[d], b->center.row(r)[d]);
    }
  }
}

TEST_F(CrossMapTest, UserVariantDiffers) {
  CrossMapOptions with_u = FastOptions();
  with_u.include_user_edges = true;
  auto plain = TrainCrossMap(*data_->graphs, FastOptions());
  auto with_users = TrainCrossMap(*data_->graphs, with_u);
  ASSERT_TRUE(plain.ok() && with_users.ok());
  bool any_diff = false;
  for (int r = 0; r < plain->center.rows() && !any_diff; ++r) {
    for (int d = 0; d < 16; ++d) {
      if (plain->center.row(r)[d] != with_users->center.row(r)[d]) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(CrossMapTest, PlainVariantLeavesUserVectorsUntrained) {
  // Without user edges, user vertices receive no center updates: their
  // vectors stay at the random init scale (tiny norms vs trained units).
  auto model = TrainCrossMap(*data_->graphs, FastOptions());
  ASSERT_TRUE(model.ok());
  const auto& g = data_->graphs->activity;
  double user_norm = 0.0;
  const auto& users = g.VerticesOfType(VertexType::kUser);
  for (VertexId u : users) user_norm += Norm2(model->center.row(u), 16);
  user_norm /= static_cast<double>(users.size());
  const float init_bound = 0.5f;  // far below any trained norm
  EXPECT_LT(user_norm, init_bound);
}

TEST_F(CrossMapTest, CooccurrenceStructureLearned) {
  auto model = TrainCrossMap(*data_->graphs, FastOptions());
  ASSERT_TRUE(model.ok());
  const auto& g = data_->graphs->activity;
  const auto& lw = g.edges(EdgeType::kLW);
  double edge_sim = 0.0;
  const std::size_t n = std::min<std::size_t>(lw.size(), 1000);
  for (std::size_t i = 0; i < n; ++i) {
    edge_sim +=
        Cosine(model->center.row(lw.src[i]), model->center.row(lw.dst[i]), 16);
  }
  edge_sim /= static_cast<double>(n);
  EXPECT_GT(edge_sim, 0.1);
}

TEST_F(CrossMapTest, RejectsBadOptions) {
  CrossMapOptions o = FastOptions();
  o.dim = 0;
  EXPECT_TRUE(TrainCrossMap(*data_->graphs, o).status().IsInvalidArgument());
  o = FastOptions();
  o.epochs = 0;
  EXPECT_TRUE(TrainCrossMap(*data_->graphs, o).status().IsInvalidArgument());
}

TEST(CrossMapValidationTest, RejectsUnfinalizedGraph) {
  BuiltGraphs graphs;
  EXPECT_TRUE(TrainCrossMap(graphs, CrossMapOptions())
                  .status()
                  .IsFailedPrecondition());
}

}  // namespace
}  // namespace actor
