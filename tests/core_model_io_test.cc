#include "core/model_io.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "eval/pipeline.h"

namespace actor {
namespace {

class ModelIoTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PipelineOptions pipeline = UTGeoPipeline(0.05);
    pipeline.synthetic.num_records = 1200;
    auto prepared = PrepareDataset(pipeline, "model-io");
    ASSERT_TRUE(prepared.ok());
    data_ = new PreparedDataset(prepared.MoveValueOrDie());
    ActorOptions options;
    options.dim = 16;
    options.epochs = 3;
    options.samples_per_edge = 4;
    auto model = TrainActor(*data_->graphs, options);
    ASSERT_TRUE(model.ok());
    model_ = new ActorModel(model.MoveValueOrDie());
  }
  static void TearDownTestSuite() {
    delete model_;
    delete data_;
    model_ = nullptr;
    data_ = nullptr;
  }

  void SetUp() override {
    dir_ = ::testing::TempDir() + "/actor_model_io";
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  static PreparedDataset* data_;
  static ActorModel* model_;
};

PreparedDataset* ModelIoTest::data_ = nullptr;
ActorModel* ModelIoTest::model_ = nullptr;

TEST_F(ModelIoTest, SaveCreatesFiles) {
  ASSERT_TRUE(SaveActorModel(*model_, *data_->graphs, dir_).ok());
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/center.txt"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/context.txt"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/vertices.tsv"));
}

TEST_F(ModelIoTest, RoundTripPreservesEverything) {
  ASSERT_TRUE(SaveActorModel(*model_, *data_->graphs, dir_).ok());
  auto loaded = LoadedModel::Load(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_vertices(), model_->center.rows());
  ASSERT_EQ(loaded->center().dim(), model_->center.dim());
  for (VertexId v = 0; v < loaded->num_vertices(); ++v) {
    EXPECT_EQ(loaded->vertex_type(v), data_->graphs->activity.vertex_type(v));
    EXPECT_EQ(loaded->vertex_name(v), data_->graphs->activity.vertex_name(v));
    for (int d = 0; d < loaded->center().dim(); ++d) {
      ASSERT_NEAR(loaded->center().row(v)[d], model_->center.row(v)[d],
                  1e-6f);
    }
  }
}

TEST_F(ModelIoTest, LookupByName) {
  ASSERT_TRUE(SaveActorModel(*model_, *data_->graphs, dir_).ok());
  auto loaded = LoadedModel::Load(dir_);
  ASSERT_TRUE(loaded.ok());
  // Every word in the vocabulary resolves to its graph vertex.
  const std::string word = data_->full.vocab().word(0);
  const VertexId expected =
      data_->graphs->word_vertices[data_->full.vocab().Lookup(word)];
  EXPECT_EQ(loaded->Lookup(word), expected);
  EXPECT_EQ(loaded->Lookup("no_such_unit_name_xyz"), kInvalidVertex);
}

TEST_F(ModelIoTest, NearestOfTypeAfterReload) {
  ASSERT_TRUE(SaveActorModel(*model_, *data_->graphs, dir_).ok());
  auto loaded = LoadedModel::Load(dir_);
  ASSERT_TRUE(loaded.ok());
  const VertexId w = loaded->Lookup(data_->full.vocab().word(0));
  ASSERT_NE(w, kInvalidVertex);
  auto nearest = loaded->NearestOfType(w, VertexType::kWord, 5);
  ASSERT_EQ(nearest.size(), 5u);
  for (const auto& [v, sim] : nearest) {
    EXPECT_EQ(loaded->vertex_type(v), VertexType::kWord);
    EXPECT_NE(v, w);
    EXPECT_GE(sim, -1.0 - 1e-6);
    EXPECT_LE(sim, 1.0 + 1e-6);
  }
  // Sorted descending.
  for (std::size_t i = 1; i < nearest.size(); ++i) {
    EXPECT_GE(nearest[i - 1].second, nearest[i].second);
  }
}

TEST_F(ModelIoTest, LoadMissingDirectoryFails) {
  EXPECT_FALSE(LoadedModel::Load("/no/such/dir").ok());
}

TEST_F(ModelIoTest, MismatchedModelRejected) {
  ActorModel wrong;
  wrong.center = EmbeddingMatrix(3, 4);
  wrong.context = EmbeddingMatrix(3, 4);
  EXPECT_TRUE(SaveActorModel(wrong, *data_->graphs, dir_)
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace actor
