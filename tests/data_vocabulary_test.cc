#include "data/vocabulary.h"

#include <gtest/gtest.h>

namespace actor {
namespace {

TEST(VocabularyTest, AddAssignsDenseIds) {
  Vocabulary v;
  EXPECT_EQ(v.AddOccurrence("a"), 0);
  EXPECT_EQ(v.AddOccurrence("b"), 1);
  EXPECT_EQ(v.AddOccurrence("a"), 0);
  EXPECT_EQ(v.size(), 2);
}

TEST(VocabularyTest, CountsOccurrences) {
  Vocabulary v;
  v.AddOccurrence("x");
  v.AddOccurrence("x");
  v.AddOccurrence("y");
  EXPECT_EQ(v.count(0), 2);
  EXPECT_EQ(v.count(1), 1);
}

TEST(VocabularyTest, LookupUnknownIsMinusOne) {
  Vocabulary v;
  v.AddOccurrence("known");
  EXPECT_EQ(v.Lookup("unknown"), -1);
  EXPECT_EQ(v.Lookup("known"), 0);
}

TEST(VocabularyTest, WordRoundTrip) {
  Vocabulary v;
  v.AddOccurrence("hello");
  EXPECT_EQ(v.word(0), "hello");
}

TEST(VocabularyTest, EmptyVocab) {
  Vocabulary v;
  EXPECT_EQ(v.size(), 0);
  EXPECT_EQ(v.Lookup("x"), -1);
}

TEST(VocabularyPruneTest, DropsRareWords) {
  Vocabulary v;
  for (int i = 0; i < 5; ++i) v.AddOccurrence("common");
  v.AddOccurrence("rare");
  Vocabulary pruned = v.Prune(/*min_count=*/2, /*max_size=*/100);
  EXPECT_EQ(pruned.size(), 1);
  EXPECT_EQ(pruned.Lookup("common"), 0);
  EXPECT_EQ(pruned.Lookup("rare"), -1);
}

TEST(VocabularyPruneTest, CapsSize) {
  Vocabulary v;
  for (int i = 0; i < 10; ++i) {
    const std::string w = "w" + std::to_string(i);
    // Word i appears i+1 times.
    for (int k = 0; k <= i; ++k) v.AddOccurrence(w);
  }
  Vocabulary pruned = v.Prune(1, 3);
  EXPECT_EQ(pruned.size(), 3);
  // Highest-count words survive.
  EXPECT_GE(pruned.Lookup("w9"), 0);
  EXPECT_GE(pruned.Lookup("w8"), 0);
  EXPECT_GE(pruned.Lookup("w7"), 0);
  EXPECT_EQ(pruned.Lookup("w0"), -1);
}

TEST(VocabularyPruneTest, ReassignsIdsByFrequency) {
  Vocabulary v;
  v.AddOccurrence("low");
  for (int i = 0; i < 3; ++i) v.AddOccurrence("high");
  Vocabulary pruned = v.Prune(1, 10);
  EXPECT_EQ(pruned.Lookup("high"), 0);
  EXPECT_EQ(pruned.Lookup("low"), 1);
}

TEST(VocabularyPruneTest, PreservesCounts) {
  Vocabulary v;
  for (int i = 0; i < 4; ++i) v.AddOccurrence("w");
  Vocabulary pruned = v.Prune(1, 10);
  EXPECT_EQ(pruned.count(0), 4);
}

TEST(VocabularyPruneTest, TiesKeepFirstSeenOrder) {
  Vocabulary v;
  v.AddOccurrence("first");
  v.AddOccurrence("second");
  Vocabulary pruned = v.Prune(1, 10);
  EXPECT_EQ(pruned.Lookup("first"), 0);
  EXPECT_EQ(pruned.Lookup("second"), 1);
}

TEST(VocabularyPruneTest, AllPrunedIsEmpty) {
  Vocabulary v;
  v.AddOccurrence("once");
  Vocabulary pruned = v.Prune(5, 10);
  EXPECT_EQ(pruned.size(), 0);
}

}  // namespace
}  // namespace actor
