// Property tests tying the mean-shift hotspot detector to Definition 5:
// every detected hotspot must be (approximately) a local maximum of the
// Epanechnikov KDE estimated from the same samples, across generator
// seeds and bandwidths.

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "hotspot/hotspot_detector.h"
#include "hotspot/kde.h"
#include "util/rng.h"

namespace actor {
namespace {

struct PropertyCase {
  uint64_t seed;
  double bandwidth;
};

class SpatialHotspotProperty : public ::testing::TestWithParam<PropertyCase> {
};

TEST_P(SpatialHotspotProperty, DetectedModesAreKdeLocalMaxima) {
  const auto& param = GetParam();
  Rng rng(param.seed);
  // Three clusters with different densities.
  std::vector<GeoPoint> points;
  const GeoPoint centers[] = {{5, 5}, {15, 8}, {10, 18}};
  const int sizes[] = {400, 250, 150};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < sizes[c]; ++i) {
      points.push_back({rng.Gaussian(centers[c].x, 0.5),
                        rng.Gaussian(centers[c].y, 0.5)});
    }
  }
  MeanShiftOptions options;
  options.bandwidth = param.bandwidth;
  options.merge_radius = param.bandwidth / 2.0;
  auto hotspots = DetectSpatialHotspots(points, options);
  ASSERT_TRUE(hotspots.ok());
  ASSERT_GE(hotspots->size(), 1u);

  auto kde = Kde2d::Create(points, param.bandwidth);
  ASSERT_TRUE(kde.ok());
  for (const auto& center : hotspots->centers()) {
    // Definition 5: the hotspot is a local maximum of the kernel density.
    // On a finite sample a converged mean-shift trajectory can rest a hair
    // off the discrete-KDE argmax, so allow neighbours to exceed the mode
    // density by at most 3%.
    const double here = kde->Density(center);
    EXPECT_GT(here, 0.0);
    double best_neighbor = 0.0;
    const double step = param.bandwidth / 4.0;
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        if (dx == 0 && dy == 0) continue;
        best_neighbor = std::max(
            best_neighbor,
            kde->Density({center.x + dx * step, center.y + dy * step}));
      }
    }
    EXPECT_GE(here, 0.97 * best_neighbor)
        << "hotspot (" << center.x << ", " << center.y << ")";
  }
}

TEST_P(SpatialHotspotProperty, AssignmentIsNearestCenter) {
  const auto& param = GetParam();
  Rng rng(param.seed + 100);
  std::vector<GeoPoint> points;
  for (int i = 0; i < 300; ++i) {
    points.push_back(
        {rng.UniformRange(0.0, 20.0), rng.UniformRange(0.0, 20.0)});
  }
  MeanShiftOptions options;
  options.bandwidth = param.bandwidth;
  auto hotspots = DetectSpatialHotspots(points, options);
  ASSERT_TRUE(hotspots.ok());
  for (int i = 0; i < 50; ++i) {
    const GeoPoint p{rng.UniformRange(0.0, 20.0),
                     rng.UniformRange(0.0, 20.0)};
    const int32_t assigned = hotspots->Assign(p);
    ASSERT_GE(assigned, 0);
    const double assigned_dist =
        Distance(p, hotspots->center(assigned));
    for (std::size_t h = 0; h < hotspots->size(); ++h) {
      EXPECT_LE(assigned_dist,
                Distance(p, hotspots->center(static_cast<int32_t>(h))) +
                    1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndBandwidths, SpatialHotspotProperty,
    ::testing::Values(PropertyCase{1, 0.8}, PropertyCase{2, 0.8},
                      PropertyCase{3, 1.2}, PropertyCase{4, 1.6},
                      PropertyCase{5, 2.0}, PropertyCase{6, 1.0}));

class TemporalHotspotProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TemporalHotspotProperty, ModesAreCircularKdeLocalMaxima) {
  Rng rng(GetParam());
  std::vector<double> hours;
  // Morning + evening peaks.
  for (int i = 0; i < 300; ++i) {
    hours.push_back(std::fmod(rng.Gaussian(8.5, 0.7) + 24.0, 24.0));
    hours.push_back(std::fmod(rng.Gaussian(20.0, 0.9) + 24.0, 24.0));
  }
  MeanShiftOptions options;
  options.bandwidth = 1.0;
  options.merge_radius = 0.75;
  auto modes = MeanShiftModes1dCircular(hours, 24.0, options);
  ASSERT_TRUE(modes.ok());
  auto kde = Kde1d::Create(hours, 1.0, 24.0);
  ASSERT_TRUE(kde.ok());
  for (double m : *modes) {
    EXPECT_TRUE(kde->IsLocalMaximum(m, 0.25)) << "mode at hour " << m;
  }
}

TEST_P(TemporalHotspotProperty, SyntheticRecordsLandNearTopicPeaks) {
  SyntheticConfig config;
  config.seed = GetParam();
  config.num_records = 2500;
  config.num_users = 60;
  config.num_topics = 3;
  config.num_venues = 9;
  config.num_communities = 3;
  config.time_noise_hours = 0.5;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  std::vector<double> timestamps;
  for (const auto& r : ds->corpus.records()) {
    timestamps.push_back(r.timestamp);
  }
  MeanShiftOptions options;
  options.bandwidth = 1.0;
  options.merge_radius = 0.75;
  auto hotspots = DetectTemporalHotspots(timestamps, options);
  ASSERT_TRUE(hotspots.ok());
  // Every topic peak that is circularly isolated should be within one
  // bandwidth of some detected hotspot.
  for (double peak : ds->truth.topic_peak_hours) {
    double best = 24.0;
    for (double h : hotspots->hours()) {
      best = std::min(best, CircularHourDistance(peak, h));
    }
    EXPECT_LT(best, 1.5) << "peak hour " << peak;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TemporalHotspotProperty,
                         ::testing::Values(11ULL, 22ULL, 33ULL, 44ULL));

}  // namespace
}  // namespace actor
