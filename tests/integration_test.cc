// End-to-end integration tests: the full pipeline (generate -> tokenize ->
// split -> hotspots -> graphs -> train -> evaluate) and the paper's
// headline comparisons at miniature scale.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/crossmap.h"
#include "core/actor.h"
#include "eval/cross_modal_model.h"
#include "eval/pipeline.h"
#include "eval/prediction.h"

namespace actor {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PipelineOptions pipeline = UTGeoPipeline(0.25);
    pipeline.synthetic.num_records = 6000;
    pipeline.synthetic.seed = 2024;
    auto prepared = PrepareDataset(pipeline, "integration");
    ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
    data_ = new PreparedDataset(prepared.MoveValueOrDie());

    ActorOptions actor_options;
    actor_options.dim = 32;
    actor_options.epochs = 8;
    actor_options.samples_per_edge = 10;
    auto actor_model = TrainActor(*data_->graphs, actor_options);
    ASSERT_TRUE(actor_model.ok());
    actor_ = new ActorModel(actor_model.MoveValueOrDie());

    CrossMapOptions crossmap_options;
    crossmap_options.dim = 32;
    crossmap_options.epochs = 8;
    crossmap_options.samples_per_edge = 10;
    auto crossmap_model = TrainCrossMap(*data_->graphs, crossmap_options);
    ASSERT_TRUE(crossmap_model.ok());
    crossmap_ = new LineEmbedding(crossmap_model.MoveValueOrDie());
  }
  static void TearDownTestSuite() {
    delete actor_;
    delete crossmap_;
    delete data_;
    actor_ = nullptr;
    crossmap_ = nullptr;
    data_ = nullptr;
  }

  static MrrScores Evaluate(const EmbeddingMatrix& center) {
    EmbeddingCrossModalModel model("m", data_->Snapshot(center));
    auto scores = EvaluateCrossModal(model, data_->test);
    EXPECT_TRUE(scores.ok());
    return *scores;
  }

  static PreparedDataset* data_;
  static ActorModel* actor_;
  static LineEmbedding* crossmap_;
};

PreparedDataset* IntegrationTest::data_ = nullptr;
ActorModel* IntegrationTest::actor_ = nullptr;
LineEmbedding* IntegrationTest::crossmap_ = nullptr;

TEST_F(IntegrationTest, MrrScoresWithinUnitInterval) {
  const MrrScores scores = Evaluate(actor_->center);
  for (double s : {scores.text, scores.location, scores.time}) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST_F(IntegrationTest, ActorFarAboveRandomGuessing) {
  // Random ranking over 11 candidates gives MRR ~ 0.27.
  const MrrScores scores = Evaluate(actor_->center);
  EXPECT_GT(scores.text, 0.5);
  EXPECT_GT(scores.location, 0.5);
  EXPECT_GT(scores.time, 0.3);
}

TEST_F(IntegrationTest, HeadlineActorBeatsCrossMapOnAverage) {
  // The paper's headline (Table 2): ACTOR outperforms CrossMap. At this
  // miniature scale individual tasks can be noisy, so assert on the mean
  // of the three tasks.
  const MrrScores actor_scores = Evaluate(actor_->center);
  const MrrScores crossmap_scores = Evaluate(crossmap_->center);
  const double actor_mean =
      (actor_scores.text + actor_scores.location + actor_scores.time) / 3.0;
  const double crossmap_mean = (crossmap_scores.text +
                                crossmap_scores.location +
                                crossmap_scores.time) /
                               3.0;
  EXPECT_GT(actor_mean, crossmap_mean);
}

TEST_F(IntegrationTest, AblationsBelowComplete) {
  // Table 4 shape: removing either structure hurts the three-task mean.
  ActorOptions base;
  base.dim = 32;
  base.epochs = 8;
  base.samples_per_edge = 10;

  ActorOptions no_inter = base;
  no_inter.use_inter = false;
  auto wo_inter = TrainActor(*data_->graphs, no_inter);
  ASSERT_TRUE(wo_inter.ok());

  ActorOptions no_intra = base;
  no_intra.use_bag_of_words = false;
  auto wo_intra = TrainActor(*data_->graphs, no_intra);
  ASSERT_TRUE(wo_intra.ok());

  const MrrScores complete = Evaluate(actor_->center);
  const MrrScores inter_scores = Evaluate(wo_inter->center);
  const MrrScores intra_scores = Evaluate(wo_intra->center);
  auto mean = [](const MrrScores& s) {
    return (s.text + s.location + s.time) / 3.0;
  };
  EXPECT_GT(mean(complete), mean(inter_scores));
  EXPECT_GT(mean(complete), mean(intra_scores));
}

TEST_F(IntegrationTest, CaseStudyTruthRankedHighByActor) {
  EmbeddingCrossModalModel model("ACTOR", data_->Snapshot(actor_->center));
  // Average rank of the truth over a batch of case studies must be far
  // better than the random expectation of 6.
  double rank_sum = 0.0;
  const int n = 50;
  for (int q = 0; q < n; ++q) {
    auto ranking = CaseStudyRanking(model, data_->test, q,
                                    PredictionTask::kText);
    ASSERT_TRUE(ranking.ok());
    for (const auto& c : *ranking) {
      if (c.is_truth) rank_sum += c.rank;
    }
  }
  EXPECT_LT(rank_sum / n, 4.0);
}

TEST_F(IntegrationTest, TemporalHotspotCountPlausible) {
  // The paper's datasets yield 27-34 temporal hotspots; our circadian
  // generator should produce a comparable order (a handful to a few
  // dozen), not 2 and not hundreds.
  EXPECT_GE(data_->hotspots->temporal.size(), 3u);
  EXPECT_LE(data_->hotspots->temporal.size(), 40u);
}

TEST_F(IntegrationTest, EmbeddingsHaveUsedEveryUnitType) {
  const auto& g = data_->graphs->activity;
  for (VertexType t : {VertexType::kTime, VertexType::kLocation,
                       VertexType::kWord, VertexType::kUser}) {
    EXPECT_GT(g.VerticesOfType(t).size(), 0u);
  }
}

}  // namespace
}  // namespace actor
