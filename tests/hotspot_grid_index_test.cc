#include "hotspot/grid_index.h"

#include <gtest/gtest.h>

#include <limits>

#include "util/rng.h"

namespace actor {
namespace {

/// Brute-force nearest with the same tie-break (smallest index).
int32_t BruteNearest(const std::vector<GeoPoint>& points,
                     const GeoPoint& query) {
  int32_t best = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double d = Distance(query, points[i]);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int32_t>(i);
    }
  }
  return best;
}

TEST(GridIndexTest, EmptyReturnsMinusOne) {
  Grid2dIndex index({});
  EXPECT_EQ(index.Nearest({0, 0}), -1);
}

TEST(GridIndexTest, SinglePoint) {
  Grid2dIndex index({{3, 4}});
  EXPECT_EQ(index.Nearest({0, 0}), 0);
  EXPECT_EQ(index.Nearest({100, 100}), 0);
}

TEST(GridIndexTest, ExactHits) {
  std::vector<GeoPoint> points = {{0, 0}, {10, 0}, {0, 10}};
  Grid2dIndex index(points);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(index.Nearest(points[i]), static_cast<int32_t>(i));
  }
}

TEST(GridIndexTest, FarQueryOutsideGrid) {
  std::vector<GeoPoint> points = {{1, 1}, {2, 2}};
  Grid2dIndex index(points);
  EXPECT_EQ(index.Nearest({-500, -500}), 0);
  EXPECT_EQ(index.Nearest({500, 500}), 1);
}

class GridIndexPropertySweep : public ::testing::TestWithParam<int> {};

TEST_P(GridIndexPropertySweep, MatchesBruteForce) {
  const int n = GetParam();
  Rng rng(n * 31 + 7);
  std::vector<GeoPoint> points(n);
  for (auto& p : points) {
    // Mixture of clustered and scattered points.
    if (rng.Bernoulli(0.5)) {
      p = {rng.Gaussian(10.0, 1.0), rng.Gaussian(10.0, 1.0)};
    } else {
      p = {rng.UniformRange(-40.0, 40.0), rng.UniformRange(-40.0, 40.0)};
    }
  }
  Grid2dIndex index(points);
  for (int q = 0; q < 300; ++q) {
    const GeoPoint query{rng.UniformRange(-50.0, 50.0),
                         rng.UniformRange(-50.0, 50.0)};
    ASSERT_EQ(index.Nearest(query), BruteNearest(points, query))
        << "query (" << query.x << ", " << query.y << ") n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GridIndexPropertySweep,
                         ::testing::Values(1, 2, 3, 10, 100, 1000));

TEST(GridIndexTest, ExplicitCellSizeWorks) {
  Rng rng(9);
  std::vector<GeoPoint> points(200);
  for (auto& p : points) {
    p = {rng.UniformRange(0.0, 20.0), rng.UniformRange(0.0, 20.0)};
  }
  Grid2dIndex coarse(points, 10.0);
  Grid2dIndex fine(points, 0.1);
  for (int q = 0; q < 100; ++q) {
    const GeoPoint query{rng.UniformRange(0.0, 20.0),
                         rng.UniformRange(0.0, 20.0)};
    EXPECT_EQ(coarse.Nearest(query), fine.Nearest(query));
  }
}

TEST(GridIndexTest, CoincidentPointsTieBreakToSmallestIndex) {
  std::vector<GeoPoint> points = {{5, 5}, {5, 5}, {5, 5}};
  Grid2dIndex index(points);
  EXPECT_EQ(index.Nearest({5, 5}), 0);
  EXPECT_EQ(index.Nearest({6, 6}), 0);
}

}  // namespace
}  // namespace actor
