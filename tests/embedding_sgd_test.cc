#include "embedding/sgd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "util/thread_pool.h"
#include "util/vec_math.h"

namespace actor {
namespace {

/// L-W graph with two "topics": (L0; w0, w1, w2) and (L1; w3, w4, w5),
/// each topic a word triangle plus its location. Words of the same topic
/// share two contexts (the other words) plus the location, so
/// second-order proximity separates the topics.
Heterograph TwoTopicGraph() {
  Heterograph g;
  const VertexId l0 = g.AddVertex(VertexType::kLocation, "L0");
  const VertexId l1 = g.AddVertex(VertexType::kLocation, "L1");
  for (int i = 0; i < 6; ++i) {
    g.AddVertex(VertexType::kWord, "w" + std::to_string(i));
  }
  auto topic = [&](VertexId loc, VertexId w_base) {
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(g.AccumulateEdge(loc, w_base + i, 10).ok());
      for (int j = i + 1; j < 3; ++j) {
        EXPECT_TRUE(g.AccumulateEdge(w_base + i, w_base + j, 10).ok());
      }
    }
  };
  topic(l0, 2);
  topic(l1, 5);
  EXPECT_TRUE(g.Finalize().ok());
  return g;
}

TEST(NegativeSamplingUpdateTest, PositivePairMovesCloser) {
  EmbeddingMatrix context(2, 4);
  float center[] = {0.1f, -0.2f, 0.3f, 0.05f};
  context.row(0)[0] = 0.2f;
  context.row(0)[1] = 0.1f;
  const SigmoidTable sigmoid;
  Rng rng(1);
  const float before = Dot(center, context.row(0), 4);
  float grad[4] = {0, 0, 0, 0};
  NegativeSamplingUpdate(
      center, /*positive=*/0, /*negatives=*/0, /*lr=*/0.5f, &context, sigmoid,
      rng, [](Rng&) { return kInvalidVertex; }, grad);
  Add(grad, center, 4);
  const float after = Dot(center, context.row(0), 4);
  EXPECT_GT(after, before);
}

TEST(NegativeSamplingUpdateTest, NegativeMovesAway) {
  EmbeddingMatrix context(2, 4);
  float center[] = {0.3f, 0.3f, 0.0f, 0.0f};
  // Positive context row 0, negative row 1 aligned with center.
  context.row(1)[0] = 0.4f;
  context.row(1)[1] = 0.4f;
  const SigmoidTable sigmoid;
  Rng rng(2);
  const float neg_before = Dot(center, context.row(1), 4);
  float grad[4] = {0, 0, 0, 0};
  NegativeSamplingUpdate(
      center, 0, /*negatives=*/1, 0.5f, &context, sigmoid, rng,
      [](Rng&) -> VertexId { return 1; }, grad);
  Add(grad, center, 4);
  const float neg_after = Dot(center, context.row(1), 4);
  EXPECT_LT(neg_after, neg_before);
}

TEST(NegativeSamplingUpdateTest, SkipsInvalidAndSelfNegatives) {
  EmbeddingMatrix context(1, 2);
  context.row(0)[0] = 0.5f;
  float center[] = {0.5f, 0.0f};
  const SigmoidTable sigmoid;
  Rng rng(3);
  float grad[2] = {0, 0};
  // Negatives always return the positive vertex -> must be skipped, so the
  // update equals a positives-only update.
  const float ctx_before = context.row(0)[0];
  NegativeSamplingUpdate(
      center, 0, 5, 0.1f, &context, sigmoid, rng,
      [](Rng&) -> VertexId { return 0; }, grad);
  const float positive_gain = context.row(0)[0] - ctx_before;
  EXPECT_GT(positive_gain, 0.0f);
}

TEST(EdgeSamplingTrainerTest, PrepareValidatesShapes) {
  Heterograph g = TwoTopicGraph();
  auto noise = TypedNegativeSampler::Create(g);
  ASSERT_TRUE(noise.ok());
  EmbeddingMatrix wrong_rows(3, 4), context(8, 4);
  TrainOptions options;
  options.dim = 4;
  EdgeSamplingTrainer trainer(&g, &wrong_rows, &context, &*noise, options);
  EXPECT_TRUE(trainer.Prepare().IsInvalidArgument());
}

TEST(EdgeSamplingTrainerTest, PrepareRejectsDimMismatch) {
  Heterograph g = TwoTopicGraph();
  auto noise = TypedNegativeSampler::Create(g);
  ASSERT_TRUE(noise.ok());
  EmbeddingMatrix center(8, 4), context(8, 8);
  EdgeSamplingTrainer trainer(&g, &center, &context, &*noise, {});
  EXPECT_TRUE(trainer.Prepare().IsInvalidArgument());
}

TEST(EdgeSamplingTrainerTest, TrainBeforePrepareFails) {
  Heterograph g = TwoTopicGraph();
  auto noise = TypedNegativeSampler::Create(g);
  ASSERT_TRUE(noise.ok());
  EmbeddingMatrix center(8, 4), context(8, 4);
  EdgeSamplingTrainer trainer(&g, &center, &context, &*noise, {});
  EXPECT_TRUE(
      trainer.TrainEdgeType(EdgeType::kLW, 10, 0.02f).IsFailedPrecondition());
}

TEST(EdgeSamplingTrainerTest, EmptyEdgeTypeIsNoOp) {
  Heterograph g = TwoTopicGraph();
  auto noise = TypedNegativeSampler::Create(g);
  ASSERT_TRUE(noise.ok());
  EmbeddingMatrix center(8, 4), context(8, 4);
  TrainOptions options;
  options.dim = 4;
  EdgeSamplingTrainer trainer(&g, &center, &context, &*noise, options);
  ASSERT_TRUE(trainer.Prepare().ok());
  EXPECT_TRUE(trainer.TrainEdgeType(EdgeType::kUU, 100, 0.02f).ok());
  EXPECT_EQ(trainer.steps_done(), 0);
}

TEST(EdgeSamplingTrainerTest, NegativeSamplesRejected) {
  Heterograph g = TwoTopicGraph();
  auto noise = TypedNegativeSampler::Create(g);
  ASSERT_TRUE(noise.ok());
  EmbeddingMatrix center(8, 4), context(8, 4);
  TrainOptions options;
  options.dim = 4;
  EdgeSamplingTrainer trainer(&g, &center, &context, &*noise, options);
  ASSERT_TRUE(trainer.Prepare().ok());
  EXPECT_TRUE(trainer.TrainEdgeType(EdgeType::kLW, -1, 0.02f)
                  .IsInvalidArgument());
}

TEST(EdgeSamplingTrainerTest, TrainingSeparatesTopics) {
  Heterograph g = TwoTopicGraph();
  auto noise = TypedNegativeSampler::Create(g);
  ASSERT_TRUE(noise.ok());
  EmbeddingMatrix center(8, 8), context(8, 8);
  Rng rng(11);
  center.InitUniform(rng);
  context.InitZero();
  TrainOptions options;
  options.dim = 8;
  options.negatives = 2;
  options.seed = 11;
  EdgeSamplingTrainer trainer(&g, &center, &context, &*noise, options);
  ASSERT_TRUE(trainer.Prepare().ok());
  for (int epoch = 0; epoch < 30; ++epoch) {
    ASSERT_TRUE(trainer.TrainEdgeType(EdgeType::kLW, 2000, 0.05f).ok());
    ASSERT_TRUE(trainer.TrainEdgeType(EdgeType::kWW, 2000, 0.05f).ok());
  }
  EXPECT_EQ(trainer.steps_done(), 30 * 4000);
  // Words of the same topic end up more similar than across topics.
  const float same = Cosine(center.row(2), center.row(3), 8);
  const float cross = Cosine(center.row(2), center.row(5), 8);
  EXPECT_GT(same, cross);
  // Location embeds near its own words.
  const float l0_w0 = Cosine(center.row(0), center.row(2), 8);
  const float l0_w5 = Cosine(center.row(0), center.row(5), 8);
  EXPECT_GT(l0_w0, l0_w5);
}

TEST(ShardSeedTest, DistinctAcrossShardsAndSteps) {
  std::set<uint64_t> seeds;
  for (uint64_t step : {0ull, 1ull, 2ull, 4000ull}) {
    for (uint64_t shard = 0; shard < 8; ++shard) {
      seeds.insert(ShardSeed(/*base=*/42, step, shard));
    }
  }
  EXPECT_EQ(seeds.size(), 4u * 8u);
}

TEST(ShardSeedTest, ShardStreamsAreDecorrelated) {
  // The old additive scheme (seed + step + GOLDEN * (shard + 1)) produced
  // xorshift128+ states differing only in a few low bits, so neighbouring
  // shards emitted correlated streams. SplitMix64 mixing must give shards
  // with adjacent ids fully distinct draw sequences.
  const uint64_t base = 7, step = 12000;
  std::vector<Rng> rngs;
  for (uint64_t shard = 0; shard < 4; ++shard) {
    rngs.emplace_back(ShardSeed(base, step, shard));
  }
  for (std::size_t a = 0; a < rngs.size(); ++a) {
    for (std::size_t b = a + 1; b < rngs.size(); ++b) {
      Rng x(ShardSeed(base, step, a)), y(ShardSeed(base, step, b));
      int equal = 0;
      for (int i = 0; i < 256; ++i) {
        if (x.Next() == y.Next()) ++equal;
      }
      EXPECT_EQ(equal, 0) << "shards " << a << " and " << b;
    }
  }
}

TEST(ShardSeedTest, BaseSeedChangesAllShards) {
  for (uint64_t shard = 0; shard < 4; ++shard) {
    EXPECT_NE(ShardSeed(1, 0, shard), ShardSeed(2, 0, shard));
  }
}

TEST(EdgeSamplingTrainerTest, MultiThreadedTrainingRuns) {
  Heterograph g = TwoTopicGraph();
  auto noise = TypedNegativeSampler::Create(g);
  ASSERT_TRUE(noise.ok());
  EmbeddingMatrix center(8, 8), context(8, 8);
  Rng rng(13);
  center.InitUniform(rng);
  TrainOptions options;
  options.dim = 8;
  options.num_threads = 3;
  EdgeSamplingTrainer trainer(&g, &center, &context, &*noise, options);
  ASSERT_TRUE(trainer.Prepare().ok());
  ASSERT_TRUE(trainer.TrainEdgeType(EdgeType::kLW, 10000, 0.05f).ok());
  EXPECT_EQ(trainer.steps_done(), 10000);
  // Embeddings stay finite under concurrent updates.
  for (int r = 0; r < 8; ++r) {
    for (int d = 0; d < 8; ++d) {
      EXPECT_TRUE(std::isfinite(center.row(r)[d]));
      EXPECT_TRUE(std::isfinite(context.row(r)[d]));
    }
  }
}

TEST(EdgeSamplingTrainerTest, SharedExternalPoolTrainsAcrossTrainers) {
  // The persistent-pool contract: one pool, owned by the caller, serves
  // several trainers without respawning threads.
  Heterograph g = TwoTopicGraph();
  auto noise = TypedNegativeSampler::Create(g);
  ASSERT_TRUE(noise.ok());
  ThreadPool pool(2);
  for (int round = 0; round < 3; ++round) {
    EmbeddingMatrix center(8, 8), context(8, 8);
    Rng rng(17 + round);
    center.InitUniform(rng);
    TrainOptions options;
    options.dim = 8;
    options.num_threads = 2;
    options.pool = &pool;
    EdgeSamplingTrainer trainer(&g, &center, &context, &*noise, options);
    ASSERT_TRUE(trainer.Prepare().ok());
    ASSERT_TRUE(trainer.TrainEdgeType(EdgeType::kLW, 5000, 0.05f).ok());
    EXPECT_EQ(trainer.steps_done(), 5000);
    for (int r = 0; r < 8; ++r) {
      for (int d = 0; d < 8; ++d) {
        ASSERT_TRUE(std::isfinite(center.row(r)[d]));
      }
    }
  }
}

TEST(EdgeSamplingTrainerTest, SingleThreadDeterministicWithPoolPresent) {
  // A pool being available must not break the sequential single-thread
  // path: num_threads == 1 ignores the pool and stays bit-deterministic.
  Heterograph g = TwoTopicGraph();
  auto noise = TypedNegativeSampler::Create(g);
  ASSERT_TRUE(noise.ok());
  ThreadPool pool(4);
  auto run = [&](EmbeddingMatrix* center, EmbeddingMatrix* context) {
    Rng rng(31);
    center->InitUniform(rng);
    context->InitZero();
    TrainOptions options;
    options.dim = 8;
    options.negatives = 2;
    options.seed = 31;
    options.num_threads = 1;
    options.pool = &pool;
    EdgeSamplingTrainer trainer(&g, center, context, &*noise, options);
    ASSERT_TRUE(trainer.Prepare().ok());
    ASSERT_TRUE(trainer.TrainEdgeType(EdgeType::kLW, 3000, 0.05f).ok());
  };
  EmbeddingMatrix c1(8, 8), x1(8, 8), c2(8, 8), x2(8, 8);
  run(&c1, &x1);
  run(&c2, &x2);
  for (int r = 0; r < 8; ++r) {
    for (int d = 0; d < 8; ++d) {
      ASSERT_EQ(c1.row(r)[d], c2.row(r)[d]) << "row " << r << " dim " << d;
      ASSERT_EQ(x1.row(r)[d], x2.row(r)[d]) << "row " << r << " dim " << d;
    }
  }
}

}  // namespace
}  // namespace actor
