// ModelSnapshot / SnapshotStore: both factory paths must resolve
// modalities exactly like the structures they froze, versions must be
// monotone, and a handle acquired before further ingests must keep
// scoring the model it captured (snapshot isolation).

#include "serve/model_snapshot.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/actor.h"
#include "core/online_actor.h"
#include "data/synthetic.h"
#include "eval/pipeline.h"
#include "serve/query_engine.h"

namespace actor {
namespace {

std::vector<std::vector<TokenizedRecord>> MakeBatches(int records,
                                                      int batches,
                                                      uint64_t seed = 5) {
  SyntheticConfig config;
  config.seed = seed;
  config.num_records = records;
  config.num_users = 60;
  config.num_communities = 4;
  config.num_topics = 6;
  config.num_venues = 12;
  config.keywords_per_topic = 15;
  config.background_vocab = 30;
  auto ds = GenerateSynthetic(config);
  EXPECT_TRUE(ds.ok());
  CorpusBuildOptions build;
  build.min_word_count = 1;
  auto corpus = TokenizedCorpus::Build(ds->corpus, build);
  EXPECT_TRUE(corpus.ok());
  std::vector<std::vector<TokenizedRecord>> out(batches);
  for (std::size_t i = 0; i < corpus->size(); ++i) {
    out[i * batches / corpus->size()].push_back(corpus->record(i));
  }
  return out;
}

OnlineActorOptions FastOnlineOptions() {
  OnlineActorOptions o;
  o.dim = 16;
  o.samples_per_edge_per_batch = 2.0;
  return o;
}

// --- Batch path ------------------------------------------------------------

class BatchSnapshotTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PipelineOptions pipeline = UTGeoPipeline(0.1);
    pipeline.synthetic.num_records = 1500;
    pipeline.synthetic.seed = 11;
    auto prepared = PrepareDataset(pipeline, "snapshot-test");
    ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
    data_ = new PreparedDataset(prepared.MoveValueOrDie());
    ActorOptions options;
    options.dim = 16;
    options.epochs = 3;
    options.samples_per_edge = 4;
    auto model = TrainActor(*data_->graphs, options);
    ASSERT_TRUE(model.ok());
    model_ = new ActorModel(model.MoveValueOrDie());
  }
  static void TearDownTestSuite() {
    delete model_;
    delete data_;
    model_ = nullptr;
    data_ = nullptr;
  }

  static PreparedDataset* data_;
  static ActorModel* model_;
};

PreparedDataset* BatchSnapshotTest::data_ = nullptr;
ActorModel* BatchSnapshotTest::model_ = nullptr;

TEST_F(BatchSnapshotTest, CenterIsDeepCopiedBitExactly) {
  auto snap = data_->Snapshot(model_->center, /*version=*/7);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version(), 7u);
  ASSERT_EQ(snap->num_units(), model_->center.rows());
  ASSERT_EQ(snap->dim(), model_->center.dim());
  for (int32_t v = 0; v < snap->num_units(); ++v) {
    for (int32_t d = 0; d < snap->dim(); ++d) {
      ASSERT_EQ(snap->center().row(v)[d], model_->center.row(v)[d])
          << "v=" << v << " d=" << d;
    }
  }
  // A deep copy: mutating the training matrix must not leak into the
  // published snapshot.
  const float before = snap->center().row(0)[0];
  model_->center.row(0)[0] = before + 42.0f;
  EXPECT_EQ(snap->center().row(0)[0], before);
  model_->center.row(0)[0] = before;
}

TEST_F(BatchSnapshotTest, ResolutionMatchesPipelineStructures) {
  auto snap = data_->Snapshot(model_->center);
  for (std::size_t i = 0; i < data_->test.size(); ++i) {
    const TokenizedRecord& rec = data_->test.record(i);
    const int32_t sh = data_->hotspots->spatial.Assign(rec.location);
    ASSERT_GE(sh, 0);
    EXPECT_EQ(snap->SpatialVertex(rec.location),
              data_->graphs->spatial_vertices[sh]);
    const int32_t th = data_->hotspots->temporal.Assign(rec.timestamp);
    ASSERT_GE(th, 0);
    EXPECT_EQ(snap->TemporalVertexAt(rec.timestamp),
              data_->graphs->temporal_vertices[th]);
    for (const int32_t w : rec.word_ids) {
      EXPECT_EQ(snap->WordVertex(w), data_->graphs->word_vertices[w]);
    }
  }
  EXPECT_TRUE(snap->has_vocab());
  const std::string word = data_->full.vocab().word(0);
  EXPECT_EQ(snap->LookupWord(word), data_->full.vocab().Lookup(word));
  EXPECT_EQ(snap->LookupWord("definitely_not_a_word"), -1);
}

TEST_F(BatchSnapshotTest, CatalogueMatchesActivityGraph) {
  auto snap = data_->Snapshot(model_->center);
  for (VertexType type : {VertexType::kTime, VertexType::kLocation,
                          VertexType::kWord, VertexType::kUser}) {
    EXPECT_EQ(snap->VerticesOfType(type),
              data_->graphs->activity.VerticesOfType(type));
  }
  for (VertexId v = 0; v < snap->num_units(); ++v) {
    EXPECT_EQ(snap->vertex_type(v), data_->graphs->activity.vertex_type(v));
    EXPECT_EQ(snap->vertex_name(v), data_->graphs->activity.vertex_name(v));
  }
}

TEST_F(BatchSnapshotTest, PublishActorModelStampsStepVersionAndContext) {
  auto snap = PublishActorModel(*model_, data_->graphs, data_->hotspots,
                                data_->vocab);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version(),
            static_cast<uint64_t>(model_->stats.edge_steps) +
                static_cast<uint64_t>(model_->stats.record_steps));
  ASSERT_NE(snap->context(), nullptr);
  EXPECT_EQ(snap->context()->rows(), model_->context.rows());
  EXPECT_EQ(snap->context()->row(0)[0], model_->context.row(0)[0]);
  EXPECT_TRUE(snap->has_vocab());
}

TEST_F(BatchSnapshotTest, NullVocabMakesKeywordsUnknown) {
  auto snap = ModelSnapshot::FromBatch(model_->center, /*context=*/nullptr,
                                       data_->graphs, data_->hotspots,
                                       /*vocab=*/nullptr, /*version=*/1);
  EXPECT_FALSE(snap->has_vocab());
  EXPECT_EQ(snap->LookupWord(data_->full.vocab().word(0)), -1);
  EXPECT_EQ(snap->context(), nullptr);
}

// --- Online path -----------------------------------------------------------

TEST(OnlineSnapshotTest, ResolutionMatchesActorAccessors) {
  auto actor = OnlineActor::Create(FastOnlineOptions());
  ASSERT_TRUE(actor.ok());
  const auto batches = MakeBatches(800, 2);
  ASSERT_TRUE(actor->Ingest(batches[0]).ok());
  ASSERT_TRUE(actor->Ingest(batches[1]).ok());
  auto snap = actor->PublishSnapshot();
  ASSERT_NE(snap, nullptr);
  ASSERT_EQ(snap->num_units(), actor->num_units());
  for (const TokenizedRecord& rec : batches[1]) {
    EXPECT_EQ(snap->SpatialVertex(rec.location),
              actor->SpatialUnit(rec.location));
    EXPECT_EQ(snap->TemporalVertexAt(rec.timestamp),
              actor->TemporalUnit(rec.timestamp));
    for (const int32_t w : rec.word_ids) {
      EXPECT_EQ(snap->WordVertex(w), actor->WordUnit(w));
    }
  }
  for (VertexId v = 0; v < snap->num_units(); ++v) {
    EXPECT_EQ(snap->vertex_type(v), actor->unit_type(v));
    EXPECT_EQ(snap->vertex_name(v), actor->unit_name(v));
    for (int32_t d = 0; d < snap->dim(); ++d) {
      ASSERT_EQ(snap->center().row(v)[d], actor->center().row(v)[d]);
    }
  }
  // Streaming snapshots carry word ids, not strings.
  EXPECT_FALSE(snap->has_vocab());
}

TEST(OnlineSnapshotTest, OfTypeListsPartitionTheCatalogue) {
  auto actor = OnlineActor::Create(FastOnlineOptions());
  ASSERT_TRUE(actor.ok());
  ASSERT_TRUE(actor->Ingest(MakeBatches(500, 1)[0]).ok());
  auto snap = actor->PublishSnapshot();
  std::size_t total = 0;
  for (int t = 0; t < kNumVertexTypes; ++t) {
    const auto type = static_cast<VertexType>(t);
    for (VertexId v : snap->VerticesOfType(type)) {
      EXPECT_EQ(snap->vertex_type(v), type);
    }
    total += snap->VerticesOfType(type).size();
  }
  EXPECT_EQ(total, static_cast<std::size_t>(snap->num_units()));
}

TEST(OnlineSnapshotTest, VersionIsMonotoneAcrossPublishes) {
  auto actor = OnlineActor::Create(FastOnlineOptions());
  ASSERT_TRUE(actor.ok());
  const auto batches = MakeBatches(900, 3);
  uint64_t last = 0;
  for (const auto& batch : batches) {
    ASSERT_TRUE(actor->Ingest(batch).ok());
    auto snap = actor->PublishSnapshot();
    ASSERT_NE(snap, nullptr);
    EXPECT_GT(snap->version(), last);
    last = snap->version();
  }
  // A pure-decay tick still bumps the version via the batch count.
  ASSERT_TRUE(actor->Ingest({}).ok());
  EXPECT_GT(actor->PublishSnapshot()->version(), last);
}

TEST(OnlineSnapshotTest, CurrentSnapshotTracksLatestPublish) {
  auto actor = OnlineActor::Create(FastOnlineOptions());
  ASSERT_TRUE(actor.ok());
  EXPECT_EQ(actor->CurrentSnapshot(), nullptr);
  ASSERT_TRUE(actor->Ingest(MakeBatches(400, 1)[0]).ok());
  auto first = actor->PublishSnapshot();
  EXPECT_EQ(actor->CurrentSnapshot(), first);
  ASSERT_TRUE(actor->Ingest({}).ok());
  auto second = actor->PublishSnapshot();
  EXPECT_EQ(actor->CurrentSnapshot(), second);
  EXPECT_NE(first, second);
  // The old handle stays alive and unchanged.
  EXPECT_LT(first->version(), second->version());
}

TEST(OnlineSnapshotTest, HandleScoresIdenticallyAfterFurtherIngest) {
  // Snapshot isolation: queries through a handle acquired before an
  // Ingest() must return bit-identical scores after it.
  auto actor = OnlineActor::Create(FastOnlineOptions());
  ASSERT_TRUE(actor.ok());
  const auto batches = MakeBatches(900, 3);
  ASSERT_TRUE(actor->Ingest(batches[0]).ok());
  auto handle = actor->PublishSnapshot();
  ASSERT_NE(handle, nullptr);

  const std::vector<float> query(handle->center().row(0),
                                 handle->center().row(0) + handle->dim());
  QueryEngine engine(handle);
  auto before = engine.QueryByVector(query.data(), VertexType::kWord, 10);
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(actor->Ingest(batches[1]).ok());
  ASSERT_TRUE(actor->Ingest(batches[2]).ok());
  actor->PublishSnapshot();

  auto after = engine.QueryByVector(query.data(), VertexType::kWord, 10);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before->size(), after->size());
  for (std::size_t i = 0; i < before->size(); ++i) {
    EXPECT_EQ((*before)[i].vertex, (*after)[i].vertex);
    EXPECT_EQ((*before)[i].similarity, (*after)[i].similarity);
  }
}

// --- SnapshotStore ---------------------------------------------------------

TEST(SnapshotStoreTest, PublishAcquireRoundTrip) {
  SnapshotStore store;
  EXPECT_EQ(store.Acquire(), nullptr);
  EmbeddingMatrix m(4, 8);
  auto snap = ModelSnapshot::FromOnline(m, {}, /*version=*/3);
  store.Publish(snap);
  EXPECT_EQ(store.Acquire(), snap);
  auto newer = ModelSnapshot::FromOnline(m, {}, /*version=*/4);
  store.Publish(newer);
  EXPECT_EQ(store.Acquire(), newer);
  // The superseded snapshot survives as long as someone holds it.
  EXPECT_EQ(snap->version(), 3u);
}

}  // namespace
}  // namespace actor
