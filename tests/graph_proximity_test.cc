#include "graph/proximity.h"

#include <gtest/gtest.h>

namespace actor {
namespace {

/// T0 - L0 - {w0, w1}; w2 attached only to w0; user u0 - T0.
struct Fixture {
  Heterograph g;
  VertexId t0, l0, w0, w1, w2, u0;

  Fixture() {
    t0 = g.AddVertex(VertexType::kTime, "T0");
    l0 = g.AddVertex(VertexType::kLocation, "L0");
    w0 = g.AddVertex(VertexType::kWord, "w0");
    w1 = g.AddVertex(VertexType::kWord, "w1");
    w2 = g.AddVertex(VertexType::kWord, "w2");
    u0 = g.AddVertex(VertexType::kUser, "u0");
    EXPECT_TRUE(g.AccumulateEdge(t0, l0, 2.0).ok());
    EXPECT_TRUE(g.AccumulateEdge(l0, w0, 3.0).ok());
    EXPECT_TRUE(g.AccumulateEdge(l0, w1, 3.0).ok());
    EXPECT_TRUE(g.AccumulateEdge(w0, w2, 1.0).ok());
    EXPECT_TRUE(g.AccumulateEdge(u0, t0, 1.0).ok());
    EXPECT_TRUE(g.Finalize().ok());
  }
};

TEST(FirstOrderProximityTest, MatchesEdgeWeights) {
  Fixture f;
  EXPECT_DOUBLE_EQ(FirstOrderProximity(f.g, f.t0, f.l0), 2.0);
  EXPECT_DOUBLE_EQ(FirstOrderProximity(f.g, f.l0, f.w0), 3.0);
  EXPECT_DOUBLE_EQ(FirstOrderProximity(f.g, f.t0, f.w0), 0.0);
}

TEST(SecondOrderProximityTest, SharedNeighborhoodIsHigh) {
  Fixture f;
  // w1's only neighbor is L0; w0 has {L0, w2}. They share L0.
  const double p = SecondOrderProximity(f.g, f.w0, f.w1);
  EXPECT_GT(p, 0.5);
  EXPECT_LT(p, 1.0);
}

TEST(SecondOrderProximityTest, IdenticalNeighborhoodIsOne) {
  Heterograph g;
  const VertexId l = g.AddVertex(VertexType::kLocation, "L");
  const VertexId a = g.AddVertex(VertexType::kWord, "a");
  const VertexId b = g.AddVertex(VertexType::kWord, "b");
  ASSERT_TRUE(g.AccumulateEdge(l, a, 2.0).ok());
  ASSERT_TRUE(g.AccumulateEdge(l, b, 2.0).ok());
  ASSERT_TRUE(g.Finalize().ok());
  EXPECT_DOUBLE_EQ(SecondOrderProximity(g, a, b), 1.0);
}

TEST(SecondOrderProximityTest, DisjointNeighborhoodIsZero) {
  Fixture f;
  // u0's neighbors: {T0}. w2's neighbors: {w0}. Disjoint.
  EXPECT_DOUBLE_EQ(SecondOrderProximity(f.g, f.u0, f.w2), 0.0);
}

TEST(SecondOrderProximityTest, SelfIsOne) {
  Fixture f;
  EXPECT_DOUBLE_EQ(SecondOrderProximity(f.g, f.w0, f.w0), 1.0);
}

TEST(SecondOrderProximityTest, IsolatedVertexIsZero) {
  Heterograph g;
  const VertexId a = g.AddVertex(VertexType::kWord, "a");
  const VertexId b = g.AddVertex(VertexType::kWord, "b");
  const VertexId c = g.AddVertex(VertexType::kWord, "c");
  ASSERT_TRUE(g.AccumulateEdge(a, b).ok());
  ASSERT_TRUE(g.Finalize().ok());
  EXPECT_DOUBLE_EQ(SecondOrderProximity(g, a, c), 0.0);
}

TEST(SecondOrderProximityTest, Symmetric) {
  Fixture f;
  EXPECT_DOUBLE_EQ(SecondOrderProximity(f.g, f.w0, f.w1),
                   SecondOrderProximity(f.g, f.w1, f.w0));
}

TEST(ShortestPathTest, DirectNeighborsOneHop) {
  Fixture f;
  EXPECT_EQ(ShortestPathHops(f.g, f.t0, f.l0), 1);
}

TEST(ShortestPathTest, SelfIsZero) {
  Fixture f;
  EXPECT_EQ(ShortestPathHops(f.g, f.w0, f.w0), 0);
}

TEST(ShortestPathTest, HighOrderPath) {
  Fixture f;
  // u0 - T0 - L0 - w0 - w2: four hops, i.e. high-order proximity
  // (more than two pass-through hops, §4.2).
  EXPECT_EQ(ShortestPathHops(f.g, f.u0, f.w2), 4);
  EXPECT_EQ(ShortestPathHops(f.g, f.u0, f.w0), 3);
}

TEST(ShortestPathTest, UnreachableIsMinusOne) {
  Heterograph g;
  const VertexId a = g.AddVertex(VertexType::kWord, "a");
  const VertexId b = g.AddVertex(VertexType::kWord, "b");
  const VertexId c = g.AddVertex(VertexType::kWord, "c");
  const VertexId d = g.AddVertex(VertexType::kWord, "d");
  ASSERT_TRUE(g.AccumulateEdge(a, b).ok());
  ASSERT_TRUE(g.AccumulateEdge(c, d).ok());
  ASSERT_TRUE(g.Finalize().ok());
  EXPECT_EQ(ShortestPathHops(g, a, c), -1);
}

TEST(ShortestPathTest, MentionBridgeCreatesHighOrderProximity) {
  // The paper's Fig. 3a claim: T1 reaches W2 through the user layer.
  Heterograph g;
  const VertexId t1 = g.AddVertex(VertexType::kTime, "T1");
  const VertexId ua = g.AddVertex(VertexType::kUser, "A");
  const VertexId ub = g.AddVertex(VertexType::kUser, "B");
  const VertexId w2 = g.AddVertex(VertexType::kWord, "W2");
  ASSERT_TRUE(g.AccumulateEdge(t1, ua).ok());   // A's record time
  ASSERT_TRUE(g.AccumulateEdge(ua, ub).ok());   // mention
  ASSERT_TRUE(g.AccumulateEdge(ub, w2).ok());   // B's record word
  ASSERT_TRUE(g.Finalize().ok());
  EXPECT_EQ(ShortestPathHops(g, t1, w2), 3);
  EXPECT_DOUBLE_EQ(FirstOrderProximity(g, t1, w2), 0.0);
}

}  // namespace
}  // namespace actor
