#include "hotspot/kde.h"

#include <gtest/gtest.h>

#include <vector>

namespace actor {
namespace {

TEST(EpanechnikovTest, Profile) {
  EXPECT_DOUBLE_EQ(EpanechnikovProfile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(EpanechnikovProfile(0.5), 0.5);
  EXPECT_DOUBLE_EQ(EpanechnikovProfile(1.0), 0.0);
  EXPECT_DOUBLE_EQ(EpanechnikovProfile(1.5), 0.0);
}

TEST(Kde1dTest, EmptySamplesError) {
  EXPECT_TRUE(Kde1d::Create({}, 1.0).status().IsInvalidArgument());
}

TEST(Kde1dTest, NonPositiveBandwidthError) {
  EXPECT_TRUE(Kde1d::Create({1.0}, 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(Kde1d::Create({1.0}, -1.0).status().IsInvalidArgument());
}

TEST(Kde1dTest, DensityPeaksAtCluster) {
  std::vector<double> samples = {1.0, 1.1, 0.9, 1.05, 5.0};
  auto kde = Kde1d::Create(samples, 0.5);
  ASSERT_TRUE(kde.ok());
  EXPECT_GT(kde->Density(1.0), kde->Density(3.0));
  EXPECT_GT(kde->Density(1.0), kde->Density(5.0));
}

TEST(Kde1dTest, DensityZeroFarAway) {
  auto kde = Kde1d::Create({0.0}, 1.0);
  ASSERT_TRUE(kde.ok());
  EXPECT_DOUBLE_EQ(kde->Density(10.0), 0.0);
}

TEST(Kde1dTest, LocalMaximumDetection) {
  std::vector<double> samples;
  for (int i = 0; i < 100; ++i) samples.push_back(2.0 + 0.001 * i);
  auto kde = Kde1d::Create(samples, 1.0);
  ASSERT_TRUE(kde.ok());
  EXPECT_TRUE(kde->IsLocalMaximum(2.05, 0.5));
  EXPECT_FALSE(kde->IsLocalMaximum(3.5, 0.5));
}

TEST(Kde1dTest, CircularWrapsAroundSeam) {
  // Cluster at 23.8 and 0.2 hours: circularly one cluster near midnight.
  std::vector<double> samples = {23.8, 23.9, 0.1, 0.2};
  auto kde = Kde1d::Create(samples, 1.0, /*period=*/24.0);
  ASSERT_TRUE(kde.ok());
  EXPECT_GT(kde->Density(0.0), kde->Density(12.0));
  // Density at 0.0 sees all four points.
  EXPECT_GT(kde->Density(0.0), kde->Density(2.0));
}

TEST(Kde1dTest, LinearDomainDoesNotWrap) {
  std::vector<double> samples = {23.8, 23.9};
  auto kde = Kde1d::Create(samples, 1.0);  // no period
  ASSERT_TRUE(kde.ok());
  EXPECT_DOUBLE_EQ(kde->Density(0.2), 0.0);
}

TEST(Kde2dTest, EmptySamplesError) {
  EXPECT_TRUE(Kde2d::Create({}, 1.0).status().IsInvalidArgument());
}

TEST(Kde2dTest, BadBandwidthError) {
  EXPECT_TRUE(
      Kde2d::Create({{0, 0}}, -0.5).status().IsInvalidArgument());
}

TEST(Kde2dTest, DensityPeaksAtCluster) {
  std::vector<GeoPoint> samples = {{1, 1}, {1.1, 0.9}, {0.9, 1.1}, {8, 8}};
  auto kde = Kde2d::Create(samples, 1.0);
  ASSERT_TRUE(kde.ok());
  EXPECT_GT(kde->Density({1, 1}), kde->Density({8, 8}));
  EXPECT_GT(kde->Density({1, 1}), kde->Density({4, 4}));
}

TEST(Kde2dTest, LocalMaximumAtClusterCenter) {
  std::vector<GeoPoint> samples;
  for (int i = 0; i < 50; ++i) {
    samples.push_back({3.0 + 0.01 * (i % 7), 3.0 + 0.01 * (i % 5)});
  }
  auto kde = Kde2d::Create(samples, 1.0);
  ASSERT_TRUE(kde.ok());
  EXPECT_TRUE(kde->IsLocalMaximum({3.02, 3.02}, 0.5));
  EXPECT_FALSE(kde->IsLocalMaximum({5.0, 5.0}, 0.5));
}

TEST(Kde2dTest, NormalizationScalesWithN) {
  // Density of a single point at itself: K(0)/(n h^2).
  auto one = Kde2d::Create({{0, 0}}, 2.0);
  auto two = Kde2d::Create({{0, 0}, {100, 100}}, 2.0);
  ASSERT_TRUE(one.ok() && two.ok());
  EXPECT_NEAR(one->Density({0, 0}), 2.0 * two->Density({0, 0}), 1e-12);
}

}  // namespace
}  // namespace actor
