#include "graph/graph_builder.h"

#include <gtest/gtest.h>

#include "data/corpus.h"

namespace actor {
namespace {

/// The paper's Fig. 1 scenario: two records in different places/times;
/// record 1 (user B) mentions user A.
Corpus Fig1Corpus() {
  Corpus c;
  RawRecord a;
  a.id = 0;
  a.user_id = 100;  // user A
  a.timestamp = 15.25 * 3600.0;  // 3:15 PM
  a.location = {5.0, 5.0};
  a.text = "dawn planet apes coming";
  c.Add(a);
  RawRecord b;
  b.id = 1;
  b.user_id = 200;  // user B
  b.timestamp = 20.55 * 3600.0;  // 8:33 PM
  b.location = {20.0, 20.0};
  b.text = "movie theatre discounts";
  b.mentioned_user_ids = {100};  // B mentions A
  c.Add(b);
  return c;
}

struct BuiltFixture {
  TokenizedCorpus corpus;
  Hotspots hotspots;
  BuiltGraphs graphs;
};

BuiltFixture BuildFig1(const GraphBuildOptions& options = {}) {
  CorpusBuildOptions build;
  build.min_word_count = 1;
  auto corpus = TokenizedCorpus::Build(Fig1Corpus(), build);
  EXPECT_TRUE(corpus.ok()) << corpus.status().ToString();
  HotspotOptions hs;
  hs.spatial.bandwidth = 2.0;
  hs.spatial.merge_radius = 1.0;
  hs.temporal.bandwidth = 1.0;
  hs.temporal.merge_radius = 0.5;
  auto hotspots = DetectHotspots(*corpus, hs);
  EXPECT_TRUE(hotspots.ok()) << hotspots.status().ToString();
  auto graphs = BuildGraphs(*corpus, *hotspots, options);
  EXPECT_TRUE(graphs.ok()) << graphs.status().ToString();
  BuiltFixture f{corpus.MoveValueOrDie(), hotspots.MoveValueOrDie(),
                 graphs.MoveValueOrDie()};
  return f;
}

TEST(GraphBuilderTest, Fig1VertexInventory) {
  BuiltFixture f = BuildFig1();
  // Two distinct locations and two distinct times -> 2 spatial + 2
  // temporal hotspots.
  EXPECT_EQ(f.hotspots.spatial.size(), 2u);
  EXPECT_EQ(f.hotspots.temporal.size(), 2u);
  const Heterograph& g = f.graphs.activity;
  EXPECT_EQ(g.VerticesOfType(VertexType::kTime).size(), 2u);
  EXPECT_EQ(g.VerticesOfType(VertexType::kLocation).size(), 2u);
  // 7 distinct keywords.
  EXPECT_EQ(g.VerticesOfType(VertexType::kWord).size(), 7u);
  // Users A and B.
  EXPECT_EQ(g.VerticesOfType(VertexType::kUser).size(), 2u);
}

TEST(GraphBuilderTest, Fig1IntraRecordEdges) {
  BuiltFixture f = BuildFig1();
  const Heterograph& g = f.graphs.activity;
  const auto& units0 = f.graphs.record_units[0];
  const auto& units1 = f.graphs.record_units[1];
  // Records land in different hotspots.
  EXPECT_NE(units0.time_unit, units1.time_unit);
  EXPECT_NE(units0.location_unit, units1.location_unit);
  // T-L edge within each record.
  EXPECT_DOUBLE_EQ(g.EdgeWeight(units0.time_unit, units0.location_unit), 1.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(units1.time_unit, units1.location_unit), 1.0);
  // No cross-record T-L edge.
  EXPECT_DOUBLE_EQ(g.EdgeWeight(units0.time_unit, units1.location_unit), 0.0);
  // Every word of record 0 is linked to its T and L.
  for (VertexId w : units0.word_units) {
    EXPECT_DOUBLE_EQ(g.EdgeWeight(w, units0.time_unit), 1.0);
    EXPECT_DOUBLE_EQ(g.EdgeWeight(w, units0.location_unit), 1.0);
  }
  // Word pairs within record 0.
  ASSERT_EQ(units0.word_units.size(), 4u);
  EXPECT_DOUBLE_EQ(
      g.EdgeWeight(units0.word_units[0], units0.word_units[1]), 1.0);
}

TEST(GraphBuilderTest, Fig1MentionedUserLinksToRecordUnits) {
  BuiltFixture f = BuildFig1();
  const Heterograph& g = f.graphs.activity;
  const auto& units1 = f.graphs.record_units[1];
  const VertexId user_a = f.graphs.activity_users.at(100);
  const VertexId user_b = f.graphs.activity_users.at(200);
  // Record 1's units connect to both its author B and mentioned user A —
  // the high-order bridge "text -> user -> user -> (location, time)".
  EXPECT_DOUBLE_EQ(g.EdgeWeight(user_b, units1.time_unit), 1.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(user_a, units1.time_unit), 1.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(user_a, units1.location_unit), 1.0);
  for (VertexId w : units1.word_units) {
    EXPECT_DOUBLE_EQ(g.EdgeWeight(user_a, w), 1.0);
  }
  // User A also connects to their own record's units.
  const auto& units0 = f.graphs.record_units[0];
  EXPECT_DOUBLE_EQ(g.EdgeWeight(user_a, units0.time_unit), 1.0);
}

TEST(GraphBuilderTest, Fig1UserInteractionGraph) {
  BuiltFixture f = BuildFig1();
  const Heterograph& ug = f.graphs.user_graph;
  ASSERT_EQ(f.graphs.interaction_users.size(), 2u);
  const VertexId a = f.graphs.interaction_users.at(100);
  const VertexId b = f.graphs.interaction_users.at(200);
  EXPECT_DOUBLE_EQ(ug.EdgeWeight(a, b), 1.0);
  EXPECT_EQ(ug.edges(EdgeType::kUU).size(), 2u);
}

TEST(GraphBuilderTest, RepeatedMentionsAccumulate) {
  Corpus c = Fig1Corpus();
  RawRecord extra;
  extra.id = 2;
  extra.user_id = 200;
  extra.timestamp = 21.0 * 3600.0;
  extra.location = {20.0, 20.0};
  extra.text = "another movie night";
  extra.mentioned_user_ids = {100};
  c.Add(extra);
  CorpusBuildOptions build;
  build.min_word_count = 1;
  auto corpus = TokenizedCorpus::Build(c, build);
  ASSERT_TRUE(corpus.ok());
  auto hotspots = DetectHotspots(*corpus);
  ASSERT_TRUE(hotspots.ok());
  auto graphs = BuildGraphs(*corpus, *hotspots);
  ASSERT_TRUE(graphs.ok());
  const VertexId a = graphs->interaction_users.at(100);
  const VertexId b = graphs->interaction_users.at(200);
  EXPECT_DOUBLE_EQ(graphs->user_graph.EdgeWeight(a, b), 2.0);
}

TEST(GraphBuilderTest, MentionEdgesCanBeDisabled) {
  GraphBuildOptions options;
  options.include_mention_edges = false;
  BuiltFixture f = BuildFig1(options);
  const auto& units1 = f.graphs.record_units[1];
  const VertexId user_a = f.graphs.activity_users.at(100);
  EXPECT_DOUBLE_EQ(
      f.graphs.activity.EdgeWeight(user_a, units1.time_unit), 0.0);
  // The user interaction graph is still built.
  EXPECT_EQ(f.graphs.user_graph.edges(EdgeType::kUU).size(), 2u);
}

TEST(GraphBuilderTest, AuthorEdgesCanBeDisabled) {
  GraphBuildOptions options;
  options.include_author_edges = false;
  options.include_mention_edges = false;
  BuiltFixture f = BuildFig1(options);
  EXPECT_EQ(f.graphs.activity.edges(EdgeType::kUT).size(), 0u);
  EXPECT_EQ(f.graphs.activity.edges(EdgeType::kUW).size(), 0u);
  EXPECT_EQ(f.graphs.activity.edges(EdgeType::kUL).size(), 0u);
}

TEST(GraphBuilderTest, WordPairEdgesCanBeDisabled) {
  GraphBuildOptions options;
  options.include_word_pair_edges = false;
  BuiltFixture f = BuildFig1(options);
  EXPECT_EQ(f.graphs.activity.edges(EdgeType::kWW).size(), 0u);
  EXPECT_GT(f.graphs.activity.edges(EdgeType::kLW).size(), 0u);
}

TEST(GraphBuilderTest, WordVerticesAlignWithVocabulary) {
  BuiltFixture f = BuildFig1();
  ASSERT_EQ(f.graphs.word_vertices.size(),
            static_cast<std::size_t>(f.corpus.vocab().size()));
  for (int32_t w = 0; w < f.corpus.vocab().size(); ++w) {
    const VertexId v = f.graphs.word_vertices[w];
    ASSERT_NE(v, kInvalidVertex);
    EXPECT_EQ(f.graphs.activity.vertex_name(v), f.corpus.vocab().word(w));
  }
}

TEST(GraphBuilderTest, RecordUnitsAlignWithCorpus) {
  BuiltFixture f = BuildFig1();
  ASSERT_EQ(f.graphs.record_units.size(), f.corpus.size());
  for (std::size_t i = 0; i < f.corpus.size(); ++i) {
    EXPECT_EQ(f.graphs.record_units[i].word_units.size(),
              f.corpus.record(i).word_ids.size());
  }
}

TEST(GraphBuilderTest, EmptyCorpusRejected) {
  TokenizedCorpus empty;
  Hotspots hotspots;
  EXPECT_TRUE(
      BuildGraphs(empty, hotspots).status().IsInvalidArgument());
}

TEST(GraphBuilderTest, DuplicateWordsInRecordNoSelfLoop) {
  Corpus c;
  RawRecord r;
  r.id = 0;
  r.user_id = 1;
  r.timestamp = 3600.0;
  r.location = {1.0, 1.0};
  r.text = "coffee coffee coffee";
  c.Add(r);
  CorpusBuildOptions build;
  build.min_word_count = 1;
  auto corpus = TokenizedCorpus::Build(c, build);
  ASSERT_TRUE(corpus.ok());
  auto hotspots = DetectHotspots(*corpus);
  ASSERT_TRUE(hotspots.ok());
  auto graphs = BuildGraphs(*corpus, *hotspots);
  ASSERT_TRUE(graphs.ok()) << graphs.status().ToString();
  EXPECT_EQ(graphs->activity.edges(EdgeType::kWW).size(), 0u);
}

}  // namespace
}  // namespace actor
