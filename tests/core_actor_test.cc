#include "core/actor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "eval/pipeline.h"
#include "util/vec_math.h"

namespace actor {
namespace {

/// Small prepared dataset shared across the suite (built once; ACTOR
/// training is the expensive part of each test).
class ActorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PipelineOptions pipeline = UTGeoPipeline(0.1);
    pipeline.synthetic.num_records = 2500;
    pipeline.synthetic.seed = 321;
    auto prepared = PrepareDataset(pipeline, "actor-test");
    ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
    data_ = new PreparedDataset(prepared.MoveValueOrDie());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  static ActorOptions FastOptions() {
    ActorOptions o;
    o.dim = 16;
    o.epochs = 4;
    o.samples_per_edge = 4;
    o.seed = 5;
    return o;
  }

  static PreparedDataset* data_;
};

PreparedDataset* ActorTest::data_ = nullptr;

TEST_F(ActorTest, TrainsAndShapesMatch) {
  auto model = TrainActor(*data_->graphs, FastOptions());
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_EQ(model->center.rows(), data_->graphs->activity.num_vertices());
  EXPECT_EQ(model->center.dim(), 16);
  EXPECT_EQ(model->context.rows(), model->center.rows());
  EXPECT_GT(model->stats.edge_steps, 0);
  EXPECT_GT(model->stats.record_steps, 0);
  EXPECT_GT(model->stats.train_seconds, 0.0);
}

TEST_F(ActorTest, EmbeddingsFinite) {
  auto model = TrainActor(*data_->graphs, FastOptions());
  ASSERT_TRUE(model.ok());
  for (int r = 0; r < model->center.rows(); ++r) {
    for (int d = 0; d < model->center.dim(); ++d) {
      ASSERT_TRUE(std::isfinite(model->center.row(r)[d]));
      ASSERT_TRUE(std::isfinite(model->context.row(r)[d]));
    }
  }
}

TEST_F(ActorTest, DeterministicSingleThread) {
  auto a = TrainActor(*data_->graphs, FastOptions());
  auto b = TrainActor(*data_->graphs, FastOptions());
  ASSERT_TRUE(a.ok() && b.ok());
  for (int r = 0; r < a->center.rows(); ++r) {
    for (int d = 0; d < a->center.dim(); ++d) {
      ASSERT_FLOAT_EQ(a->center.row(r)[d], b->center.row(r)[d]);
    }
  }
}

TEST_F(ActorTest, SeedChangesResult) {
  ActorOptions o1 = FastOptions();
  ActorOptions o2 = FastOptions();
  o2.seed = 6;
  auto a = TrainActor(*data_->graphs, o1);
  auto b = TrainActor(*data_->graphs, o2);
  ASSERT_TRUE(a.ok() && b.ok());
  bool any_diff = false;
  for (int r = 0; r < a->center.rows() && !any_diff; ++r) {
    for (int d = 0; d < a->center.dim(); ++d) {
      if (a->center.row(r)[d] != b->center.row(r)[d]) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(ActorTest, AblationWithoutInterSkipsPretraining) {
  ActorOptions o = FastOptions();
  o.use_inter = false;
  auto model = TrainActor(*data_->graphs, o);
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->stats.pretrain_seconds, 0.0);
}

TEST_F(ActorTest, AblationWithoutIntraUsesPlainEdges) {
  ActorOptions o = FastOptions();
  o.use_bag_of_words = false;
  auto model = TrainActor(*data_->graphs, o);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->stats.record_steps, 0);
  EXPECT_GT(model->stats.edge_steps, 0);
}

TEST_F(ActorTest, InterTrainingAddsEdgeSteps) {
  ActorOptions with = FastOptions();
  ActorOptions without = FastOptions();
  without.use_inter = false;
  auto a = TrainActor(*data_->graphs, with);
  auto b = TrainActor(*data_->graphs, without);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GT(a->stats.edge_steps, b->stats.edge_steps);
}

TEST_F(ActorTest, MultiThreadedTrainingRuns) {
  ActorOptions o = FastOptions();
  o.num_threads = 3;
  auto model = TrainActor(*data_->graphs, o);
  ASSERT_TRUE(model.ok());
  for (int r = 0; r < model->center.rows(); ++r) {
    for (int d = 0; d < model->center.dim(); ++d) {
      ASSERT_TRUE(std::isfinite(model->center.row(r)[d]));
    }
  }
}

TEST_F(ActorTest, UserInitSeedsUnitVectors) {
  // With init enabled, units that share their strongest user should start
  // near that user's vector; after a very short run the geometry still
  // reflects it. Compare against a no-init run: the init run must differ.
  ActorOptions with_init = FastOptions();
  with_init.epochs = 1;
  with_init.samples_per_edge = 1;
  ActorOptions no_init = with_init;
  no_init.init_from_users = false;
  auto a = TrainActor(*data_->graphs, with_init);
  auto b = TrainActor(*data_->graphs, no_init);
  ASSERT_TRUE(a.ok() && b.ok());
  bool any_diff = false;
  for (int r = 0; r < a->center.rows() && !any_diff; ++r) {
    for (int d = 0; d < a->center.dim(); ++d) {
      if (a->center.row(r)[d] != b->center.row(r)[d]) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(ActorTest, CooccurringUnitsMoreSimilarThanRandom) {
  auto model = TrainActor(*data_->graphs, FastOptions());
  ASSERT_TRUE(model.ok());
  const auto& g = data_->graphs->activity;
  // Average cosine over LW edges vs over random L-W pairs.
  const auto& lw = g.edges(EdgeType::kLW);
  ASSERT_GT(lw.size(), 0u);
  double edge_sim = 0.0;
  std::size_t n_edges = std::min<std::size_t>(lw.size(), 2000);
  for (std::size_t i = 0; i < n_edges; ++i) {
    edge_sim += Cosine(model->center.row(lw.src[i]),
                       model->center.row(lw.dst[i]), 16);
  }
  edge_sim /= static_cast<double>(n_edges);

  Rng rng(3);
  const auto& locations = g.VerticesOfType(VertexType::kLocation);
  const auto& words = g.VerticesOfType(VertexType::kWord);
  double random_sim = 0.0;
  const int n_random = 2000;
  for (int i = 0; i < n_random; ++i) {
    const VertexId l = locations[rng.Uniform(locations.size())];
    const VertexId w = words[rng.Uniform(words.size())];
    random_sim += Cosine(model->center.row(l), model->center.row(w), 16);
  }
  random_sim /= n_random;
  EXPECT_GT(edge_sim, random_sim + 0.05);
}

TEST(ActorValidationTest, RejectsBadOptions) {
  PipelineOptions pipeline = UTGeoPipeline(0.05);
  pipeline.synthetic.num_records = 600;
  auto data = PrepareDataset(pipeline, "tiny");
  ASSERT_TRUE(data.ok());
  ActorOptions o;
  o.dim = 0;
  EXPECT_TRUE(TrainActor(*data->graphs, o).status().IsInvalidArgument());
  o = ActorOptions();
  o.negatives = 0;
  EXPECT_TRUE(TrainActor(*data->graphs, o).status().IsInvalidArgument());
  o = ActorOptions();
  o.initial_lr = 0.0f;
  EXPECT_TRUE(TrainActor(*data->graphs, o).status().IsInvalidArgument());
  o = ActorOptions();
  o.epochs = 0;
  EXPECT_TRUE(TrainActor(*data->graphs, o).status().IsInvalidArgument());
}

TEST(ActorValidationTest, RejectsUnfinalizedGraphs) {
  BuiltGraphs graphs;
  EXPECT_TRUE(
      TrainActor(graphs, ActorOptions()).status().IsFailedPrecondition());
}

}  // namespace
}  // namespace actor
