#include "embedding/negative_sampler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace actor {
namespace {

/// T0-L0, L0-w0 (weight 3), L0-w1 (weight 1).
Heterograph SampleGraph() {
  Heterograph g;
  const VertexId t = g.AddVertex(VertexType::kTime, "T0");
  const VertexId l = g.AddVertex(VertexType::kLocation, "L0");
  const VertexId w0 = g.AddVertex(VertexType::kWord, "w0");
  const VertexId w1 = g.AddVertex(VertexType::kWord, "w1");
  EXPECT_TRUE(g.AccumulateEdge(t, l).ok());
  EXPECT_TRUE(g.AccumulateEdge(l, w0, 3.0).ok());
  EXPECT_TRUE(g.AccumulateEdge(l, w1, 1.0).ok());
  EXPECT_TRUE(g.Finalize().ok());
  return g;
}

TEST(TypedNegativeSamplerTest, RequiresFinalizedGraph) {
  Heterograph g;
  EXPECT_TRUE(
      TypedNegativeSampler::Create(g).status().IsFailedPrecondition());
}

TEST(TypedNegativeSamplerTest, NegativePowerRejected) {
  Heterograph g = SampleGraph();
  EXPECT_TRUE(
      TypedNegativeSampler::Create(g, -1.0).status().IsInvalidArgument());
}

TEST(TypedNegativeSamplerTest, SamplesCorrectType) {
  Heterograph g = SampleGraph();
  auto sampler = TypedNegativeSampler::Create(g);
  ASSERT_TRUE(sampler.ok());
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const VertexId v =
        sampler->Sample(EdgeType::kLW, VertexType::kWord, rng);
    ASSERT_NE(v, kInvalidVertex);
    EXPECT_EQ(g.vertex_type(v), VertexType::kWord);
    EXPECT_GT(g.Degree(EdgeType::kLW, v), 0.0);
  }
}

TEST(TypedNegativeSamplerTest, EmptySlotReturnsInvalid) {
  Heterograph g = SampleGraph();
  auto sampler = TypedNegativeSampler::Create(g);
  ASSERT_TRUE(sampler.ok());
  Rng rng(1);
  // No UU edges in this graph.
  EXPECT_EQ(sampler->Sample(EdgeType::kUU, VertexType::kUser, rng),
            kInvalidVertex);
  // Words have no TL degree.
  EXPECT_EQ(sampler->Sample(EdgeType::kTL, VertexType::kWord, rng),
            kInvalidVertex);
}

TEST(TypedNegativeSamplerTest, DistributionFollowsDegreePower) {
  Heterograph g = SampleGraph();
  auto sampler = TypedNegativeSampler::Create(g, 0.75);
  ASSERT_TRUE(sampler.ok());
  Rng rng(7);
  std::map<VertexId, int> counts;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    ++counts[sampler->Sample(EdgeType::kLW, VertexType::kWord, rng)];
  }
  // w0 degree 3, w1 degree 1 -> ratio 3^0.75 : 1.
  const double expected_ratio = std::pow(3.0, 0.75);
  const double observed_ratio =
      static_cast<double>(counts[2]) / static_cast<double>(counts[3]);
  EXPECT_NEAR(observed_ratio, expected_ratio, 0.1);
}

TEST(TypedNegativeSamplerTest, PowerZeroIsUniform) {
  Heterograph g = SampleGraph();
  auto sampler = TypedNegativeSampler::Create(g, 0.0);
  ASSERT_TRUE(sampler.ok());
  Rng rng(9);
  std::map<VertexId, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[sampler->Sample(EdgeType::kLW, VertexType::kWord, rng)];
  }
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[3], 1.0, 0.05);
}

TEST(GlobalNegativeSamplerTest, SamplesAcrossTypes) {
  Heterograph g = SampleGraph();
  auto sampler = GlobalNegativeSampler::Create(
      g, {EdgeType::kTL, EdgeType::kLW});
  ASSERT_TRUE(sampler.ok());
  Rng rng(3);
  std::map<VertexId, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[sampler->Sample(rng)];
  // All four vertices have degree in {TL, LW}.
  EXPECT_EQ(counts.size(), 4u);
}

TEST(GlobalNegativeSamplerTest, ExcludesZeroDegreeVertices) {
  Heterograph g = SampleGraph();
  auto sampler = GlobalNegativeSampler::Create(g, {EdgeType::kTL});
  ASSERT_TRUE(sampler.ok());
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const VertexId v = sampler->Sample(rng);
    EXPECT_TRUE(v == 0 || v == 1);  // only T0 and L0 carry TL degree
  }
}

TEST(GlobalNegativeSamplerTest, NoEdgesIsError) {
  Heterograph g = SampleGraph();
  EXPECT_TRUE(GlobalNegativeSampler::Create(g, {EdgeType::kUU})
                  .status()
                  .IsInvalidArgument());
}

TEST(GlobalNegativeSamplerTest, RequiresFinalizedGraph) {
  Heterograph g;
  EXPECT_TRUE(GlobalNegativeSampler::Create(g, {EdgeType::kTL})
                  .status()
                  .IsFailedPrecondition());
}

}  // namespace
}  // namespace actor
