// Exercises the ACTOR_DCHECK invariant layer (util/logging.h): positive
// cases prove the invariants hold on real pipelines, death cases prove the
// checks actually fire on contract violations in debug builds. Death tests
// skip themselves when ACTOR_DEBUG_CHECKS is compiled out (the default
// Release build); the `sanitize` preset enables the layer.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "embedding/embedding_matrix.h"
#include "graph/alias_table.h"
#include "graph/heterograph.h"
#include "hotspot/mean_shift.h"
#include "util/logging.h"
#include "util/rng.h"

namespace actor {
namespace {

#define SKIP_WITHOUT_DCHECKS()                                       \
  if (!kDebugChecksEnabled) {                                        \
    GTEST_SKIP() << "ACTOR_DCHECK compiled out (release build); run " \
                    "under the sanitize preset";                     \
  }

// ---------------------------------------------------------------------------
// Alias table: probability-mass and index-bound invariants.
// ---------------------------------------------------------------------------

TEST(DebugInvariantsTest, AliasTableMassSumsToOneOnSkewedWeights) {
  // Heavy skew plus zeros: the regime where a buggy Walker construction
  // loses or duplicates mass.
  std::vector<double> weights = {1e-12, 5.0, 0.0, 1e6, 3.0, 0.0, 7.5};
  auto table = AliasTable::Create(weights);
  ASSERT_TRUE(table.ok());
  double mass = 0.0;
  for (std::size_t i = 0; i < table->size(); ++i) {
    mass += table->Probability(i);
  }
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

TEST(DebugInvariantsTest, AliasTableSampleStaysInBounds) {
  std::vector<double> weights = {0.1, 2.0, 0.0, 30.0};
  auto table = AliasTable::Create(weights);
  ASSERT_TRUE(table.ok());
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const std::size_t drawn = table->Sample(rng);  // DCHECKs internally
    ASSERT_LT(drawn, weights.size());
    ASSERT_NE(drawn, 2u) << "zero-weight index drawn";
  }
}

TEST(DebugInvariantsTest, AliasTableProbabilityOutOfRangeDies) {
  SKIP_WITHOUT_DCHECKS();
  auto table = AliasTable::Create({1.0, 2.0, 3.0});
  ASSERT_TRUE(table.ok());
  EXPECT_DEATH((void)table->Probability(3), "Check failed");
}

// ---------------------------------------------------------------------------
// Heterograph: vertex-id bounds and build consistency.
// ---------------------------------------------------------------------------

Heterograph SmallGraph() {
  Heterograph g;
  const VertexId l = g.AddVertex(VertexType::kLocation, "L0");
  const VertexId w0 = g.AddVertex(VertexType::kWord, "w0");
  const VertexId w1 = g.AddVertex(VertexType::kWord, "w1");
  EXPECT_TRUE(g.AccumulateEdge(l, w0, 2.0).ok());
  EXPECT_TRUE(g.AccumulateEdge(l, w1, 1.0).ok());
  EXPECT_TRUE(g.AccumulateEdge(w0, w1, 4.0).ok());
  EXPECT_TRUE(g.Finalize().ok());  // runs the Finalize invariant sweep
  return g;
}

TEST(DebugInvariantsTest, FinalizeConsistencyHoldsOnSmallGraph) {
  Heterograph g = SmallGraph();
  EXPECT_EQ(g.num_directed_edges(), 6);
  EXPECT_DOUBLE_EQ(g.Degree(EdgeType::kLW, 0), 3.0);
  EXPECT_DOUBLE_EQ(g.Degree(EdgeType::kWW, 1), 4.0);
}

TEST(DebugInvariantsTest, VertexTypeOutOfRangeDies) {
  SKIP_WITHOUT_DCHECKS();
  Heterograph g = SmallGraph();
  EXPECT_DEATH((void)g.vertex_type(g.num_vertices()), "Check failed");
  EXPECT_DEATH((void)g.vertex_type(-1), "Check failed");
}

TEST(DebugInvariantsTest, DegreeOutOfRangeDies) {
  SKIP_WITHOUT_DCHECKS();
  Heterograph g = SmallGraph();
  EXPECT_DEATH((void)g.Degree(EdgeType::kLW, g.num_vertices()),
               "Check failed");
}

// ---------------------------------------------------------------------------
// Embedding matrix: alignment, row bounds, finite entries.
// ---------------------------------------------------------------------------

TEST(DebugInvariantsTest, MatrixValidatesAfterInit) {
  EmbeddingMatrix m(13, 10);  // dim not a multiple of 8 -> live padding
  Rng rng(3);
  m.InitUniform(rng);
  EXPECT_TRUE(m.DebugValidate());
}

TEST(DebugInvariantsTest, RowOutOfRangeDies) {
  SKIP_WITHOUT_DCHECKS();
  EmbeddingMatrix m(4, 8);
  EXPECT_DEATH((void)m.row(4), "Check failed");
  EXPECT_DEATH((void)m.row(-1), "Check failed");
}

TEST(DebugInvariantsTest, SetRowRejectsNaN) {
  SKIP_WITHOUT_DCHECKS();
  EmbeddingMatrix m(2, 4);
  const float bad[4] = {0.0f, std::numeric_limits<float>::quiet_NaN(), 0.0f,
                        0.0f};
  EXPECT_DEATH(m.SetRow(0, bad), "non-finite");
}

// ---------------------------------------------------------------------------
// Mean shift: option validation (failure Status) and circular wraparound.
// ---------------------------------------------------------------------------

TEST(DebugInvariantsTest, MeanShiftRejectsNonPositiveBandwidth) {
  MeanShiftOptions options;
  options.bandwidth = 0.0;
  auto modes = MeanShiftModes2d({{0.0, 0.0}}, options);
  EXPECT_FALSE(modes.ok());
  EXPECT_TRUE(modes.status().IsInvalidArgument());
}

TEST(DebugInvariantsTest, CircularWrapHandlesSeamInputs) {
  // Values at/over the seam and tiny negatives: the wrap invariant
  // (result in [0, period)) is DCHECKed inside, including the fmod edge
  // case where -1e-18 + 24 rounds to exactly 24.
  const std::vector<double> values = {23.9999, 24.0, 24.0001, -0.0001,
                                      -1e-18,  48.0, -23.9999, 12.0};
  MeanShiftOptions options;
  options.bandwidth = 1.0;
  options.merge_radius = 0.5;
  auto modes = MeanShiftModes1dCircular(values, 24.0, options);
  ASSERT_TRUE(modes.ok()) << modes.status().ToString();
  for (double m : *modes) {
    EXPECT_GE(m, 0.0);
    EXPECT_LT(m, 24.0);
  }
}

}  // namespace
}  // namespace actor
