// QueryEngine regression tests: results must be bit-identical to the
// pre-snapshot NeighborSearcher algorithm (per-row Cosine() + partial
// sort), including the hoisted-query-norm fused scoring path, and the
// engine must keep its snapshot alive on its own.

#include "serve/query_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/actor.h"
#include "eval/pipeline.h"
#include "util/vec_math.h"

namespace actor {
namespace {

class QueryEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PipelineOptions pipeline = UTGeoPipeline(0.1);
    pipeline.synthetic.num_records = 1500;
    pipeline.synthetic.seed = 23;
    auto prepared = PrepareDataset(pipeline, "qe-test");
    ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
    data_ = new PreparedDataset(prepared.MoveValueOrDie());
    ActorOptions options;
    options.dim = 16;
    options.epochs = 3;
    options.samples_per_edge = 4;
    auto model = TrainActor(*data_->graphs, options);
    ASSERT_TRUE(model.ok());
    model_ = new ActorModel(model.MoveValueOrDie());
    snapshot_ = data_->Snapshot(model_->center);
  }
  static void TearDownTestSuite() {
    snapshot_.reset();
    delete model_;
    delete data_;
    model_ = nullptr;
    data_ = nullptr;
  }

  /// The pre-refactor scoring loop, verbatim: Cosine() per candidate row
  /// (query norm recomputed every time), then the same partial sort.
  static std::vector<Neighbor> Reference(const float* query,
                                         VertexType result_type, int k,
                                         VertexId exclude) {
    const std::size_t dim = static_cast<std::size_t>(model_->center.dim());
    std::vector<Neighbor> results;
    for (VertexId v : data_->graphs->activity.VerticesOfType(result_type)) {
      if (v == exclude) continue;
      Neighbor n;
      n.vertex = v;
      n.similarity = Cosine(query, model_->center.row(v), dim);
      results.push_back(std::move(n));
    }
    const std::size_t keep = std::min<std::size_t>(k, results.size());
    std::partial_sort(results.begin(), results.begin() + keep,
                      results.end(),
                      [](const Neighbor& a, const Neighbor& b) {
                        return a.similarity > b.similarity;
                      });
    results.resize(keep);
    for (auto& n : results) {
      n.name = data_->graphs->activity.vertex_name(n.vertex);
      n.type = data_->graphs->activity.vertex_type(n.vertex);
    }
    return results;
  }

  static PreparedDataset* data_;
  static ActorModel* model_;
  static std::shared_ptr<const ModelSnapshot> snapshot_;
};

PreparedDataset* QueryEngineTest::data_ = nullptr;
ActorModel* QueryEngineTest::model_ = nullptr;
std::shared_ptr<const ModelSnapshot> QueryEngineTest::snapshot_;

TEST_F(QueryEngineTest, BitIdenticalToPreRefactorCosineLoop) {
  QueryEngine engine(snapshot_);
  // Several query vectors x every result type x several k values, so the
  // comparison covers full-type scans and truncated top-k alike.
  for (VertexId q : {VertexId{0}, VertexId{3}, VertexId{17}}) {
    ASSERT_LT(q, model_->center.rows());
    const float* query = model_->center.row(q);
    for (VertexType type : {VertexType::kWord, VertexType::kLocation,
                            VertexType::kTime, VertexType::kUser}) {
      for (int k : {1, 5, 100000}) {
        auto got = engine.QueryByVector(query, type, k, q);
        ASSERT_TRUE(got.ok());
        const auto want = Reference(query, type, k, q);
        ASSERT_EQ(got->size(), want.size())
            << "q=" << q << " type=" << static_cast<int>(type) << " k=" << k;
        for (std::size_t i = 0; i < want.size(); ++i) {
          ASSERT_EQ((*got)[i].vertex, want[i].vertex) << "i=" << i;
          // Bit-identical scores: the fused DotAndNorm2 path preserves
          // Cosine()'s reduction order exactly.
          ASSERT_EQ((*got)[i].similarity, want[i].similarity) << "i=" << i;
          EXPECT_EQ((*got)[i].name, want[i].name);
          EXPECT_EQ((*got)[i].type, want[i].type);
        }
      }
    }
  }
}

TEST_F(QueryEngineTest, ZeroQueryVectorScoresZeroEverywhere) {
  QueryEngine engine(snapshot_);
  const std::vector<float> zeros(model_->center.dim(), 0.0f);
  auto result = engine.QueryByVector(zeros.data(), VertexType::kWord, 5);
  ASSERT_TRUE(result.ok());
  for (const auto& n : *result) {
    EXPECT_EQ(n.similarity, 0.0);
  }
}

TEST_F(QueryEngineTest, ModalityQueriesMatchVertexReference) {
  QueryEngine engine(snapshot_);
  // QueryByLocation == reference query from the snapped hotspot's vertex.
  const GeoPoint location{20, 20};
  const int32_t h = data_->hotspots->spatial.Assign(location);
  ASSERT_GE(h, 0);
  const VertexId lv = data_->graphs->spatial_vertices[h];
  auto by_loc = engine.QueryByLocation(location, VertexType::kWord, 6);
  ASSERT_TRUE(by_loc.ok());
  const auto want =
      Reference(model_->center.row(lv), VertexType::kWord, 6, lv);
  ASSERT_EQ(by_loc->size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ((*by_loc)[i].vertex, want[i].vertex);
    EXPECT_EQ((*by_loc)[i].similarity, want[i].similarity);
  }
}

TEST_F(QueryEngineTest, StatusMessagesMatchPreRefactorContract) {
  QueryEngine engine(snapshot_);
  const auto bad_k =
      engine.QueryByLocation({0, 0}, VertexType::kWord, 0).status();
  EXPECT_TRUE(bad_k.IsInvalidArgument());
  const auto unknown =
      engine.QueryByKeyword("definitely_not_a_word", VertexType::kWord, 3)
          .status();
  EXPECT_TRUE(unknown.IsNotFound());
  EXPECT_NE(unknown.ToString().find("keyword not in vocabulary"),
            std::string::npos);
}

TEST_F(QueryEngineTest, EngineKeepsSnapshotAlive) {
  auto local = data_->Snapshot(model_->center, /*version=*/9);
  QueryEngine engine(local);
  local.reset();  // the engine's shared_ptr is now the only owner
  EXPECT_EQ(engine.snapshot().version(), 9u);
  auto result = engine.QueryByHour(21.0, VertexType::kWord, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 4u);
}

}  // namespace
}  // namespace actor
