// QueryEngine regression tests: results must be bit-identical to the
// pre-snapshot NeighborSearcher algorithm (per-row Cosine() + partial
// sort), including the hoisted-query-norm fused scoring path, and the
// engine must keep its snapshot alive on its own.

#include "serve/query_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include <string>

#include "core/actor.h"
#include "embedding/embedding_matrix.h"
#include "eval/pipeline.h"
#include "serve/model_snapshot.h"
#include "util/vec_math.h"

namespace actor {
namespace {

class QueryEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PipelineOptions pipeline = UTGeoPipeline(0.1);
    pipeline.synthetic.num_records = 1500;
    pipeline.synthetic.seed = 23;
    auto prepared = PrepareDataset(pipeline, "qe-test");
    ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
    data_ = new PreparedDataset(prepared.MoveValueOrDie());
    ActorOptions options;
    options.dim = 16;
    options.epochs = 3;
    options.samples_per_edge = 4;
    auto model = TrainActor(*data_->graphs, options);
    ASSERT_TRUE(model.ok());
    model_ = new ActorModel(model.MoveValueOrDie());
    snapshot_ = data_->Snapshot(model_->center);
  }
  static void TearDownTestSuite() {
    snapshot_.reset();
    delete model_;
    delete data_;
    model_ = nullptr;
    data_ = nullptr;
  }

  /// The pre-refactor scoring loop, verbatim: Cosine() per candidate row
  /// (query norm recomputed every time), then the same partial sort.
  static std::vector<Neighbor> Reference(const float* query,
                                         VertexType result_type, int k,
                                         VertexId exclude) {
    const std::size_t dim = static_cast<std::size_t>(model_->center.dim());
    std::vector<Neighbor> results;
    for (VertexId v : data_->graphs->activity.VerticesOfType(result_type)) {
      if (v == exclude) continue;
      Neighbor n;
      n.vertex = v;
      n.similarity = Cosine(query, model_->center.row(v), dim);
      results.push_back(std::move(n));
    }
    const std::size_t keep = std::min<std::size_t>(k, results.size());
    std::partial_sort(results.begin(), results.begin() + keep,
                      results.end(),
                      [](const Neighbor& a, const Neighbor& b) {
                        return a.similarity > b.similarity;
                      });
    results.resize(keep);
    for (auto& n : results) {
      n.name = data_->graphs->activity.vertex_name(n.vertex);
      n.type = data_->graphs->activity.vertex_type(n.vertex);
    }
    return results;
  }

  static PreparedDataset* data_;
  static ActorModel* model_;
  static std::shared_ptr<const ModelSnapshot> snapshot_;
};

PreparedDataset* QueryEngineTest::data_ = nullptr;
ActorModel* QueryEngineTest::model_ = nullptr;
std::shared_ptr<const ModelSnapshot> QueryEngineTest::snapshot_;

TEST_F(QueryEngineTest, BitIdenticalToPreRefactorCosineLoop) {
  QueryEngine engine(snapshot_);
  // Several query vectors x every result type x several k values, so the
  // comparison covers full-type scans and truncated top-k alike.
  for (VertexId q : {VertexId{0}, VertexId{3}, VertexId{17}}) {
    ASSERT_LT(q, model_->center.rows());
    const float* query = model_->center.row(q);
    for (VertexType type : {VertexType::kWord, VertexType::kLocation,
                            VertexType::kTime, VertexType::kUser}) {
      for (int k : {1, 5, 100000}) {
        auto got = engine.QueryByVector(query, type, k, q);
        ASSERT_TRUE(got.ok());
        const auto want = Reference(query, type, k, q);
        ASSERT_EQ(got->size(), want.size())
            << "q=" << q << " type=" << static_cast<int>(type) << " k=" << k;
        for (std::size_t i = 0; i < want.size(); ++i) {
          ASSERT_EQ((*got)[i].vertex, want[i].vertex) << "i=" << i;
          // Bit-identical scores: the fused DotAndNorm2 path preserves
          // Cosine()'s reduction order exactly.
          ASSERT_EQ((*got)[i].similarity, want[i].similarity) << "i=" << i;
          EXPECT_EQ((*got)[i].name, want[i].name);
          EXPECT_EQ((*got)[i].type, want[i].type);
        }
      }
    }
  }
}

TEST_F(QueryEngineTest, ZeroQueryVectorScoresZeroEverywhere) {
  QueryEngine engine(snapshot_);
  const std::vector<float> zeros(model_->center.dim(), 0.0f);
  auto result = engine.QueryByVector(zeros.data(), VertexType::kWord, 5);
  ASSERT_TRUE(result.ok());
  for (const auto& n : *result) {
    EXPECT_EQ(n.similarity, 0.0);
  }
}

TEST_F(QueryEngineTest, ModalityQueriesMatchVertexReference) {
  QueryEngine engine(snapshot_);
  // QueryByLocation == reference query from the snapped hotspot's vertex.
  const GeoPoint location{20, 20};
  const int32_t h = data_->hotspots->spatial.Assign(location);
  ASSERT_GE(h, 0);
  const VertexId lv = data_->graphs->spatial_vertices[h];
  auto by_loc = engine.QueryByLocation(location, VertexType::kWord, 6);
  ASSERT_TRUE(by_loc.ok());
  const auto want =
      Reference(model_->center.row(lv), VertexType::kWord, 6, lv);
  ASSERT_EQ(by_loc->size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ((*by_loc)[i].vertex, want[i].vertex);
    EXPECT_EQ((*by_loc)[i].similarity, want[i].similarity);
  }
}

TEST_F(QueryEngineTest, StatusMessagesMatchPreRefactorContract) {
  QueryEngine engine(snapshot_);
  const auto bad_k =
      engine.QueryByLocation({0, 0}, VertexType::kWord, 0).status();
  EXPECT_TRUE(bad_k.IsInvalidArgument());
  const auto unknown =
      engine.QueryByKeyword("definitely_not_a_word", VertexType::kWord, 3)
          .status();
  EXPECT_TRUE(unknown.IsNotFound());
  EXPECT_NE(unknown.ToString().find("keyword not in vocabulary"),
            std::string::npos);
}

// Ranking ties are part of the serving contract: equal similarities order
// by ascending unit id, making top-k results a deterministic function of
// the snapshot in both the sequential and the batched scoring path (and
// letting the sharded scatter-gather merge reproduce flat results
// exactly). Built on a hand-rolled snapshot so the ties are exact.
TEST(QueryEngineTieBreakTest, EqualScoresOrderByAscendingUnitId) {
  const int32_t dim = 4;
  const int32_t n = 8;
  EmbeddingMatrix center(n, dim);
  ModelSnapshot::OnlineCatalog catalog;
  for (int32_t v = 0; v < n; ++v) {
    float* r = center.row(v);
    // Two exact tie groups: even ids all point along the query, odd ids
    // share a second direction with a lower cosine, so the full ranking
    // must be every even id ascending, then every odd id ascending.
    r[0] = 1.0f;
    r[1] = (v % 2 != 0) ? 1.0f : 0.0f;
    r[2] = 0.0f;
    r[3] = 0.0f;
    catalog.types.push_back(VertexType::kWord);
    catalog.names.push_back("w" + std::to_string(v));
  }
  const auto snap = ModelSnapshot::FromOnline(center, std::move(catalog), 1);
  QueryEngine engine(snap);
  const float query[dim] = {1.0f, 0.0f, 0.0f, 0.0f};

  // Full scan: both tie groups come back in ascending id order.
  auto full = engine.QueryByVector(query, VertexType::kWord, n);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full->size(), static_cast<std::size_t>(n));
  const VertexId want_full[] = {0, 2, 4, 6, 1, 3, 5, 7};
  for (int32_t i = 0; i < n; ++i) {
    EXPECT_EQ((*full)[static_cast<std::size_t>(i)].vertex, want_full[i])
        << "rank " << i;
  }
  // The groups really are exact ties, not near-misses.
  EXPECT_EQ((*full)[0].similarity, (*full)[3].similarity);
  EXPECT_EQ((*full)[4].similarity, (*full)[7].similarity);

  // Truncation inside a tie group keeps the smallest ids.
  auto top3 = engine.QueryByVector(query, VertexType::kWord, 3);
  ASSERT_TRUE(top3.ok());
  ASSERT_EQ(top3->size(), 3u);
  EXPECT_EQ((*top3)[0].vertex, 0);
  EXPECT_EQ((*top3)[1].vertex, 2);
  EXPECT_EQ((*top3)[2].vertex, 4);

  // Excluding a tied unit shifts the group without reordering it.
  auto excl = engine.QueryByVector(query, VertexType::kWord, 3, 2);
  ASSERT_TRUE(excl.ok());
  ASSERT_EQ(excl->size(), 3u);
  EXPECT_EQ((*excl)[0].vertex, 0);
  EXPECT_EQ((*excl)[1].vertex, 4);
  EXPECT_EQ((*excl)[2].vertex, 6);

  // The batched path applies the identical total order.
  std::vector<BatchQuery> queries;
  queries.push_back(BatchQuery::Vector(query, VertexType::kWord, n));
  queries.push_back(BatchQuery::Vector(query, VertexType::kWord, 3, 2));
  const auto batch = engine.QueryBatch(queries);
  ASSERT_EQ(batch.size(), 2u);
  ASSERT_TRUE(batch[0].ok());
  ASSERT_EQ(batch[0]->size(), static_cast<std::size_t>(n));
  for (int32_t i = 0; i < n; ++i) {
    EXPECT_EQ((*batch[0])[static_cast<std::size_t>(i)].vertex, want_full[i]);
    EXPECT_EQ((*batch[0])[static_cast<std::size_t>(i)].similarity,
              (*full)[static_cast<std::size_t>(i)].similarity);
  }
  ASSERT_TRUE(batch[1].ok());
  ASSERT_EQ(batch[1]->size(), 3u);
  EXPECT_EQ((*batch[1])[0].vertex, 0);
  EXPECT_EQ((*batch[1])[1].vertex, 4);
  EXPECT_EQ((*batch[1])[2].vertex, 6);
}

TEST_F(QueryEngineTest, EngineKeepsSnapshotAlive) {
  auto local = data_->Snapshot(model_->center, /*version=*/9);
  QueryEngine engine(local);
  local.reset();  // the engine's shared_ptr is now the only owner
  EXPECT_EQ(engine.snapshot().version(), 9u);
  auto result = engine.QueryByHour(21.0, VertexType::kWord, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 4u);
}

}  // namespace
}  // namespace actor
