// Delta publish (dirty-row tracking + chunk-COW snapshots): the
// delta_publish=false A/B lever must be bit-identical to the delta path
// in snapshot contents AND query results; clean chunks must actually be
// shared; versions stay monotone under interleaved publishes from both
// trainers; and a snapshot handle stays frozen while later deltas land.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/actor.h"
#include "core/online_actor.h"
#include "data/synthetic.h"
#include "embedding/dirty_rows.h"
#include "eval/pipeline.h"
#include "serve/chunked_matrix.h"
#include "serve/model_snapshot.h"
#include "serve/query_engine.h"

namespace actor {
namespace {

std::vector<std::vector<TokenizedRecord>> MakeBatches(int records,
                                                      int batches,
                                                      uint64_t seed = 5) {
  SyntheticConfig config;
  config.seed = seed;
  config.num_records = records;
  config.num_users = 60;
  config.num_communities = 4;
  config.num_topics = 6;
  config.num_venues = 12;
  config.keywords_per_topic = 15;
  config.background_vocab = 30;
  auto ds = GenerateSynthetic(config);
  EXPECT_TRUE(ds.ok());
  CorpusBuildOptions build;
  build.min_word_count = 1;
  auto corpus = TokenizedCorpus::Build(ds->corpus, build);
  EXPECT_TRUE(corpus.ok());
  std::vector<std::vector<TokenizedRecord>> out(batches);
  for (std::size_t i = 0; i < corpus->size(); ++i) {
    out[i * batches / corpus->size()].push_back(corpus->record(i));
  }
  return out;
}

OnlineActorOptions FastOnlineOptions() {
  OnlineActorOptions o;
  o.dim = 16;
  o.samples_per_edge_per_batch = 2.0;
  return o;
}

bool SameMatrix(const ChunkedMatrix& a, const ChunkedMatrix& b) {
  if (a.rows() != b.rows() || a.dim() != b.dim()) return false;
  for (int32_t r = 0; r < a.rows(); ++r) {
    if (std::memcmp(a.row(r), b.row(r),
                    sizeof(float) * static_cast<std::size_t>(a.dim())) != 0) {
      return false;
    }
  }
  return true;
}

bool SameNeighbors(const std::vector<Neighbor>& a,
                   const std::vector<Neighbor>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].vertex != b[i].vertex || a[i].name != b[i].name ||
        a[i].similarity != b[i].similarity) {
      return false;
    }
  }
  return true;
}

// --- The A/B lever: delta publishes are bit-identical to full copies -------

TEST(DeltaPublishABTest, OnlineDeltaMatchesFullCopyBitIdentical) {
  // Two actors, same seed, same stream, sequential (bit-deterministic)
  // training; only the publish flavor differs. Every published snapshot
  // must agree bit-for-bit: same version, same matrix contents, same
  // query results. This is what lets delta_publish default to true.
  const auto batches = MakeBatches(900, 4);
  OnlineActorOptions delta_opts = FastOnlineOptions();
  delta_opts.delta_publish = true;
  OnlineActorOptions full_opts = FastOnlineOptions();
  full_opts.delta_publish = false;
  auto delta_model = OnlineActor::Create(delta_opts);
  auto full_model = OnlineActor::Create(full_opts);
  ASSERT_TRUE(delta_model.ok());
  ASSERT_TRUE(full_model.ok());

  const GeoPoint probe = batches[0].front().location;
  for (const auto& batch : batches) {
    ASSERT_TRUE(delta_model->Ingest(batch).ok());
    ASSERT_TRUE(full_model->Ingest(batch).ok());
    auto ds = delta_model->PublishSnapshot();
    auto fs = full_model->PublishSnapshot();
    ASSERT_NE(ds, nullptr);
    ASSERT_NE(fs, nullptr);
    EXPECT_EQ(ds->version(), fs->version());
    EXPECT_EQ(ds->num_units(), fs->num_units());
    EXPECT_TRUE(SameMatrix(ds->center(), fs->center()));
    for (VertexId v = 0; v < ds->num_units(); ++v) {
      EXPECT_EQ(ds->vertex_type(v), fs->vertex_type(v));
      EXPECT_EQ(ds->vertex_name(v), fs->vertex_name(v));
    }

    QueryEngine dq(ds), fq(fs);
    auto dw = dq.QueryByLocation(probe, VertexType::kWord, 8);
    auto fw = fq.QueryByLocation(probe, VertexType::kWord, 8);
    ASSERT_TRUE(dw.ok());
    ASSERT_TRUE(fw.ok());
    EXPECT_TRUE(SameNeighbors(*dw, *fw));
    auto dh = dq.QueryByHour(13.0, VertexType::kLocation, 5);
    auto fh = fq.QueryByHour(13.0, VertexType::kLocation, 5);
    ASSERT_TRUE(dh.ok());
    ASSERT_TRUE(fh.ok());
    EXPECT_TRUE(SameNeighbors(*dh, *fh));
  }
}

// --- Chunk sharing and the no-op publish ------------------------------------

TEST(DeltaPublishTest, CleanChunksAreSharedWithPreviousSnapshot) {
  const auto batches = MakeBatches(900, 2);
  auto model = OnlineActor::Create(FastOnlineOptions());
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->Ingest(batches[0]).ok());
  auto base = model->PublishSnapshot();
  ASSERT_NE(base, nullptr);
  const int32_t n = model->center().rows();
  ASSERT_GT(n, 2 * ChunkedMatrix::kChunkRows);  // several chunks to share

  // Delta with a few dirty rows in the FIRST chunk only: every other
  // chunk must be shared by pointer, and the contents must still equal
  // the source matrix exactly.
  DirtyRowSet dirty;
  dirty.Resize(n);
  dirty.Mark(0);
  dirty.Mark(ChunkedMatrix::kChunkRows - 1);
  auto delta = ModelSnapshot::FromOnlineDelta(model->center(),
                                              base->version() + 1, base,
                                              dirty);
  ASSERT_NE(delta, nullptr);
  EXPECT_EQ(delta->center().num_chunks(), base->center().num_chunks());
  EXPECT_EQ(delta->center().SharedChunksWith(base->center()),
            base->center().num_chunks() - 1);
  EXPECT_TRUE(SameMatrix(delta->center(), base->center()));

  // A fully-dirty delta shares nothing but still matches.
  DirtyRowSet all;
  all.Resize(n);
  all.MarkAll();
  auto fresh = ModelSnapshot::FromOnlineDelta(model->center(),
                                              base->version() + 2, base, all);
  EXPECT_EQ(fresh->center().SharedChunksWith(base->center()), 0);
  EXPECT_TRUE(SameMatrix(fresh->center(), base->center()));
}

TEST(DeltaPublishTest, PublishWithoutIngestIsANoOp) {
  const auto batches = MakeBatches(600, 2);
  auto model = OnlineActor::Create(FastOnlineOptions());
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->Ingest(batches[0]).ok());
  auto first = model->PublishSnapshot();
  ASSERT_NE(first, nullptr);
  // No Ingest() in between: the model version is unchanged, so publish
  // must hand back the already-published snapshot, not a new copy.
  auto second = model->PublishSnapshot();
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(model->CurrentSnapshot().get(), first.get());
  // The next real batch resumes normal (new-snapshot) publishes.
  ASSERT_TRUE(model->Ingest(batches[1]).ok());
  auto third = model->PublishSnapshot();
  ASSERT_NE(third, nullptr);
  EXPECT_NE(third.get(), first.get());
  EXPECT_GT(third->version(), first->version());
}

// --- Snapshot isolation under interleaved delta publishes ------------------

TEST(DeltaPublishTest, OldSnapshotStaysFrozenWhileNewChunksLand) {
  const auto batches = MakeBatches(900, 4);
  auto model = OnlineActor::Create(FastOnlineOptions());
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->Ingest(batches[0]).ok());
  auto held = model->PublishSnapshot();
  ASSERT_NE(held, nullptr);

  // Copy a prefix of the held snapshot's rows and a query result.
  const int32_t probe_rows = held->num_units();
  std::vector<std::vector<float>> frozen(
      static_cast<std::size_t>(probe_rows));
  for (int32_t r = 0; r < probe_rows; ++r) {
    frozen[static_cast<std::size_t>(r)].assign(
        held->center().row(r), held->center().row(r) + held->dim());
  }
  QueryEngine held_engine(held);
  const GeoPoint probe = batches[0].front().location;
  auto before = held_engine.QueryByLocation(probe, VertexType::kWord, 8);
  ASSERT_TRUE(before.ok());

  // Keep training and delta-publishing over the held snapshot's chunks.
  uint64_t last_version = held->version();
  for (std::size_t b = 1; b < batches.size(); ++b) {
    ASSERT_TRUE(model->Ingest(batches[b]).ok());
    auto snap = model->PublishSnapshot();
    ASSERT_NE(snap, nullptr);
    EXPECT_GT(snap->version(), last_version);  // monotone under deltas
    last_version = snap->version();
  }

  // The held snapshot must be byte-for-byte what it was at acquire time —
  // later publishes swap chunk pointers, never chunk contents.
  for (int32_t r = 0; r < probe_rows; ++r) {
    EXPECT_EQ(std::memcmp(frozen[static_cast<std::size_t>(r)].data(),
                          held->center().row(r),
                          sizeof(float) * static_cast<std::size_t>(
                              held->dim())),
              0)
        << "row " << r << " mutated under the held snapshot";
  }
  auto after = held_engine.QueryByLocation(probe, VertexType::kWord, 8);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(SameNeighbors(*before, *after));
}

TEST(DeltaPublishTest, InterleavedTrainerPublishesStayMonotonePerTrainer) {
  // One SnapshotStore fed by both trainers (the serving layer does not
  // care who published): each trainer's own version sequence must be
  // strictly increasing, and the store always serves the latest publish.
  PipelineOptions pipeline = UTGeoPipeline(0.1);
  pipeline.synthetic.num_records = 1200;
  auto prepared = PrepareDataset(pipeline, "delta-interleave");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  ActorOptions actor_options;
  actor_options.dim = 16;
  actor_options.epochs = 1;
  actor_options.samples_per_edge = 1;
  auto batch_model = TrainActor(*prepared->graphs, actor_options);
  ASSERT_TRUE(batch_model.ok()) << batch_model.status().ToString();

  const auto batches = MakeBatches(900, 3);
  auto online = OnlineActor::Create(FastOnlineOptions());
  ASSERT_TRUE(online.ok());

  SnapshotStore store;
  // Batch publish #1 (full: a fresh TrainActor model is fully dirty).
  auto batch_snap = PublishActorModel(*batch_model, prepared->graphs,
                                      prepared->hotspots, prepared->vocab);
  ASSERT_NE(batch_snap, nullptr);
  store.Publish(batch_snap);
  EXPECT_EQ(store.Acquire().get(), batch_snap.get());

  uint64_t online_version = 0;
  for (const auto& batch : batches) {
    ASSERT_TRUE(online->Ingest(batch).ok());
    auto online_snap = online->PublishSnapshot();
    ASSERT_NE(online_snap, nullptr);
    EXPECT_GT(online_snap->version(), online_version);
    online_version = online_snap->version();
    store.Publish(online_snap);
    EXPECT_EQ(store.Acquire().get(), online_snap.get());
  }

  // Batch publish #2, as a delta this time: nudge one center row, mark it
  // dirty, republish against the first batch snapshot.
  const uint64_t batch_version = batch_snap->version();
  batch_model->dirty.Clear();
  std::vector<float> nudged(static_cast<std::size_t>(actor_options.dim),
                            0.25f);
  batch_model->center.SetRow(0, nudged.data());
  batch_model->dirty.Mark(0);
  batch_model->stats.edge_steps += 1;  // version bump source
  auto batch_delta = PublishActorModel(*batch_model, prepared->graphs,
                                       prepared->hotspots, prepared->vocab,
                                       batch_snap.get());
  ASSERT_NE(batch_delta, nullptr);
  EXPECT_GT(batch_delta->version(), batch_version);
  store.Publish(batch_delta);
  EXPECT_EQ(store.Acquire().get(), batch_delta.get());

  // The delta carries the nudge, shares every clean chunk, and the held
  // first snapshot still serves the pre-nudge row.
  EXPECT_EQ(batch_delta->center().row(0)[0], 0.25f);
  EXPECT_NE(batch_snap->center().row(0)[0], 0.25f);
  EXPECT_GT(batch_delta->center().SharedChunksWith(batch_snap->center()), 0);
  for (int32_t r = 1; r < batch_snap->num_units(); ++r) {
    ASSERT_EQ(std::memcmp(batch_delta->center().row(r),
                          batch_snap->center().row(r),
                          sizeof(float) * static_cast<std::size_t>(
                              batch_snap->dim())),
              0);
  }
}

}  // namespace
}  // namespace actor
