#include "util/rng.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <set>

namespace actor {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ReseedReproduces) {
  Rng a(9);
  const uint64_t first = a.Next();
  a.Seed(9);
  EXPECT_EQ(a.Next(), first);
}

TEST(SplitMix64Test, DistinctOutputsForConsecutiveInputs) {
  std::set<uint64_t> outputs;
  for (uint64_t x = 0; x < 1000; ++x) outputs.insert(SplitMix64(x));
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(SplitMix64Test, AvalancheOnAdjacentInputs) {
  // One flipped input bit must flip roughly half the output bits — the
  // property that makes SplitMix64 safe for deriving shard seeds from
  // consecutive integers.
  for (uint64_t x : {0ull, 1ull, 17ull, 0x9e3779b9ull, ~0ull - 5}) {
    const int flipped = std::popcount(SplitMix64(x) ^ SplitMix64(x + 1));
    EXPECT_GE(flipped, 16) << "x=" << x;
    EXPECT_LE(flipped, 48) << "x=" << x;
  }
}

TEST(SplitMix64Test, KnownReferenceValues) {
  // Reference sequence of the canonical splitmix64 (Vigna) from seed 0:
  // each call advances the state by the golden gamma and mixes.
  EXPECT_EQ(SplitMix64(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(SplitMix64(0x9e3779b97f4a7c15ULL), 0x6e789e6aa1b965f4ULL);
}

TEST(RngTest, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.Uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformFloatInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const float u = rng.UniformFloat();
    EXPECT_GE(u, 0.0f);
    EXPECT_LT(u, 1.0f);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.UniformRange(-3.0, 4.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 4.5);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, GaussianShifted) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(37);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential();
  EXPECT_NEAR(sum / n, 1.0, 0.03);
}

class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, StreamsAreWellDistributed) {
  Rng rng(GetParam());
  // Mean of 10k uniform draws should concentrate near 0.5 for any seed.
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.03);
}

TEST_P(RngSeedSweep, NoShortCycles) {
  Rng rng(GetParam());
  const uint64_t first = rng.Next();
  for (int i = 0; i < 10000; ++i) {
    ASSERT_NE(rng.Next(), first) << "cycle at step " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 2ULL, 42ULL,
                                           0xffffffffffffffffULL,
                                           0xdeadbeefULL));

}  // namespace
}  // namespace actor
