#!/usr/bin/env python3
"""Compare two benchmark JSON files and flag throughput regressions.

Works on any file following the repo's bench schema (BENCH_sgd.json,
BENCH_online.json, BENCH_query.json): a top-level "throughput" array of
rows, where each row mixes identity fields (backend, sampler, mode,
threads, ...) with metric fields (steps_per_sec, batches_per_sec,
records_per_sec, queries_per_sec). Rows are matched across
the two files by their identity fields; every metric is compared and drops
beyond --threshold (default 10%) are reported.

Intended use (see EXPERIMENTS.md "Benchmark workflow"): regenerate the
bench on your machine, diff against the committed baseline, and A/B the
prior commit on the SAME machine before calling a drop a regression —
committed numbers come from whatever container produced them, so raw
cross-machine deltas are expected.

Usage:
  scripts/bench_compare.py BASELINE.json FRESH.json [--threshold=0.10]
                           [--strict]

Exit codes: 0 = no regressions (or none beyond threshold), 1 = regressions
found AND --strict was given, 2 = usage/parse error. Without --strict,
regressions only warn — the default check.sh hook must not fail on
machine drift.
"""

import json
import sys

METRIC_FIELDS = (
    "steps_per_sec",
    "batches_per_sec",
    "records_per_sec",
    "queries_per_sec",
)


def parse_args(argv):
    threshold = 0.10
    strict = False
    paths = []
    for arg in argv:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        elif arg == "--strict":
            strict = True
        elif arg.startswith("--"):
            raise ValueError(f"unknown flag {arg}")
        else:
            paths.append(arg)
    if len(paths) != 2:
        raise ValueError("need exactly two JSON paths (baseline, fresh)")
    if not 0.0 < threshold < 1.0:
        raise ValueError(f"--threshold must be in (0, 1), got {threshold}")
    return paths[0], paths[1], threshold, strict


def row_key(row):
    """Identity of a throughput row: every non-metric field, sorted."""
    return tuple(
        sorted((k, v) for k, v in row.items() if k not in METRIC_FIELDS)
    )


def load_rows(path):
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    rows = data.get("throughput")
    if not isinstance(rows, list) or not rows:
        raise ValueError(f"{path}: no 'throughput' array")
    return data, {row_key(r): r for r in rows}


def describe(key):
    return " ".join(f"{k}={v}" for k, v in key)


def main(argv):
    try:
        base_path, fresh_path, threshold, strict = parse_args(argv)
        base_data, base_rows = load_rows(base_path)
        _, fresh_rows = load_rows(fresh_path)
    except (ValueError, OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 2

    regressions = []
    compared = 0
    for key, base in base_rows.items():
        fresh = fresh_rows.get(key)
        if fresh is None:
            print(f"  missing in fresh run: {describe(key)}")
            continue
        for metric in METRIC_FIELDS:
            if metric not in base or metric not in fresh:
                continue
            old, new = float(base[metric]), float(fresh[metric])
            if old <= 0.0:
                continue
            compared += 1
            delta = (new - old) / old
            marker = ""
            if delta < -threshold:
                marker = "  <-- REGRESSION"
                regressions.append((key, metric, old, new, delta))
            print(
                f"  {describe(key)} {metric}: "
                f"{old:.1f} -> {new:.1f} ({delta:+.1%}){marker}"
            )
    for key in fresh_rows:
        if key not in base_rows:
            print(f"  new row (no baseline): {describe(key)}")

    if compared == 0:
        print("bench_compare: no comparable metrics found", file=sys.stderr)
        return 2
    bench = base_data.get("bench", base_path)
    if regressions:
        print(
            f"\nWARNING: {len(regressions)} metric(s) in '{bench}' dropped "
            f"more than {threshold:.0%} vs {base_path}."
        )
        print(
            "Before treating this as a real regression, rebuild the prior "
            "commit and rerun the bench on THIS machine (EXPERIMENTS.md, "
            "'Benchmark workflow') — committed baselines carry machine "
            "drift."
        )
        return 1 if strict else 0
    print(f"\nno regressions beyond {threshold:.0%} in '{bench}'")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
