#!/usr/bin/env python3
"""Compare two benchmark JSON files and flag metric regressions.

Works on any file following the repo's bench schema (BENCH_sgd.json,
BENCH_online.json, BENCH_query.json, BENCH_serve.json): top-level
*section* arrays of rows, where each row mixes identity fields (backend,
sampler, mode, batch, threads, dirty_pct, ...) with metric fields. Known
sections and their metrics (see docs/benchmarking.md for every schema):

  throughput    steps_per_sec, batches_per_sec, records_per_sec,
                queries_per_sec                          (higher is better)
  kernels       gflops                                   (higher is better)
  publish_cost  full_us_per_publish, delta_us_per_publish (lower is better)
                speedup                                   (higher is better)
  latency       p50_ms, p95_ms, p99_ms, p999_ms           (lower is better)
                achieved_qps                              (higher is better)
  max_qps       max_sustainable_qps                       (higher is better)
  sharding      batches_per_sec, records_per_sec,
                queries_per_sec                           (higher is better)

Rows are matched across the two files by their identity fields; every
known metric present in BOTH files is compared, and changes in the bad
direction beyond --threshold (default 10%) are reported. Sections or
metric columns present in only one file — e.g. a baseline generated
before a bench gained a new section — are warned about and skipped, never
a hard error: check.sh --bench must keep working against old baselines.

Intended use (see EXPERIMENTS.md "Benchmark workflow"): regenerate the
bench on your machine, diff against the committed baseline, and A/B the
prior commit on the SAME machine before calling a drop a regression —
committed numbers come from whatever container produced them, so raw
cross-machine deltas are expected.

Usage:
  scripts/bench_compare.py BASELINE.json FRESH.json [--threshold=0.10]
                           [--strict]
  scripts/bench_compare.py --schema-check FILE.json [FILE2.json ...]

--schema-check validates each listed file against the known-section
schema (at least one known section, rows are objects, metric values
numeric) without comparing anything — CI runs it on the serve_load
--smoke output and on every committed BENCH_*.json baseline so neither
the emitters nor the checked-in numbers can drift away from what this
script parses.

Exit codes: 0 = no regressions (or none beyond threshold), 1 = regressions
found AND --strict was given, 2 = usage/parse error or nothing comparable
at all. Without --strict, regressions only warn — the default check.sh
hook must not fail on machine drift.
"""

import json
import sys

# section -> {metric: direction}; direction is the GOOD direction.
SECTIONS = {
    "throughput": {
        "steps_per_sec": "higher",
        "batches_per_sec": "higher",
        "records_per_sec": "higher",
        "queries_per_sec": "higher",
    },
    "kernels": {
        "gflops": "higher",
    },
    "publish_cost": {
        "full_us_per_publish": "lower",
        "delta_us_per_publish": "lower",
        "speedup": "higher",
    },
    "latency": {
        "p50_ms": "lower",
        "p95_ms": "lower",
        "p99_ms": "lower",
        "p999_ms": "lower",
        "achieved_qps": "higher",
    },
    "max_qps": {
        "max_sustainable_qps": "higher",
    },
    "sharding": {
        "batches_per_sec": "higher",
        "records_per_sec": "higher",
        "queries_per_sec": "higher",
    },
}


def parse_args(argv):
    threshold = 0.10
    strict = False
    schema_check = False
    paths = []
    for arg in argv:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        elif arg == "--strict":
            strict = True
        elif arg == "--schema-check":
            schema_check = True
        elif arg.startswith("--"):
            raise ValueError(f"unknown flag {arg}")
        else:
            paths.append(arg)
    if schema_check:
        if not paths:
            raise ValueError("--schema-check needs at least one JSON path")
        return paths, None, threshold, strict, True
    if len(paths) != 2:
        raise ValueError("need exactly two JSON paths (baseline, fresh)")
    if not 0.0 < threshold < 1.0:
        raise ValueError(f"--threshold must be in (0, 1), got {threshold}")
    return paths[0], paths[1], threshold, strict, False


def row_key(row, metrics):
    """Identity of a row: every non-metric field, sorted."""
    return tuple(sorted((k, v) for k, v in row.items() if k not in metrics))


def load_sections(path):
    """Returns (data, {section: {row_key: row}}) for every known section."""
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    sections = {}
    for name, metrics in SECTIONS.items():
        rows = data.get(name)
        if rows is None:
            continue  # caller decides whether absence deserves a warning
        if not isinstance(rows, list):
            raise ValueError(f"{path}: section '{name}' is not an array")
        sections[name] = {row_key(r, metrics): r for r in rows}
    for name, value in data.items():
        if isinstance(value, list) and name not in SECTIONS:
            print(f"  note: unknown section '{name}' in {path} — skipping")
    if not sections:
        known = ", ".join(sorted(SECTIONS))
        raise ValueError(f"{path}: no known section array ({known})")
    return data, sections


def describe(key):
    return " ".join(f"{k}={v}" for k, v in key)


def compare_section(name, base_rows, fresh_rows, threshold, regressions):
    """Prints the per-row diff of one section; returns #metrics compared."""
    metrics = SECTIONS[name]
    compared = 0
    warned_metrics = set()
    for key, base in base_rows.items():
        fresh = fresh_rows.get(key)
        if fresh is None:
            print(f"  [{name}] missing in fresh run: {describe(key)}")
            continue
        for metric, good in metrics.items():
            if metric not in base or metric not in fresh:
                present_in = "fresh" if metric in fresh else "baseline"
                if metric in base or metric in fresh:
                    if metric not in warned_metrics:
                        warned_metrics.add(metric)
                        print(
                            f"  [{name}] metric '{metric}' only in "
                            f"{present_in} — skipping (regenerate the "
                            f"baseline to compare it)"
                        )
                continue
            old, new = float(base[metric]), float(fresh[metric])
            if old <= 0.0:
                continue
            compared += 1
            delta = (new - old) / old
            # A drop is bad for higher-is-better metrics, a rise for
            # lower-is-better ones.
            bad = -delta if good == "higher" else delta
            marker = ""
            if bad > threshold:
                marker = "  <-- REGRESSION"
                regressions.append((name, key, metric, old, new, delta))
            print(
                f"  [{name}] {describe(key)} {metric}: "
                f"{old:.1f} -> {new:.1f} ({delta:+.1%}){marker}"
            )
    for key in fresh_rows:
        if key not in base_rows:
            print(f"  [{name}] new row (no baseline): {describe(key)}")
    return compared


def schema_check(path):
    """Validates one bench JSON against the known-section schema."""
    _, sections = load_sections(path)  # raises on no known section
    rows_seen = 0
    for name, rows in sections.items():
        metrics = SECTIONS[name]
        for key, row in rows.items():
            rows_seen += 1
            for metric in metrics:
                if metric in row and not isinstance(
                    row[metric], (int, float)
                ):
                    raise ValueError(
                        f"{path}: [{name}] {describe(key)} metric "
                        f"'{metric}' is not numeric: {row[metric]!r}"
                    )
    if rows_seen == 0:
        raise ValueError(f"{path}: known sections present but all empty")
    names = ", ".join(sorted(sections))
    print(f"schema ok: {path} ({rows_seen} rows across {names})")
    return 0


def main(argv):
    try:
        args = parse_args(argv)
        base_path, fresh_path, threshold, strict, check_only = args
        if check_only:
            for path in base_path:
                schema_check(path)
            return 0
        base_data, base_sections = load_sections(base_path)
        _, fresh_sections = load_sections(fresh_path)
    except (ValueError, OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 2

    regressions = []
    compared = 0
    for name in SECTIONS:
        base_rows = base_sections.get(name)
        fresh_rows = fresh_sections.get(name)
        if base_rows is None and fresh_rows is None:
            continue
        if base_rows is None:
            print(
                f"  section '{name}' not in baseline {base_path} — "
                f"skipping (regenerate the baseline to compare it)"
            )
            continue
        if fresh_rows is None:
            print(f"  section '{name}' not in fresh run {fresh_path} — "
                  f"skipping")
            continue
        compared += compare_section(
            name, base_rows, fresh_rows, threshold, regressions
        )

    if compared == 0:
        print("bench_compare: no comparable metrics found", file=sys.stderr)
        return 2
    bench = base_data.get("bench", base_path)
    if regressions:
        print(
            f"\nWARNING: {len(regressions)} metric(s) in '{bench}' moved "
            f"the wrong way by more than {threshold:.0%} vs {base_path}."
        )
        print(
            "Before treating this as a real regression, rebuild the prior "
            "commit and rerun the bench on THIS machine (EXPERIMENTS.md, "
            "'Benchmark workflow') — committed baselines carry machine "
            "drift."
        )
        return 1 if strict else 0
    print(f"\nno regressions beyond {threshold:.0%} in '{bench}'")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
