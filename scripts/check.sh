#!/usr/bin/env bash
# Pre-PR verification gate for the ACTOR repo (documented in ROADMAP.md).
#
# Runs, in order:
#   1. format check      — clang-format --dry-run (skipped if not installed)
#   2. repo lint         — invariants generic tools can't express (below)
#   3. clang-tidy        — .clang-tidy over src/ (skipped if not installed)
#   4. build/test matrix — the default / sanitize / tsan presets, each built
#                          and run through ctest --output-on-failure. The
#                          tsan preset runs the `tsan`-labeled HOGWILD smoke
#                          tests under ThreadSanitizer and must produce zero
#                          reports (suppressions: tsan.supp).
#
# Usage:
#   scripts/check.sh               # everything
#   scripts/check.sh --lint-only   # steps 1-3 only (seconds, no build)
#   scripts/check.sh --preset tsan # lint + a single preset's build/test
#   scripts/check.sh --bench       # build default preset, rerun the
#                                  # throughput benches, and diff against
#                                  # the committed BENCH_*.json via
#                                  # scripts/bench_compare.py (warns on
#                                  # >10% drops; see EXPERIMENTS.md for the
#                                  # machine-drift caveat)
#
# Repo lint invariants:
#   L1: no raw std::thread construction outside util/thread_pool — all
#       parallelism goes through the shared pool (hardware_concurrency
#       queries are allowed).
#   L2: no rand()/srand()/time() — randomness must flow through util/rng.h
#       so every run is seed-reproducible; clocks through util/stopwatch.h.
#   L3: no aligned SIMD load/store intrinsics in kernels — callers may pass
#       arbitrary stack buffers, so kernels must use loadu/storeu.
#   L4: every tests/*.cc is registered with actor_test() in
#       tests/CMakeLists.txt (and every registration has a source file).
#   L5: every relative markdown link in *.md resolves to a file in the
#       repo (docs rot silently otherwise; external URLs are not checked
#       — the container has no network).

set -u -o pipefail
cd "$(dirname "$0")/.."

MODE="all"
ONLY_PRESET=""
case "${1:-}" in
  --lint-only) MODE="lint" ;;
  --preset) MODE="one"; ONLY_PRESET="${2:?--preset needs a name}" ;;
  --bench) MODE="bench" ;;
  "") ;;
  *) echo "usage: $0 [--lint-only | --preset <default|sanitize|tsan>" \
          "| --bench]" >&2
     exit 2 ;;
esac

FAILURES=0
note() { printf '\n==> %s\n' "$*"; }
fail() { printf 'FAIL: %s\n' "$*" >&2; FAILURES=$((FAILURES + 1)); }
pass() { printf 'ok:   %s\n' "$*"; }

# --- 1. Format check -------------------------------------------------------
note "format check"
CXX_SOURCES=$(find src tests bench examples -name '*.cc' -o -name '*.h' \
              -o -name '*.cpp' | sort)
if command -v clang-format >/dev/null 2>&1; then
  if clang-format --dry-run -Werror $CXX_SOURCES 2>&1 | head -40; then
    pass "clang-format"
  else
    fail "clang-format found formatting drift"
  fi
else
  echo "skip: clang-format not installed in this container"
fi

# --- 2. Repo lint ----------------------------------------------------------
note "repo lint"

# L1: raw std::thread outside util/thread_pool.
L1=$(grep -rn 'std::thread\b' src bench examples \
       --include='*.cc' --include='*.h' --include='*.cpp' \
     | grep -v 'hardware_concurrency' \
     | grep -v '^src/util/thread_pool' || true)
if [ -n "$L1" ]; then
  fail "L1: raw std::thread outside util/thread_pool:"; echo "$L1"
else
  pass "L1: no raw std::thread outside util/thread_pool"
fi

# L2: banned libc randomness/clock calls.
L2=$(grep -rnE '(^|[^_[:alnum:]])(rand|srand|time)\(' src bench examples \
       --include='*.cc' --include='*.h' --include='*.cpp' || true)
if [ -n "$L2" ]; then
  fail "L2: rand()/srand()/time() found (use util/rng.h, util/stopwatch.h):"
  echo "$L2"
else
  pass "L2: no rand()/srand()/time()"
fi

# L3: aligned SIMD memory intrinsics (kernels must tolerate unaligned
# caller buffers; EmbeddingMatrix rows are aligned, stack scratch is not).
L3=$(grep -rnE '_mm(256|512)?_(load|store)_p[sd]\(' src \
       --include='*.cc' --include='*.h' || true)
if [ -n "$L3" ]; then
  fail "L3: aligned SIMD load/store in kernels (use loadu/storeu):"
  echo "$L3"
else
  pass "L3: no aligned SIMD load/store intrinsics"
fi

# L4: tests/*.cc <-> actor_test() registration, both directions.
L4_STATUS=0
for f in tests/*_test.cc; do
  name=$(basename "$f" .cc)
  if ! grep -qE "actor_test\($name([ )]|$)" tests/CMakeLists.txt; then
    fail "L4: $f is not registered in tests/CMakeLists.txt"; L4_STATUS=1
  fi
done
while read -r name; do
  if [ ! -f "tests/$name.cc" ]; then
    fail "L4: actor_test($name) registered but tests/$name.cc missing"
    L4_STATUS=1
  fi
done < <(sed -nE 's/^actor_test\(([a-z0-9_]+).*/\1/p' tests/CMakeLists.txt)
[ "$L4_STATUS" -eq 0 ] && pass "L4: tests and CMake registrations agree"

# L5: relative markdown links must resolve. Matches [text](path) where path
# is not an external URL or pure #anchor; strips any #fragment before the
# existence check.
L5_STATUS=0
while IFS=: read -r md link; do
  target="${link%%#*}"
  [ -z "$target" ] && continue  # same-file #anchor
  if [ ! -e "$(dirname "$md")/$target" ] && [ ! -e "$target" ]; then
    fail "L5: $md links to missing file: $link"; L5_STATUS=1
  fi
done < <(grep -rnoE '\]\(([^)#:[:space:]]+[^):[:space:]]*)\)' \
           --include='*.md' . 2>/dev/null \
         | grep -v '/build' | grep -v 'third_party' \
         | sed -E 's/:[0-9]+:\]\(/:/; s/\)$//' \
         | grep -vE ':(https?|mailto)' )
[ "$L5_STATUS" -eq 0 ] && pass "L5: markdown links resolve"

# --- 3. clang-tidy ---------------------------------------------------------
note "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  cmake --preset default -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  if find src -name '*.cc' | xargs clang-tidy -p build --quiet; then
    pass "clang-tidy"
  else
    fail "clang-tidy reported findings"
  fi
else
  echo "skip: clang-tidy not installed in this container (.clang-tidy is"
  echo "      still the source of truth where it is available)"
fi

if [ "$MODE" = "lint" ]; then
  note "lint-only mode: skipping build/test matrix"
  [ "$FAILURES" -eq 0 ] || { echo; echo "$FAILURES check(s) failed"; exit 1; }
  echo; echo "all lint checks passed"; exit 0
fi

# --- Benchmark regression hook --------------------------------------------
# Rebuilds the default preset, reruns the throughput harnesses, and diffs
# the fresh numbers against the committed BENCH_*.json baselines. Drops
# beyond 10% print a REGRESSION warning but do not fail the gate: the
# committed numbers carry machine drift, so the protocol (EXPERIMENTS.md,
# "Benchmark workflow") is to A/B the prior commit on the same machine
# before believing a drop.
if [ "$MODE" = "bench" ]; then
  note "bench mode: rebuild + throughput comparison"
  cmake --preset default >/dev/null || { fail "configure"; exit 1; }
  cmake --build --preset default -j "$(nproc)" \
    --target sgd_throughput online_throughput \
    || { fail "bench build"; exit 1; }
  BENCH_TMP=$(mktemp -d)
  trap 'rm -rf "$BENCH_TMP"' EXIT
  for bench in sgd online; do
    json="BENCH_${bench}.json"
    if [ ! -f "$json" ]; then
      echo "skip: no committed $json baseline"; continue
    fi
    note "running ${bench}_throughput"
    if ! "build/bench/${bench}_throughput" --out="$BENCH_TMP/$json"; then
      fail "${bench}_throughput run"; continue
    fi
    note "comparing $json (committed vs fresh)"
    python3 scripts/bench_compare.py "$json" "$BENCH_TMP/$json" \
      || fail "bench_compare on $json"
  done
  echo
  [ "$FAILURES" -eq 0 ] || { echo "$FAILURES check(s) failed"; exit 1; }
  echo "bench comparison done (warnings above, if any, need same-machine A/B)"
  exit 0
fi

# --- 4. Build + test matrix ------------------------------------------------
PRESETS=(default sanitize tsan)
[ "$MODE" = "one" ] && PRESETS=("$ONLY_PRESET")
for preset in "${PRESETS[@]}"; do
  note "preset $preset: configure + build"
  if ! cmake --preset "$preset" >/dev/null; then
    fail "preset $preset: configure"; continue
  fi
  if ! cmake --build --preset "$preset" -j "$(nproc)"; then
    fail "preset $preset: build"; continue
  fi
  note "preset $preset: ctest"
  if ctest --preset "$preset" -j "$(nproc)"; then
    pass "preset $preset tests"
  else
    fail "preset $preset: tests"
  fi
done

echo
if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES check(s) failed"; exit 1
fi
echo "all checks passed"
