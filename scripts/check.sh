#!/usr/bin/env bash
# Pre-PR verification gate for the ACTOR repo (documented in ROADMAP.md).
#
# Runs, in order:
#   1. format check      — clang-format --dry-run (skipped if not installed)
#   2. actor-lint        — the repo's own static analyzer
#                          (tools/actor_lint, rule catalog in
#                          docs/static-analysis.md): thread/rng/SIMD
#                          hygiene, HOGWILD row discipline, header
#                          self-containedness, include-graph acyclicity,
#                          test registration, stale-NOLINT detection.
#                          Compiled on first use with the host c++ and
#                          cached in build/.
#   3. markdown links    — every relative link in *.md resolves (L5; stays
#                          in shell — actor-lint only reads C++ sources).
#   4. clang-tidy        — .clang-tidy over src/ (skipped if not installed)
#   5. build/test matrix — the default / sanitize / tsan presets, each built
#                          and run through ctest --output-on-failure. The
#                          tsan preset runs the `tsan`-labeled HOGWILD smoke
#                          tests under ThreadSanitizer and must produce zero
#                          reports (suppressions: tsan.supp).
#
# Usage:
#   scripts/check.sh               # everything
#   scripts/check.sh --lint-only   # steps 1-4 only (seconds, no build)
#   scripts/check.sh --lint-fast   # actor-lint --changed-only against the
#                                  # symbol cache: re-lints only files whose
#                                  # hash changed plus their call-graph
#                                  # neighborhood (sub-second inner loop)
#   scripts/check.sh --preset tsan # lint + a single preset's build/test
#   scripts/check.sh --bench       # build default preset, rerun the
#                                  # throughput benches + the open-loop
#                                  # serving harness, and diff against the
#                                  # committed BENCH_*.json via
#                                  # scripts/bench_compare.py (warns on
#                                  # >10% drops / p99 rises; methodology:
#                                  # docs/benchmarking.md)
#
# The grep lints L1-L4 that used to live here were replaced by actor-lint
# rules R1/R2/R3/R6 — the analyzer lexes the sources, so it cannot be
# fooled by comments, strings, or macros the way the greps could.

set -u -o pipefail
cd "$(dirname "$0")/.."

MODE="all"
ONLY_PRESET=""
case "${1:-}" in
  --lint-only) MODE="lint" ;;
  --lint-fast) MODE="lint_fast" ;;
  --preset) MODE="one"; ONLY_PRESET="${2:?--preset needs a name}" ;;
  --bench) MODE="bench" ;;
  "") ;;
  *) echo "usage: $0 [--lint-only | --lint-fast" \
          "| --preset <default|sanitize|tsan> | --bench]" >&2
     exit 2 ;;
esac

FAILURES=0
note() { printf '\n==> %s\n' "$*"; }
fail() { printf 'FAIL: %s\n' "$*" >&2; FAILURES=$((FAILURES + 1)); }
pass() { printf 'ok:   %s\n' "$*"; }

# Build the analyzer from source when the checkout is newer than the cached
# binary (one-time ~6 s; the header-compile + symbol-index caches in build/
# keep repeat runs well under a second).
build_lint_bin() {
  mkdir -p build
  LINT_BIN=build/actor_lint
  LINT_SRCS=(tools/actor_lint/lexer.cc tools/actor_lint/symbols.cc
             tools/actor_lint/callgraph.cc tools/actor_lint/cfg.cc
             tools/actor_lint/rules.cc tools/actor_lint/main.cc)
  LINT_STALE=0
  for src in "${LINT_SRCS[@]}" tools/actor_lint/lexer.h \
             tools/actor_lint/symbols.h tools/actor_lint/callgraph.h \
             tools/actor_lint/cfg.h tools/actor_lint/rules.h; do
    [ "$src" -nt "$LINT_BIN" ] && LINT_STALE=1
  done
  if [ ! -x "$LINT_BIN" ] || [ "$LINT_STALE" -eq 1 ]; then
    echo "building $LINT_BIN"
    if ! c++ -std=c++20 -O2 -Wall -Wextra -pthread "${LINT_SRCS[@]}" \
         -o "$LINT_BIN"
    then
      fail "actor-lint: build failed"
      LINT_BIN=""
    fi
  fi
}

# --lint-fast: the sub-second inner loop. Re-lints only files whose hash
# differs from the symbol cache, plus their call-graph neighborhood and
# transitive includers; whole-repo rules (include cycles, test
# registration) always run. Header compiles are skipped — the full gate
# still owns R5a.
if [ "$MODE" = "lint_fast" ]; then
  note "actor-lint --changed-only"
  build_lint_bin
  [ -n "$LINT_BIN" ] || { echo; echo "1 check(s) failed"; exit 1; }
  if "$LINT_BIN" --cache=build/actor_lint.cache \
       --symbols=build/actor_lint.symbols --changed-only \
       --no-header-compile; then
    pass "actor-lint (changed-only)"
    exit 0
  fi
  fail "actor-lint reported findings (rule catalog: docs/static-analysis.md)"
  echo; echo "1 check(s) failed"; exit 1
fi

# --- 1. Format check -------------------------------------------------------
note "format check"
# Collect sources null-delimited into an array: robust against paths with
# spaces, and clang-format's exit status is checked directly instead of
# through a `| head` pipeline (head's early exit used to SIGPIPE
# clang-format and mask the real status).
CXX_SOURCES=()
while IFS= read -r -d '' f; do
  CXX_SOURCES+=("$f")
done < <(find src tests bench examples tools \
           \( -name '*.cc' -o -name '*.h' -o -name '*.cpp' \) -print0 \
         | sort -z)
if ! command -v clang-format >/dev/null 2>&1; then
  echo "skip: clang-format not installed in this container"
elif [ ! -f .clang-format ]; then
  # Without a committed style file clang-format falls back to LLVM
  # defaults, which the tree was never formatted with — running it would
  # only report noise (this matters on CI runners, where clang-format IS
  # installed).
  echo "skip: no .clang-format at the repo root"
else
  FORMAT_OUT=$(mktemp)
  if clang-format --dry-run -Werror "${CXX_SOURCES[@]}" >"$FORMAT_OUT" 2>&1
  then
    pass "clang-format"
  else
    fail "clang-format found formatting drift"
    head -40 "$FORMAT_OUT"
  fi
  rm -f "$FORMAT_OUT"
fi

# --- 2. actor-lint ---------------------------------------------------------
note "actor-lint"
build_lint_bin
if [ -n "$LINT_BIN" ]; then
  if "$LINT_BIN" --cache=build/actor_lint.cache \
       --symbols=build/actor_lint.symbols; then
    pass "actor-lint"
  else
    fail "actor-lint reported findings (rule catalog:" \
         "docs/static-analysis.md)"
  fi
fi

# --- 3. Markdown links -----------------------------------------------------
note "markdown links"
# L5: relative markdown links must resolve. Matches [text](path) where path
# is not an external URL or pure #anchor; strips any #fragment before the
# existence check.
L5_STATUS=0
while IFS=: read -r md link; do
  target="${link%%#*}"
  [ -z "$target" ] && continue  # same-file #anchor
  if [ ! -e "$(dirname "$md")/$target" ] && [ ! -e "$target" ]; then
    fail "L5: $md links to missing file: $link"; L5_STATUS=1
  fi
done < <(grep -rnoE '\]\(([^)#:[:space:]]+[^):[:space:]]*)\)' \
           --include='*.md' . 2>/dev/null \
         | grep -v '/build' | grep -v 'third_party' \
         | sed -E 's/:[0-9]+:\]\(/:/; s/\)$//' \
         | grep -vE ':(https?|mailto)' )
[ "$L5_STATUS" -eq 0 ] && pass "L5: markdown links resolve"

# --- 4. clang-tidy ---------------------------------------------------------
note "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  # clang-tidy needs a compile database; configuring needs the project's
  # dependencies (gtest/benchmark), which a bare lint environment may not
  # have — skip rather than fail in that case.
  if cmake --preset default >/dev/null 2>&1; then
    if find src -name '*.cc' | xargs clang-tidy -p build --quiet; then
      pass "clang-tidy"
    else
      fail "clang-tidy reported findings"
    fi
  else
    echo "skip: cmake configure failed (missing build deps?); clang-tidy"
    echo "      needs build/compile_commands.json"
  fi
else
  echo "skip: clang-tidy not installed in this container (.clang-tidy is"
  echo "      still the source of truth where it is available)"
fi

if [ "$MODE" = "lint" ]; then
  note "lint-only mode: skipping build/test matrix"
  [ "$FAILURES" -eq 0 ] || { echo; echo "$FAILURES check(s) failed"; exit 1; }
  echo; echo "all lint checks passed"; exit 0
fi

# --- Benchmark regression hook --------------------------------------------
# Rebuilds the default preset, reruns the throughput harnesses, and diffs
# the fresh numbers against the committed BENCH_*.json baselines. Drops
# beyond 10% print a REGRESSION warning but do not fail the gate: the
# committed numbers carry machine drift, so the protocol (EXPERIMENTS.md,
# "Benchmark workflow") is to A/B the prior commit on the same machine
# before believing a drop.
if [ "$MODE" = "bench" ]; then
  note "bench mode: rebuild + throughput comparison"
  cmake --preset default >/dev/null || { fail "configure"; exit 1; }
  cmake --build --preset default -j "$(nproc)" \
    --target sgd_throughput online_throughput query_throughput serve_load \
    || { fail "bench build"; exit 1; }
  BENCH_TMP=$(mktemp -d)
  trap 'rm -rf "$BENCH_TMP"' EXIT
  for bench in sgd online query serve; do
    json="BENCH_${bench}.json"
    # Bench name -> producing binary (docs/benchmarking.md has the full
    # matrix): serve comes from the open-loop serve_load harness, the rest
    # from the closed-loop *_throughput ones.
    case "$bench" in
      serve) bin="build/bench/serve_load" ;;
      *)     bin="build/bench/${bench}_throughput" ;;
    esac
    if [ ! -f "$json" ]; then
      echo "skip: no committed $json baseline"; continue
    fi
    note "running $(basename "$bin")"
    if ! "$bin" --out="$BENCH_TMP/$json"; then
      fail "$(basename "$bin") run"; continue
    fi
    note "comparing $json (committed vs fresh)"
    python3 scripts/bench_compare.py "$json" "$BENCH_TMP/$json" \
      || fail "bench_compare on $json"
  done
  echo
  [ "$FAILURES" -eq 0 ] || { echo "$FAILURES check(s) failed"; exit 1; }
  echo "bench comparison done (warnings above, if any, need same-machine A/B)"
  exit 0
fi

# --- 4. Build + test matrix ------------------------------------------------
PRESETS=(default sanitize tsan)
[ "$MODE" = "one" ] && PRESETS=("$ONLY_PRESET")
for preset in "${PRESETS[@]}"; do
  note "preset $preset: configure + build"
  if ! cmake --preset "$preset" >/dev/null; then
    fail "preset $preset: configure"; continue
  fi
  if ! cmake --build --preset "$preset" -j "$(nproc)"; then
    fail "preset $preset: build"; continue
  fi
  note "preset $preset: ctest"
  if ctest --preset "$preset" -j "$(nproc)"; then
    pass "preset $preset tests"
  else
    fail "preset $preset: tests"
  fi
done

echo
if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES check(s) failed"; exit 1
fi
echo "all checks passed"
