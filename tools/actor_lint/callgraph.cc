#include "callgraph.h"

#include <algorithm>
#include <deque>
#include <set>

namespace actor_lint {

namespace {

/// Collects `using A = B;` type aliases across the file set, so a method
/// defined (or called) through an alias — `NeighborSearcher::QueryByVector`
/// where `using NeighborSearcher = QueryEngine;` — matches the aliased
/// class. Only the simple single-identifier RHS form is recorded (template
/// aliases resolve to their base identifier).
std::unordered_map<std::string, std::string> CollectAliases(
    const std::vector<LexedFile>& files) {
  std::unordered_map<std::string, std::string> aliases;
  for (const LexedFile& f : files) {
    const std::string& code = f.code;
    std::size_t pos = 0;
    while ((pos = FindToken(code, pos, "using")) != kNpos) {
      std::size_t j = SkipWs(code, pos + 5);
      pos += 5;
      std::size_t nb = j;
      while (j < code.size() && IsIdentChar(code[j])) ++j;
      if (j == nb) continue;
      const std::string lhs = code.substr(nb, j - nb);
      if (lhs == "namespace") continue;
      j = SkipWs(code, j);
      if (j >= code.size() || code[j] != '=') continue;
      j = SkipWs(code, j + 1);
      // RHS: last identifier segment before `<` / `;` (skips `const`,
      // nested `ns::` qualification).
      std::string rhs;
      while (j < code.size() && code[j] != ';' && code[j] != '<') {
        if (IsIdentChar(code[j])) {
          std::size_t e = j;
          while (e < code.size() && IsIdentChar(code[e])) ++e;
          rhs = code.substr(j, e - j);
          j = e;
        } else {
          ++j;
        }
      }
      if (!rhs.empty() && rhs != "const" && lhs != rhs) {
        aliases.emplace(lhs, rhs);
      }
    }
  }
  return aliases;
}

}  // namespace

CallGraph::CallGraph(const std::vector<LexedFile>* files,
                     const std::vector<FileSymbols>* symbols)
    : files_(files), symbols_(symbols) {
  for (int fi = 0; fi < static_cast<int>(symbols->size()); ++fi) {
    const FileSymbols& fs = (*symbols)[fi];
    for (int si = 0; si < static_cast<int>(fs.symbols.size()); ++si) {
      by_name_[fs.symbols[si].name].push_back(
          static_cast<int>(nodes_.size()));
      nodes_.push_back({fi, si});
    }
  }
  aliases_ = CollectAliases(*files);
}

const std::string& CallGraph::CanonicalType(const std::string& name) const {
  const std::string* cur = &name;
  for (int hops = 0; hops < 8; ++hops) {
    auto it = aliases_.find(*cur);
    if (it == aliases_.end()) break;
    cur = &it->second;
  }
  return *cur;
}

std::vector<int> CallGraph::Resolve(const CallSite& call) const {
  std::vector<int> out;
  if (call.qualifier == "std") return out;
  auto it = by_name_.find(call.name);
  if (it == by_name_.end()) return out;
  const std::string call_qual =
      call.qualifier.empty() ? std::string() : CanonicalType(call.qualifier);
  for (const int node : it->second) {
    const Symbol& s = Sym(node);
    // Arity: the call's argument count must be satisfiable.
    if (call.args < s.min_args) continue;
    if (s.max_args >= 0 && call.args > s.max_args) continue;
    if (!call_qual.empty()) {
      // `X::name(...)`: matches X's methods, or a free function when X is
      // actually a namespace (lexically indistinguishable — keep both).
      const std::string sym_qual = CanonicalType(s.qualifier);
      if (s.method ? sym_qual != call_qual : !s.qualifier.empty()) continue;
      if (s.lambda_var) continue;
    } else if (call.member) {
      // `x.name(...)`: only methods can be the target.
      if (!s.method) continue;
    }
    out.push_back(node);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<int> CallGraph::ResolveAll(
    const std::vector<CallSite>& calls) const {
  std::vector<int> out;
  for (const CallSite& c : calls) {
    const std::vector<int> targets = Resolve(c);
    out.insert(out.end(), targets.begin(), targets.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

CallGraph BuildCallGraph(const std::vector<LexedFile>& files,
                         const std::vector<FileSymbols>& symbols) {
  return CallGraph(&files, &symbols);
}

namespace {

/// True for files where pool-dispatch lambdas are auto-detected as HOGWILD
/// regions (mirrors the per-file rule the v1 analyzer applied).
bool AutoDetectDir(const std::string& path) {
  return StartsWith(path, "src/embedding/") || StartsWith(path, "src/core/") ||
         StartsWith(path, "src/shard/");
}

/// Finds every ShardedRange/ParallelFor/Submit call in `code` and reports
/// each argument that is a lambda literal (span of its body) or a plain
/// identifier (potential lambda variable, resolved by the caller).
struct DispatchArg {
  std::size_t body_begin = 0;  // lambda literal body '{' (kNpos if ident)
  std::size_t body_end = 0;
  std::string ident;  // non-empty for plain-identifier args
};

std::vector<DispatchArg> DispatchArgs(const std::string& code) {
  std::vector<DispatchArg> out;
  for (const char* dispatch : {"ShardedRange", "ParallelFor", "Submit"}) {
    std::size_t pos = 0;
    while ((pos = FindToken(code, pos, dispatch)) != kNpos) {
      const std::size_t open =
          SkipWs(code, pos + std::char_traits<char>::length(dispatch));
      ++pos;
      if (open >= code.size() || code[open] != '(') continue;
      std::vector<std::pair<std::size_t, std::size_t>> args;
      if (!SplitCallArgs(code, open, &args)) continue;
      for (const auto& [ab, ae] : args) {
        std::size_t b = SkipWs(code, ab);
        if (b >= ae) continue;
        if (code[b] == '&') b = SkipWs(code, b + 1);  // `&fn` / `&lambda`
        if (code[b] == '[') {
          // Lambda literal: `[caps](params) ... { body }`.
          const std::size_t intro_end = MatchForward(code, b);
          if (intro_end == kNpos || intro_end > ae) continue;
          const std::size_t body = code.find('{', intro_end);
          if (body == kNpos || body > ae) continue;
          const std::size_t body_end = MatchForward(code, body);
          if (body_end == kNpos) continue;
          out.push_back({body, body_end, ""});
          continue;
        }
        // Plain identifier argument (a lambda stored in a variable).
        std::size_t e = b;
        while (e < ae && IsIdentChar(code[e])) ++e;
        if (e == b || SkipWs(code, e) < ae) continue;  // not a bare ident
        out.push_back({kNpos, kNpos, code.substr(b, e - b)});
      }
    }
  }
  return out;
}

/// BFS over call edges from `seed_nodes` plus the calls inside
/// `seed_spans`, marking every reached node defined under src/. Seeds are
/// marked too.
std::vector<char> Reach(const CallGraph& g,
                        const std::vector<int>& seed_nodes,
                        const std::vector<SrcSpan>& seed_spans,
                        const std::vector<LexedFile>& files) {
  std::vector<char> mark(g.nodes().size(), 0);
  std::deque<int> queue;
  auto push = [&](int node) {
    if (mark[node]) return;
    if (!StartsWith(g.File(node).path, "src/")) return;
    mark[node] = 1;
    queue.push_back(node);
  };
  for (const int n : seed_nodes) push(n);
  for (const SrcSpan& span : seed_spans) {
    const LexedFile& f = files[static_cast<std::size_t>(span.file)];
    for (const int n :
         g.ResolveAll(ExtractCallsInSpan(f.code, span.begin, span.end))) {
      push(n);
    }
  }
  while (!queue.empty()) {
    const int node = queue.front();
    queue.pop_front();
    for (const int callee : g.ResolveAll(g.Sym(node).calls)) push(callee);
  }
  return mark;
}

}  // namespace

HogwildInfo ComputeHogwild(const CallGraph& g,
                           const std::vector<SrcSpan>& annotation_spans) {
  HogwildInfo info;
  const std::vector<LexedFile>& files = g.files();

  // Dispatch roots: lambda literals become region spans; bare-identifier
  // arguments resolve to same-file lambda variables (or free functions)
  // whose bodies become region roots.
  for (int fi = 0; fi < static_cast<int>(files.size()); ++fi) {
    const LexedFile& f = files[static_cast<std::size_t>(fi)];
    if (!AutoDetectDir(f.path)) continue;
    for (const DispatchArg& arg : DispatchArgs(f.code)) {
      if (arg.ident.empty()) {
        info.dispatch_spans.push_back({fi, arg.body_begin, arg.body_end});
        continue;
      }
      for (int n = 0; n < static_cast<int>(g.nodes().size()); ++n) {
        if (g.FileIndex(n) != fi) continue;
        const Symbol& s = g.Sym(n);
        if (s.name == arg.ident && !s.method) {
          info.dispatch_seed_nodes.push_back(n);
        }
      }
    }
  }
  std::sort(info.dispatch_seed_nodes.begin(), info.dispatch_seed_nodes.end());
  info.dispatch_seed_nodes.erase(
      std::unique(info.dispatch_seed_nodes.begin(),
                  info.dispatch_seed_nodes.end()),
      info.dispatch_seed_nodes.end());

  info.hogwild_auto = Reach(g, info.dispatch_seed_nodes, info.dispatch_spans,
                            files);
  std::vector<SrcSpan> all_spans = info.dispatch_spans;
  all_spans.insert(all_spans.end(), annotation_spans.begin(),
                   annotation_spans.end());
  info.hogwild = Reach(g, info.dispatch_seed_nodes, all_spans, files);
  return info;
}

HotPathInfo ComputeHotPaths(const CallGraph& g, const HogwildInfo& hw,
                            const std::vector<SrcSpan>& annotation_spans) {
  HotPathInfo info;
  const std::size_t n_nodes = g.nodes().size();
  info.root.assign(n_nodes, 0);

  // Scoring roots: Query* methods of QueryEngine (through any alias) and
  // of the scatter-gather ShardedQueryEngine — the sharded serving
  // boundary has the same contract as the flat one: the Query* bodies may
  // allocate per-request scratch (heads, merge buffers) but must never
  // block, and everything reachable beneath them stays allocation-free.
  for (int n = 0; n < static_cast<int>(n_nodes); ++n) {
    const Symbol& s = g.Sym(n);
    if (!s.method || !StartsWith(s.name, "Query")) continue;
    const std::string& canon = g.CanonicalType(s.qualifier);
    if (canon != "QueryEngine" && canon != "ShardedQueryEngine") continue;
    info.query_roots.push_back(n);
    info.root[n] = 1;
  }
  // HOGWILD boundary bodies: dispatched lambda variables are the region
  // itself, not a helper reached from one.
  for (const int n : hw.dispatch_seed_nodes) info.root[n] = 1;

  // Reachability, tracked separately per provenance for the messages.
  std::vector<SrcSpan> hogwild_spans = hw.dispatch_spans;
  hogwild_spans.insert(hogwild_spans.end(), annotation_spans.begin(),
                       annotation_spans.end());
  info.from_hogwild =
      Reach(g, hw.dispatch_seed_nodes, hogwild_spans, g.files());
  info.from_query = Reach(g, info.query_roots, {}, g.files());

  info.checked.assign(n_nodes, 0);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    if (info.root[i]) continue;
    if (info.from_hogwild[i] || info.from_query[i]) info.checked[i] = 1;
  }
  return info;
}

std::string DumpCallGraphDot(const CallGraph& g, const HogwildInfo& hw,
                             const HotPathInfo& hot) {
  std::string out = "digraph actor_lint {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  // Stable node order: by (file path, line).
  std::vector<int> order(g.nodes().size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const Symbol& sa = g.Sym(a);
    const Symbol& sb = g.Sym(b);
    return std::tie(g.File(a).path, sa.line, sa.name) <
           std::tie(g.File(b).path, sb.line, sb.name);
  });
  auto node_id = [&](int n) { return "n" + std::to_string(n); };
  for (const int n : order) {
    const Symbol& s = g.Sym(n);
    std::string label = s.qualifier.empty() ? s.name : s.qualifier + "::" + s.name;
    if (s.lambda_var) label += " [lambda]";
    label += "\\n" + g.File(n).path + ":" + std::to_string(s.line);
    std::string color;
    const bool is_query_root =
        std::find(hot.query_roots.begin(), hot.query_roots.end(), n) !=
        hot.query_roots.end();
    if (is_query_root) {
      color = "lightblue";
    } else if (n < static_cast<int>(hw.hogwild.size()) && hw.hogwild[n]) {
      color = "salmon";
    } else if (n < static_cast<int>(hot.checked.size()) && hot.checked[n]) {
      color = "orange";
    }
    out += "  " + node_id(n) + " [label=\"" + label + "\"";
    if (!color.empty()) out += ", style=filled, fillcolor=" + color;
    out += "];\n";
  }
  for (const int n : order) {
    for (const int callee : g.ResolveAll(g.Sym(n).calls)) {
      out += "  " + node_id(n) + " -> " + node_id(callee) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace actor_lint
