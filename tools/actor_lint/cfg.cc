#include "cfg.h"

#include <algorithm>
#include <sstream>

namespace actor_lint {

namespace {

/// End of the plain statement starting at `pos`: one past the first ';'
/// at brace/paren/bracket depth 0, or `end` when none (also stops before
/// an unbalanced closer, so a truncated span cannot run away).
std::size_t StmtEnd(const std::string& code, std::size_t pos,
                    std::size_t end) {
  int depth = 0;
  for (std::size_t i = pos; i < end; ++i) {
    const char c = code[i];
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') {
      if (depth == 0) return i;  // closer of an enclosing scope
      --depth;
    }
    if (c == ';' && depth == 0) return i + 1;
  }
  return end;
}

/// Recursive-descent lowering of one body. Loop/switch contexts carry the
/// break/continue targets; every statement records the '}' of its
/// innermost scope so RAII lifetimes are recoverable from the spans.
class CfgBuilder {
 public:
  explicit CfgBuilder(const std::string& code) : code_(code) {}

  Cfg Build(std::size_t body_begin, std::size_t body_end) {
    NewBlock();  // 0: entry
    NewBlock();  // 1: exit
    const int last =
        ParseSeq(body_begin + 1, body_end, cfg_.entry, body_end);
    if (last >= 0) Edge(last, cfg_.exit_block);
    return std::move(cfg_);
  }

 private:
  struct LoopCtx {
    int break_target = -1;
    int continue_target = -1;
  };

  int NewBlock() {
    cfg_.blocks.emplace_back();
    return static_cast<int>(cfg_.blocks.size()) - 1;
  }
  void Edge(int from, int to) {
    auto& s = cfg_.blocks[static_cast<std::size_t>(from)].succs;
    if (std::find(s.begin(), s.end(), to) == s.end()) s.push_back(to);
  }
  void AddStmt(int blk, std::size_t b, std::size_t e,
               std::size_t scope_end) {
    if (b < e) {
      cfg_.blocks[static_cast<std::size_t>(blk)].stmts.push_back(
          {b, e, scope_end});
    }
  }

  /// Parses statements in [begin, end) into `cur`; returns the block live
  /// after the last statement, or -1 when control cannot fall through.
  int ParseSeq(std::size_t begin, std::size_t end, int cur,
               std::size_t scope_end) {
    std::size_t pos = SkipWs(code_, begin);
    while (pos < end) {
      if (code_[pos] == '}' || code_[pos] == ')') break;  // malformed span
      if (code_[pos] == ';') {  // empty statement
        pos = SkipWs(code_, pos + 1);
        continue;
      }
      if (cur < 0) cur = NewBlock();  // code after return/break: still lint
      std::size_t after = pos;
      cur = ParseOne(pos, &after, cur, scope_end);
      if (after <= pos) break;  // no forward progress — bail conservatively
      pos = SkipWs(code_, after);
    }
    return cur;
  }

  /// One statement (simple or compound) at `pos`; sets *after to one past
  /// its end and returns the live block (or -1).
  int ParseOne(std::size_t pos, std::size_t* after, int cur,
               std::size_t scope_end) {
    const char c = code_[pos];
    if (c == '{') {
      const std::size_t close = MatchForward(code_, pos);
      if (close == kNpos) {
        *after = scope_end;
        return cur;
      }
      const int live = ParseSeq(pos + 1, close, cur, close);
      *after = close + 1;
      return live;
    }
    if (TokenAt(code_, pos, "if")) return ParseIf(pos, after, cur, scope_end);
    if (TokenAt(code_, pos, "while")) {
      return ParseWhile(pos, after, cur, scope_end);
    }
    if (TokenAt(code_, pos, "for")) {
      return ParseFor(pos, after, cur, scope_end);
    }
    if (TokenAt(code_, pos, "do")) return ParseDo(pos, after, cur, scope_end);
    if (TokenAt(code_, pos, "switch")) {
      return ParseSwitch(pos, after, cur, scope_end);
    }
    if (TokenAt(code_, pos, "return") || TokenAt(code_, pos, "goto")) {
      const std::size_t e = StmtEnd(code_, pos, scope_end);
      AddStmt(cur, pos, e, scope_end);
      Edge(cur, cfg_.exit_block);
      *after = e;
      return -1;
    }
    if (TokenAt(code_, pos, "break") || TokenAt(code_, pos, "continue")) {
      const bool is_break = code_[pos] == 'b';
      const std::size_t e = StmtEnd(code_, pos, scope_end);
      AddStmt(cur, pos, e, scope_end);
      int target = cfg_.exit_block;
      if (!loops_.empty()) {
        target = is_break ? loops_.back().break_target
                          : loops_.back().continue_target;
      }
      Edge(cur, target);
      *after = e;
      return -1;
    }
    if (TokenAt(code_, pos, "else")) {
      // Dangling else (the matching if terminated early) — attach its
      // statement to the current block rather than losing it.
      std::size_t p = SkipWs(code_, pos + 4);
      return ParseOne(p, after, cur, scope_end);
    }
    // Plain statement (declaration, expression, lambda literal, ...).
    const std::size_t e = StmtEnd(code_, pos, scope_end);
    AddStmt(cur, pos, e, scope_end);
    *after = e;
    return cur;
  }

  /// `(cond)` span after a keyword; returns false when not parseable.
  bool ParenSpan(std::size_t from, std::size_t* open, std::size_t* close) {
    *open = SkipWs(code_, from);
    if (*open >= code_.size() || code_[*open] != '(') return false;
    *close = MatchForward(code_, *open);
    return *close != kNpos;
  }

  int ParseIf(std::size_t pos, std::size_t* after, int cur,
              std::size_t scope_end) {
    std::size_t kw_end = pos + 2;
    std::size_t p = SkipWs(code_, kw_end);
    if (TokenAt(code_, p, "constexpr")) p = SkipWs(code_, p + 9);
    std::size_t open = 0, close = 0;
    if (!ParenSpan(p, &open, &close)) {
      const std::size_t e = StmtEnd(code_, pos, scope_end);
      AddStmt(cur, pos, e, scope_end);
      *after = e;
      return cur;
    }
    AddStmt(cur, pos, close + 1, scope_end);  // condition (+ init-stmt)
    const int cond_blk = cur;
    const int then_blk = NewBlock();
    Edge(cond_blk, then_blk);
    std::size_t then_after = close + 1;
    const int then_live =
        ParseOne(SkipWs(code_, close + 1), &then_after, then_blk, scope_end);
    const std::size_t else_kw = SkipWs(code_, then_after);
    if (TokenAt(code_, else_kw, "else")) {
      const int else_blk = NewBlock();
      Edge(cond_blk, else_blk);
      std::size_t else_after = else_kw + 4;
      const int else_live = ParseOne(SkipWs(code_, else_kw + 4), &else_after,
                                     else_blk, scope_end);
      *after = else_after;
      if (then_live < 0 && else_live < 0) return -1;
      const int join = NewBlock();
      if (then_live >= 0) Edge(then_live, join);
      if (else_live >= 0) Edge(else_live, join);
      return join;
    }
    *after = then_after;
    const int join = NewBlock();
    Edge(cond_blk, join);  // condition false: skip the then-branch
    if (then_live >= 0) Edge(then_live, join);
    return join;
  }

  int ParseWhile(std::size_t pos, std::size_t* after, int cur,
                 std::size_t scope_end) {
    std::size_t open = 0, close = 0;
    if (!ParenSpan(pos + 5, &open, &close)) {
      const std::size_t e = StmtEnd(code_, pos, scope_end);
      AddStmt(cur, pos, e, scope_end);
      *after = e;
      return cur;
    }
    const int header = NewBlock();
    Edge(cur, header);
    AddStmt(header, pos, close + 1, scope_end);
    const int body_blk = NewBlock();
    const int after_blk = NewBlock();
    Edge(header, body_blk);
    Edge(header, after_blk);
    loops_.push_back({after_blk, header});
    std::size_t body_after = close + 1;
    const int body_live =
        ParseOne(SkipWs(code_, close + 1), &body_after, body_blk, scope_end);
    loops_.pop_back();
    if (body_live >= 0) Edge(body_live, header);
    *after = body_after;
    return after_blk;
  }

  int ParseFor(std::size_t pos, std::size_t* after, int cur,
               std::size_t scope_end) {
    // Both classic and range-for: the whole `for (...)` header is one
    // statement in the loop-header block. Init re-evaluation per
    // iteration is a harmless over-approximation for may-analyses.
    std::size_t open = 0, close = 0;
    if (!ParenSpan(pos + 3, &open, &close)) {
      const std::size_t e = StmtEnd(code_, pos, scope_end);
      AddStmt(cur, pos, e, scope_end);
      *after = e;
      return cur;
    }
    const int header = NewBlock();
    Edge(cur, header);
    AddStmt(header, pos, close + 1, scope_end);
    const int body_blk = NewBlock();
    const int after_blk = NewBlock();
    Edge(header, body_blk);
    Edge(header, after_blk);
    loops_.push_back({after_blk, header});
    std::size_t body_after = close + 1;
    const int body_live =
        ParseOne(SkipWs(code_, close + 1), &body_after, body_blk, scope_end);
    loops_.pop_back();
    if (body_live >= 0) Edge(body_live, header);
    *after = body_after;
    return after_blk;
  }

  int ParseDo(std::size_t pos, std::size_t* after, int cur,
              std::size_t scope_end) {
    const int body_blk = NewBlock();
    Edge(cur, body_blk);
    const int cond_blk = NewBlock();
    const int after_blk = NewBlock();
    loops_.push_back({after_blk, cond_blk});
    std::size_t body_after = pos + 2;
    const int body_live =
        ParseOne(SkipWs(code_, pos + 2), &body_after, body_blk, scope_end);
    loops_.pop_back();
    if (body_live >= 0) Edge(body_live, cond_blk);
    // `while (cond);` tail.
    std::size_t p = SkipWs(code_, body_after);
    std::size_t cond_end = body_after;
    if (TokenAt(code_, p, "while")) {
      std::size_t open = 0, close = 0;
      if (ParenSpan(p + 5, &open, &close)) {
        cond_end = StmtEnd(code_, p, scope_end);
        AddStmt(cond_blk, p, cond_end, scope_end);
      }
    }
    Edge(cond_blk, body_blk);
    Edge(cond_blk, after_blk);
    *after = cond_end;
    return after_blk;
  }

  int ParseSwitch(std::size_t pos, std::size_t* after, int cur,
                  std::size_t scope_end) {
    std::size_t open = 0, close = 0;
    if (!ParenSpan(pos + 6, &open, &close)) {
      const std::size_t e = StmtEnd(code_, pos, scope_end);
      AddStmt(cur, pos, e, scope_end);
      *after = e;
      return cur;
    }
    AddStmt(cur, pos, close + 1, scope_end);  // the switched expression
    const std::size_t body_open = SkipWs(code_, close + 1);
    if (body_open >= code_.size() || code_[body_open] != '{') {
      *after = close + 1;
      return cur;
    }
    const std::size_t body_close = MatchForward(code_, body_open);
    if (body_close == kNpos) {
      *after = close + 1;
      return cur;
    }
    const int header = cur;
    const int after_blk = NewBlock();
    // break binds to the switch; continue still targets the nearest loop.
    const int outer_cont =
        loops_.empty() ? cfg_.exit_block : loops_.back().continue_target;
    loops_.push_back({after_blk, outer_cont});
    int arm = -1;  // current case arm block
    std::size_t p = SkipWs(code_, body_open + 1);
    while (p < body_close) {
      if (TokenAt(code_, p, "case") || TokenAt(code_, p, "default")) {
        // Skip to the label's ':' (not '::') at depth 0.
        std::size_t q = p;
        int depth = 0;
        while (q < body_close) {
          const char ch = code_[q];
          if (ch == '(' || ch == '[' || ch == '{') ++depth;
          if (ch == ')' || ch == ']' || ch == '}') --depth;
          if (ch == ':' && depth == 0) {
            if (q + 1 < body_close && code_[q + 1] == ':') {
              q += 2;
              continue;
            }
            break;
          }
          ++q;
        }
        const int next_arm = NewBlock();
        Edge(header, next_arm);
        if (arm >= 0) Edge(arm, next_arm);  // fallthrough
        arm = next_arm;
        p = SkipWs(code_, q + 1);
        continue;
      }
      if (arm < 0) arm = NewBlock();  // statements before any label
      std::size_t stmt_after = p;
      arm = ParseOne(p, &stmt_after, arm, body_close);
      if (stmt_after <= p) break;
      p = SkipWs(code_, stmt_after);
    }
    loops_.pop_back();
    if (arm >= 0) Edge(arm, after_blk);
    Edge(header, after_blk);  // no label matched / no default
    *after = body_close + 1;
    return after_blk;
  }

  const std::string& code_;
  Cfg cfg_;
  std::vector<LoopCtx> loops_;
};

bool NextLine(const std::string& in, std::size_t* pos, std::string* line) {
  if (*pos >= in.size()) return false;
  const std::size_t nl = std::min(in.find('\n', *pos), in.size());
  *line = in.substr(*pos, nl - *pos);
  *pos = nl == in.size() ? nl : nl + 1;
  return true;
}

}  // namespace

Cfg BuildCfg(const std::string& code, std::size_t body_begin,
             std::size_t body_end) {
  CfgBuilder builder(code);
  return builder.Build(body_begin, body_end);
}

std::size_t ScopeEndAt(const Cfg& cfg, std::size_t offset,
                       std::size_t body_end) {
  std::size_t best = body_end;
  std::size_t best_len = kNpos;
  for (const BasicBlock& b : cfg.blocks) {
    for (const CfgStmt& s : b.stmts) {
      if (s.begin <= offset && offset < s.end && s.end - s.begin < best_len) {
        best = s.scope_end;
        best_len = s.end - s.begin;
      }
    }
  }
  return best;
}

std::vector<std::set<int>> ForwardDataflow(
    const Cfg& cfg,
    const std::function<std::set<int>(int, const std::set<int>&)>&
        transfer) {
  const std::size_t n = cfg.blocks.size();
  std::vector<std::vector<int>> preds(n);
  for (std::size_t b = 0; b < n; ++b) {
    for (const int s : cfg.blocks[b].succs) {
      preds[static_cast<std::size_t>(s)].push_back(static_cast<int>(b));
    }
  }
  std::vector<std::set<int>> in(n), out(n);
  // Round-robin to a fixed point: CFGs are function-sized (tens of
  // blocks), so a worklist would be over-engineering.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t b = 0; b < n; ++b) {
      std::set<int> in_b;
      for (const int p : preds[b]) {
        in_b.insert(out[static_cast<std::size_t>(p)].begin(),
                    out[static_cast<std::size_t>(p)].end());
      }
      std::set<int> out_b = transfer(static_cast<int>(b), in_b);
      if (in_b != in[b] || out_b != out[b]) {
        in[b] = std::move(in_b);
        out[b] = std::move(out_b);
        changed = true;
      }
    }
  }
  return in;
}

void SerializeCfgs(const std::vector<Cfg>& cfgs, std::string* out) {
  for (const Cfg& cfg : cfgs) {
    *out += "G " + std::to_string(cfg.blocks.size()) + "\n";
    for (const BasicBlock& b : cfg.blocks) {
      *out += "B " + std::to_string(b.succs.size());
      for (const int s : b.succs) *out += " " + std::to_string(s);
      *out += " " + std::to_string(b.stmts.size()) + "\n";
      for (const CfgStmt& s : b.stmts) {
        *out += "T " + std::to_string(s.begin) + " " +
                std::to_string(s.end) + " " + std::to_string(s.scope_end) +
                "\n";
      }
    }
  }
  *out += "X\n";
}

bool ParseCfgs(const std::string& in, std::size_t* pos,
               std::vector<Cfg>* out) {
  std::string line;
  while (NextLine(in, pos, &line)) {
    if (line == "X") return true;
    std::istringstream gs(line);
    std::string tag;
    std::size_t nblocks = 0;
    if (!(gs >> tag >> nblocks) || tag != "G") return false;
    Cfg cfg;
    for (std::size_t b = 0; b < nblocks; ++b) {
      if (!NextLine(in, pos, &line)) return false;
      std::istringstream bs(line);
      std::size_t nsuccs = 0;
      if (!(bs >> tag >> nsuccs) || tag != "B") return false;
      BasicBlock blk;
      for (std::size_t s = 0; s < nsuccs; ++s) {
        int succ = 0;
        if (!(bs >> succ)) return false;
        blk.succs.push_back(succ);
      }
      std::size_t nstmts = 0;
      if (!(bs >> nstmts)) return false;
      for (std::size_t s = 0; s < nstmts; ++s) {
        if (!NextLine(in, pos, &line)) return false;
        std::istringstream ts(line);
        CfgStmt stmt;
        if (!(ts >> tag >> stmt.begin >> stmt.end >> stmt.scope_end) ||
            tag != "T") {
          return false;
        }
        blk.stmts.push_back(stmt);
      }
      cfg.blocks.push_back(std::move(blk));
    }
    out->push_back(std::move(cfg));
  }
  return false;  // missing terminator
}

}  // namespace actor_lint
