#include "symbols.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <sstream>
#include <unordered_set>

namespace actor_lint {

bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)); }

bool StartsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool EndsWith(const std::string& s, const char* suffix) {
  const std::size_t len = std::char_traits<char>::length(suffix);
  return s.size() >= len && s.compare(s.size() - len, len, suffix) == 0;
}

std::size_t SkipWs(const std::string& s, std::size_t i) {
  while (i < s.size() && IsSpace(s[i])) ++i;
  return i;
}

bool TokenAt(const std::string& s, std::size_t pos, const char* word) {
  const std::size_t len = std::char_traits<char>::length(word);
  if (pos + len > s.size() || s.compare(pos, len, word) != 0) return false;
  if (pos > 0 && IsIdentChar(s[pos - 1])) return false;
  return pos + len >= s.size() || !IsIdentChar(s[pos + len]);
}

std::size_t FindToken(const std::string& s, std::size_t from,
                      const char* word) {
  std::size_t pos = from;
  while ((pos = s.find(word, pos)) != kNpos) {
    if (TokenAt(s, pos, word)) return pos;
    ++pos;
  }
  return kNpos;
}

std::size_t MatchForward(const std::string& s, std::size_t open_idx) {
  const char open = s[open_idx];
  const char close = open == '(' ? ')' : open == '[' ? ']' : '}';
  int depth = 0;
  for (std::size_t i = open_idx; i < s.size(); ++i) {
    if (s[i] == open) ++depth;
    if (s[i] == close && --depth == 0) return i;
  }
  return kNpos;
}

std::size_t MatchBackward(const std::string& s, std::size_t close_idx,
                          char open, char close) {
  int depth = 0;
  for (std::size_t i = close_idx + 1; i-- > 0;) {
    if (s[i] == close) ++depth;
    if (s[i] == open && --depth == 0) return i;
  }
  return kNpos;
}

bool SplitCallArgs(const std::string& code, std::size_t open,
                   std::vector<std::pair<std::size_t, std::size_t>>* args) {
  const std::size_t close = MatchForward(code, open);
  if (close == kNpos) return false;
  int depth = 0;
  std::size_t begin = open + 1;
  for (std::size_t i = open + 1; i < close; ++i) {
    const char c = code[i];
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
    if (c == ',' && depth == 0) {
      args->emplace_back(begin, i);
      begin = i + 1;
    }
  }
  if (close > begin || args->empty()) args->emplace_back(begin, close);
  return true;
}

uint64_t Fnv1a(const std::string& s, uint64_t h) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

namespace {

/// Identifiers that can precede a '(' without being a call or a function
/// name. Keeps the extractor from treating control flow, casts, and
/// keyword operators as symbols/call sites.
bool IsKeyword(const std::string& s) {
  static const std::unordered_set<std::string> kSet = {
      "if",        "for",        "while",      "switch",     "catch",
      "return",    "sizeof",     "alignof",    "alignas",    "decltype",
      "new",       "delete",     "throw",      "else",       "do",
      "case",      "default",    "static_assert", "requires", "noexcept",
      "operator",  "defined",    "and",        "or",         "not",
      "xor",       "goto",       "using",      "typedef",    "template",
      "typename",  "class",      "struct",     "enum",       "union",
      "public",    "private",    "protected",  "namespace",  "this",
      "const_cast", "static_cast", "dynamic_cast", "reinterpret_cast",
      "constexpr", "consteval",  "constinit",  "explicit",   "inline",
      "friend",    "virtual",    "export",     "concept",    "int",
      "char",      "bool",       "float",      "double",     "void",
      "auto",      "long",       "short",      "signed",     "unsigned",
      "const",     "volatile",   "static",     "extern",     "mutable",
      "co_await",  "co_yield",   "co_return",  "assert",
  };
  return kSet.count(s) > 0;
}

}  // namespace

std::size_t PrevNonWs(const std::string& s, std::size_t pos) {
  while (pos-- > 0) {
    if (!IsSpace(s[pos])) return pos;
  }
  return kNpos;
}

/// When the token at [b, e) is preceded by `X::`, returns the nearest
/// qualifier segment X (skipping one level of template args, so
/// `Foo<T>::bar` yields Foo). Empty string when unqualified or `::name`
/// (global) or the qualifier is unparsable.
std::string QualifierBefore(const std::string& code, std::size_t b) {
  std::size_t j = PrevNonWs(code, b);
  if (j == kNpos || j < 1 || code[j] != ':' || code[j - 1] != ':') return "";
  j = PrevNonWs(code, j - 1);
  if (j == kNpos) return "";
  if (code[j] == '>') {
    const std::size_t open = MatchBackward(code, j, '<', '>');
    if (open == kNpos) return "";
    j = PrevNonWs(code, open);
    if (j == kNpos) return "";
  }
  if (!IsIdentChar(code[j])) return "";
  std::size_t qb = j + 1;
  while (qb > 0 && IsIdentChar(code[qb - 1])) --qb;
  return code.substr(qb, j + 1 - qb);
}

/// True when the token at [b, e) is a member call (`x.name` / `x->name`).
bool IsMemberAccess(const std::string& code, std::size_t b) {
  const std::size_t j = PrevNonWs(code, b);
  if (j == kNpos) return false;
  if (code[j] == '.') {
    // Exclude `...name` (pack expansion) — treat as non-member.
    return !(j >= 2 && code[j - 1] == '.' && code[j - 2] == '.');
  }
  return j >= 1 && code[j] == '>' && code[j - 1] == '-';
}

namespace {

/// Counts top-level arguments/parameters of the list in (open, close).
/// Tracks (), [], {} and a heuristic <> depth so `map<int, float>` does
/// not split. Sets *variadic when a top-level `...` appears, *defaults to
/// the number of top-level `=` (defaulted parameters).
int CountListItems(const std::string& code, std::size_t open,
                   std::size_t close, bool* variadic, int* defaults) {
  if (variadic != nullptr) *variadic = false;
  if (defaults != nullptr) *defaults = 0;
  std::size_t first = SkipWs(code, open + 1);
  if (first >= close) return 0;
  if (TokenAt(code, first, "void") && SkipWs(code, first + 4) >= close) {
    return 0;
  }
  int depth = 0;
  int angle = 0;
  int items = 1;
  for (std::size_t i = open + 1; i < close; ++i) {
    const char c = code[i];
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
    if (depth == 0) {
      if (c == '<' && (i == 0 || code[i - 1] != '<')) ++angle;
      if (c == '>' && angle > 0 && (i == 0 || code[i - 1] != '-')) --angle;
      if (angle == 0) {
        if (c == ',') ++items;
        if (c == '=' && (i + 1 >= close || code[i + 1] != '=') &&
            (i == 0 || (code[i - 1] != '=' && code[i - 1] != '!' &&
                        code[i - 1] != '<' && code[i - 1] != '>'))) {
          if (defaults != nullptr) ++(*defaults);
        }
        if (c == '.' && i + 2 < close && code[i + 1] == '.' &&
            code[i + 2] == '.') {
          if (variadic != nullptr) *variadic = true;
        }
      }
    }
  }
  return items;
}

/// Starting just after the ')' of a parameter list, decides whether this
/// is a function *definition* and finds its body '{'. Accepts const /
/// noexcept(...) / override / final / ref-qualifiers / trailing return
/// types / constructor initializer lists; anything else (`;`, `=`, `,`,
/// an operator) rejects — that is a declaration or a call expression.
std::size_t FindDefinitionBody(const std::string& code, std::size_t after) {
  std::size_t t = SkipWs(code, after);
  for (int guard = 0; guard < 64 && t < code.size(); ++guard) {
    const char c = code[t];
    if (c == '{') return t;
    if (c == '&') {  // ref-qualifier (& or &&)
      t = SkipWs(code, t + (t + 1 < code.size() && code[t + 1] == '&' ? 2 : 1));
      continue;
    }
    if (TokenAt(code, t, "const") || TokenAt(code, t, "override") ||
        TokenAt(code, t, "final") || TokenAt(code, t, "mutable") ||
        TokenAt(code, t, "volatile")) {
      while (t < code.size() && IsIdentChar(code[t])) ++t;
      t = SkipWs(code, t);
      continue;
    }
    if (TokenAt(code, t, "noexcept")) {
      t = SkipWs(code, t + 8);
      if (t < code.size() && code[t] == '(') {
        const std::size_t close = MatchForward(code, t);
        if (close == kNpos) return kNpos;
        t = SkipWs(code, close + 1);
      }
      continue;
    }
    if (c == '-' && t + 1 < code.size() && code[t + 1] == '>') {
      // Trailing return type: consume until the body '{' at depth 0.
      int depth = 0;
      int angle = 0;
      for (std::size_t i = t + 2; i < code.size(); ++i) {
        const char ch = code[i];
        if (ch == '(' || ch == '[') ++depth;
        if (ch == ')' || ch == ']') --depth;
        if (ch == '<') ++angle;
        if (ch == '>' && angle > 0 && code[i - 1] != '-') --angle;
        if (depth == 0 && ch == '{') return i;
        if (depth <= 0 && (ch == ';' || ch == '}' ||
                           (ch == ',' && angle == 0))) {
          return kNpos;
        }
      }
      return kNpos;
    }
    if (c == ':' && (t + 1 >= code.size() || code[t + 1] != ':')) {
      // Constructor initializer list: entries `name(...)` / `name{...}`
      // separated by commas, then the body '{'.
      t = SkipWs(code, t + 1);
      for (int entries = 0; entries < 64; ++entries) {
        while (t < code.size() &&
               (IsIdentChar(code[t]) || code[t] == ':' || code[t] == '<' ||
                code[t] == '>')) {
          ++t;
        }
        t = SkipWs(code, t);
        if (t >= code.size() || (code[t] != '(' && code[t] != '{')) {
          return kNpos;
        }
        const std::size_t close = MatchForward(code, t);
        if (close == kNpos) return kNpos;
        t = SkipWs(code, close + 1);
        if (t < code.size() && code[t] == ',') {
          t = SkipWs(code, t + 1);
          continue;
        }
        break;
      }
      t = SkipWs(code, t);
      if (t < code.size() && code[t] == '{') return t;
      return kNpos;
    }
    return kNpos;
  }
  return kNpos;
}

struct ClassSpan {
  std::string name;
  std::size_t begin = 0;  // the class body '{'
  std::size_t end = 0;
};

std::vector<ClassSpan> CollectClassSpans(const std::string& code) {
  std::vector<ClassSpan> spans;
  for (const char* kw : {"class", "struct"}) {
    std::size_t pos = 0;
    while ((pos = FindToken(code, pos, kw)) != kNpos) {
      const std::size_t at = pos;
      pos += std::strlen(kw);
      // `enum class` is not a class scope; `template <class T>` is a
      // template parameter, not a definition.
      const std::size_t prev = PrevNonWs(code, at);
      if (prev != kNpos) {
        if (code[prev] == '<' || code[prev] == ',') continue;
        if (IsIdentChar(code[prev])) {
          std::size_t pb = prev + 1;
          while (pb > 0 && IsIdentChar(code[pb - 1])) --pb;
          if (code.compare(pb, prev + 1 - pb, "enum") == 0) continue;
        }
      }
      std::size_t j = SkipWs(code, at + std::strlen(kw));
      std::size_t nb = j;
      while (j < code.size() && IsIdentChar(code[j])) ++j;
      if (j == nb) continue;  // anonymous
      const std::string name = code.substr(nb, j - nb);
      // Forward decl (`;`), variable (`=`), or template parameter (`>`)
      // before the body brace means no scope to record.
      std::size_t k = j;
      int angle = 0;
      bool ok = false;
      while (k < code.size()) {
        const char c = code[k];
        if (c == '<') ++angle;
        if (c == '>' && angle > 0) --angle;
        if (angle == 0) {
          if (c == '{') {
            ok = true;
            break;
          }
          if (c == ';' || c == '=' || c == ')' || c == '>') break;
        }
        ++k;
      }
      if (!ok) continue;
      const std::size_t close = MatchForward(code, k);
      if (close == kNpos) continue;
      spans.push_back({name, k, close});
    }
  }
  return spans;
}

/// Innermost class span containing `pos`, or nullptr.
const ClassSpan* EnclosingClass(const std::vector<ClassSpan>& spans,
                                std::size_t pos) {
  const ClassSpan* best = nullptr;
  for (const ClassSpan& s : spans) {
    if (s.begin < pos && pos < s.end) {
      if (best == nullptr || s.end - s.begin < best->end - best->begin) {
        best = &s;
      }
    }
  }
  return best;
}

}  // namespace

std::vector<CallSite> ExtractCallsInSpan(const std::string& code,
                                         std::size_t begin, std::size_t end) {
  std::vector<CallSite> calls;
  std::size_t i = begin;
  while (i < end) {
    if (!IsIdentChar(code[i])) {
      ++i;
      continue;
    }
    const std::size_t b = i;
    while (i < end && IsIdentChar(code[i])) ++i;
    if (std::isdigit(static_cast<unsigned char>(code[b]))) continue;
    const std::string name = code.substr(b, i - b);
    if (IsKeyword(name)) continue;
    const std::size_t open = SkipWs(code, i);
    if (open >= end || code[open] != '(') continue;
    const std::size_t close = MatchForward(code, open);
    if (close == kNpos || close > end) continue;
    CallSite c;
    c.name = name;
    c.qualifier = QualifierBefore(code, b);
    c.member = IsMemberAccess(code, b);
    c.args = CountListItems(code, open, close, nullptr, nullptr);
    c.offset = b;
    calls.push_back(std::move(c));
  }
  return calls;
}

FileSymbols ExtractSymbols(const LexedFile& f) {
  FileSymbols out;
  const std::string& code = f.code;
  const std::vector<ClassSpan> classes = CollectClassSpans(code);

  // Named function / method definitions: `name(params) <trailer> {`.
  std::size_t i = 0;
  while (i < code.size()) {
    if (!IsIdentChar(code[i])) {
      ++i;
      continue;
    }
    const std::size_t b = i;
    while (i < code.size() && IsIdentChar(code[i])) ++i;
    if (std::isdigit(static_cast<unsigned char>(code[b]))) continue;
    const std::string name = code.substr(b, i - b);
    if (IsKeyword(name)) continue;
    const std::size_t prev = PrevNonWs(code, b);
    if (prev != kNpos && code[prev] == '~') continue;  // destructor
    const std::size_t open = SkipWs(code, i);
    if (open >= code.size() || code[open] != '(') continue;
    const std::size_t close = MatchForward(code, open);
    if (close == kNpos) continue;
    const std::size_t body = FindDefinitionBody(code, close + 1);
    if (body == kNpos) continue;
    const std::size_t body_end = MatchForward(code, body);
    if (body_end == kNpos) continue;

    Symbol sym;
    sym.name = name;
    sym.name_offset = b;
    sym.line = f.LineAt(b);
    sym.body_begin = body;
    sym.body_end = body_end;
    sym.qualifier = QualifierBefore(code, b);
    if (!sym.qualifier.empty()) {
      sym.method = true;
    } else if (const ClassSpan* cls = EnclosingClass(classes, b)) {
      sym.qualifier = cls->name;
      sym.method = true;
    }
    bool variadic = false;
    int defaults = 0;
    const int params = CountListItems(code, open, close, &variadic, &defaults);
    sym.min_args = std::max(0, params - defaults);
    sym.max_args = variadic ? -1 : params;
    sym.calls = ExtractCallsInSpan(code, body + 1, body_end);
    out.symbols.push_back(std::move(sym));
  }

  // Lambdas stored in variables: `auto name = [caps](params) ... {body}`.
  std::size_t pos = 0;
  while ((pos = code.find('[', pos)) != kNpos) {
    const std::size_t intro = pos++;
    const std::size_t eq = PrevNonWs(code, intro);
    if (eq == kNpos || code[eq] != '=' ||
        (eq > 0 && (code[eq - 1] == '=' || code[eq - 1] == '!' ||
                    code[eq - 1] == '<' || code[eq - 1] == '>'))) {
      continue;
    }
    const std::size_t name_end = PrevNonWs(code, eq);
    if (name_end == kNpos || !IsIdentChar(code[name_end])) continue;
    std::size_t nb = name_end + 1;
    while (nb > 0 && IsIdentChar(code[nb - 1])) --nb;
    const std::string name = code.substr(nb, name_end + 1 - nb);
    if (IsKeyword(name)) continue;
    const std::size_t intro_end = MatchForward(code, intro);
    if (intro_end == kNpos) continue;
    std::size_t t = SkipWs(code, intro_end + 1);
    int params = 0;
    bool variadic = false;
    int defaults = 0;
    if (t < code.size() && code[t] == '(') {
      const std::size_t pclose = MatchForward(code, t);
      if (pclose == kNpos) continue;
      params = CountListItems(code, t, pclose, &variadic, &defaults);
      t = SkipWs(code, pclose + 1);
    }
    const std::size_t body = code[t] == '{' ? t : FindDefinitionBody(code, t);
    if (body == kNpos || body >= code.size() || code[body] != '{') continue;
    const std::size_t body_end = MatchForward(code, body);
    if (body_end == kNpos) continue;

    Symbol sym;
    sym.name = name;
    sym.name_offset = nb;
    sym.line = f.LineAt(nb);
    sym.body_begin = body;
    sym.body_end = body_end;
    sym.lambda_var = true;
    sym.min_args = std::max(0, params - defaults);
    sym.max_args = variadic ? -1 : params;
    sym.calls = ExtractCallsInSpan(code, body + 1, body_end);
    out.symbols.push_back(std::move(sym));
  }

  std::sort(out.symbols.begin(), out.symbols.end(),
            [](const Symbol& a, const Symbol& b) {
              return a.name_offset < b.name_offset;
            });
  return out;
}

// ---- cache serialization --------------------------------------------------

void SerializeSymbols(const FileSymbols& syms, std::string* out) {
  for (const Symbol& s : syms.symbols) {
    *out += "S " + s.name + " " + (s.qualifier.empty() ? "-" : s.qualifier) +
            " " + std::to_string(s.line) + " " +
            std::to_string(s.name_offset) + " " +
            std::to_string(s.body_begin) + " " + std::to_string(s.body_end) +
            " " + (s.method ? "1" : "0") + (s.lambda_var ? "1" : "0") + " " +
            std::to_string(s.min_args) + " " + std::to_string(s.max_args) +
            " " + std::to_string(s.calls.size()) + "\n";
    for (const CallSite& c : s.calls) {
      *out += "C " + c.name + " " +
              (c.qualifier.empty() ? "-" : c.qualifier) + " " +
              (c.member ? "1" : "0") + " " + std::to_string(c.args) + " " +
              std::to_string(c.offset) + "\n";
    }
  }
  *out += "E\n";
}

namespace {

bool NextLine(const std::string& in, std::size_t* pos, std::string* line) {
  if (*pos >= in.size()) return false;
  const std::size_t nl = in.find('\n', *pos);
  const std::size_t end = nl == kNpos ? in.size() : nl;
  line->assign(in, *pos, end - *pos);
  *pos = nl == kNpos ? in.size() : nl + 1;
  return true;
}

}  // namespace

bool ParseSymbols(const std::string& in, std::size_t* pos, FileSymbols* out) {
  std::string line;
  while (NextLine(in, pos, &line)) {
    if (line == "E") return true;
    if (line.empty() || line[0] != 'S') return false;
    std::istringstream ls(line);
    std::string tag, flags;
    Symbol s;
    std::size_t ncalls = 0;
    if (!(ls >> tag >> s.name >> s.qualifier >> s.line >> s.name_offset >>
          s.body_begin >> s.body_end >> flags >> s.min_args >> s.max_args >>
          ncalls) ||
        flags.size() != 2) {
      return false;
    }
    if (s.qualifier == "-") s.qualifier.clear();
    s.method = flags[0] == '1';
    s.lambda_var = flags[1] == '1';
    for (std::size_t k = 0; k < ncalls; ++k) {
      if (!NextLine(in, pos, &line) || line.empty() || line[0] != 'C') {
        return false;
      }
      std::istringstream cs(line);
      CallSite c;
      int member = 0;
      if (!(cs >> tag >> c.name >> c.qualifier >> member >> c.args >>
            c.offset)) {
        return false;
      }
      if (c.qualifier == "-") c.qualifier.clear();
      c.member = member != 0;
      s.calls.push_back(std::move(c));
    }
    out->symbols.push_back(std::move(s));
  }
  return false;  // missing terminator
}

}  // namespace actor_lint
