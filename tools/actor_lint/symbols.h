#ifndef ACTOR_TOOLS_ACTOR_LINT_SYMBOLS_H_
#define ACTOR_TOOLS_ACTOR_LINT_SYMBOLS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "lexer.h"

namespace actor_lint {

inline constexpr std::size_t kNpos = std::string::npos;

// ---- text-scanning utilities shared by symbols/callgraph/rules ------------

bool IsSpace(char c);
bool StartsWith(const std::string& s, const char* prefix);
bool EndsWith(const std::string& s, const char* suffix);
std::size_t SkipWs(const std::string& s, std::size_t i);

/// True when s[pos..] starts with `word` as a whole identifier token.
bool TokenAt(const std::string& s, std::size_t pos, const char* word);

/// Next occurrence of `word` as a whole token at or after `from`.
std::size_t FindToken(const std::string& s, std::size_t from,
                      const char* word);

/// Index of the delimiter matching s[open_idx] (one of ( [ {), or npos.
std::size_t MatchForward(const std::string& s, std::size_t open_idx);

/// Index of the opener matching the closer at s[close_idx], or npos.
std::size_t MatchBackward(const std::string& s, std::size_t close_idx,
                          char open, char close);

/// Splits the argument list of a call whose '(' sits at `open` into
/// top-level (depth-0) argument spans. Returns false on unbalanced code.
bool SplitCallArgs(const std::string& code, std::size_t open,
                   std::vector<std::pair<std::size_t, std::size_t>>* args);

uint64_t Fnv1a(const std::string& s, uint64_t h);

/// Previous non-whitespace offset before `pos`, or npos.
std::size_t PrevNonWs(const std::string& s, std::size_t pos);

/// When the token at `b` is preceded by `X::`, the nearest qualifier
/// segment X (one level of template args skipped); "" when unqualified.
std::string QualifierBefore(const std::string& code, std::size_t b);

/// True when the token at `b` is a member access (`x.name` / `x->name`).
bool IsMemberAccess(const std::string& code, std::size_t b);

// ---- symbol index ---------------------------------------------------------

/// One call site inside a symbol body (or a HOGWILD region span). The
/// resolution in callgraph.cc is name-based and conservative; the fields
/// here let it reject the obvious mismatches (arity, member vs free,
/// explicit qualification).
struct CallSite {
  std::string name;
  std::string qualifier;  // nearest `X::` segment before the name, or ""
  bool member = false;    // receiver call: `x.name(` / `x->name(`
  int args = 0;           // top-level argument count at the call
  std::size_t offset = 0; // byte offset of the name token in `code`
};

/// One function/method definition (or a lambda stored in a variable),
/// parsed from the lexed `code` view. Spans are byte offsets into the
/// file's `code`/`content` (they are byte-aligned).
struct Symbol {
  std::string name;
  std::string qualifier;  // enclosing class / explicit `X::`, or ""
  int line = 0;           // 1-based line of the name token
  std::size_t name_offset = 0;
  std::size_t body_begin = 0;  // offset of the body '{'
  std::size_t body_end = 0;    // offset of the matching '}'
  bool method = false;
  bool lambda_var = false;  // `auto name = [...](...) {...};`
  int min_args = 0;         // params minus defaulted params
  int max_args = 0;         // -1: variadic / parameter pack
  std::vector<CallSite> calls;  // call sites inside [body_begin, body_end]
};

struct FileSymbols {
  std::vector<Symbol> symbols;
};

/// Parses every function/method/lambda-variable definition out of the
/// lexed `code` view, including the call sites inside each body. Purely
/// lexical: no filesystem, no preprocessor, conservative on anything it
/// cannot parse (skips rather than guesses).
FileSymbols ExtractSymbols(const LexedFile& f);

/// Call sites inside an arbitrary span of `code` (used for HOGWILD region
/// spans, which are lambda bodies rather than named symbols).
std::vector<CallSite> ExtractCallsInSpan(const std::string& code,
                                         std::size_t begin, std::size_t end);

/// Serialization for the per-file symbol-index cache (one line per symbol
/// or call, appended to `out`). ParseSymbols consumes exactly the lines
/// SerializeSymbols wrote, advancing `pos`; returns false on malformed
/// input (caller treats the cache entry as a miss).
void SerializeSymbols(const FileSymbols& syms, std::string* out);
bool ParseSymbols(const std::string& in, std::size_t* pos, FileSymbols* out);

}  // namespace actor_lint

#endif  // ACTOR_TOOLS_ACTOR_LINT_SYMBOLS_H_
