#ifndef ACTOR_TOOLS_ACTOR_LINT_CALLGRAPH_H_
#define ACTOR_TOOLS_ACTOR_LINT_CALLGRAPH_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "lexer.h"
#include "symbols.h"

namespace actor_lint {

/// Repo-wide call graph over the per-file symbol indexes. Resolution is
/// name-based and conservative: a call edge exists whenever a call site
/// *could* target a symbol (same name, compatible arity, member calls
/// match methods, explicit `X::` qualification matches the class — with
/// `using A = B;` type aliases canonicalized). `std::`-qualified calls
/// never resolve into the repo.
class CallGraph {
 public:
  struct Node {
    int file = -1;  // index into the files()/symbols() vectors
    int sym = -1;   // index into symbols()[file].symbols
  };

  CallGraph(const std::vector<LexedFile>* files,
            const std::vector<FileSymbols>* symbols);

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<LexedFile>& files() const { return *files_; }
  const Symbol& Sym(int node) const {
    return (*symbols_)[nodes_[node].file].symbols[nodes_[node].sym];
  }
  const LexedFile& File(int node) const {
    return (*files_)[nodes_[node].file];
  }
  int FileIndex(int node) const { return nodes_[node].file; }

  /// Resolved callee node ids for one call site (deduplicated, sorted).
  std::vector<int> Resolve(const CallSite& call) const;

  /// Resolved callees of every call site in `calls`.
  std::vector<int> ResolveAll(const std::vector<CallSite>& calls) const;

  /// Canonical type name through the `using A = B;` alias map.
  const std::string& CanonicalType(const std::string& name) const;

 private:
  const std::vector<LexedFile>* files_;
  const std::vector<FileSymbols>* symbols_;
  std::vector<Node> nodes_;
  std::unordered_map<std::string, std::vector<int>> by_name_;
  std::unordered_map<std::string, std::string> aliases_;
};

CallGraph BuildCallGraph(const std::vector<LexedFile>& files,
                         const std::vector<FileSymbols>& symbols);

/// A byte span of one file's `code` (file is an index into the lexed set).
struct SrcSpan {
  int file = -1;
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// HOGWILD context, derived interprocedurally. Roots are the lambda
/// literals passed to ShardedRange/ParallelFor/Submit in src/embedding/ +
/// src/core/ + src/shard/ (dispatch_spans) and lambda variables passed to
/// a dispatch by name (dispatch_seed_nodes). `hogwild_auto` marks every
/// symbol reachable
/// from those roots through the call graph; `hogwild` additionally
/// propagates from manual `// actor-lint: hogwild-region` annotation spans
/// (the escape hatch for regions the automation cannot see).
struct HogwildInfo {
  std::vector<SrcSpan> dispatch_spans;
  std::vector<int> dispatch_seed_nodes;
  std::vector<char> hogwild_auto;  // per node
  std::vector<char> hogwild;       // per node
};

HogwildInfo ComputeHogwild(const CallGraph& g,
                           const std::vector<SrcSpan>& annotation_spans);

/// R10 reachability. Roots (region boundaries that may own scratch
/// allocation but must not block): HOGWILD dispatch/annotation spans, the
/// bodies of dispatched lambda variables, and the `Query*` methods of
/// QueryEngine (or any alias of it, e.g. NeighborSearcher) and of the
/// scatter-gather ShardedQueryEngine. `checked`
/// marks every non-root symbol reachable from a root: those bodies must be
/// free of mutexes, IO, *and* heap allocation.
struct HotPathInfo {
  std::vector<int> query_roots;     // node ids
  std::vector<char> root;           // per node: is a boundary body
  std::vector<char> checked;        // per node
  std::vector<char> from_hogwild;   // per node: reached from HOGWILD roots
  std::vector<char> from_query;     // per node: reached from scoring roots
};

HotPathInfo ComputeHotPaths(const CallGraph& g, const HogwildInfo& hw,
                            const std::vector<SrcSpan>& annotation_spans);

/// Graphviz dump of the resolved graph with the HOGWILD / hot-path /
/// scoring-root classification as node colors. Deterministic output.
std::string DumpCallGraphDot(const CallGraph& g, const HogwildInfo& hw,
                             const HotPathInfo& hot);

}  // namespace actor_lint

#endif  // ACTOR_TOOLS_ACTOR_LINT_CALLGRAPH_H_
