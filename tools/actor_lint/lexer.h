#ifndef ACTOR_TOOLS_ACTOR_LINT_LEXER_H_
#define ACTOR_TOOLS_ACTOR_LINT_LEXER_H_

#include <cstddef>
#include <string>
#include <vector>

namespace actor_lint {

/// One comment (line or block), with its delimiters stripped. NOLINT
/// suppressions and `actor-lint:` annotations are parsed from these.
struct Comment {
  int line = 0;           // 1-based line of the comment's first character
  std::size_t begin = 0;  // byte offset of the opening delimiter
  std::string text;       // body without // or /* */
};

/// One #include directive.
struct Include {
  int line = 0;
  std::string path;     // as written, without quotes/brackets
  bool angled = false;  // <...> vs "..."
};

/// Lexed view of one C++ source file. `code` is byte-aligned with
/// `content`: every byte that is part of a comment, string literal,
/// character literal, raw string, `#if 0` region, or preprocessor
/// directive head is replaced with a space (newlines are preserved), so
/// offsets and line numbers in `code` map 1:1 onto the original file.
/// Rule scanners therefore cannot be fooled by banned identifiers inside
/// comments or strings — the grep lints this tool replaces were.
///
/// Preprocessor handling: `#include` paths are extracted, `#if 0` ...
/// `#endif`/`#else` regions are blanked entirely (including nested
/// conditionals), and `#define` *bodies* stay visible in `code` so macros
/// cannot smuggle banned calls past the rules. All other directive text is
/// blanked.
struct LexedFile {
  std::string path;
  std::string content;
  std::string code;
  std::vector<Comment> comments;
  std::vector<Include> includes;
  std::vector<std::size_t> line_offsets;  // byte offset of each line start

  /// 1-based line containing byte `offset`.
  int LineAt(std::size_t offset) const;
};

/// True for [A-Za-z0-9_].
bool IsIdentChar(char c);

/// Lexes `content` (path is carried through for findings).
LexedFile Lex(std::string path, std::string content);

}  // namespace actor_lint

#endif  // ACTOR_TOOLS_ACTOR_LINT_LEXER_H_
