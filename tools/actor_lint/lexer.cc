#include "lexer.h"

#include <algorithm>
#include <cctype>

namespace actor_lint {

namespace {

constexpr std::size_t kNpos = std::string::npos;

bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)); }

/// Cursor over raw directive text that transparently skips backslash-newline
/// continuations, so multi-line directives parse as one logical line.
struct DirCursor {
  const std::string& src;
  std::size_t pos;
  std::size_t end;

  bool AtEnd() {
    Skip();
    return pos >= end;
  }
  char Peek() {
    Skip();
    return pos < end ? src[pos] : '\0';
  }
  void Next() {
    Skip();
    if (pos < end) ++pos;
  }
  void Skip() {
    while (pos + 1 < end && src[pos] == '\\' && src[pos + 1] == '\n') {
      pos += 2;
    }
  }
  void SkipWs() {
    while (!AtEnd() && IsSpace(Peek())) Next();
  }
  std::string ReadIdent() {
    std::string out;
    while (!AtEnd() && IsIdentChar(Peek())) {
      out += Peek();
      Next();
    }
    return out;
  }
};

}  // namespace

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

int LexedFile::LineAt(std::size_t offset) const {
  auto it =
      std::upper_bound(line_offsets.begin(), line_offsets.end(), offset);
  return static_cast<int>(it - line_offsets.begin());
}

LexedFile Lex(std::string path, std::string content) {
  LexedFile f;
  f.path = std::move(path);
  f.content = std::move(content);
  f.code = f.content;
  const std::string& src = f.content;
  std::string& code = f.code;
  const std::size_t n = src.size();

  f.line_offsets.push_back(0);
  for (std::size_t k = 0; k < n; ++k) {
    if (src[k] == '\n') f.line_offsets.push_back(k + 1);
  }

  auto blank = [&code](std::size_t b, std::size_t e) {
    for (std::size_t k = b; k < e && k < code.size(); ++k) {
      if (code[k] != '\n') code[k] = ' ';
    }
  };

  bool line_start = true;     // nothing but whitespace so far on this line
  bool in_directive = false;  // between a line-start '#' and its logical EOL
  std::size_t dir_begin = 0;
  bool disabled = false;  // inside an `#if 0` region
  int disabled_nest = 0;  // conditional nesting within the disabled region

  // Parses the finished directive [dir_begin, dir_end), updates the
  // disabled-region state, records includes, and blanks the directive from
  // `code` (keeping #define bodies visible).
  auto end_directive = [&](std::size_t dir_end) {
    DirCursor cur{src, dir_begin, dir_end};
    cur.Next();  // '#'
    cur.SkipWs();
    const std::string name = cur.ReadIdent();
    if (disabled) {
      if (name == "if" || name == "ifdef" || name == "ifndef") {
        ++disabled_nest;
      } else if (name == "endif") {
        if (disabled_nest == 0) {
          disabled = false;
        } else {
          --disabled_nest;
        }
      } else if ((name == "else" || name == "elif") && disabled_nest == 0) {
        disabled = false;
      }
      blank(dir_begin, dir_end);
      return;
    }
    if (name == "if") {
      cur.SkipWs();
      // Literal `#if 0` (optionally followed by a comment) disables the
      // branch; any other condition is treated as potentially active so
      // both sides of real feature conditionals stay visible to the rules.
      std::string cond;
      while (!cur.AtEnd() && !IsSpace(cur.Peek()) && cur.Peek() != '/') {
        cond += cur.Peek();
        cur.Next();
      }
      cur.SkipWs();
      if (cond == "0" && (cur.AtEnd() || cur.Peek() == '/')) {
        disabled = true;
        disabled_nest = 0;
      }
    } else if (name == "include") {
      cur.SkipWs();
      const char open = cur.Peek();
      if (open == '"' || open == '<') {
        const char close = open == '<' ? '>' : '"';
        cur.Next();
        std::string inc;
        while (!cur.AtEnd() && cur.Peek() != close && cur.Peek() != '\n') {
          inc += cur.Peek();
          cur.Next();
        }
        f.includes.push_back({f.LineAt(dir_begin), inc, open == '<'});
      }
    } else if (name == "define") {
      // Keep the replacement text visible in `code` so banned calls cannot
      // hide inside macros; blank only "#define NAME" (and its parameter
      // list for function-like macros).
      cur.SkipWs();
      cur.ReadIdent();  // macro name
      if (cur.Peek() == '(') {
        while (!cur.AtEnd() && cur.Peek() != ')') cur.Next();
        cur.Next();
      }
      blank(dir_begin, cur.pos);
      return;
    }
    blank(dir_begin, dir_end);
  };

  std::size_t i = 0;
  while (i < n) {
    const char c = src[i];
    if (!in_directive && line_start && c == '#') {
      in_directive = true;
      dir_begin = i;
      line_start = false;
      ++i;
      continue;
    }
    if (c == '\n') {
      if (in_directive) {
        end_directive(i);
        in_directive = false;
      }
      line_start = true;
      ++i;
      continue;
    }
    if (in_directive && c == '\\' && i + 1 < n && src[i + 1] == '\n') {
      i += 2;  // logical directive line continues
      continue;
    }
    if (!IsSpace(c)) line_start = false;

    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t e = i;
      while (e < n && src[e] != '\n') {
        if (src[e] == '\\' && e + 1 < n && src[e + 1] == '\n') {
          e += 2;  // backslash-newline continues a // comment
        } else {
          ++e;
        }
      }
      if (!disabled) {
        f.comments.push_back({f.LineAt(i), i, src.substr(i + 2, e - i - 2)});
      }
      blank(i, e);
      i = e;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t close = src.find("*/", i + 2);
      const std::size_t text_end = close == kNpos ? n : close;
      const std::size_t e = close == kNpos ? n : close + 2;
      if (!disabled) {
        f.comments.push_back(
            {f.LineAt(i), i, src.substr(i + 2, text_end - i - 2)});
      }
      blank(i, e);
      i = e;
      continue;
    }
    if (c == '"') {
      // Raw string literal? Look back for R with an optional encoding
      // prefix (u8R, uR, UR, LR) that is not part of a longer identifier.
      bool raw = false;
      if (i > 0 && src[i - 1] == 'R') {
        std::size_t p = i - 1;
        if (p > 0 && src[p - 1] == '8' && p > 1 && src[p - 2] == 'u') {
          p -= 2;
        } else if (p > 0 && (src[p - 1] == 'u' || src[p - 1] == 'U' ||
                             src[p - 1] == 'L')) {
          p -= 1;
        }
        raw = p == 0 || !IsIdentChar(src[p - 1]);
      }
      if (raw) {
        std::size_t d = i + 1;
        std::string delim;
        while (d < n && src[d] != '(' && delim.size() < 20) delim += src[d++];
        const std::string closer = ")" + delim + "\"";
        const std::size_t close = src.find(closer, d);
        const std::size_t e = close == kNpos ? n : close + closer.size();
        blank(i - 1, e);  // include the R prefix
        i = e;
        continue;
      }
      std::size_t e = i + 1;
      while (e < n && src[e] != '"' && src[e] != '\n') {
        e += src[e] == '\\' && e + 1 < n ? 2 : 1;
      }
      if (e < n && src[e] == '"') ++e;
      blank(i, e);
      i = e;
      continue;
    }
    if (c == '\'') {
      // A quote directly after an identifier/number character is a C++14
      // digit separator (1'000'000), not a character literal.
      if (i > 0 && IsIdentChar(src[i - 1])) {
        ++i;
        continue;
      }
      std::size_t e = i + 1;
      while (e < n && src[e] != '\'' && src[e] != '\n') {
        e += src[e] == '\\' && e + 1 < n ? 2 : 1;
      }
      if (e < n && src[e] == '\'') ++e;
      blank(i, e);
      i = e;
      continue;
    }
    if (disabled && !in_directive && code[i] != '\n') code[i] = ' ';
    ++i;
  }
  if (in_directive) end_directive(n);
  return f;
}

}  // namespace actor_lint
