#ifndef ACTOR_TOOLS_ACTOR_LINT_CFG_H_
#define ACTOR_TOOLS_ACTOR_LINT_CFG_H_

#include <cstddef>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "symbols.h"

namespace actor_lint {

/// One statement span inside a basic block. Offsets index the file's
/// `code` view (byte-aligned with `content`). `scope_end` is the offset of
/// the '}' closing the innermost braced scope the statement lives in (the
/// body's own '}' for top-level statements) — the point where the
/// statement's RAII locals (lock guards, snapshot handles) are destroyed.
/// A dataflow fact gen'd by a guard declared at offset `o` is therefore
/// live exactly on statements overlapping (o, scope_end].
struct CfgStmt {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t scope_end = 0;
};

/// A maximal straight-line run of statements plus its successor edges.
struct BasicBlock {
  std::vector<CfgStmt> stmts;
  std::vector<int> succs;
};

/// Statement-level control-flow graph of one function body. Block
/// `entry` (always 0) is where execution starts; `exit_block` (always 1)
/// is a synthetic empty block every `return` and the final fallthrough
/// feed into. Join/after blocks may be empty.
struct Cfg {
  std::vector<BasicBlock> blocks;
  int entry = 0;
  int exit_block = 1;
};

/// Lowers a function body span ('{' at `body_begin`, matching '}' at
/// `body_end`, as recorded by ExtractSymbols) into basic blocks. Purely
/// lexical, like the rest of the analyzer: understands `{}` scopes,
/// if/else chains, while/for/do loops (the whole `for(...)` header is
/// modeled as one statement in the loop-header block), switch (each
/// case label becomes a block fed from the header, with conservative
/// fallthrough and may-skip edges), return/break/continue, and nested
/// lambdas/braces inside expressions (kept inside their statement's
/// span). Anything it cannot parse degrades to a plain statement —
/// conservative over-approximation, never a crash.
Cfg BuildCfg(const std::string& code, std::size_t body_begin,
             std::size_t body_end);

/// The innermost scope-closing '}' for a position inside the body, as
/// recorded on the containing statement (body_end when no statement
/// contains `offset`).
std::size_t ScopeEndAt(const Cfg& cfg, std::size_t offset,
                       std::size_t body_end);

/// Forward may-dataflow over a Cfg to a fixed point. Facts are small
/// ints interned by the client; IN[b] is the union of OUT over b's
/// predecessors (entry starts empty) and OUT[b] = transfer(b, IN[b]).
/// `transfer` must be monotone and deterministic — it runs repeatedly
/// until nothing changes. Returns the IN set of every block; clients
/// re-walk a block's statements from IN[b] to inspect intra-block
/// program points (the same transfer logic, reporting this time).
std::vector<std::set<int>> ForwardDataflow(
    const Cfg& cfg,
    const std::function<std::set<int>(int, const std::set<int>&)>& transfer);

/// Serialization for the per-file CFG cache that lives beside the symbol
/// cache (same per-file content-hash invalidation). ParseCfgs consumes
/// exactly the lines SerializeCfgs wrote, advancing `pos`; returns false
/// on malformed input (caller treats the cache entry as a miss).
void SerializeCfgs(const std::vector<Cfg>& cfgs, std::string* out);
bool ParseCfgs(const std::string& in, std::size_t* pos,
               std::vector<Cfg>* out);

}  // namespace actor_lint

#endif  // ACTOR_TOOLS_ACTOR_LINT_CFG_H_
