#ifndef ACTOR_TOOLS_ACTOR_LINT_RULES_H_
#define ACTOR_TOOLS_ACTOR_LINT_RULES_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace actor_lint {

// Rule identifiers (the names accepted inside NOLINT(actor-...) lists).
// R1: parallelism must flow through util/thread_pool.
inline constexpr char kRuleThread[] = "actor-thread";
// R2: randomness/clocks must flow through util/rng.h / util/stopwatch.h.
inline constexpr char kRuleRng[] = "actor-rng";
// R3: SIMD kernels must never assume alignment.
inline constexpr char kRuleSimdAligned[] = "actor-simd-aligned";
// R4: HOGWILD regions touch shared rows only via the kernel API.
inline constexpr char kRuleHogwild[] = "actor-hogwild";
// R5a: every src/**/*.h compiles stand-alone.
inline constexpr char kRuleHeaderSelf[] = "actor-header-self";
// R5b: the project include graph is acyclic.
inline constexpr char kRuleIncludeCycle[] = "actor-include-cycle";
// R6: tests/*_test.cc <-> actor_test() registrations agree.
inline constexpr char kRuleTestReg[] = "actor-test-reg";
// R7: every NOLINT(actor-*) must still suppress something.
inline constexpr char kRuleStaleNolint[] = "actor-stale-nolint";
// R8: the serving read path (src/serve/, src/eval/) never mutates
// embedding matrices — snapshots are immutable after publish.
inline constexpr char kRuleServeReadOnly[] = "actor-serve-readonly";
// R9: SnapshotStore::Acquire()/CurrentSnapshot() results stay shared_ptr
// locals — no raw .get() pointers into members/statics or across a
// pool-dispatch boundary.
inline constexpr char kRuleSnapshotLifetime[] = "actor-snapshot-lifetime";
// R10: no mutexes, IO, or heap allocation in functions reachable from a
// HOGWILD region or the QueryEngine scoring path (call-graph derived).
inline constexpr char kRuleHotPath[] = "actor-hot-path-blocking";
// R11: lock acquisition order is globally consistent (no cycle in the
// lock-order graph, held-sets propagated across calls via per-function
// summaries) and no lock is held across a pool dispatch or
// SnapshotStore::Publish.
inline constexpr char kRuleLockOrder[] = "actor-lock-order";
// R12: atomics follow the cataloged memory-order idioms — relaxed-only
// inside HOGWILD regions, release-store/acquire-load pairing for snapshot
// publication (src/serve/), no defaulted seq_cst on R10 hot paths.
inline constexpr char kRuleMemoryOrder[] = "actor-memory-order";
// R13: flow-sensitive deepening of R9 — an acquired snapshot must not
// escape its acquire scope as a raw pointer, even through an intermediate
// local, a return, a lambda capture, or a container insert.
inline constexpr char kRuleSnapshotEscape[] = "actor-snapshot-escape";

/// Bumped whenever rule behavior changes. Stamped (together with the
/// analyzer binary hash) into the symbol/CFG caches so a cache written by
/// an older analyzer invalidates wholesale instead of silently masking
/// findings from newer rules under --changed-only.
inline constexpr int kRuleSetVersion = 3;

/// One analyzer finding. Formats as `file:line: [rule] message`. Findings
/// for mechanical problems (stale NOLINT entries, redundant hogwild-region
/// annotations) carry a fix: replace content[fix_begin, fix_end) with
/// fix_text (empty = pure deletion). Applied by `actor_lint --fix`.
struct Finding {
  Finding() = default;
  Finding(std::string file_, int line_, std::string rule_,
          std::string message_)
      : file(std::move(file_)),
        line(line_),
        rule(std::move(rule_)),
        message(std::move(message_)) {}

  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  bool has_fix = false;
  std::size_t fix_begin = 0;
  std::size_t fix_end = 0;
  std::string fix_text;
};

/// One input file, path repo-relative with forward slashes.
struct FileEntry {
  std::string path;
  std::string content;
};

struct LintConfig {
  /// Repo root on disk; only used by the header self-containedness
  /// compile check (paths in FileEntry are resolved against it).
  std::string root = ".";
  /// Run the R5 stand-alone compile check (shells out to `compiler`).
  bool compile_headers = false;
  std::string compiler = "c++";
  /// Include/define/standard flags for the compile check, normally lifted
  /// from build/compile_commands.json.
  std::vector<std::string> compile_flags;
  /// Optional on-disk cache for header compile results, keyed on the hash
  /// of the header's include closure + flags ("" disables caching).
  std::string cache_path;
  /// Optional on-disk per-file symbol-index cache (also the baseline for
  /// --changed-only). "" disables it.
  std::string symbol_cache_path;
  /// Optional on-disk per-file CFG cache, invalidated by the same
  /// content-hash diff as the symbol cache. "" disables it.
  std::string cfg_cache_path;
  /// Version stamp written into (and required of) the symbol/CFG caches:
  /// main.cc sets "r<kRuleSetVersion>-<binary hash>", so both a rule-set
  /// bump and an analyzer rebuild invalidate stale caches. "" means
  /// unstamped (in-process test configs).
  std::string cache_stamp;
  /// Lint only files whose content hash differs from the symbol cache,
  /// files the last run left findings in, and their call-graph/include
  /// neighborhood. Cross-file rules (include cycles, test registration)
  /// always run. Requires symbol_cache_path to be useful.
  bool changed_only = false;
  /// Worker threads for the R5a cold-start header compiles
  /// (0 = hardware_concurrency).
  int compile_jobs = 0;
};

/// Runs every rule over the file set and returns the surviving findings
/// (NOLINT-suppressed findings are dropped; stale suppressions become
/// findings themselves). Deterministic: sorted by file, line, rule.
std::vector<Finding> LintRepo(const std::vector<FileEntry>& files,
                              const LintConfig& config);

/// Graphviz dump of the interprocedural call graph with the HOGWILD /
/// hot-path classification as node colors (`--dump-callgraph=dot`).
std::string DumpCallGraph(const std::vector<FileEntry>& files);

/// `file:line: [rule] message` lines.
std::string FormatFindingsText(const std::vector<Finding>& findings);

/// JSON array of {file, line, rule, message} objects.
std::string FormatFindingsJson(const std::vector<Finding>& findings);

/// SARIF 2.1.0 log (one run, every rule declared) for GitHub code
/// scanning — CI uploads this on pull requests so findings annotate the
/// diff in place.
std::string FormatFindingsSarif(const std::vector<Finding>& findings);

/// Applies the fixes carried by `findings` (those with has_fix and
/// matching `path`) to `content` and returns the fixed text. Overlapping
/// fix spans are applied first-wins; spans out of bounds are skipped.
std::string ApplyFixes(const std::string& path, const std::string& content,
                       const std::vector<Finding>& findings);

}  // namespace actor_lint

#endif  // ACTOR_TOOLS_ACTOR_LINT_RULES_H_
