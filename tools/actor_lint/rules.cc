#include "rules.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "callgraph.h"
#include "cfg.h"
#include "lexer.h"
#include "symbols.h"

namespace actor_lint {

namespace {

/// Joins `dir` + "/" + `rel` and resolves "." / ".." segments (pure string
/// math — never touches the filesystem, so virtual repos work in tests).
std::string JoinNormalize(const std::string& dir, const std::string& rel) {
  std::vector<std::string> parts;
  auto push = [&parts](const std::string& p) {
    std::size_t b = 0;
    while (b <= p.size()) {
      const std::size_t e = std::min(p.find('/', b), p.size());
      const std::string seg = p.substr(b, e - b);
      if (seg == "..") {
        if (!parts.empty()) parts.pop_back();
      } else if (!seg.empty() && seg != ".") {
        parts.push_back(seg);
      }
      b = e + 1;
    }
  };
  push(dir);
  push(rel);
  std::string out;
  for (const auto& p : parts) {
    if (!out.empty()) out += '/';
    out += p;
  }
  return out;
}

std::string DirName(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == kNpos ? std::string() : path.substr(0, slash);
}

// --- R1: parallelism flows through util/thread_pool ------------------------

void CheckThread(const LexedFile& f, std::vector<Finding>* out) {
  if (StartsWith(f.path, "src/util/thread_pool")) return;
  const std::string& code = f.code;
  std::size_t pos = 0;
  while ((pos = FindToken(code, pos, "std")) != kNpos) {
    const std::size_t after_std = SkipWs(code, pos + 3);
    if (code.compare(after_std, 2, "::") != 0) {
      pos += 3;
      continue;
    }
    const std::size_t name_pos = SkipWs(code, after_std + 2);
    const char* banned = nullptr;
    for (const char* word : {"thread", "jthread", "async"}) {
      if (TokenAt(code, name_pos, word)) {
        banned = word;
        break;
      }
    }
    if (banned == nullptr) {
      pos += 3;
      continue;
    }
    // std::thread::hardware_concurrency() is a pure CPU query, not a
    // parallelism primitive — the one historical exemption of grep L1.
    std::size_t tail = SkipWs(
        code, name_pos + std::char_traits<char>::length(banned));
    bool allowed = false;
    if (code.compare(tail, 2, "::") == 0) {
      tail = SkipWs(code, tail + 2);
      allowed = TokenAt(code, tail, "hardware_concurrency");
    }
    if (!allowed) {
      out->push_back(
          {f.path, f.LineAt(name_pos), kRuleThread,
           std::string("raw std::") + banned +
               " outside util/thread_pool — all parallelism must go "
               "through ThreadPool (ShardedRange/ParallelFor/Submit)"});
    }
    pos = name_pos;
  }
}

// --- R2: randomness/clocks flow through util/rng.h, util/stopwatch.h -------

void CheckRng(const LexedFile& f, std::vector<Finding>* out) {
  if (f.path == "src/util/rng.h" || f.path == "src/util/stopwatch.h") return;
  const std::string& code = f.code;

  // Member access (x.time(), x->time()) and non-std qualification
  // (Foo::time()) are fine; bare and std:: calls hit libc/std.
  auto banned_call = [&code](std::size_t pos) {
    std::size_t j = pos;
    while (j > 0 && IsSpace(code[j - 1])) --j;
    if (j >= 2 && code[j - 1] == ':' && code[j - 2] == ':') {
      std::size_t k = j - 2;
      while (k > 0 && IsSpace(code[k - 1])) --k;
      std::size_t b = k;
      while (b > 0 && IsIdentChar(code[b - 1])) --b;
      return code.compare(b, k - b, "std") == 0 || b == k;  // std:: or ::
    }
    if (j >= 1 && code[j - 1] == '.') return false;
    if (j >= 2 && code[j - 1] == '>' && code[j - 2] == '-') return false;
    return true;
  };
  for (const char* word : {"rand", "srand", "time"}) {
    std::size_t pos = 0;
    while ((pos = FindToken(code, pos, word)) != kNpos) {
      const std::size_t open =
          SkipWs(code, pos + std::char_traits<char>::length(word));
      if (open < code.size() && code[open] == '(' && banned_call(pos)) {
        out->push_back(
            {f.path, f.LineAt(pos), kRuleRng,
             std::string(word) +
                 "() breaks seed-reproducibility — use util/rng.h for "
                 "randomness, util/stopwatch.h for clocks"});
      }
      ++pos;
    }
  }
  std::size_t pos = 0;
  while ((pos = FindToken(code, pos, "random_device")) != kNpos) {
    out->push_back({f.path, f.LineAt(pos), kRuleRng,
                    "std::random_device is non-reproducible — derive seeds "
                    "through util/rng.h (SplitMix64/ShardSeed)"});
    ++pos;
  }
  pos = 0;
  while ((pos = FindToken(code, pos, "system_clock")) != kNpos) {
    std::size_t j = SkipWs(code, pos + 12);
    if (code.compare(j, 2, "::") == 0) {
      j = SkipWs(code, j + 2);
      if (TokenAt(code, j, "now")) {
        out->push_back(
            {f.path, f.LineAt(pos), kRuleRng,
             "std::chrono::system_clock::now() is wall-clock and "
             "non-reproducible — time through util/stopwatch.h "
             "(steady_clock)"});
      }
    }
    ++pos;
  }
}

// --- R3: no aligned SIMD load/store in kernel sources ----------------------

void CheckSimdAligned(const LexedFile& f, std::vector<Finding>* out) {
  if (!StartsWith(f.path, "src/")) return;
  const std::string& code = f.code;
  std::size_t pos = 0;
  while ((pos = code.find("_mm", pos)) != kNpos) {
    if (pos > 0 && IsIdentChar(code[pos - 1])) {
      pos += 3;
      continue;
    }
    std::size_t j = pos + 3;
    while (j < code.size() && std::isdigit(static_cast<unsigned char>(code[j]))) {
      ++j;
    }
    if (j >= code.size() || code[j] != '_') {
      pos += 3;
      continue;
    }
    ++j;
    bool op = false;
    for (const char* name : {"load", "store", "stream"}) {
      const std::size_t len = std::char_traits<char>::length(name);
      if (code.compare(j, len, name) == 0 && j + len < code.size() &&
          code[j + len] == '_') {
        j += len + 1;
        op = true;
        break;
      }
    }
    if (op && code.compare(j, 1, "p") == 0 && j + 1 < code.size() &&
        (code[j + 1] == 's' || code[j + 1] == 'd') &&
        (j + 2 >= code.size() || !IsIdentChar(code[j + 2]))) {
      out->push_back(
          {f.path, f.LineAt(pos), kRuleSimdAligned,
           code.substr(pos, j + 2 - pos) +
               " assumes alignment — kernels must tolerate arbitrary "
               "caller buffers, use the loadu/storeu forms"});
    }
    pos += 3;
  }
}

// --- R4: HOGWILD row discipline (interprocedural) --------------------------

struct Region {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// One manual `// actor-lint: hogwild-region` annotation: the next braced
/// scope after the comment. Still honored as a region (the escape hatch
/// for code the dispatch auto-detection cannot reach), but the call graph
/// now derives most regions itself — an annotation whose span is already
/// covered by the automatic propagation is reported as redundant.
struct Annotation {
  int file = -1;
  int comment_line = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t comment_begin = 0;  // offset of the comment (for --fix)
};

std::vector<Annotation> CollectAnnotations(
    const std::vector<LexedFile>& lexed) {
  std::vector<Annotation> out;
  for (int fi = 0; fi < static_cast<int>(lexed.size()); ++fi) {
    const LexedFile& f = lexed[static_cast<std::size_t>(fi)];
    for (const Comment& c : f.comments) {
      if (c.text.find("actor-lint: hogwild-region") == kNpos) continue;
      const std::size_t open = f.code.find('{', c.begin);
      if (open == kNpos) continue;
      const std::size_t close = MatchForward(f.code, open);
      if (close != kNpos) out.push_back({fi, c.line, open, close, c.begin});
    }
  }
  return out;
}

/// Second half of R4: dirty-row bookkeeping inside a HOGWILD region. A
/// shard may only mark rows in a set it exclusively owns — the
/// `DirtyRowSet*` parameter threaded into the shard helper or a
/// subscripted per-shard slot (`shard_dirty_[shard]`). Writing a plain
/// member set (trailing-underscore receiver, e.g. `dirty_.Mark(u)`) from
/// inside a region is a data race: DirtyRowSet is a plain bitset with no
/// atomics, shared across all running shards.
void CheckDirtyMarks(const LexedFile& f, const std::vector<Region>& regions,
                     std::vector<Finding>* out) {
  const std::string& code = f.code;
  std::set<std::size_t> reported;
  for (const Region& region : regions) {
    for (const char* method : {"Mark", "MarkAll", "Clear"}) {
      std::size_t pos = region.begin;
      while ((pos = FindToken(code, pos, method)) != kNpos &&
             pos < region.end) {
        const std::size_t call_pos = pos;
        ++pos;
        // Must be a call: Method(...)
        const std::size_t open = SkipWs(
            code, call_pos + std::char_traits<char>::length(method));
        if (open >= code.size() || code[open] != '(') continue;
        // Receiver scan: `.` or `->` immediately before the method name.
        long j = static_cast<long>(call_pos) - 1;
        while (j >= 0 && IsSpace(code[static_cast<std::size_t>(j)])) --j;
        if (j >= 1 && code[static_cast<std::size_t>(j)] == '>' &&
            code[static_cast<std::size_t>(j) - 1] == '-') {
          j -= 2;
        } else if (j >= 0 && code[static_cast<std::size_t>(j)] == '.') {
          j -= 1;
        } else {
          continue;  // free function / constructor — not a receiver call
        }
        while (j >= 0 && IsSpace(code[static_cast<std::size_t>(j)])) --j;
        // Subscripted receiver (`shard_dirty_[shard].Mark`) is the
        // per-shard slot idiom — exclusively owned, allowed.
        if (j >= 0 && code[static_cast<std::size_t>(j)] == ']') continue;
        // Plain identifier receiver: flag only the member-naming
        // convention (trailing underscore). Locals and the threaded
        // `DirtyRowSet* dirty` parameter pass.
        const long id_end = j;
        while (j >= 0 && IsIdentChar(code[static_cast<std::size_t>(j)])) {
          --j;
        }
        if (id_end < 0 || j == id_end) continue;
        if (code[static_cast<std::size_t>(id_end)] != '_') continue;
        if (reported.insert(call_pos).second) {
          out->push_back(
              {f.path, f.LineAt(call_pos), kRuleHogwild,
               "member dirty-row set written from inside a HOGWILD region "
               "— mark the shard-owned set instead (the DirtyRowSet* shard "
               "parameter or shard_dirty_[shard]) and merge at the batch "
               "barrier"});
        }
      }
    }
  }
}

void CheckHogwild(const LexedFile& f, const std::vector<Region>& regions,
                  std::vector<Finding>* out) {
  if (regions.empty()) return;
  CheckDirtyMarks(f, regions, out);
  const std::string& code = f.code;
  std::set<std::size_t> reported;
  for (const Region& region : regions) {
    std::size_t pos = region.begin;
    while ((pos = FindToken(code, pos, "row")) != kNpos &&
           pos < region.end) {
      const std::size_t row_pos = pos;
      ++pos;
      // Must be a member call: m.row(...) / m->row(...).
      long j = static_cast<long>(row_pos) - 1;
      while (j >= 0 && IsSpace(code[static_cast<std::size_t>(j)])) --j;
      bool arrow = false;
      if (j >= 1 && code[static_cast<std::size_t>(j)] == '>' &&
          code[static_cast<std::size_t>(j) - 1] == '-') {
        arrow = true;
      } else if (!(j >= 0 && code[static_cast<std::size_t>(j)] == '.')) {
        continue;
      }
      const std::size_t open = SkipWs(code, row_pos + 3);
      if (open >= code.size() || code[open] != '(') continue;
      const std::size_t close = MatchForward(code, open);
      if (close == kNpos) continue;
      const std::size_t after = SkipWs(code, close + 1);
      if (after >= code.size() || code[after] != '[') continue;
      // Direct element access on a shared row. Allowed only when the whole
      // expression sits inside RelaxedLoad(...) / RelaxedStore(...).
      j -= arrow ? 2 : 1;
      while (j >= 0) {
        const char ch = code[static_cast<std::size_t>(j)];
        if (IsIdentChar(ch) || ch == '.' || ch == ':') {
          --j;
        } else if (ch == '>' && j >= 1 &&
                   code[static_cast<std::size_t>(j) - 1] == '-') {
          j -= 2;
        } else if (ch == ']' || ch == ')') {
          const std::size_t m = MatchBackward(
              code, static_cast<std::size_t>(j), ch == ']' ? '[' : '(',
              ch);
          if (m == kNpos) break;
          j = static_cast<long>(m) - 1;
        } else {
          break;
        }
      }
      while (j >= 0 && IsSpace(code[static_cast<std::size_t>(j)])) --j;
      while (j >= 0 && (code[static_cast<std::size_t>(j)] == '&' ||
                        code[static_cast<std::size_t>(j)] == '*')) {
        --j;
      }
      while (j >= 0 && IsSpace(code[static_cast<std::size_t>(j)])) --j;
      bool wrapped = false;
      if (j >= 0 && code[static_cast<std::size_t>(j)] == '(') {
        --j;
        while (j >= 0 && IsSpace(code[static_cast<std::size_t>(j)])) --j;
        const long id_end = j;
        while (j >= 0 && IsIdentChar(code[static_cast<std::size_t>(j)])) {
          --j;
        }
        const std::string callee = code.substr(
            static_cast<std::size_t>(j + 1),
            static_cast<std::size_t>(id_end - j));
        wrapped = callee == "RelaxedLoad" || callee == "RelaxedStore";
      }
      if (!wrapped && reported.insert(row_pos).second) {
        out->push_back(
            {f.path, f.LineAt(row_pos), kRuleHogwild,
             "direct element access to a shared embedding row inside a "
             "HOGWILD region — go through the vec_math kernel API "
             "(FusedGradStep/Axpy/Add/...) or RelaxedLoad/RelaxedStore"});
      }
    }
  }
}

// --- R8: the serving read path never mutates embeddings --------------------

/// True when the `row` token at `row_pos` is a member call (`m.row(` /
/// `m->row(`). Mirrors the receiver scan in CheckHogwild.
bool IsRowMemberCall(const std::string& code, std::size_t row_pos) {
  long j = static_cast<long>(row_pos) - 1;
  while (j >= 0 && IsSpace(code[static_cast<std::size_t>(j)])) --j;
  if (j >= 1 && code[static_cast<std::size_t>(j)] == '>' &&
      code[static_cast<std::size_t>(j) - 1] == '-') {
    return true;
  }
  return j >= 0 && code[static_cast<std::size_t>(j)] == '.';
}

void CheckServeReadOnly(const LexedFile& f, std::vector<Finding>* out) {
  if (!StartsWith(f.path, "src/eval/") && !StartsWith(f.path, "src/serve/")) {
    return;
  }
  const std::string& code = f.code;

  // (a) Member calls to EmbeddingMatrix mutators.
  for (const char* mutator :
       {"InitUniform", "InitZero", "SetRow", "AppendRows"}) {
    std::size_t pos = 0;
    while ((pos = FindToken(code, pos, mutator)) != kNpos) {
      const std::size_t hit = pos;
      pos += std::char_traits<char>::length(mutator);
      if (!IsRowMemberCall(code, hit)) continue;
      const std::size_t open = SkipWs(code, pos);
      if (open >= code.size() || code[open] != '(') continue;
      out->push_back(
          {f.path, f.LineAt(hit), kRuleServeReadOnly,
           std::string("embedding mutation `") + mutator +
               "` in the serving read path — eval/ and serve/ score "
               "immutable ModelSnapshots; mutate before publish instead"});
    }
  }

  // (b) Element writes through row(): `m.row(v)[i] = / += / -= ...`.
  std::size_t pos = 0;
  while ((pos = FindToken(code, pos, "row")) != kNpos) {
    const std::size_t row_pos = pos;
    ++pos;
    if (!IsRowMemberCall(code, row_pos)) continue;
    const std::size_t open = SkipWs(code, row_pos + 3);
    if (open >= code.size() || code[open] != '(') continue;
    const std::size_t close = MatchForward(code, open);
    if (close == kNpos) continue;
    const std::size_t bracket = SkipWs(code, close + 1);
    if (bracket >= code.size() || code[bracket] != '[') continue;
    const std::size_t bracket_close = MatchForward(code, bracket);
    if (bracket_close == kNpos) continue;
    const std::size_t after = SkipWs(code, bracket_close + 1);
    if (after >= code.size()) continue;
    const char c0 = code[after];
    const char c1 = after + 1 < code.size() ? code[after + 1] : '\0';
    const bool assign =
        (c0 == '=' && c1 != '=') ||
        ((c0 == '+' || c0 == '-' || c0 == '*' || c0 == '/') && c1 == '=');
    if (assign) {
      out->push_back(
          {f.path, f.LineAt(row_pos), kRuleServeReadOnly,
           "write through row() in the serving read path — published "
           "snapshots are immutable; copy the matrix before mutating"});
    }
  }

  // (c) row() passed as the mutated argument of a mutating kernel.
  struct MutKernel {
    const char* name;
    int mutated[2];  // 0-based arg indices; -1 = unused slot
  };
  static constexpr MutKernel kKernels[] = {
      {"Axpy", {2, -1}},       {"Scale", {1, -1}},
      {"Add", {1, -1}},        {"Copy", {1, -1}},
      {"Zero", {0, -1}},       {"NormalizeInPlace", {0, -1}},
      {"FusedGradStep", {2, 3}}, {"RelaxedStore", {0, -1}},
  };
  for (const MutKernel& kernel : kKernels) {
    std::size_t kpos = 0;
    while ((kpos = FindToken(code, kpos, kernel.name)) != kNpos) {
      const std::size_t hit = kpos;
      kpos += std::char_traits<char>::length(kernel.name);
      const std::size_t open = SkipWs(code, kpos);
      if (open >= code.size() || code[open] != '(') continue;
      std::vector<std::pair<std::size_t, std::size_t>> args;
      if (!SplitCallArgs(code, open, &args)) continue;
      for (const int idx : kernel.mutated) {
        if (idx < 0 || static_cast<std::size_t>(idx) >= args.size()) {
          continue;
        }
        const std::size_t arg_row =
            FindToken(code, args[static_cast<std::size_t>(idx)].first, "row");
        if (arg_row != kNpos &&
            arg_row < args[static_cast<std::size_t>(idx)].second) {
          out->push_back(
              {f.path, f.LineAt(hit), kRuleServeReadOnly,
               std::string("`") + kernel.name +
                   "` mutates an embedding row in the serving read path — "
                   "eval/ and serve/ may only read published snapshots"});
          break;
        }
      }
    }
  }
}

// --- R9: snapshot lifetime -------------------------------------------------

/// Full argument spans (open, close) of every pool-dispatch call in the
/// file — `snap.get()` inside one is a raw snapshot pointer crossing the
/// dispatch boundary.
std::vector<std::pair<std::size_t, std::size_t>> DispatchCallSpans(
    const std::string& code) {
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  for (const char* dispatch : {"ShardedRange", "ParallelFor", "Submit"}) {
    std::size_t pos = 0;
    while ((pos = FindToken(code, pos, dispatch)) != kNpos) {
      const std::size_t open =
          SkipWs(code, pos + std::char_traits<char>::length(dispatch));
      ++pos;
      if (open >= code.size() || code[open] != '(') continue;
      const std::size_t close = MatchForward(code, open);
      if (close != kNpos) spans.emplace_back(open, close);
    }
  }
  return spans;
}

/// Results of SnapshotStore::Acquire() / CurrentSnapshot() — and of the
/// composite accessors (ShardedSnapshotStore::Acquire,
/// CurrentShardedSnapshot) — may only live as shared_ptr snapshot locals
/// (storing the shared_ptr in a member is fine — that is how QueryEngine
/// pins a snapshot). What must
/// not happen: taking `.get()` on the temporary, storing a raw snapshot
/// pointer into a member (trailing-underscore target) or a static, or
/// letting a raw pointer cross a pool-dispatch boundary — the pointer
/// outlives nothing once the shared_ptr drops.
void CheckSnapshotLifetime(const LexedFile& f, std::vector<Finding>* out) {
  if (!StartsWith(f.path, "src/")) return;
  const std::string& code = f.code;

  std::set<std::string> snap_vars;
  for (const char* acc :
       {"Acquire", "CurrentSnapshot", "CurrentShardedSnapshot"}) {
    std::size_t pos = 0;
    while ((pos = FindToken(code, pos, acc)) != kNpos) {
      const std::size_t at = pos;
      pos += std::char_traits<char>::length(acc);
      const std::size_t open = SkipWs(code, pos);
      if (open >= code.size() || code[open] != '(') continue;
      const std::size_t close = MatchForward(code, open);
      if (close == kNpos) continue;
      const std::size_t after = SkipWs(code, close + 1);
      if (after < code.size() && code[after] == '.' &&
          TokenAt(code, SkipWs(code, after + 1), "get")) {
        out->push_back(
            {f.path, f.LineAt(at), kRuleSnapshotLifetime,
             std::string("raw pointer taken from the ") + acc +
                 "() temporary — the snapshot dies with the expression; "
                 "keep the shared_ptr<const ModelSnapshot> alive instead"});
        continue;
      }
      // Track `var = [store.]Acquire(...)` so later `var.get()` uses can
      // be checked. Walk the receiver chain backwards to the `=`.
      std::size_t j = PrevNonWs(code, at);
      while (j != kNpos) {
        const char c = code[j];
        if (IsIdentChar(c) || c == '.' || c == ':') {
          --j;
          j = j == kNpos ? kNpos : PrevNonWs(code, j + 1);
        } else if (c == '>' && j >= 1 && code[j - 1] == '-') {
          j = PrevNonWs(code, j - 1);
        } else {
          break;
        }
      }
      if (j == kNpos || code[j] != '=') continue;
      if (j >= 1 && (code[j - 1] == '=' || code[j - 1] == '!' ||
                     code[j - 1] == '<' || code[j - 1] == '>')) {
        continue;
      }
      const std::size_t name_end = PrevNonWs(code, j);
      if (name_end == kNpos || !IsIdentChar(code[name_end])) continue;
      std::size_t nb = name_end + 1;
      while (nb > 0 && IsIdentChar(code[nb - 1])) --nb;
      snap_vars.insert(code.substr(nb, name_end + 1 - nb));
    }
  }
  if (snap_vars.empty()) return;

  const auto dispatch_spans = DispatchCallSpans(code);
  std::size_t pos = 0;
  while ((pos = FindToken(code, pos, "get")) != kNpos) {
    const std::size_t at = pos;
    ++pos;
    const std::size_t open = SkipWs(code, at + 3);
    if (open >= code.size() || code[open] != '(') continue;
    // Receiver must be one of the tracked snapshot shared_ptr locals.
    std::size_t j = PrevNonWs(code, at);
    if (j == kNpos) continue;
    if (code[j] == '.') {
      j = PrevNonWs(code, j);
    } else if (j >= 1 && code[j] == '>' && code[j - 1] == '-') {
      j = PrevNonWs(code, j - 1);
    } else {
      continue;
    }
    if (j == kNpos || !IsIdentChar(code[j])) continue;
    std::size_t nb = j + 1;
    while (nb > 0 && IsIdentChar(code[nb - 1])) --nb;
    if (snap_vars.count(code.substr(nb, j + 1 - nb)) == 0) continue;

    // (c) raw pointer crossing a pool-dispatch boundary.
    bool in_dispatch = false;
    for (const auto& [db, de] : dispatch_spans) {
      if (db < at && at < de) {
        in_dispatch = true;
        break;
      }
    }
    if (in_dispatch) {
      out->push_back(
          {f.path, f.LineAt(at), kRuleSnapshotLifetime,
           "raw snapshot pointer crosses a pool-dispatch boundary — "
           "capture the shared_ptr<const ModelSnapshot> (by value) so the "
           "snapshot outlives the task"});
      continue;
    }
    // (a)/(b): stored into a member (trailing-underscore target) or a
    // static-initialized object.
    const std::size_t stmt_begin =
        code.find_last_of(";{}", nb) == kNpos ? 0
                                              : code.find_last_of(";{}", nb);
    std::size_t eq = PrevNonWs(code, nb);
    bool member_store = false;
    if (eq != kNpos && code[eq] == '=' &&
        !(eq >= 1 && (code[eq - 1] == '=' || code[eq - 1] == '!' ||
                      code[eq - 1] == '<' || code[eq - 1] == '>'))) {
      const std::size_t lhs_end = PrevNonWs(code, eq);
      if (lhs_end != kNpos && code[lhs_end] == '_') member_store = true;
    }
    const std::size_t static_pos = FindToken(code, stmt_begin, "static");
    const bool static_store = static_pos != kNpos && static_pos < at;
    if (member_store || static_store) {
      out->push_back(
          {f.path, f.LineAt(at), kRuleSnapshotLifetime,
           std::string("raw snapshot pointer stored into a ") +
               (member_store ? "member" : "static") +
               " — it dangles after the next publish retires the "
               "snapshot; store the shared_ptr<const ModelSnapshot> or "
               "re-Acquire() per request"});
    }
  }
}

// --- R10: no blocking on hot paths -----------------------------------------

/// Bans in one body/region span. Roots (the region/scoring boundary
/// itself) may allocate scratch but must not lock or do IO; everything
/// reachable beneath a root must not lock, do IO, *or* allocate.
void ScanHotSpan(const LexedFile& f, std::size_t begin, std::size_t end,
                 bool allow_alloc, const std::string& why,
                 std::set<std::size_t>* reported,
                 std::vector<Finding>* out) {
  const std::string& code = f.code;
  auto report = [&](std::size_t at, const std::string& what) {
    if (reported->insert(at).second) {
      out->push_back({f.path, f.LineAt(at), kRuleHotPath,
                      what + " " + why +
                          " — hot paths must stay non-blocking and "
                          "allocation-free; hoist this to the dispatch/"
                          "publish boundary (see --dump-callgraph)"});
    }
  };

  // Mutex acquisition.
  for (const char* tok :
       {"lock_guard", "unique_lock", "scoped_lock", "shared_lock",
        "pthread_mutex_lock"}) {
    std::size_t pos = begin;
    while ((pos = FindToken(code, pos, tok)) != kNpos && pos < end) {
      report(pos, std::string("mutex acquisition (") + tok + ")");
      ++pos;
    }
  }
  {
    std::size_t pos = begin;
    while ((pos = FindToken(code, pos, "lock")) != kNpos && pos < end) {
      const std::size_t at = pos;
      ++pos;
      const std::size_t open = SkipWs(code, at + 4);
      if (open >= code.size() || code[open] != '(') continue;
      if (!IsMemberAccess(code, at)) continue;
      report(at, "mutex acquisition (.lock())");
    }
  }

  // Blocking IO.
  for (const char* tok :
       {"cout", "cerr", "clog", "printf", "fprintf", "puts", "fputs",
        "fwrite", "fopen", "fflush", "popen", "system", "getline"}) {
    std::size_t pos = begin;
    while ((pos = FindToken(code, pos, tok)) != kNpos && pos < end) {
      report(pos, std::string("IO (") + tok + ")");
      ++pos;
    }
  }

  if (allow_alloc) return;

  // Heap allocation: new / make_* / malloc family / to_string.
  for (const char* tok :
       {"new", "make_unique", "make_shared", "malloc", "calloc", "realloc",
        "strdup", "to_string"}) {
    std::size_t pos = begin;
    while ((pos = FindToken(code, pos, tok)) != kNpos && pos < end) {
      report(pos, std::string("heap allocation (") + tok + ")");
      ++pos;
    }
  }
  // Growing-container member calls.
  for (const char* tok :
       {"push_back", "emplace_back", "emplace", "resize", "reserve",
        "insert", "append", "assign"}) {
    std::size_t pos = begin;
    while ((pos = FindToken(code, pos, tok)) != kNpos && pos < end) {
      const std::size_t at = pos;
      ++pos;
      const std::size_t open =
          SkipWs(code, at + std::char_traits<char>::length(tok));
      if (open >= code.size() || code[open] != '(') continue;
      if (!IsMemberAccess(code, at)) continue;
      report(at, std::string("heap allocation (") + tok + ")");
    }
  }
  // std:: container / std::string construction by value. References and
  // pointers to containers are reads, not allocations.
  for (const char* tok :
       {"string", "vector", "deque", "list", "map", "multimap", "set",
        "multiset", "unordered_map", "unordered_set", "function"}) {
    std::size_t pos = begin;
    while ((pos = FindToken(code, pos, tok)) != kNpos && pos < end) {
      const std::size_t at = pos;
      pos += std::char_traits<char>::length(tok);
      if (QualifierBefore(code, at) != "std") continue;
      std::size_t j = at + std::char_traits<char>::length(tok);
      j = SkipWs(code, j);
      if (j < code.size() && code[j] == '<') {
        // Match the template argument list (tolerating >> closers).
        int angle = 0;
        std::size_t k = j;
        for (; k < code.size(); ++k) {
          const char c = code[k];
          if (c == '<') ++angle;
          if (c == '>' && code[k - 1] != '-' && --angle == 0) break;
          if (c == ';' || c == '{') break;
        }
        if (k >= code.size() || code[k] != '>') continue;
        j = SkipWs(code, k + 1);
      }
      if (j >= code.size()) continue;
      const char c = code[j];
      if (IsIdentChar(c) || c == '(' || c == '{') {
        report(at, std::string("heap allocation (std::") + tok +
                       " constructed by value)");
      }
    }
  }
}

// --- R11: lock-order consistency (flow-sensitive, interprocedural) ----------

/// One lock name acquired at a site. `scope_end` is where the RAII guard
/// dies (the body end for manual `.lock()` acquisitions).
struct LockSite {
  std::string name;
  std::size_t offset = 0;
  std::size_t scope_end = 0;
};

/// One acquisition/release event in a function body, in source order. An
/// acquisition may carry several sites: `std::scoped_lock(a, b)` locks
/// atomically, so its own locks never order against each other.
struct LockEvent {
  std::size_t offset = 0;
  bool release = false;
  std::string release_name;
  std::vector<int> sites;  // indexes into FnLockInfo::sites
};

struct FnLockInfo {
  std::vector<LockSite> sites;
  std::vector<LockEvent> events;
};

/// Canonical lock spelling: whitespace dropped, leading &/* and `this->`
/// stripped, so `mu_`, `this->mu_` and `&mu_` order against each other.
std::string NormalizeLockName(const std::string& code, std::size_t b,
                              std::size_t e) {
  std::string out;
  for (std::size_t i = b; i < e && i < code.size(); ++i) {
    if (!IsSpace(code[i])) out += code[i];
  }
  while (!out.empty() && (out[0] == '&' || out[0] == '*')) out.erase(0, 1);
  if (StartsWith(out, "this->")) out.erase(0, 6);
  return out;
}

/// Position after an optional template argument list starting at `j`.
std::size_t SkipTemplateArgs(const std::string& code, std::size_t j) {
  if (j >= code.size() || code[j] != '<') return j;
  int depth = 0;
  for (std::size_t k = j; k < code.size(); ++k) {
    const char c = code[k];
    if (c == '<') ++depth;
    if (c == '>' && (k == 0 || code[k - 1] != '-') && --depth == 0) {
      return k + 1;
    }
    if (c == ';' || c == '{') break;
  }
  return j;
}

FnLockInfo CollectLockEvents(const std::string& code, std::size_t begin,
                             std::size_t end, const Cfg& cfg) {
  FnLockInfo info;
  std::vector<std::pair<std::size_t, LockEvent>> staged;
  for (const char* tok :
       {"lock_guard", "unique_lock", "scoped_lock", "shared_lock"}) {
    std::size_t pos = begin;
    while ((pos = FindToken(code, pos, tok)) != kNpos && pos < end) {
      const std::size_t at = pos;
      ++pos;
      std::size_t j =
          SkipWs(code, at + std::char_traits<char>::length(tok));
      j = SkipWs(code, SkipTemplateArgs(code, j));
      // Guard variable, then its constructor args. A use as a plain type
      // (parameter declarations, aliases) has no `name(...)` tail.
      const std::size_t name_b = j;
      while (j < code.size() && IsIdentChar(code[j])) ++j;
      if (j == name_b) continue;
      j = SkipWs(code, j);
      if (j >= code.size() || code[j] != '(') continue;
      std::vector<std::pair<std::size_t, std::size_t>> args;
      if (!SplitCallArgs(code, j, &args) || args.empty()) continue;
      LockEvent ev;
      ev.offset = at;
      const std::size_t scope_end = ScopeEndAt(cfg, at, end);
      const std::size_t take =
          std::string(tok) == "scoped_lock" ? args.size() : 1;
      for (std::size_t a = 0; a < take && a < args.size(); ++a) {
        std::string name =
            NormalizeLockName(code, args[a].first, args[a].second);
        if (name.empty() || name.find("defer_lock") != kNpos ||
            name.find("adopt_lock") != kNpos) {
          continue;
        }
        ev.sites.push_back(static_cast<int>(info.sites.size()));
        info.sites.push_back({std::move(name), at, scope_end});
      }
      if (!ev.sites.empty()) staged.emplace_back(at, std::move(ev));
    }
  }
  // Manual mu.lock()/mu.unlock() — held to the body end unless released.
  for (const char* tok : {"lock", "unlock"}) {
    std::size_t pos = begin;
    while ((pos = FindToken(code, pos, tok)) != kNpos && pos < end) {
      const std::size_t at = pos;
      ++pos;
      const std::size_t open =
          SkipWs(code, at + std::char_traits<char>::length(tok));
      if (open >= code.size() || code[open] != '(') continue;
      std::size_t j = PrevNonWs(code, at);
      if (j == kNpos) continue;
      if (code[j] == '.') {
        j = PrevNonWs(code, j);
      } else if (j >= 1 && code[j] == '>' && code[j - 1] == '-') {
        j = PrevNonWs(code, j - 1);
      } else {
        continue;
      }
      if (j == kNpos || !IsIdentChar(code[j])) continue;
      std::size_t nb = j + 1;
      while (nb > 0 && IsIdentChar(code[nb - 1])) --nb;
      std::string name = code.substr(nb, j + 1 - nb);
      LockEvent ev;
      ev.offset = at;
      if (code[at] == 'u') {  // unlock
        ev.release = true;
        ev.release_name = std::move(name);
      } else {
        ev.sites.push_back(static_cast<int>(info.sites.size()));
        info.sites.push_back({std::move(name), at, end});
      }
      staged.emplace_back(at, std::move(ev));
    }
  }
  std::sort(staged.begin(), staged.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [o, ev] : staged) info.events.push_back(std::move(ev));
  return info;
}

/// R11: lock-sets tracked through the CFG, held-sets propagated across
/// calls via per-function summaries; reports (a) any lock held across a
/// pool dispatch or SnapshotStore::Publish and (b) any cycle in the global
/// lock-order graph.
void CheckLockOrder(const CallGraph& g,
                    const std::vector<std::vector<Cfg>>& cfgs,
                    const std::vector<char>& active,
                    std::vector<Finding>* out) {
  const int nnodes = static_cast<int>(g.nodes().size());
  auto is_dispatch_call = [](const CallSite& c) {
    return c.name == "ShardedRange" || c.name == "ParallelFor" ||
           c.name == "Submit" || c.name == "Publish";
  };

  // Per-node lock events (src/ only — fixtures and bench harnesses may
  // order their locks however they like).
  std::vector<FnLockInfo> fn(static_cast<std::size_t>(nnodes));
  std::vector<char> is_src(static_cast<std::size_t>(nnodes), 0);
  for (int node = 0; node < nnodes; ++node) {
    const std::size_t ni = static_cast<std::size_t>(node);
    if (!StartsWith(g.File(node).path, "src/")) continue;
    is_src[ni] = 1;
    const Symbol& sym = g.Sym(node);
    const Cfg& cfg =
        cfgs[static_cast<std::size_t>(g.FileIndex(node))]
            [static_cast<std::size_t>(g.nodes()[ni].sym)];
    fn[ni] = CollectLockEvents(g.File(node).code, sym.body_begin,
                               sym.body_end, cfg);
  }

  // Per-function summaries, closed transitively: which locks a call into
  // this function may acquire, and whether it may reach a dispatch/publish.
  struct LockSummary {
    std::set<std::string> acquires;
    bool dispatches = false;
  };
  std::vector<LockSummary> summary(static_cast<std::size_t>(nnodes));
  std::vector<std::vector<int>> callees(static_cast<std::size_t>(nnodes));
  for (int node = 0; node < nnodes; ++node) {
    const std::size_t ni = static_cast<std::size_t>(node);
    callees[ni] = g.ResolveAll(g.Sym(node).calls);
    if (!is_src[ni]) continue;
    for (const LockSite& s : fn[ni].sites) summary[ni].acquires.insert(s.name);
    for (const CallSite& c : g.Sym(node).calls) {
      if (is_dispatch_call(c)) summary[ni].dispatches = true;
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (int node = 0; node < nnodes; ++node) {
      const std::size_t ni = static_cast<std::size_t>(node);
      for (const int callee : callees[ni]) {
        const std::size_t ci = static_cast<std::size_t>(callee);
        if (!summary[ni].dispatches && summary[ci].dispatches) {
          summary[ni].dispatches = true;
          changed = true;
        }
        for (const std::string& a : summary[ci].acquires) {
          if (summary[ni].acquires.insert(a).second) changed = true;
        }
      }
    }
  }

  // Flow every function with local acquisitions; collect ordered edges
  // (held -> newly acquired, directly or through a callee summary) and
  // report held-across-dispatch on the way.
  std::map<std::pair<std::string, std::string>, std::pair<std::string, int>>
      edges;  // (from, to) -> representative file:line
  for (int node = 0; node < nnodes; ++node) {
    const std::size_t ni = static_cast<std::size_t>(node);
    if (!is_src[ni] || fn[ni].sites.empty()) continue;
    const LexedFile& f = g.File(node);
    const Symbol& sym = g.Sym(node);
    const Cfg& cfg =
        cfgs[static_cast<std::size_t>(g.FileIndex(node))]
            [static_cast<std::size_t>(g.nodes()[ni].sym)];
    const FnLockInfo& info = fn[ni];
    const bool report_file =
        active[static_cast<std::size_t>(g.FileIndex(node))] != 0;

    auto transfer_stmt = [&](std::set<int> facts, const CfgStmt& st,
                             bool report) {
      // RAII scope exit / loop back-edge kill: a fact is live exactly on
      // statements overlapping (site.offset, site.scope_end].
      for (auto it = facts.begin(); it != facts.end();) {
        const LockSite& s = info.sites[static_cast<std::size_t>(*it)];
        if (st.begin <= s.scope_end && st.end > s.offset) {
          ++it;
        } else {
          it = facts.erase(it);
        }
      }
      // Interleave acquisition/release events and call sites by offset.
      std::size_t ei = 0, ci = 0;
      const auto& evs = info.events;
      const auto& calls = sym.calls;
      while (ei < evs.size() || ci < calls.size()) {
        const bool ev_first =
            ci >= calls.size() ||
            (ei < evs.size() && evs[ei].offset <= calls[ci].offset);
        if (ev_first) {
          const LockEvent& ev = evs[ei++];
          if (ev.offset < st.begin || ev.offset >= st.end) continue;
          if (ev.release) {
            for (auto it = facts.begin(); it != facts.end();) {
              if (info.sites[static_cast<std::size_t>(*it)].name ==
                  ev.release_name) {
                it = facts.erase(it);
              } else {
                ++it;
              }
            }
            continue;
          }
          if (report) {
            for (const int held : facts) {
              const std::string& h =
                  info.sites[static_cast<std::size_t>(held)].name;
              for (const int s : ev.sites) {
                const std::string& l =
                    info.sites[static_cast<std::size_t>(s)].name;
                if (h != l) {
                  edges.emplace(std::make_pair(h, l),
                                std::make_pair(f.path, f.LineAt(ev.offset)));
                }
              }
            }
          }
          for (const int s : ev.sites) facts.insert(s);
        } else {
          const CallSite& c = calls[ci++];
          if (c.offset < st.begin || c.offset >= st.end) continue;
          if (facts.empty()) continue;
          const std::string& h0 =
              info.sites[static_cast<std::size_t>(*facts.begin())].name;
          if (is_dispatch_call(c)) {
            if (report && report_file) {
              out->push_back(
                  {f.path, f.LineAt(c.offset), kRuleLockOrder,
                   "lock '" + h0 + "' held across " + c.name +
                       " — release before dispatching/publishing (workers "
                       "and readers must never wait on a trainer lock)"});
            }
            continue;
          }
          LockSummary combined;
          for (const int callee : g.Resolve(c)) {
            const std::size_t cci = static_cast<std::size_t>(callee);
            if (summary[cci].dispatches) combined.dispatches = true;
            combined.acquires.insert(summary[cci].acquires.begin(),
                                     summary[cci].acquires.end());
          }
          if (!report) continue;
          if (combined.dispatches && report_file) {
            out->push_back(
                {f.path, f.LineAt(c.offset), kRuleLockOrder,
                 "lock '" + h0 + "' held across a call to '" + c.name +
                     "', which reaches a pool dispatch or "
                     "SnapshotStore::Publish — release before the call"});
          }
          for (const int held : facts) {
            const std::string& h =
                info.sites[static_cast<std::size_t>(held)].name;
            for (const std::string& l : combined.acquires) {
              if (h != l) {
                edges.emplace(std::make_pair(h, l),
                              std::make_pair(f.path, f.LineAt(c.offset)));
              }
            }
          }
        }
      }
      return facts;
    };

    const auto ins = ForwardDataflow(
        cfg, [&](int b, const std::set<int>& in) {
          std::set<int> facts = in;
          for (const CfgStmt& st :
               cfg.blocks[static_cast<std::size_t>(b)].stmts) {
            facts = transfer_stmt(std::move(facts), st, false);
          }
          return facts;
        });
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
      std::set<int> facts = ins[b];
      for (const CfgStmt& st : cfg.blocks[b].stmts) {
        facts = transfer_stmt(std::move(facts), st, true);
      }
    }
  }

  // Cycle detection over the global lock-order graph (DFS, one finding per
  // distinct cycle, canonicalized by rotating the smallest name first).
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [e, rep] : edges) adj[e.first].push_back(e.second);
  std::set<std::string> done;
  std::set<std::vector<std::string>> seen_cycles;
  std::vector<std::string> path;
  std::set<std::string> on_path;
  std::function<void(const std::string&)> dfs = [&](const std::string& v) {
    path.push_back(v);
    on_path.insert(v);
    const auto it = adj.find(v);
    if (it != adj.end()) {
      for (const std::string& w : it->second) {
        if (on_path.count(w) != 0) {
          const auto start = std::find(path.begin(), path.end(), w);
          std::vector<std::string> cyc(start, path.end());
          const auto min_it = std::min_element(cyc.begin(), cyc.end());
          std::rotate(cyc.begin(), min_it, cyc.end());
          if (seen_cycles.insert(cyc).second) {
            const auto& rep = edges.at(
                {cyc[0], cyc.size() > 1 ? cyc[1] : cyc[0]});
            std::string order;
            for (const std::string& l : cyc) order += l + " -> ";
            order += cyc[0];
            out->push_back(
                {rep.first, rep.second, kRuleLockOrder,
                 "lock-order cycle: " + order +
                     " — every thread must acquire these locks in one "
                     "global order or two of them can deadlock"});
          }
        } else if (done.count(w) == 0) {
          dfs(w);
        }
      }
    }
    on_path.erase(v);
    path.pop_back();
    done.insert(v);
  };
  for (const auto& [v, tos] : adj) {
    if (done.count(v) == 0) dfs(v);
  }
}

// --- R12: sanctioned atomic memory-order idioms ------------------------------

struct AtomicOp {
  std::size_t offset = 0;
  std::string op;                   // load/store/exchange/fetch_add/...
  std::vector<std::string> orders;  // named orders; empty = defaulted seq_cst
  bool publication = false;  // operates on an atomic<shared_ptr<...>> slot
};

/// Extracts every `memory_order_X` / `memory_order::X` named in the
/// argument list of the call whose '(' sits at `open`.
void ExtractOrders(const std::string& code, std::size_t open,
                   std::size_t close, std::vector<std::string>* orders) {
  std::size_t p = open;
  while ((p = code.find("memory_order", p)) != kNpos && p < close) {
    if (p > 0 && IsIdentChar(code[p - 1])) {
      p += 12;
      continue;
    }
    std::size_t j = p + 12;
    if (code.compare(j, 2, "::") == 0) {
      j += 2;
    } else if (j < code.size() && code[j] == '_') {
      j += 1;
    } else {
      p = j;
      continue;
    }
    std::size_t k = j;
    while (k < code.size() && IsIdentChar(code[k])) ++k;
    if (k > j) orders->push_back(code.substr(j, k - j));
    p = k;
  }
}

std::vector<AtomicOp> CollectAtomicOps(const LexedFile& f) {
  const std::string& code = f.code;
  std::vector<AtomicOp> ops;

  // Declared std::atomic<...> variables — member load()/store() calls on
  // anything else (streams, maps) are not atomics. Publication slots are
  // the atomic<shared_ptr<...>> ones.
  std::set<std::string> atomic_vars;
  std::set<std::string> publication_vars;
  std::size_t pos = 0;
  while ((pos = FindToken(code, pos, "atomic")) != kNpos) {
    const std::size_t at = pos;
    ++pos;
    std::size_t j = at + 6;
    if (j >= code.size() || code[j] != '<') continue;
    const std::size_t after = SkipTemplateArgs(code, j);
    if (after == j) continue;
    const std::string targs = code.substr(j, after - j);
    j = SkipWs(code, after);
    std::size_t nb = j;
    while (j < code.size() && IsIdentChar(code[j])) ++j;
    if (j == nb) continue;
    const std::string name = code.substr(nb, j - nb);
    atomic_vars.insert(name);
    if (targs.find("shared_ptr") != kNpos) publication_vars.insert(name);
  }

  auto receiver_name = [&code](std::size_t at) -> std::string {
    std::size_t j = PrevNonWs(code, at);
    if (j == kNpos) return {};
    if (code[j] == '.') {
      j = PrevNonWs(code, j);
    } else if (j >= 1 && code[j] == '>' && code[j - 1] == '-') {
      j = PrevNonWs(code, j - 1);
    } else {
      return {};
    }
    if (j == kNpos || !IsIdentChar(code[j])) return {};
    std::size_t nb = j + 1;
    while (nb > 0 && IsIdentChar(code[nb - 1])) --nb;
    return code.substr(nb, j + 1 - nb);
  };

  for (const char* op :
       {"load", "store", "exchange", "compare_exchange_weak",
        "compare_exchange_strong", "fetch_add", "fetch_sub", "fetch_and",
        "fetch_or", "fetch_xor", "test_and_set"}) {
    std::size_t p = 0;
    while ((p = FindToken(code, p, op)) != kNpos) {
      const std::size_t at = p;
      ++p;
      const std::size_t open =
          SkipWs(code, at + std::char_traits<char>::length(op));
      if (open >= code.size() || code[open] != '(') continue;
      if (!IsMemberAccess(code, at)) continue;
      const std::size_t close = MatchForward(code, open);
      if (close == kNpos) continue;
      AtomicOp o;
      o.offset = at;
      o.op = op;
      ExtractOrders(code, open, close, &o.orders);
      const std::string recv = receiver_name(at);
      o.publication = publication_vars.count(recv) != 0;
      const bool unambiguous =
          o.op != "load" && o.op != "store" && o.op != "exchange";
      if (!unambiguous) {
        bool is_atomic =
            !o.orders.empty() || atomic_vars.count(recv) != 0;
        if (!is_atomic) {
          // atomic_ref(...).store(...) style — receiver is an expression.
          const std::size_t sb = code.find_last_of(";{}", at);
          const std::size_t ar =
              FindToken(code, sb == kNpos ? 0 : sb, "atomic_ref");
          is_atomic = ar != kNpos && ar < at;
        }
        if (!is_atomic) continue;
      }
      ops.push_back(std::move(o));
    }
  }
  // Free-function API (the atomic<shared_ptr> fallback path).
  for (const char* tok :
       {"atomic_load", "atomic_store", "atomic_exchange",
        "atomic_load_explicit", "atomic_store_explicit",
        "atomic_exchange_explicit"}) {
    std::size_t p = 0;
    while ((p = FindToken(code, p, tok)) != kNpos) {
      const std::size_t at = p;
      ++p;
      const std::size_t open =
          SkipWs(code, at + std::char_traits<char>::length(tok));
      if (open >= code.size() || code[open] != '(') continue;
      if (IsMemberAccess(code, at)) continue;
      const std::size_t close = MatchForward(code, open);
      if (close == kNpos) continue;
      AtomicOp o;
      o.offset = at;
      const std::string t(tok);
      o.op = t.find("load") != kNpos    ? "load"
             : t.find("store") != kNpos ? "store"
                                        : "exchange";
      ExtractOrders(code, open, close, &o.orders);
      for (const std::string& v : publication_vars) {
        if (FindToken(code, open, v.c_str()) < close) {
          o.publication = true;
          break;
        }
      }
      ops.push_back(std::move(o));
    }
  }
  std::sort(ops.begin(), ops.end(),
            [](const AtomicOp& a, const AtomicOp& b) {
              return a.offset < b.offset;
            });
  return ops;
}

/// R12: deviations from the cataloged atomic idioms, each finding naming
/// the intended idiom (docs/static-analysis.md has the full table).
void CheckMemoryOrder(const LexedFile& f, const std::vector<Region>& regions,
                      const std::vector<Region>& hot_spans,
                      std::vector<Finding>* out) {
  if (!StartsWith(f.path, "src/")) return;
  const auto ops = CollectAtomicOps(f);
  if (ops.empty()) return;
  auto covered = [](const std::vector<Region>& rs, std::size_t at) {
    for (const Region& r : rs) {
      if (r.begin <= at && at < r.end) return true;
    }
    return false;
  };
  std::set<std::size_t> reported;
  for (const AtomicOp& op : ops) {
    std::string got = "a defaulted (seq_cst) order";
    if (!op.orders.empty()) {
      got = "memory_order_" + op.orders[0];
      for (std::size_t i = 1; i < op.orders.size(); ++i) {
        got += "/" + op.orders[i];
      }
    }
    if (covered(regions, op.offset)) {
      bool relaxed_only = !op.orders.empty();
      for (const std::string& o : op.orders) {
        if (o != "relaxed") relaxed_only = false;
      }
      if (!relaxed_only && reported.insert(op.offset).second) {
        out->push_back(
            {f.path, f.LineAt(op.offset), kRuleMemoryOrder,
             "atomic " + op.op + " with " + got +
                 " inside a HOGWILD region — the sanctioned idiom is "
                 "relaxed-only (RelaxedLoad/RelaxedStore or "
                 "std::memory_order_relaxed); cross-shard ordering belongs "
                 "to SnapshotStore::Publish at the batch barrier"});
      }
      continue;
    }
    if (op.publication && (op.op == "load" || op.op == "store")) {
      const char* want = op.op == "store" ? "release" : "acquire";
      bool ok = !op.orders.empty();
      for (const std::string& o : op.orders) {
        if (o != want) ok = false;
      }
      if (!ok && reported.insert(op.offset).second) {
        out->push_back(
            {f.path, f.LineAt(op.offset), kRuleMemoryOrder,
             "atomic " + op.op + " with " + got +
                 " on a snapshot publication slot — the sanctioned idiom "
                 "pairs a release-store (std::memory_order_release) with an "
                 "acquire-load (std::memory_order_acquire)"});
      }
      continue;
    }
    if (op.orders.empty() && covered(hot_spans, op.offset) &&
        reported.insert(op.offset).second) {
      out->push_back(
          {f.path, f.LineAt(op.offset), kRuleMemoryOrder,
           "atomic " + op.op +
               " with a defaulted (seq_cst) order on a hot path — name the "
               "memory order explicitly; a seq_cst op costs a full fence "
               "per call (defaulted orders are fine off hot paths)"});
    }
  }
}

// --- R13: snapshot-escape (flow-sensitive deepening of R9) -------------------

struct DispatchSpan {
  std::size_t open = 0;
  std::size_t close = 0;
  bool async = false;  // Submit outlives the call; ShardedRange/ParallelFor
                       // join before returning
};

std::vector<DispatchSpan> NamedDispatchSpans(const std::string& code) {
  std::vector<DispatchSpan> spans;
  for (const char* dispatch : {"ShardedRange", "ParallelFor", "Submit"}) {
    std::size_t pos = 0;
    while ((pos = FindToken(code, pos, dispatch)) != kNpos) {
      const std::size_t open =
          SkipWs(code, pos + std::char_traits<char>::length(dispatch));
      ++pos;
      if (open >= code.size() || code[open] != '(') continue;
      const std::size_t close = MatchForward(code, open);
      if (close != kNpos) {
        spans.push_back({open, close, std::string(dispatch) == "Submit"});
      }
    }
  }
  return spans;
}

/// R13: follows acquired-snapshot values through locals, returns,
/// reference captures and container inserts via a per-function forward
/// dataflow, so a raw pointer escaping through an intermediate variable is
/// still caught. Facts: S:var (shared_ptr from Acquire/CurrentSnapshot),
/// R:var (raw pointer derived from one), C:var (lambda carrying a raw).
/// Direct `.get()` misuse (temporaries, member stores, `.get()` inside a
/// dispatch span) stays R9's territory — R13 only reports the flows R9
/// cannot see, so the two never double-report.
void CheckSnapshotEscape(const LexedFile& f, const FileSymbols& syms,
                         const std::vector<Cfg>& cfgs,
                         std::vector<Finding>* out) {
  if (!StartsWith(f.path, "src/")) return;
  const std::string& code = f.code;
  if (code.find("Acquire") == kNpos &&
      code.find("CurrentSnapshot") == kNpos &&
      code.find("CurrentShardedSnapshot") == kNpos) {
    return;
  }
  const auto dispatch_spans = NamedDispatchSpans(code);
  // Lambda-variable symbols nest inside their enclosing function's span;
  // dedupe findings by code offset so the overlap cannot double-report.
  std::set<std::size_t> reported;

  auto trim = [&code](std::size_t b, std::size_t e) {
    while (b < e && IsSpace(code[b])) ++b;
    while (e > b && (IsSpace(code[e - 1]) || code[e - 1] == ';')) --e;
    return std::make_pair(b, e);
  };
  auto ident_at = [&](std::size_t b, std::size_t e) -> std::string {
    const auto [tb, te] = trim(b, e);
    if (tb >= te) return {};
    for (std::size_t i = tb; i < te; ++i) {
      if (!IsIdentChar(code[i])) return {};
    }
    return code.substr(tb, te - tb);
  };
  // `V.get()` as the whole expression -> V; "" otherwise.
  auto get_receiver = [&](std::size_t b, std::size_t e) -> std::string {
    const auto [tb, te] = trim(b, e);
    std::size_t i = tb;
    const std::size_t nb = i;
    while (i < te && IsIdentChar(code[i])) ++i;
    if (i == nb) return {};
    const std::string var = code.substr(nb, i - nb);
    i = SkipWs(code, i);
    if (i >= te || code[i] != '.') return {};
    i = SkipWs(code, i + 1);
    if (!TokenAt(code, i, "get")) return {};
    i = SkipWs(code, i + 3);
    if (i >= te || code[i] != '(') return {};
    const std::size_t close = MatchForward(code, i);
    if (close == kNpos || SkipWs(code, close + 1) < te) return {};
    return var;
  };
  auto is_acquire_expr = [&](std::size_t b, std::size_t e) {
    for (const char* acc :
         {"Acquire", "CurrentSnapshot", "CurrentShardedSnapshot"}) {
      std::size_t p = b;
      while ((p = FindToken(code, p, acc)) != kNpos && p < e) {
        const std::size_t open =
            SkipWs(code, p + std::char_traits<char>::length(acc));
        if (open < e && code[open] == '(') return true;
        ++p;
      }
    }
    return false;
  };
  auto assign_eq = [&](std::size_t b, std::size_t e) -> std::size_t {
    int depth = 0;
    for (std::size_t i = b; i < e; ++i) {
      const char c = code[i];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') --depth;
      if (c != '=' || depth != 0) continue;
      const char prev = i > b ? code[i - 1] : ' ';
      const char next = i + 1 < e ? code[i + 1] : ' ';
      if (next == '=') {
        ++i;
        continue;
      }
      if (prev == '=' || prev == '!' || prev == '<' || prev == '>' ||
          prev == '+' || prev == '-' || prev == '*' || prev == '/' ||
          prev == '%' || prev == '&' || prev == '|' || prev == '^') {
        continue;
      }
      return i;
    }
    return kNpos;
  };

  for (std::size_t si = 0; si < syms.symbols.size(); ++si) {
    const Symbol& sym = syms.symbols[si];
    if (sym.body_end <= sym.body_begin || si >= cfgs.size()) continue;
    bool has_acc = false;
    for (const char* acc :
         {"Acquire", "CurrentSnapshot", "CurrentShardedSnapshot"}) {
      const std::size_t p = FindToken(code, sym.body_begin, acc);
      if (p != kNpos && p < sym.body_end) {
        has_acc = true;
        break;
      }
    }
    if (!has_acc) continue;
    const Cfg& cfg = cfgs[si];

    std::map<std::string, int> fact_ids;
    std::vector<std::string> fact_names;
    auto fact = [&](char kind, const std::string& var) {
      std::string key(1, kind);
      key += ':';
      key += var;
      const auto it = fact_ids.find(key);
      if (it != fact_ids.end()) return it->second;
      const int id = static_cast<int>(fact_names.size());
      fact_ids.emplace(key, id);
      fact_names.push_back(std::move(key));
      return id;
    };
    auto has = [&](const std::set<int>& facts, char kind,
                   const std::string& var) {
      const auto it = fact_ids.find(std::string(1, kind) + ":" + var);
      return it != fact_ids.end() && facts.count(it->second) != 0;
    };
    auto report = [&](std::size_t at, const std::string& msg) {
      if (reported.insert(at).second) {
        out->push_back({f.path, f.LineAt(at), kRuleSnapshotEscape, msg});
      }
    };

    auto transfer_stmt = [&](std::set<int> facts, const CfgStmt& st,
                             bool reporting) {
      const std::size_t sb = st.begin, se = st.end;
      if (reporting) {
        // Return escape: handing the raw pointer (directly or via .get())
        // to the caller outlives the acquire scope. Returning the
        // shared_ptr itself is the sanctioned idiom.
        const std::size_t rp = FindToken(code, sb, "return");
        if (rp != kNpos && rp < se) {
          const std::string rid = ident_at(rp + 6, se);
          const std::string getter = get_receiver(rp + 6, se);
          if (!rid.empty() && has(facts, 'R', rid)) {
            report(rp, "raw snapshot pointer '" + rid +
                           "' returned to the caller — it dangles once the "
                           "shared_ptr in this scope drops; return the "
                           "shared_ptr<const ModelSnapshot>");
          } else if (!getter.empty() && has(facts, 'S', getter)) {
            report(rp, "returning " + getter +
                           ".get() — the raw pointer outlives the acquire "
                           "scope; return the shared_ptr<const "
                           "ModelSnapshot>");
          }
        }
        // Container-insert escape into a member (or out-param) container.
        for (const char* m :
             {"push_back", "emplace_back", "insert", "emplace"}) {
          std::size_t p = sb;
          while ((p = FindToken(code, p, m)) != kNpos && p < se) {
            const std::size_t at = p;
            ++p;
            const std::size_t open =
                SkipWs(code, at + std::char_traits<char>::length(m));
            if (open >= code.size() || code[open] != '(') continue;
            std::size_t j = PrevNonWs(code, at);
            if (j == kNpos) continue;
            bool arrow = false;
            if (code[j] == '.') {
              j = PrevNonWs(code, j);
            } else if (j >= 1 && code[j] == '>' && code[j - 1] == '-') {
              arrow = true;
              j = PrevNonWs(code, j - 1);
            } else {
              continue;
            }
            if (j == kNpos || !IsIdentChar(code[j])) continue;
            if (!arrow && code[j] != '_') continue;  // local container: fine
            std::vector<std::pair<std::size_t, std::size_t>> args;
            if (!SplitCallArgs(code, open, &args)) continue;
            for (const auto& [ab, ae] : args) {
              const std::string aid = ident_at(ab, ae);
              const std::string getter = get_receiver(ab, ae);
              if ((!aid.empty() && has(facts, 'R', aid)) ||
                  (!getter.empty() && has(facts, 'S', getter))) {
                report(at,
                       "raw snapshot pointer stored into a long-lived "
                       "container — it dangles after the next publish "
                       "retires the snapshot; store the shared_ptr<const "
                       "ModelSnapshot> or re-Acquire() per request");
              }
            }
          }
        }
        // Dispatch-boundary escape for flows R9 cannot see: a raw/carrier
        // local crossing the pool boundary, or a shared_ptr captured by
        // reference into an async Submit task.
        for (const DispatchSpan& d : dispatch_spans) {
          if (d.open < sb || d.close >= se) continue;
          for (const int id : facts) {
            const char kind = fact_names[static_cast<std::size_t>(id)][0];
            const std::string var =
                fact_names[static_cast<std::size_t>(id)].substr(2);
            const std::size_t vp = FindToken(code, d.open, var.c_str());
            if (vp == kNpos || vp >= d.close) continue;
            if (kind == 'R' || kind == 'C') {
              report(vp, "raw snapshot pointer '" + var +
                             "' crosses a pool-dispatch boundary — capture "
                             "the shared_ptr<const ModelSnapshot> by value "
                             "so the snapshot outlives the task");
            } else if (d.async) {
              const std::size_t before = PrevNonWs(code, vp);
              const std::size_t amp = code.find("[&", d.open);
              const bool ref_default =
                  amp != kNpos && amp < d.close && amp < vp &&
                  (code[amp + 2] == ']' || code[amp + 2] == ',');
              if ((before != kNpos && code[before] == '&') || ref_default) {
                report(vp, "snapshot shared_ptr '" + var +
                               "' captured by reference into an async "
                               "Submit task — capture by value so the task "
                               "keeps the snapshot alive");
              }
            }
          }
        }
      }
      // Assignment transfer: strong update on the assigned local.
      const std::size_t eq = assign_eq(sb, se);
      if (eq == kNpos) return facts;
      std::size_t j = eq;
      while (j > sb && IsSpace(code[j - 1])) --j;
      if (j == sb || !IsIdentChar(code[j - 1])) return facts;
      const std::size_t ne = j;
      std::size_t nb = ne;
      while (nb > sb && IsIdentChar(code[nb - 1])) --nb;
      const std::string lhs = code.substr(nb, ne - nb);
      const std::size_t st_tok = FindToken(code, sb, "static");
      const bool is_static = st_tok != kNpos && st_tok < eq;
      const bool is_member = !lhs.empty() && lhs.back() == '_';
      const bool plain = !is_member && !is_static;

      const auto [rb, re] = trim(eq + 1, se);
      const std::string rid = ident_at(rb, re);
      const std::string getter = get_receiver(rb, re);
      char gen = 0;
      if (!rid.empty()) {
        if (has(facts, 'R', rid)) {
          if (plain) {
            gen = 'R';
          } else if (reporting) {
            report(nb, "raw snapshot pointer '" + rid +
                           "' escapes into a " +
                           (is_static ? "static" : "member") +
                           " through an intermediate local — it dangles "
                           "after the next publish; store the "
                           "shared_ptr<const ModelSnapshot> instead");
          }
        } else if (has(facts, 'S', rid)) {
          if (plain) gen = 'S';  // member shared_ptr pin: sanctioned (R9)
        } else if (has(facts, 'C', rid)) {
          if (plain) gen = 'C';
        }
      } else if (!getter.empty()) {
        // Member/static stores of V.get() are R9 findings already.
        if (plain && has(facts, 'S', getter)) gen = 'R';
      } else if (is_acquire_expr(rb, re)) {
        if (plain && FindToken(code, rb, "get") >= re) gen = 'S';
      } else if (rb < re && code[rb] == '[') {
        // Lambda literal: a carrier when it captures a live raw pointer or
        // derives one in an init-capture.
        const std::size_t cap_close = MatchForward(code, rb);
        if (cap_close != kNpos && cap_close < re) {
          bool carrier = false;
          for (const int id : facts) {
            const std::string& key = fact_names[static_cast<std::size_t>(id)];
            if (key[0] != 'R') continue;
            const std::size_t vp =
                FindToken(code, rb, key.substr(2).c_str());
            if (vp != kNpos && vp < cap_close) carrier = true;
          }
          const std::string ig = get_receiver(
              code.find('=', rb) == kNpos ? cap_close
                                          : code.find('=', rb) + 1,
              cap_close);
          if (!ig.empty() && has(facts, 'S', ig)) carrier = true;
          if (carrier && plain) gen = 'C';
        }
      }
      if (plain) {
        for (const char k : {'S', 'R', 'C'}) {
          const auto it = fact_ids.find(std::string(1, k) + ":" + lhs);
          if (it != fact_ids.end()) facts.erase(it->second);
        }
      }
      if (gen != 0) facts.insert(fact(gen, lhs));
      return facts;
    };

    const auto ins = ForwardDataflow(
        cfg, [&](int b, const std::set<int>& in) {
          std::set<int> facts = in;
          for (const CfgStmt& st :
               cfg.blocks[static_cast<std::size_t>(b)].stmts) {
            facts = transfer_stmt(std::move(facts), st, false);
          }
          return facts;
        });
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
      std::set<int> facts = ins[b];
      for (const CfgStmt& st : cfg.blocks[b].stmts) {
        facts = transfer_stmt(std::move(facts), st, true);
      }
    }
  }
}

// --- R5: header hygiene ----------------------------------------------------

using IncludeGraph = std::map<std::string, std::vector<const Include*>>;

/// Resolves `inc` as the build would: against the includer's directory,
/// then against src/ (the one include root the build adds).
std::string ResolveInclude(const std::string& includer,
                           const std::string& inc,
                           const std::set<std::string>& known) {
  for (const std::string& candidate :
       {JoinNormalize(DirName(includer), inc), JoinNormalize("src", inc),
        JoinNormalize("", inc)}) {
    if (known.count(candidate) > 0) return candidate;
  }
  return std::string();
}

void CheckIncludeCycles(const std::vector<LexedFile>& lexed,
                        std::vector<Finding>* out) {
  std::set<std::string> known;
  std::map<std::string, const LexedFile*> by_path;
  for (const LexedFile& f : lexed) {
    known.insert(f.path);
    by_path[f.path] = &f;
  }
  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  std::vector<std::string> stack;
  std::set<std::string> seen_cycles;

  std::function<void(const std::string&)> dfs =
      [&](const std::string& node) {
        color[node] = Color::kGray;
        stack.push_back(node);
        for (const Include& inc : by_path.at(node)->includes) {
          const std::string target =
              ResolveInclude(node, inc.path, known);
          if (target.empty()) continue;
          const Color c = color.count(target) > 0 ? color[target]
                                                  : Color::kWhite;
          if (c == Color::kGray) {
            auto it = std::find(stack.begin(), stack.end(), target);
            std::vector<std::string> cycle(it, stack.end());
            auto min_it = std::min_element(cycle.begin(), cycle.end());
            std::rotate(cycle.begin(), min_it, cycle.end());
            std::string key;
            for (const auto& p : cycle) key += p + " -> ";
            if (seen_cycles.insert(key).second) {
              out->push_back({node, inc.line, kRuleIncludeCycle,
                              "include cycle: " + key + cycle.front()});
            }
          } else if (c == Color::kWhite) {
            dfs(target);
          }
        }
        stack.pop_back();
        color[node] = Color::kBlack;
      };
  for (const LexedFile& f : lexed) {
    if (color.count(f.path) == 0) dfs(f.path);
  }
}

/// Runs `cmd` via the shell, captures combined stdout+stderr, returns the
/// exit status (-1 when the shell could not be spawned).
int RunCommand(const std::string& cmd, std::string* output) {
  output->clear();
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return -1;
  char buf[4096];
  std::size_t got = 0;
  while ((got = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    output->append(buf, got);
  }
  return pclose(pipe);
}

std::string ShellQuote(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

std::string FirstErrorLine(const std::string& output) {
  std::istringstream in(output);
  std::string line, first;
  while (std::getline(in, line)) {
    if (first.empty() && !line.empty()) first = line;
    if (line.find("error") != kNpos) return line;
  }
  return first.empty() ? "compiler failed with no output" : first;
}

void CheckHeaderSelfContained(const std::vector<LexedFile>& lexed,
                              const LintConfig& config,
                              std::vector<Finding>* out) {
  std::set<std::string> known;
  std::map<std::string, const LexedFile*> by_path;
  for (const LexedFile& f : lexed) {
    known.insert(f.path);
    by_path[f.path] = &f;
  }
  std::string flags_joined;
  for (const auto& flag : config.compile_flags) flags_joined += flag + "\n";

  // Hash of a header's transitive repo-include closure + compile flags:
  // unchanged hash => the previous stand-alone compile result still holds.
  auto closure_hash = [&](const std::string& header) {
    std::set<std::string> closure;
    std::vector<std::string> queue{header};
    while (!queue.empty()) {
      const std::string cur = queue.back();
      queue.pop_back();
      if (!closure.insert(cur).second) continue;
      for (const Include& inc : by_path.at(cur)->includes) {
        const std::string target = ResolveInclude(cur, inc.path, known);
        if (!target.empty() && closure.count(target) == 0) {
          queue.push_back(target);
        }
      }
    }
    uint64_t h = Fnv1a(flags_joined, 1469598103934665603ULL);
    for (const std::string& p : closure) {
      h = Fnv1a(p, h);
      h = Fnv1a(by_path.at(p)->content, h);
    }
    return h;
  };

  std::map<std::string, uint64_t> cache;
  if (!config.cache_path.empty()) {
    std::ifstream in(config.cache_path);
    std::string hex, path;
    while (in >> hex >> path) {
      cache[path] = std::strtoull(hex.c_str(), nullptr, 16);
    }
  }

  std::vector<std::pair<std::string, uint64_t>> to_check;
  std::map<std::string, uint64_t> verified;
  for (const LexedFile& f : lexed) {
    if (!StartsWith(f.path, "src/") || !EndsWith(f.path, ".h")) continue;
    const uint64_t h = closure_hash(f.path);
    auto it = cache.find(f.path);
    if (it != cache.end() && it->second == h) {
      verified[f.path] = h;  // cache hit — carry forward
    } else {
      to_check.emplace_back(f.path, h);
    }
  }

  auto compile = [&](const std::vector<std::string>& paths,
                     std::string* output) {
    std::string cmd = ShellQuote(config.compiler);
    for (const auto& flag : config.compile_flags) {
      cmd += " " + ShellQuote(flag);
    }
    cmd += " -fsyntax-only -x c++";
    for (const auto& p : paths) {
      cmd += " " + ShellQuote(config.root + "/" + p);
    }
    return RunCommand(cmd, output);
  };

  if (!to_check.empty()) {
    // Cold path: partition the stale headers into one batch per worker and
    // compile the batches concurrently (one compiler invocation each). A
    // failing batch is re-checked header by header inside its own worker
    // to attribute the error, so a single broken header only serializes
    // its batch, not the whole cold start. Results merge in batch order —
    // deterministic regardless of thread scheduling.
    const int want = config.compile_jobs > 0
                         ? config.compile_jobs
                         : static_cast<int>(
                               std::thread::hardware_concurrency());
    const int jobs = std::max(
        1, std::min(std::max(want, 1),
                    static_cast<int>(to_check.size())));
    std::vector<std::vector<std::pair<std::string, uint64_t>>> batches(
        static_cast<std::size_t>(jobs));
    for (std::size_t i = 0; i < to_check.size(); ++i) {
      batches[i % static_cast<std::size_t>(jobs)].push_back(to_check[i]);
    }
    struct BatchResult {
      std::vector<std::pair<std::string, uint64_t>> ok;
      std::vector<Finding> failed;
    };
    std::vector<BatchResult> results(static_cast<std::size_t>(jobs));
    auto run_batch = [&](std::size_t b) {
      const auto& batch = batches[b];
      std::vector<std::string> paths;
      for (const auto& [p, h] : batch) paths.push_back(p);
      std::string output;
      if (compile(paths, &output) == 0) {
        results[b].ok = batch;
        return;
      }
      for (const auto& [p, h] : batch) {
        if (compile({p}, &output) == 0) {
          results[b].ok.emplace_back(p, h);
        } else {
          results[b].failed.push_back({p, 1, kRuleHeaderSelf,
                                       "header is not self-contained: " +
                                           FirstErrorLine(output)});
        }
      }
    };
    std::vector<std::thread> workers;
    for (std::size_t b = 1; b < static_cast<std::size_t>(jobs); ++b) {
      workers.emplace_back(run_batch, b);
    }
    run_batch(0);
    for (std::thread& w : workers) w.join();
    for (const BatchResult& r : results) {
      for (const auto& [p, h] : r.ok) verified[p] = h;
      for (const Finding& f : r.failed) out->push_back(f);
    }
  }

  if (!config.cache_path.empty()) {
    std::ofstream cache_out(config.cache_path, std::ios::trunc);
    for (const auto& [p, h] : verified) {
      char hex[24];
      std::snprintf(hex, sizeof(hex), "%016llx",
                    static_cast<unsigned long long>(h));
      cache_out << hex << " " << p << "\n";
    }
  }
}

// --- R6: tests <-> CMake registration --------------------------------------

void CheckTestRegistration(const std::vector<FileEntry>& files,
                           std::vector<Finding>* out) {
  const FileEntry* cmake = nullptr;
  std::vector<const FileEntry*> test_files;
  for (const FileEntry& f : files) {
    if (f.path == "tests/CMakeLists.txt") cmake = &f;
    if (StartsWith(f.path, "tests/") && EndsWith(f.path, "_test.cc")) {
      test_files.push_back(&f);
    }
  }
  if (cmake == nullptr && test_files.empty()) return;

  // Parse actor_test(<name> ...) registrations, comment-aware.
  std::map<std::string, int> registered;  // name -> line
  if (cmake != nullptr) {
    std::istringstream in(cmake->content);
    std::string raw;
    int line_no = 0;
    std::string stripped;
    std::vector<std::size_t> line_starts;
    while (std::getline(in, raw)) {
      ++line_no;
      const std::size_t hash = raw.find('#');
      line_starts.push_back(stripped.size());
      stripped += raw.substr(0, hash == kNpos ? raw.size() : hash);
      stripped += '\n';
    }
    std::size_t pos = 0;
    while ((pos = FindToken(stripped, pos, "actor_test")) != kNpos) {
      const std::size_t at = pos;
      pos += 10;
      std::size_t j = SkipWs(stripped, at + 10);
      if (j >= stripped.size() || stripped[j] != '(') continue;
      j = SkipWs(stripped, j + 1);
      std::string name;
      while (j < stripped.size() && !IsSpace(stripped[j]) &&
             stripped[j] != ')') {
        name += stripped[j++];
      }
      if (name.empty()) continue;
      const int line = static_cast<int>(
          std::upper_bound(line_starts.begin(), line_starts.end(), at) -
          line_starts.begin());
      registered.emplace(name, line);
    }
  }

  std::set<std::string> source_names;
  for (const FileEntry* f : test_files) {
    const std::string name =
        f->path.substr(6, f->path.size() - 6 - 3);  // strip tests/ and .cc
    source_names.insert(name);
    if (registered.count(name) == 0) {
      out->push_back({f->path, 1, kRuleTestReg,
                      "test binary is not registered with actor_test() in "
                      "tests/CMakeLists.txt — it would never run in CI"});
    }
  }
  for (const auto& [name, line] : registered) {
    if (source_names.count(name) == 0) {
      out->push_back({"tests/CMakeLists.txt", line, kRuleTestReg,
                      "actor_test(" + name + ") is registered but tests/" +
                          name + ".cc does not exist"});
    }
  }
}

// --- Suppressions ----------------------------------------------------------

struct Suppression {
  std::string file;
  int target_line = 0;
  int comment_line = 0;
  std::string entry;  // "actor-<rule>" or "actor-*"
  bool used = false;
  int lexed_file = -1;            // index into the lexed set (fix synthesis)
  std::size_t comment_begin = 0;  // offset of the // or /* in content
};

void CollectSuppressions(const LexedFile& f, int lexed_file,
                         std::vector<Suppression>* out) {
  for (const Comment& c : f.comments) {
    std::size_t pos = c.text.find("NOLINT");
    if (pos == kNpos) continue;
    std::size_t j = pos + 6;
    bool next_line = false;
    if (c.text.compare(j, 8, "NEXTLINE") == 0) {
      next_line = true;
      j += 8;
    }
    if (j >= c.text.size() || c.text[j] != '(') continue;
    const std::size_t close = c.text.find(')', j);
    if (close == kNpos) continue;
    std::string list = c.text.substr(j + 1, close - j - 1);
    std::size_t b = 0;
    while (b <= list.size()) {
      const std::size_t e = std::min(list.find(',', b), list.size());
      std::string entry = list.substr(b, e - b);
      const std::size_t lead = entry.find_first_not_of(" \t");
      const std::size_t trail = entry.find_last_not_of(" \t");
      entry = lead == kNpos
                  ? std::string()
                  : entry.substr(lead, trail - lead + 1);
      if (StartsWith(entry, "actor-")) {
        out->push_back({f.path, next_line ? c.line + 1 : c.line, c.line,
                        entry, false, lexed_file, c.begin});
      }
      b = e + 1;
    }
  }
}

// --- mechanical fixes (actor_lint --fix) -----------------------------------

struct Fix {
  bool ok = false;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::string text;
};

/// Extent of the comment starting at `comment_begin` in `content`
/// (one past `*/` for block comments, up to the newline for line
/// comments). npos on malformed input.
std::size_t CommentEnd(const std::string& content,
                       std::size_t comment_begin) {
  if (comment_begin + 1 >= content.size()) return kNpos;
  if (content[comment_begin + 1] == '*') {
    const std::size_t close = content.find("*/", comment_begin + 2);
    return close == kNpos ? kNpos : close + 2;
  }
  const std::size_t nl = content.find('\n', comment_begin);
  return nl == kNpos ? content.size() : nl;
}

/// Deletes a whole comment; when the comment sits alone on its line the
/// deletion swallows the line, otherwise just the comment and the spaces
/// before it (a trailing comment).
Fix DeleteCommentFix(const std::string& content, std::size_t comment_begin) {
  const std::size_t end = CommentEnd(content, comment_begin);
  if (end == kNpos) return {};
  std::size_t db = comment_begin, de = end;
  std::size_t ls = comment_begin == 0
                       ? kNpos
                       : content.rfind('\n', comment_begin - 1);
  ls = ls == kNpos ? 0 : ls + 1;
  bool lone = true;
  for (std::size_t i = ls; i < comment_begin; ++i) {
    if (content[i] != ' ' && content[i] != '\t') lone = false;
  }
  std::size_t le = content.find('\n', de);
  le = le == kNpos ? content.size() : le + 1;
  bool line_tail_blank = true;
  for (std::size_t i = de; i + 1 < le; ++i) {
    if (content[i] != ' ' && content[i] != '\t') line_tail_blank = false;
  }
  if (lone && line_tail_blank) {
    db = ls;
    de = le;
  } else {
    while (db > ls &&
           (content[db - 1] == ' ' || content[db - 1] == '\t')) {
      --db;
    }
  }
  return {true, db, de, ""};
}

/// Rebuilds the NOLINT list at `comment_begin` without its stale entries:
/// a pure-deletion fix when nothing survives, a list-rewrite otherwise
/// (non-actor entries like `readability-*` always survive).
Fix MakeNolintFix(const std::string& content, std::size_t comment_begin,
                  const std::set<std::string>& stale) {
  const std::size_t end = CommentEnd(content, comment_begin);
  if (end == kNpos) return {};
  const std::size_t np = content.find("NOLINT", comment_begin);
  if (np == kNpos || np >= end) return {};
  std::size_t j = np + 6;
  if (content.compare(j, 8, "NEXTLINE") == 0) j += 8;
  if (j >= end || content[j] != '(') return {};
  const std::size_t close = content.find(')', j);
  if (close == kNpos || close > end) return {};
  std::vector<std::string> survive;
  std::size_t b = j + 1;
  while (b <= close) {
    const std::size_t e = std::min(content.find(',', b), close);
    std::string entry = content.substr(b, e - b);
    const std::size_t lead = entry.find_first_not_of(" \t");
    const std::size_t trail = entry.find_last_not_of(" \t");
    entry = lead == kNpos ? std::string()
                          : entry.substr(lead, trail - lead + 1);
    if (!entry.empty() && stale.count(entry) == 0) survive.push_back(entry);
    b = e + 1;
  }
  if (survive.empty()) return DeleteCommentFix(content, comment_begin);
  std::string text;
  for (const std::string& s : survive) {
    if (!text.empty()) text += ", ";
    text += s;
  }
  return {true, j + 1, close, text};
}

// --- symbol cache (also the --changed-only baseline) -----------------------

struct SymbolCacheEntry {
  uint64_t hash = 0;
  bool clean = false;  // the previous run left zero findings in this file
  FileSymbols syms;
};

/// The `V <stamp>` cache header. An empty stamp (in-process test configs)
/// normalizes to "-"; a cache written under any other stamp — an older
/// rule set or a different analyzer binary — is discarded wholesale, so
/// --changed-only can never mask findings a newer analyzer would add.
std::string StampLine(const std::string& stamp) {
  return "V " + (stamp.empty() ? "-" : stamp) + "\n";
}

/// Consumes the `V <stamp>` header at `*pos`. False on mismatch.
bool ConsumeStamp(const std::string& content, std::size_t* pos,
                  const std::string& stamp) {
  const std::string want = StampLine(stamp);
  if (content.compare(*pos, want.size(), want) != 0) return false;
  *pos += want.size();
  return true;
}

std::map<std::string, SymbolCacheEntry> LoadSymbolCache(
    const std::string& path, const std::string& stamp) {
  std::map<std::string, SymbolCacheEntry> cache;
  if (path.empty()) return cache;
  std::ifstream in(path, std::ios::binary);
  if (!in) return cache;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();
  std::size_t pos = 0;
  if (!ConsumeStamp(content, &pos, stamp)) return cache;
  while (pos < content.size()) {
    const std::size_t nl = std::min(content.find('\n', pos), content.size());
    const std::string header = content.substr(pos, nl - pos);
    pos = nl == content.size() ? nl : nl + 1;
    std::istringstream hs(header);
    std::string tag, hex, file_path;
    int clean = 0;
    if (!(hs >> tag >> hex >> clean >> file_path) || tag != "F") {
      return {};  // malformed — treat the whole cache as a miss
    }
    SymbolCacheEntry entry;
    entry.hash = std::strtoull(hex.c_str(), nullptr, 16);
    entry.clean = clean != 0;
    if (!ParseSymbols(content, &pos, &entry.syms)) return {};
    cache.emplace(std::move(file_path), std::move(entry));
  }
  return cache;
}

void SaveSymbolCache(const std::string& path, const std::string& stamp,
                     const std::vector<LexedFile>& lexed,
                     const std::vector<FileSymbols>& symbols,
                     const std::vector<uint64_t>& hashes,
                     const std::vector<char>& clean) {
  if (path.empty()) return;
  std::string out = StampLine(stamp);
  for (std::size_t i = 0; i < lexed.size(); ++i) {
    char hex[24];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(hashes[i]));
    out += std::string("F ") + hex + " " + (clean[i] ? "1" : "0") + " " +
           lexed[i].path + "\n";
    SerializeSymbols(symbols[i], &out);
  }
  std::ofstream f(path, std::ios::trunc | std::ios::binary);
  f << out;
}

// --- CFG cache (beside the symbol cache, same invalidation) ----------------

struct CfgCacheEntry {
  uint64_t hash = 0;
  std::vector<Cfg> cfgs;  // one per symbol, in symbol-index order
};

std::map<std::string, CfgCacheEntry> LoadCfgCache(const std::string& path,
                                                  const std::string& stamp) {
  std::map<std::string, CfgCacheEntry> cache;
  if (path.empty()) return cache;
  std::ifstream in(path, std::ios::binary);
  if (!in) return cache;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();
  std::size_t pos = 0;
  if (!ConsumeStamp(content, &pos, stamp)) return cache;
  while (pos < content.size()) {
    const std::size_t nl = std::min(content.find('\n', pos), content.size());
    const std::string header = content.substr(pos, nl - pos);
    pos = nl == content.size() ? nl : nl + 1;
    std::istringstream hs(header);
    std::string tag, hex, file_path;
    if (!(hs >> tag >> hex >> file_path) || tag != "F") return {};
    CfgCacheEntry entry;
    entry.hash = std::strtoull(hex.c_str(), nullptr, 16);
    if (!ParseCfgs(content, &pos, &entry.cfgs)) return {};
    cache.emplace(std::move(file_path), std::move(entry));
  }
  return cache;
}

void SaveCfgCache(const std::string& path, const std::string& stamp,
                  const std::vector<LexedFile>& lexed,
                  const std::vector<std::vector<Cfg>>& cfgs,
                  const std::vector<uint64_t>& hashes) {
  if (path.empty()) return;
  std::string out = StampLine(stamp);
  for (std::size_t i = 0; i < lexed.size(); ++i) {
    char hex[24];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(hashes[i]));
    out += std::string("F ") + hex + " " + lexed[i].path + "\n";
    SerializeCfgs(cfgs[i], &out);
  }
  std::ofstream f(path, std::ios::trunc | std::ios::binary);
  f << out;
}

/// Everything LintRepo derives from the symbol indexes in one pass, shared
/// with DumpCallGraph.
struct RepoAnalysis {
  std::vector<FileSymbols> symbols;
  std::vector<uint64_t> hashes;
  std::vector<char> changed;     // per lexed file: content hash differs
  std::vector<char> prev_clean;  // per lexed file: cached clean flag
  std::vector<Annotation> annotations;
  std::vector<SrcSpan> annotation_spans;
};

RepoAnalysis AnalyzeRepo(const std::vector<LexedFile>& lexed,
                         const std::map<std::string, SymbolCacheEntry>& cache) {
  RepoAnalysis a;
  a.symbols.resize(lexed.size());
  a.hashes.resize(lexed.size());
  a.changed.assign(lexed.size(), 1);
  a.prev_clean.assign(lexed.size(), 0);
  for (std::size_t i = 0; i < lexed.size(); ++i) {
    a.hashes[i] = Fnv1a(lexed[i].content, 1469598103934665603ULL);
    const auto it = cache.find(lexed[i].path);
    if (it != cache.end() && it->second.hash == a.hashes[i]) {
      a.symbols[i] = it->second.syms;
      a.changed[i] = 0;
      a.prev_clean[i] = it->second.clean ? 1 : 0;
    } else {
      a.symbols[i] = ExtractSymbols(lexed[i]);
    }
  }
  a.annotations = CollectAnnotations(lexed);
  for (const Annotation& an : a.annotations) {
    a.annotation_spans.push_back({an.file, an.begin, an.end});
  }
  return a;
}

}  // namespace

std::vector<Finding> LintRepo(const std::vector<FileEntry>& files,
                              const LintConfig& config) {
  std::vector<LexedFile> lexed;
  for (const FileEntry& f : files) {
    if (EndsWith(f.path, ".cc") || EndsWith(f.path, ".cpp") ||
        EndsWith(f.path, ".h")) {
      lexed.push_back(Lex(f.path, f.content));
    }
  }
  const std::size_t n = lexed.size();
  std::map<std::string, std::size_t> index_of;
  for (std::size_t i = 0; i < n; ++i) index_of[lexed[i].path] = i;

  const auto cache =
      LoadSymbolCache(config.symbol_cache_path, config.cache_stamp);
  RepoAnalysis repo = AnalyzeRepo(lexed, cache);
  const CallGraph g = BuildCallGraph(lexed, repo.symbols);
  const HogwildInfo hw = ComputeHogwild(g, repo.annotation_spans);
  const HotPathInfo hot = ComputeHotPaths(g, hw, repo.annotation_spans);

  // Per-function CFGs for the flow-sensitive rules, cached beside the
  // symbol cache under the same content-hash + stamp invalidation.
  std::vector<std::vector<Cfg>> cfgs(n);
  {
    const auto cfg_cache =
        LoadCfgCache(config.cfg_cache_path, config.cache_stamp);
    for (std::size_t i = 0; i < n; ++i) {
      const auto it = cfg_cache.find(lexed[i].path);
      if (it != cfg_cache.end() && it->second.hash == repo.hashes[i] &&
          it->second.cfgs.size() == repo.symbols[i].symbols.size()) {
        cfgs[i] = it->second.cfgs;
      } else {
        cfgs[i].reserve(repo.symbols[i].symbols.size());
        for (const Symbol& sym : repo.symbols[i].symbols) {
          cfgs[i].push_back(
              BuildCfg(lexed[i].code, sym.body_begin, sym.body_end));
        }
      }
    }
    SaveCfgCache(config.cfg_cache_path, config.cache_stamp, lexed, cfgs,
                 repo.hashes);
  }

  // Per-file HOGWILD regions for the R4 row/dirty-mark discipline:
  // annotation spans, auto-detected dispatch spans, and the bodies of every
  // symbol the call graph marks as HOGWILD-reachable.
  std::vector<std::vector<Region>> regions(n);
  for (const Annotation& a : repo.annotations) {
    regions[static_cast<std::size_t>(a.file)].push_back({a.begin, a.end});
  }
  for (const SrcSpan& s : hw.dispatch_spans) {
    regions[static_cast<std::size_t>(s.file)].push_back({s.begin, s.end});
  }
  for (int node = 0; node < static_cast<int>(g.nodes().size()); ++node) {
    if (!hw.hogwild[static_cast<std::size_t>(node)]) continue;
    const Symbol& sym = g.Sym(node);
    regions[static_cast<std::size_t>(g.FileIndex(node))].push_back(
        {sym.body_begin, sym.body_end});
  }
  for (auto& r : regions) {
    std::sort(r.begin(), r.end(), [](const Region& a, const Region& b) {
      return std::tie(a.begin, a.end) < std::tie(b.begin, b.end);
    });
    r.erase(std::unique(r.begin(), r.end(),
                        [](const Region& a, const Region& b) {
                          return a.begin == b.begin && a.end == b.end;
                        }),
            r.end());
  }

  // --changed-only active set: changed files, files the previous run left
  // findings in, their 1-hop call-graph neighbors, and every includer of a
  // changed file (its textual content changed too). Cross-file rules run
  // regardless — this mode must never hide a finding, only skip re-deriving
  // per-file findings for files known clean and untouched.
  std::vector<char> active(n, 1);
  if (config.changed_only) {
    active.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (repo.changed[i] || !repo.prev_clean[i]) active[i] = 1;
    }
    // 1-hop call edges, both directions.
    for (int node = 0; node < static_cast<int>(g.nodes().size()); ++node) {
      const std::size_t fi = static_cast<std::size_t>(g.FileIndex(node));
      for (const int callee : g.ResolveAll(g.Sym(node).calls)) {
        const std::size_t ci = static_cast<std::size_t>(g.FileIndex(callee));
        if (repo.changed[fi]) active[ci] = 1;
        if (repo.changed[ci]) active[fi] = 1;
      }
    }
    // Includers of changed files, transitively.
    std::set<std::string> known;
    for (const LexedFile& f : lexed) known.insert(f.path);
    std::vector<std::vector<std::size_t>> includers(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (const Include& inc : lexed[i].includes) {
        const std::string target = ResolveInclude(lexed[i].path, inc.path,
                                                  known);
        if (!target.empty()) includers[index_of[target]].push_back(i);
      }
    }
    std::vector<std::size_t> queue;
    std::vector<char> seen(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (repo.changed[i]) {
        queue.push_back(i);
        seen[i] = 1;
      }
    }
    while (!queue.empty()) {
      const std::size_t cur = queue.back();
      queue.pop_back();
      active[cur] = 1;
      for (const std::size_t up : includers[cur]) {
        if (!seen[up]) {
          seen[up] = 1;
          queue.push_back(up);
        }
      }
    }
  }

  std::vector<Finding> findings;

  // Redundant manual annotations: the interprocedural propagation (without
  // the annotation seeds) already covers the annotated scope.
  for (const Annotation& a : repo.annotations) {
    const std::size_t fi = static_cast<std::size_t>(a.file);
    if (!active[fi]) continue;
    bool covered = false;
    for (const SrcSpan& s : hw.dispatch_spans) {
      if (s.file == a.file && s.begin <= a.begin && a.end <= s.end) {
        covered = true;
        break;
      }
    }
    for (int node = 0; !covered && node < static_cast<int>(g.nodes().size());
         ++node) {
      if (!hw.hogwild_auto[static_cast<std::size_t>(node)]) continue;
      if (g.FileIndex(node) != a.file) continue;
      const Symbol& sym = g.Sym(node);
      if (sym.body_begin <= a.begin && a.end <= sym.body_end) covered = true;
    }
    if (covered) {
      Finding finding{
          lexed[fi].path, a.comment_line, kRuleHogwild,
          "redundant hogwild-region annotation — the call graph already "
          "derives this region from the ThreadPool dispatch; remove the "
          "comment"};
      const Fix fix = DeleteCommentFix(lexed[fi].content, a.comment_begin);
      if (fix.ok) {
        finding.has_fix = true;
        finding.fix_begin = fix.begin;
        finding.fix_end = fix.end;
        finding.fix_text = fix.text;
      }
      findings.push_back(std::move(finding));
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (!active[i]) continue;
    const LexedFile& f = lexed[i];
    CheckThread(f, &findings);
    CheckRng(f, &findings);
    CheckSimdAligned(f, &findings);
    CheckHogwild(f, regions[i], &findings);
    CheckServeReadOnly(f, &findings);
    CheckSnapshotLifetime(f, &findings);
  }

  // R10: region/scoring boundaries may allocate scratch but not block;
  // everything reachable beneath them must not block or allocate. Roots
  // are scanned first so a nested checked body still reports allocations.
  {
    std::set<int> query_root_set(hot.query_roots.begin(),
                                 hot.query_roots.end());
    std::vector<std::set<std::size_t>> reported(n);
    for (const SrcSpan& s : hw.dispatch_spans) {
      const std::size_t fi = static_cast<std::size_t>(s.file);
      if (!active[fi]) continue;
      ScanHotSpan(lexed[fi], s.begin, s.end, /*allow_alloc=*/true,
                  "inside a HOGWILD dispatch region", &reported[fi],
                  &findings);
    }
    for (const Annotation& a : repo.annotations) {
      const std::size_t fi = static_cast<std::size_t>(a.file);
      if (!active[fi]) continue;
      ScanHotSpan(lexed[fi], a.begin, a.end, /*allow_alloc=*/true,
                  "inside an annotated HOGWILD region", &reported[fi],
                  &findings);
    }
    for (int node = 0; node < static_cast<int>(g.nodes().size()); ++node) {
      const std::size_t ni = static_cast<std::size_t>(node);
      const std::size_t fi = static_cast<std::size_t>(g.FileIndex(node));
      if (!active[fi]) continue;
      const Symbol& sym = g.Sym(node);
      if (hot.root[ni]) {
        const char* why = query_root_set.count(node) > 0
                              ? "in the QueryEngine scoring path"
                              : "in a dispatched HOGWILD shard body";
        ScanHotSpan(lexed[fi], sym.body_begin, sym.body_end,
                    /*allow_alloc=*/true, why, &reported[fi], &findings);
      } else if (hot.checked[ni]) {
        const bool hg = hot.from_hogwild[ni] != 0;
        const bool qy = hot.from_query[ni] != 0;
        const std::string reason =
            std::string("in `") + sym.name + "`, reachable from " +
            (hg && qy ? "a HOGWILD region and the QueryEngine scoring path"
             : hg    ? "a HOGWILD region"
                     : "the QueryEngine scoring path");
        ScanHotSpan(lexed[fi], sym.body_begin, sym.body_end,
                    /*allow_alloc=*/false, reason, &reported[fi], &findings);
      }
    }
  }

  // R11: the lock-order graph is global (a cycle can span files), so the
  // flow runs over every src/ function; per-site findings honor `active`.
  CheckLockOrder(g, cfgs, active, &findings);

  // R12/R13: per-file flow-sensitive rules over the same CFGs.
  {
    std::vector<std::vector<Region>> hot_spans(n);
    for (int node = 0; node < static_cast<int>(g.nodes().size()); ++node) {
      const std::size_t ni = static_cast<std::size_t>(node);
      if (!hot.root[ni] && !hot.checked[ni]) continue;
      const Symbol& sym = g.Sym(node);
      hot_spans[static_cast<std::size_t>(g.FileIndex(node))].push_back(
          {sym.body_begin, sym.body_end});
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      CheckMemoryOrder(lexed[i], regions[i], hot_spans[i], &findings);
      CheckSnapshotEscape(lexed[i], repo.symbols[i], cfgs[i], &findings);
    }
  }

  CheckIncludeCycles(lexed, &findings);
  if (config.compile_headers) {
    CheckHeaderSelfContained(lexed, config, &findings);
  }
  CheckTestRegistration(files, &findings);

  std::vector<Suppression> suppressions;
  for (std::size_t i = 0; i < n; ++i) {
    CollectSuppressions(lexed[i], static_cast<int>(i), &suppressions);
  }
  if (config.changed_only) {
    // Suppressions in skipped files cannot match the findings they exist
    // for — pre-mark them used so they do not read as stale.
    for (Suppression& s : suppressions) {
      const auto it = index_of.find(s.file);
      if (it != index_of.end() && !active[it->second]) s.used = true;
    }
  }
  std::vector<Finding> surviving;
  for (Finding& finding : findings) {
    bool suppressed = false;
    for (Suppression& s : suppressions) {
      if (s.file == finding.file && s.target_line == finding.line &&
          (s.entry == "actor-*" || s.entry == finding.rule)) {
        s.used = true;
        suppressed = true;
      }
    }
    if (!suppressed) surviving.push_back(std::move(finding));
  }
  // Stale suppressions become findings carrying mechanical fixes: one
  // combined list-rewrite per comment (attached to its first stale entry),
  // a whole-comment deletion when nothing would survive.
  std::map<std::pair<std::string, std::size_t>, std::set<std::string>>
      stale_entries;
  for (const Suppression& s : suppressions) {
    if (!s.used) stale_entries[{s.file, s.comment_begin}].insert(s.entry);
  }
  std::set<std::pair<std::string, std::size_t>> fix_emitted;
  for (const Suppression& s : suppressions) {
    if (s.used) continue;
    Finding finding{s.file, s.comment_line, kRuleStaleNolint,
                    "NOLINT(" + s.entry +
                        ") no longer suppresses anything — remove it so "
                        "silenced findings cannot rot"};
    if (s.lexed_file >= 0 &&
        fix_emitted.insert({s.file, s.comment_begin}).second) {
      const Fix fix = MakeNolintFix(
          lexed[static_cast<std::size_t>(s.lexed_file)].content,
          s.comment_begin, stale_entries.at({s.file, s.comment_begin}));
      if (fix.ok) {
        finding.has_fix = true;
        finding.fix_begin = fix.begin;
        finding.fix_end = fix.end;
        finding.fix_text = fix.text;
      }
    }
    surviving.push_back(std::move(finding));
  }

  std::sort(surviving.begin(), surviving.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });

  if (!config.symbol_cache_path.empty()) {
    // A file is clean when this run (or, for skipped files, the previous
    // run) left no finding in it.
    std::vector<char> clean(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      clean[i] = active[i] ? 1 : repo.prev_clean[i];
    }
    for (const Finding& f : surviving) {
      const auto it = index_of.find(f.file);
      if (it != index_of.end()) clean[it->second] = 0;
    }
    SaveSymbolCache(config.symbol_cache_path, config.cache_stamp, lexed,
                    repo.symbols, repo.hashes, clean);
  }
  return surviving;
}

std::string DumpCallGraph(const std::vector<FileEntry>& files) {
  std::vector<LexedFile> lexed;
  for (const FileEntry& f : files) {
    if (EndsWith(f.path, ".cc") || EndsWith(f.path, ".cpp") ||
        EndsWith(f.path, ".h")) {
      lexed.push_back(Lex(f.path, f.content));
    }
  }
  const RepoAnalysis repo = AnalyzeRepo(lexed, {});
  const CallGraph g = BuildCallGraph(lexed, repo.symbols);
  const HogwildInfo hw = ComputeHogwild(g, repo.annotation_spans);
  const HotPathInfo hot = ComputeHotPaths(g, hw, repo.annotation_spans);
  return DumpCallGraphDot(g, hw, hot);
}

std::string FormatFindingsText(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
           f.message + "\n";
  }
  return out;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string FormatFindingsJson(const std::vector<Finding>& findings) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += "  {\"file\": \"" + JsonEscape(f.file) +
           "\", \"line\": " + std::to_string(f.line) + ", \"rule\": \"" +
           JsonEscape(f.rule) + "\", \"message\": \"" +
           JsonEscape(f.message) + "\"}";
    out += i + 1 < findings.size() ? ",\n" : "\n";
  }
  out += "]\n";
  return out;
}

std::string FormatFindingsSarif(const std::vector<Finding>& findings) {
  static const char* kAllRules[] = {
      kRuleThread,        kRuleRng,          kRuleSimdAligned,
      kRuleHogwild,       kRuleHeaderSelf,   kRuleIncludeCycle,
      kRuleTestReg,       kRuleStaleNolint,  kRuleServeReadOnly,
      kRuleSnapshotLifetime, kRuleHotPath,   kRuleLockOrder,
      kRuleMemoryOrder,   kRuleSnapshotEscape};
  std::string out =
      "{\n"
      "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [{\n"
      "    \"tool\": {\"driver\": {\"name\": \"actor-lint\", \"rules\": [";
  for (std::size_t i = 0; i < sizeof(kAllRules) / sizeof(kAllRules[0]);
       ++i) {
    if (i > 0) out += ", ";
    out += std::string("{\"id\": \"") + kAllRules[i] + "\"}";
  }
  out += "]}},\n    \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) out += ",";
    out += "\n      {\"ruleId\": \"" + JsonEscape(f.rule) +
           "\", \"level\": \"error\", \"message\": {\"text\": \"" +
           JsonEscape(f.message) +
           "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \"" +
           JsonEscape(f.file) + "\"}, \"region\": {\"startLine\": " +
           std::to_string(std::max(1, f.line)) + "}}}]}";
  }
  out += "\n    ]\n  }]\n}\n";
  return out;
}

std::string ApplyFixes(const std::string& path, const std::string& content,
                       const std::vector<Finding>& findings) {
  std::vector<const Finding*> fixes;
  for (const Finding& f : findings) {
    if (f.has_fix && f.file == path && f.fix_begin <= f.fix_end &&
        f.fix_end <= content.size()) {
      fixes.push_back(&f);
    }
  }
  std::sort(fixes.begin(), fixes.end(),
            [](const Finding* a, const Finding* b) {
              return std::tie(a->fix_begin, a->fix_end) <
                     std::tie(b->fix_begin, b->fix_end);
            });
  std::string out;
  std::size_t pos = 0;
  for (const Finding* f : fixes) {
    if (f->fix_begin < pos) continue;  // overlapping spans: first wins
    out += content.substr(pos, f->fix_begin - pos);
    out += f->fix_text;
    pos = f->fix_end;
  }
  out += content.substr(pos);
  return out;
}

}  // namespace actor_lint
