#include "rules.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "callgraph.h"
#include "lexer.h"
#include "symbols.h"

namespace actor_lint {

namespace {

/// Joins `dir` + "/" + `rel` and resolves "." / ".." segments (pure string
/// math — never touches the filesystem, so virtual repos work in tests).
std::string JoinNormalize(const std::string& dir, const std::string& rel) {
  std::vector<std::string> parts;
  auto push = [&parts](const std::string& p) {
    std::size_t b = 0;
    while (b <= p.size()) {
      const std::size_t e = std::min(p.find('/', b), p.size());
      const std::string seg = p.substr(b, e - b);
      if (seg == "..") {
        if (!parts.empty()) parts.pop_back();
      } else if (!seg.empty() && seg != ".") {
        parts.push_back(seg);
      }
      b = e + 1;
    }
  };
  push(dir);
  push(rel);
  std::string out;
  for (const auto& p : parts) {
    if (!out.empty()) out += '/';
    out += p;
  }
  return out;
}

std::string DirName(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == kNpos ? std::string() : path.substr(0, slash);
}

// --- R1: parallelism flows through util/thread_pool ------------------------

void CheckThread(const LexedFile& f, std::vector<Finding>* out) {
  if (StartsWith(f.path, "src/util/thread_pool")) return;
  const std::string& code = f.code;
  std::size_t pos = 0;
  while ((pos = FindToken(code, pos, "std")) != kNpos) {
    const std::size_t after_std = SkipWs(code, pos + 3);
    if (code.compare(after_std, 2, "::") != 0) {
      pos += 3;
      continue;
    }
    const std::size_t name_pos = SkipWs(code, after_std + 2);
    const char* banned = nullptr;
    for (const char* word : {"thread", "jthread", "async"}) {
      if (TokenAt(code, name_pos, word)) {
        banned = word;
        break;
      }
    }
    if (banned == nullptr) {
      pos += 3;
      continue;
    }
    // std::thread::hardware_concurrency() is a pure CPU query, not a
    // parallelism primitive — the one historical exemption of grep L1.
    std::size_t tail = SkipWs(
        code, name_pos + std::char_traits<char>::length(banned));
    bool allowed = false;
    if (code.compare(tail, 2, "::") == 0) {
      tail = SkipWs(code, tail + 2);
      allowed = TokenAt(code, tail, "hardware_concurrency");
    }
    if (!allowed) {
      out->push_back(
          {f.path, f.LineAt(name_pos), kRuleThread,
           std::string("raw std::") + banned +
               " outside util/thread_pool — all parallelism must go "
               "through ThreadPool (ShardedRange/ParallelFor/Submit)"});
    }
    pos = name_pos;
  }
}

// --- R2: randomness/clocks flow through util/rng.h, util/stopwatch.h -------

void CheckRng(const LexedFile& f, std::vector<Finding>* out) {
  if (f.path == "src/util/rng.h" || f.path == "src/util/stopwatch.h") return;
  const std::string& code = f.code;

  // Member access (x.time(), x->time()) and non-std qualification
  // (Foo::time()) are fine; bare and std:: calls hit libc/std.
  auto banned_call = [&code](std::size_t pos) {
    std::size_t j = pos;
    while (j > 0 && IsSpace(code[j - 1])) --j;
    if (j >= 2 && code[j - 1] == ':' && code[j - 2] == ':') {
      std::size_t k = j - 2;
      while (k > 0 && IsSpace(code[k - 1])) --k;
      std::size_t b = k;
      while (b > 0 && IsIdentChar(code[b - 1])) --b;
      return code.compare(b, k - b, "std") == 0 || b == k;  // std:: or ::
    }
    if (j >= 1 && code[j - 1] == '.') return false;
    if (j >= 2 && code[j - 1] == '>' && code[j - 2] == '-') return false;
    return true;
  };
  for (const char* word : {"rand", "srand", "time"}) {
    std::size_t pos = 0;
    while ((pos = FindToken(code, pos, word)) != kNpos) {
      const std::size_t open =
          SkipWs(code, pos + std::char_traits<char>::length(word));
      if (open < code.size() && code[open] == '(' && banned_call(pos)) {
        out->push_back(
            {f.path, f.LineAt(pos), kRuleRng,
             std::string(word) +
                 "() breaks seed-reproducibility — use util/rng.h for "
                 "randomness, util/stopwatch.h for clocks"});
      }
      ++pos;
    }
  }
  std::size_t pos = 0;
  while ((pos = FindToken(code, pos, "random_device")) != kNpos) {
    out->push_back({f.path, f.LineAt(pos), kRuleRng,
                    "std::random_device is non-reproducible — derive seeds "
                    "through util/rng.h (SplitMix64/ShardSeed)"});
    ++pos;
  }
  pos = 0;
  while ((pos = FindToken(code, pos, "system_clock")) != kNpos) {
    std::size_t j = SkipWs(code, pos + 12);
    if (code.compare(j, 2, "::") == 0) {
      j = SkipWs(code, j + 2);
      if (TokenAt(code, j, "now")) {
        out->push_back(
            {f.path, f.LineAt(pos), kRuleRng,
             "std::chrono::system_clock::now() is wall-clock and "
             "non-reproducible — time through util/stopwatch.h "
             "(steady_clock)"});
      }
    }
    ++pos;
  }
}

// --- R3: no aligned SIMD load/store in kernel sources ----------------------

void CheckSimdAligned(const LexedFile& f, std::vector<Finding>* out) {
  if (!StartsWith(f.path, "src/")) return;
  const std::string& code = f.code;
  std::size_t pos = 0;
  while ((pos = code.find("_mm", pos)) != kNpos) {
    if (pos > 0 && IsIdentChar(code[pos - 1])) {
      pos += 3;
      continue;
    }
    std::size_t j = pos + 3;
    while (j < code.size() && std::isdigit(static_cast<unsigned char>(code[j]))) {
      ++j;
    }
    if (j >= code.size() || code[j] != '_') {
      pos += 3;
      continue;
    }
    ++j;
    bool op = false;
    for (const char* name : {"load", "store", "stream"}) {
      const std::size_t len = std::char_traits<char>::length(name);
      if (code.compare(j, len, name) == 0 && j + len < code.size() &&
          code[j + len] == '_') {
        j += len + 1;
        op = true;
        break;
      }
    }
    if (op && code.compare(j, 1, "p") == 0 && j + 1 < code.size() &&
        (code[j + 1] == 's' || code[j + 1] == 'd') &&
        (j + 2 >= code.size() || !IsIdentChar(code[j + 2]))) {
      out->push_back(
          {f.path, f.LineAt(pos), kRuleSimdAligned,
           code.substr(pos, j + 2 - pos) +
               " assumes alignment — kernels must tolerate arbitrary "
               "caller buffers, use the loadu/storeu forms"});
    }
    pos += 3;
  }
}

// --- R4: HOGWILD row discipline (interprocedural) --------------------------

struct Region {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// One manual `// actor-lint: hogwild-region` annotation: the next braced
/// scope after the comment. Still honored as a region (the escape hatch
/// for code the dispatch auto-detection cannot reach), but the call graph
/// now derives most regions itself — an annotation whose span is already
/// covered by the automatic propagation is reported as redundant.
struct Annotation {
  int file = -1;
  int comment_line = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
};

std::vector<Annotation> CollectAnnotations(
    const std::vector<LexedFile>& lexed) {
  std::vector<Annotation> out;
  for (int fi = 0; fi < static_cast<int>(lexed.size()); ++fi) {
    const LexedFile& f = lexed[static_cast<std::size_t>(fi)];
    for (const Comment& c : f.comments) {
      if (c.text.find("actor-lint: hogwild-region") == kNpos) continue;
      const std::size_t open = f.code.find('{', c.begin);
      if (open == kNpos) continue;
      const std::size_t close = MatchForward(f.code, open);
      if (close != kNpos) out.push_back({fi, c.line, open, close});
    }
  }
  return out;
}

/// Second half of R4: dirty-row bookkeeping inside a HOGWILD region. A
/// shard may only mark rows in a set it exclusively owns — the
/// `DirtyRowSet*` parameter threaded into the shard helper or a
/// subscripted per-shard slot (`shard_dirty_[shard]`). Writing a plain
/// member set (trailing-underscore receiver, e.g. `dirty_.Mark(u)`) from
/// inside a region is a data race: DirtyRowSet is a plain bitset with no
/// atomics, shared across all running shards.
void CheckDirtyMarks(const LexedFile& f, const std::vector<Region>& regions,
                     std::vector<Finding>* out) {
  const std::string& code = f.code;
  std::set<std::size_t> reported;
  for (const Region& region : regions) {
    for (const char* method : {"Mark", "MarkAll", "Clear"}) {
      std::size_t pos = region.begin;
      while ((pos = FindToken(code, pos, method)) != kNpos &&
             pos < region.end) {
        const std::size_t call_pos = pos;
        ++pos;
        // Must be a call: Method(...)
        const std::size_t open = SkipWs(
            code, call_pos + std::char_traits<char>::length(method));
        if (open >= code.size() || code[open] != '(') continue;
        // Receiver scan: `.` or `->` immediately before the method name.
        long j = static_cast<long>(call_pos) - 1;
        while (j >= 0 && IsSpace(code[static_cast<std::size_t>(j)])) --j;
        if (j >= 1 && code[static_cast<std::size_t>(j)] == '>' &&
            code[static_cast<std::size_t>(j) - 1] == '-') {
          j -= 2;
        } else if (j >= 0 && code[static_cast<std::size_t>(j)] == '.') {
          j -= 1;
        } else {
          continue;  // free function / constructor — not a receiver call
        }
        while (j >= 0 && IsSpace(code[static_cast<std::size_t>(j)])) --j;
        // Subscripted receiver (`shard_dirty_[shard].Mark`) is the
        // per-shard slot idiom — exclusively owned, allowed.
        if (j >= 0 && code[static_cast<std::size_t>(j)] == ']') continue;
        // Plain identifier receiver: flag only the member-naming
        // convention (trailing underscore). Locals and the threaded
        // `DirtyRowSet* dirty` parameter pass.
        const long id_end = j;
        while (j >= 0 && IsIdentChar(code[static_cast<std::size_t>(j)])) {
          --j;
        }
        if (id_end < 0 || j == id_end) continue;
        if (code[static_cast<std::size_t>(id_end)] != '_') continue;
        if (reported.insert(call_pos).second) {
          out->push_back(
              {f.path, f.LineAt(call_pos), kRuleHogwild,
               "member dirty-row set written from inside a HOGWILD region "
               "— mark the shard-owned set instead (the DirtyRowSet* shard "
               "parameter or shard_dirty_[shard]) and merge at the batch "
               "barrier"});
        }
      }
    }
  }
}

void CheckHogwild(const LexedFile& f, const std::vector<Region>& regions,
                  std::vector<Finding>* out) {
  if (regions.empty()) return;
  CheckDirtyMarks(f, regions, out);
  const std::string& code = f.code;
  std::set<std::size_t> reported;
  for (const Region& region : regions) {
    std::size_t pos = region.begin;
    while ((pos = FindToken(code, pos, "row")) != kNpos &&
           pos < region.end) {
      const std::size_t row_pos = pos;
      ++pos;
      // Must be a member call: m.row(...) / m->row(...).
      long j = static_cast<long>(row_pos) - 1;
      while (j >= 0 && IsSpace(code[static_cast<std::size_t>(j)])) --j;
      bool arrow = false;
      if (j >= 1 && code[static_cast<std::size_t>(j)] == '>' &&
          code[static_cast<std::size_t>(j) - 1] == '-') {
        arrow = true;
      } else if (!(j >= 0 && code[static_cast<std::size_t>(j)] == '.')) {
        continue;
      }
      const std::size_t open = SkipWs(code, row_pos + 3);
      if (open >= code.size() || code[open] != '(') continue;
      const std::size_t close = MatchForward(code, open);
      if (close == kNpos) continue;
      const std::size_t after = SkipWs(code, close + 1);
      if (after >= code.size() || code[after] != '[') continue;
      // Direct element access on a shared row. Allowed only when the whole
      // expression sits inside RelaxedLoad(...) / RelaxedStore(...).
      j -= arrow ? 2 : 1;
      while (j >= 0) {
        const char ch = code[static_cast<std::size_t>(j)];
        if (IsIdentChar(ch) || ch == '.' || ch == ':') {
          --j;
        } else if (ch == '>' && j >= 1 &&
                   code[static_cast<std::size_t>(j) - 1] == '-') {
          j -= 2;
        } else if (ch == ']' || ch == ')') {
          const std::size_t m = MatchBackward(
              code, static_cast<std::size_t>(j), ch == ']' ? '[' : '(',
              ch);
          if (m == kNpos) break;
          j = static_cast<long>(m) - 1;
        } else {
          break;
        }
      }
      while (j >= 0 && IsSpace(code[static_cast<std::size_t>(j)])) --j;
      while (j >= 0 && (code[static_cast<std::size_t>(j)] == '&' ||
                        code[static_cast<std::size_t>(j)] == '*')) {
        --j;
      }
      while (j >= 0 && IsSpace(code[static_cast<std::size_t>(j)])) --j;
      bool wrapped = false;
      if (j >= 0 && code[static_cast<std::size_t>(j)] == '(') {
        --j;
        while (j >= 0 && IsSpace(code[static_cast<std::size_t>(j)])) --j;
        const long id_end = j;
        while (j >= 0 && IsIdentChar(code[static_cast<std::size_t>(j)])) {
          --j;
        }
        const std::string callee = code.substr(
            static_cast<std::size_t>(j + 1),
            static_cast<std::size_t>(id_end - j));
        wrapped = callee == "RelaxedLoad" || callee == "RelaxedStore";
      }
      if (!wrapped && reported.insert(row_pos).second) {
        out->push_back(
            {f.path, f.LineAt(row_pos), kRuleHogwild,
             "direct element access to a shared embedding row inside a "
             "HOGWILD region — go through the vec_math kernel API "
             "(FusedGradStep/Axpy/Add/...) or RelaxedLoad/RelaxedStore"});
      }
    }
  }
}

// --- R8: the serving read path never mutates embeddings --------------------

/// True when the `row` token at `row_pos` is a member call (`m.row(` /
/// `m->row(`). Mirrors the receiver scan in CheckHogwild.
bool IsRowMemberCall(const std::string& code, std::size_t row_pos) {
  long j = static_cast<long>(row_pos) - 1;
  while (j >= 0 && IsSpace(code[static_cast<std::size_t>(j)])) --j;
  if (j >= 1 && code[static_cast<std::size_t>(j)] == '>' &&
      code[static_cast<std::size_t>(j) - 1] == '-') {
    return true;
  }
  return j >= 0 && code[static_cast<std::size_t>(j)] == '.';
}

void CheckServeReadOnly(const LexedFile& f, std::vector<Finding>* out) {
  if (!StartsWith(f.path, "src/eval/") && !StartsWith(f.path, "src/serve/")) {
    return;
  }
  const std::string& code = f.code;

  // (a) Member calls to EmbeddingMatrix mutators.
  for (const char* mutator :
       {"InitUniform", "InitZero", "SetRow", "AppendRows"}) {
    std::size_t pos = 0;
    while ((pos = FindToken(code, pos, mutator)) != kNpos) {
      const std::size_t hit = pos;
      pos += std::char_traits<char>::length(mutator);
      if (!IsRowMemberCall(code, hit)) continue;
      const std::size_t open = SkipWs(code, pos);
      if (open >= code.size() || code[open] != '(') continue;
      out->push_back(
          {f.path, f.LineAt(hit), kRuleServeReadOnly,
           std::string("embedding mutation `") + mutator +
               "` in the serving read path — eval/ and serve/ score "
               "immutable ModelSnapshots; mutate before publish instead"});
    }
  }

  // (b) Element writes through row(): `m.row(v)[i] = / += / -= ...`.
  std::size_t pos = 0;
  while ((pos = FindToken(code, pos, "row")) != kNpos) {
    const std::size_t row_pos = pos;
    ++pos;
    if (!IsRowMemberCall(code, row_pos)) continue;
    const std::size_t open = SkipWs(code, row_pos + 3);
    if (open >= code.size() || code[open] != '(') continue;
    const std::size_t close = MatchForward(code, open);
    if (close == kNpos) continue;
    const std::size_t bracket = SkipWs(code, close + 1);
    if (bracket >= code.size() || code[bracket] != '[') continue;
    const std::size_t bracket_close = MatchForward(code, bracket);
    if (bracket_close == kNpos) continue;
    const std::size_t after = SkipWs(code, bracket_close + 1);
    if (after >= code.size()) continue;
    const char c0 = code[after];
    const char c1 = after + 1 < code.size() ? code[after + 1] : '\0';
    const bool assign =
        (c0 == '=' && c1 != '=') ||
        ((c0 == '+' || c0 == '-' || c0 == '*' || c0 == '/') && c1 == '=');
    if (assign) {
      out->push_back(
          {f.path, f.LineAt(row_pos), kRuleServeReadOnly,
           "write through row() in the serving read path — published "
           "snapshots are immutable; copy the matrix before mutating"});
    }
  }

  // (c) row() passed as the mutated argument of a mutating kernel.
  struct MutKernel {
    const char* name;
    int mutated[2];  // 0-based arg indices; -1 = unused slot
  };
  static constexpr MutKernel kKernels[] = {
      {"Axpy", {2, -1}},       {"Scale", {1, -1}},
      {"Add", {1, -1}},        {"Copy", {1, -1}},
      {"Zero", {0, -1}},       {"NormalizeInPlace", {0, -1}},
      {"FusedGradStep", {2, 3}}, {"RelaxedStore", {0, -1}},
  };
  for (const MutKernel& kernel : kKernels) {
    std::size_t kpos = 0;
    while ((kpos = FindToken(code, kpos, kernel.name)) != kNpos) {
      const std::size_t hit = kpos;
      kpos += std::char_traits<char>::length(kernel.name);
      const std::size_t open = SkipWs(code, kpos);
      if (open >= code.size() || code[open] != '(') continue;
      std::vector<std::pair<std::size_t, std::size_t>> args;
      if (!SplitCallArgs(code, open, &args)) continue;
      for (const int idx : kernel.mutated) {
        if (idx < 0 || static_cast<std::size_t>(idx) >= args.size()) {
          continue;
        }
        const std::size_t arg_row =
            FindToken(code, args[static_cast<std::size_t>(idx)].first, "row");
        if (arg_row != kNpos &&
            arg_row < args[static_cast<std::size_t>(idx)].second) {
          out->push_back(
              {f.path, f.LineAt(hit), kRuleServeReadOnly,
               std::string("`") + kernel.name +
                   "` mutates an embedding row in the serving read path — "
                   "eval/ and serve/ may only read published snapshots"});
          break;
        }
      }
    }
  }
}

// --- R9: snapshot lifetime -------------------------------------------------

/// Full argument spans (open, close) of every pool-dispatch call in the
/// file — `snap.get()` inside one is a raw snapshot pointer crossing the
/// dispatch boundary.
std::vector<std::pair<std::size_t, std::size_t>> DispatchCallSpans(
    const std::string& code) {
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  for (const char* dispatch : {"ShardedRange", "ParallelFor", "Submit"}) {
    std::size_t pos = 0;
    while ((pos = FindToken(code, pos, dispatch)) != kNpos) {
      const std::size_t open =
          SkipWs(code, pos + std::char_traits<char>::length(dispatch));
      ++pos;
      if (open >= code.size() || code[open] != '(') continue;
      const std::size_t close = MatchForward(code, open);
      if (close != kNpos) spans.emplace_back(open, close);
    }
  }
  return spans;
}

/// Results of SnapshotStore::Acquire() / CurrentSnapshot() may only live
/// as shared_ptr<const ModelSnapshot> locals (storing the shared_ptr in a
/// member is fine — that is how QueryEngine pins a snapshot). What must
/// not happen: taking `.get()` on the temporary, storing a raw snapshot
/// pointer into a member (trailing-underscore target) or a static, or
/// letting a raw pointer cross a pool-dispatch boundary — the pointer
/// outlives nothing once the shared_ptr drops.
void CheckSnapshotLifetime(const LexedFile& f, std::vector<Finding>* out) {
  if (!StartsWith(f.path, "src/")) return;
  const std::string& code = f.code;

  std::set<std::string> snap_vars;
  for (const char* acc : {"Acquire", "CurrentSnapshot"}) {
    std::size_t pos = 0;
    while ((pos = FindToken(code, pos, acc)) != kNpos) {
      const std::size_t at = pos;
      pos += std::char_traits<char>::length(acc);
      const std::size_t open = SkipWs(code, pos);
      if (open >= code.size() || code[open] != '(') continue;
      const std::size_t close = MatchForward(code, open);
      if (close == kNpos) continue;
      const std::size_t after = SkipWs(code, close + 1);
      if (after < code.size() && code[after] == '.' &&
          TokenAt(code, SkipWs(code, after + 1), "get")) {
        out->push_back(
            {f.path, f.LineAt(at), kRuleSnapshotLifetime,
             std::string("raw pointer taken from the ") + acc +
                 "() temporary — the snapshot dies with the expression; "
                 "keep the shared_ptr<const ModelSnapshot> alive instead"});
        continue;
      }
      // Track `var = [store.]Acquire(...)` so later `var.get()` uses can
      // be checked. Walk the receiver chain backwards to the `=`.
      std::size_t j = PrevNonWs(code, at);
      while (j != kNpos) {
        const char c = code[j];
        if (IsIdentChar(c) || c == '.' || c == ':') {
          --j;
          j = j == kNpos ? kNpos : PrevNonWs(code, j + 1);
        } else if (c == '>' && j >= 1 && code[j - 1] == '-') {
          j = PrevNonWs(code, j - 1);
        } else {
          break;
        }
      }
      if (j == kNpos || code[j] != '=') continue;
      if (j >= 1 && (code[j - 1] == '=' || code[j - 1] == '!' ||
                     code[j - 1] == '<' || code[j - 1] == '>')) {
        continue;
      }
      const std::size_t name_end = PrevNonWs(code, j);
      if (name_end == kNpos || !IsIdentChar(code[name_end])) continue;
      std::size_t nb = name_end + 1;
      while (nb > 0 && IsIdentChar(code[nb - 1])) --nb;
      snap_vars.insert(code.substr(nb, name_end + 1 - nb));
    }
  }
  if (snap_vars.empty()) return;

  const auto dispatch_spans = DispatchCallSpans(code);
  std::size_t pos = 0;
  while ((pos = FindToken(code, pos, "get")) != kNpos) {
    const std::size_t at = pos;
    ++pos;
    const std::size_t open = SkipWs(code, at + 3);
    if (open >= code.size() || code[open] != '(') continue;
    // Receiver must be one of the tracked snapshot shared_ptr locals.
    std::size_t j = PrevNonWs(code, at);
    if (j == kNpos) continue;
    if (code[j] == '.') {
      j = PrevNonWs(code, j);
    } else if (j >= 1 && code[j] == '>' && code[j - 1] == '-') {
      j = PrevNonWs(code, j - 1);
    } else {
      continue;
    }
    if (j == kNpos || !IsIdentChar(code[j])) continue;
    std::size_t nb = j + 1;
    while (nb > 0 && IsIdentChar(code[nb - 1])) --nb;
    if (snap_vars.count(code.substr(nb, j + 1 - nb)) == 0) continue;

    // (c) raw pointer crossing a pool-dispatch boundary.
    bool in_dispatch = false;
    for (const auto& [db, de] : dispatch_spans) {
      if (db < at && at < de) {
        in_dispatch = true;
        break;
      }
    }
    if (in_dispatch) {
      out->push_back(
          {f.path, f.LineAt(at), kRuleSnapshotLifetime,
           "raw snapshot pointer crosses a pool-dispatch boundary — "
           "capture the shared_ptr<const ModelSnapshot> (by value) so the "
           "snapshot outlives the task"});
      continue;
    }
    // (a)/(b): stored into a member (trailing-underscore target) or a
    // static-initialized object.
    const std::size_t stmt_begin =
        code.find_last_of(";{}", nb) == kNpos ? 0
                                              : code.find_last_of(";{}", nb);
    std::size_t eq = PrevNonWs(code, nb);
    bool member_store = false;
    if (eq != kNpos && code[eq] == '=' &&
        !(eq >= 1 && (code[eq - 1] == '=' || code[eq - 1] == '!' ||
                      code[eq - 1] == '<' || code[eq - 1] == '>'))) {
      const std::size_t lhs_end = PrevNonWs(code, eq);
      if (lhs_end != kNpos && code[lhs_end] == '_') member_store = true;
    }
    const std::size_t static_pos = FindToken(code, stmt_begin, "static");
    const bool static_store = static_pos != kNpos && static_pos < at;
    if (member_store || static_store) {
      out->push_back(
          {f.path, f.LineAt(at), kRuleSnapshotLifetime,
           std::string("raw snapshot pointer stored into a ") +
               (member_store ? "member" : "static") +
               " — it dangles after the next publish retires the "
               "snapshot; store the shared_ptr<const ModelSnapshot> or "
               "re-Acquire() per request"});
    }
  }
}

// --- R10: no blocking on hot paths -----------------------------------------

/// Bans in one body/region span. Roots (the region/scoring boundary
/// itself) may allocate scratch but must not lock or do IO; everything
/// reachable beneath a root must not lock, do IO, *or* allocate.
void ScanHotSpan(const LexedFile& f, std::size_t begin, std::size_t end,
                 bool allow_alloc, const std::string& why,
                 std::set<std::size_t>* reported,
                 std::vector<Finding>* out) {
  const std::string& code = f.code;
  auto report = [&](std::size_t at, const std::string& what) {
    if (reported->insert(at).second) {
      out->push_back({f.path, f.LineAt(at), kRuleHotPath,
                      what + " " + why +
                          " — hot paths must stay non-blocking and "
                          "allocation-free; hoist this to the dispatch/"
                          "publish boundary (see --dump-callgraph)"});
    }
  };

  // Mutex acquisition.
  for (const char* tok :
       {"lock_guard", "unique_lock", "scoped_lock", "shared_lock",
        "pthread_mutex_lock"}) {
    std::size_t pos = begin;
    while ((pos = FindToken(code, pos, tok)) != kNpos && pos < end) {
      report(pos, std::string("mutex acquisition (") + tok + ")");
      ++pos;
    }
  }
  {
    std::size_t pos = begin;
    while ((pos = FindToken(code, pos, "lock")) != kNpos && pos < end) {
      const std::size_t at = pos;
      ++pos;
      const std::size_t open = SkipWs(code, at + 4);
      if (open >= code.size() || code[open] != '(') continue;
      if (!IsMemberAccess(code, at)) continue;
      report(at, "mutex acquisition (.lock())");
    }
  }

  // Blocking IO.
  for (const char* tok :
       {"cout", "cerr", "clog", "printf", "fprintf", "puts", "fputs",
        "fwrite", "fopen", "fflush", "popen", "system", "getline"}) {
    std::size_t pos = begin;
    while ((pos = FindToken(code, pos, tok)) != kNpos && pos < end) {
      report(pos, std::string("IO (") + tok + ")");
      ++pos;
    }
  }

  if (allow_alloc) return;

  // Heap allocation: new / make_* / malloc family / to_string.
  for (const char* tok :
       {"new", "make_unique", "make_shared", "malloc", "calloc", "realloc",
        "strdup", "to_string"}) {
    std::size_t pos = begin;
    while ((pos = FindToken(code, pos, tok)) != kNpos && pos < end) {
      report(pos, std::string("heap allocation (") + tok + ")");
      ++pos;
    }
  }
  // Growing-container member calls.
  for (const char* tok :
       {"push_back", "emplace_back", "emplace", "resize", "reserve",
        "insert", "append", "assign"}) {
    std::size_t pos = begin;
    while ((pos = FindToken(code, pos, tok)) != kNpos && pos < end) {
      const std::size_t at = pos;
      ++pos;
      const std::size_t open =
          SkipWs(code, at + std::char_traits<char>::length(tok));
      if (open >= code.size() || code[open] != '(') continue;
      if (!IsMemberAccess(code, at)) continue;
      report(at, std::string("heap allocation (") + tok + ")");
    }
  }
  // std:: container / std::string construction by value. References and
  // pointers to containers are reads, not allocations.
  for (const char* tok :
       {"string", "vector", "deque", "list", "map", "multimap", "set",
        "multiset", "unordered_map", "unordered_set", "function"}) {
    std::size_t pos = begin;
    while ((pos = FindToken(code, pos, tok)) != kNpos && pos < end) {
      const std::size_t at = pos;
      pos += std::char_traits<char>::length(tok);
      if (QualifierBefore(code, at) != "std") continue;
      std::size_t j = at + std::char_traits<char>::length(tok);
      j = SkipWs(code, j);
      if (j < code.size() && code[j] == '<') {
        // Match the template argument list (tolerating >> closers).
        int angle = 0;
        std::size_t k = j;
        for (; k < code.size(); ++k) {
          const char c = code[k];
          if (c == '<') ++angle;
          if (c == '>' && code[k - 1] != '-' && --angle == 0) break;
          if (c == ';' || c == '{') break;
        }
        if (k >= code.size() || code[k] != '>') continue;
        j = SkipWs(code, k + 1);
      }
      if (j >= code.size()) continue;
      const char c = code[j];
      if (IsIdentChar(c) || c == '(' || c == '{') {
        report(at, std::string("heap allocation (std::") + tok +
                       " constructed by value)");
      }
    }
  }
}

// --- R5: header hygiene ----------------------------------------------------

using IncludeGraph = std::map<std::string, std::vector<const Include*>>;

/// Resolves `inc` as the build would: against the includer's directory,
/// then against src/ (the one include root the build adds).
std::string ResolveInclude(const std::string& includer,
                           const std::string& inc,
                           const std::set<std::string>& known) {
  for (const std::string& candidate :
       {JoinNormalize(DirName(includer), inc), JoinNormalize("src", inc),
        JoinNormalize("", inc)}) {
    if (known.count(candidate) > 0) return candidate;
  }
  return std::string();
}

void CheckIncludeCycles(const std::vector<LexedFile>& lexed,
                        std::vector<Finding>* out) {
  std::set<std::string> known;
  std::map<std::string, const LexedFile*> by_path;
  for (const LexedFile& f : lexed) {
    known.insert(f.path);
    by_path[f.path] = &f;
  }
  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  std::vector<std::string> stack;
  std::set<std::string> seen_cycles;

  std::function<void(const std::string&)> dfs =
      [&](const std::string& node) {
        color[node] = Color::kGray;
        stack.push_back(node);
        for (const Include& inc : by_path.at(node)->includes) {
          const std::string target =
              ResolveInclude(node, inc.path, known);
          if (target.empty()) continue;
          const Color c = color.count(target) > 0 ? color[target]
                                                  : Color::kWhite;
          if (c == Color::kGray) {
            auto it = std::find(stack.begin(), stack.end(), target);
            std::vector<std::string> cycle(it, stack.end());
            auto min_it = std::min_element(cycle.begin(), cycle.end());
            std::rotate(cycle.begin(), min_it, cycle.end());
            std::string key;
            for (const auto& p : cycle) key += p + " -> ";
            if (seen_cycles.insert(key).second) {
              out->push_back({node, inc.line, kRuleIncludeCycle,
                              "include cycle: " + key + cycle.front()});
            }
          } else if (c == Color::kWhite) {
            dfs(target);
          }
        }
        stack.pop_back();
        color[node] = Color::kBlack;
      };
  for (const LexedFile& f : lexed) {
    if (color.count(f.path) == 0) dfs(f.path);
  }
}

/// Runs `cmd` via the shell, captures combined stdout+stderr, returns the
/// exit status (-1 when the shell could not be spawned).
int RunCommand(const std::string& cmd, std::string* output) {
  output->clear();
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return -1;
  char buf[4096];
  std::size_t got = 0;
  while ((got = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    output->append(buf, got);
  }
  return pclose(pipe);
}

std::string ShellQuote(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

std::string FirstErrorLine(const std::string& output) {
  std::istringstream in(output);
  std::string line, first;
  while (std::getline(in, line)) {
    if (first.empty() && !line.empty()) first = line;
    if (line.find("error") != kNpos) return line;
  }
  return first.empty() ? "compiler failed with no output" : first;
}

void CheckHeaderSelfContained(const std::vector<LexedFile>& lexed,
                              const LintConfig& config,
                              std::vector<Finding>* out) {
  std::set<std::string> known;
  std::map<std::string, const LexedFile*> by_path;
  for (const LexedFile& f : lexed) {
    known.insert(f.path);
    by_path[f.path] = &f;
  }
  std::string flags_joined;
  for (const auto& flag : config.compile_flags) flags_joined += flag + "\n";

  // Hash of a header's transitive repo-include closure + compile flags:
  // unchanged hash => the previous stand-alone compile result still holds.
  auto closure_hash = [&](const std::string& header) {
    std::set<std::string> closure;
    std::vector<std::string> queue{header};
    while (!queue.empty()) {
      const std::string cur = queue.back();
      queue.pop_back();
      if (!closure.insert(cur).second) continue;
      for (const Include& inc : by_path.at(cur)->includes) {
        const std::string target = ResolveInclude(cur, inc.path, known);
        if (!target.empty() && closure.count(target) == 0) {
          queue.push_back(target);
        }
      }
    }
    uint64_t h = Fnv1a(flags_joined, 1469598103934665603ULL);
    for (const std::string& p : closure) {
      h = Fnv1a(p, h);
      h = Fnv1a(by_path.at(p)->content, h);
    }
    return h;
  };

  std::map<std::string, uint64_t> cache;
  if (!config.cache_path.empty()) {
    std::ifstream in(config.cache_path);
    std::string hex, path;
    while (in >> hex >> path) {
      cache[path] = std::strtoull(hex.c_str(), nullptr, 16);
    }
  }

  std::vector<std::pair<std::string, uint64_t>> to_check;
  std::map<std::string, uint64_t> verified;
  for (const LexedFile& f : lexed) {
    if (!StartsWith(f.path, "src/") || !EndsWith(f.path, ".h")) continue;
    const uint64_t h = closure_hash(f.path);
    auto it = cache.find(f.path);
    if (it != cache.end() && it->second == h) {
      verified[f.path] = h;  // cache hit — carry forward
    } else {
      to_check.emplace_back(f.path, h);
    }
  }

  auto compile = [&](const std::vector<std::string>& paths,
                     std::string* output) {
    std::string cmd = ShellQuote(config.compiler);
    for (const auto& flag : config.compile_flags) {
      cmd += " " + ShellQuote(flag);
    }
    cmd += " -fsyntax-only -x c++";
    for (const auto& p : paths) {
      cmd += " " + ShellQuote(config.root + "/" + p);
    }
    return RunCommand(cmd, output);
  };

  if (!to_check.empty()) {
    // Cold path: partition the stale headers into one batch per worker and
    // compile the batches concurrently (one compiler invocation each). A
    // failing batch is re-checked header by header inside its own worker
    // to attribute the error, so a single broken header only serializes
    // its batch, not the whole cold start. Results merge in batch order —
    // deterministic regardless of thread scheduling.
    const int want = config.compile_jobs > 0
                         ? config.compile_jobs
                         : static_cast<int>(
                               std::thread::hardware_concurrency());
    const int jobs = std::max(
        1, std::min(std::max(want, 1),
                    static_cast<int>(to_check.size())));
    std::vector<std::vector<std::pair<std::string, uint64_t>>> batches(
        static_cast<std::size_t>(jobs));
    for (std::size_t i = 0; i < to_check.size(); ++i) {
      batches[i % static_cast<std::size_t>(jobs)].push_back(to_check[i]);
    }
    struct BatchResult {
      std::vector<std::pair<std::string, uint64_t>> ok;
      std::vector<Finding> failed;
    };
    std::vector<BatchResult> results(static_cast<std::size_t>(jobs));
    auto run_batch = [&](std::size_t b) {
      const auto& batch = batches[b];
      std::vector<std::string> paths;
      for (const auto& [p, h] : batch) paths.push_back(p);
      std::string output;
      if (compile(paths, &output) == 0) {
        results[b].ok = batch;
        return;
      }
      for (const auto& [p, h] : batch) {
        if (compile({p}, &output) == 0) {
          results[b].ok.emplace_back(p, h);
        } else {
          results[b].failed.push_back({p, 1, kRuleHeaderSelf,
                                       "header is not self-contained: " +
                                           FirstErrorLine(output)});
        }
      }
    };
    std::vector<std::thread> workers;
    for (std::size_t b = 1; b < static_cast<std::size_t>(jobs); ++b) {
      workers.emplace_back(run_batch, b);
    }
    run_batch(0);
    for (std::thread& w : workers) w.join();
    for (const BatchResult& r : results) {
      for (const auto& [p, h] : r.ok) verified[p] = h;
      for (const Finding& f : r.failed) out->push_back(f);
    }
  }

  if (!config.cache_path.empty()) {
    std::ofstream cache_out(config.cache_path, std::ios::trunc);
    for (const auto& [p, h] : verified) {
      char hex[24];
      std::snprintf(hex, sizeof(hex), "%016llx",
                    static_cast<unsigned long long>(h));
      cache_out << hex << " " << p << "\n";
    }
  }
}

// --- R6: tests <-> CMake registration --------------------------------------

void CheckTestRegistration(const std::vector<FileEntry>& files,
                           std::vector<Finding>* out) {
  const FileEntry* cmake = nullptr;
  std::vector<const FileEntry*> test_files;
  for (const FileEntry& f : files) {
    if (f.path == "tests/CMakeLists.txt") cmake = &f;
    if (StartsWith(f.path, "tests/") && EndsWith(f.path, "_test.cc")) {
      test_files.push_back(&f);
    }
  }
  if (cmake == nullptr && test_files.empty()) return;

  // Parse actor_test(<name> ...) registrations, comment-aware.
  std::map<std::string, int> registered;  // name -> line
  if (cmake != nullptr) {
    std::istringstream in(cmake->content);
    std::string raw;
    int line_no = 0;
    std::string stripped;
    std::vector<std::size_t> line_starts;
    while (std::getline(in, raw)) {
      ++line_no;
      const std::size_t hash = raw.find('#');
      line_starts.push_back(stripped.size());
      stripped += raw.substr(0, hash == kNpos ? raw.size() : hash);
      stripped += '\n';
    }
    std::size_t pos = 0;
    while ((pos = FindToken(stripped, pos, "actor_test")) != kNpos) {
      const std::size_t at = pos;
      pos += 10;
      std::size_t j = SkipWs(stripped, at + 10);
      if (j >= stripped.size() || stripped[j] != '(') continue;
      j = SkipWs(stripped, j + 1);
      std::string name;
      while (j < stripped.size() && !IsSpace(stripped[j]) &&
             stripped[j] != ')') {
        name += stripped[j++];
      }
      if (name.empty()) continue;
      const int line = static_cast<int>(
          std::upper_bound(line_starts.begin(), line_starts.end(), at) -
          line_starts.begin());
      registered.emplace(name, line);
    }
  }

  std::set<std::string> source_names;
  for (const FileEntry* f : test_files) {
    const std::string name =
        f->path.substr(6, f->path.size() - 6 - 3);  // strip tests/ and .cc
    source_names.insert(name);
    if (registered.count(name) == 0) {
      out->push_back({f->path, 1, kRuleTestReg,
                      "test binary is not registered with actor_test() in "
                      "tests/CMakeLists.txt — it would never run in CI"});
    }
  }
  for (const auto& [name, line] : registered) {
    if (source_names.count(name) == 0) {
      out->push_back({"tests/CMakeLists.txt", line, kRuleTestReg,
                      "actor_test(" + name + ") is registered but tests/" +
                          name + ".cc does not exist"});
    }
  }
}

// --- Suppressions ----------------------------------------------------------

struct Suppression {
  std::string file;
  int target_line = 0;
  int comment_line = 0;
  std::string entry;  // "actor-<rule>" or "actor-*"
  bool used = false;
};

void CollectSuppressions(const LexedFile& f,
                         std::vector<Suppression>* out) {
  for (const Comment& c : f.comments) {
    std::size_t pos = c.text.find("NOLINT");
    if (pos == kNpos) continue;
    std::size_t j = pos + 6;
    bool next_line = false;
    if (c.text.compare(j, 8, "NEXTLINE") == 0) {
      next_line = true;
      j += 8;
    }
    if (j >= c.text.size() || c.text[j] != '(') continue;
    const std::size_t close = c.text.find(')', j);
    if (close == kNpos) continue;
    std::string list = c.text.substr(j + 1, close - j - 1);
    std::size_t b = 0;
    while (b <= list.size()) {
      const std::size_t e = std::min(list.find(',', b), list.size());
      std::string entry = list.substr(b, e - b);
      const std::size_t lead = entry.find_first_not_of(" \t");
      const std::size_t trail = entry.find_last_not_of(" \t");
      entry = lead == kNpos
                  ? std::string()
                  : entry.substr(lead, trail - lead + 1);
      if (StartsWith(entry, "actor-")) {
        out->push_back({f.path, next_line ? c.line + 1 : c.line, c.line,
                        entry, false});
      }
      b = e + 1;
    }
  }
}

// --- symbol cache (also the --changed-only baseline) -----------------------

struct SymbolCacheEntry {
  uint64_t hash = 0;
  bool clean = false;  // the previous run left zero findings in this file
  FileSymbols syms;
};

std::map<std::string, SymbolCacheEntry> LoadSymbolCache(
    const std::string& path) {
  std::map<std::string, SymbolCacheEntry> cache;
  if (path.empty()) return cache;
  std::ifstream in(path, std::ios::binary);
  if (!in) return cache;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();
  std::size_t pos = 0;
  while (pos < content.size()) {
    const std::size_t nl = std::min(content.find('\n', pos), content.size());
    const std::string header = content.substr(pos, nl - pos);
    pos = nl == content.size() ? nl : nl + 1;
    std::istringstream hs(header);
    std::string tag, hex, file_path;
    int clean = 0;
    if (!(hs >> tag >> hex >> clean >> file_path) || tag != "F") {
      return {};  // malformed — treat the whole cache as a miss
    }
    SymbolCacheEntry entry;
    entry.hash = std::strtoull(hex.c_str(), nullptr, 16);
    entry.clean = clean != 0;
    if (!ParseSymbols(content, &pos, &entry.syms)) return {};
    cache.emplace(std::move(file_path), std::move(entry));
  }
  return cache;
}

void SaveSymbolCache(const std::string& path,
                     const std::vector<LexedFile>& lexed,
                     const std::vector<FileSymbols>& symbols,
                     const std::vector<uint64_t>& hashes,
                     const std::vector<char>& clean) {
  if (path.empty()) return;
  std::string out;
  for (std::size_t i = 0; i < lexed.size(); ++i) {
    char hex[24];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(hashes[i]));
    out += std::string("F ") + hex + " " + (clean[i] ? "1" : "0") + " " +
           lexed[i].path + "\n";
    SerializeSymbols(symbols[i], &out);
  }
  std::ofstream f(path, std::ios::trunc | std::ios::binary);
  f << out;
}

/// Everything LintRepo derives from the symbol indexes in one pass, shared
/// with DumpCallGraph.
struct RepoAnalysis {
  std::vector<FileSymbols> symbols;
  std::vector<uint64_t> hashes;
  std::vector<char> changed;     // per lexed file: content hash differs
  std::vector<char> prev_clean;  // per lexed file: cached clean flag
  std::vector<Annotation> annotations;
  std::vector<SrcSpan> annotation_spans;
};

RepoAnalysis AnalyzeRepo(const std::vector<LexedFile>& lexed,
                         const std::map<std::string, SymbolCacheEntry>& cache) {
  RepoAnalysis a;
  a.symbols.resize(lexed.size());
  a.hashes.resize(lexed.size());
  a.changed.assign(lexed.size(), 1);
  a.prev_clean.assign(lexed.size(), 0);
  for (std::size_t i = 0; i < lexed.size(); ++i) {
    a.hashes[i] = Fnv1a(lexed[i].content, 1469598103934665603ULL);
    const auto it = cache.find(lexed[i].path);
    if (it != cache.end() && it->second.hash == a.hashes[i]) {
      a.symbols[i] = it->second.syms;
      a.changed[i] = 0;
      a.prev_clean[i] = it->second.clean ? 1 : 0;
    } else {
      a.symbols[i] = ExtractSymbols(lexed[i]);
    }
  }
  a.annotations = CollectAnnotations(lexed);
  for (const Annotation& an : a.annotations) {
    a.annotation_spans.push_back({an.file, an.begin, an.end});
  }
  return a;
}

}  // namespace

std::vector<Finding> LintRepo(const std::vector<FileEntry>& files,
                              const LintConfig& config) {
  std::vector<LexedFile> lexed;
  for (const FileEntry& f : files) {
    if (EndsWith(f.path, ".cc") || EndsWith(f.path, ".cpp") ||
        EndsWith(f.path, ".h")) {
      lexed.push_back(Lex(f.path, f.content));
    }
  }
  const std::size_t n = lexed.size();
  std::map<std::string, std::size_t> index_of;
  for (std::size_t i = 0; i < n; ++i) index_of[lexed[i].path] = i;

  const auto cache = LoadSymbolCache(config.symbol_cache_path);
  RepoAnalysis repo = AnalyzeRepo(lexed, cache);
  const CallGraph g = BuildCallGraph(lexed, repo.symbols);
  const HogwildInfo hw = ComputeHogwild(g, repo.annotation_spans);
  const HotPathInfo hot = ComputeHotPaths(g, hw, repo.annotation_spans);

  // Per-file HOGWILD regions for the R4 row/dirty-mark discipline:
  // annotation spans, auto-detected dispatch spans, and the bodies of every
  // symbol the call graph marks as HOGWILD-reachable.
  std::vector<std::vector<Region>> regions(n);
  for (const Annotation& a : repo.annotations) {
    regions[static_cast<std::size_t>(a.file)].push_back({a.begin, a.end});
  }
  for (const SrcSpan& s : hw.dispatch_spans) {
    regions[static_cast<std::size_t>(s.file)].push_back({s.begin, s.end});
  }
  for (int node = 0; node < static_cast<int>(g.nodes().size()); ++node) {
    if (!hw.hogwild[static_cast<std::size_t>(node)]) continue;
    const Symbol& sym = g.Sym(node);
    regions[static_cast<std::size_t>(g.FileIndex(node))].push_back(
        {sym.body_begin, sym.body_end});
  }
  for (auto& r : regions) {
    std::sort(r.begin(), r.end(), [](const Region& a, const Region& b) {
      return std::tie(a.begin, a.end) < std::tie(b.begin, b.end);
    });
    r.erase(std::unique(r.begin(), r.end(),
                        [](const Region& a, const Region& b) {
                          return a.begin == b.begin && a.end == b.end;
                        }),
            r.end());
  }

  // --changed-only active set: changed files, files the previous run left
  // findings in, their 1-hop call-graph neighbors, and every includer of a
  // changed file (its textual content changed too). Cross-file rules run
  // regardless — this mode must never hide a finding, only skip re-deriving
  // per-file findings for files known clean and untouched.
  std::vector<char> active(n, 1);
  if (config.changed_only) {
    active.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (repo.changed[i] || !repo.prev_clean[i]) active[i] = 1;
    }
    // 1-hop call edges, both directions.
    for (int node = 0; node < static_cast<int>(g.nodes().size()); ++node) {
      const std::size_t fi = static_cast<std::size_t>(g.FileIndex(node));
      for (const int callee : g.ResolveAll(g.Sym(node).calls)) {
        const std::size_t ci = static_cast<std::size_t>(g.FileIndex(callee));
        if (repo.changed[fi]) active[ci] = 1;
        if (repo.changed[ci]) active[fi] = 1;
      }
    }
    // Includers of changed files, transitively.
    std::set<std::string> known;
    for (const LexedFile& f : lexed) known.insert(f.path);
    std::vector<std::vector<std::size_t>> includers(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (const Include& inc : lexed[i].includes) {
        const std::string target = ResolveInclude(lexed[i].path, inc.path,
                                                  known);
        if (!target.empty()) includers[index_of[target]].push_back(i);
      }
    }
    std::vector<std::size_t> queue;
    std::vector<char> seen(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (repo.changed[i]) {
        queue.push_back(i);
        seen[i] = 1;
      }
    }
    while (!queue.empty()) {
      const std::size_t cur = queue.back();
      queue.pop_back();
      active[cur] = 1;
      for (const std::size_t up : includers[cur]) {
        if (!seen[up]) {
          seen[up] = 1;
          queue.push_back(up);
        }
      }
    }
  }

  std::vector<Finding> findings;

  // Redundant manual annotations: the interprocedural propagation (without
  // the annotation seeds) already covers the annotated scope.
  for (const Annotation& a : repo.annotations) {
    const std::size_t fi = static_cast<std::size_t>(a.file);
    if (!active[fi]) continue;
    bool covered = false;
    for (const SrcSpan& s : hw.dispatch_spans) {
      if (s.file == a.file && s.begin <= a.begin && a.end <= s.end) {
        covered = true;
        break;
      }
    }
    for (int node = 0; !covered && node < static_cast<int>(g.nodes().size());
         ++node) {
      if (!hw.hogwild_auto[static_cast<std::size_t>(node)]) continue;
      if (g.FileIndex(node) != a.file) continue;
      const Symbol& sym = g.Sym(node);
      if (sym.body_begin <= a.begin && a.end <= sym.body_end) covered = true;
    }
    if (covered) {
      findings.push_back(
          {lexed[fi].path, a.comment_line, kRuleHogwild,
           "redundant hogwild-region annotation — the call graph already "
           "derives this region from the ThreadPool dispatch; remove the "
           "comment"});
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (!active[i]) continue;
    const LexedFile& f = lexed[i];
    CheckThread(f, &findings);
    CheckRng(f, &findings);
    CheckSimdAligned(f, &findings);
    CheckHogwild(f, regions[i], &findings);
    CheckServeReadOnly(f, &findings);
    CheckSnapshotLifetime(f, &findings);
  }

  // R10: region/scoring boundaries may allocate scratch but not block;
  // everything reachable beneath them must not block or allocate. Roots
  // are scanned first so a nested checked body still reports allocations.
  {
    std::set<int> query_root_set(hot.query_roots.begin(),
                                 hot.query_roots.end());
    std::vector<std::set<std::size_t>> reported(n);
    for (const SrcSpan& s : hw.dispatch_spans) {
      const std::size_t fi = static_cast<std::size_t>(s.file);
      if (!active[fi]) continue;
      ScanHotSpan(lexed[fi], s.begin, s.end, /*allow_alloc=*/true,
                  "inside a HOGWILD dispatch region", &reported[fi],
                  &findings);
    }
    for (const Annotation& a : repo.annotations) {
      const std::size_t fi = static_cast<std::size_t>(a.file);
      if (!active[fi]) continue;
      ScanHotSpan(lexed[fi], a.begin, a.end, /*allow_alloc=*/true,
                  "inside an annotated HOGWILD region", &reported[fi],
                  &findings);
    }
    for (int node = 0; node < static_cast<int>(g.nodes().size()); ++node) {
      const std::size_t ni = static_cast<std::size_t>(node);
      const std::size_t fi = static_cast<std::size_t>(g.FileIndex(node));
      if (!active[fi]) continue;
      const Symbol& sym = g.Sym(node);
      if (hot.root[ni]) {
        const char* why = query_root_set.count(node) > 0
                              ? "in the QueryEngine scoring path"
                              : "in a dispatched HOGWILD shard body";
        ScanHotSpan(lexed[fi], sym.body_begin, sym.body_end,
                    /*allow_alloc=*/true, why, &reported[fi], &findings);
      } else if (hot.checked[ni]) {
        const bool hg = hot.from_hogwild[ni] != 0;
        const bool qy = hot.from_query[ni] != 0;
        const std::string reason =
            std::string("in `") + sym.name + "`, reachable from " +
            (hg && qy ? "a HOGWILD region and the QueryEngine scoring path"
             : hg    ? "a HOGWILD region"
                     : "the QueryEngine scoring path");
        ScanHotSpan(lexed[fi], sym.body_begin, sym.body_end,
                    /*allow_alloc=*/false, reason, &reported[fi], &findings);
      }
    }
  }

  CheckIncludeCycles(lexed, &findings);
  if (config.compile_headers) {
    CheckHeaderSelfContained(lexed, config, &findings);
  }
  CheckTestRegistration(files, &findings);

  std::vector<Suppression> suppressions;
  for (const LexedFile& f : lexed) {
    CollectSuppressions(f, &suppressions);
  }
  if (config.changed_only) {
    // Suppressions in skipped files cannot match the findings they exist
    // for — pre-mark them used so they do not read as stale.
    for (Suppression& s : suppressions) {
      const auto it = index_of.find(s.file);
      if (it != index_of.end() && !active[it->second]) s.used = true;
    }
  }
  std::vector<Finding> surviving;
  for (Finding& finding : findings) {
    bool suppressed = false;
    for (Suppression& s : suppressions) {
      if (s.file == finding.file && s.target_line == finding.line &&
          (s.entry == "actor-*" || s.entry == finding.rule)) {
        s.used = true;
        suppressed = true;
      }
    }
    if (!suppressed) surviving.push_back(std::move(finding));
  }
  for (const Suppression& s : suppressions) {
    if (!s.used) {
      surviving.push_back(
          {s.file, s.comment_line, kRuleStaleNolint,
           "NOLINT(" + s.entry +
               ") no longer suppresses anything — remove it so silenced "
               "findings cannot rot"});
    }
  }

  std::sort(surviving.begin(), surviving.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });

  if (!config.symbol_cache_path.empty()) {
    // A file is clean when this run (or, for skipped files, the previous
    // run) left no finding in it.
    std::vector<char> clean(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      clean[i] = active[i] ? 1 : repo.prev_clean[i];
    }
    for (const Finding& f : surviving) {
      const auto it = index_of.find(f.file);
      if (it != index_of.end()) clean[it->second] = 0;
    }
    SaveSymbolCache(config.symbol_cache_path, lexed, repo.symbols,
                    repo.hashes, clean);
  }
  return surviving;
}

std::string DumpCallGraph(const std::vector<FileEntry>& files) {
  std::vector<LexedFile> lexed;
  for (const FileEntry& f : files) {
    if (EndsWith(f.path, ".cc") || EndsWith(f.path, ".cpp") ||
        EndsWith(f.path, ".h")) {
      lexed.push_back(Lex(f.path, f.content));
    }
  }
  const RepoAnalysis repo = AnalyzeRepo(lexed, {});
  const CallGraph g = BuildCallGraph(lexed, repo.symbols);
  const HogwildInfo hw = ComputeHogwild(g, repo.annotation_spans);
  const HotPathInfo hot = ComputeHotPaths(g, hw, repo.annotation_spans);
  return DumpCallGraphDot(g, hw, hot);
}

std::string FormatFindingsText(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
           f.message + "\n";
  }
  return out;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string FormatFindingsJson(const std::vector<Finding>& findings) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += "  {\"file\": \"" + JsonEscape(f.file) +
           "\", \"line\": " + std::to_string(f.line) + ", \"rule\": \"" +
           JsonEscape(f.rule) + "\", \"message\": \"" +
           JsonEscape(f.message) + "\"}";
    out += i + 1 < findings.size() ? ",\n" : "\n";
  }
  out += "]\n";
  return out;
}

}  // namespace actor_lint
