#include "rules.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "lexer.h"

namespace actor_lint {

namespace {

constexpr std::size_t kNpos = std::string::npos;

bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)); }

bool StartsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool EndsWith(const std::string& s, const char* suffix) {
  const std::size_t len = std::char_traits<char>::length(suffix);
  return s.size() >= len && s.compare(s.size() - len, len, suffix) == 0;
}

std::size_t SkipWs(const std::string& s, std::size_t i) {
  while (i < s.size() && IsSpace(s[i])) ++i;
  return i;
}

/// True when s[pos..] starts with `word` as a whole identifier token.
bool TokenAt(const std::string& s, std::size_t pos, const char* word) {
  const std::size_t len = std::char_traits<char>::length(word);
  if (pos + len > s.size() || s.compare(pos, len, word) != 0) return false;
  if (pos > 0 && IsIdentChar(s[pos - 1])) return false;
  return pos + len >= s.size() || !IsIdentChar(s[pos + len]);
}

/// Next occurrence of `word` as a whole token at or after `from`.
std::size_t FindToken(const std::string& s, std::size_t from,
                      const char* word) {
  std::size_t pos = from;
  while ((pos = s.find(word, pos)) != kNpos) {
    if (TokenAt(s, pos, word)) return pos;
    ++pos;
  }
  return kNpos;
}

/// Index of the delimiter matching s[open_idx] (one of ( [ {), or npos.
std::size_t MatchForward(const std::string& s, std::size_t open_idx) {
  const char open = s[open_idx];
  const char close = open == '(' ? ')' : open == '[' ? ']' : '}';
  int depth = 0;
  for (std::size_t i = open_idx; i < s.size(); ++i) {
    if (s[i] == open) ++depth;
    if (s[i] == close && --depth == 0) return i;
  }
  return kNpos;
}

/// Index of the opener matching the closer at s[close_idx], or npos.
std::size_t MatchBackward(const std::string& s, std::size_t close_idx,
                          char open, char close) {
  int depth = 0;
  for (std::size_t i = close_idx + 1; i-- > 0;) {
    if (s[i] == close) ++depth;
    if (s[i] == open && --depth == 0) return i;
  }
  return kNpos;
}

/// Joins `dir` + "/" + `rel` and resolves "." / ".." segments (pure string
/// math — never touches the filesystem, so virtual repos work in tests).
std::string JoinNormalize(const std::string& dir, const std::string& rel) {
  std::vector<std::string> parts;
  auto push = [&parts](const std::string& p) {
    std::size_t b = 0;
    while (b <= p.size()) {
      const std::size_t e = std::min(p.find('/', b), p.size());
      const std::string seg = p.substr(b, e - b);
      if (seg == "..") {
        if (!parts.empty()) parts.pop_back();
      } else if (!seg.empty() && seg != ".") {
        parts.push_back(seg);
      }
      b = e + 1;
    }
  };
  push(dir);
  push(rel);
  std::string out;
  for (const auto& p : parts) {
    if (!out.empty()) out += '/';
    out += p;
  }
  return out;
}

std::string DirName(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == kNpos ? std::string() : path.substr(0, slash);
}

uint64_t Fnv1a(const std::string& s, uint64_t h) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// --- R1: parallelism flows through util/thread_pool ------------------------

void CheckThread(const LexedFile& f, std::vector<Finding>* out) {
  if (StartsWith(f.path, "src/util/thread_pool")) return;
  const std::string& code = f.code;
  std::size_t pos = 0;
  while ((pos = FindToken(code, pos, "std")) != kNpos) {
    const std::size_t after_std = SkipWs(code, pos + 3);
    if (code.compare(after_std, 2, "::") != 0) {
      pos += 3;
      continue;
    }
    const std::size_t name_pos = SkipWs(code, after_std + 2);
    const char* banned = nullptr;
    for (const char* word : {"thread", "jthread", "async"}) {
      if (TokenAt(code, name_pos, word)) {
        banned = word;
        break;
      }
    }
    if (banned == nullptr) {
      pos += 3;
      continue;
    }
    // std::thread::hardware_concurrency() is a pure CPU query, not a
    // parallelism primitive — the one historical exemption of grep L1.
    std::size_t tail = SkipWs(
        code, name_pos + std::char_traits<char>::length(banned));
    bool allowed = false;
    if (code.compare(tail, 2, "::") == 0) {
      tail = SkipWs(code, tail + 2);
      allowed = TokenAt(code, tail, "hardware_concurrency");
    }
    if (!allowed) {
      out->push_back(
          {f.path, f.LineAt(name_pos), kRuleThread,
           std::string("raw std::") + banned +
               " outside util/thread_pool — all parallelism must go "
               "through ThreadPool (ShardedRange/ParallelFor/Submit)"});
    }
    pos = name_pos;
  }
}

// --- R2: randomness/clocks flow through util/rng.h, util/stopwatch.h -------

void CheckRng(const LexedFile& f, std::vector<Finding>* out) {
  if (f.path == "src/util/rng.h" || f.path == "src/util/stopwatch.h") return;
  const std::string& code = f.code;

  // Member access (x.time(), x->time()) and non-std qualification
  // (Foo::time()) are fine; bare and std:: calls hit libc/std.
  auto banned_call = [&code](std::size_t pos) {
    std::size_t j = pos;
    while (j > 0 && IsSpace(code[j - 1])) --j;
    if (j >= 2 && code[j - 1] == ':' && code[j - 2] == ':') {
      std::size_t k = j - 2;
      while (k > 0 && IsSpace(code[k - 1])) --k;
      std::size_t b = k;
      while (b > 0 && IsIdentChar(code[b - 1])) --b;
      return code.compare(b, k - b, "std") == 0 || b == k;  // std:: or ::
    }
    if (j >= 1 && code[j - 1] == '.') return false;
    if (j >= 2 && code[j - 1] == '>' && code[j - 2] == '-') return false;
    return true;
  };
  for (const char* word : {"rand", "srand", "time"}) {
    std::size_t pos = 0;
    while ((pos = FindToken(code, pos, word)) != kNpos) {
      const std::size_t open =
          SkipWs(code, pos + std::char_traits<char>::length(word));
      if (open < code.size() && code[open] == '(' && banned_call(pos)) {
        out->push_back(
            {f.path, f.LineAt(pos), kRuleRng,
             std::string(word) +
                 "() breaks seed-reproducibility — use util/rng.h for "
                 "randomness, util/stopwatch.h for clocks"});
      }
      ++pos;
    }
  }
  std::size_t pos = 0;
  while ((pos = FindToken(code, pos, "random_device")) != kNpos) {
    out->push_back({f.path, f.LineAt(pos), kRuleRng,
                    "std::random_device is non-reproducible — derive seeds "
                    "through util/rng.h (SplitMix64/ShardSeed)"});
    ++pos;
  }
  pos = 0;
  while ((pos = FindToken(code, pos, "system_clock")) != kNpos) {
    std::size_t j = SkipWs(code, pos + 12);
    if (code.compare(j, 2, "::") == 0) {
      j = SkipWs(code, j + 2);
      if (TokenAt(code, j, "now")) {
        out->push_back(
            {f.path, f.LineAt(pos), kRuleRng,
             "std::chrono::system_clock::now() is wall-clock and "
             "non-reproducible — time through util/stopwatch.h "
             "(steady_clock)"});
      }
    }
    ++pos;
  }
}

// --- R3: no aligned SIMD load/store in kernel sources ----------------------

void CheckSimdAligned(const LexedFile& f, std::vector<Finding>* out) {
  if (!StartsWith(f.path, "src/")) return;
  const std::string& code = f.code;
  std::size_t pos = 0;
  while ((pos = code.find("_mm", pos)) != kNpos) {
    if (pos > 0 && IsIdentChar(code[pos - 1])) {
      pos += 3;
      continue;
    }
    std::size_t j = pos + 3;
    while (j < code.size() && std::isdigit(static_cast<unsigned char>(code[j]))) {
      ++j;
    }
    if (j >= code.size() || code[j] != '_') {
      pos += 3;
      continue;
    }
    ++j;
    bool op = false;
    for (const char* name : {"load", "store", "stream"}) {
      const std::size_t len = std::char_traits<char>::length(name);
      if (code.compare(j, len, name) == 0 && j + len < code.size() &&
          code[j + len] == '_') {
        j += len + 1;
        op = true;
        break;
      }
    }
    if (op && code.compare(j, 1, "p") == 0 && j + 1 < code.size() &&
        (code[j + 1] == 's' || code[j + 1] == 'd') &&
        (j + 2 >= code.size() || !IsIdentChar(code[j + 2]))) {
      out->push_back(
          {f.path, f.LineAt(pos), kRuleSimdAligned,
           code.substr(pos, j + 2 - pos) +
               " assumes alignment — kernels must tolerate arbitrary "
               "caller buffers, use the loadu/storeu forms"});
    }
    pos += 3;
  }
}

// --- R4: HOGWILD row discipline --------------------------------------------

struct Region {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Regions in which shared EmbeddingMatrix rows may be updated
/// concurrently: lambda bodies dispatched onto the pool from
/// src/embedding/ + src/core/, plus any scope annotated with
/// `// actor-lint: hogwild-region` (used for shard helpers the lambdas
/// delegate to).
std::vector<Region> HogwildRegions(const LexedFile& f) {
  std::vector<Region> regions;
  const std::string& code = f.code;
  for (const Comment& c : f.comments) {
    if (c.text.find("actor-lint: hogwild-region") == kNpos) continue;
    const std::size_t open = code.find('{', c.begin);
    if (open == kNpos) continue;
    const std::size_t close = MatchForward(code, open);
    if (close != kNpos) regions.push_back({open, close});
  }
  const bool auto_detect =
      StartsWith(f.path, "src/embedding/") || StartsWith(f.path, "src/core/");
  if (auto_detect) {
    for (const char* dispatch : {"ShardedRange", "ParallelFor", "Submit"}) {
      std::size_t pos = 0;
      while ((pos = FindToken(code, pos, dispatch)) != kNpos) {
        const std::size_t open = SkipWs(
            code, pos + std::char_traits<char>::length(dispatch));
        ++pos;
        if (open >= code.size() || code[open] != '(') continue;
        const std::size_t close = MatchForward(code, open);
        if (close == kNpos) continue;
        const std::size_t intro = code.find('[', open + 1);
        if (intro == kNpos || intro > close) continue;
        const std::size_t intro_end = MatchForward(code, intro);
        if (intro_end == kNpos) continue;
        const std::size_t body = code.find('{', intro_end);
        if (body == kNpos || body > close) continue;
        const std::size_t body_end = MatchForward(code, body);
        if (body_end != kNpos) regions.push_back({body, body_end});
      }
    }
  }
  return regions;
}

/// Second half of R4: dirty-row bookkeeping inside a HOGWILD region. A
/// shard may only mark rows in a set it exclusively owns — the
/// `DirtyRowSet*` parameter threaded into the shard helper or a
/// subscripted per-shard slot (`shard_dirty_[shard]`). Writing a plain
/// member set (trailing-underscore receiver, e.g. `dirty_.Mark(u)`) from
/// inside a region is a data race: DirtyRowSet is a plain bitset with no
/// atomics, shared across all running shards.
void CheckDirtyMarks(const LexedFile& f, const std::vector<Region>& regions,
                     std::vector<Finding>* out) {
  const std::string& code = f.code;
  std::set<std::size_t> reported;
  for (const Region& region : regions) {
    for (const char* method : {"Mark", "MarkAll", "Clear"}) {
      std::size_t pos = region.begin;
      while ((pos = FindToken(code, pos, method)) != kNpos &&
             pos < region.end) {
        const std::size_t call_pos = pos;
        ++pos;
        // Must be a call: Method(...)
        const std::size_t open = SkipWs(
            code, call_pos + std::char_traits<char>::length(method));
        if (open >= code.size() || code[open] != '(') continue;
        // Receiver scan: `.` or `->` immediately before the method name.
        long j = static_cast<long>(call_pos) - 1;
        while (j >= 0 && IsSpace(code[static_cast<std::size_t>(j)])) --j;
        if (j >= 1 && code[static_cast<std::size_t>(j)] == '>' &&
            code[static_cast<std::size_t>(j) - 1] == '-') {
          j -= 2;
        } else if (j >= 0 && code[static_cast<std::size_t>(j)] == '.') {
          j -= 1;
        } else {
          continue;  // free function / constructor — not a receiver call
        }
        while (j >= 0 && IsSpace(code[static_cast<std::size_t>(j)])) --j;
        // Subscripted receiver (`shard_dirty_[shard].Mark`) is the
        // per-shard slot idiom — exclusively owned, allowed.
        if (j >= 0 && code[static_cast<std::size_t>(j)] == ']') continue;
        // Plain identifier receiver: flag only the member-naming
        // convention (trailing underscore). Locals and the threaded
        // `DirtyRowSet* dirty` parameter pass.
        const long id_end = j;
        while (j >= 0 && IsIdentChar(code[static_cast<std::size_t>(j)])) {
          --j;
        }
        if (id_end < 0 || j == id_end) continue;
        if (code[static_cast<std::size_t>(id_end)] != '_') continue;
        if (reported.insert(call_pos).second) {
          out->push_back(
              {f.path, f.LineAt(call_pos), kRuleHogwild,
               "member dirty-row set written from inside a HOGWILD region "
               "— mark the shard-owned set instead (the DirtyRowSet* shard "
               "parameter or shard_dirty_[shard]) and merge at the batch "
               "barrier"});
        }
      }
    }
  }
}

void CheckHogwild(const LexedFile& f, std::vector<Finding>* out) {
  const std::vector<Region> regions = HogwildRegions(f);
  if (regions.empty()) return;
  CheckDirtyMarks(f, regions, out);
  const std::string& code = f.code;
  std::set<std::size_t> reported;
  for (const Region& region : regions) {
    std::size_t pos = region.begin;
    while ((pos = FindToken(code, pos, "row")) != kNpos &&
           pos < region.end) {
      const std::size_t row_pos = pos;
      ++pos;
      // Must be a member call: m.row(...) / m->row(...).
      long j = static_cast<long>(row_pos) - 1;
      while (j >= 0 && IsSpace(code[static_cast<std::size_t>(j)])) --j;
      bool arrow = false;
      if (j >= 1 && code[static_cast<std::size_t>(j)] == '>' &&
          code[static_cast<std::size_t>(j) - 1] == '-') {
        arrow = true;
      } else if (!(j >= 0 && code[static_cast<std::size_t>(j)] == '.')) {
        continue;
      }
      const std::size_t open = SkipWs(code, row_pos + 3);
      if (open >= code.size() || code[open] != '(') continue;
      const std::size_t close = MatchForward(code, open);
      if (close == kNpos) continue;
      const std::size_t after = SkipWs(code, close + 1);
      if (after >= code.size() || code[after] != '[') continue;
      // Direct element access on a shared row. Allowed only when the whole
      // expression sits inside RelaxedLoad(...) / RelaxedStore(...).
      j -= arrow ? 2 : 1;
      while (j >= 0) {
        const char ch = code[static_cast<std::size_t>(j)];
        if (IsIdentChar(ch) || ch == '.' || ch == ':') {
          --j;
        } else if (ch == '>' && j >= 1 &&
                   code[static_cast<std::size_t>(j) - 1] == '-') {
          j -= 2;
        } else if (ch == ']' || ch == ')') {
          const std::size_t m = MatchBackward(
              code, static_cast<std::size_t>(j), ch == ']' ? '[' : '(',
              ch);
          if (m == kNpos) break;
          j = static_cast<long>(m) - 1;
        } else {
          break;
        }
      }
      while (j >= 0 && IsSpace(code[static_cast<std::size_t>(j)])) --j;
      while (j >= 0 && (code[static_cast<std::size_t>(j)] == '&' ||
                        code[static_cast<std::size_t>(j)] == '*')) {
        --j;
      }
      while (j >= 0 && IsSpace(code[static_cast<std::size_t>(j)])) --j;
      bool wrapped = false;
      if (j >= 0 && code[static_cast<std::size_t>(j)] == '(') {
        --j;
        while (j >= 0 && IsSpace(code[static_cast<std::size_t>(j)])) --j;
        const long id_end = j;
        while (j >= 0 && IsIdentChar(code[static_cast<std::size_t>(j)])) {
          --j;
        }
        const std::string callee = code.substr(
            static_cast<std::size_t>(j + 1),
            static_cast<std::size_t>(id_end - j));
        wrapped = callee == "RelaxedLoad" || callee == "RelaxedStore";
      }
      if (!wrapped && reported.insert(row_pos).second) {
        out->push_back(
            {f.path, f.LineAt(row_pos), kRuleHogwild,
             "direct element access to a shared embedding row inside a "
             "HOGWILD region — go through the vec_math kernel API "
             "(FusedGradStep/Axpy/Add/...) or RelaxedLoad/RelaxedStore"});
      }
    }
  }
}

// --- R8: the serving read path never mutates embeddings --------------------

/// True when the `row` token at `row_pos` is a member call (`m.row(` /
/// `m->row(`). Mirrors the receiver scan in CheckHogwild.
bool IsRowMemberCall(const std::string& code, std::size_t row_pos) {
  long j = static_cast<long>(row_pos) - 1;
  while (j >= 0 && IsSpace(code[static_cast<std::size_t>(j)])) --j;
  if (j >= 1 && code[static_cast<std::size_t>(j)] == '>' &&
      code[static_cast<std::size_t>(j) - 1] == '-') {
    return true;
  }
  return j >= 0 && code[static_cast<std::size_t>(j)] == '.';
}

/// Splits the argument list of a call whose '(' sits at `open` into
/// top-level (depth-0) argument spans. Returns false on unbalanced code.
bool SplitCallArgs(const std::string& code, std::size_t open,
                   std::vector<std::pair<std::size_t, std::size_t>>* args) {
  const std::size_t close = MatchForward(code, open);
  if (close == kNpos) return false;
  int depth = 0;
  std::size_t begin = open + 1;
  for (std::size_t i = open + 1; i < close; ++i) {
    const char c = code[i];
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
    if (c == ',' && depth == 0) {
      args->emplace_back(begin, i);
      begin = i + 1;
    }
  }
  if (close > begin || args->empty()) args->emplace_back(begin, close);
  return true;
}

void CheckServeReadOnly(const LexedFile& f, std::vector<Finding>* out) {
  if (!StartsWith(f.path, "src/eval/") && !StartsWith(f.path, "src/serve/")) {
    return;
  }
  const std::string& code = f.code;

  // (a) Member calls to EmbeddingMatrix mutators.
  for (const char* mutator :
       {"InitUniform", "InitZero", "SetRow", "AppendRows"}) {
    std::size_t pos = 0;
    while ((pos = FindToken(code, pos, mutator)) != kNpos) {
      const std::size_t hit = pos;
      pos += std::char_traits<char>::length(mutator);
      if (!IsRowMemberCall(code, hit)) continue;
      const std::size_t open = SkipWs(code, pos);
      if (open >= code.size() || code[open] != '(') continue;
      out->push_back(
          {f.path, f.LineAt(hit), kRuleServeReadOnly,
           std::string("embedding mutation `") + mutator +
               "` in the serving read path — eval/ and serve/ score "
               "immutable ModelSnapshots; mutate before publish instead"});
    }
  }

  // (b) Element writes through row(): `m.row(v)[i] = / += / -= ...`.
  std::size_t pos = 0;
  while ((pos = FindToken(code, pos, "row")) != kNpos) {
    const std::size_t row_pos = pos;
    ++pos;
    if (!IsRowMemberCall(code, row_pos)) continue;
    const std::size_t open = SkipWs(code, row_pos + 3);
    if (open >= code.size() || code[open] != '(') continue;
    const std::size_t close = MatchForward(code, open);
    if (close == kNpos) continue;
    const std::size_t bracket = SkipWs(code, close + 1);
    if (bracket >= code.size() || code[bracket] != '[') continue;
    const std::size_t bracket_close = MatchForward(code, bracket);
    if (bracket_close == kNpos) continue;
    const std::size_t after = SkipWs(code, bracket_close + 1);
    if (after >= code.size()) continue;
    const char c0 = code[after];
    const char c1 = after + 1 < code.size() ? code[after + 1] : '\0';
    const bool assign =
        (c0 == '=' && c1 != '=') ||
        ((c0 == '+' || c0 == '-' || c0 == '*' || c0 == '/') && c1 == '=');
    if (assign) {
      out->push_back(
          {f.path, f.LineAt(row_pos), kRuleServeReadOnly,
           "write through row() in the serving read path — published "
           "snapshots are immutable; copy the matrix before mutating"});
    }
  }

  // (c) row() passed as the mutated argument of a mutating kernel.
  struct MutKernel {
    const char* name;
    int mutated[2];  // 0-based arg indices; -1 = unused slot
  };
  static constexpr MutKernel kKernels[] = {
      {"Axpy", {2, -1}},       {"Scale", {1, -1}},
      {"Add", {1, -1}},        {"Copy", {1, -1}},
      {"Zero", {0, -1}},       {"NormalizeInPlace", {0, -1}},
      {"FusedGradStep", {2, 3}}, {"RelaxedStore", {0, -1}},
  };
  for (const MutKernel& kernel : kKernels) {
    std::size_t kpos = 0;
    while ((kpos = FindToken(code, kpos, kernel.name)) != kNpos) {
      const std::size_t hit = kpos;
      kpos += std::char_traits<char>::length(kernel.name);
      const std::size_t open = SkipWs(code, kpos);
      if (open >= code.size() || code[open] != '(') continue;
      std::vector<std::pair<std::size_t, std::size_t>> args;
      if (!SplitCallArgs(code, open, &args)) continue;
      for (const int idx : kernel.mutated) {
        if (idx < 0 || static_cast<std::size_t>(idx) >= args.size()) {
          continue;
        }
        const std::size_t arg_row =
            FindToken(code, args[static_cast<std::size_t>(idx)].first, "row");
        if (arg_row != kNpos &&
            arg_row < args[static_cast<std::size_t>(idx)].second) {
          out->push_back(
              {f.path, f.LineAt(hit), kRuleServeReadOnly,
               std::string("`") + kernel.name +
                   "` mutates an embedding row in the serving read path — "
                   "eval/ and serve/ may only read published snapshots"});
          break;
        }
      }
    }
  }
}

// --- R5: header hygiene ----------------------------------------------------

using IncludeGraph = std::map<std::string, std::vector<const Include*>>;

/// Resolves `inc` as the build would: against the includer's directory,
/// then against src/ (the one include root the build adds).
std::string ResolveInclude(const std::string& includer,
                           const std::string& inc,
                           const std::set<std::string>& known) {
  for (const std::string& candidate :
       {JoinNormalize(DirName(includer), inc), JoinNormalize("src", inc),
        JoinNormalize("", inc)}) {
    if (known.count(candidate) > 0) return candidate;
  }
  return std::string();
}

void CheckIncludeCycles(const std::vector<LexedFile>& lexed,
                        std::vector<Finding>* out) {
  std::set<std::string> known;
  std::map<std::string, const LexedFile*> by_path;
  for (const LexedFile& f : lexed) {
    known.insert(f.path);
    by_path[f.path] = &f;
  }
  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  std::vector<std::string> stack;
  std::set<std::string> seen_cycles;

  std::function<void(const std::string&)> dfs =
      [&](const std::string& node) {
        color[node] = Color::kGray;
        stack.push_back(node);
        for (const Include& inc : by_path.at(node)->includes) {
          const std::string target =
              ResolveInclude(node, inc.path, known);
          if (target.empty()) continue;
          const Color c = color.count(target) > 0 ? color[target]
                                                  : Color::kWhite;
          if (c == Color::kGray) {
            auto it = std::find(stack.begin(), stack.end(), target);
            std::vector<std::string> cycle(it, stack.end());
            auto min_it = std::min_element(cycle.begin(), cycle.end());
            std::rotate(cycle.begin(), min_it, cycle.end());
            std::string key;
            for (const auto& p : cycle) key += p + " -> ";
            if (seen_cycles.insert(key).second) {
              out->push_back({node, inc.line, kRuleIncludeCycle,
                              "include cycle: " + key + cycle.front()});
            }
          } else if (c == Color::kWhite) {
            dfs(target);
          }
        }
        stack.pop_back();
        color[node] = Color::kBlack;
      };
  for (const LexedFile& f : lexed) {
    if (color.count(f.path) == 0) dfs(f.path);
  }
}

/// Runs `cmd` via the shell, captures combined stdout+stderr, returns the
/// exit status (-1 when the shell could not be spawned).
int RunCommand(const std::string& cmd, std::string* output) {
  output->clear();
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return -1;
  char buf[4096];
  std::size_t got = 0;
  while ((got = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    output->append(buf, got);
  }
  return pclose(pipe);
}

std::string ShellQuote(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

std::string FirstErrorLine(const std::string& output) {
  std::istringstream in(output);
  std::string line, first;
  while (std::getline(in, line)) {
    if (first.empty() && !line.empty()) first = line;
    if (line.find("error") != kNpos) return line;
  }
  return first.empty() ? "compiler failed with no output" : first;
}

void CheckHeaderSelfContained(const std::vector<LexedFile>& lexed,
                              const LintConfig& config,
                              std::vector<Finding>* out) {
  std::set<std::string> known;
  std::map<std::string, const LexedFile*> by_path;
  for (const LexedFile& f : lexed) {
    known.insert(f.path);
    by_path[f.path] = &f;
  }
  std::string flags_joined;
  for (const auto& flag : config.compile_flags) flags_joined += flag + "\n";

  // Hash of a header's transitive repo-include closure + compile flags:
  // unchanged hash => the previous stand-alone compile result still holds.
  auto closure_hash = [&](const std::string& header) {
    std::set<std::string> closure;
    std::vector<std::string> queue{header};
    while (!queue.empty()) {
      const std::string cur = queue.back();
      queue.pop_back();
      if (!closure.insert(cur).second) continue;
      for (const Include& inc : by_path.at(cur)->includes) {
        const std::string target = ResolveInclude(cur, inc.path, known);
        if (!target.empty() && closure.count(target) == 0) {
          queue.push_back(target);
        }
      }
    }
    uint64_t h = Fnv1a(flags_joined, 1469598103934665603ULL);
    for (const std::string& p : closure) {
      h = Fnv1a(p, h);
      h = Fnv1a(by_path.at(p)->content, h);
    }
    return h;
  };

  std::map<std::string, uint64_t> cache;
  if (!config.cache_path.empty()) {
    std::ifstream in(config.cache_path);
    std::string hex, path;
    while (in >> hex >> path) {
      cache[path] = std::strtoull(hex.c_str(), nullptr, 16);
    }
  }

  std::vector<std::pair<std::string, uint64_t>> to_check;
  std::map<std::string, uint64_t> verified;
  for (const LexedFile& f : lexed) {
    if (!StartsWith(f.path, "src/") || !EndsWith(f.path, ".h")) continue;
    const uint64_t h = closure_hash(f.path);
    auto it = cache.find(f.path);
    if (it != cache.end() && it->second == h) {
      verified[f.path] = h;  // cache hit — carry forward
    } else {
      to_check.emplace_back(f.path, h);
    }
  }

  auto compile = [&](const std::vector<std::string>& paths,
                     std::string* output) {
    std::string cmd = ShellQuote(config.compiler);
    for (const auto& flag : config.compile_flags) {
      cmd += " " + ShellQuote(flag);
    }
    cmd += " -fsyntax-only -x c++";
    for (const auto& p : paths) {
      cmd += " " + ShellQuote(config.root + "/" + p);
    }
    return RunCommand(cmd, output);
  };

  if (!to_check.empty()) {
    // Fast path: one compiler invocation over every stale header. Only on
    // failure are headers re-checked one by one to attribute the error.
    std::vector<std::string> paths;
    for (const auto& [p, h] : to_check) paths.push_back(p);
    std::string output;
    if (compile(paths, &output) == 0) {
      for (const auto& [p, h] : to_check) verified[p] = h;
    } else {
      for (const auto& [p, h] : to_check) {
        if (compile({p}, &output) == 0) {
          verified[p] = h;
        } else {
          out->push_back({p, 1, kRuleHeaderSelf,
                          "header is not self-contained: " +
                              FirstErrorLine(output)});
        }
      }
    }
  }

  if (!config.cache_path.empty()) {
    std::ofstream cache_out(config.cache_path, std::ios::trunc);
    for (const auto& [p, h] : verified) {
      char hex[24];
      std::snprintf(hex, sizeof(hex), "%016llx",
                    static_cast<unsigned long long>(h));
      cache_out << hex << " " << p << "\n";
    }
  }
}

// --- R6: tests <-> CMake registration --------------------------------------

void CheckTestRegistration(const std::vector<FileEntry>& files,
                           std::vector<Finding>* out) {
  const FileEntry* cmake = nullptr;
  std::vector<const FileEntry*> test_files;
  for (const FileEntry& f : files) {
    if (f.path == "tests/CMakeLists.txt") cmake = &f;
    if (StartsWith(f.path, "tests/") && EndsWith(f.path, "_test.cc")) {
      test_files.push_back(&f);
    }
  }
  if (cmake == nullptr && test_files.empty()) return;

  // Parse actor_test(<name> ...) registrations, comment-aware.
  std::map<std::string, int> registered;  // name -> line
  if (cmake != nullptr) {
    std::istringstream in(cmake->content);
    std::string raw;
    int line_no = 0;
    std::string stripped;
    std::vector<std::size_t> line_starts;
    while (std::getline(in, raw)) {
      ++line_no;
      const std::size_t hash = raw.find('#');
      line_starts.push_back(stripped.size());
      stripped += raw.substr(0, hash == kNpos ? raw.size() : hash);
      stripped += '\n';
    }
    std::size_t pos = 0;
    while ((pos = FindToken(stripped, pos, "actor_test")) != kNpos) {
      const std::size_t at = pos;
      pos += 10;
      std::size_t j = SkipWs(stripped, at + 10);
      if (j >= stripped.size() || stripped[j] != '(') continue;
      j = SkipWs(stripped, j + 1);
      std::string name;
      while (j < stripped.size() && !IsSpace(stripped[j]) &&
             stripped[j] != ')') {
        name += stripped[j++];
      }
      if (name.empty()) continue;
      const int line = static_cast<int>(
          std::upper_bound(line_starts.begin(), line_starts.end(), at) -
          line_starts.begin());
      registered.emplace(name, line);
    }
  }

  std::set<std::string> source_names;
  for (const FileEntry* f : test_files) {
    const std::string name =
        f->path.substr(6, f->path.size() - 6 - 3);  // strip tests/ and .cc
    source_names.insert(name);
    if (registered.count(name) == 0) {
      out->push_back({f->path, 1, kRuleTestReg,
                      "test binary is not registered with actor_test() in "
                      "tests/CMakeLists.txt — it would never run in CI"});
    }
  }
  for (const auto& [name, line] : registered) {
    if (source_names.count(name) == 0) {
      out->push_back({"tests/CMakeLists.txt", line, kRuleTestReg,
                      "actor_test(" + name + ") is registered but tests/" +
                          name + ".cc does not exist"});
    }
  }
}

// --- Suppressions ----------------------------------------------------------

struct Suppression {
  std::string file;
  int target_line = 0;
  int comment_line = 0;
  std::string entry;  // "actor-<rule>" or "actor-*"
  bool used = false;
};

void CollectSuppressions(const LexedFile& f,
                         std::vector<Suppression>* out) {
  for (const Comment& c : f.comments) {
    std::size_t pos = c.text.find("NOLINT");
    if (pos == kNpos) continue;
    std::size_t j = pos + 6;
    bool next_line = false;
    if (c.text.compare(j, 8, "NEXTLINE") == 0) {
      next_line = true;
      j += 8;
    }
    if (j >= c.text.size() || c.text[j] != '(') continue;
    const std::size_t close = c.text.find(')', j);
    if (close == kNpos) continue;
    std::string list = c.text.substr(j + 1, close - j - 1);
    std::size_t b = 0;
    while (b <= list.size()) {
      const std::size_t e = std::min(list.find(',', b), list.size());
      std::string entry = list.substr(b, e - b);
      const std::size_t lead = entry.find_first_not_of(" \t");
      const std::size_t trail = entry.find_last_not_of(" \t");
      entry = lead == kNpos
                  ? std::string()
                  : entry.substr(lead, trail - lead + 1);
      if (StartsWith(entry, "actor-")) {
        out->push_back({f.path, next_line ? c.line + 1 : c.line, c.line,
                        entry, false});
      }
      b = e + 1;
    }
  }
}

}  // namespace

std::vector<Finding> LintRepo(const std::vector<FileEntry>& files,
                              const LintConfig& config) {
  std::vector<LexedFile> lexed;
  for (const FileEntry& f : files) {
    if (EndsWith(f.path, ".cc") || EndsWith(f.path, ".cpp") ||
        EndsWith(f.path, ".h")) {
      lexed.push_back(Lex(f.path, f.content));
    }
  }

  std::vector<Finding> findings;
  for (const LexedFile& f : lexed) {
    CheckThread(f, &findings);
    CheckRng(f, &findings);
    CheckSimdAligned(f, &findings);
    CheckHogwild(f, &findings);
    CheckServeReadOnly(f, &findings);
  }
  CheckIncludeCycles(lexed, &findings);
  if (config.compile_headers) {
    CheckHeaderSelfContained(lexed, config, &findings);
  }
  CheckTestRegistration(files, &findings);

  std::vector<Suppression> suppressions;
  for (const LexedFile& f : lexed) {
    CollectSuppressions(f, &suppressions);
  }
  std::vector<Finding> surviving;
  for (Finding& finding : findings) {
    bool suppressed = false;
    for (Suppression& s : suppressions) {
      if (s.file == finding.file && s.target_line == finding.line &&
          (s.entry == "actor-*" || s.entry == finding.rule)) {
        s.used = true;
        suppressed = true;
      }
    }
    if (!suppressed) surviving.push_back(std::move(finding));
  }
  for (const Suppression& s : suppressions) {
    if (!s.used) {
      surviving.push_back(
          {s.file, s.comment_line, kRuleStaleNolint,
           "NOLINT(" + s.entry +
               ") no longer suppresses anything — remove it so silenced "
               "findings cannot rot"});
    }
  }

  std::sort(surviving.begin(), surviving.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return surviving;
}

std::string FormatFindingsText(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
           f.message + "\n";
  }
  return out;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string FormatFindingsJson(const std::vector<Finding>& findings) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += "  {\"file\": \"" + JsonEscape(f.file) +
           "\", \"line\": " + std::to_string(f.line) + ", \"rule\": \"" +
           JsonEscape(f.rule) + "\", \"message\": \"" +
           JsonEscape(f.message) + "\"}";
    out += i + 1 < findings.size() ? ",\n" : "\n";
  }
  out += "]\n";
  return out;
}

}  // namespace actor_lint
