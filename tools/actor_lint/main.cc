// actor-lint: compile-commands-driven static analyzer for the ACTOR repo.
//
// Usage:
//   actor_lint [--root=DIR] [--json] [--sarif] [--no-header-compile]
//              [--compiler=CXX] [--compile-db=PATH] [--cache=PATH]
//              [--symbols=PATH] [--cfg=PATH] [--changed-only] [--jobs=N]
//              [--fix] [--fix-dry-run] [--dump-callgraph=dot]
//
// Walks src/ tests/ bench/ examples/ under --root (the file list always
// comes from the walk — compile_commands.json typically omits headers and
// unregistered tests), lifts include/define/standard flags from the first
// compile-commands entry when present, and runs every rule. --symbols
// persists the per-file symbol-index cache (and the --changed-only
// baseline); --cfg persists the per-function CFG cache (defaults to
// <symbols>.cfg) — both caches are stamped with the rule-set version and
// the analyzer binary hash, so an analyzer upgrade invalidates them.
// --changed-only restricts per-file rules to files whose content changed
// since the cached run, files the last run left findings in, and their
// call-graph/include neighborhood. --jobs bounds the worker threads for
// cold-start header compiles. --sarif emits a SARIF 2.1.0 log on stdout
// (for GitHub code scanning). --fix applies the mechanical fixes carried
// by findings (stale NOLINT entries, redundant hogwild-region
// annotations) in place; --fix-dry-run prints the would-be hunks instead.
// --dump-callgraph=dot prints the interprocedural call graph (Graphviz)
// and exits. Exit status: 0 clean, 1 findings, 2 usage/internal error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "rules.h"
#include "symbols.h"

namespace fs = std::filesystem;

namespace {

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool HasSuffix(const std::string& s, const char* suffix) {
  const std::size_t len = std::strlen(suffix);
  return s.size() >= len && s.compare(s.size() - len, len, suffix) == 0;
}

/// Extracts -I/-D/-isystem/-std= flags from the first "command" entry of a
/// compile_commands.json. A full JSON parser is overkill for the one field
/// we need: find `"command"`, take its string value, split on spaces
/// (CMake-generated commands never embed quoted spaces in these flags).
std::vector<std::string> FlagsFromCompileDb(const std::string& json) {
  std::vector<std::string> flags;
  const std::size_t key = json.find("\"command\"");
  if (key == std::string::npos) return flags;
  const std::size_t open = json.find('"', json.find(':', key));
  if (open == std::string::npos) return flags;
  std::string cmd;
  for (std::size_t i = open + 1; i < json.size() && json[i] != '"'; ++i) {
    if (json[i] == '\\' && i + 1 < json.size()) ++i;
    cmd += json[i];
  }
  std::istringstream in(cmd);
  std::string tok;
  while (in >> tok) {
    if (tok == "-isystem") {
      std::string dir;
      if (in >> dir) {
        flags.push_back(tok);
        flags.push_back(dir);
      }
    } else if (tok.rfind("-I", 0) == 0 || tok.rfind("-D", 0) == 0 ||
               tok.rfind("-std=", 0) == 0) {
      flags.push_back(tok);
    }
  }
  return flags;
}

/// "r<rule-set>-<binary hash>": both a rule bump and an analyzer rebuild
/// change the stamp, invalidating stale symbol/CFG caches wholesale.
std::string CacheStamp(const char* argv0) {
  std::string self;
  if (!ReadFile("/proc/self/exe", &self) && !ReadFile(argv0, &self)) {
    self = argv0;  // hash the name — still invalidates on rule-set bumps
  }
  char hex[24];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(
                    actor_lint::Fnv1a(self, 1469598103934665603ULL)));
  return std::string("r") + std::to_string(actor_lint::kRuleSetVersion) +
         "-" + hex;
}

/// Minimal per-fix hunks against the original content (diff-style).
void PrintFixHunks(const std::string& path, const std::string& content,
                   const std::vector<actor_lint::Finding>& findings) {
  bool any = false;
  for (const actor_lint::Finding& f : findings) {
    if (!f.has_fix || f.file != path || f.fix_end > content.size()) continue;
    if (!any) std::printf("--- %s\n", path.c_str());
    any = true;
    std::size_t ls = f.fix_begin == 0
                         ? std::string::npos
                         : content.rfind('\n', f.fix_begin - 1);
    ls = ls == std::string::npos ? 0 : ls + 1;
    std::size_t le = content.find('\n', f.fix_end);
    le = le == std::string::npos ? content.size() : le;
    std::printf("@@ %s:%d\n", path.c_str(), f.line);
    const std::string before = content.substr(ls, le - ls);
    const std::string after = content.substr(ls, f.fix_begin - ls) +
                              f.fix_text +
                              content.substr(f.fix_end, le - f.fix_end);
    std::istringstream bs(before), as(after);
    std::string line;
    while (std::getline(bs, line)) std::printf("-%s\n", line.c_str());
    while (std::getline(as, line)) std::printf("+%s\n", line.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string compiler = "c++";
  std::string compile_db;
  std::string cache_path;
  std::string symbols_path;
  std::string cfg_path;
  std::string dump_callgraph;
  bool json = false;
  bool sarif = false;
  bool fix = false;
  bool fix_dry_run = false;
  bool header_compile = true;
  bool changed_only = false;
  int jobs = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* flag) {
      return arg.substr(std::strlen(flag));
    };
    if (arg.rfind("--root=", 0) == 0) {
      root = value("--root=");
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--sarif") {
      sarif = true;
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg == "--fix-dry-run") {
      fix_dry_run = true;
    } else if (arg.rfind("--cfg=", 0) == 0) {
      cfg_path = value("--cfg=");
    } else if (arg == "--no-header-compile") {
      header_compile = false;
    } else if (arg == "--changed-only") {
      changed_only = true;
    } else if (arg.rfind("--compiler=", 0) == 0) {
      compiler = value("--compiler=");
    } else if (arg.rfind("--compile-db=", 0) == 0) {
      compile_db = value("--compile-db=");
    } else if (arg.rfind("--cache=", 0) == 0) {
      cache_path = value("--cache=");
    } else if (arg.rfind("--symbols=", 0) == 0) {
      symbols_path = value("--symbols=");
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs = std::atoi(value("--jobs=").c_str());
    } else if (arg.rfind("--dump-callgraph=", 0) == 0) {
      dump_callgraph = value("--dump-callgraph=");
      if (dump_callgraph != "dot") {
        std::fprintf(stderr,
                     "actor_lint: unsupported --dump-callgraph format "
                     "'%s' (only 'dot')\n",
                     dump_callgraph.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "actor_lint: unknown argument '%s'\n"
                   "usage: actor_lint [--root=DIR] [--json] [--sarif] "
                   "[--no-header-compile] [--compiler=CXX] "
                   "[--compile-db=PATH] [--cache=PATH] [--symbols=PATH] "
                   "[--cfg=PATH] [--changed-only] [--jobs=N] [--fix] "
                   "[--fix-dry-run] [--dump-callgraph=dot]\n",
                   arg.c_str());
      return 2;
    }
  }
  if (compile_db.empty()) {
    compile_db = root + "/build/compile_commands.json";
  }

  std::vector<actor_lint::FileEntry> files;
  for (const char* dir : {"src", "tests", "bench", "examples"}) {
    const fs::path base = fs::path(root) / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) continue;
    for (const auto& entry :
         fs::recursive_directory_iterator(base, ec)) {
      if (!entry.is_regular_file()) continue;
      const std::string rel =
          fs::relative(entry.path(), root).generic_string();
      if (!HasSuffix(rel, ".cc") && !HasSuffix(rel, ".cpp") &&
          !HasSuffix(rel, ".h") && !HasSuffix(rel, "CMakeLists.txt")) {
        continue;
      }
      std::string content;
      if (!ReadFile(entry.path(), &content)) {
        std::fprintf(stderr, "actor_lint: cannot read %s\n", rel.c_str());
        return 2;
      }
      files.push_back({rel, std::move(content)});
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "actor_lint: no sources found under %s\n",
                 root.c_str());
    return 2;
  }

  if (!dump_callgraph.empty()) {
    std::fputs(actor_lint::DumpCallGraph(files).c_str(), stdout);
    return 0;
  }

  actor_lint::LintConfig config;
  config.root = root;
  config.compiler = compiler;
  config.compile_headers = header_compile;
  config.cache_path = cache_path;
  config.symbol_cache_path = symbols_path;
  config.cfg_cache_path = cfg_path.empty() && !symbols_path.empty()
                              ? symbols_path + ".cfg"
                              : cfg_path;
  config.cache_stamp = CacheStamp(argv[0]);
  config.changed_only = changed_only;
  config.compile_jobs = jobs;
  std::string db_json;
  if (ReadFile(compile_db, &db_json)) {
    config.compile_flags = FlagsFromCompileDb(db_json);
  }
  if (config.compile_flags.empty()) {
    // No build tree yet — fall back to the project's canonical flags.
    config.compile_flags = {"-std=c++20", "-I" + root + "/src"};
  }

  const std::vector<actor_lint::Finding> findings =
      actor_lint::LintRepo(files, config);

  if (fix || fix_dry_run) {
    std::size_t fixable = 0, applied = 0;
    for (const actor_lint::Finding& f : findings) {
      if (f.has_fix) ++fixable;
    }
    for (const actor_lint::FileEntry& file : files) {
      const std::string fixed =
          actor_lint::ApplyFixes(file.path, file.content, findings);
      if (fixed == file.content) continue;
      if (fix_dry_run) {
        PrintFixHunks(file.path, file.content, findings);
      } else {
        std::ofstream out(fs::path(root) / file.path,
                          std::ios::trunc | std::ios::binary);
        out << fixed;
        ++applied;
      }
    }
    std::fprintf(stderr,
                 "actor_lint: %zu mechanical fix(es) %s across %zu file(s)\n",
                 fixable, fix_dry_run ? "available" : "applied", applied);
    if (!fix_dry_run) {
      // Report only what --fix cannot solve; the fixed findings are gone
      // from the tree now.
      std::vector<actor_lint::Finding> remaining;
      for (const actor_lint::Finding& f : findings) {
        if (!f.has_fix) remaining.push_back(f);
      }
      std::fputs(actor_lint::FormatFindingsText(remaining).c_str(), stdout);
      return remaining.empty() ? 0 : 1;
    }
  }

  if (sarif) {
    std::fputs(actor_lint::FormatFindingsSarif(findings).c_str(), stdout);
  } else if (json) {
    std::fputs(actor_lint::FormatFindingsJson(findings).c_str(), stdout);
  } else {
    std::fputs(actor_lint::FormatFindingsText(findings).c_str(), stdout);
  }
  std::fprintf(stderr, "actor_lint: %zu file(s), %zu finding(s)\n",
               files.size(), findings.size());
  return findings.empty() ? 0 : 1;
}
