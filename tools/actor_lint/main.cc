// actor-lint: compile-commands-driven static analyzer for the ACTOR repo.
//
// Usage:
//   actor_lint [--root=DIR] [--json] [--no-header-compile]
//              [--compiler=CXX] [--compile-db=PATH] [--cache=PATH]
//              [--symbols=PATH] [--changed-only] [--jobs=N]
//              [--dump-callgraph=dot]
//
// Walks src/ tests/ bench/ examples/ under --root (the file list always
// comes from the walk — compile_commands.json typically omits headers and
// unregistered tests), lifts include/define/standard flags from the first
// compile-commands entry when present, and runs every rule. --symbols
// persists the per-file symbol-index cache (and the --changed-only
// baseline); --changed-only restricts per-file rules to files whose
// content changed since the cached run, files the last run left findings
// in, and their call-graph/include neighborhood. --jobs bounds the worker
// threads for cold-start header compiles. --dump-callgraph=dot prints the
// interprocedural call graph (Graphviz) and exits. Exit status: 0 clean,
// 1 findings, 2 usage/internal error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "rules.h"

namespace fs = std::filesystem;

namespace {

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool HasSuffix(const std::string& s, const char* suffix) {
  const std::size_t len = std::strlen(suffix);
  return s.size() >= len && s.compare(s.size() - len, len, suffix) == 0;
}

/// Extracts -I/-D/-isystem/-std= flags from the first "command" entry of a
/// compile_commands.json. A full JSON parser is overkill for the one field
/// we need: find `"command"`, take its string value, split on spaces
/// (CMake-generated commands never embed quoted spaces in these flags).
std::vector<std::string> FlagsFromCompileDb(const std::string& json) {
  std::vector<std::string> flags;
  const std::size_t key = json.find("\"command\"");
  if (key == std::string::npos) return flags;
  const std::size_t open = json.find('"', json.find(':', key));
  if (open == std::string::npos) return flags;
  std::string cmd;
  for (std::size_t i = open + 1; i < json.size() && json[i] != '"'; ++i) {
    if (json[i] == '\\' && i + 1 < json.size()) ++i;
    cmd += json[i];
  }
  std::istringstream in(cmd);
  std::string tok;
  while (in >> tok) {
    if (tok == "-isystem") {
      std::string dir;
      if (in >> dir) {
        flags.push_back(tok);
        flags.push_back(dir);
      }
    } else if (tok.rfind("-I", 0) == 0 || tok.rfind("-D", 0) == 0 ||
               tok.rfind("-std=", 0) == 0) {
      flags.push_back(tok);
    }
  }
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string compiler = "c++";
  std::string compile_db;
  std::string cache_path;
  std::string symbols_path;
  std::string dump_callgraph;
  bool json = false;
  bool header_compile = true;
  bool changed_only = false;
  int jobs = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* flag) {
      return arg.substr(std::strlen(flag));
    };
    if (arg.rfind("--root=", 0) == 0) {
      root = value("--root=");
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--no-header-compile") {
      header_compile = false;
    } else if (arg == "--changed-only") {
      changed_only = true;
    } else if (arg.rfind("--compiler=", 0) == 0) {
      compiler = value("--compiler=");
    } else if (arg.rfind("--compile-db=", 0) == 0) {
      compile_db = value("--compile-db=");
    } else if (arg.rfind("--cache=", 0) == 0) {
      cache_path = value("--cache=");
    } else if (arg.rfind("--symbols=", 0) == 0) {
      symbols_path = value("--symbols=");
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs = std::atoi(value("--jobs=").c_str());
    } else if (arg.rfind("--dump-callgraph=", 0) == 0) {
      dump_callgraph = value("--dump-callgraph=");
      if (dump_callgraph != "dot") {
        std::fprintf(stderr,
                     "actor_lint: unsupported --dump-callgraph format "
                     "'%s' (only 'dot')\n",
                     dump_callgraph.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "actor_lint: unknown argument '%s'\n"
                   "usage: actor_lint [--root=DIR] [--json] "
                   "[--no-header-compile] [--compiler=CXX] "
                   "[--compile-db=PATH] [--cache=PATH] [--symbols=PATH] "
                   "[--changed-only] [--jobs=N] [--dump-callgraph=dot]\n",
                   arg.c_str());
      return 2;
    }
  }
  if (compile_db.empty()) {
    compile_db = root + "/build/compile_commands.json";
  }

  std::vector<actor_lint::FileEntry> files;
  for (const char* dir : {"src", "tests", "bench", "examples"}) {
    const fs::path base = fs::path(root) / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) continue;
    for (const auto& entry :
         fs::recursive_directory_iterator(base, ec)) {
      if (!entry.is_regular_file()) continue;
      const std::string rel =
          fs::relative(entry.path(), root).generic_string();
      if (!HasSuffix(rel, ".cc") && !HasSuffix(rel, ".cpp") &&
          !HasSuffix(rel, ".h") && !HasSuffix(rel, "CMakeLists.txt")) {
        continue;
      }
      std::string content;
      if (!ReadFile(entry.path(), &content)) {
        std::fprintf(stderr, "actor_lint: cannot read %s\n", rel.c_str());
        return 2;
      }
      files.push_back({rel, std::move(content)});
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "actor_lint: no sources found under %s\n",
                 root.c_str());
    return 2;
  }

  if (!dump_callgraph.empty()) {
    std::fputs(actor_lint::DumpCallGraph(files).c_str(), stdout);
    return 0;
  }

  actor_lint::LintConfig config;
  config.root = root;
  config.compiler = compiler;
  config.compile_headers = header_compile;
  config.cache_path = cache_path;
  config.symbol_cache_path = symbols_path;
  config.changed_only = changed_only;
  config.compile_jobs = jobs;
  std::string db_json;
  if (ReadFile(compile_db, &db_json)) {
    config.compile_flags = FlagsFromCompileDb(db_json);
  }
  if (config.compile_flags.empty()) {
    // No build tree yet — fall back to the project's canonical flags.
    config.compile_flags = {"-std=c++20", "-I" + root + "/src"};
  }

  const std::vector<actor_lint::Finding> findings =
      actor_lint::LintRepo(files, config);
  if (json) {
    std::fputs(actor_lint::FormatFindingsJson(findings).c_str(), stdout);
  } else {
    std::fputs(actor_lint::FormatFindingsText(findings).c_str(), stdout);
  }
  std::fprintf(stderr, "actor_lint: %zu file(s), %zu finding(s)\n",
               files.size(), findings.size());
  return findings.empty() ? 0 : 1;
}
