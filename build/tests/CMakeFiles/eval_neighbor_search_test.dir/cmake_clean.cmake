file(REMOVE_RECURSE
  "CMakeFiles/eval_neighbor_search_test.dir/eval_neighbor_search_test.cc.o"
  "CMakeFiles/eval_neighbor_search_test.dir/eval_neighbor_search_test.cc.o.d"
  "eval_neighbor_search_test"
  "eval_neighbor_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_neighbor_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
