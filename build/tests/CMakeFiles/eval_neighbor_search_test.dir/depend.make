# Empty dependencies file for eval_neighbor_search_test.
# This may be replaced when dependencies are built.
