# Empty dependencies file for data_phrase_detector_test.
# This may be replaced when dependencies are built.
