file(REMOVE_RECURSE
  "CMakeFiles/data_phrase_detector_test.dir/data_phrase_detector_test.cc.o"
  "CMakeFiles/data_phrase_detector_test.dir/data_phrase_detector_test.cc.o.d"
  "data_phrase_detector_test"
  "data_phrase_detector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_phrase_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
