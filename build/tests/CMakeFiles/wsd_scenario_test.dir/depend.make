# Empty dependencies file for wsd_scenario_test.
# This may be replaced when dependencies are built.
