file(REMOVE_RECURSE
  "CMakeFiles/wsd_scenario_test.dir/wsd_scenario_test.cc.o"
  "CMakeFiles/wsd_scenario_test.dir/wsd_scenario_test.cc.o.d"
  "wsd_scenario_test"
  "wsd_scenario_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsd_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
