# Empty compiler generated dependencies file for data_record_test.
# This may be replaced when dependencies are built.
