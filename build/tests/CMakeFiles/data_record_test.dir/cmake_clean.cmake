file(REMOVE_RECURSE
  "CMakeFiles/data_record_test.dir/data_record_test.cc.o"
  "CMakeFiles/data_record_test.dir/data_record_test.cc.o.d"
  "data_record_test"
  "data_record_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_record_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
