file(REMOVE_RECURSE
  "CMakeFiles/data_vocabulary_test.dir/data_vocabulary_test.cc.o"
  "CMakeFiles/data_vocabulary_test.dir/data_vocabulary_test.cc.o.d"
  "data_vocabulary_test"
  "data_vocabulary_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_vocabulary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
