# Empty compiler generated dependencies file for data_vocabulary_test.
# This may be replaced when dependencies are built.
