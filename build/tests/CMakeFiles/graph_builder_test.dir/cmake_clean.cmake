file(REMOVE_RECURSE
  "CMakeFiles/graph_builder_test.dir/graph_builder_test.cc.o"
  "CMakeFiles/graph_builder_test.dir/graph_builder_test.cc.o.d"
  "graph_builder_test"
  "graph_builder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
