file(REMOVE_RECURSE
  "CMakeFiles/hotspot_detector_test.dir/hotspot_detector_test.cc.o"
  "CMakeFiles/hotspot_detector_test.dir/hotspot_detector_test.cc.o.d"
  "hotspot_detector_test"
  "hotspot_detector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
