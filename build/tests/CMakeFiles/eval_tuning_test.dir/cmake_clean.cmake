file(REMOVE_RECURSE
  "CMakeFiles/eval_tuning_test.dir/eval_tuning_test.cc.o"
  "CMakeFiles/eval_tuning_test.dir/eval_tuning_test.cc.o.d"
  "eval_tuning_test"
  "eval_tuning_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_tuning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
