# Empty dependencies file for eval_tuning_test.
# This may be replaced when dependencies are built.
