# Empty dependencies file for util_vec_math_test.
# This may be replaced when dependencies are built.
