file(REMOVE_RECURSE
  "CMakeFiles/util_vec_math_test.dir/util_vec_math_test.cc.o"
  "CMakeFiles/util_vec_math_test.dir/util_vec_math_test.cc.o.d"
  "util_vec_math_test"
  "util_vec_math_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_vec_math_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
