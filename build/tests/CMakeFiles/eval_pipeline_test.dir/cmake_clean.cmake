file(REMOVE_RECURSE
  "CMakeFiles/eval_pipeline_test.dir/eval_pipeline_test.cc.o"
  "CMakeFiles/eval_pipeline_test.dir/eval_pipeline_test.cc.o.d"
  "eval_pipeline_test"
  "eval_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
