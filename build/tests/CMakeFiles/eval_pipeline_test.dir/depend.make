# Empty dependencies file for eval_pipeline_test.
# This may be replaced when dependencies are built.
