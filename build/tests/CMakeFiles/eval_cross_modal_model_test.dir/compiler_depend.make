# Empty compiler generated dependencies file for eval_cross_modal_model_test.
# This may be replaced when dependencies are built.
