# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for eval_cross_modal_model_test.
