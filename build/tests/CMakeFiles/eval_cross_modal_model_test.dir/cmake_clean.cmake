file(REMOVE_RECURSE
  "CMakeFiles/eval_cross_modal_model_test.dir/eval_cross_modal_model_test.cc.o"
  "CMakeFiles/eval_cross_modal_model_test.dir/eval_cross_modal_model_test.cc.o.d"
  "eval_cross_modal_model_test"
  "eval_cross_modal_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_cross_modal_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
