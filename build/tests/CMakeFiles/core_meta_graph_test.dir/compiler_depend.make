# Empty compiler generated dependencies file for core_meta_graph_test.
# This may be replaced when dependencies are built.
