file(REMOVE_RECURSE
  "CMakeFiles/core_meta_graph_test.dir/core_meta_graph_test.cc.o"
  "CMakeFiles/core_meta_graph_test.dir/core_meta_graph_test.cc.o.d"
  "core_meta_graph_test"
  "core_meta_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_meta_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
