file(REMOVE_RECURSE
  "CMakeFiles/graph_types_test.dir/graph_types_test.cc.o"
  "CMakeFiles/graph_types_test.dir/graph_types_test.cc.o.d"
  "graph_types_test"
  "graph_types_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_types_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
