# Empty dependencies file for embedding_sgd_test.
# This may be replaced when dependencies are built.
