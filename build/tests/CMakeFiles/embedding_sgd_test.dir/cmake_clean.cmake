file(REMOVE_RECURSE
  "CMakeFiles/embedding_sgd_test.dir/embedding_sgd_test.cc.o"
  "CMakeFiles/embedding_sgd_test.dir/embedding_sgd_test.cc.o.d"
  "embedding_sgd_test"
  "embedding_sgd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding_sgd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
