file(REMOVE_RECURSE
  "CMakeFiles/hotspot_property_test.dir/hotspot_property_test.cc.o"
  "CMakeFiles/hotspot_property_test.dir/hotspot_property_test.cc.o.d"
  "hotspot_property_test"
  "hotspot_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
