# Empty dependencies file for hotspot_property_test.
# This may be replaced when dependencies are built.
