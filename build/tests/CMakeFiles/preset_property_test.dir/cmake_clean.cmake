file(REMOVE_RECURSE
  "CMakeFiles/preset_property_test.dir/preset_property_test.cc.o"
  "CMakeFiles/preset_property_test.dir/preset_property_test.cc.o.d"
  "preset_property_test"
  "preset_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preset_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
