# Empty dependencies file for preset_property_test.
# This may be replaced when dependencies are built.
