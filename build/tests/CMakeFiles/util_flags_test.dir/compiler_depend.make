# Empty compiler generated dependencies file for util_flags_test.
# This may be replaced when dependencies are built.
