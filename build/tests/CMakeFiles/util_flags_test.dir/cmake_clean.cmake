file(REMOVE_RECURSE
  "CMakeFiles/util_flags_test.dir/util_flags_test.cc.o"
  "CMakeFiles/util_flags_test.dir/util_flags_test.cc.o.d"
  "util_flags_test"
  "util_flags_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_flags_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
