file(REMOVE_RECURSE
  "CMakeFiles/baselines_geo_topic_test.dir/baselines_geo_topic_test.cc.o"
  "CMakeFiles/baselines_geo_topic_test.dir/baselines_geo_topic_test.cc.o.d"
  "baselines_geo_topic_test"
  "baselines_geo_topic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_geo_topic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
