# Empty compiler generated dependencies file for baselines_geo_topic_test.
# This may be replaced when dependencies are built.
