# Empty dependencies file for hotspot_kde_test.
# This may be replaced when dependencies are built.
