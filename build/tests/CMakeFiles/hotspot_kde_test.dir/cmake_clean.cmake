file(REMOVE_RECURSE
  "CMakeFiles/hotspot_kde_test.dir/hotspot_kde_test.cc.o"
  "CMakeFiles/hotspot_kde_test.dir/hotspot_kde_test.cc.o.d"
  "hotspot_kde_test"
  "hotspot_kde_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_kde_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
