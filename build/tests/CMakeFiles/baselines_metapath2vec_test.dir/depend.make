# Empty dependencies file for baselines_metapath2vec_test.
# This may be replaced when dependencies are built.
