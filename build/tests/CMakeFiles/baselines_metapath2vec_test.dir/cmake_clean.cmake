file(REMOVE_RECURSE
  "CMakeFiles/baselines_metapath2vec_test.dir/baselines_metapath2vec_test.cc.o"
  "CMakeFiles/baselines_metapath2vec_test.dir/baselines_metapath2vec_test.cc.o.d"
  "baselines_metapath2vec_test"
  "baselines_metapath2vec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_metapath2vec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
