file(REMOVE_RECURSE
  "CMakeFiles/graph_node2vec_test.dir/graph_node2vec_test.cc.o"
  "CMakeFiles/graph_node2vec_test.dir/graph_node2vec_test.cc.o.d"
  "graph_node2vec_test"
  "graph_node2vec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_node2vec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
