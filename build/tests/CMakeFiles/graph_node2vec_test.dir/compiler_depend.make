# Empty compiler generated dependencies file for graph_node2vec_test.
# This may be replaced when dependencies are built.
