# Empty compiler generated dependencies file for baselines_crossmap_test.
# This may be replaced when dependencies are built.
