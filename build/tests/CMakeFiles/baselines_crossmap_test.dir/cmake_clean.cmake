file(REMOVE_RECURSE
  "CMakeFiles/baselines_crossmap_test.dir/baselines_crossmap_test.cc.o"
  "CMakeFiles/baselines_crossmap_test.dir/baselines_crossmap_test.cc.o.d"
  "baselines_crossmap_test"
  "baselines_crossmap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_crossmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
