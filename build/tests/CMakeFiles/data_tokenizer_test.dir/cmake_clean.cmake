file(REMOVE_RECURSE
  "CMakeFiles/data_tokenizer_test.dir/data_tokenizer_test.cc.o"
  "CMakeFiles/data_tokenizer_test.dir/data_tokenizer_test.cc.o.d"
  "data_tokenizer_test"
  "data_tokenizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_tokenizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
