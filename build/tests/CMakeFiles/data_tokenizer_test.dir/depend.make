# Empty dependencies file for data_tokenizer_test.
# This may be replaced when dependencies are built.
