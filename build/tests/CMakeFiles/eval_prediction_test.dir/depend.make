# Empty dependencies file for eval_prediction_test.
# This may be replaced when dependencies are built.
