file(REMOVE_RECURSE
  "CMakeFiles/eval_prediction_test.dir/eval_prediction_test.cc.o"
  "CMakeFiles/eval_prediction_test.dir/eval_prediction_test.cc.o.d"
  "eval_prediction_test"
  "eval_prediction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_prediction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
