# Empty dependencies file for embedding_matrix_test.
# This may be replaced when dependencies are built.
