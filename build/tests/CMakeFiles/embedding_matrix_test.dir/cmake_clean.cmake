file(REMOVE_RECURSE
  "CMakeFiles/embedding_matrix_test.dir/embedding_matrix_test.cc.o"
  "CMakeFiles/embedding_matrix_test.dir/embedding_matrix_test.cc.o.d"
  "embedding_matrix_test"
  "embedding_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
