file(REMOVE_RECURSE
  "CMakeFiles/graph_heterograph_test.dir/graph_heterograph_test.cc.o"
  "CMakeFiles/graph_heterograph_test.dir/graph_heterograph_test.cc.o.d"
  "graph_heterograph_test"
  "graph_heterograph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_heterograph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
