# Empty compiler generated dependencies file for graph_heterograph_test.
# This may be replaced when dependencies are built.
