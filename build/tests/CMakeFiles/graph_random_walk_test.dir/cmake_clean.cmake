file(REMOVE_RECURSE
  "CMakeFiles/graph_random_walk_test.dir/graph_random_walk_test.cc.o"
  "CMakeFiles/graph_random_walk_test.dir/graph_random_walk_test.cc.o.d"
  "graph_random_walk_test"
  "graph_random_walk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_random_walk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
