# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for graph_random_walk_test.
