# Empty dependencies file for graph_random_walk_test.
# This may be replaced when dependencies are built.
