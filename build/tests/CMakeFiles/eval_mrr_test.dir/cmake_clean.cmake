file(REMOVE_RECURSE
  "CMakeFiles/eval_mrr_test.dir/eval_mrr_test.cc.o"
  "CMakeFiles/eval_mrr_test.dir/eval_mrr_test.cc.o.d"
  "eval_mrr_test"
  "eval_mrr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_mrr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
