# Empty dependencies file for graph_alias_table_test.
# This may be replaced when dependencies are built.
