file(REMOVE_RECURSE
  "CMakeFiles/graph_alias_table_test.dir/graph_alias_table_test.cc.o"
  "CMakeFiles/graph_alias_table_test.dir/graph_alias_table_test.cc.o.d"
  "graph_alias_table_test"
  "graph_alias_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_alias_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
