file(REMOVE_RECURSE
  "CMakeFiles/hotspot_mean_shift_test.dir/hotspot_mean_shift_test.cc.o"
  "CMakeFiles/hotspot_mean_shift_test.dir/hotspot_mean_shift_test.cc.o.d"
  "hotspot_mean_shift_test"
  "hotspot_mean_shift_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_mean_shift_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
