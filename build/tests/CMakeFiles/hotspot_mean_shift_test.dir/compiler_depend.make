# Empty compiler generated dependencies file for hotspot_mean_shift_test.
# This may be replaced when dependencies are built.
