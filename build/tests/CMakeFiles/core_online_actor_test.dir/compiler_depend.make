# Empty compiler generated dependencies file for core_online_actor_test.
# This may be replaced when dependencies are built.
