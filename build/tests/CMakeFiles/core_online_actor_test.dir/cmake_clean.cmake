file(REMOVE_RECURSE
  "CMakeFiles/core_online_actor_test.dir/core_online_actor_test.cc.o"
  "CMakeFiles/core_online_actor_test.dir/core_online_actor_test.cc.o.d"
  "core_online_actor_test"
  "core_online_actor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_online_actor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
