file(REMOVE_RECURSE
  "CMakeFiles/util_thread_pool_test.dir/util_thread_pool_test.cc.o"
  "CMakeFiles/util_thread_pool_test.dir/util_thread_pool_test.cc.o.d"
  "util_thread_pool_test"
  "util_thread_pool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_thread_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
