# Empty dependencies file for core_actor_test.
# This may be replaced when dependencies are built.
