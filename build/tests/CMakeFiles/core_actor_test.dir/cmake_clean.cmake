file(REMOVE_RECURSE
  "CMakeFiles/core_actor_test.dir/core_actor_test.cc.o"
  "CMakeFiles/core_actor_test.dir/core_actor_test.cc.o.d"
  "core_actor_test"
  "core_actor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_actor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
