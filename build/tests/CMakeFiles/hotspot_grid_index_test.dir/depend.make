# Empty dependencies file for hotspot_grid_index_test.
# This may be replaced when dependencies are built.
