file(REMOVE_RECURSE
  "CMakeFiles/hotspot_grid_index_test.dir/hotspot_grid_index_test.cc.o"
  "CMakeFiles/hotspot_grid_index_test.dir/hotspot_grid_index_test.cc.o.d"
  "hotspot_grid_index_test"
  "hotspot_grid_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_grid_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
