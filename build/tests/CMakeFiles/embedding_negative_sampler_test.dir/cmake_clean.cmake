file(REMOVE_RECURSE
  "CMakeFiles/embedding_negative_sampler_test.dir/embedding_negative_sampler_test.cc.o"
  "CMakeFiles/embedding_negative_sampler_test.dir/embedding_negative_sampler_test.cc.o.d"
  "embedding_negative_sampler_test"
  "embedding_negative_sampler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding_negative_sampler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
