# Empty dependencies file for embedding_negative_sampler_test.
# This may be replaced when dependencies are built.
