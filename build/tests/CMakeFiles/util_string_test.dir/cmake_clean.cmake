file(REMOVE_RECURSE
  "CMakeFiles/util_string_test.dir/util_string_test.cc.o"
  "CMakeFiles/util_string_test.dir/util_string_test.cc.o.d"
  "util_string_test"
  "util_string_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_string_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
