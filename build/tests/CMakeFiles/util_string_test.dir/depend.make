# Empty dependencies file for util_string_test.
# This may be replaced when dependencies are built.
