file(REMOVE_RECURSE
  "CMakeFiles/graph_proximity_test.dir/graph_proximity_test.cc.o"
  "CMakeFiles/graph_proximity_test.dir/graph_proximity_test.cc.o.d"
  "graph_proximity_test"
  "graph_proximity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_proximity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
