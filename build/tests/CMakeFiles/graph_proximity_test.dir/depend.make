# Empty dependencies file for graph_proximity_test.
# This may be replaced when dependencies are built.
