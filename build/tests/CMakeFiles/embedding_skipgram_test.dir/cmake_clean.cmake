file(REMOVE_RECURSE
  "CMakeFiles/embedding_skipgram_test.dir/embedding_skipgram_test.cc.o"
  "CMakeFiles/embedding_skipgram_test.dir/embedding_skipgram_test.cc.o.d"
  "embedding_skipgram_test"
  "embedding_skipgram_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding_skipgram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
