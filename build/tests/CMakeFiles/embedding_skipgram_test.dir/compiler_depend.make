# Empty compiler generated dependencies file for embedding_skipgram_test.
# This may be replaced when dependencies are built.
