file(REMOVE_RECURSE
  "CMakeFiles/embedding_line_test.dir/embedding_line_test.cc.o"
  "CMakeFiles/embedding_line_test.dir/embedding_line_test.cc.o.d"
  "embedding_line_test"
  "embedding_line_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding_line_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
