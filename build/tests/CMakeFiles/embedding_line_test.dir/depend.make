# Empty dependencies file for embedding_line_test.
# This may be replaced when dependencies are built.
