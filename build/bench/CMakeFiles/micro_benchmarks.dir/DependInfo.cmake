
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_benchmarks.cpp" "bench/CMakeFiles/micro_benchmarks.dir/micro_benchmarks.cpp.o" "gcc" "bench/CMakeFiles/micro_benchmarks.dir/micro_benchmarks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/actor_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/actor_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/actor_core.dir/DependInfo.cmake"
  "/root/repo/build/src/embedding/CMakeFiles/actor_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/actor_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/hotspot/CMakeFiles/actor_hotspot.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/actor_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/actor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
