# Empty dependencies file for streaming_activity.
# This may be replaced when dependencies are built.
