file(REMOVE_RECURSE
  "CMakeFiles/streaming_activity.dir/streaming_activity.cpp.o"
  "CMakeFiles/streaming_activity.dir/streaming_activity.cpp.o.d"
  "streaming_activity"
  "streaming_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
