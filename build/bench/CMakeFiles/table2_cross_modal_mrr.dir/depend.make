# Empty dependencies file for table2_cross_modal_mrr.
# This may be replaced when dependencies are built.
