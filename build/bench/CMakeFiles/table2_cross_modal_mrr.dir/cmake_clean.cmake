file(REMOVE_RECURSE
  "CMakeFiles/table2_cross_modal_mrr.dir/table2_cross_modal_mrr.cpp.o"
  "CMakeFiles/table2_cross_modal_mrr.dir/table2_cross_modal_mrr.cpp.o.d"
  "table2_cross_modal_mrr"
  "table2_cross_modal_mrr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_cross_modal_mrr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
