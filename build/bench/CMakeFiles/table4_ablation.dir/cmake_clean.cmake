file(REMOVE_RECURSE
  "CMakeFiles/table4_ablation.dir/table4_ablation.cpp.o"
  "CMakeFiles/table4_ablation.dir/table4_ablation.cpp.o.d"
  "table4_ablation"
  "table4_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
