# Empty dependencies file for table4_ablation.
# This may be replaced when dependencies are built.
