# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for neighbor_search_queries.
