# Empty dependencies file for neighbor_search_queries.
# This may be replaced when dependencies are built.
