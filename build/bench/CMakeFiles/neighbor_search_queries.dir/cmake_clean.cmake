file(REMOVE_RECURSE
  "CMakeFiles/neighbor_search_queries.dir/neighbor_search_queries.cpp.o"
  "CMakeFiles/neighbor_search_queries.dir/neighbor_search_queries.cpp.o.d"
  "neighbor_search_queries"
  "neighbor_search_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neighbor_search_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
