# Empty compiler generated dependencies file for design_ablations.
# This may be replaced when dependencies are built.
