file(REMOVE_RECURSE
  "CMakeFiles/design_ablations.dir/design_ablations.cpp.o"
  "CMakeFiles/design_ablations.dir/design_ablations.cpp.o.d"
  "design_ablations"
  "design_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
