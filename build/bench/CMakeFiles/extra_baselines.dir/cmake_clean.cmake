file(REMOVE_RECURSE
  "CMakeFiles/extra_baselines.dir/extra_baselines.cpp.o"
  "CMakeFiles/extra_baselines.dir/extra_baselines.cpp.o.d"
  "extra_baselines"
  "extra_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
