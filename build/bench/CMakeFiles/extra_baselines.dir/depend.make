# Empty dependencies file for extra_baselines.
# This may be replaced when dependencies are built.
