file(REMOVE_RECURSE
  "libactor_data.a"
)
