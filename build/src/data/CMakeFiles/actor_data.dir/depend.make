# Empty dependencies file for actor_data.
# This may be replaced when dependencies are built.
