
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/corpus.cc" "src/data/CMakeFiles/actor_data.dir/corpus.cc.o" "gcc" "src/data/CMakeFiles/actor_data.dir/corpus.cc.o.d"
  "/root/repo/src/data/dataset_io.cc" "src/data/CMakeFiles/actor_data.dir/dataset_io.cc.o" "gcc" "src/data/CMakeFiles/actor_data.dir/dataset_io.cc.o.d"
  "/root/repo/src/data/phrase_detector.cc" "src/data/CMakeFiles/actor_data.dir/phrase_detector.cc.o" "gcc" "src/data/CMakeFiles/actor_data.dir/phrase_detector.cc.o.d"
  "/root/repo/src/data/record.cc" "src/data/CMakeFiles/actor_data.dir/record.cc.o" "gcc" "src/data/CMakeFiles/actor_data.dir/record.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/data/CMakeFiles/actor_data.dir/synthetic.cc.o" "gcc" "src/data/CMakeFiles/actor_data.dir/synthetic.cc.o.d"
  "/root/repo/src/data/tokenizer.cc" "src/data/CMakeFiles/actor_data.dir/tokenizer.cc.o" "gcc" "src/data/CMakeFiles/actor_data.dir/tokenizer.cc.o.d"
  "/root/repo/src/data/vocabulary.cc" "src/data/CMakeFiles/actor_data.dir/vocabulary.cc.o" "gcc" "src/data/CMakeFiles/actor_data.dir/vocabulary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/actor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
