file(REMOVE_RECURSE
  "CMakeFiles/actor_data.dir/corpus.cc.o"
  "CMakeFiles/actor_data.dir/corpus.cc.o.d"
  "CMakeFiles/actor_data.dir/dataset_io.cc.o"
  "CMakeFiles/actor_data.dir/dataset_io.cc.o.d"
  "CMakeFiles/actor_data.dir/phrase_detector.cc.o"
  "CMakeFiles/actor_data.dir/phrase_detector.cc.o.d"
  "CMakeFiles/actor_data.dir/record.cc.o"
  "CMakeFiles/actor_data.dir/record.cc.o.d"
  "CMakeFiles/actor_data.dir/synthetic.cc.o"
  "CMakeFiles/actor_data.dir/synthetic.cc.o.d"
  "CMakeFiles/actor_data.dir/tokenizer.cc.o"
  "CMakeFiles/actor_data.dir/tokenizer.cc.o.d"
  "CMakeFiles/actor_data.dir/vocabulary.cc.o"
  "CMakeFiles/actor_data.dir/vocabulary.cc.o.d"
  "libactor_data.a"
  "libactor_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actor_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
