file(REMOVE_RECURSE
  "CMakeFiles/actor_util.dir/flags.cc.o"
  "CMakeFiles/actor_util.dir/flags.cc.o.d"
  "CMakeFiles/actor_util.dir/logging.cc.o"
  "CMakeFiles/actor_util.dir/logging.cc.o.d"
  "CMakeFiles/actor_util.dir/status.cc.o"
  "CMakeFiles/actor_util.dir/status.cc.o.d"
  "CMakeFiles/actor_util.dir/string_util.cc.o"
  "CMakeFiles/actor_util.dir/string_util.cc.o.d"
  "CMakeFiles/actor_util.dir/thread_pool.cc.o"
  "CMakeFiles/actor_util.dir/thread_pool.cc.o.d"
  "CMakeFiles/actor_util.dir/vec_math.cc.o"
  "CMakeFiles/actor_util.dir/vec_math.cc.o.d"
  "libactor_util.a"
  "libactor_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actor_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
