# Empty compiler generated dependencies file for actor_util.
# This may be replaced when dependencies are built.
