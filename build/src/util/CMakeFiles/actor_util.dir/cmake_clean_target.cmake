file(REMOVE_RECURSE
  "libactor_util.a"
)
