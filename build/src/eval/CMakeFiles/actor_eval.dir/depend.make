# Empty dependencies file for actor_eval.
# This may be replaced when dependencies are built.
