file(REMOVE_RECURSE
  "CMakeFiles/actor_eval.dir/cross_modal_model.cc.o"
  "CMakeFiles/actor_eval.dir/cross_modal_model.cc.o.d"
  "CMakeFiles/actor_eval.dir/mrr.cc.o"
  "CMakeFiles/actor_eval.dir/mrr.cc.o.d"
  "CMakeFiles/actor_eval.dir/neighbor_search.cc.o"
  "CMakeFiles/actor_eval.dir/neighbor_search.cc.o.d"
  "CMakeFiles/actor_eval.dir/pipeline.cc.o"
  "CMakeFiles/actor_eval.dir/pipeline.cc.o.d"
  "CMakeFiles/actor_eval.dir/prediction.cc.o"
  "CMakeFiles/actor_eval.dir/prediction.cc.o.d"
  "CMakeFiles/actor_eval.dir/tuning.cc.o"
  "CMakeFiles/actor_eval.dir/tuning.cc.o.d"
  "libactor_eval.a"
  "libactor_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actor_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
