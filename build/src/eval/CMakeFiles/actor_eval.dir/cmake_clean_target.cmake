file(REMOVE_RECURSE
  "libactor_eval.a"
)
