# Empty compiler generated dependencies file for actor_graph.
# This may be replaced when dependencies are built.
