file(REMOVE_RECURSE
  "libactor_graph.a"
)
