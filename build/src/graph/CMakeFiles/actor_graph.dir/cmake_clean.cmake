file(REMOVE_RECURSE
  "CMakeFiles/actor_graph.dir/alias_table.cc.o"
  "CMakeFiles/actor_graph.dir/alias_table.cc.o.d"
  "CMakeFiles/actor_graph.dir/graph_builder.cc.o"
  "CMakeFiles/actor_graph.dir/graph_builder.cc.o.d"
  "CMakeFiles/actor_graph.dir/graph_io.cc.o"
  "CMakeFiles/actor_graph.dir/graph_io.cc.o.d"
  "CMakeFiles/actor_graph.dir/heterograph.cc.o"
  "CMakeFiles/actor_graph.dir/heterograph.cc.o.d"
  "CMakeFiles/actor_graph.dir/node2vec_walk.cc.o"
  "CMakeFiles/actor_graph.dir/node2vec_walk.cc.o.d"
  "CMakeFiles/actor_graph.dir/proximity.cc.o"
  "CMakeFiles/actor_graph.dir/proximity.cc.o.d"
  "CMakeFiles/actor_graph.dir/random_walk.cc.o"
  "CMakeFiles/actor_graph.dir/random_walk.cc.o.d"
  "CMakeFiles/actor_graph.dir/types.cc.o"
  "CMakeFiles/actor_graph.dir/types.cc.o.d"
  "libactor_graph.a"
  "libactor_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actor_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
