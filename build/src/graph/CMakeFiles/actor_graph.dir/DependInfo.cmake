
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/alias_table.cc" "src/graph/CMakeFiles/actor_graph.dir/alias_table.cc.o" "gcc" "src/graph/CMakeFiles/actor_graph.dir/alias_table.cc.o.d"
  "/root/repo/src/graph/graph_builder.cc" "src/graph/CMakeFiles/actor_graph.dir/graph_builder.cc.o" "gcc" "src/graph/CMakeFiles/actor_graph.dir/graph_builder.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/graph/CMakeFiles/actor_graph.dir/graph_io.cc.o" "gcc" "src/graph/CMakeFiles/actor_graph.dir/graph_io.cc.o.d"
  "/root/repo/src/graph/heterograph.cc" "src/graph/CMakeFiles/actor_graph.dir/heterograph.cc.o" "gcc" "src/graph/CMakeFiles/actor_graph.dir/heterograph.cc.o.d"
  "/root/repo/src/graph/node2vec_walk.cc" "src/graph/CMakeFiles/actor_graph.dir/node2vec_walk.cc.o" "gcc" "src/graph/CMakeFiles/actor_graph.dir/node2vec_walk.cc.o.d"
  "/root/repo/src/graph/proximity.cc" "src/graph/CMakeFiles/actor_graph.dir/proximity.cc.o" "gcc" "src/graph/CMakeFiles/actor_graph.dir/proximity.cc.o.d"
  "/root/repo/src/graph/random_walk.cc" "src/graph/CMakeFiles/actor_graph.dir/random_walk.cc.o" "gcc" "src/graph/CMakeFiles/actor_graph.dir/random_walk.cc.o.d"
  "/root/repo/src/graph/types.cc" "src/graph/CMakeFiles/actor_graph.dir/types.cc.o" "gcc" "src/graph/CMakeFiles/actor_graph.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/actor_data.dir/DependInfo.cmake"
  "/root/repo/build/src/hotspot/CMakeFiles/actor_hotspot.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/actor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
