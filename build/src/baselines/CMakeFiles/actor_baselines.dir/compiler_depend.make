# Empty compiler generated dependencies file for actor_baselines.
# This may be replaced when dependencies are built.
