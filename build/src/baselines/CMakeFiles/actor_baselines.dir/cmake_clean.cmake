file(REMOVE_RECURSE
  "CMakeFiles/actor_baselines.dir/crossmap.cc.o"
  "CMakeFiles/actor_baselines.dir/crossmap.cc.o.d"
  "CMakeFiles/actor_baselines.dir/geo_topic_model.cc.o"
  "CMakeFiles/actor_baselines.dir/geo_topic_model.cc.o.d"
  "CMakeFiles/actor_baselines.dir/metapath2vec.cc.o"
  "CMakeFiles/actor_baselines.dir/metapath2vec.cc.o.d"
  "CMakeFiles/actor_baselines.dir/node2vec.cc.o"
  "CMakeFiles/actor_baselines.dir/node2vec.cc.o.d"
  "libactor_baselines.a"
  "libactor_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actor_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
