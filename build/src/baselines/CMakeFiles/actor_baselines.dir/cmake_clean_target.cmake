file(REMOVE_RECURSE
  "libactor_baselines.a"
)
