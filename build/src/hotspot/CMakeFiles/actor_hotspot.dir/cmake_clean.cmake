file(REMOVE_RECURSE
  "CMakeFiles/actor_hotspot.dir/grid_index.cc.o"
  "CMakeFiles/actor_hotspot.dir/grid_index.cc.o.d"
  "CMakeFiles/actor_hotspot.dir/hotspot_detector.cc.o"
  "CMakeFiles/actor_hotspot.dir/hotspot_detector.cc.o.d"
  "CMakeFiles/actor_hotspot.dir/kde.cc.o"
  "CMakeFiles/actor_hotspot.dir/kde.cc.o.d"
  "CMakeFiles/actor_hotspot.dir/mean_shift.cc.o"
  "CMakeFiles/actor_hotspot.dir/mean_shift.cc.o.d"
  "libactor_hotspot.a"
  "libactor_hotspot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actor_hotspot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
