
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hotspot/grid_index.cc" "src/hotspot/CMakeFiles/actor_hotspot.dir/grid_index.cc.o" "gcc" "src/hotspot/CMakeFiles/actor_hotspot.dir/grid_index.cc.o.d"
  "/root/repo/src/hotspot/hotspot_detector.cc" "src/hotspot/CMakeFiles/actor_hotspot.dir/hotspot_detector.cc.o" "gcc" "src/hotspot/CMakeFiles/actor_hotspot.dir/hotspot_detector.cc.o.d"
  "/root/repo/src/hotspot/kde.cc" "src/hotspot/CMakeFiles/actor_hotspot.dir/kde.cc.o" "gcc" "src/hotspot/CMakeFiles/actor_hotspot.dir/kde.cc.o.d"
  "/root/repo/src/hotspot/mean_shift.cc" "src/hotspot/CMakeFiles/actor_hotspot.dir/mean_shift.cc.o" "gcc" "src/hotspot/CMakeFiles/actor_hotspot.dir/mean_shift.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/actor_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/actor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
