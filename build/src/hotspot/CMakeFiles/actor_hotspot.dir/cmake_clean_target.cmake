file(REMOVE_RECURSE
  "libactor_hotspot.a"
)
