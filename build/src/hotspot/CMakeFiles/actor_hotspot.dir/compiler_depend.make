# Empty compiler generated dependencies file for actor_hotspot.
# This may be replaced when dependencies are built.
