# Empty compiler generated dependencies file for actor_core.
# This may be replaced when dependencies are built.
