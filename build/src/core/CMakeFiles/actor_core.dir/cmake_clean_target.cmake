file(REMOVE_RECURSE
  "libactor_core.a"
)
