
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/actor.cc" "src/core/CMakeFiles/actor_core.dir/actor.cc.o" "gcc" "src/core/CMakeFiles/actor_core.dir/actor.cc.o.d"
  "/root/repo/src/core/meta_graph.cc" "src/core/CMakeFiles/actor_core.dir/meta_graph.cc.o" "gcc" "src/core/CMakeFiles/actor_core.dir/meta_graph.cc.o.d"
  "/root/repo/src/core/model_io.cc" "src/core/CMakeFiles/actor_core.dir/model_io.cc.o" "gcc" "src/core/CMakeFiles/actor_core.dir/model_io.cc.o.d"
  "/root/repo/src/core/online_actor.cc" "src/core/CMakeFiles/actor_core.dir/online_actor.cc.o" "gcc" "src/core/CMakeFiles/actor_core.dir/online_actor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/embedding/CMakeFiles/actor_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/actor_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/actor_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hotspot/CMakeFiles/actor_hotspot.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/actor_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
