file(REMOVE_RECURSE
  "CMakeFiles/actor_core.dir/actor.cc.o"
  "CMakeFiles/actor_core.dir/actor.cc.o.d"
  "CMakeFiles/actor_core.dir/meta_graph.cc.o"
  "CMakeFiles/actor_core.dir/meta_graph.cc.o.d"
  "CMakeFiles/actor_core.dir/model_io.cc.o"
  "CMakeFiles/actor_core.dir/model_io.cc.o.d"
  "CMakeFiles/actor_core.dir/online_actor.cc.o"
  "CMakeFiles/actor_core.dir/online_actor.cc.o.d"
  "libactor_core.a"
  "libactor_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actor_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
