file(REMOVE_RECURSE
  "libactor_embedding.a"
)
