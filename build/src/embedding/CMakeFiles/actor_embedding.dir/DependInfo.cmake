
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embedding/embedding_matrix.cc" "src/embedding/CMakeFiles/actor_embedding.dir/embedding_matrix.cc.o" "gcc" "src/embedding/CMakeFiles/actor_embedding.dir/embedding_matrix.cc.o.d"
  "/root/repo/src/embedding/line.cc" "src/embedding/CMakeFiles/actor_embedding.dir/line.cc.o" "gcc" "src/embedding/CMakeFiles/actor_embedding.dir/line.cc.o.d"
  "/root/repo/src/embedding/negative_sampler.cc" "src/embedding/CMakeFiles/actor_embedding.dir/negative_sampler.cc.o" "gcc" "src/embedding/CMakeFiles/actor_embedding.dir/negative_sampler.cc.o.d"
  "/root/repo/src/embedding/sgd.cc" "src/embedding/CMakeFiles/actor_embedding.dir/sgd.cc.o" "gcc" "src/embedding/CMakeFiles/actor_embedding.dir/sgd.cc.o.d"
  "/root/repo/src/embedding/skipgram.cc" "src/embedding/CMakeFiles/actor_embedding.dir/skipgram.cc.o" "gcc" "src/embedding/CMakeFiles/actor_embedding.dir/skipgram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/actor_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/actor_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hotspot/CMakeFiles/actor_hotspot.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/actor_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
