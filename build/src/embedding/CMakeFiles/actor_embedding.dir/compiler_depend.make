# Empty compiler generated dependencies file for actor_embedding.
# This may be replaced when dependencies are built.
