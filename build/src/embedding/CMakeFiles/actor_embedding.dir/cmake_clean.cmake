file(REMOVE_RECURSE
  "CMakeFiles/actor_embedding.dir/embedding_matrix.cc.o"
  "CMakeFiles/actor_embedding.dir/embedding_matrix.cc.o.d"
  "CMakeFiles/actor_embedding.dir/line.cc.o"
  "CMakeFiles/actor_embedding.dir/line.cc.o.d"
  "CMakeFiles/actor_embedding.dir/negative_sampler.cc.o"
  "CMakeFiles/actor_embedding.dir/negative_sampler.cc.o.d"
  "CMakeFiles/actor_embedding.dir/sgd.cc.o"
  "CMakeFiles/actor_embedding.dir/sgd.cc.o.d"
  "CMakeFiles/actor_embedding.dir/skipgram.cc.o"
  "CMakeFiles/actor_embedding.dir/skipgram.cc.o.d"
  "libactor_embedding.a"
  "libactor_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actor_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
