# Empty dependencies file for urban_explorer.
# This may be replaced when dependencies are built.
