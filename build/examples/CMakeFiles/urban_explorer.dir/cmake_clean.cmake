file(REMOVE_RECURSE
  "CMakeFiles/urban_explorer.dir/urban_explorer.cpp.o"
  "CMakeFiles/urban_explorer.dir/urban_explorer.cpp.o.d"
  "urban_explorer"
  "urban_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urban_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
