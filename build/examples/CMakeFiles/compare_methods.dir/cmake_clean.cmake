file(REMOVE_RECURSE
  "CMakeFiles/compare_methods.dir/compare_methods.cpp.o"
  "CMakeFiles/compare_methods.dir/compare_methods.cpp.o.d"
  "compare_methods"
  "compare_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
