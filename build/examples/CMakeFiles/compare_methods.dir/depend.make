# Empty dependencies file for compare_methods.
# This may be replaced when dependencies are built.
