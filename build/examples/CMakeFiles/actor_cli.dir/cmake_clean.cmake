file(REMOVE_RECURSE
  "CMakeFiles/actor_cli.dir/actor_cli.cpp.o"
  "CMakeFiles/actor_cli.dir/actor_cli.cpp.o.d"
  "actor_cli"
  "actor_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actor_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
