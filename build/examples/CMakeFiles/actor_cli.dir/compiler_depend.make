# Empty compiler generated dependencies file for actor_cli.
# This may be replaced when dependencies are built.
