file(REMOVE_RECURSE
  "CMakeFiles/trip_planner.dir/trip_planner.cpp.o"
  "CMakeFiles/trip_planner.dir/trip_planner.cpp.o.d"
  "trip_planner"
  "trip_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trip_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
