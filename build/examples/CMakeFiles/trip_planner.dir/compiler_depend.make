# Empty compiler generated dependencies file for trip_planner.
# This may be replaced when dependencies are built.
