file(REMOVE_RECURSE
  "CMakeFiles/streaming_demo.dir/streaming_demo.cpp.o"
  "CMakeFiles/streaming_demo.dir/streaming_demo.cpp.o.d"
  "streaming_demo"
  "streaming_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
