// Urban explorer: the intro's motivating questions answered with
// cross-modal neighbor search (paper §1 and §6.4).
//
//   "What are the popular activities around <place> at dusk?"
//   "Where does <activity keyword> happen, and when?"
//   "What does this part of town talk about?"
//
// The example trains ACTOR on a TWEET-like corpus and then answers each
// question with cross-modal k-NN queries against the learned space,
// cross-checking the answers against the generator's ground truth.
//
// Run:  ./urban_explorer [--records=12000] [--dim=32]

#include <algorithm>
#include <cstdio>

#include "core/actor.h"
#include "eval/neighbor_search.h"
#include "eval/pipeline.h"
#include "util/flags.h"

namespace {

void PrintNeighbors(const char* question,
                    const actor::Result<std::vector<actor::Neighbor>>& r) {
  std::printf("\n%s\n", question);
  if (!r.ok()) {
    std::printf("  (no answer: %s)\n", r.status().ToString().c_str());
    return;
  }
  for (const auto& n : *r) {
    std::printf("  %-30s [%s]  cos=%.3f\n", n.name.c_str(),
                actor::VertexTypeName(n.type), n.similarity);
  }
}

}  // namespace

int main(int argc, char** argv) {
  actor::Flags flags(argc, argv);

  actor::PipelineOptions pipeline = actor::TweetPipeline(0.4);
  pipeline.synthetic.num_records =
      static_cast<int>(flags.GetInt("records", 12000));
  auto data = actor::PrepareDataset(pipeline, "urban-explorer");
  data.status().CheckOK();

  actor::ActorOptions options;
  options.dim = static_cast<int32_t>(flags.GetInt("dim", 32));
  options.epochs = 8;
  options.samples_per_edge = 10;
  options.negatives = 5;
  auto model = actor::TrainActor(*data->graphs, options);
  model.status().CheckOK();

  actor::NeighborSearcher search(data->Snapshot(model->center));
  const auto& truth = data->dataset.truth;

  // Pick the busiest venue as "the waterfront plaza everyone visits".
  std::vector<int> venue_counts(truth.venue_locations.size(), 0);
  for (int v : truth.record_venues) ++venue_counts[v];
  const int busiest = static_cast<int>(
      std::max_element(venue_counts.begin(), venue_counts.end()) -
      venue_counts.begin());
  const actor::GeoPoint spot = truth.venue_locations[busiest];
  const int topic = truth.venue_topics[busiest];

  std::printf("City model trained: %zu records, %zu spatial hotspots.\n",
              data->full.size(), data->hotspots->spatial.size());
  std::printf("Featured venue: '%s' at (%.2f, %.2f), topic %d "
              "(peak hour %.1f).\n",
              truth.venue_keywords[busiest].c_str(), spot.x, spot.y, topic,
              truth.topic_peak_hours[topic]);

  // Q1: what do people do around this place?
  PrintNeighbors("Q1: What are the popular activities around the venue?",
                 search.QueryByLocation(spot, actor::VertexType::kWord, 8));

  // Q2: when is this place lively?
  PrintNeighbors("Q2: When is this area lively? (nearest temporal hotspots)",
                 search.QueryByLocation(spot, actor::VertexType::kTime, 4));

  // Q3: what happens around town at dusk (19:00)?
  PrintNeighbors("Q3: What are the popular activities at dusk (19:00)?",
                 search.QueryByHour(19.0, actor::VertexType::kWord, 8));

  // Q4: where does the venue's signature activity happen?
  const std::string keyword = truth.venue_keywords[busiest];
  PrintNeighbors(
      ("Q4: Where does '" + keyword + "' happen? (nearest locations)")
          .c_str(),
      search.QueryByKeyword(keyword, actor::VertexType::kLocation, 4));

  // Cross-check Q4 against the generator's ground truth: the top location
  // should be close to the true venue.
  auto locations =
      search.QueryByKeyword(keyword, actor::VertexType::kLocation, 1);
  if (locations.ok() && !locations->empty()) {
    const int32_t hotspot_id =
        data->hotspots->spatial.Assign(spot);
    const actor::VertexId expected =
        data->graphs->spatial_vertices[hotspot_id];
    std::printf("\nGround-truth check: top location %s the venue's own "
                "hotspot (%s).\n",
                (*locations)[0].vertex == expected ? "IS" : "is NOT",
                data->graphs->activity.vertex_name(expected).c_str());
  }
  return 0;
}
