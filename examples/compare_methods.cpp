// Trains ACTOR and its strongest baselines on one synthetic dataset and
// prints a miniature of the paper's Table 2 (MRR per task). Useful for a
// fast qualitative check that the hierarchical embedding helps; the full
// 8-method x 3-dataset sweep lives in bench/table2_cross_modal_mrr.
//
// Run:  ./compare_methods [--records=10000] [--dim=32] [--epochs=8]

#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/crossmap.h"
#include "core/actor.h"
#include "embedding/line.h"
#include "eval/cross_modal_model.h"
#include "eval/pipeline.h"
#include "eval/prediction.h"
#include "util/flags.h"
#include "util/stopwatch.h"

namespace {

void PrintRow(const char* name, const actor::MrrScores& scores,
              double seconds) {
  std::printf("%-14s %8.4f %8.4f %8.4f   (%.1fs)\n", name, scores.text,
              scores.location, scores.time, seconds);
}

}  // namespace

int main(int argc, char** argv) {
  actor::Flags flags(argc, argv);
  const int32_t dim = static_cast<int32_t>(flags.GetInt("dim", 32));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 8));
  const int spe = static_cast<int>(flags.GetInt("spe", 10));

  actor::PipelineOptions pipeline = actor::UTGeoPipeline(0.5);
  pipeline.synthetic.num_records =
      static_cast<int>(flags.GetInt("records", 10000));
  auto data_result = actor::PrepareDataset(pipeline, "compare");
  data_result.status().CheckOK();
  actor::PreparedDataset& data = *data_result;
  std::printf("dataset: %zu records, %.1f%% with mentions\n\n",
              data.full.size(),
              100.0 * data.dataset.corpus.MentionFraction());
  std::printf("%-14s %8s %8s %8s\n", "method", "Text", "Location", "Time");

  auto evaluate = [&](const char* name, const actor::EmbeddingMatrix& center,
                      double seconds) {
    actor::EmbeddingCrossModalModel scorer(name, data.Snapshot(center));
    auto mrr = actor::EvaluateCrossModal(scorer, data.test);
    mrr.status().CheckOK();
    PrintRow(name, *mrr, seconds);
  };

  {
    actor::Stopwatch timer;
    actor::LineOptions opts;
    opts.dim = dim;
    opts.samples_per_edge = spe;
    opts.edge_types = {actor::EdgeType::kTL, actor::EdgeType::kLW,
                       actor::EdgeType::kWT, actor::EdgeType::kWW};
    auto line = actor::TrainLine(data.graphs->activity, opts);
    line.status().CheckOK();
    evaluate("LINE", line->center, timer.ElapsedSeconds());
  }
  {
    actor::Stopwatch timer;
    actor::CrossMapOptions opts;
    opts.dim = dim;
    opts.epochs = epochs;
    opts.samples_per_edge = spe;
    opts.negatives = 5;  // matched to LINE's K (see EXPERIMENTS.md)
    auto crossmap = actor::TrainCrossMap(*data.graphs, opts);
    crossmap.status().CheckOK();
    evaluate("CrossMap", crossmap->center, timer.ElapsedSeconds());
  }
  {
    actor::Stopwatch timer;
    actor::CrossMapOptions opts;
    opts.dim = dim;
    opts.epochs = epochs;
    opts.samples_per_edge = spe;
    opts.negatives = 5;
    opts.include_user_edges = true;
    auto crossmap_u = actor::TrainCrossMap(*data.graphs, opts);
    crossmap_u.status().CheckOK();
    evaluate("CrossMap(U)", crossmap_u->center, timer.ElapsedSeconds());
  }
  auto run_actor = [&](const char* name, bool inter, bool bow) {
    actor::Stopwatch timer;
    actor::ActorOptions opts;
    opts.dim = dim;
    opts.epochs = epochs;
    opts.samples_per_edge = spe;
    opts.negatives = 5;
    opts.use_inter = inter;
    opts.use_bag_of_words = bow;
    auto model = actor::TrainActor(*data.graphs, opts);
    model.status().CheckOK();
    evaluate(name, model->center, timer.ElapsedSeconds());
  };
  run_actor("ACTOR-w/o-both", false, false);
  run_actor("ACTOR-w/o-intr", false, true);
  run_actor("ACTOR-w/o-intra", true, false);
  run_actor("ACTOR", true, true);
  return 0;
}
