// Quickstart: the complete ACTOR pipeline in one file.
//
//   1. generate a synthetic urban-activity corpus (substitute for the
//      paper's tweet datasets),
//   2. tokenize, split, detect spatiotemporal hotspots, build the activity
//      and user-interaction graphs,
//   3. train the hierarchical cross-modal embedding (Algorithm 1),
//   4. evaluate the three cross-modal prediction tasks (MRR),
//   5. run a cross-modal neighbor query.
//
// Run:  ./quickstart [--records=8000] [--dim=32] [--epochs=8]

#include <cstdio>

#include "core/actor.h"
#include "eval/cross_modal_model.h"
#include "eval/neighbor_search.h"
#include "eval/pipeline.h"
#include "eval/prediction.h"
#include "util/flags.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  actor::Flags flags(argc, argv);

  // --- 1+2: data -> graphs -------------------------------------------------
  actor::PipelineOptions pipeline = actor::UTGeoPipeline(/*scale=*/0.4);
  pipeline.synthetic.num_records =
      static_cast<int>(flags.GetInt("records", 8000));
  actor::Stopwatch prep_timer;
  auto prepared_result = actor::PrepareDataset(pipeline, "quickstart");
  prepared_result.status().CheckOK();
  actor::PreparedDataset& data = *prepared_result;
  std::printf(
      "prepared '%s': %zu records (%zu train / %zu test), vocab %d,\n"
      "  %zu spatial + %zu temporal hotspots, |V|=%d, |E|=%lld directed "
      "(%.1fs)\n",
      data.name.c_str(), data.full.size(), data.train.size(),
      data.test.size(), data.full.vocab().size(), data.hotspots->spatial.size(),
      data.hotspots->temporal.size(), data.graphs->activity.num_vertices(),
      static_cast<long long>(data.graphs->activity.num_directed_edges()),
      prep_timer.ElapsedSeconds());

  // --- 3: train ACTOR ------------------------------------------------------
  actor::ActorOptions options;
  options.dim = static_cast<int32_t>(flags.GetInt("dim", 32));
  options.epochs = static_cast<int>(flags.GetInt("epochs", 8));
  options.samples_per_edge = static_cast<int>(flags.GetInt("spe", 10));
  auto model_result = actor::TrainActor(*data.graphs, options);
  model_result.status().CheckOK();
  actor::ActorModel& model = *model_result;
  std::printf("trained ACTOR: %.1fs pre-train + %.1fs train, %lld edge "
              "steps, %lld record steps\n",
              model.stats.pretrain_seconds, model.stats.train_seconds,
              static_cast<long long>(model.stats.edge_steps),
              static_cast<long long>(model.stats.record_steps));

  // --- 4: cross-modal prediction -------------------------------------------
  auto snapshot = data.Snapshot(model.center);
  actor::EmbeddingCrossModalModel scorer("ACTOR", snapshot);
  auto mrr_result = actor::EvaluateCrossModal(scorer, data.test);
  mrr_result.status().CheckOK();
  std::printf("MRR  text=%.4f  location=%.4f  time=%.4f\n", mrr_result->text,
              mrr_result->location, mrr_result->time);

  // --- 5: a cross-modal neighbor query -------------------------------------
  // Ask for the words most associated with the first venue's location.
  const actor::GeoPoint venue = data.dataset.truth.venue_locations.front();
  actor::NeighborSearcher searcher(snapshot);
  auto neighbors =
      searcher.QueryByLocation(venue, actor::VertexType::kWord, 8);
  neighbors.status().CheckOK();
  std::printf("words near venue (%.1f, %.1f) [truth keyword '%s']:\n",
              venue.x, venue.y,
              data.dataset.truth.venue_keywords.front().c_str());
  for (const auto& n : *neighbors) {
    std::printf("  %-28s %.3f\n", n.name.c_str(), n.similarity);
  }
  return 0;
}
