// actor_cli: end-to-end command-line workflow for the library —
//
//   actor_cli generate --preset=utgeo --scale=0.25 --out=corpus.tsv
//       writes a synthetic corpus as TSV (see data/dataset_io.h).
//   actor_cli train --corpus=corpus.tsv --model=model_dir [--dim=32]
//       [--epochs=8] [--spe=10] [--negatives=5]
//       tokenizes, detects hotspots, builds graphs, trains ACTOR, and
//       persists the model (core/model_io.h).
//   actor_cli query --model=model_dir --unit=<name> [--type=W] [--k=10]
//       reloads the model and prints the nearest units of the requested
//       type; <name> is any unit name from vertices.tsv (a keyword, a
//       "T3(19:17)" temporal hotspot, an "L7(12.50,8.25)" location, or a
//       "user42").
//   actor_cli stats --corpus=corpus.tsv
//       prints corpus statistics (records, users, mention fraction).

#include <cstdio>
#include <cstring>
#include <string>

#include "core/actor.h"
#include "core/model_io.h"
#include "data/dataset_io.h"
#include "data/synthetic.h"
#include "eval/pipeline.h"
#include "util/flags.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: actor_cli <generate|train|query|stats> [--flags]\n"
               "see the header comment of examples/actor_cli.cpp\n");
  return 2;
}

int Generate(const actor::Flags& flags) {
  const std::string preset = flags.GetString("preset", "utgeo");
  const double scale = flags.GetDouble("scale", 0.25);
  const std::string out = flags.GetString("out", "corpus.tsv");
  actor::SyntheticConfig config;
  if (preset == "utgeo") {
    config = actor::UTGeoLikeConfig(scale);
  } else if (preset == "tweet") {
    config = actor::TweetLikeConfig(scale);
  } else if (preset == "4sq") {
    config = actor::FourSqLikeConfig(scale);
  } else {
    std::fprintf(stderr, "unknown preset '%s' (utgeo|tweet|4sq)\n",
                 preset.c_str());
    return 2;
  }
  if (flags.Has("seed")) config.seed = flags.GetInt("seed", 42);
  auto dataset = actor::GenerateSynthetic(config, preset);
  dataset.status().CheckOK();
  actor::SaveCorpusTsv(dataset->corpus, out).CheckOK();
  std::printf("wrote %zu records to %s (%.1f%% with mentions)\n",
              dataset->corpus.size(), out.c_str(),
              100.0 * dataset->corpus.MentionFraction());
  return 0;
}

int Train(const actor::Flags& flags) {
  const std::string corpus_path = flags.GetString("corpus", "corpus.tsv");
  const std::string model_dir = flags.GetString("model", "actor_model");
  auto corpus = actor::LoadCorpusTsv(corpus_path);
  corpus.status().CheckOK();
  auto tokenized = actor::TokenizedCorpus::Build(*corpus);
  tokenized.status().CheckOK();
  auto hotspots = actor::DetectHotspots(*tokenized);
  hotspots.status().CheckOK();
  auto graphs = actor::BuildGraphs(*tokenized, *hotspots);
  graphs.status().CheckOK();

  actor::ActorOptions options;
  options.dim = static_cast<int32_t>(flags.GetInt("dim", 32));
  options.epochs = static_cast<int>(flags.GetInt("epochs", 8));
  options.samples_per_edge = static_cast<int>(flags.GetInt("spe", 10));
  options.negatives = static_cast<int>(flags.GetInt("negatives", 5));
  options.num_threads = static_cast<int>(flags.GetInt("threads", 1));
  auto model = actor::TrainActor(*graphs, options);
  model.status().CheckOK();
  actor::SaveActorModel(*model, *graphs, model_dir).CheckOK();
  std::printf(
      "trained on %zu records (%zu spatial + %zu temporal hotspots, "
      "|V|=%d) in %.1fs; model saved to %s\n",
      tokenized->size(), hotspots->spatial.size(), hotspots->temporal.size(),
      graphs->activity.num_vertices(),
      model->stats.pretrain_seconds + model->stats.train_seconds,
      model_dir.c_str());
  return 0;
}

int Query(const actor::Flags& flags) {
  const std::string model_dir = flags.GetString("model", "actor_model");
  const std::string unit = flags.GetString("unit", "");
  if (unit.empty()) {
    std::fprintf(stderr, "query requires --unit=<name>\n");
    return 2;
  }
  auto model = actor::LoadedModel::Load(model_dir);
  model.status().CheckOK();
  const actor::VertexId v = model->Lookup(unit);
  if (v == actor::kInvalidVertex) {
    std::fprintf(stderr, "unit '%s' not found in %s/vertices.tsv\n",
                 unit.c_str(), model_dir.c_str());
    return 1;
  }
  const std::string type_str = flags.GetString("type", "W");
  actor::VertexType type = actor::VertexType::kWord;
  if (type_str == "T") type = actor::VertexType::kTime;
  if (type_str == "L") type = actor::VertexType::kLocation;
  if (type_str == "U") type = actor::VertexType::kUser;
  const int k = static_cast<int>(flags.GetInt("k", 10));
  std::printf("nearest %s-units to '%s' [%s]:\n", type_str.c_str(),
              unit.c_str(), actor::VertexTypeName(model->vertex_type(v)));
  for (const auto& [n, sim] : model->NearestOfType(v, type, k)) {
    std::printf("  %-30s %.3f\n", model->vertex_name(n).c_str(), sim);
  }
  return 0;
}

int Stats(const actor::Flags& flags) {
  const std::string corpus_path = flags.GetString("corpus", "corpus.tsv");
  auto corpus = actor::LoadCorpusTsv(corpus_path);
  corpus.status().CheckOK();
  auto tokenized = actor::TokenizedCorpus::Build(*corpus);
  tokenized.status().CheckOK();
  std::printf("records: %zu (tokenized %zu), users: %zu, vocab: %d, "
              "mentions: %.1f%%\n",
              corpus->size(), tokenized->size(), corpus->CountDistinctUsers(),
              tokenized->vocab().size(),
              100.0 * corpus->MentionFraction());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  actor::Flags flags(argc, argv);
  if (command == "generate") return Generate(flags);
  if (command == "train") return Train(flags);
  if (command == "query") return Query(flags);
  if (command == "stats") return Stats(flags);
  return Usage();
}
