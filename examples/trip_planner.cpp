// Trip planner: uses the three cross-modal prediction tasks (§3) as a
// recommendation engine, the way the paper's intro frames them —
//
//   Activity prediction: "I'm at the pier at 8 pm — what should I do?"
//   Location prediction: "I want live music tonight — where do I go?"
//   Time prediction:     "When should I visit the market district?"
//
// Each question becomes a query with two modalities observed; candidates
// come from held-out test records and are ranked by the trained ACTOR
// model. The generator's ground truth scores the answers.
//
// Run:  ./trip_planner [--records=10000]

#include <algorithm>
#include <cstdio>

#include "core/actor.h"
#include "eval/cross_modal_model.h"
#include "eval/pipeline.h"
#include "eval/prediction.h"
#include "util/flags.h"

namespace {

void ShowRanking(const char* question,
                 const actor::Result<std::vector<actor::RankedCandidate>>& r) {
  std::printf("\n%s\n", question);
  r.status().CheckOK();
  for (const auto& c : *r) {
    std::printf("  %2d. %s%s\n", c.rank, c.label.substr(0, 64).c_str(),
                c.is_truth ? "   <-- what actually happened" : "");
    if (c.rank >= 5) break;  // top-5 is enough for a recommendation list
  }
}

}  // namespace

int main(int argc, char** argv) {
  actor::Flags flags(argc, argv);

  actor::PipelineOptions pipeline = actor::UTGeoPipeline(0.4);
  pipeline.synthetic.num_records =
      static_cast<int>(flags.GetInt("records", 10000));
  auto data = actor::PrepareDataset(pipeline, "trip-planner");
  data.status().CheckOK();

  actor::ActorOptions options;
  options.dim = 32;
  options.epochs = 8;
  options.samples_per_edge = 10;
  options.negatives = 5;
  auto model = actor::TrainActor(*data->graphs, options);
  model.status().CheckOK();
  actor::EmbeddingCrossModalModel scorer("ACTOR",
                                         data->Snapshot(model->center));

  std::printf("Trip planner ready (%zu test records as the candidate pool).\n",
              data->test.size());

  // Use three held-out records as "the user's situation": for each, hide
  // one modality and rank it among 10 alternatives.
  actor::EvalOptions eval;
  ShowRanking(
      "Q1: You are at a spot at a given time - which activity fits? "
      "(activity prediction)",
      actor::CaseStudyRanking(scorer, data->test, 0,
                              actor::PredictionTask::kText, eval));
  ShowRanking(
      "Q2: You know what you want to do tonight - where should you go? "
      "(location prediction)",
      actor::CaseStudyRanking(scorer, data->test, 1,
                              actor::PredictionTask::kLocation, eval));
  ShowRanking(
      "Q3: You know the place and the plan - when should you go? "
      "(time prediction)",
      actor::CaseStudyRanking(scorer, data->test, 2,
                              actor::PredictionTask::kTime, eval));

  // Aggregate quality over the whole pool, so the demo reports how often
  // the "what actually happened" answer lands in the top 3.
  std::printf("\nAggregate over the full test pool:\n");
  for (auto task : {actor::PredictionTask::kText,
                    actor::PredictionTask::kLocation,
                    actor::PredictionTask::kTime}) {
    int top3 = 0;
    const int n = static_cast<int>(std::min<std::size_t>(
        200, data->test.size()));
    for (int q = 0; q < n; ++q) {
      auto ranking = actor::CaseStudyRanking(scorer, data->test, q, task);
      ranking.status().CheckOK();
      for (const auto& c : *ranking) {
        if (c.is_truth && c.rank <= 3) ++top3;
      }
    }
    std::printf("  %-9s: truth in top-3 for %d / %d queries\n",
                actor::PredictionTaskName(task), top3, n);
  }
  return 0;
}
