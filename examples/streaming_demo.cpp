// Streaming demo: the OnlineActor extension as a user would run it — a
// city model that keeps learning as record batches arrive, with old
// co-occurrences fading out (recency-aware, after ReAct [8]).
//
// The demo ingests a day's worth of records at a time, and after each
// "day" asks the model what currently happens around the busiest venue.
//
// Run:  ./streaming_demo [--records=8000] [--days=5]

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "core/online_actor.h"
#include "data/synthetic.h"
#include "util/flags.h"
#include "util/vec_math.h"

int main(int argc, char** argv) {
  actor::Flags flags(argc, argv);
  const int records = static_cast<int>(flags.GetInt("records", 8000));
  const int days = static_cast<int>(flags.GetInt("days", 5));

  // A corpus ordered by timestamp, split into per-"day" batches.
  actor::SyntheticConfig config = actor::TweetLikeConfig(0.3);
  config.num_records = records;
  auto dataset = actor::GenerateSynthetic(config, "stream");
  dataset.status().CheckOK();
  actor::CorpusBuildOptions build;
  auto corpus = actor::TokenizedCorpus::Build(dataset->corpus, build);
  corpus.status().CheckOK();
  std::vector<actor::TokenizedRecord> ordered(corpus->records());
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) {
              return a.timestamp < b.timestamp;
            });

  actor::OnlineActorOptions options;
  options.dim = 32;
  options.decay_per_batch = 0.8;
  auto model = actor::OnlineActor::Create(options);
  model.status().CheckOK();

  // The busiest venue, for the recurring query.
  std::vector<int> counts(dataset->truth.venue_locations.size(), 0);
  for (int v : dataset->truth.record_venues) ++counts[v];
  const int busiest = static_cast<int>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
  const actor::GeoPoint venue = dataset->truth.venue_locations[busiest];
  std::printf("watching venue '%s' at (%.1f, %.1f)\n\n",
              dataset->truth.venue_keywords[busiest].c_str(), venue.x,
              venue.y);

  const std::size_t per_day = ordered.size() / days;
  for (int day = 0; day < days; ++day) {
    const std::size_t lo = day * per_day;
    const std::size_t hi =
        day + 1 == days ? ordered.size() : lo + per_day;
    std::vector<actor::TokenizedRecord> batch(ordered.begin() + lo,
                                              ordered.begin() + hi);
    model->Ingest(batch).CheckOK();

    // "What happens around the venue right now?" — nearest word units to
    // the venue's (possibly newly spawned) spatial unit.
    const actor::VertexId unit = model->SpatialUnit(venue);
    std::printf("after day %d (%d units, %zu live edges): ", day,
                model->num_units(), model->num_live_edges());
    if (unit == actor::kInvalidVertex) {
      std::printf("venue not seen yet\n");
      continue;
    }
    // Rank word units by cosine against the venue unit; map unit ids back
    // to readable keywords via the shared vocabulary.
    std::unordered_map<actor::VertexId, int32_t> unit_to_word;
    for (int32_t w = 0; w < corpus->vocab().size(); ++w) {
      const actor::VertexId v = model->WordUnit(w);
      if (v != actor::kInvalidVertex) unit_to_word.emplace(v, w);
    }
    std::vector<std::pair<double, actor::VertexId>> scored;
    for (actor::VertexId v = 0; v < model->num_units(); ++v) {
      if (model->unit_type(v) != actor::VertexType::kWord) continue;
      scored.emplace_back(
          actor::Cosine(model->center().row(unit), model->center().row(v),
                        32),
          v);
    }
    const std::size_t k = std::min<std::size_t>(4, scored.size());
    std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                      [](const auto& a, const auto& b) {
                        return a.first > b.first;
                      });
    for (std::size_t i = 0; i < k; ++i) {
      auto it = unit_to_word.find(scored[i].second);
      const std::string label =
          it != unit_to_word.end() ? corpus->vocab().word(it->second)
                                   : model->unit_name(scored[i].second);
      std::printf("%s(%.2f) ", label.c_str(), scored[i].first);
    }
    std::printf("\n");
  }
  return 0;
}
