#ifndef ACTOR_SERVE_CHUNKED_MATRIX_H_
#define ACTOR_SERVE_CHUNKED_MATRIX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "embedding/dirty_rows.h"
#include "embedding/embedding_matrix.h"
#include "util/logging.h"

namespace actor {

/// Immutable chunked copy-on-write view of an EmbeddingMatrix, the storage
/// behind ModelSnapshot (docs/serving.md "Publish cost model").
///
/// Rows are grouped into fixed-size chunks of kChunkRows, each held by a
/// shared_ptr to an immutable float buffer with the same row stride and
/// 32-byte alignment contract as EmbeddingMatrix (padding floats zero, so
/// the SIMD kernels see the exact layout the flat matrix would give them).
///
/// FullCopy() materializes every chunk — the flat-deep-copy publish path,
/// kept alive by the delta_publish=false A/B lever. DeltaCopy() clones only
/// chunks containing a dirty row and shares the rest with the previous
/// snapshot's ChunkedMatrix, so publish cost is proportional to the rows
/// the last batch touched, not the model. Shared chunks are safe because
/// snapshots never mutate them: a later publish replaces chunk *pointers*,
/// never chunk contents, so old versions stay immutable and queries stay
/// lock-free.
class ChunkedMatrix {
 public:
  /// Rows per chunk. Power of two so row -> (chunk, offset) is shift/mask;
  /// 64 rows x dim 32 ≈ 8 KiB per chunk at the repo defaults — small
  /// enough that a sparse dirty set skips most of the model, large enough
  /// that the chunk pointer array stays negligible next to the floats.
  static constexpr int32_t kChunkRows = 64;

  ChunkedMatrix() = default;

  /// Copies every row of `src` (the old copy-on-publish behavior,
  /// bit-identical contents — locked in by serve_delta_publish_test).
  static ChunkedMatrix FullCopy(const EmbeddingMatrix& src);

  /// Copies only chunks with a row marked in `dirty` (plus rows beyond
  /// prev's end, which have no previous chunk to share) and shares every
  /// clean chunk with `prev`. `dirty` must cover every row of `src` that
  /// changed since `prev` was built from the same logical matrix; it may
  /// cover more (extra copies, never wrong contents). Falls back to a full
  /// copy when `prev` has a different dim/stride or more rows than `src`.
  static ChunkedMatrix DeltaCopy(const EmbeddingMatrix& src,
                                 const ChunkedMatrix& prev,
                                 const DirtyRowSet& dirty);

  int32_t rows() const { return rows_; }
  int32_t dim() const { return dim_; }
  /// Floats between consecutive row starts within a chunk (same rounding
  /// as EmbeddingMatrix::stride()).
  std::size_t stride() const { return stride_; }
  bool empty() const { return rows_ == 0 || dim_ == 0; }

  const float* row(int32_t i) const {
    ACTOR_DCHECK(i >= 0 && i < rows_) << "row " << i << " of " << rows_;
    return chunks_[static_cast<std::size_t>(i) / kChunkRows].get() +
           (static_cast<std::size_t>(i) % kChunkRows) * stride_;
  }

  std::size_t num_chunks() const { return chunks_.size(); }

  /// Number of chunks physically shared (same buffer pointer) with
  /// `other`. Tests and the publish-cost bench use this to prove the delta
  /// path actually structurally shares instead of re-copying.
  std::size_t SharedChunksWith(const ChunkedMatrix& other) const;

 private:
  using ChunkPtr = std::shared_ptr<const float>;

  /// Allocates one zeroed, kRowAlignment-aligned chunk buffer.
  static ChunkPtr NewChunk(std::size_t stride);

  std::vector<ChunkPtr> chunks_;
  int32_t rows_ = 0;
  int32_t dim_ = 0;
  std::size_t stride_ = 0;
};

}  // namespace actor

#endif  // ACTOR_SERVE_CHUNKED_MATRIX_H_
