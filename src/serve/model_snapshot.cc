#include "serve/model_snapshot.h"

#include <limits>
#include <utility>

namespace actor {

std::shared_ptr<const ModelSnapshot> ModelSnapshot::FromBatch(
    const EmbeddingMatrix& center, const EmbeddingMatrix* context,
    std::shared_ptr<const BuiltGraphs> graphs,
    std::shared_ptr<const Hotspots> hotspots,
    std::shared_ptr<const Vocabulary> vocab, uint64_t version) {
  auto snap = std::shared_ptr<ModelSnapshot>(new ModelSnapshot());
  snap->version_ = version;
  snap->center_ = center.Clone();
  if (context != nullptr) {
    snap->context_ = std::make_unique<EmbeddingMatrix>(context->Clone());
  }
  snap->graphs_ = std::move(graphs);
  snap->hotspots_ = std::move(hotspots);
  snap->vocab_ = std::move(vocab);
  return snap;
}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::FromOnline(
    const EmbeddingMatrix& center, OnlineCatalog catalog, uint64_t version) {
  auto snap = std::shared_ptr<ModelSnapshot>(new ModelSnapshot());
  snap->version_ = version;
  snap->center_ = center.Clone();
  snap->catalog_ = std::move(catalog);
  for (std::size_t v = 0; v < snap->catalog_.types.size(); ++v) {
    snap->of_type_[static_cast<int>(snap->catalog_.types[v])].push_back(
        static_cast<VertexId>(v));
  }
  return snap;
}

const std::vector<VertexId>& ModelSnapshot::VerticesOfType(
    VertexType type) const {
  if (graphs_ != nullptr) return graphs_->activity.VerticesOfType(type);
  return of_type_[static_cast<int>(type)];
}

VertexType ModelSnapshot::vertex_type(VertexId v) const {
  if (graphs_ != nullptr) return graphs_->activity.vertex_type(v);
  return catalog_.types[static_cast<std::size_t>(v)];
}

const std::string& ModelSnapshot::vertex_name(VertexId v) const {
  if (graphs_ != nullptr) return graphs_->activity.vertex_name(v);
  return catalog_.names[static_cast<std::size_t>(v)];
}

VertexId ModelSnapshot::SpatialVertex(const GeoPoint& location) const {
  if (graphs_ != nullptr) {
    const int32_t h = hotspots_->spatial.Assign(location);
    return h < 0 ? kInvalidVertex : graphs_->spatial_vertices[h];
  }
  // Same nearest-center scan as OnlineActor::SpatialUnit, so a snapshot
  // resolves exactly like the live actor it was published from.
  int best = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < catalog_.spatial_centers.size(); ++i) {
    const double d = Distance(location, catalog_.spatial_centers[i]);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(i);
    }
  }
  return best < 0 ? kInvalidVertex : catalog_.spatial_units[best];
}

VertexId ModelSnapshot::TemporalVertexAt(double timestamp) const {
  if (graphs_ != nullptr) {
    const int32_t h = hotspots_->temporal.Assign(timestamp);
    return h < 0 ? kInvalidVertex : graphs_->temporal_vertices[h];
  }
  return TemporalVertexAtHour(HourOfDay(timestamp));
}

VertexId ModelSnapshot::TemporalVertexAtHour(double hour) const {
  if (graphs_ != nullptr) {
    const int32_t h = hotspots_->temporal.AssignHour(hour);
    return h < 0 ? kInvalidVertex : graphs_->temporal_vertices[h];
  }
  int best = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < catalog_.temporal_hours.size(); ++i) {
    const double d = CircularHourDistance(hour, catalog_.temporal_hours[i]);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(i);
    }
  }
  return best < 0 ? kInvalidVertex : catalog_.temporal_units[best];
}

VertexId ModelSnapshot::WordVertex(int32_t word_id) const {
  if (graphs_ != nullptr) {
    if (word_id < 0 ||
        static_cast<std::size_t>(word_id) >= graphs_->word_vertices.size()) {
      return kInvalidVertex;
    }
    return graphs_->word_vertices[static_cast<std::size_t>(word_id)];
  }
  const auto it = catalog_.word_units.find(word_id);
  return it == catalog_.word_units.end() ? kInvalidVertex : it->second;
}

int32_t ModelSnapshot::LookupWord(const std::string& keyword) const {
  return vocab_ == nullptr ? -1 : vocab_->Lookup(keyword);
}

}  // namespace actor
