#include "serve/model_snapshot.h"

#include <limits>
#include <utility>

namespace actor {

std::shared_ptr<const ModelSnapshot::CatalogState>
ModelSnapshot::MakeCatalogState(OnlineCatalog catalog) {
  auto state = std::make_shared<CatalogState>();
  state->catalog = std::move(catalog);
  for (std::size_t v = 0; v < state->catalog.types.size(); ++v) {
    state->of_type[static_cast<int>(state->catalog.types[v])].push_back(
        static_cast<VertexId>(v));
  }
  return state;
}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::FromBatch(
    const EmbeddingMatrix& center, const EmbeddingMatrix* context,
    std::shared_ptr<const BuiltGraphs> graphs,
    std::shared_ptr<const Hotspots> hotspots,
    std::shared_ptr<const Vocabulary> vocab, uint64_t version,
    const ModelSnapshot* prev, const DirtyRowSet* dirty) {
  auto snap = std::shared_ptr<ModelSnapshot>(new ModelSnapshot());
  snap->version_ = version;
  const bool delta = prev != nullptr && dirty != nullptr;
  snap->center_ = delta ? ChunkedMatrix::DeltaCopy(center, prev->center_, *dirty)
                        : ChunkedMatrix::FullCopy(center);
  if (context != nullptr) {
    const bool ctx_delta = delta && prev->context_ != nullptr;
    snap->context_ = std::make_unique<ChunkedMatrix>(
        ctx_delta ? ChunkedMatrix::DeltaCopy(*context, *prev->context_, *dirty)
                  : ChunkedMatrix::FullCopy(*context));
  }
  snap->graphs_ = std::move(graphs);
  snap->hotspots_ = std::move(hotspots);
  snap->vocab_ = std::move(vocab);
  return snap;
}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::FromOnline(
    const EmbeddingMatrix& center, OnlineCatalog catalog, uint64_t version) {
  auto snap = std::shared_ptr<ModelSnapshot>(new ModelSnapshot());
  snap->version_ = version;
  snap->center_ = ChunkedMatrix::FullCopy(center);
  snap->online_ = MakeCatalogState(std::move(catalog));
  return snap;
}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::FromOnlineDelta(
    const EmbeddingMatrix& center, uint64_t version,
    const std::shared_ptr<const ModelSnapshot>& prev,
    const DirtyRowSet& dirty) {
  ACTOR_DCHECK(prev != nullptr && prev->graphs_ == nullptr)
      << "delta publish needs a previous online snapshot";
  ACTOR_DCHECK(prev->num_units() == center.rows())
      << "catalogue sharing requires an unchanged unit set ("
      << prev->num_units() << " vs " << center.rows() << " rows)";
  auto snap = std::shared_ptr<ModelSnapshot>(new ModelSnapshot());
  snap->version_ = version;
  snap->center_ = ChunkedMatrix::DeltaCopy(center, prev->center_, dirty);
  snap->online_ = prev->online_;  // unit set unchanged — share outright
  return snap;
}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::FromOnlineDelta(
    const EmbeddingMatrix& center, uint64_t version,
    const std::shared_ptr<const ModelSnapshot>& prev,
    const DirtyRowSet& dirty, OnlineCatalog catalog) {
  ACTOR_DCHECK(prev != nullptr && prev->graphs_ == nullptr)
      << "delta publish needs a previous online snapshot";
  auto snap = std::shared_ptr<ModelSnapshot>(new ModelSnapshot());
  snap->version_ = version;
  snap->center_ = ChunkedMatrix::DeltaCopy(center, prev->center_, dirty);
  snap->online_ = MakeCatalogState(std::move(catalog));
  return snap;
}

const std::vector<VertexId>& ModelSnapshot::VerticesOfType(
    VertexType type) const {
  if (graphs_ != nullptr) return graphs_->activity.VerticesOfType(type);
  return online_->of_type[static_cast<int>(type)];
}

VertexType ModelSnapshot::vertex_type(VertexId v) const {
  if (graphs_ != nullptr) return graphs_->activity.vertex_type(v);
  return online_->catalog.types[static_cast<std::size_t>(v)];
}

const std::string& ModelSnapshot::vertex_name(VertexId v) const {
  if (graphs_ != nullptr) return graphs_->activity.vertex_name(v);
  return online_->catalog.names[static_cast<std::size_t>(v)];
}

VertexId ModelSnapshot::SpatialVertex(const GeoPoint& location) const {
  if (graphs_ != nullptr) {
    const int32_t h = hotspots_->spatial.Assign(location);
    return h < 0 ? kInvalidVertex : graphs_->spatial_vertices[h];
  }
  // Same nearest-center scan as OnlineActor::SpatialUnit, so a snapshot
  // resolves exactly like the live actor it was published from.
  const OnlineCatalog& catalog = online_->catalog;
  int best = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < catalog.spatial_centers.size(); ++i) {
    const double d = Distance(location, catalog.spatial_centers[i]);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(i);
    }
  }
  return best < 0 ? kInvalidVertex : catalog.spatial_units[best];
}

VertexId ModelSnapshot::TemporalVertexAt(double timestamp) const {
  if (graphs_ != nullptr) {
    const int32_t h = hotspots_->temporal.Assign(timestamp);
    return h < 0 ? kInvalidVertex : graphs_->temporal_vertices[h];
  }
  return TemporalVertexAtHour(HourOfDay(timestamp));
}

VertexId ModelSnapshot::TemporalVertexAtHour(double hour) const {
  if (graphs_ != nullptr) {
    const int32_t h = hotspots_->temporal.AssignHour(hour);
    return h < 0 ? kInvalidVertex : graphs_->temporal_vertices[h];
  }
  const OnlineCatalog& catalog = online_->catalog;
  int best = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < catalog.temporal_hours.size(); ++i) {
    const double d = CircularHourDistance(hour, catalog.temporal_hours[i]);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(i);
    }
  }
  return best < 0 ? kInvalidVertex : catalog.temporal_units[best];
}

VertexId ModelSnapshot::WordVertex(int32_t word_id) const {
  if (graphs_ != nullptr) {
    if (word_id < 0 ||
        static_cast<std::size_t>(word_id) >= graphs_->word_vertices.size()) {
      return kInvalidVertex;
    }
    return graphs_->word_vertices[static_cast<std::size_t>(word_id)];
  }
  const auto& word_units = online_->catalog.word_units;
  const auto it = word_units.find(word_id);
  return it == word_units.end() ? kInvalidVertex : it->second;
}

int32_t ModelSnapshot::LookupWord(const std::string& keyword) const {
  return vocab_ == nullptr ? -1 : vocab_->Lookup(keyword);
}

}  // namespace actor
