#ifndef ACTOR_SERVE_QUERY_ENGINE_H_
#define ACTOR_SERVE_QUERY_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "data/record.h"
#include "graph/types.h"
#include "serve/model_snapshot.h"
#include "util/result.h"

namespace actor {

/// One cross-modal neighbor (paper §6.4): a unit of the requested type and
/// its cosine similarity to the query. Top-k results order by similarity
/// descending with ties broken by ascending unit id, in both the sequential
/// and batched paths — an explicit total order, so the result set never
/// depends on candidate scan order (the contract the sharded scatter-gather
/// merge builds on, docs/sharding.md).
struct Neighbor {
  VertexId vertex = kInvalidVertex;
  std::string name;
  VertexType type = VertexType::kWord;
  double similarity = 0.0;
};

/// One request in a QueryEngine::QueryBatch() call: a tagged mirror of the
/// four sequential entry points. Only the fields of the active `kind` are
/// read. For Kind::kVector, `vector` must point at `dim` floats that
/// outlive the QueryBatch() call; the factory helpers fill exactly the
/// fields the kind needs.
struct BatchQuery {
  enum class Kind { kLocation, kHour, kKeyword, kVector };

  static BatchQuery Location(const GeoPoint& location, VertexType result_type,
                             int k);
  static BatchQuery Hour(double hour, VertexType result_type, int k);
  static BatchQuery Keyword(std::string keyword, VertexType result_type,
                            int k);
  static BatchQuery Vector(const float* query, VertexType result_type, int k,
                           VertexId exclude = kInvalidVertex);

  Kind kind = Kind::kVector;
  GeoPoint location{};            // kLocation
  double hour = 0.0;              // kHour
  std::string keyword;            // kKeyword
  const float* vector = nullptr;  // kVector (caller-owned)
  VertexType result_type = VertexType::kWord;
  int k = 10;
  VertexId exclude = kInvalidVertex;  // kVector only
};

/// Cross-modal top-k search over one immutable ModelSnapshot. Backs the
/// spatial / temporal / textual queries of Figs. 9-11 for both batch and
/// streaming models.
///
/// The engine keeps its snapshot alive through the shared_ptr, so it can
/// be constructed from SnapshotStore::Acquire() and used while the trainer
/// keeps ingesting: every query scores against the frozen copy, never the
/// live matrices. All methods are const and thread-safe; results for a
/// given snapshot are deterministic and bit-identical to the pre-snapshot
/// NeighborSearcher (same accumulation order — the one-query-vs-matrix
/// scoring loop hoists the query norm instead of recomputing it per row,
/// and the fused DotAndNorm2 kernel preserves Dot/Norm2's reduction order
/// per backend).
class QueryEngine {
 public:
  explicit QueryEngine(std::shared_ptr<const ModelSnapshot> snapshot);

  const ModelSnapshot& snapshot() const { return *snapshot_; }

  /// Top-k units of `result_type` nearest to a geographic point (the point
  /// is first snapped to its spatial hotspot, Fig. 9).
  Result<std::vector<Neighbor>> QueryByLocation(const GeoPoint& location,
                                                VertexType result_type,
                                                int k) const;

  /// Top-k units nearest to an hour-of-day (snapped to its temporal
  /// hotspot, Fig. 10).
  Result<std::vector<Neighbor>> QueryByHour(double hour,
                                            VertexType result_type,
                                            int k) const;

  /// Top-k units nearest to a vocabulary keyword (Fig. 11). NotFound if the
  /// word is unknown or absent from the graph.
  Result<std::vector<Neighbor>> QueryByKeyword(const std::string& keyword,
                                               VertexType result_type,
                                               int k) const;

  /// Top-k units of `result_type` by cosine against an arbitrary query
  /// vector of the embedding dimension. `exclude` is omitted from results.
  Result<std::vector<Neighbor>> QueryByVector(
      const float* query, VertexType result_type, int k,
      VertexId exclude = kInvalidVertex) const;

  /// Scores a block of requests in one traversal of the snapshot: requests
  /// are grouped by result type and every candidate row is scored against
  /// the whole group by the blocked DotAndNorm2Batch kernel, so each type
  /// block is swept once per batch (one snapshot acquire amortized over B
  /// requests by the caller) instead of once per request. Results come
  /// back in request order and are identical — neighbor order, similarity
  /// bits, and error statuses — to calling the matching QueryBy*() method
  /// per request: the batched kernel preserves each query's per-backend
  /// reduction order (locked in by serve_query_batch_test).
  std::vector<Result<std::vector<Neighbor>>> QueryBatch(
      const std::vector<BatchQuery>& queries) const;

 private:
  Result<std::vector<Neighbor>> QueryByVertex(VertexId v,
                                              VertexType result_type,
                                              int k) const;

  std::shared_ptr<const ModelSnapshot> snapshot_;
};

}  // namespace actor

#endif  // ACTOR_SERVE_QUERY_ENGINE_H_
