#ifndef ACTOR_SERVE_MODEL_SNAPSHOT_H_
#define ACTOR_SERVE_MODEL_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/record.h"
#include "data/vocabulary.h"
#include "embedding/dirty_rows.h"
#include "embedding/embedding_matrix.h"
#include "graph/graph_builder.h"
#include "graph/types.h"
#include "hotspot/hotspot_detector.h"
#include "serve/chunked_matrix.h"

namespace actor {

/// An immutable, versioned bundle of everything the read path needs to
/// answer cross-modal queries: center (and optionally context) embeddings
/// plus the unit catalogue that maps modality values (locations, times,
/// words) to embedding rows.
///
/// Snapshots are the serving boundary of the system (docs/serving.md).
/// Trainers mutate their matrices in place (HOGWILD); queries never touch
/// those matrices. Instead a trainer *publishes*: the embeddings are
/// copied into an immutable ChunkedMatrix and the result is handed out
/// through SnapshotStore's atomic shared_ptr slot. Two publish flavors
/// share one storage layout:
///   - full copy (the delta_publish=false A/B path): every chunk is
///     materialized, O(units x dim) per publish;
///   - delta publish: only chunks containing rows the trainer marked
///     dirty since the previous snapshot are copied; every clean chunk —
///     and, on the online path, the whole unit catalogue when no unit was
///     added — is shared with the previous snapshot by shared_ptr, so
///     publish cost is proportional to the ingest batch.
/// Either way a query holding a snapshot sees one consistent model
/// version forever — later publishes swap chunk *pointers*, never chunk
/// contents — and readers never block writers.
///
/// Two factory paths cover the two trainers:
///   - FromBatch: wraps a finished TrainActor model together with the
///     batch pipeline's BuiltGraphs / Hotspots / Vocabulary (shared,
///     immutable after construction by contract).
///   - FromOnline / FromOnlineDelta: wraps OnlineActor's live unit
///     catalogue — built by OnlineActor::PublishSnapshot.
///
/// All resolution methods are const, thread-safe, and bit-identical to the
/// pre-snapshot code paths they replaced (the batch path delegates to the
/// same Hotspots::Assign / lookup tables; the online path mirrors
/// OnlineActor::SpatialUnit/TemporalUnit/WordUnit).
class ModelSnapshot {
 public:
  /// Copied unit catalogue of a streaming model (OnlineActor's resolver
  /// state at publish time).
  struct OnlineCatalog {
    std::vector<VertexType> types;
    std::vector<std::string> names;
    std::vector<GeoPoint> spatial_centers;
    std::vector<VertexId> spatial_units;
    std::vector<double> temporal_hours;
    std::vector<VertexId> temporal_units;
    std::unordered_map<int32_t, VertexId> word_units;
  };

  /// Publishes a batch-trained model. `center` is copied into chunked
  /// storage; `context` likewise when non-null (most consumers only need
  /// center). `graphs` and `hotspots` are required; `vocab` may be null,
  /// in which case KeywordVertex()/LookupWord() report every keyword as
  /// unknown. The shared structures must not be mutated after publishing.
  ///
  /// When `prev` and `dirty` are given, both matrices are delta-copied
  /// against `prev`'s (chunks with no dirty row are shared). `dirty` must
  /// cover every center *and* context row mutated since `prev` was
  /// published from the same model (one union set — the trainers mark
  /// center rows, positive context rows, and negative draws alike).
  static std::shared_ptr<const ModelSnapshot> FromBatch(
      const EmbeddingMatrix& center, const EmbeddingMatrix* context,
      std::shared_ptr<const BuiltGraphs> graphs,
      std::shared_ptr<const Hotspots> hotspots,
      std::shared_ptr<const Vocabulary> vocab, uint64_t version,
      const ModelSnapshot* prev = nullptr,
      const DirtyRowSet* dirty = nullptr);

  /// Publishes a streaming model with a full copy: every chunk of `center`
  /// is materialized and `catalog` (already a copy of the actor's resolver
  /// state) is adopted. This is the delta_publish=false A/B path.
  static std::shared_ptr<const ModelSnapshot> FromOnline(
      const EmbeddingMatrix& center, OnlineCatalog catalog, uint64_t version);

  /// Delta publish with an unchanged unit set: center is chunk-COW copied
  /// against `prev` (which must be an online-path snapshot) and the whole
  /// catalogue state is shared with it. Requires
  /// prev->num_units() == center.rows().
  static std::shared_ptr<const ModelSnapshot> FromOnlineDelta(
      const EmbeddingMatrix& center, uint64_t version,
      const std::shared_ptr<const ModelSnapshot>& prev,
      const DirtyRowSet& dirty);

  /// Delta publish after units were added: center is chunk-COW copied
  /// against `prev` (appended rows must be marked dirty) and the catalogue
  /// is rebuilt from `catalog`.
  static std::shared_ptr<const ModelSnapshot> FromOnlineDelta(
      const EmbeddingMatrix& center, uint64_t version,
      const std::shared_ptr<const ModelSnapshot>& prev,
      const DirtyRowSet& dirty, OnlineCatalog catalog);

  /// Monotonic model version. Batch snapshots are stamped by the trainer
  /// (PublishActorModel uses the total SGD step count); online snapshots
  /// use the OnlineEdgeStore::version() scheme (sum of the per-edge-type
  /// store versions plus the batch count), so any Ingest() that changed
  /// the model is visible as a version bump.
  uint64_t version() const { return version_; }

  /// The frozen center embeddings. One row per unit in the catalogue.
  const ChunkedMatrix& center() const { return center_; }
  /// Frozen context embeddings; null unless the publisher included them.
  const ChunkedMatrix* context() const { return context_.get(); }
  int32_t dim() const { return center_.dim(); }
  int32_t num_units() const { return center_.rows(); }

  // --- Unit catalogue -----------------------------------------------------

  /// All units of `type`, in id order.
  const std::vector<VertexId>& VerticesOfType(VertexType type) const;
  VertexType vertex_type(VertexId v) const;
  const std::string& vertex_name(VertexId v) const;

  // --- Modality resolution (kInvalidVertex when unresolvable) -------------

  /// Unit of the spatial hotspot nearest to `location`.
  VertexId SpatialVertex(const GeoPoint& location) const;
  /// Unit of the temporal hotspot circularly nearest to a raw timestamp
  /// (seconds).
  VertexId TemporalVertexAt(double timestamp) const;
  /// Unit of the temporal hotspot circularly nearest to an hour-of-day.
  VertexId TemporalVertexAtHour(double hour) const;
  /// Unit of a vocabulary word id; kInvalidVertex when the id is out of
  /// range or the word never made it into the model.
  VertexId WordVertex(int32_t word_id) const;
  /// Vocabulary id of `keyword`; -1 when unknown (always -1 without a
  /// vocabulary — streaming snapshots resolve word ids, not strings).
  int32_t LookupWord(const std::string& keyword) const;
  bool has_vocab() const { return vocab_ != nullptr; }

 private:
  /// The online path's resolver state plus the per-type id lists derived
  /// from it. Held by shared_ptr so a delta publish with an unchanged unit
  /// set shares the whole structure instead of re-copying O(units)
  /// strings per publish.
  struct CatalogState {
    OnlineCatalog catalog;
    std::vector<VertexId> of_type[kNumVertexTypes];
  };

  ModelSnapshot() = default;

  static std::shared_ptr<const CatalogState> MakeCatalogState(
      OnlineCatalog catalog);

  uint64_t version_ = 0;
  ChunkedMatrix center_;                      // owned or chunk-shared
  std::unique_ptr<ChunkedMatrix> context_;    // optional

  // Batch path: shared immutable structures from the eval pipeline.
  std::shared_ptr<const BuiltGraphs> graphs_;
  std::shared_ptr<const Hotspots> hotspots_;
  std::shared_ptr<const Vocabulary> vocab_;

  // Online path (graphs_ == nullptr): resolver state, shared across delta
  // publishes while the unit set is unchanged.
  std::shared_ptr<const CatalogState> online_;
};

/// The one mutable cell of the serving layer: an atomically swappable slot
/// holding the latest published snapshot. Publish() installs a new version
/// (writer side, typically the ingest thread); Acquire() grabs a reference
/// to whatever is current (any thread, lock-free on libstdc++'s atomic
/// shared_ptr). Readers keep their snapshot alive through the shared_ptr
/// refcount, so a publish never invalidates an in-flight query.
///
/// TSan builds swap in the free-function atomic shared_ptr overloads:
/// libstdc++'s std::atomic<shared_ptr> guards its raw pointer with a
/// packed lock *bit* that ThreadSanitizer cannot model (it reports the
/// guarded plain pointer accesses as races), while the free functions
/// lock a pthread-mutex pool TSan fully understands. Same release/acquire
/// publication contract either way — this keeps tsan.supp empty.
#if defined(__cpp_lib_atomic_shared_ptr) && !defined(ACTOR_TSAN)
#define ACTOR_SERVE_ATOMIC_SHARED_PTR 1
#endif

class SnapshotStore {
 public:
  SnapshotStore() = default;
  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  void Publish(std::shared_ptr<const ModelSnapshot> snapshot) {
#if defined(ACTOR_SERVE_ATOMIC_SHARED_PTR)
    slot_.store(std::move(snapshot), std::memory_order_release);
#else
    std::atomic_store_explicit(&slot_, std::move(snapshot),
                               std::memory_order_release);
#endif
  }

  /// Latest published snapshot; null before the first Publish().
  std::shared_ptr<const ModelSnapshot> Acquire() const {
#if defined(ACTOR_SERVE_ATOMIC_SHARED_PTR)
    return slot_.load(std::memory_order_acquire);
#else
    return std::atomic_load_explicit(&slot_, std::memory_order_acquire);
#endif
  }

 private:
#if defined(ACTOR_SERVE_ATOMIC_SHARED_PTR)
  std::atomic<std::shared_ptr<const ModelSnapshot>> slot_;
#else
  // TSan / pre-C++20 path: the free-function atomic shared_ptr overloads.
  std::shared_ptr<const ModelSnapshot> slot_;
#endif
};

}  // namespace actor

#endif  // ACTOR_SERVE_MODEL_SNAPSHOT_H_
