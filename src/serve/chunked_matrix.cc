#include "serve/chunked_matrix.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace actor {

ChunkedMatrix::ChunkPtr ChunkedMatrix::NewChunk(std::size_t stride) {
  const std::size_t bytes = static_cast<std::size_t>(kChunkRows) * stride *
                            sizeof(float);
  // Same allocation contract as EmbeddingMatrix: aligned_alloc needs the
  // size to be a multiple of the alignment; stride is a multiple of 8
  // floats (32 bytes), so it already is.
  float* p = static_cast<float*>(
      std::aligned_alloc(EmbeddingMatrix::kRowAlignment, bytes));
  ACTOR_CHECK(p != nullptr) << "chunk allocation failed (" << bytes
                            << " bytes)";
  std::memset(p, 0, bytes);
  return ChunkPtr(p, [](const float* q) { std::free(const_cast<float*>(q)); });
}

ChunkedMatrix ChunkedMatrix::FullCopy(const EmbeddingMatrix& src) {
  ChunkedMatrix out;
  out.rows_ = src.rows();
  out.dim_ = src.dim();
  out.stride_ = src.stride();
  if (out.empty()) return out;
  const std::size_t num_chunks =
      (static_cast<std::size_t>(out.rows_) + kChunkRows - 1) / kChunkRows;
  out.chunks_.reserve(num_chunks);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const int32_t begin = static_cast<int32_t>(c) * kChunkRows;
    const int32_t end = std::min(begin + kChunkRows, out.rows_);
    ChunkPtr chunk = NewChunk(out.stride_);
    // Rows are contiguous at stride granularity inside the flat matrix, so
    // one memcpy moves the whole chunk, padding floats included.
    std::memcpy(const_cast<float*>(chunk.get()), src.row(begin),
                static_cast<std::size_t>(end - begin) * out.stride_ *
                    sizeof(float));
    out.chunks_.push_back(std::move(chunk));
  }
  return out;
}

ChunkedMatrix ChunkedMatrix::DeltaCopy(const EmbeddingMatrix& src,
                                       const ChunkedMatrix& prev,
                                       const DirtyRowSet& dirty) {
  if (prev.dim_ != src.dim() || prev.stride_ != src.stride() ||
      prev.rows_ > src.rows()) {
    return FullCopy(src);  // incompatible layout — nothing to share
  }
  ChunkedMatrix out;
  out.rows_ = src.rows();
  out.dim_ = src.dim();
  out.stride_ = src.stride();
  if (out.empty()) return out;
  const std::size_t num_chunks =
      (static_cast<std::size_t>(out.rows_) + kChunkRows - 1) / kChunkRows;
  out.chunks_.reserve(num_chunks);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const int32_t begin = static_cast<int32_t>(c) * kChunkRows;
    const int32_t end = std::min(begin + kChunkRows, out.rows_);
    // Share iff the previous snapshot fully covers this chunk's row range
    // and no row in it changed. Rows appended after `prev` are expected to
    // be marked dirty by the trainer, but the coverage check keeps the
    // copy correct even if a caller forgets.
    const bool covered = end <= prev.rows_;
    const bool clean =
        covered && dirty.rows() >= end && !dirty.AnyInRange(begin, end);
    if (clean) {
      out.chunks_.push_back(prev.chunks_[c]);
      continue;
    }
    ChunkPtr chunk = NewChunk(out.stride_);
    std::memcpy(const_cast<float*>(chunk.get()), src.row(begin),
                static_cast<std::size_t>(end - begin) * out.stride_ *
                    sizeof(float));
    out.chunks_.push_back(std::move(chunk));
  }
  return out;
}

std::size_t ChunkedMatrix::SharedChunksWith(const ChunkedMatrix& other) const {
  const std::size_t n = std::min(chunks_.size(), other.chunks_.size());
  std::size_t shared = 0;
  for (std::size_t c = 0; c < n; ++c) {
    if (chunks_[c] == other.chunks_[c]) ++shared;
  }
  return shared;
}

}  // namespace actor
