#include "serve/query_engine.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <utility>

#include "util/vec_math.h"

namespace actor {

BatchQuery BatchQuery::Location(const GeoPoint& location,
                                VertexType result_type, int k) {
  BatchQuery q;
  q.kind = Kind::kLocation;
  q.location = location;
  q.result_type = result_type;
  q.k = k;
  return q;
}

BatchQuery BatchQuery::Hour(double hour, VertexType result_type, int k) {
  BatchQuery q;
  q.kind = Kind::kHour;
  q.hour = hour;
  q.result_type = result_type;
  q.k = k;
  return q;
}

BatchQuery BatchQuery::Keyword(std::string keyword, VertexType result_type,
                               int k) {
  BatchQuery q;
  q.kind = Kind::kKeyword;
  q.keyword = std::move(keyword);
  q.result_type = result_type;
  q.k = k;
  return q;
}

BatchQuery BatchQuery::Vector(const float* query, VertexType result_type,
                              int k, VertexId exclude) {
  BatchQuery q;
  q.kind = Kind::kVector;
  q.vector = query;
  q.result_type = result_type;
  q.k = k;
  q.exclude = exclude;
  return q;
}

QueryEngine::QueryEngine(std::shared_ptr<const ModelSnapshot> snapshot)
    : snapshot_(std::move(snapshot)) {}

Result<std::vector<Neighbor>> QueryEngine::QueryByVector(
    const float* query, VertexType result_type, int k,
    VertexId exclude) const {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  const ModelSnapshot& snap = *snapshot_;
  const ChunkedMatrix& center = snap.center();
  const std::size_t dim = static_cast<std::size_t>(center.dim());
  // One query against the whole type block: the query norm is fixed, so it
  // is computed once here instead of once per row inside Cosine(). The
  // per-row work is a single fused pass (dot + candidate norm).
  const float query_norm = Norm2(query, dim);
  std::vector<Neighbor> results;
  for (VertexId v : snap.VerticesOfType(result_type)) {
    if (v == exclude) continue;
    float dot = 0.0f;
    float norm2 = 0.0f;
    DotAndNorm2(query, center.row(v), dim, &dot, &norm2);
    const float row_norm = std::sqrt(norm2);
    Neighbor n;
    n.vertex = v;
    n.similarity = (query_norm == 0.0f || row_norm == 0.0f)
                       ? 0.0f
                       : dot / (query_norm * row_norm);
    results.push_back(std::move(n));
  }
  const std::size_t keep = std::min<std::size_t>(k, results.size());
  // Ties break toward the lower unit id, making the top-k *set* a pure
  // function of (snapshot, query, k) rather than of candidate scan order —
  // the property the sharded scatter-gather merge needs to reproduce this
  // result exactly from per-shard heads (docs/sharding.md).
  std::partial_sort(results.begin(), results.begin() + keep, results.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      return a.similarity > b.similarity ||
                             (a.similarity == b.similarity &&
                              a.vertex < b.vertex);
                    });
  results.resize(keep);
  for (auto& n : results) {
    n.name = snap.vertex_name(n.vertex);
    n.type = snap.vertex_type(n.vertex);
  }
  return results;
}

std::vector<Result<std::vector<Neighbor>>> QueryEngine::QueryBatch(
    const std::vector<BatchQuery>& queries) const {
  const ModelSnapshot& snap = *snapshot_;
  const ChunkedMatrix& center = snap.center();
  const std::size_t dim = static_cast<std::size_t>(center.dim());
  const std::size_t b = queries.size();

  // Per-request resolution, running each sequential entry point's checks in
  // the same order so error statuses (and their precedence over the k
  // check) match QueryBy*() exactly.
  struct Resolved {
    const float* query = nullptr;
    float query_norm = 0.0f;
    VertexId exclude = kInvalidVertex;
  };
  std::vector<Resolved> resolved(b);
  std::vector<Status> errors(b);  // OK marks the request scorable
  std::vector<std::vector<Neighbor>> candidates(b);
  std::array<std::vector<std::size_t>, kNumVertexTypes> groups;
  for (std::size_t i = 0; i < b; ++i) {
    const BatchQuery& q = queries[i];
    VertexId v = kInvalidVertex;
    switch (q.kind) {
      case BatchQuery::Kind::kLocation:
        v = snap.SpatialVertex(q.location);
        if (v == kInvalidVertex) {
          errors[i] = Status::NotFound("no spatial hotspots available");
          continue;
        }
        break;
      case BatchQuery::Kind::kHour:
        v = snap.TemporalVertexAtHour(q.hour);
        if (v == kInvalidVertex) {
          errors[i] = Status::NotFound("no temporal hotspots available");
          continue;
        }
        break;
      case BatchQuery::Kind::kKeyword: {
        const int32_t w = snap.LookupWord(q.keyword);
        if (w < 0) {
          errors[i] =
              Status::NotFound("keyword not in vocabulary: " + q.keyword);
          continue;
        }
        v = snap.WordVertex(w);
        if (v == kInvalidVertex) {
          errors[i] = Status::NotFound(
              "keyword not present in the activity graph: " + q.keyword);
          continue;
        }
        break;
      }
      case BatchQuery::Kind::kVector:
        break;
    }
    if (q.k <= 0) {
      errors[i] = Status::InvalidArgument("k must be positive");
      continue;
    }
    Resolved& r = resolved[i];
    r.query = v == kInvalidVertex ? q.vector : center.row(v);
    r.exclude = v == kInvalidVertex ? q.exclude : v;
    r.query_norm = Norm2(r.query, dim);
    groups[static_cast<std::size_t>(q.result_type)].push_back(i);
  }

  // One sweep per populated type block: each candidate row streams through
  // the blocked kernel once for the whole group. Computing a dot the
  // sequential path would skip (a row excluded by one group member) is
  // harmless — the value is simply not pushed for that member.
  std::vector<const float*> qptrs;
  std::vector<float> dots;
  for (int t = 0; t < kNumVertexTypes; ++t) {
    const std::vector<std::size_t>& group =
        groups[static_cast<std::size_t>(t)];
    if (group.empty()) continue;
    const std::size_t gb = group.size();
    qptrs.resize(gb);
    dots.resize(gb);
    for (std::size_t jj = 0; jj < gb; ++jj) {
      qptrs[jj] = resolved[group[jj]].query;
    }
    for (VertexId v : snap.VerticesOfType(static_cast<VertexType>(t))) {
      float norm2 = 0.0f;
      DotAndNorm2Batch(qptrs.data(), gb, center.row(v), dim, dots.data(),
                       &norm2);
      const float row_norm = std::sqrt(norm2);
      for (std::size_t jj = 0; jj < gb; ++jj) {
        const Resolved& r = resolved[group[jj]];
        if (v == r.exclude) continue;
        Neighbor n;
        n.vertex = v;
        n.similarity = (r.query_norm == 0.0f || row_norm == 0.0f)
                           ? 0.0f
                           : dots[jj] / (r.query_norm * row_norm);
        candidates[group[jj]].push_back(std::move(n));
      }
    }
  }

  // Per-request top-k selection, identical to the sequential tail: same
  // candidate order in, same comparator, same truncation.
  std::vector<Result<std::vector<Neighbor>>> out;
  out.reserve(b);
  for (std::size_t i = 0; i < b; ++i) {
    if (!errors[i].ok()) {
      out.push_back(errors[i]);
      continue;
    }
    std::vector<Neighbor>& results = candidates[i];
    const std::size_t keep =
        std::min<std::size_t>(queries[i].k, results.size());
    std::partial_sort(results.begin(), results.begin() + keep, results.end(),
                      [](const Neighbor& a, const Neighbor& c) {
                        return a.similarity > c.similarity ||
                               (a.similarity == c.similarity &&
                                a.vertex < c.vertex);
                      });
    results.resize(keep);
    for (auto& n : results) {
      n.name = snap.vertex_name(n.vertex);
      n.type = snap.vertex_type(n.vertex);
    }
    out.push_back(std::move(results));
  }
  return out;
}

Result<std::vector<Neighbor>> QueryEngine::QueryByVertex(
    VertexId v, VertexType result_type, int k) const {
  return QueryByVector(snapshot_->center().row(v), result_type, k, v);
}

Result<std::vector<Neighbor>> QueryEngine::QueryByLocation(
    const GeoPoint& location, VertexType result_type, int k) const {
  const VertexId v = snapshot_->SpatialVertex(location);
  if (v == kInvalidVertex) {
    return Status::NotFound("no spatial hotspots available");
  }
  return QueryByVertex(v, result_type, k);
}

Result<std::vector<Neighbor>> QueryEngine::QueryByHour(
    double hour, VertexType result_type, int k) const {
  const VertexId v = snapshot_->TemporalVertexAtHour(hour);
  if (v == kInvalidVertex) {
    return Status::NotFound("no temporal hotspots available");
  }
  return QueryByVertex(v, result_type, k);
}

Result<std::vector<Neighbor>> QueryEngine::QueryByKeyword(
    const std::string& keyword, VertexType result_type, int k) const {
  const int32_t w = snapshot_->LookupWord(keyword);
  if (w < 0) return Status::NotFound("keyword not in vocabulary: " + keyword);
  const VertexId v = snapshot_->WordVertex(w);
  if (v == kInvalidVertex) {
    return Status::NotFound("keyword not present in the activity graph: " +
                            keyword);
  }
  return QueryByVertex(v, result_type, k);
}

}  // namespace actor
