#include "serve/query_engine.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/vec_math.h"

namespace actor {

QueryEngine::QueryEngine(std::shared_ptr<const ModelSnapshot> snapshot)
    : snapshot_(std::move(snapshot)) {}

Result<std::vector<Neighbor>> QueryEngine::QueryByVector(
    const float* query, VertexType result_type, int k,
    VertexId exclude) const {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  const ModelSnapshot& snap = *snapshot_;
  const ChunkedMatrix& center = snap.center();
  const std::size_t dim = static_cast<std::size_t>(center.dim());
  // One query against the whole type block: the query norm is fixed, so it
  // is computed once here instead of once per row inside Cosine(). The
  // per-row work is a single fused pass (dot + candidate norm).
  const float query_norm = Norm2(query, dim);
  std::vector<Neighbor> results;
  for (VertexId v : snap.VerticesOfType(result_type)) {
    if (v == exclude) continue;
    float dot = 0.0f;
    float norm2 = 0.0f;
    DotAndNorm2(query, center.row(v), dim, &dot, &norm2);
    const float row_norm = std::sqrt(norm2);
    Neighbor n;
    n.vertex = v;
    n.similarity = (query_norm == 0.0f || row_norm == 0.0f)
                       ? 0.0f
                       : dot / (query_norm * row_norm);
    results.push_back(std::move(n));
  }
  const std::size_t keep = std::min<std::size_t>(k, results.size());
  std::partial_sort(results.begin(), results.begin() + keep, results.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      return a.similarity > b.similarity;
                    });
  results.resize(keep);
  for (auto& n : results) {
    n.name = snap.vertex_name(n.vertex);
    n.type = snap.vertex_type(n.vertex);
  }
  return results;
}

Result<std::vector<Neighbor>> QueryEngine::QueryByVertex(
    VertexId v, VertexType result_type, int k) const {
  return QueryByVector(snapshot_->center().row(v), result_type, k, v);
}

Result<std::vector<Neighbor>> QueryEngine::QueryByLocation(
    const GeoPoint& location, VertexType result_type, int k) const {
  const VertexId v = snapshot_->SpatialVertex(location);
  if (v == kInvalidVertex) {
    return Status::NotFound("no spatial hotspots available");
  }
  return QueryByVertex(v, result_type, k);
}

Result<std::vector<Neighbor>> QueryEngine::QueryByHour(
    double hour, VertexType result_type, int k) const {
  const VertexId v = snapshot_->TemporalVertexAtHour(hour);
  if (v == kInvalidVertex) {
    return Status::NotFound("no temporal hotspots available");
  }
  return QueryByVertex(v, result_type, k);
}

Result<std::vector<Neighbor>> QueryEngine::QueryByKeyword(
    const std::string& keyword, VertexType result_type, int k) const {
  const int32_t w = snapshot_->LookupWord(keyword);
  if (w < 0) return Status::NotFound("keyword not in vocabulary: " + keyword);
  const VertexId v = snapshot_->WordVertex(w);
  if (v == kInvalidVertex) {
    return Status::NotFound("keyword not present in the activity graph: " +
                            keyword);
  }
  return QueryByVertex(v, result_type, k);
}

}  // namespace actor
