#include "graph/types.h"

#include "util/string_util.h"

namespace actor {

const char* VertexTypeName(VertexType type) {
  switch (type) {
    case VertexType::kTime:
      return "T";
    case VertexType::kLocation:
      return "L";
    case VertexType::kWord:
      return "W";
    case VertexType::kUser:
      return "U";
  }
  return "?";
}

const char* EdgeTypeName(EdgeType type) {
  switch (type) {
    case EdgeType::kTL:
      return "TL";
    case EdgeType::kLW:
      return "LW";
    case EdgeType::kWT:
      return "WT";
    case EdgeType::kWW:
      return "WW";
    case EdgeType::kUT:
      return "UT";
    case EdgeType::kUW:
      return "UW";
    case EdgeType::kUL:
      return "UL";
    case EdgeType::kUU:
      return "UU";
  }
  return "??";
}

Result<EdgeType> EdgeTypeBetween(VertexType a, VertexType b) {
  using VT = VertexType;
  using ET = EdgeType;
  auto pair_is = [&](VT x, VT y) {
    return (a == x && b == y) || (a == y && b == x);
  };
  if (pair_is(VT::kTime, VT::kLocation)) return ET::kTL;
  if (pair_is(VT::kLocation, VT::kWord)) return ET::kLW;
  if (pair_is(VT::kWord, VT::kTime)) return ET::kWT;
  if (a == VT::kWord && b == VT::kWord) return ET::kWW;
  if (pair_is(VT::kUser, VT::kTime)) return ET::kUT;
  if (pair_is(VT::kUser, VT::kWord)) return ET::kUW;
  if (pair_is(VT::kUser, VT::kLocation)) return ET::kUL;
  if (a == VT::kUser && b == VT::kUser) return ET::kUU;
  return Status::InvalidArgument(
      StrPrintf("no edge type between vertex types %s and %s",
                VertexTypeName(a), VertexTypeName(b)));
}

}  // namespace actor
