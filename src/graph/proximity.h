#ifndef ACTOR_GRAPH_PROXIMITY_H_
#define ACTOR_GRAPH_PROXIMITY_H_

#include "graph/heterograph.h"

namespace actor {

/// First-order proximity (paper Def. 3): the weight of the edge between
/// u and v; 0 when no edge exists.
double FirstOrderProximity(const Heterograph& graph, VertexId u, VertexId v);

/// Second-order proximity (paper Def. 4): similarity of the two vertices'
/// adjacency distributions p_u and p_v, taken over *all* edge types and
/// measured with the cosine. 1 when the (weighted) neighborhoods
/// coincide; 0 when they are disjoint (or either vertex is isolated).
double SecondOrderProximity(const Heterograph& graph, VertexId u, VertexId v);

/// High-order proximity indicator (paper §4.2): the length of the
/// shortest path between u and v across all edge types (BFS on the
/// unweighted skeleton), or -1 if unreachable. A proximity "of order > 2"
/// corresponds to a shortest path of more than two hops.
int ShortestPathHops(const Heterograph& graph, VertexId u, VertexId v);

}  // namespace actor

#endif  // ACTOR_GRAPH_PROXIMITY_H_
