#include "graph/random_walk.h"

#include "util/logging.h"

namespace actor {

MetaPathWalker::MetaPathWalker(const Heterograph* graph,
                               std::vector<VertexType> meta_path)
    : graph_(graph), meta_path_(std::move(meta_path)) {
  ACTOR_CHECK(graph_ != nullptr);
  ACTOR_CHECK(graph_->finalized()) << "walker requires a finalized graph";
}

VertexId MetaPathWalker::Step(EdgeType e, VertexId v, Rng& rng) {
  const auto neighbors = graph_->Neighbors(e, v);
  if (neighbors.empty()) return kInvalidVertex;
  const uint64_t key =
      (static_cast<uint64_t>(static_cast<uint8_t>(e)) << 32) |
      static_cast<uint32_t>(v);
  auto it = row_tables_.find(key);
  if (it == row_tables_.end()) {
    const auto weights = graph_->NeighborWeights(e, v);
    auto table = AliasTable::Create(
        std::vector<double>(weights.begin(), weights.end()));
    if (!table.ok()) return kInvalidVertex;
    it = row_tables_.emplace(key, table.MoveValueOrDie()).first;
  }
  return neighbors[it->second.Sample(rng)];
}

Result<std::vector<std::vector<VertexId>>> MetaPathWalker::GenerateWalks(
    const MetaPathWalkOptions& options) {
  if (meta_path_.size() < 2) {
    return Status::InvalidArgument("meta path must have at least 2 types");
  }
  if (options.walk_length < 2 || options.walks_per_start < 1) {
    return Status::InvalidArgument("walk length/count must be positive");
  }
  // Pre-resolve the edge type of every transition in the cyclic pattern.
  const std::size_t plen = meta_path_.size();
  std::vector<EdgeType> transitions(plen);
  for (std::size_t i = 0; i < plen; ++i) {
    ACTOR_ASSIGN_OR_RETURN(
        transitions[i],
        EdgeTypeBetween(meta_path_[i], meta_path_[(i + 1) % plen]));
  }

  Rng rng(options.seed);
  std::vector<std::vector<VertexId>> walks;
  const auto& starts = graph_->VerticesOfType(meta_path_[0]);
  walks.reserve(starts.size() * options.walks_per_start);
  for (VertexId start : starts) {
    for (int w = 0; w < options.walks_per_start; ++w) {
      std::vector<VertexId> walk{start};
      VertexId current = start;
      std::size_t pattern_pos = 0;
      for (int step = 1; step < options.walk_length; ++step) {
        const VertexId next =
            Step(transitions[pattern_pos % plen], current, rng);
        if (next == kInvalidVertex) break;
        walk.push_back(next);
        current = next;
        ++pattern_pos;
      }
      if (walk.size() >= 2) walks.push_back(std::move(walk));
    }
  }
  return walks;
}

}  // namespace actor
