#ifndef ACTOR_GRAPH_HETEROGRAPH_H_
#define ACTOR_GRAPH_HETEROGRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/types.h"
#include "util/logging.h"
#include "util/result.h"
#include "util/status.h"

namespace actor {

/// A typed undirected weighted multigraph used for both the activity graph
/// (Def. 1) and the user interaction graph (Def. 2).
///
/// Construction happens in two phases: AccumulateEdge() sums co-occurrence
/// weights into a hash map ("the edge weight is set to be the co-occurrence
/// count"); Finalize() freezes the graph into per-edge-type directed edge
/// arrays and CSR adjacency. Each undirected edge {u, v} becomes the two
/// directed edges (u, v) and (v, u), matching the LINE-style treatment
/// where either endpoint can act as the center vertex.
class Heterograph {
 public:
  Heterograph() = default;

  // Move-only: adjacency arrays can be large.
  Heterograph(Heterograph&&) = default;
  Heterograph& operator=(Heterograph&&) = default;
  Heterograph(const Heterograph&) = delete;
  Heterograph& operator=(const Heterograph&) = delete;

  /// Adds a vertex and returns its dense id. `name` is the human-readable
  /// unit label (a keyword, "T3", "L17", "user42").
  VertexId AddVertex(VertexType type, std::string name);

  /// Adds `weight` to the undirected edge {u, v}. The edge type is derived
  /// from the endpoint vertex types. Self-loops are rejected. Fails after
  /// Finalize().
  Status AccumulateEdge(VertexId u, VertexId v, double weight = 1.0);

  /// Freezes the graph. Idempotent-fails: calling twice is an error.
  Status Finalize();

  bool finalized() const { return finalized_; }

  int32_t num_vertices() const { return static_cast<int32_t>(types_.size()); }
  VertexType vertex_type(VertexId v) const {
    ACTOR_DCHECK(v >= 0 && v < num_vertices()) << "vertex id " << v;
    return types_[v];
  }
  const std::string& vertex_name(VertexId v) const {
    ACTOR_DCHECK(v >= 0 && v < num_vertices()) << "vertex id " << v;
    return names_[v];
  }

  /// All vertices of the given type, in id order.
  const std::vector<VertexId>& VerticesOfType(VertexType type) const;

  /// Directed edges of one type (both orientations of every undirected
  /// edge). Valid after Finalize().
  struct DirectedEdges {
    std::vector<VertexId> src;
    std::vector<VertexId> dst;
    std::vector<double> weight;
    std::size_t size() const { return src.size(); }
  };
  const DirectedEdges& edges(EdgeType type) const;

  /// Neighbors of `v` through edges of `type` (valid after Finalize()).
  std::span<const VertexId> Neighbors(EdgeType type, VertexId v) const;
  std::span<const double> NeighborWeights(EdgeType type, VertexId v) const;

  /// Weighted degree d_v^e of `v` within edge type `type` (Eq. (3)).
  double Degree(EdgeType type, VertexId v) const;

  /// Weight of the undirected edge {u, v}; 0 if absent (first-order
  /// proximity, Def. 3).
  double EdgeWeight(VertexId u, VertexId v) const;

  /// Total number of directed edges across all types.
  int64_t num_directed_edges() const;

 private:
  struct Csr {
    std::vector<int64_t> offsets;  // size num_vertices + 1
    std::vector<VertexId> neighbors;
    std::vector<double> weights;
  };

  static uint64_t PackKey(VertexId u, VertexId v) {
    // Unordered: smaller id in the high half.
    const uint64_t a = static_cast<uint32_t>(u < v ? u : v);
    const uint64_t b = static_cast<uint32_t>(u < v ? v : u);
    return (a << 32) | b;
  }

  bool finalized_ = false;
  std::vector<VertexType> types_;
  std::vector<std::string> names_;
  std::vector<VertexId> by_type_[kNumVertexTypes];

  // Build phase.
  std::unordered_map<uint64_t, double> accum_[kNumEdgeTypes];

  // Finalized phase.
  DirectedEdges edges_[kNumEdgeTypes];
  Csr adj_[kNumEdgeTypes];
  std::vector<double> degree_[kNumEdgeTypes];
};

}  // namespace actor

#endif  // ACTOR_GRAPH_HETEROGRAPH_H_
