#ifndef ACTOR_GRAPH_ALIAS_TABLE_H_
#define ACTOR_GRAPH_ALIAS_TABLE_H_

#include <cstddef>
#include <vector>

#include "util/logging.h"
#include "util/result.h"
#include "util/rng.h"

namespace actor {

/// Walker's alias method: O(n) construction, O(1) sampling from a discrete
/// distribution (paper §5.2.3, [44]). Used for weighted edge sampling and
/// for the negative-sampling noise distribution.
///
/// Two construction paths exist: `Create()` builds a fresh table, and
/// `Rebuild()` re-derives the table in place, reusing the existing bucket
/// storage. The streaming pipeline (docs/streaming.md) rebuilds its
/// samplers after every ingested batch, so the in-place path keeps the
/// decay → re-embed cycle allocation-free once the tables reach their
/// steady-state size.
class AliasTable {
 public:
  /// An empty table; Sample() may not be called until a Rebuild() (or
  /// assignment from Create()) succeeds. size() is 0.
  AliasTable() = default;

  /// Builds the table from non-negative weights. Returns InvalidArgument if
  /// `weights` is empty, contains a negative value, or sums to zero.
  static Result<AliasTable> Create(const std::vector<double>& weights);

  /// Rebuilds this table from `weights` without releasing bucket storage:
  /// repeated rebuilds at steady-state size perform no allocations. Same
  /// validation as Create(); on error the table is left unchanged and
  /// remains safe to Sample() from (if it was before).
  Status Rebuild(const std::vector<double>& weights);

  /// Draws an index in [0, size()) with probability proportional to its
  /// weight. Thread-safe given distinct Rng instances.
  std::size_t Sample(Rng& rng) const {
    ACTOR_DCHECK(!prob_.empty()) << "sampling from an empty alias table";
    const std::size_t i = rng.Uniform(prob_.size());
    const std::size_t drawn =
        rng.UniformDouble() < prob_[i] ? i : static_cast<std::size_t>(alias_[i]);
    // A torn table (alias entry past the end) would silently corrupt the
    // trainers that index rows with the draw; catch it at the source.
    ACTOR_DCHECK(drawn < prob_.size())
        << "alias table draw out of range (bucket " << i << ")";
    return drawn;
  }

  std::size_t size() const { return prob_.size(); }

  /// Exact sampling probability of index i (for tests).
  double Probability(std::size_t i) const;

 private:
  /// Shared Walker construction: validates `weights` and fills the three
  /// bucket arrays (resized, storage reused where capacity allows).
  static Status BuildInto(const std::vector<double>& weights,
                          std::vector<double>* prob,
                          std::vector<uint32_t>* alias,
                          std::vector<double>* norm_weights);

  AliasTable(std::vector<double> prob, std::vector<uint32_t> alias,
             std::vector<double> norm_weights)
      : prob_(std::move(prob)),
        alias_(std::move(alias)),
        norm_weights_(std::move(norm_weights)) {}

  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
  std::vector<double> norm_weights_;  // kept for Probability()
};

}  // namespace actor

#endif  // ACTOR_GRAPH_ALIAS_TABLE_H_
