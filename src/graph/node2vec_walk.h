#ifndef ACTOR_GRAPH_NODE2VEC_WALK_H_
#define ACTOR_GRAPH_NODE2VEC_WALK_H_

#include <vector>

#include "graph/heterograph.h"
#include "util/result.h"
#include "util/rng.h"

namespace actor {

/// Options for node2vec [23] biased second-order random walks. p is the
/// return parameter (smaller = revisit the previous vertex more often), q
/// the in-out parameter (smaller = venture further, DFS-like). p = q = 1
/// degenerates to DeepWalk [22].
struct Node2vecWalkOptions {
  double p = 1.0;
  double q = 1.0;
  int walks_per_vertex = 4;
  int walk_length = 20;
  uint64_t seed = 31;
};

/// Generates node2vec walks over *all* edge types of a finalized graph,
/// treating it as homogeneous (the treatment DeepWalk/node2vec would apply
/// to the activity graph; paper §2.2). Walks start from every vertex with
/// at least one neighbor.
Result<std::vector<std::vector<VertexId>>> GenerateNode2vecWalks(
    const Heterograph& graph, const Node2vecWalkOptions& options);

}  // namespace actor

#endif  // ACTOR_GRAPH_NODE2VEC_WALK_H_
